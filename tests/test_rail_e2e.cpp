// End-to-end R-Pingmesh on the rail-optimized topology (Figure 12): the
// full system must work unchanged on a 2-tier fabric where rail switches
// play the ToR role, plus property sweeps over topology shapes.
#include <gtest/gtest.h>

#include "core/rpingmesh.h"
#include "faults/faults.h"

namespace rpm::core {
namespace {

TEST(RailE2E, SystemRunsOnRailTopology) {
  topo::RailConfig rcfg;
  rcfg.num_hosts = 4;
  rcfg.rails = 4;
  rcfg.num_spines = 2;
  host::Cluster cluster(topo::build_rail_optimized(rcfg));
  RPingmesh rpm(cluster);
  rpm.start();
  cluster.run_for(sec(45));
  const PeriodReport* rep = rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  EXPECT_GT(rep->records_processed, 500u);
  EXPECT_EQ(rep->cluster_sla.timeouts, 0u);
  // Inter-rail probes exist (the "inter-ToR" plan treats rails as ToRs).
  EXPECT_GT(rep->cluster_sla.rtt_p999, rep->cluster_sla.rtt_p50);
  rpm.stop();
}

TEST(RailE2E, SpineFaultLocalizedOnRailTopology) {
  topo::RailConfig rcfg;
  rcfg.num_hosts = 4;
  rcfg.rails = 2;
  rcfg.num_spines = 2;
  host::Cluster cluster(topo::build_rail_optimized(rcfg));
  RPingmesh rpm(cluster);
  rpm.start();
  cluster.run_for(sec(25));
  // Corrupt one rail->spine cable.
  LinkId victim;
  for (const topo::Link& l : cluster.topology().links()) {
    if (l.from.is_switch() && l.to.is_switch()) {
      victim = l.id;
      break;
    }
  }
  faults::FaultInjector inj(cluster);
  inj.inject_corruption(victim, 0.6);
  cluster.run_for(sec(41));
  const PeriodReport* rep = rpm.analyzer().last_report();
  const Problem* p = nullptr;
  for (const auto& prob : rep->problems) {
    if (prob.category == ProblemCategory::kSwitchNetworkProblem) p = &prob;
  }
  ASSERT_NE(p, nullptr);
  const LinkId peer = cluster.topology().link(victim).peer;
  bool hit = false;
  for (LinkId l : p->suspect_links) {
    if (l == victim || l == peer) hit = true;
  }
  EXPECT_TRUE(hit);
  rpm.stop();
}

TEST(RailE2E, RnicDownLocalizedOnRailTopology) {
  topo::RailConfig rcfg;
  rcfg.num_hosts = 4;
  rcfg.rails = 2;
  rcfg.num_spines = 2;
  host::Cluster cluster(topo::build_rail_optimized(rcfg));
  RPingmesh rpm(cluster);
  rpm.start();
  cluster.run_for(sec(25));
  faults::FaultInjector inj(cluster);
  inj.inject_rnic_down(RnicId{3});
  cluster.run_for(sec(21));
  const PeriodReport* rep = rpm.analyzer().last_report();
  bool flagged = false;
  for (const auto& p : rep->problems) {
    if (p.category == ProblemCategory::kRnicProblem && p.rnic == RnicId{3}) {
      flagged = true;
    }
    EXPECT_NE(p.category, ProblemCategory::kSwitchNetworkProblem);
  }
  EXPECT_TRUE(flagged);
  rpm.stop();
}

// Property sweep: the deployed system produces clean SLAs across a family
// of Clos shapes (pods, tors, rnics-per-host vary).
struct ShapeParam {
  std::uint32_t pods, tors, hosts, rnics;
};

class ShapeSweep : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ShapeSweep, HealthyDeploymentIsCleanEverywhere) {
  const ShapeParam s = GetParam();
  topo::ClosConfig cfg;
  cfg.num_pods = s.pods;
  cfg.tors_per_pod = s.tors;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = s.hosts;
  cfg.rnics_per_host = s.rnics;
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = msec(1);
  host::Cluster cluster(topo::build_clos(cfg), ccfg);
  RPingmesh rpm(cluster);
  rpm.start();
  cluster.run_for(sec(25));
  const PeriodReport* rep = rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->cluster_sla.timeouts, 0u)
      << "pods=" << s.pods << " tors=" << s.tors;
  for (const auto& p : rep->problems) {
    EXPECT_EQ(p.priority, Priority::kNoise) << p.summary;
  }
  EXPECT_GT(rep->cluster_sla.rtt_p50, 0.0);
  rpm.stop();
}

INSTANTIATE_TEST_SUITE_P(
    ClosShapes, ShapeSweep,
    ::testing::Values(ShapeParam{1, 2, 2, 1}, ShapeParam{2, 2, 1, 2},
                      ShapeParam{2, 3, 2, 1}, ShapeParam{3, 2, 2, 2}));

}  // namespace
}  // namespace rpm::core
