// Tests for the two §7.4/§7.5 extensions: INT-based path tracing and the
// root-cause advisor.
#include <gtest/gtest.h>

#include "core/rootcause.h"
#include "core/rpingmesh.h"
#include "fabric/int_telemetry.h"
#include "faults/faults.h"

namespace rpm {
namespace {

topo::ClosConfig clos_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() : cluster_(topo::build_clos(clos_cfg())) {}
  host::Cluster cluster_;
};

TEST_F(ExtensionsTest, IntTraceMatchesCurrentEcmpPath) {
  FiveTuple t;
  t.src_ip = cluster_.topology().rnic(RnicId{0}).ip;
  t.dst_ip = cluster_.topology().rnic(RnicId{12}).ip;
  t.src_port = 4242;
  const auto r = cluster_.int_telemetry().trace(RnicId{0}, RnicId{12}, t);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.hops.size(), r.path.links.size());
  EXPECT_EQ(r.path.links,
            cluster_.fabric().current_path(RnicId{0}, RnicId{12}, t).links);
}

TEST_F(ExtensionsTest, IntReportsPerHopQueues) {
  // Congest one downlink and check INT sees the queue exactly there.
  fabric::FlowSpec f;
  f.src = RnicId{0};
  f.dst = RnicId{12};
  f.tuple.src_ip = cluster_.topology().rnic(f.src).ip;
  f.tuple.dst_ip = cluster_.topology().rnic(f.dst).ip;
  f.tuple.src_port = 9;
  f.demand_Bps = gbps_to_Bps(90);
  cluster_.fabric().add_flow(f);
  fabric::FlowSpec g = f;
  g.src = RnicId{2};
  g.tuple.src_ip = cluster_.topology().rnic(g.src).ip;
  g.tuple.src_port = 10;
  cluster_.fabric().add_flow(g);
  cluster_.run_for(msec(10));

  const auto r = cluster_.int_telemetry().trace(RnicId{0}, RnicId{12}, f.tuple);
  ASSERT_TRUE(r.complete);
  const LinkId hot = cluster_.topology().rnic(RnicId{12}).downlink;
  bool saw_queue = false;
  for (const auto& hop : r.hops) {
    if (hop.link == hot) {
      EXPECT_GT(hop.queue_bytes, 0);
      EXPECT_GT(hop.queue_delay, 0);
      saw_queue = true;
    }
  }
  EXPECT_TRUE(saw_queue);
}

TEST_F(ExtensionsTest, IntHasNoRateLimitUnlikeTraceroute) {
  FiveTuple t;
  t.src_ip = cluster_.topology().rnic(RnicId{0}).ip;
  t.dst_ip = cluster_.topology().rnic(RnicId{12}).ip;
  t.src_port = 1;
  // Hammer both tracers at one instant.
  int traceroute_complete = 0, int_complete = 0;
  for (int i = 0; i < 300; ++i) {
    if (cluster_.traceroute()
            .trace(RnicId{0}, RnicId{12}, t, sec(1))
            .all_responded) {
      ++traceroute_complete;
    }
    if (cluster_.int_telemetry().trace(RnicId{0}, RnicId{12}, t).complete) {
      ++int_complete;
    }
  }
  EXPECT_LT(traceroute_complete, 300);  // switch CPU budget exhausted
  EXPECT_EQ(int_complete, 300);         // data plane never says no
}

TEST_F(ExtensionsTest, AgentWithIntAlwaysKnowsPaths) {
  core::RPingmeshConfig cfg;
  cfg.agent.use_int_telemetry = true;
  core::RPingmesh rpm(cluster_, cfg);
  std::size_t with_path = 0, total = 0;
  rpm.analyzer().set_record_tap([&](const core::ProbeRecord& r) {
    ++total;
    if (r.path_known) ++with_path;
  });
  rpm.start();
  cluster_.run_for(sec(12));
  EXPECT_GT(total, 500u);
  EXPECT_EQ(with_path, total) << "INT-traced paths are never rate-limited";
  rpm.stop();
}

class RootCauseTest : public ExtensionsTest {
 protected:
  RootCauseTest() : rpm_(cluster_), advisor_(cluster_), faults_(cluster_) {
    rpm_.start();
  }

  /// Runs warmup, snapshots counters, runs the faulted window, returns the
  /// advisor's top hint for the first problem of `cat`.
  std::vector<core::RootCauseHint> run_and_advise(
      core::ProblemCategory cat, const std::function<void()>& inject) {
    cluster_.run_for(sec(21));
    advisor_.snapshot_baseline();
    inject();
    cluster_.run_for(sec(41));
    const auto* rep = rpm_.analyzer().last_report();
    for (const auto& p : rep->problems) {
      if (p.category == cat) return advisor_.advise(p);
    }
    return {};
  }

  core::RPingmesh rpm_;
  core::RootCauseAdvisor advisor_;
  faults::FaultInjector faults_;
};

TEST_F(RootCauseTest, CorruptionHintedFromCrcCounters) {
  const auto hints = run_and_advise(
      core::ProblemCategory::kSwitchNetworkProblem, [this] {
        LinkId fabric_link;
        for (const topo::Link& l : cluster_.topology().links()) {
          if (l.from.is_switch() && l.to.is_switch()) {
            fabric_link = l.id;
            break;
          }
        }
        faults_.inject_corruption(fabric_link, 0.5);
      });
  ASSERT_FALSE(hints.empty());
  EXPECT_NE(hints.front().cause.find("corruption"), std::string::npos)
      << hints.front().cause;
  EXPECT_GT(hints.front().confidence, 0.5);
  EXPECT_FALSE(hints.front().evidence.empty());
}

TEST_F(RootCauseTest, FlappingHintedFromDownDrops) {
  const auto hints = run_and_advise(
      core::ProblemCategory::kSwitchNetworkProblem, [this] {
        LinkId fabric_link;
        std::size_t seen = 0;
        for (const topo::Link& l : cluster_.topology().links()) {
          if (l.from.is_switch() && l.to.is_switch() && seen++ == 3) {
            fabric_link = l.id;
            break;
          }
        }
        faults_.inject_switch_port_flapping(fabric_link, msec(400), msec(400));
      });
  ASSERT_FALSE(hints.empty());
  EXPECT_NE(hints.front().cause.find("flapping"), std::string::npos)
      << hints.front().cause;
}

TEST_F(RootCauseTest, DeadlockHintedFromLinkState) {
  const auto hints = run_and_advise(
      core::ProblemCategory::kSwitchNetworkProblem, [this] {
        LinkId fabric_link;
        std::size_t seen = 0;
        for (const topo::Link& l : cluster_.topology().links()) {
          if (l.from.is_switch() && l.to.is_switch() && seen++ == 5) {
            fabric_link = l.id;
            break;
          }
        }
        faults_.inject_pfc_deadlock(fabric_link);
      });
  ASSERT_FALSE(hints.empty());
  EXPECT_NE(hints.front().cause.find("deadlock"), std::string::npos)
      << hints.front().cause;
}

TEST_F(RootCauseTest, MisconfigHintedFromRnicCounters) {
  const auto hints =
      run_and_advise(core::ProblemCategory::kRnicProblem, [this] {
        faults_.inject_gid_index_missing(RnicId{6});
      });
  ASSERT_FALSE(hints.empty());
  EXPECT_NE(hints.front().cause.find("misconfiguration"), std::string::npos)
      << hints.front().cause;
}

TEST_F(RootCauseTest, RnicDownHinted) {
  const auto hints =
      run_and_advise(core::ProblemCategory::kRnicProblem, [this] {
        faults_.inject_rnic_down(RnicId{6});
      });
  ASSERT_FALSE(hints.empty());
  EXPECT_NE(hints.front().cause.find("RNIC down"), std::string::npos)
      << hints.front().cause;
}

TEST_F(RootCauseTest, HostDownHinted) {
  const auto hints =
      run_and_advise(core::ProblemCategory::kHostDown, [this] {
        faults_.inject_host_down(HostId{3});
      });
  ASSERT_FALSE(hints.empty());
  EXPECT_NE(hints.front().cause.find("host power"), std::string::npos);
}

TEST_F(RootCauseTest, CpuOverloadHinted) {
  const auto hints =
      run_and_advise(core::ProblemCategory::kHighProcessingDelay, [this] {
        faults_.inject_cpu_overload(HostId{1}, 0.97);
      });
  ASSERT_FALSE(hints.empty());
  EXPECT_NE(hints.front().cause.find("CPU overload"), std::string::npos);
}

TEST_F(RootCauseTest, HintsAreRankedAndDeduplicated) {
  const auto hints = run_and_advise(
      core::ProblemCategory::kSwitchNetworkProblem, [this] {
        LinkId fabric_link;
        for (const topo::Link& l : cluster_.topology().links()) {
          if (l.from.is_switch() && l.to.is_switch()) {
            fabric_link = l.id;
            break;
          }
        }
        faults_.inject_corruption(fabric_link, 0.5);
      });
  for (std::size_t i = 1; i < hints.size(); ++i) {
    EXPECT_GE(hints[i - 1].confidence, hints[i].confidence);
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_NE(hints[i].cause, hints[j].cause);
    }
  }
}

}  // namespace
}  // namespace rpm
