// Unit tests for topology construction: Clos and rail-optimized builders,
// link wiring, and lookup helpers.
#include <gtest/gtest.h>

#include <set>

#include "topo/partition.h"
#include "topo/topology.h"

namespace rpm::topo {
namespace {

ClosConfig small_clos() {
  ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  return cfg;
}

TEST(Clos, CountsMatchConfig) {
  const auto cfg = small_clos();
  const Topology t = build_clos(cfg);
  EXPECT_EQ(t.num_hosts(), 2u * 2u * 2u);       // pods * tors * hosts
  EXPECT_EQ(t.num_rnics(), t.num_hosts() * 2u); // rnics_per_host
  // switches: 4 tors + 4 aggs + 4 spines
  EXPECT_EQ(t.num_switches(), 12u);
  EXPECT_EQ(t.tor_switches().size(), 4u);
}

TEST(Clos, LinkCountsMatchConfig) {
  const auto cfg = small_clos();
  const Topology t = build_clos(cfg);
  // Cables: tor-agg = pods * tors * aggs = 8; agg-spine = pods * planes *
  // spines_per_plane = 8; host = rnics = 16. Each cable = 2 directed links.
  EXPECT_EQ(t.num_links(), 2u * (8u + 8u + 16u));
}

TEST(Clos, EveryLinkHasAPeerInverse) {
  const Topology t = build_clos(small_clos());
  for (const Link& l : t.links()) {
    const Link& p = t.link(l.peer);
    EXPECT_EQ(p.peer, l.id);
    EXPECT_EQ(p.from, l.to);
    EXPECT_EQ(p.to, l.from);
  }
}

TEST(Clos, RnicsOfAHostShareOneTor) {
  const Topology t = build_clos(small_clos());
  for (const HostInfo& h : t.hosts()) {
    std::set<SwitchId> tors;
    for (RnicId r : h.rnics) tors.insert(t.rnic(r).tor);
    EXPECT_EQ(tors.size(), 1u);
  }
}

TEST(Clos, TorMeshGroupsAreComplete) {
  const auto cfg = small_clos();
  const Topology t = build_clos(cfg);
  for (SwitchId tor : t.tor_switches()) {
    EXPECT_EQ(t.rnics_under_tor(tor).size(),
              cfg.hosts_per_tor * cfg.rnics_per_host);
  }
}

TEST(Clos, RnicUplinkWiring) {
  const Topology t = build_clos(small_clos());
  for (const RnicInfo& r : t.rnics()) {
    const Link& up = t.link(r.uplink);
    EXPECT_TRUE(up.from.is_host());
    EXPECT_EQ(up.from.as_host(), r.host);
    EXPECT_EQ(up.to.as_switch(), r.tor);
    const Link& down = t.link(r.downlink);
    EXPECT_EQ(down.from.as_switch(), r.tor);
  }
}

TEST(Clos, UniqueIpsAndLookup) {
  const Topology t = build_clos(small_clos());
  std::set<std::uint32_t> ips;
  for (const RnicInfo& r : t.rnics()) {
    ips.insert(r.ip.value);
    EXPECT_EQ(t.rnic_by_ip(r.ip), r.id);
  }
  EXPECT_EQ(ips.size(), t.num_rnics());
  EXPECT_THROW((void)t.rnic_by_ip(IpAddr{12345}), std::out_of_range);
}

TEST(Clos, ParallelPathHelper) {
  const auto cfg = small_clos();
  EXPECT_EQ(clos_parallel_paths(cfg, /*cross_pod=*/true), 4u);
  EXPECT_EQ(clos_parallel_paths(cfg, /*cross_pod=*/false), 2u);
}

TEST(Clos, RejectsZeroDimensions) {
  ClosConfig cfg = small_clos();
  cfg.num_pods = 0;
  EXPECT_THROW(build_clos(cfg), std::invalid_argument);
}

TEST(Clos, TierNames) {
  EXPECT_STREQ(tier_name(SwitchTier::kTor), "tor");
  EXPECT_STREQ(tier_name(SwitchTier::kSpine), "spine");
}

TEST(Rail, StructureMatchesFigure12) {
  RailConfig cfg;
  cfg.num_hosts = 3;
  cfg.rails = 4;
  cfg.num_spines = 2;
  const Topology t = build_rail_optimized(cfg);
  EXPECT_EQ(t.num_hosts(), 3u);
  EXPECT_EQ(t.num_rnics(), 12u);
  EXPECT_EQ(t.num_switches(), 6u);       // 4 rails + 2 spines
  EXPECT_EQ(t.tor_switches().size(), 4u);  // rail switches act as ToRs
  // NIC i of every host is on rail switch i.
  for (const HostInfo& h : t.hosts()) {
    std::set<SwitchId> rails_used;
    for (RnicId r : h.rnics) rails_used.insert(t.rnic(r).tor);
    EXPECT_EQ(rails_used.size(), cfg.rails);  // all different rails
  }
}

TEST(Rail, SameIndexNicsShareARail) {
  RailConfig cfg;
  cfg.num_hosts = 4;
  cfg.rails = 2;
  cfg.num_spines = 2;
  const Topology t = build_rail_optimized(cfg);
  for (std::uint32_t rail = 0; rail < cfg.rails; ++rail) {
    std::set<SwitchId> tors;
    for (const HostInfo& h : t.hosts()) {
      tors.insert(t.rnic(h.rnics[rail]).tor);
    }
    EXPECT_EQ(tors.size(), 1u) << "rail " << rail;
  }
}

TEST(Rail, RejectsZeroDimensions) {
  RailConfig cfg;
  cfg.rails = 0;
  EXPECT_THROW(build_rail_optimized(cfg), std::invalid_argument);
}

TEST(Topology, OutLinksSorted) {
  const Topology t = build_clos(small_clos());
  for (const SwitchInfo& s : t.switches()) {
    const auto& out = t.out_links(NodeRef::sw(s.id));
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_FALSE(out.empty());
  }
}

TEST(Topology, LinkNamesAreHumanReadable) {
  const Topology t = build_clos(small_clos());
  bool found_tor_agg = false;
  for (const Link& l : t.links()) {
    if (l.name.find("tor-0/0->agg-0/0") != std::string::npos) {
      found_tor_agg = true;
    }
  }
  EXPECT_TRUE(found_tor_agg);
}

TEST(Topology, AccessorsThrowOnBadIds) {
  const Topology t = build_clos(small_clos());
  EXPECT_THROW((void)t.host(HostId{9999}), std::out_of_range);
  EXPECT_THROW((void)t.rnic(RnicId{9999}), std::out_of_range);
  EXPECT_THROW((void)t.switch_info(SwitchId{9999}), std::out_of_range);
  EXPECT_THROW((void)t.link(LinkId{9999}), std::out_of_range);
}

TEST(Topology, CapacityStoredAsBytesPerSecond) {
  ClosConfig cfg = small_clos();
  cfg.host_link.capacity_gbps = 200.0;
  const Topology t = build_clos(cfg);
  const RnicInfo& r = t.rnic(RnicId{0});
  EXPECT_DOUBLE_EQ(t.link(r.uplink).capacity_Bps, 200e9 / 8.0);
}

TEST(PartitionMap, PodsStayWholeAndHostsFollowTheirTor) {
  const Topology t = build_clos(small_clos());
  const PartitionMap map = build_pod_partitions(t, 2);
  EXPECT_EQ(map.num_partitions, 2u);
  // Every non-spine switch of a pod shares one partition.
  for (const SwitchInfo& s : t.switches()) {
    if (s.tier == SwitchTier::kSpine) continue;
    EXPECT_EQ(map.switch_partition[s.id.value], s.pod % 2)
        << "switch " << s.id.value;
  }
  // Hosts and RNICs inherit their attachment ToR's partition, so no
  // RNIC<->ToR link is ever a cut edge.
  for (const RnicInfo& r : t.rnics()) {
    EXPECT_EQ(map.rnic_partition[r.id.value],
              map.switch_partition[r.tor.value]);
    EXPECT_EQ(map.host_partition[r.host.value],
              map.switch_partition[r.tor.value]);
  }
  for (const Link& l : t.links()) {
    if (l.from.is_host() || l.to.is_host()) EXPECT_FALSE(map.is_cut(l));
  }
}

TEST(PartitionMap, ClampsToPodCountAndComputesCutLookahead) {
  const Topology t = build_clos(small_clos());  // 2 pods
  const PartitionMap over = build_pod_partitions(t, 8);
  EXPECT_EQ(over.num_partitions, 2u);  // clamped: more partitions than pods

  const PartitionMap map = build_pod_partitions(t, 2);
  EXPECT_GT(map.cut_links, 0u);
  // Lookahead = min propagation over cut edges only.
  TimeNs want = 0;
  for (const Link& l : t.links()) {
    if (!map.is_cut(l)) continue;
    if (want == 0 || l.propagation < want) want = l.propagation;
  }
  EXPECT_EQ(map.cut_lookahead, want);
  EXPECT_GE(map.cut_lookahead, 1);
}

TEST(PartitionMap, SinglePartitionHasNoCutEdges) {
  const Topology t = build_clos(small_clos());
  const PartitionMap map = build_pod_partitions(t, 1);
  EXPECT_EQ(map.num_partitions, 1u);
  EXPECT_EQ(map.cut_links, 0u);
  EXPECT_GE(map.cut_lookahead, 1);  // falls back to topology-wide minimum
  for (const Link& l : t.links()) EXPECT_FALSE(map.is_cut(l));
}

}  // namespace
}  // namespace rpm::topo
