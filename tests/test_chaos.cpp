// Tests for the chaos harness: the acceptance campaign (control-plane
// blackouts layered over real faults must produce zero false switch
// localizations while the real fault is still found), deterministic
// byte-identical reports, and the plan/runner plumbing.
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "host/cluster.h"
#include "topo/topology.h"

namespace rpm::chaos {
namespace {

topo::ClosConfig clos_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

/// A deployment with 5 s analysis periods so a 160 s campaign yields enough
/// periods to score recovery.
struct Deployment {
  explicit Deployment(std::uint64_t seed = 7, std::size_t ingest_threads = 0,
                      bool sketch_on = false, std::uint32_t sim_partitions = 1)
      : cluster(topo::build_clos(clos_cfg()),
                [seed, sim_partitions] {
                  host::ClusterConfig c;
                  c.seed = seed;
                  c.sim_partitions = sim_partitions;
                  return c;
                }()),
        rpm(cluster,
            [ingest_threads, sketch_on] {
              core::RPingmeshConfig c;
              c.analyzer.period = sec(5);
              c.analyzer.ingest.threads = ingest_threads;
              c.analyzer.sketch_mode = sketch_on ? core::SketchMode::kOn
                                                 : core::SketchMode::kOff;
              return c;
            }()),
        injector(cluster) {
    rpm.start();
  }
  host::Cluster cluster;
  core::RPingmesh rpm;
  faults::FaultInjector injector;

  [[nodiscard]] LinkId first_fabric_link() const {
    for (const topo::Link& l : cluster.topology().links()) {
      if (l.from.is_switch() && l.to.is_switch()) return l.id;
    }
    return LinkId{};
  }
};

/// The acceptance campaign from the issue: Controller crash + restart, an
/// Agent restart into the dead Controller, an Analyzer brownout, a host
/// failure that clears, and a corrupting fabric link that does not.
ChaosPlan acceptance_plan(std::uint64_t seed, LinkId fabric_link) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.duration = sec(160);
  plan.controller_crash(sec(30))
      .agent_restart(sec(32), HostId{1})
      .controller_restart(sec(50))
      .analyzer_outage(sec(55), sec(73))
      .inject(sec(75), "host3-down", faults::FaultSpec::host_down(HostId{3}))
      .clear(sec(95), "host3-down")
      .inject(sec(100), "fabric-corruption",
              faults::FaultSpec::corruption(fabric_link, 0.5));
  return plan;
}

TEST(Chaos, AcceptanceCampaignSurvivesControlPlaneEvents) {
  Deployment d;
  ChaosRunner runner(d.cluster, d.rpm, d.injector);
  const ChaosReport rep = runner.run(acceptance_plan(7, d.first_fabric_link()));

  // Control-plane events never masquerade as network faults.
  EXPECT_EQ(rep.switch_false_positives, 0u);
  EXPECT_EQ(rep.outage_false_positives, 0u);
  EXPECT_EQ(rep.false_positives, 0u);
  EXPECT_EQ(rep.mislocalized, 0u);
  EXPECT_DOUBLE_EQ(rep.precision, 1.0);

  // The real faults are still found through the noise.
  ASSERT_EQ(rep.ground_truths.size(), 3u);
  EXPECT_EQ(rep.ground_truths[0].label, "agent-restart/h1");
  EXPECT_FALSE(rep.ground_truths[0].scored);  // QPN reset: noise by design
  EXPECT_EQ(rep.ground_truths[1].label, "host3-down");
  EXPECT_TRUE(rep.ground_truths[1].matched);
  EXPECT_EQ(rep.ground_truths[2].label, "fabric-corruption");
  EXPECT_TRUE(rep.ground_truths[2].matched);
  EXPECT_EQ(rep.ground_truths[2].cleared_at, kNoTime);  // active at the end
  EXPECT_DOUBLE_EQ(rep.recall, 1.0);

  // The stale-QPN burst after the Agent restarted into the dead Controller
  // surfaced as noise, not as a verdict.
  EXPECT_GT(rep.noise_problems, 0u);

  // Bounded recovery: after every control-plane event the Analyzer is back
  // to clean full-SLA periods within a handful of 5 s periods.
  ASSERT_EQ(rep.recoveries.size(), 4u);
  for (const ChaosReport::Recovery& r : rep.recoveries) {
    EXPECT_NE(r.periods_to_recover, -1) << r.event << " never recovered";
    EXPECT_LE(r.periods_to_recover, 8) << r.event;
  }

  // Lease machinery fired on every host (the 20 s blackout outlives the
  // 15 s lease) and every spill ring drained once the Analyzer came back.
  // Host 1 sat out: its Agent process restarted mid-blackout, so it came
  // back through a *fresh* registration, not a lease-expiry re-registration.
  for (std::size_t h = 0; h < d.cluster.num_hosts(); ++h) {
    const core::Agent& agent = d.rpm.agent(HostId{static_cast<std::uint32_t>(h)});
    if (h != 1) {
      EXPECT_GT(agent.lease_expiries(), 0u) << "host " << h;
      EXPECT_GT(agent.reregistrations(), 0u) << "host " << h;
    }
    EXPECT_EQ(agent.spill_depth(), 0u) << "host " << h;
  }
  EXPECT_EQ(d.rpm.controller().num_registered_agents(), d.cluster.num_hosts());
}

TEST(Chaos, NoPhantomVerdictsAcrossSeeds) {
  // The zero-phantom property must hold for any RNG trajectory, not one
  // lucky seed: across seeds, every unmatched claim the campaign provokes
  // happens while a real injected fault is in flight (mislocalization of a
  // real event), never out of thin air during a control-plane blackout.
  for (const std::uint64_t seed : {std::uint64_t{13}, std::uint64_t{29}}) {
    Deployment d(seed);
    ChaosRunner runner(d.cluster, d.rpm, d.injector);
    const ChaosReport rep =
        runner.run(acceptance_plan(seed, d.first_fabric_link()));
    EXPECT_EQ(rep.false_positives, 0u) << "seed " << seed;
    EXPECT_EQ(rep.switch_false_positives, 0u) << "seed " << seed;
    EXPECT_EQ(rep.outage_false_positives, 0u) << "seed " << seed;
    EXPECT_DOUBLE_EQ(rep.recall, 1.0) << "seed " << seed;
  }
}

TEST(Chaos, SameSeedYieldsByteIdenticalReports) {
  // Two fresh deployments, same seed, same plan: the JSON scorecard must be
  // byte-for-byte identical (CI enforces the same property on the example
  // binary).
  std::string first;
  for (int run = 0; run < 2; ++run) {
    Deployment d(11);
    ChaosRunner runner(d.cluster, d.rpm, d.injector);
    const std::string json =
        runner.run(acceptance_plan(11, d.first_fabric_link())).to_json();
    if (run == 0) {
      first = json;
    } else {
      EXPECT_EQ(json, first);
    }
  }
  EXPECT_FALSE(first.empty());
}

TEST(Chaos, ReportBytesIdenticalForAnyIngestThreadCount) {
  // The worker-pool ingestion backend must not leak thread scheduling into
  // results: the same seed and plan yield byte-for-byte identical
  // ChaosReport JSON for inline (0), 1-thread, and 4-thread ingestion.
  // Per-shard FIFO + single-consumer shards + shard-order merge make the
  // merged period records — and therefore every verdict — identical.
  std::string inline_json;
  for (const std::size_t threads :
       {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    Deployment d(11, threads);
    ChaosRunner runner(d.cluster, d.rpm, d.injector);
    const std::string json =
        runner.run(acceptance_plan(11, d.first_fabric_link())).to_json();
    if (threads == 0) {
      inline_json = json;
    } else {
      EXPECT_EQ(json, inline_json) << "ingest_threads=" << threads;
    }
  }
  EXPECT_FALSE(inline_json.empty());
}

TEST(Chaos, PartitionedSimIsByteIdenticalAcrossRuns) {
  // Pod-partitioned event loop (2 partitions over the 2-pod Clos): the
  // cross-partition merge order is fixed by (time, src-partition, seq), so
  // the same seed yields byte-for-byte identical ChaosReport JSON across
  // runs. (Determinism is per partition count; 2-partition reports are not
  // expected to match the single-queue schedule.)
  std::string first;
  for (int run = 0; run < 2; ++run) {
    Deployment d(11, 0, false, 2);
    ASSERT_NE(d.cluster.parallel_scheduler(), nullptr);
    EXPECT_EQ(d.cluster.partition_map().num_partitions, 2u);
    ChaosRunner runner(d.cluster, d.rpm, d.injector);
    const std::string json =
        runner.run(acceptance_plan(11, d.first_fabric_link())).to_json();
    if (run == 0) {
      first = json;
    } else {
      EXPECT_EQ(json, first);
    }
  }
  EXPECT_FALSE(first.empty());
}

TEST(Chaos, SinglePartitionMatchesDefaultPipelineBytes) {
  // sim_partitions=1 must stay on the inline single-queue backend and
  // reproduce the default pipeline's report bytes exactly — the
  // compatibility guarantee for every pre-partitioning seed.
  std::string default_json;
  std::string single_json;
  {
    Deployment d(11);
    ChaosRunner runner(d.cluster, d.rpm, d.injector);
    default_json =
        runner.run(acceptance_plan(11, d.first_fabric_link())).to_json();
  }
  {
    Deployment d(11, 0, false, 1);
    EXPECT_EQ(d.cluster.parallel_scheduler(), nullptr);
    ChaosRunner runner(d.cluster, d.rpm, d.injector);
    single_json =
        runner.run(acceptance_plan(11, d.first_fabric_link())).to_json();
  }
  EXPECT_EQ(single_json, default_json);
  EXPECT_FALSE(default_json.empty());
}

TEST(Chaos, SketchModeMatchesRawVerdictsOnChaosGroundTruth) {
  // Sketch-driven analysis must not trade correctness for upload volume:
  // on the acceptance campaign's ground truth, sketch_mode=on reaches the
  // same precision/recall and the same per-fault matched flags as the raw
  // pipeline (every timeout still rides the wire raw, so detection and
  // localization see the same evidence).
  const auto run_campaign = [](bool sketch_on) {
    Deployment d(7, 0, sketch_on);
    ChaosRunner runner(d.cluster, d.rpm, d.injector);
    return runner.run(acceptance_plan(7, d.first_fabric_link()));
  };
  const ChaosReport off = run_campaign(false);
  const ChaosReport on = run_campaign(true);

  EXPECT_DOUBLE_EQ(on.precision, off.precision);
  EXPECT_DOUBLE_EQ(on.recall, off.recall);
  EXPECT_EQ(on.false_positives, off.false_positives);
  EXPECT_EQ(on.switch_false_positives, off.switch_false_positives);
  EXPECT_EQ(on.outage_false_positives, off.outage_false_positives);
  EXPECT_EQ(on.mislocalized, off.mislocalized);
  ASSERT_EQ(on.ground_truths.size(), off.ground_truths.size());
  for (std::size_t i = 0; i < on.ground_truths.size(); ++i) {
    EXPECT_EQ(on.ground_truths[i].label, off.ground_truths[i].label);
    EXPECT_EQ(on.ground_truths[i].matched, off.ground_truths[i].matched)
        << off.ground_truths[i].label;
  }
}

TEST(Chaos, SketchModeReportBytesIdenticalAcrossRunsAndThreads) {
  // sketch_mode=on must be deterministically reproducible: same seed =>
  // byte-identical ChaosReport JSON across repeated runs and for any ingest
  // thread count (the summary merge is per-shard in submission order, and
  // the fixed-boundary sketches merge bucket-wise — no order sensitivity).
  std::string first;
  for (const std::size_t threads :
       {std::size_t{0}, std::size_t{0}, std::size_t{4}}) {
    Deployment d(11, threads, /*sketch_on=*/true);
    ChaosRunner runner(d.cluster, d.rpm, d.injector);
    const std::string json =
        runner.run(acceptance_plan(11, d.first_fabric_link())).to_json();
    if (first.empty()) {
      first = json;
    } else {
      EXPECT_EQ(json, first) << "ingest_threads=" << threads;
    }
  }
  EXPECT_FALSE(first.empty());
}

TEST(Chaos, StepNamesAndPlanValidation) {
  EXPECT_STREQ(chaos_step_name(ChaosStep::Kind::kControllerCrash),
               "controller-crash");
  EXPECT_STREQ(chaos_step_name(ChaosStep::Kind::kAnalyzerOutageEnd),
               "analyzer-outage-end");
  ChaosPlan plan;
  EXPECT_THROW(plan.analyzer_outage(sec(10), sec(10)), std::invalid_argument);
  EXPECT_THROW(plan.inject(sec(1), "x", faults::FaultSpec{}),
               std::invalid_argument);
}

TEST(Chaos, ClearOfUnknownLabelThrows) {
  Deployment d;
  ChaosRunner runner(d.cluster, d.rpm, d.injector);
  ChaosPlan plan;
  plan.duration = sec(10);
  plan.clear(sec(1), "never-injected");
  EXPECT_THROW(runner.run(plan), std::logic_error);
}

TEST(Chaos, EmptyPlanOnHealthyClusterIsClean) {
  Deployment d;
  ChaosRunner runner(d.cluster, d.rpm, d.injector);
  ChaosPlan plan;
  plan.duration = sec(30);
  const ChaosReport rep = runner.run(plan);
  EXPECT_EQ(rep.false_positives, 0u);
  EXPECT_EQ(rep.problems_total, rep.noise_problems + rep.unscored_problems);
  EXPECT_DOUBLE_EQ(rep.precision, 1.0);
  EXPECT_DOUBLE_EQ(rep.recall, 1.0);  // nothing injected, nothing missed
  EXPECT_GT(rep.periods, 0u);
}

}  // namespace
}  // namespace rpm::chaos
