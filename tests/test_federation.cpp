// Tests for the hierarchical federation tier (per-pod Analyzers + global
// merge) and the ControllerGroup standby failover:
//
//  * a federated deployment under a chaos campaign that kills the primary
//    Controller mid-period and a PodAnalyzer mid-drain still reaches full
//    precision/recall on injected ground truth;
//  * same seed => byte-identical ChaosReport JSON for pods in {1, 2, 4},
//    and for any ingest thread count at a fixed pod count;
//  * a restarted Analyzer role reloads its journaled (pod, seq) dedup
//    windows, so replayed digests never re-count drained history;
//  * standby promotion follows the Controller::restart() contract (fresh
//    registry, epoch fenced past the deposed primary) and exports the
//    rpm_controller_epoch / rpm_controller_failovers_total series;
//  * DiagnosisLogs trimmed past history_limit spill into the StateJournal
//    archive and explain() falls back to them.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "core/digest.h"
#include "core/federation.h"
#include "core/journal.h"
#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "host/cluster.h"
#include "sim/scheduler.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "topo/topology.h"

namespace rpm {
namespace {

using chaos::ChaosPlan;
using chaos::ChaosReport;
using chaos::ChaosRunner;
using chaos::ChaosStep;

/// Four Clos pods so federation.pods in {1, 2, 4} all populate (hosts fold
/// by Clos pod modulo the federation pod count).
topo::ClosConfig clos_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 4;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 1;
  cfg.rnics_per_host = 2;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

/// A federated deployment with 5 s analysis periods and a warm standby.
struct Deployment {
  explicit Deployment(std::uint64_t seed, std::size_t pods, bool standby,
                      std::size_t ingest_threads = 0,
                      std::size_t history_limit = 512)
      : cluster(topo::build_clos(clos_cfg()),
                [seed] {
                  host::ClusterConfig c;
                  c.seed = seed;
                  return c;
                }()),
        rpm(cluster,
            [pods, standby, ingest_threads, history_limit] {
              core::RPingmeshConfig c;
              c.analyzer.period = sec(5);
              c.analyzer.ingest.threads = ingest_threads;
              c.analyzer.history_limit = history_limit;
              c.federation.pods = pods;
              c.federation.standby_controller = standby;
              return c;
            }()),
        injector(cluster) {
    rpm.start();
  }
  host::Cluster cluster;
  core::RPingmesh rpm;
  faults::FaultInjector injector;

  [[nodiscard]] LinkId first_fabric_link() const {
    for (const topo::Link& l : cluster.topology().links()) {
      if (l.from.is_switch() && l.to.is_switch()) return l.id;
    }
    return LinkId{};
  }
};

/// The issue's acceptance campaign: kill the primary mid-period (the warm
/// standby must take over), kill one PodAnalyzer mid-drain (journal
/// restart), then layer real faults on top — a host failure and a
/// corrupting fabric link, both still active at campaign end.
ChaosPlan failover_plan(std::uint64_t seed, LinkId fabric_link,
                        bool pod_steps) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.duration = sec(140);
  plan.controller_crash(sec(32));     // mid-period (periods close at 5 s)
  plan.controller_restart(sec(50));   // deposed member returns as standby
  if (pod_steps) {
    plan.pod_analyzer_crash(sec(57), 1);  // mid-drain for pod 1
    plan.pod_analyzer_restart(sec(68), 1);
  }
  plan.inject(sec(80), "host3-down", faults::FaultSpec::host_down(HostId{3}))
      .inject(sec(105), "fabric-corruption",
              faults::FaultSpec::corruption(fabric_link, 0.5));
  return plan;
}

TEST(Federation, StepAndAccessorSurfaces) {
  EXPECT_STREQ(chaos_step_name(ChaosStep::Kind::kPodAnalyzerCrash),
               "pod-analyzer-crash");
  EXPECT_STREQ(chaos_step_name(ChaosStep::Kind::kPodAnalyzerRestart),
               "pod-analyzer-restart");

  Deployment flat(3, 1, /*standby=*/false);
  EXPECT_FALSE(flat.rpm.federated());
  EXPECT_EQ(flat.rpm.num_pods(), 1u);
  EXPECT_NO_THROW((void)flat.rpm.analyzer());

  Deployment fed(3, 2, /*standby=*/false);
  EXPECT_TRUE(fed.rpm.federated());
  EXPECT_EQ(fed.rpm.num_pods(), 2u);
  EXPECT_THROW((void)fed.rpm.analyzer(), std::logic_error);
  EXPECT_EQ(fed.rpm.pod_analyzer(0).pod(), 0u);
  EXPECT_EQ(fed.rpm.pod_analyzer(1).pod(), 1u);
  // Every host lands in exactly one pod; both pods are populated.
  EXPECT_GT(fed.rpm.pod_analyzer(0).hosts().size(), 0u);
  EXPECT_GT(fed.rpm.pod_analyzer(1).hosts().size(), 0u);
  EXPECT_EQ(fed.rpm.pod_analyzer(0).hosts().size() +
                fed.rpm.pod_analyzer(1).hosts().size(),
            fed.cluster.num_hosts());
}

TEST(Federation, CampaignSurvivesPrimaryKillAndPodAnalyzerKill) {
  Deployment d(7, 2, /*standby=*/true);
  ChaosRunner runner(d.cluster, d.rpm, d.injector);
  const ChaosReport rep =
      runner.run(failover_plan(7, d.first_fabric_link(), /*pod_steps=*/true));

  // The control-plane events never masquerade as network verdicts.
  EXPECT_EQ(rep.false_positives, 0u);
  EXPECT_EQ(rep.switch_false_positives, 0u);
  EXPECT_EQ(rep.outage_false_positives, 0u);
  EXPECT_EQ(rep.mislocalized, 0u);
  EXPECT_DOUBLE_EQ(rep.precision, 1.0);

  // The real faults are found through the failovers.
  ASSERT_EQ(rep.ground_truths.size(), 2u);
  EXPECT_EQ(rep.ground_truths[0].label, "host3-down");
  EXPECT_TRUE(rep.ground_truths[0].matched);
  EXPECT_EQ(rep.ground_truths[1].label, "fabric-corruption");
  EXPECT_TRUE(rep.ground_truths[1].matched);
  EXPECT_DOUBLE_EQ(rep.recall, 1.0);

  // Bounded recovery after every control-plane event.
  ASSERT_EQ(rep.recoveries.size(), 4u);
  for (const ChaosReport::Recovery& r : rep.recoveries) {
    EXPECT_NE(r.periods_to_recover, -1) << r.event << " never recovered";
    EXPECT_LE(r.periods_to_recover, 8) << r.event;
  }

  // The standby took over exactly once, epoch-fenced past the deposed
  // primary, and every Agent re-registered with it.
  EXPECT_EQ(d.rpm.controller_group().failovers(), 1u);
  EXPECT_FALSE(d.rpm.controller_down());
  EXPECT_EQ(d.rpm.controller().num_registered_agents(), d.cluster.num_hosts());
  for (std::size_t h = 0; h < d.cluster.num_hosts(); ++h) {
    EXPECT_EQ(d.rpm.agent(HostId{static_cast<std::uint32_t>(h)})
                  .controller_epoch_seen(),
              d.rpm.controller().epoch())
        << "host " << h;
  }

  // Digests flowed from both pods into the global merge.
  EXPECT_GT(d.rpm.pod_analyzer(0).digests_sent(), 0u);
  EXPECT_GT(d.rpm.pod_analyzer(1).digests_sent(), 0u);
  EXPECT_GT(d.rpm.pod_analyzer(0).digest_bytes_sent(), 0u);
  EXPECT_GT(d.rpm.global_analyzer().merges(), 0u);
}

TEST(Federation, SameSeedByteIdenticalReportsForEachPodCount) {
  // Two fresh deployments per pod count, same seed and plan: the JSON
  // scorecard must be byte-for-byte identical. (Identity is required per
  // pod count, not across pod counts — merge order and foreign-timeout
  // routing legitimately differ with the partition.)
  for (const std::size_t pods :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    std::string first;
    for (int run = 0; run < 2; ++run) {
      Deployment d(11, pods, /*standby=*/true);
      ChaosRunner runner(d.cluster, d.rpm, d.injector);
      const std::string json =
          runner.run(failover_plan(11, d.first_fabric_link(), pods > 1))
              .to_json();
      if (run == 0) {
        first = json;
      } else {
        EXPECT_EQ(json, first) << "pods=" << pods;
      }
    }
    EXPECT_FALSE(first.empty());
  }
}

TEST(Federation, ReportBytesIdenticalForAnyIngestThreadCount) {
  // Thread-count invariance must survive federation: per-pod worker pools
  // cannot leak scheduling into the merged verdict stream.
  std::string inline_json;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    Deployment d(11, 2, /*standby=*/true, threads);
    ChaosRunner runner(d.cluster, d.rpm, d.injector);
    const std::string json =
        runner.run(failover_plan(11, d.first_fabric_link(), true)).to_json();
    if (threads == 0) {
      inline_json = json;
    } else {
      EXPECT_EQ(json, inline_json) << "ingest_threads=" << threads;
    }
  }
  EXPECT_FALSE(inline_json.empty());
}

TEST(Federation, GlobalDedupWindowSurvivesJournalRestart) {
  // A replayed digest (same pod, same seq) is dropped before AND after a
  // crash + journal restore: the reloaded (pod, seq) windows keep retried
  // history out of the vote tallies.
  const topo::Topology topo = topo::build_clos(clos_cfg());
  sim::InlineScheduler sched;
  core::StateJournal journal;
  core::GlobalAnalyzer::Config cfg;
  cfg.analyzer.period = sec(5);
  core::GlobalAnalyzer global(topo, sched, cfg);
  global.attach_journal(&journal);

  const auto make_digest = [] {
    core::PodDigest d;
    d.pod = 0;
    d.seq = 1;
    d.period_start = 0;
    d.period_end = sec(5);
    d.records_processed = 100;
    d.timeouts_switch = 7;
    d.cluster_sla.probes = 100;
    d.cluster_sla.timeouts = 7;
    return d;
  };

  global.ingest_digest(make_digest());
  const core::PeriodReport& first = global.merge_now();
  EXPECT_EQ(first.records_processed, 100u);
  EXPECT_EQ(first.timeouts_switch, 7u);

  // Replay before any crash: the live window drops it.
  global.ingest_digest(make_digest());
  EXPECT_EQ(global.duplicate_digests(), 1u);
  EXPECT_EQ(global.merge_now().records_processed, 0u);

  // Crash wipes volatile state; the journal restores the dedup window, so
  // the SAME replay is still caught as a duplicate and tallies stay
  // untouched (the duplicate counter is process-lifetime, so it advances).
  global.crash();
  ASSERT_TRUE(global.restart_from_journal());
  global.ingest_digest(make_digest());
  EXPECT_EQ(global.duplicate_digests(), 2u);
  const core::PeriodReport& after = global.merge_now();
  EXPECT_EQ(after.records_processed, 0u);
  EXPECT_EQ(after.timeouts_switch, 0u);
}

TEST(Federation, PodAnalyzerReloadsDigestSeqFromJournal) {
  Deployment d(5, 2, /*standby=*/false);
  d.cluster.run_for(sec(32));  // a few closed periods, mid-period pause
  core::PodAnalyzer& pod = d.rpm.pod_analyzer(1);
  const std::uint64_t before = pod.digests_sent();
  ASSERT_GT(before, 0u);

  d.rpm.crash_pod_analyzer(1);
  EXPECT_EQ(pod.digests_sent(), 0u);  // volatile seq died with the process
  d.rpm.restart_pod_analyzer(1);
  // The journaled checkpoint carries the post-flush seq: the restarted pod
  // continues the sequence instead of replaying it.
  EXPECT_EQ(pod.digests_sent(), before);

  const std::uint64_t dups = d.rpm.global_analyzer().duplicate_digests();
  d.cluster.run_for(sec(20));
  EXPECT_GT(pod.digests_sent(), before);
  EXPECT_EQ(d.rpm.global_analyzer().duplicate_digests(), dups);
}

TEST(Federation, StandbyPromotionFollowsRestartContractAndExports) {
  Deployment d(9, 1, /*standby=*/true);
  d.cluster.run_for(sec(20));
  ASSERT_EQ(d.rpm.controller().num_registered_agents(), d.cluster.num_hosts());
  const std::uint64_t epoch_before = d.rpm.controller().epoch();
  ASSERT_EQ(d.rpm.controller_group().active_index(), 0u);

  d.rpm.crash_controller();
  EXPECT_TRUE(d.rpm.controller_down());
  d.cluster.run_for(sec(5));  // failover_delay (2 s) elapses

  // The standby is primary now: fresh (empty) registry — the restart()
  // contract — and an epoch strictly above anything the deposed primary
  // stamped, so stale pinglists cannot resurrect.
  EXPECT_FALSE(d.rpm.controller_down());
  EXPECT_EQ(d.rpm.controller_group().active_index(), 1u);
  EXPECT_EQ(d.rpm.controller_group().failovers(), 1u);
  EXPECT_GT(d.rpm.controller().epoch(), epoch_before);

  // Agents re-register through lease expiry + backoff (15 s lease).
  d.cluster.run_for(sec(40));
  EXPECT_EQ(d.rpm.controller().num_registered_agents(), d.cluster.num_hosts());

  // Satellite: the failover series round-trip through the exporter.
  const std::string text =
      telemetry::to_prometheus(telemetry::registry().snapshot());
  EXPECT_NE(text.find("rpm_controller_epoch"), std::string::npos);
  EXPECT_NE(text.find("rpm_controller_failovers_total"), std::string::npos);
}

TEST(Federation, TrimmedDiagnosisSpillsToArchiveAndExplainFallsBack) {
  // history_limit = 1: every period close evicts the previous period's
  // DiagnosisLog into the journal archive. explain() on an aged-out problem
  // id must come back from the archive, not vanish.
  Deployment d(13, 1, /*standby=*/false, 0, /*history_limit=*/1);
  d.cluster.run_for(sec(10));  // let host 3 register + upload first
  d.injector.inject_host_down(HostId{3});
  d.cluster.run_for(sec(40));  // silence threshold (20 s) + several periods

  const core::PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  ASSERT_FALSE(rep->problems.empty());
  const std::uint64_t old_id = rep->problems.front().problem_id;
  ASSERT_FALSE(d.rpm.analyzer().explain(old_id).empty());

  d.cluster.run_for(sec(30));  // six more periods age the log out
  EXPECT_GT(d.rpm.journal().archived("analyzer"), 0u);
  const std::string post_mortem = d.rpm.analyzer().explain(old_id);
  EXPECT_FALSE(post_mortem.empty()) << "archived problem became unexplainable";
  EXPECT_NE(post_mortem.find("\"problem_id\""), std::string::npos);
}

}  // namespace
}  // namespace rpm
