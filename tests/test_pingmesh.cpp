// Tests for the Pingmesh software-RTT baseline: its measured RTT includes
// host scheduling delays (Figure 2) and its TCP probes are blind to
// RoCE-queue problems (§2.4).
#include <gtest/gtest.h>

#include "common/stats.h"
#include "faults/faults.h"
#include "pingmesh/pingmesh.h"

namespace rpm::pingmesh {
namespace {

topo::ClosConfig small_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 1;
  return cfg;
}

class PingmeshTest : public ::testing::Test {
 protected:
  PingmeshTest() : cluster_(topo::build_clos(small_cfg())), pm_(cluster_) {}

  /// Run `n` probes and collect the software RTTs (ok only).
  PercentileWindow run_probes(RnicId src, RnicId dst, int n,
                              int* timeouts = nullptr) {
    PercentileWindow win;
    int local_timeouts = 0;
    for (int i = 0; i < n; ++i) {
      pm_.probe(src, dst, [&](const SoftwarePingResult& r) {
        if (r.ok) {
          win.add(static_cast<double>(r.software_rtt));
        } else {
          ++local_timeouts;
        }
      });
      cluster_.run_for(msec(2));
    }
    cluster_.run_for(msec(600));  // drain timeouts
    if (timeouts != nullptr) *timeouts = local_timeouts;
    return win;
  }

  host::Cluster cluster_;
  SoftwarePingmesh pm_;
};

TEST_F(PingmeshTest, MeasuresPositiveRtt) {
  auto win = run_probes(RnicId{0}, RnicId{7}, 50);
  ASSERT_GT(win.count(), 40u);
  EXPECT_GT(win.percentile(0.5), 0.0);
}

TEST_F(PingmeshTest, SoftwareRttIncludesHostSchedulingDelay) {
  // Figure 2's mechanism: raise the hosts' CPU load and the measured RTT
  // balloons although the network did not change.
  auto idle = run_probes(RnicId{0}, RnicId{7}, 80);
  cluster_.host(HostId{0}).set_cpu_load(0.95);
  cluster_.host(cluster_.topology().rnic(RnicId{7}).host).set_cpu_load(0.95);
  auto loaded = run_probes(RnicId{0}, RnicId{7}, 80);
  ASSERT_GT(idle.count(), 0u);
  ASSERT_GT(loaded.count(), 0u);
  EXPECT_GT(loaded.percentile(0.99), idle.percentile(0.99) * 5.0);
}

TEST_F(PingmeshTest, TimesOutWhenPathIsDown) {
  faults::FaultInjector inj(cluster_);
  inj.inject_rnic_down(RnicId{7});
  int timeouts = 0;
  auto win = run_probes(RnicId{0}, RnicId{7}, 10, &timeouts);
  EXPECT_EQ(win.count(), 0u);
  EXPECT_EQ(timeouts, 10);
}

TEST_F(PingmeshTest, TcpProbesAreBlindToRocePfcDeadlock) {
  // The headline limitation (§2.4): a PFC deadlock kills the RoCE queue but
  // the TCP probe rides another traffic class and reports all-clear.
  fabric::Datagram roce;
  roce.src = RnicId{0};
  roce.dst = RnicId{7};
  roce.tuple.src_ip = cluster_.topology().rnic(RnicId{0}).ip;
  roce.tuple.dst_ip = cluster_.topology().rnic(RnicId{7}).ip;
  roce.tuple.src_port = 1000;
  const auto ground = cluster_.fabric().send(roce);
  ASSERT_TRUE(ground.delivered);

  faults::FaultInjector inj(cluster_);
  inj.inject_pfc_deadlock(ground.path.links[2]);

  // RoCE traffic on that path is dead...
  EXPECT_FALSE(cluster_.fabric().send(roce).delivered);
  // ...but the TCP Pingmesh probe happily completes.
  int timeouts = 0;
  auto win = run_probes(RnicId{0}, RnicId{7}, 10, &timeouts);
  EXPECT_EQ(timeouts, 0);
  EXPECT_EQ(win.count(), 10u);
}

TEST_F(PingmeshTest, DownHostDoesNotReply) {
  cluster_.host(cluster_.topology().rnic(RnicId{7}).host).set_down(true);
  int timeouts = 0;
  run_probes(RnicId{0}, RnicId{7}, 5, &timeouts);
  EXPECT_EQ(timeouts, 5);
}

}  // namespace
}  // namespace rpm::pingmesh
