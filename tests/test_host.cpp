// Tests for the host model (CPU-load-dependent process delay) and Cluster
// assembly.
#include <gtest/gtest.h>

#include "host/cluster.h"
#include "host/host.h"

namespace rpm::host {
namespace {

topo::ClosConfig small_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 1;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 1;
  cfg.spines_per_plane = 1;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  return cfg;
}

double mean_delay(HostModel& h, int n = 3000) {
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(h.sample_process_delay());
  }
  return sum / n;
}

TEST(HostModel, DelayGrowsWithLoad) {
  sim::InlineScheduler sched;
  HostModel h(HostId{0}, sched, sim::DeviceClock{}, Rng(1));
  h.set_cpu_load(0.1);
  const double idle = mean_delay(h);
  h.set_cpu_load(0.8);
  const double busy = mean_delay(h);
  h.set_cpu_load(0.97);
  const double overloaded = mean_delay(h);
  EXPECT_LT(idle, busy);
  EXPECT_LT(busy, overloaded);
  // Overload reaches millisecond scale (Figure 8 left).
  EXPECT_GT(overloaded, static_cast<double>(msec(1)));
}

TEST(HostModel, HealthyHostDelayIsMicroseconds) {
  sim::InlineScheduler sched;
  HostModel h(HostId{0}, sched, sim::DeviceClock{}, Rng(1));
  h.set_cpu_load(0.2);
  EXPECT_LT(mean_delay(h), static_cast<double>(usec(50)));
}

TEST(HostModel, StarvationProducesProbeTimeoutScaleStalls) {
  // Figure 6 (right): a service occupying the Agent's CPU causes stalls
  // longer than the 500 ms probe timeout.
  sim::InlineScheduler sched;
  HostModel h(HostId{0}, sched, sim::DeviceClock{}, Rng(1));
  h.set_cpu_load(1.0);
  int huge = 0;
  for (int i = 0; i < 2000; ++i) {
    if (h.sample_process_delay() > msec(500)) ++huge;
  }
  EXPECT_GT(huge, 100);   // a nontrivial fraction stalls past the timeout
  EXPECT_LT(huge, 1500);  // but not all wakeups
}

TEST(HostModel, LoadValidation) {
  sim::InlineScheduler sched;
  HostModel h(HostId{0}, sched, sim::DeviceClock{}, Rng(1));
  EXPECT_THROW(h.set_cpu_load(-0.1), std::invalid_argument);
  EXPECT_THROW(h.set_cpu_load(1.1), std::invalid_argument);
}

TEST(HostModel, DownFlag) {
  sim::InlineScheduler sched;
  HostModel h(HostId{0}, sched, sim::DeviceClock{}, Rng(1));
  EXPECT_FALSE(h.is_down());
  h.set_down(true);
  EXPECT_TRUE(h.is_down());
}

TEST(Cluster, BuildsOneDevicePerRnicAndHost) {
  Cluster c(topo::build_clos(small_cfg()));
  EXPECT_EQ(c.num_hosts(), 4u);
  EXPECT_EQ(c.num_rnics(), 8u);
  for (std::uint32_t i = 0; i < c.num_rnics(); ++i) {
    EXPECT_EQ(c.rnic_device(RnicId{i}).id(), RnicId{i});
  }
}

TEST(Cluster, ClocksAreDistinct) {
  Cluster c(topo::build_clos(small_cfg()));
  const TimeNs a = c.rnic_device(RnicId{0}).rnic_now();
  const TimeNs b = c.rnic_device(RnicId{1}).rnic_now();
  const TimeNs h = c.host(HostId{0}).host_now();
  EXPECT_NE(a, b);
  EXPECT_NE(a, h);
}

TEST(Cluster, RunForAdvancesTimeAndStartsFluidEngine) {
  Cluster c(topo::build_clos(small_cfg()));
  c.run_for(msec(10));
  EXPECT_EQ(c.scheduler().now(), msec(10));
  c.run_for(msec(5));
  EXPECT_EQ(c.scheduler().now(), msec(15));
  // The fluid engine ran (it executes one event per step interval).
  EXPECT_GT(c.scheduler().executed_events(), 100u);
}

TEST(Cluster, OpenDeviceBindsHostTracepoints) {
  Cluster c(topo::build_clos(small_cfg()));
  auto ctx = c.open_device(RnicId{2});
  EXPECT_EQ(ctx.host(), c.topology().rnic(RnicId{2}).host);
  EXPECT_EQ(ctx.gid(), rnic::gid_of(RnicId{2}));
}

TEST(Cluster, DeterministicAcrossRunsWithSameSeed) {
  auto run = [] {
    ClusterConfig cfg;
    cfg.seed = 123;
    Cluster c(topo::build_clos(small_cfg()), cfg);
    return c.rnic_device(RnicId{3}).rnic_now();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rpm::host
