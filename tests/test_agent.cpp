// Agent-focused tests: probing cadences, the two-ACK measurement protocol's
// bookkeeping, pinglist staleness, service-tracing lifecycle, path-tracing
// cache behaviour, and upload cadence.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "core/agent.h"
#include "core/analyzer.h"
#include "core/controller.h"
#include "host/cluster.h"
#include "traffic/dml.h"

namespace rpm::core {
namespace {

topo::ClosConfig clos_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

/// A manual deployment whose upload stream is tapped.
class AgentTest : public ::testing::Test {
 protected:
  AgentTest()
      : cluster_(topo::build_clos(clos_cfg())),
        ctrl_(cluster_.topology(), cluster_.router()) {
    for (const topo::HostInfo& h : cluster_.topology().hosts()) {
      agents_.push_back(std::make_unique<Agent>(
          cluster_, h.id, ctrl_,
          [this](HostId host, std::vector<ProbeRecord> recs) {
            uploads_per_host_[host.value]++;
            for (auto& r : recs) tap_.push_back(std::move(r));
          }));
    }
  }

  void start_all() {
    for (auto& a : agents_) a->start();
    for (auto& a : agents_) a->refresh_pinglists();
  }

  host::Cluster cluster_;
  Controller ctrl_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<ProbeRecord> tap_;
  std::unordered_map<std::uint32_t, int> uploads_per_host_;
};

TEST_F(AgentTest, RegistersAllRnicsOnStart) {
  EXPECT_FALSE(ctrl_.comm_info(RnicId{0}).has_value());
  agents_[0]->start();
  for (RnicId r : cluster_.topology().host(HostId{0}).rnics) {
    const auto info = ctrl_.comm_info(r);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->qpn.valid());
    EXPECT_EQ(info->gid, rnic::gid_of(r));
  }
}

TEST_F(AgentTest, RestartChangesQpns) {
  agents_[0]->start();
  const Qpn before = ctrl_.comm_info(RnicId{0})->qpn;
  agents_[0]->restart();
  const Qpn after = ctrl_.comm_info(RnicId{0})->qpn;
  EXPECT_NE(before, after);
}

TEST_F(AgentTest, TorMeshCadenceIsTenPerSecond) {
  start_all();
  cluster_.run_for(sec(10));
  // Each RNIC sends ~10 ToR-mesh probes/s (§5).
  std::unordered_map<std::uint32_t, int> tormesh_by_prober;
  for (const auto& r : tap_) {
    if (r.kind == ProbeKind::kTorMesh) ++tormesh_by_prober[r.prober.value];
  }
  for (const auto& [rnic, count] : tormesh_by_prober) {
    EXPECT_NEAR(count / 10.0, 10.0, 3.0) << "rnic " << rnic;
  }
}

TEST_F(AgentTest, UploadsEveryFiveSeconds) {
  start_all();
  cluster_.run_for(sec(20) + msec(100));
  for (const auto& [host, count] : uploads_per_host_) {
    EXPECT_NEAR(count, 4, 1) << "host " << host;
  }
}

TEST_F(AgentTest, MeasurementsArePlausibleOnIdleFabric) {
  start_all();
  cluster_.run_for(sec(5));
  std::size_t ok = 0;
  for (const auto& r : tap_) {
    if (r.status != ProbeStatus::kOk) continue;
    ++ok;
    EXPECT_GT(r.network_rtt, usec(1));
    EXPECT_LT(r.network_rtt, usec(50));
    EXPECT_GT(r.responder_delay, 0);
    EXPECT_LT(r.responder_delay, msec(10));
    EXPECT_GT(r.prober_delay, 0);
  }
  EXPECT_GT(ok, 300u);
}

TEST_F(AgentTest, TorMeshProbesStayUnderOneTor) {
  start_all();
  cluster_.run_for(sec(3));
  const auto& topo = cluster_.topology();
  for (const auto& r : tap_) {
    if (r.kind != ProbeKind::kTorMesh) continue;
    EXPECT_EQ(topo.rnic(r.prober).tor, topo.rnic(r.target).tor);
  }
}

TEST_F(AgentTest, InterTorProbesCrossTors) {
  start_all();
  cluster_.run_for(sec(5));
  const auto& topo = cluster_.topology();
  std::size_t inter = 0;
  for (const auto& r : tap_) {
    if (r.kind != ProbeKind::kInterTor) continue;
    ++inter;
    EXPECT_NE(topo.rnic(r.prober).tor, topo.rnic(r.target).tor);
  }
  EXPECT_GT(inter, 50u);
}

TEST_F(AgentTest, ProbeRecordsCarryTracedPaths) {
  start_all();
  cluster_.run_for(sec(5));
  std::size_t with_paths = 0;
  for (const auto& r : tap_) {
    if (!r.path_known) continue;
    ++with_paths;
    ASSERT_FALSE(r.fwd_path.links.empty());
    ASSERT_FALSE(r.rev_path.links.empty());
    // Forward path starts at the prober's host and ends at the target's.
    EXPECT_EQ(cluster_.topology().link(r.fwd_path.links.front()).from,
              topo::NodeRef::host(cluster_.topology().rnic(r.prober).host));
    EXPECT_EQ(cluster_.topology().link(r.rev_path.links.front()).from,
              topo::NodeRef::host(cluster_.topology().rnic(r.target).host));
  }
  EXPECT_GT(with_paths, 100u);
}

TEST_F(AgentTest, StaleQpnTimeoutsAfterPeerRestartUntilRefresh) {
  start_all();
  cluster_.run_for(sec(2));
  tap_.clear();
  // Restart host 1's Agent: peers' pinglists now address stale QPNs.
  agents_[1]->restart();
  cluster_.run_for(sec(3));
  std::size_t stale_timeouts = 0;
  const auto& h1_rnics = cluster_.topology().host(HostId{1}).rnics;
  const std::unordered_set<std::uint32_t> h1_set{h1_rnics[0].value,
                                                 h1_rnics[1].value};
  for (const auto& r : tap_) {
    if (r.status == ProbeStatus::kTimeout && h1_set.contains(r.target.value)) {
      ++stale_timeouts;
      // The stale QPN in the record no longer matches the registry.
      EXPECT_NE(r.target_qpn, ctrl_.comm_info(r.target)->qpn);
    }
  }
  EXPECT_GT(stale_timeouts, 5u);
  // After an explicit refresh, probes succeed again.
  for (auto& a : agents_) a->refresh_pinglists();
  tap_.clear();
  cluster_.run_for(sec(3));
  std::size_t ok_to_h1 = 0;
  for (const auto& r : tap_) {
    if (r.status == ProbeStatus::kOk && h1_set.contains(r.target.value)) {
      ++ok_to_h1;
    }
  }
  EXPECT_GT(ok_to_h1, 20u);
}

TEST_F(AgentTest, ServiceTracingUsesServiceTuplesAndService) {
  start_all();
  traffic::DmlConfig dml;
  dml.service = ServiceId{5};
  dml.workers = {RnicId{0}, RnicId{8}};
  dml.compute_time = msec(100);
  dml.comm_bytes = 10'000'000;
  dml.base_port = 33000;
  traffic::DmlService svc(cluster_, dml);
  svc.start();
  tap_.clear();
  cluster_.run_for(sec(5));
  std::size_t service_probes = 0;
  std::unordered_set<std::uint16_t> ports;
  for (const auto& r : tap_) {
    if (r.kind != ProbeKind::kServiceTracing) continue;
    ++service_probes;
    EXPECT_EQ(r.service, ServiceId{5});
    ports.insert(r.tuple.src_port);
  }
  // 10 ms cadence per RNIC with entries (§5): hundreds in 5 s.
  EXPECT_GT(service_probes, 300u);
  // The probes reuse the service's source ports (33000, 33001).
  EXPECT_TRUE(ports.contains(33000));
  EXPECT_TRUE(ports.contains(33001));
  EXPECT_EQ(ports.size(), 2u);
  svc.stop();
  tap_.clear();
  cluster_.run_for(sec(2));
  for (const auto& r : tap_) {
    EXPECT_NE(r.kind, ProbeKind::kServiceTracing)
        << "tracing must pause when connections close";
  }
}

TEST_F(AgentTest, ServiceProbesFollowServicePath) {
  start_all();
  traffic::DmlConfig dml;
  dml.service = ServiceId{5};
  dml.workers = {RnicId{0}, RnicId{8}};
  dml.compute_time = msec(100);
  dml.comm_bytes = 10'000'000;
  dml.base_port = 34000;
  traffic::DmlService svc(cluster_, dml);
  svc.start();
  const auto service_path =
      cluster_.fabric().flow_path(svc.connections()[0].flow).links;
  tap_.clear();
  cluster_.run_for(sec(6));  // past the 5 s upload interval
  std::size_t checked = 0;
  for (const auto& r : tap_) {
    if (r.kind != ProbeKind::kServiceTracing || !r.path_known) continue;
    // Both endpoints trace with the same source port (each in its own
    // direction); compare only the 0 -> 8 prober's records.
    if (r.tuple.src_port != 34000 || r.prober != RnicId{0}) continue;
    EXPECT_EQ(r.fwd_path.links, service_path)
        << "probe must ride the service flow's ECMP path";
    ++checked;
  }
  EXPECT_GT(checked, 50u);
  svc.stop();
}

TEST_F(AgentTest, DownHostAgentGoesSilent) {
  start_all();
  cluster_.run_for(sec(2));
  cluster_.host(HostId{0}).set_down(true);
  const int uploads_before = uploads_per_host_[0];
  tap_.clear();
  cluster_.run_for(sec(10));
  EXPECT_EQ(uploads_per_host_[0], uploads_before);
  for (const auto& r : tap_) {
    EXPECT_NE(r.prober_host, HostId{0}) << "down host must not probe";
  }
}

TEST_F(AgentTest, StopDestroysUdQps) {
  agents_[0]->start();
  const auto qp_count_started =
      cluster_.rnic_device(RnicId{0}).active_qp_count();
  EXPECT_GT(qp_count_started, 0u);
  agents_[0]->stop();
  EXPECT_EQ(cluster_.rnic_device(RnicId{0}).active_qp_count(), 0u);
}

TEST_F(AgentTest, RequiresUploadSink) {
  EXPECT_THROW(Agent(cluster_, HostId{0}, ctrl_, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace rpm::core
