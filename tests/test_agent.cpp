// Agent-focused tests: probing cadences, the two-ACK measurement protocol's
// bookkeeping, pinglist staleness, service-tracing lifecycle, path-tracing
// cache behaviour, and upload cadence.
#include <gtest/gtest.h>

#include <any>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/agent.h"
#include "core/analyzer.h"
#include "core/controller.h"
#include "host/cluster.h"
#include "telemetry/metrics.h"
#include "traffic/dml.h"
#include "transport/transport.h"

namespace rpm::core {
namespace {

topo::ClosConfig clos_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

/// A manual deployment wired over the cluster's control plane, with the
/// upload channels tapped. The default config flushes every upload period
/// (coalescing off) so cadence expectations stay simple; AgentCoalesceTest
/// below exercises the batching default.
class AgentTestBase : public ::testing::Test {
 protected:
  static AgentConfig flush_every_period() {
    AgentConfig cfg;
    cfg.upload_coalesce_periods = 1;
    return cfg;
  }

  explicit AgentTestBase(AgentConfig acfg = flush_every_period())
      : cluster_(topo::build_clos(clos_cfg())),
        ctrl_(cluster_.topology(), cluster_.router()) {
    transport::ControlPlane& cp = cluster_.control_plane();
    for (const topo::HostInfo& h : cluster_.topology().hosts()) {
      const std::string suffix = "/h" + std::to_string(h.id.value);
      transport::Channel& up = cp.make_channel(
          "upload" + suffix, [this](std::uint64_t, std::any& payload) {
            auto* batch = std::any_cast<UploadBatch>(&payload);
            if (batch == nullptr) return;
            uploads_per_host_[batch->host.value]++;
            for (auto& r : batch->records) tap_.push_back(std::move(r));
          });
      transport::RpcChannel& rpc = cp.make_rpc_channel(
          "ctrl" + suffix, [this](const std::any& req) -> std::any {
            if (const auto* r = std::any_cast<AgentRegistration>(&req)) {
              RegistrationAck ack;
              ack.accepted = ctrl_.register_agent(r->host, r->rnics);
              ack.controller_epoch = ctrl_.epoch();
              ack.lease_duration = ctrl_.config().lease_duration;
              return std::any(ack);
            }
            if (const auto* r = std::any_cast<AgentHeartbeat>(&req)) {
              return std::any(ctrl_.heartbeat(r->host));
            }
            if (const auto* r = std::any_cast<PinglistPullRequest>(&req)) {
              return std::any(serve_pinglist_pull(ctrl_, *r));
            }
            return std::any();
          });
      agents_.push_back(
          std::make_unique<Agent>(cluster_, h.id, ctrl_, up, rpc, acfg));
    }
  }

  void start_all() {
    for (auto& a : agents_) a->start();
    // Registrations and first pinglist pulls are control-plane round trips;
    // let them settle, then re-pull so every Agent sees every peer.
    cluster_.run_for(msec(5));
    for (auto& a : agents_) a->refresh_pinglists();
    cluster_.run_for(msec(5));
  }

  host::Cluster cluster_;
  Controller ctrl_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<ProbeRecord> tap_;
  std::unordered_map<std::uint32_t, int> uploads_per_host_;
};

class AgentTest : public AgentTestBase {};

class AgentCoalesceTest : public AgentTestBase {
 protected:
  AgentCoalesceTest() : AgentTestBase(AgentConfig{}) {}
};

TEST_F(AgentTest, RegistersAllRnicsOnStart) {
  EXPECT_FALSE(ctrl_.comm_info(RnicId{0}).has_value());
  agents_[0]->start();
  cluster_.run_for(msec(2));  // registration RPC round trip
  for (RnicId r : cluster_.topology().host(HostId{0}).rnics) {
    const auto info = ctrl_.comm_info(r);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->qpn.valid());
    EXPECT_EQ(info->gid, rnic::gid_of(r));
  }
}

TEST_F(AgentTest, RestartChangesQpns) {
  agents_[0]->start();
  cluster_.run_for(msec(2));
  const Qpn before = ctrl_.comm_info(RnicId{0})->qpn;
  agents_[0]->restart();
  cluster_.run_for(msec(2));
  const Qpn after = ctrl_.comm_info(RnicId{0})->qpn;
  EXPECT_NE(before, after);
}

TEST_F(AgentTest, TorMeshCadenceIsTenPerSecond) {
  start_all();
  cluster_.run_for(sec(10));
  // Each RNIC sends ~10 ToR-mesh probes/s (§5).
  std::unordered_map<std::uint32_t, int> tormesh_by_prober;
  for (const auto& r : tap_) {
    if (r.kind == ProbeKind::kTorMesh) ++tormesh_by_prober[r.prober.value];
  }
  for (const auto& [rnic, count] : tormesh_by_prober) {
    EXPECT_NEAR(count / 10.0, 10.0, 3.0) << "rnic " << rnic;
  }
}

TEST_F(AgentTest, UploadsEveryFiveSeconds) {
  start_all();
  cluster_.run_for(sec(20) + msec(100));
  for (const auto& [host, count] : uploads_per_host_) {
    EXPECT_NEAR(count, 4, 1) << "host " << host;
  }
}

TEST_F(AgentTest, MeasurementsArePlausibleOnIdleFabric) {
  start_all();
  cluster_.run_for(sec(5));
  std::size_t ok = 0;
  for (const auto& r : tap_) {
    if (r.status != ProbeStatus::kOk) continue;
    ++ok;
    EXPECT_GT(r.network_rtt, usec(1));
    EXPECT_LT(r.network_rtt, usec(50));
    EXPECT_GT(r.responder_delay, 0);
    EXPECT_LT(r.responder_delay, msec(10));
    EXPECT_GT(r.prober_delay, 0);
  }
  EXPECT_GT(ok, 300u);
}

TEST_F(AgentTest, TorMeshProbesStayUnderOneTor) {
  start_all();
  cluster_.run_for(sec(3));
  const auto& topo = cluster_.topology();
  for (const auto& r : tap_) {
    if (r.kind != ProbeKind::kTorMesh) continue;
    EXPECT_EQ(topo.rnic(r.prober).tor, topo.rnic(r.target).tor);
  }
}

TEST_F(AgentTest, InterTorProbesCrossTors) {
  start_all();
  cluster_.run_for(sec(5));
  const auto& topo = cluster_.topology();
  std::size_t inter = 0;
  for (const auto& r : tap_) {
    if (r.kind != ProbeKind::kInterTor) continue;
    ++inter;
    EXPECT_NE(topo.rnic(r.prober).tor, topo.rnic(r.target).tor);
  }
  EXPECT_GT(inter, 50u);
}

TEST_F(AgentTest, ProbeRecordsCarryTracedPaths) {
  start_all();
  cluster_.run_for(sec(5));
  std::size_t with_paths = 0;
  for (const auto& r : tap_) {
    if (!r.path_known) continue;
    ++with_paths;
    ASSERT_FALSE(r.fwd_path.links.empty());
    ASSERT_FALSE(r.rev_path.links.empty());
    // Forward path starts at the prober's host and ends at the target's.
    EXPECT_EQ(cluster_.topology().link(r.fwd_path.links.front()).from,
              topo::NodeRef::host(cluster_.topology().rnic(r.prober).host));
    EXPECT_EQ(cluster_.topology().link(r.rev_path.links.front()).from,
              topo::NodeRef::host(cluster_.topology().rnic(r.target).host));
  }
  EXPECT_GT(with_paths, 100u);
}

TEST_F(AgentTest, StaleQpnTimeoutsAfterPeerRestartUntilRefresh) {
  start_all();
  cluster_.run_for(sec(2));
  tap_.clear();
  // Restart host 1's Agent: peers' pinglists now address stale QPNs.
  agents_[1]->restart();
  cluster_.run_for(sec(3));
  std::size_t stale_timeouts = 0;
  const auto& h1_rnics = cluster_.topology().host(HostId{1}).rnics;
  const std::unordered_set<std::uint32_t> h1_set{h1_rnics[0].value,
                                                 h1_rnics[1].value};
  for (const auto& r : tap_) {
    if (r.status == ProbeStatus::kTimeout && h1_set.contains(r.target.value)) {
      ++stale_timeouts;
      // The stale QPN in the record no longer matches the registry.
      EXPECT_NE(r.target_qpn, ctrl_.comm_info(r.target)->qpn);
    }
  }
  EXPECT_GT(stale_timeouts, 5u);
  // After an explicit refresh, probes succeed again.
  for (auto& a : agents_) a->refresh_pinglists();
  tap_.clear();
  cluster_.run_for(sec(3));
  std::size_t ok_to_h1 = 0;
  for (const auto& r : tap_) {
    if (r.status == ProbeStatus::kOk && h1_set.contains(r.target.value)) {
      ++ok_to_h1;
    }
  }
  EXPECT_GT(ok_to_h1, 20u);
}

TEST_F(AgentTest, ServiceTracingUsesServiceTuplesAndService) {
  start_all();
  traffic::DmlConfig dml;
  dml.service = ServiceId{5};
  dml.workers = {RnicId{0}, RnicId{8}};
  dml.compute_time = msec(100);
  dml.comm_bytes = 10'000'000;
  dml.base_port = 33000;
  traffic::DmlService svc(cluster_, dml);
  svc.start();
  tap_.clear();
  cluster_.run_for(sec(5));
  std::size_t service_probes = 0;
  std::unordered_set<std::uint16_t> ports;
  for (const auto& r : tap_) {
    if (r.kind != ProbeKind::kServiceTracing) continue;
    ++service_probes;
    EXPECT_EQ(r.service, ServiceId{5});
    ports.insert(r.tuple.src_port);
  }
  // 10 ms cadence per RNIC with entries (§5): hundreds in 5 s.
  EXPECT_GT(service_probes, 300u);
  // The probes reuse the service's source ports (33000, 33001).
  EXPECT_TRUE(ports.contains(33000));
  EXPECT_TRUE(ports.contains(33001));
  EXPECT_EQ(ports.size(), 2u);
  svc.stop();
  tap_.clear();
  cluster_.run_for(sec(2));
  for (const auto& r : tap_) {
    EXPECT_NE(r.kind, ProbeKind::kServiceTracing)
        << "tracing must pause when connections close";
  }
}

TEST_F(AgentTest, ServiceProbesFollowServicePath) {
  start_all();
  traffic::DmlConfig dml;
  dml.service = ServiceId{5};
  dml.workers = {RnicId{0}, RnicId{8}};
  dml.compute_time = msec(100);
  dml.comm_bytes = 10'000'000;
  dml.base_port = 34000;
  traffic::DmlService svc(cluster_, dml);
  svc.start();
  const auto service_path =
      cluster_.fabric().flow_path(svc.connections()[0].flow).links;
  tap_.clear();
  cluster_.run_for(sec(6));  // past the 5 s upload interval
  std::size_t checked = 0;
  for (const auto& r : tap_) {
    if (r.kind != ProbeKind::kServiceTracing || !r.path_known) continue;
    // Both endpoints trace with the same source port (each in its own
    // direction); compare only the 0 -> 8 prober's records.
    if (r.tuple.src_port != 34000 || r.prober != RnicId{0}) continue;
    EXPECT_EQ(r.fwd_path.links, service_path)
        << "probe must ride the service flow's ECMP path";
    ++checked;
  }
  EXPECT_GT(checked, 50u);
  svc.stop();
}

TEST_F(AgentTest, DownHostAgentGoesSilent) {
  start_all();
  cluster_.run_for(sec(2));
  cluster_.host(HostId{0}).set_down(true);
  const int uploads_before = uploads_per_host_[0];
  tap_.clear();
  cluster_.run_for(sec(10));
  EXPECT_EQ(uploads_per_host_[0], uploads_before);
  for (const auto& r : tap_) {
    EXPECT_NE(r.prober_host, HostId{0}) << "down host must not probe";
  }
}

TEST_F(AgentTest, StopDestroysUdQps) {
  agents_[0]->start();
  const auto qp_count_started =
      cluster_.rnic_device(RnicId{0}).active_qp_count();
  EXPECT_GT(qp_count_started, 0u);
  agents_[0]->stop();
  EXPECT_EQ(cluster_.rnic_device(RnicId{0}).active_qp_count(), 0u);
}

TEST_F(AgentTest, StopFlushesOutboxThroughTransport) {
  start_all();
  cluster_.run_for(sec(2));  // accumulate records, short of the 5 s timer
  tap_.clear();
  agents_[0]->stop();
  cluster_.run_for(msec(10));  // final batch traverses the control plane
  std::size_t from_h0 = 0;
  for (const auto& r : tap_) {
    if (r.prober_host == HostId{0}) ++from_h0;
  }
  EXPECT_GT(from_h0, 0u) << "stop() must flush, not discard, the outbox";
}

TEST_F(AgentTest, DeadHostStopDropsOutboxAndCountsIt) {
  start_all();
  cluster_.run_for(sec(2));
  cluster_.host(HostId{0}).set_down(true);
  const auto drops_before = telemetry::registry()
                                .counter("rpm_transport_msgs_total", "",
                                         {{"channel", "upload/h0"},
                                          {"result", "dropped"}})
                                .value();
  tap_.clear();
  agents_[0]->stop();
  cluster_.run_for(msec(10));
  for (const auto& r : tap_) {
    EXPECT_NE(r.prober_host, HostId{0}) << "dead host cannot flush";
  }
  const auto drops_after = telemetry::registry()
                               .counter("rpm_transport_msgs_total", "",
                                        {{"channel", "upload/h0"},
                                         {"result", "dropped"}})
                               .value();
  EXPECT_GT(drops_after, drops_before)
      << "discarded outbox must surface as result=\"dropped\"";
}

TEST_F(AgentCoalesceTest, DefaultConfigCoalescesTwoPeriods) {
  start_all();
  cluster_.run_for(sec(20) + msec(100));
  // upload_coalesce_periods = 2 (default): the 5 s timer flushes only every
  // other tick, so ~2 batches in 20 s instead of ~4 — each twice the size.
  for (const auto& [host, count] : uploads_per_host_) {
    EXPECT_NEAR(count, 2, 1) << "host " << host;
  }
  std::size_t per_host_records = 0;
  for (const auto& r : tap_) {
    if (r.prober_host == HostId{0}) ++per_host_records;
  }
  EXPECT_GT(per_host_records, 100u) << "coalescing must not shed records";
}

}  // namespace
}  // namespace rpm::core
