// Tests of src/obs: flight-recorder sampling/eviction/correlation semantics,
// diagnosis evidence-chain lookup and rendering, and end-to-end recorder
// behavior under injected faults (anomalous RNIC + degraded control plane).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "obs/diagnosis.h"
#include "obs/flight_recorder.h"
#include "telemetry/metrics.h"

namespace rpm {
namespace {

using obs::FlightRecorder;
using obs::FlightRecorderConfig;
using obs::ProbeEventKind;
using obs::ProbeTimeline;

FlightRecorderConfig sample_all(std::size_t capacity = 64) {
  FlightRecorderConfig cfg;
  cfg.sample_rate = 1.0;
  cfg.capacity = capacity;
  return cfg;
}

// ---- recorder unit tests (local instances; the global stays untouched) ----

TEST(FlightRecorderTest, DisabledRecorderIsInert) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.enabled());
  EXPECT_FALSE(rec.begin_probe(1, "tor-mesh", 100));
  rec.record(1, ProbeEventKind::kSendCqe, 42);
  rec.bind_batch(0, 7, {1});
  rec.batch_event(0, 7, ProbeEventKind::kTransportAttempt, 1);
  rec.unbind_batch(0, 7);
  EXPECT_EQ(rec.probes_seen(), 0u);
  EXPECT_EQ(rec.probes_sampled(), 0u);
  EXPECT_EQ(rec.live_timelines(), 0u);
  EXPECT_EQ(rec.timeline(1), nullptr);
  EXPECT_FALSE(rec.tracking(1));
}

TEST(FlightRecorderTest, SamplingIsDeterministicAcrossEnables) {
  FlightRecorderConfig cfg;
  cfg.sample_rate = 0.3;
  cfg.capacity = 256;
  FlightRecorder rec;
  rec.enable(cfg);
  std::vector<bool> first;
  for (std::uint64_t id = 1; id <= 200; ++id) {
    first.push_back(rec.begin_probe(id, "tor-mesh"));
  }
  // Re-enabling resets the sampling Rng: the same decisions replay.
  rec.enable(cfg);
  for (std::uint64_t id = 1; id <= 200; ++id) {
    EXPECT_EQ(rec.begin_probe(id, "tor-mesh"), first[id - 1]) << id;
  }
  // A 30% rate over 200 draws lands strictly between the endpoints.
  const auto hits = std::count(first.begin(), first.end(), true);
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, 200);
}

TEST(FlightRecorderTest, SampleRateEndpoints) {
  FlightRecorder rec;
  FlightRecorderConfig cfg;
  cfg.sample_rate = 0.0;
  rec.enable(cfg);
  for (std::uint64_t id = 1; id <= 50; ++id) {
    EXPECT_FALSE(rec.begin_probe(id, "x"));
  }
  EXPECT_EQ(rec.probes_seen(), 50u);
  EXPECT_EQ(rec.probes_sampled(), 0u);

  cfg.sample_rate = 1.0;
  rec.enable(cfg);
  for (std::uint64_t id = 1; id <= 50; ++id) {
    EXPECT_TRUE(rec.begin_probe(id, "x"));
  }
  EXPECT_EQ(rec.probes_sampled(), 50u);
  EXPECT_EQ(rec.live_timelines(), 50u);
}

TEST(FlightRecorderTest, RingEvictsOldestTimeline) {
  FlightRecorder rec;
  rec.enable(sample_all(/*capacity=*/2));
  rec.begin_probe(1, "a");
  rec.begin_probe(2, "b");
  rec.begin_probe(3, "c");  // evicts probe 1
  EXPECT_EQ(rec.evicted(), 1u);
  EXPECT_EQ(rec.timeline(1), nullptr);
  ASSERT_NE(rec.timeline(2), nullptr);
  ASSERT_NE(rec.timeline(3), nullptr);
  rec.record(1, ProbeEventKind::kCompleted);  // evicted id: ignored
  const auto tls = rec.timelines();
  ASSERT_EQ(tls.size(), 2u);
  EXPECT_EQ(tls[0]->probe_id, 2u);  // oldest first
  EXPECT_EQ(tls[1]->probe_id, 3u);
}

TEST(FlightRecorderTest, PerProbeEventCapDropsExcess) {
  FlightRecorder rec;
  FlightRecorderConfig cfg = sample_all();
  cfg.max_events_per_probe = 3;
  rec.enable(cfg);
  rec.begin_probe(9, "a");  // event 1: kEnqueued
  for (std::uint64_t i = 0; i < 5; ++i) {
    rec.record(9, ProbeEventKind::kHop, i);
  }
  ASSERT_NE(rec.timeline(9), nullptr);
  EXPECT_EQ(rec.timeline(9)->events.size(), 3u);
  EXPECT_EQ(rec.dropped_events(), 3u);
}

TEST(FlightRecorderTest, FallbackClockStampsMonotonically) {
  FlightRecorder rec;
  rec.enable(sample_all());  // no clock installed: deterministic tick
  rec.begin_probe(1, "a", /*t1=*/123);
  rec.record(1, ProbeEventKind::kVerbsPost);
  rec.record(1, ProbeEventKind::kSendCqe, 456);
  const ProbeTimeline* tl = rec.timeline(1);
  ASSERT_NE(tl, nullptr);
  ASSERT_EQ(tl->events.size(), 3u);
  EXPECT_EQ(tl->events[0].kind, ProbeEventKind::kEnqueued);
  EXPECT_EQ(tl->events[0].a, 123u);
  EXPECT_LT(tl->events[0].t, tl->events[1].t);
  EXPECT_LT(tl->events[1].t, tl->events[2].t);
  EXPECT_FALSE(tl->closed());
  rec.record(1, ProbeEventKind::kCompleted, 5000, 8000);
  EXPECT_TRUE(tl->closed());
}

TEST(FlightRecorderTest, BatchEventsFanOutToBoundTimelines) {
  FlightRecorder rec;
  rec.enable(sample_all());
  rec.begin_probe(1, "a");
  rec.begin_probe(2, "a");
  rec.begin_probe(3, "a");
  rec.bind_batch(/*owner_tag=*/0, /*chan_seq=*/41, {1, 2});
  rec.batch_event(0, 41, ProbeEventKind::kTransportAttempt, 1);
  EXPECT_NE(rec.timeline(1)->find(ProbeEventKind::kTransportAttempt), nullptr);
  EXPECT_NE(rec.timeline(2)->find(ProbeEventKind::kTransportAttempt), nullptr);
  EXPECT_EQ(rec.timeline(3)->find(ProbeEventKind::kTransportAttempt), nullptr);
  rec.unbind_batch(0, 41);
  rec.batch_event(0, 41, ProbeEventKind::kTransportAttempt, 2);  // no-op
  std::size_t attempts = 0;
  for (const auto& e : rec.timeline(1)->events) {
    if (e.kind == ProbeEventKind::kTransportAttempt) ++attempts;
  }
  EXPECT_EQ(attempts, 1u);
}

TEST(FlightRecorderTest, JsonAndChromeRenderings) {
  FlightRecorder rec;
  rec.enable(sample_all());
  rec.begin_probe(7, "tor-mesh", 123);
  rec.record(7, ProbeEventKind::kSendCqe, 456);
  rec.record(7, ProbeEventKind::kCompleted, 5000, 8000);
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"probe_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"agent-enqueue\""), std::string::npos);
  EXPECT_NE(json.find("\"closed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"probes_sampled\":1"), std::string::npos);
  const std::string chrome = rec.chrome_events();
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(chrome.find("\"probe_id\":7"), std::string::npos);
}

// ---- diagnosis evidence chains ----

TEST(DiagnosisLogTest, FindAndJsonRendering) {
  obs::DiagnosisLog log;
  obs::EvidenceChain c;
  c.id = 11;
  c.problem_id = 3;
  c.verdict = "switch-network-problem";
  c.triage_branch = "switch attribution";
  c.probe_ids = {100, 101};
  c.total_probes = 2;
  c.link_votes.push_back({5, 7});
  c.thresholds.push_back({"min_anomalies_for_problem", 3.0, 7.0, true});
  log.chains.push_back(std::move(c));
  ASSERT_NE(log.find(11), nullptr);
  EXPECT_EQ(log.find(11)->problem_id, 3u);
  EXPECT_EQ(log.find(12), nullptr);
  ASSERT_NE(log.find_problem(3), nullptr);
  EXPECT_EQ(log.find_problem(3)->id, 11u);
  EXPECT_EQ(log.find_problem(0), nullptr);
  const std::string j = obs::to_json(log);
  EXPECT_NE(j.find("\"probe_ids\":[100,101]"), std::string::npos);
  EXPECT_NE(j.find("\"link_votes\":[{\"id\":5,\"votes\":7}]"),
            std::string::npos);
  EXPECT_NE(j.find("\"exceeded\":true"), std::string::npos);
  EXPECT_NE(j.find("\"threshold\":3"), std::string::npos);
}

// ---- end-to-end: the recorder under faults ----

topo::ClosConfig clos_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  return cfg;
}

// The built-in instrumentation writes to the process-wide recorder; leave
// it disabled for whoever runs after this test, pass or fail.
struct RecorderGuard {
  ~RecorderGuard() { obs::recorder().disable(); }
};

TEST(FlightRecorderE2E, FaultyRunYieldsCoherentTimelinesAndEvidence) {
  RecorderGuard guard;
  host::Cluster cluster(topo::build_clos(clos_cfg()));
  FlightRecorderConfig fcfg;
  fcfg.sample_rate = 1.0;
  fcfg.capacity = 1 << 15;
  obs::recorder().enable(
      fcfg, [&cluster]() -> TimeNs { return cluster.scheduler().now(); });

  core::RPingmesh rpm(cluster);
  rpm.start();
  cluster.run_for(sec(25));
  faults::FaultInjector inj(cluster);
  inj.inject_rnic_down(RnicId{5});
  inj.inject_control_plane_degradation(msec(5), 0.3);
  cluster.run_for(sec(21));

  auto& rec = obs::recorder();
  EXPECT_GT(rec.probes_sampled(), 0u);

  // Every sampled timed-out probe terminates coherently: opens with the
  // Agent enqueue, never reports completion, events stamped in order.
  std::size_t timed_out = 0;
  for (const ProbeTimeline* tl : rec.timelines()) {
    if (tl->find(ProbeEventKind::kTimedOut) == nullptr) continue;
    ++timed_out;
    ASSERT_FALSE(tl->events.empty());
    EXPECT_EQ(tl->events.front().kind, ProbeEventKind::kEnqueued);
    EXPECT_EQ(tl->find(ProbeEventKind::kCompleted), nullptr);
    for (std::size_t i = 1; i < tl->events.size(); ++i) {
      EXPECT_LE(tl->events[i - 1].t, tl->events[i].t);
    }
  }
  EXPECT_GT(timed_out, 0u);

  // The RNIC verdict's evidence chain names probes the recorder kept.
  const core::PeriodReport* rep = rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  const core::Problem* p = nullptr;
  for (const core::Problem& q : rep->problems) {
    if (q.category == core::ProblemCategory::kRnicProblem) p = &q;
  }
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->evidence.valid());
  const obs::EvidenceChain* chain = rpm.analyzer().evidence(p->evidence);
  ASSERT_NE(chain, nullptr);
  ASSERT_FALSE(chain->probe_ids.empty());
  std::size_t resolved = 0;
  for (std::uint64_t pid : chain->probe_ids) {
    if (rec.timeline(pid) != nullptr) ++resolved;
  }
  EXPECT_GT(resolved, 0u) << "explain() must name recorded probe ids";

  // explain() renders the same chain, receipts included.
  const std::string j = rpm.analyzer().explain(p->problem_id);
  ASSERT_FALSE(j.empty());
  EXPECT_NE(j.find(std::to_string(chain->probe_ids.front())),
            std::string::npos);
  EXPECT_NE(j.find("\"thresholds\":[{"), std::string::npos);
  rpm.stop();
}

TEST(FlightRecorderE2E, BrownoutRequeuesExpiredUploadsWithoutDoubleCount) {
  RecorderGuard guard;
  host::ClusterConfig ccfg;
  // Brownout: with 75% per-attempt loss a batch dies ~18% of the time
  // after max_attempts (0.75^6), while registrations and pinglist RPCs
  // mostly survive their retries — so Agents keep probing and uploading.
  ccfg.control_plane.loss_prob = 0.75;
  host::Cluster cluster(topo::build_clos(clos_cfg()), ccfg);
  FlightRecorderConfig fcfg;
  fcfg.sample_rate = 1.0;
  fcfg.capacity = 1 << 15;
  obs::recorder().enable(
      fcfg, [&cluster]() -> TimeNs { return cluster.scheduler().now(); });

  const telemetry::Snapshot before = telemetry::registry().snapshot();
  core::RPingmesh rpm(cluster);
  rpm.start();
  cluster.run_for(sec(90));

  const telemetry::Snapshot snap = telemetry::registry().snapshot();
  EXPECT_GT(snap.sum("rpm_agent_upload_requeues_total") -
                before.sum("rpm_agent_upload_requeues_total"),
            0.0);
  // Requeued batches reuse their original sequence number, so the Analyzer's
  // (host, seq) dedup counts each batch once no matter how often the Agent
  // re-sends it: duplicates may arrive, but every acceptance is unique.
  EXPECT_GT(snap.sum("rpm_analyzer_batches_total", {{"result", "accepted"}}),
            0.0);
  bool saw_requeued = false;
  for (const ProbeTimeline* tl : obs::recorder().timelines()) {
    if (tl->find(ProbeEventKind::kRequeued) != nullptr) saw_requeued = true;
  }
  EXPECT_TRUE(saw_requeued) << "no sampled timeline carries a requeue event";
  rpm.stop();
}

}  // namespace
}  // namespace rpm
