// Tests for the pipeline wall-clock stage profiler (src/prof):
//
//  * disabled path is one branch — no thread buffer is ever allocated;
//  * per-thread folds are deterministic: the same samples recorded from
//    many threads and from one thread produce byte-identical reports;
//  * the period-close watchdog fires at the configured budget, bumps
//    rpm_prof_budget_overruns_total, and drops a kBudgetOverrun flight-
//    recorder marker naming the top-cost stage;
//  * the repo invariant: a chaos campaign with the profiler fully enabled
//    (scheduler hook included) emits byte-identical ChaosReport JSON to the
//    same campaign with the profiler off — wall time never leaks into sim
//    decisions;
//  * rpm_prof_stage_* metrics appear in the Prometheus scrape while the
//    profiler is enabled and vanish after disable();
//  * chrome_events() produces pid-3 tracks spliceable into the tracer.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "host/cluster.h"
#include "obs/flight_recorder.h"
#include "prof/prof.h"
#include "sim/scheduler.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "topo/topology.h"

namespace rpm {
namespace {

using prof::PeriodCloseScope;
using prof::ProfileReport;
using prof::Profiler;
using prof::profiler;
using prof::Stage;
using prof::StageScope;

/// Every test leaves the process-wide profiler and recorder off.
class ProfTest : public ::testing::Test {
 protected:
  ~ProfTest() override {
    profiler().disable();
    obs::recorder().disable();
  }
};

TEST_F(ProfTest, StageNamesAreDotted) {
  EXPECT_STREQ(prof::stage_name(Stage::kSimDispatch), "sim.dispatch");
  EXPECT_STREQ(prof::stage_name(Stage::kIngestSubmit), "ingest.submit");
  EXPECT_STREQ(prof::stage_name(Stage::kIngestDrainBarrier),
               "ingest.drain_barrier");
  EXPECT_STREQ(prof::stage_name(Stage::kDrainTriage), "drain.triage");
  EXPECT_STREQ(prof::stage_name(Stage::kDrainVote), "drain.vote");
  EXPECT_STREQ(prof::stage_name(Stage::kDrainSla), "drain.sla");
  EXPECT_STREQ(prof::stage_name(Stage::kDrainDiaglog), "drain.diaglog");
  EXPECT_STREQ(prof::stage_name(Stage::kDigestFlush), "digest.flush");
  EXPECT_STREQ(prof::stage_name(Stage::kGlobalMerge), "global.merge");
  EXPECT_STREQ(prof::stage_name(Stage::kTransportDeliver),
               "transport.deliver");
  EXPECT_STREQ(prof::stage_name(Stage::kSketchFlush), "sketch.flush");
  EXPECT_STREQ(prof::stage_name(Stage::kPeriodClose), "period.close");
}

TEST_F(ProfTest, DisabledPathAllocatesNothing) {
  profiler().disable();
  // A fresh enable() resets the buffer registry; disable() keeps it
  // readable, so the count we observe below is attributable to this test.
  profiler().enable();
  profiler().disable();
  ASSERT_EQ(profiler().num_thread_buffers(), 0u);

  // Scopes and direct records while disabled must not touch any buffer.
  for (int i = 0; i < 1000; ++i) {
    StageScope scope(Stage::kIngestSubmit);
    profiler().record(Stage::kDrainVote, 123);
  }
  { PeriodCloseScope close_scope; }
  EXPECT_EQ(profiler().num_thread_buffers(), 0u);
  const ProfileReport rep = profiler().report();
  for (std::size_t i = 0; i < prof::kNumStages; ++i) {
    EXPECT_EQ(rep.stages[i].count, 0u);
  }
}

TEST_F(ProfTest, RecordFoldsCountTotalMinMax) {
  profiler().enable();
  profiler().record(Stage::kDrainVote, 100);
  profiler().record(Stage::kDrainVote, 300);
  profiler().record(Stage::kDrainVote, 200);
  profiler().disable();

  const ProfileReport rep = profiler().report();
  const prof::StageStats& st = rep.stage(Stage::kDrainVote);
  EXPECT_EQ(st.count, 3u);
  EXPECT_EQ(st.total_ns, 600u);
  EXPECT_EQ(st.min_ns, 100u);
  EXPECT_EQ(st.max_ns, 300u);
  // DDSketch 1% relative accuracy around the true median of 200.
  EXPECT_NEAR(st.p50_ns(), 200.0, 200.0 * 0.02);
  EXPECT_EQ(profiler().num_thread_buffers(), 1u);

  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"stage\":\"drain.vote\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"budget_overruns\":0"), std::string::npos);
}

TEST_F(ProfTest, MultiThreadFoldMatchesSingleThreadByteForByte) {
  // Same multiset of samples: 4 threads x 256 samples vs 1 thread x 1024.
  const auto sample = [](int i) {
    return static_cast<std::uint64_t>(1000 + (i * 37) % 5000);
  };

  profiler().enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t, &sample] {
      for (int i = 0; i < 256; ++i) {
        profiler().record(Stage::kIngestSubmit, sample(t * 256 + i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  profiler().disable();
  EXPECT_EQ(profiler().num_thread_buffers(), 4u);
  const std::string multi = profiler().report().to_json();

  profiler().enable();
  for (int i = 0; i < 1024; ++i) {
    profiler().record(Stage::kIngestSubmit, sample(i));
  }
  profiler().disable();
  EXPECT_EQ(profiler().num_thread_buffers(), 1u);
  const std::string single = profiler().report().to_json();

  EXPECT_EQ(multi, single);
  // And the fold itself is stable across repeated reads.
  EXPECT_EQ(profiler().report().to_json(), single);
}

TEST_F(ProfTest, WatchdogFiresAtConfiguredBudget) {
  obs::FlightRecorderConfig fcfg;
  fcfg.sample_rate = 0.0;  // markers only
  obs::recorder().enable(fcfg);

  prof::ProfilerConfig cfg;
  cfg.period_close_budget = 1;  // 1 ns: any real close overruns
  profiler().enable(cfg);
  {
    PeriodCloseScope close_scope;
    // Make drain.sla unambiguously the top-cost stage of this close.
    profiler().record(Stage::kDrainSla, 50'000'000);
    profiler().record(Stage::kDrainVote, 10);
  }
  EXPECT_EQ(profiler().budget_overruns(), 1u);
  const prof::PeriodCloseInfo close = profiler().last_period_close();
  EXPECT_EQ(close.seq, 1u);
  EXPECT_TRUE(close.overrun);
  EXPECT_GT(close.wall_ns, 0u);
  EXPECT_EQ(close.top_stage, Stage::kDrainSla);

  // Both markers landed: the always-on kPeriodClose and the overrun.
  ASSERT_EQ(obs::recorder().markers().size(), 2u);
  const obs::Marker& pc = obs::recorder().markers()[0];
  const obs::Marker& ov = obs::recorder().markers()[1];
  EXPECT_EQ(pc.kind, obs::ProbeEventKind::kPeriodClose);
  EXPECT_EQ(ov.kind, obs::ProbeEventKind::kBudgetOverrun);
  EXPECT_EQ(ov.a, close.wall_ns);
  EXPECT_EQ(ov.b, static_cast<std::uint64_t>(Stage::kDrainSla));
  EXPECT_NE(obs::recorder().to_json().find("budget-overrun"),
            std::string::npos);

  // Registry sees the overrun counter.
  const telemetry::Snapshot snap = telemetry::registry().snapshot();
  const telemetry::SeriesSample* s =
      snap.find("rpm_prof_budget_overruns_total");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->counter_value, 1u);

  // A generous budget does not fire.
  cfg.period_close_budget = sec(30);
  profiler().enable(cfg);
  {
    PeriodCloseScope close_scope;
    profiler().record(Stage::kDrainVote, 10);
  }
  EXPECT_EQ(profiler().budget_overruns(), 0u);
  EXPECT_FALSE(profiler().last_period_close().overrun);
}

TEST_F(ProfTest, MetricsAppearWhileEnabledAndVanishAfterDisable) {
  profiler().enable();
  profiler().record(Stage::kGlobalMerge, 4242);
  const std::string prom =
      telemetry::to_prometheus(telemetry::registry().snapshot());
  EXPECT_NE(prom.find("rpm_prof_stage_count{stage=\"global.merge\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("rpm_prof_stage_total_ns{stage=\"global.merge\"} 4242"),
            std::string::npos);
  EXPECT_NE(prom.find("rpm_prof_stage_p99_ns{stage=\"global.merge\"}"),
            std::string::npos);

  profiler().disable();
  const std::string after =
      telemetry::to_prometheus(telemetry::registry().snapshot());
  // The collector is gone; no fresh stage series are exported. (The series
  // written while enabled persist in the registry by design — collectors
  // only add.) A never-observed stage never appears.
  EXPECT_EQ(after.find("rpm_prof_stage_count{stage=\"sim.dispatch\"}"),
            std::string::npos);
}

TEST_F(ProfTest, ChromeEventsEmitPid3Tracks) {
  profiler().enable();
  {
    StageScope scope(Stage::kTransportDeliver);
  }
  profiler().disable();
  const std::string events = profiler().chrome_events();
  EXPECT_NE(events.find("\"name\":\"transport.deliver\""), std::string::npos);
  EXPECT_NE(events.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(events.find("\"ph\":\"X\""), std::string::npos);

  // Trace capture can be disabled independently of the stats.
  prof::ProfilerConfig cfg;
  cfg.max_trace_events = 0;
  profiler().enable(cfg);
  {
    StageScope scope(Stage::kTransportDeliver);
  }
  profiler().disable();
  EXPECT_EQ(profiler().chrome_events(), "");
  EXPECT_EQ(profiler().report().stage(Stage::kTransportDeliver).count, 1u);

  // Overflow is counted, not kept.
  cfg.max_trace_events = 2;
  profiler().enable(cfg);
  for (int i = 0; i < 5; ++i) profiler().record(Stage::kDrainVote, 10);
  profiler().disable();
  EXPECT_EQ(profiler().report().trace_events_dropped, 3u);
}

TEST_F(ProfTest, SchedulerDispatchHookRecordsAndDetaches) {
  sim::InlineScheduler sched;
  profiler().attach_scheduler(sched);
  profiler().enable();
  int fired = 0;
  sched.schedule_after(10, [&] { ++fired; });
  sched.schedule_after(20, [&] { ++fired; });
  sched.run_until(100);
  profiler().disable();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(profiler().report().stage(Stage::kSimDispatch).count, 2u);

  Profiler::detach_scheduler(sched);
  profiler().enable();
  sched.schedule_after(10, [&] { ++fired; });
  sched.run_until(200);
  profiler().disable();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(profiler().report().stage(Stage::kSimDispatch).count, 0u);
}

// ---- the repo invariant: profiler on vs off, byte-identical output ----

topo::ClosConfig clos_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 4;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 1;
  cfg.rnics_per_host = 2;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

/// One full chaos campaign (federated, threaded ingest, sketch exporters
/// running) with the profiler in the given state; returns the deterministic
/// ChaosReport JSON.
std::string campaign_report(bool profiler_on) {
  host::ClusterConfig ccfg;
  ccfg.seed = 7;
  host::Cluster cluster(topo::build_clos(clos_cfg()), ccfg);

  core::RPingmeshConfig rcfg;
  rcfg.analyzer.period = sec(5);
  rcfg.analyzer.ingest.threads = 2;
  rcfg.federation.pods = 2;
  rcfg.federation.standby_controller = true;
  core::RPingmesh rpm(cluster, rcfg);
  faults::FaultInjector injector(cluster);
  rpm.start();

  if (profiler_on) {
    prof::ProfilerConfig cfg;
    cfg.period_close_budget = 1;  // watchdog fires constantly: max stress
    profiler().enable(cfg);
    profiler().attach_scheduler(cluster.scheduler());
  }

  chaos::ChaosPlan plan;
  plan.seed = 7;
  plan.duration = sec(60);
  plan.controller_crash(sec(22));
  plan.controller_restart(sec(33));
  LinkId fabric_link{};
  for (const topo::Link& l : cluster.topology().links()) {
    if (l.from.is_switch() && l.to.is_switch()) {
      fabric_link = l.id;
      break;
    }
  }
  plan.inject(sec(40), "fabric-corruption",
              faults::FaultSpec::corruption(fabric_link, 0.5));

  chaos::ChaosRunner runner(cluster, rpm, injector);
  const std::string report = runner.run(plan).to_json();

  if (profiler_on) {
    // The run must actually have been profiled for the comparison to mean
    // anything.
    const ProfileReport rep = profiler().report();
    EXPECT_GT(rep.stage(Stage::kSimDispatch).count, 0u);
    EXPECT_GT(rep.stage(Stage::kIngestSubmit).count, 0u);
    EXPECT_GT(rep.stage(Stage::kDrainTriage).count, 0u);
    EXPECT_GT(rep.stage(Stage::kPeriodClose).count, 0u);
    EXPECT_GT(rep.stage(Stage::kTransportDeliver).count, 0u);
    EXPECT_GT(rep.stage(Stage::kDigestFlush).count, 0u);
    EXPECT_GT(rep.stage(Stage::kGlobalMerge).count, 0u);
    EXPECT_GT(profiler().budget_overruns(), 0u);
    profiler().disable();
    Profiler::detach_scheduler(cluster.scheduler());
  }
  return report;
}

TEST_F(ProfTest, ProfilerOnVsOffByteIdenticalChaosReport) {
  const std::string off = campaign_report(false);
  const std::string on = campaign_report(true);
  EXPECT_EQ(off, on) << "wall-clock profiling leaked into sim decisions";
}

}  // namespace
}  // namespace rpm
