// Tests for the RNIC model, focused on the CQE-timestamp semantics that
// R-Pingmesh's measurement method depends on (§4.2.1, Table 1).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "host/cluster.h"
#include "rnic/rnic.h"
#include "topo/topology.h"

namespace rpm::rnic {
namespace {

topo::ClosConfig small_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 1;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 1;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 1;
  return cfg;
}

class RnicTest : public ::testing::Test {
 protected:
  RnicTest() : cluster_(topo::build_clos(small_cfg())) {}
  host::Cluster cluster_;
};

TEST_F(RnicTest, GidRoundTrip) {
  const Gid g = gid_of(RnicId{17});
  const auto back = rnic_of_gid(g);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, RnicId{17});
  EXPECT_FALSE(rnic_of_gid(Gid{0}).has_value());
}

TEST_F(RnicTest, QpTypeNames) {
  EXPECT_STREQ(qp_type_name(QpType::kRC), "RC");
  EXPECT_STREQ(qp_type_name(QpType::kUD), "UD");
}

TEST_F(RnicTest, QpnsAreUniqueAndNeverReused) {
  RnicDevice& dev = cluster_.rnic_device(RnicId{0});
  QpConfig cfg;
  cfg.type = QpType::kUD;
  cfg.on_cqe = [](const Cqe&) {};
  const Qpn a = dev.create_qp(cfg);
  dev.destroy_qp(a);
  const Qpn b = dev.create_qp(cfg);
  EXPECT_NE(a, b);  // a fresh QPN: the root of "QPN reset" noise
}

TEST_F(RnicTest, UdSendGeneratesSendCqeAtWireTime) {
  // UD semantics: the send CQE exists and is timestamped at wire-send
  // (timestamp ② is observable).
  RnicDevice& src = cluster_.rnic_device(RnicId{0});
  RnicDevice& dst = cluster_.rnic_device(RnicId{3});

  std::optional<Cqe> send_cqe;
  std::optional<Cqe> recv_cqe;
  QpConfig scfg;
  scfg.type = QpType::kUD;
  scfg.on_cqe = [&](const Cqe& c) {
    if (c.is_send) send_cqe = c;
  };
  const Qpn sqpn = src.create_qp(scfg);

  QpConfig rcfg;
  rcfg.type = QpType::kUD;
  rcfg.on_cqe = [&](const Cqe& c) {
    if (!c.is_send) recv_cqe = c;
  };
  const Qpn rqpn = dst.create_qp(rcfg);

  src.post_send_ud(sqpn, dst.gid(), rqpn, 1234, 50, std::string("probe"), 7);
  cluster_.scheduler().run_until(msec(1));

  ASSERT_TRUE(send_cqe.has_value());
  EXPECT_EQ(send_cqe->wr_id, 7u);
  EXPECT_TRUE(send_cqe->success);
  ASSERT_TRUE(recv_cqe.has_value());
  EXPECT_EQ(recv_cqe->src_qpn, sqpn);
  EXPECT_EQ(recv_cqe->src_gid, src.gid());
  EXPECT_EQ(recv_cqe->tuple.src_port, 1234);
  EXPECT_EQ(recv_cqe->byte_len, 50);
  EXPECT_EQ(std::any_cast<std::string>(recv_cqe->payload), "probe");
}

TEST_F(RnicTest, CqeTimestampsUseRnicClockNotSimTime) {
  RnicDevice& src = cluster_.rnic_device(RnicId{0});
  RnicDevice& dst = cluster_.rnic_device(RnicId{3});
  std::optional<Cqe> send_cqe;
  QpConfig scfg;
  scfg.type = QpType::kUD;
  scfg.on_cqe = [&](const Cqe& c) { send_cqe = c; };
  const Qpn sqpn = src.create_qp(scfg);
  QpConfig rcfg;
  rcfg.type = QpType::kUD;
  rcfg.on_cqe = [](const Cqe&) {};
  const Qpn rqpn = dst.create_qp(rcfg);
  src.post_send_ud(sqpn, dst.gid(), rqpn, 1, 50, 0, 1);
  cluster_.scheduler().run_until(msec(1));
  ASSERT_TRUE(send_cqe.has_value());
  // The clock has a random offset up to +-1s; with sim time ~1ms the CQE
  // timestamp almost surely differs from sim time.
  EXPECT_NE(send_cqe->timestamp, cluster_.scheduler().now());
}

TEST_F(RnicTest, RcSendCqeOnlyAfterAckReturns) {
  // RC semantics: the send CQE appears only after the hardware ACK has
  // crossed the network back — so it cannot timestamp the wire-send (this
  // is why R-Pingmesh probes with UD, Table 1).
  RnicDevice& src = cluster_.rnic_device(RnicId{0});
  RnicDevice& dst = cluster_.rnic_device(RnicId{3});

  std::vector<Cqe> src_cqes;
  QpConfig scfg;
  scfg.type = QpType::kRC;
  scfg.on_cqe = [&](const Cqe& c) { src_cqes.push_back(c); };
  const Qpn sqpn = src.create_qp(scfg);

  QpConfig rcfg;
  rcfg.type = QpType::kRC;
  rcfg.on_cqe = [](const Cqe&) {};
  const Qpn rqpn = dst.create_qp(rcfg);

  src.connect_qp(sqpn, dst.gid(), rqpn, 777);
  dst.connect_qp(rqpn, src.gid(), sqpn, 777);

  src.post_send_connected(sqpn, 50, 0, 42);

  // Immediately after TX DMA the packet is on the wire but no CQE yet.
  cluster_.scheduler().run_until(usec(1));
  EXPECT_TRUE(src_cqes.empty());

  cluster_.scheduler().run_until(msec(1));
  ASSERT_EQ(src_cqes.size(), 1u);
  EXPECT_TRUE(src_cqes[0].is_send);
  EXPECT_EQ(src_cqes[0].wr_id, 42u);
  EXPECT_TRUE(src_cqes[0].success);
}

TEST_F(RnicTest, RcRetransmitsUntilPathHeals) {
  host::Cluster& c = cluster_;
  RnicDevice& src = c.rnic_device(RnicId{0});
  RnicDevice& dst = c.rnic_device(RnicId{3});
  std::vector<Cqe> cqes;
  QpConfig scfg;
  scfg.type = QpType::kRC;
  scfg.retransmit_timeout = msec(2);
  scfg.on_cqe = [&](const Cqe& cq) { cqes.push_back(cq); };
  const Qpn sqpn = src.create_qp(scfg);
  QpConfig rcfg;
  rcfg.type = QpType::kRC;
  rcfg.on_cqe = [](const Cqe&) {};
  const Qpn rqpn = dst.create_qp(rcfg);
  src.connect_qp(sqpn, dst.gid(), rqpn, 777);
  dst.connect_qp(rqpn, src.gid(), sqpn, 777);

  // Break the destination edge, send, heal after two retransmit windows.
  c.fabric().set_cable_up(c.topology().rnic(RnicId{3}).uplink, false);
  src.post_send_connected(sqpn, 50, 0, 1);
  c.scheduler().schedule_at(msec(5), [&] {
    c.fabric().set_cable_up(c.topology().rnic(RnicId{3}).uplink, true);
  });
  c.scheduler().run_until(msec(20));
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_TRUE(cqes[0].success);
  EXPECT_GT(src.counters().rc_retransmits, 0u);
  EXPECT_EQ(src.counters().rc_broken_connections, 0u);
}

TEST_F(RnicTest, RcBreaksAfterRetriesExhausted) {
  host::Cluster& c = cluster_;
  RnicDevice& src = c.rnic_device(RnicId{0});
  RnicDevice& dst = c.rnic_device(RnicId{3});
  bool broken = false;
  std::vector<Cqe> cqes;
  QpConfig scfg;
  scfg.type = QpType::kRC;
  scfg.retransmit_timeout = msec(1);
  scfg.max_retries = 3;
  scfg.on_cqe = [&](const Cqe& cq) { cqes.push_back(cq); };
  scfg.on_broken = [&] { broken = true; };
  const Qpn sqpn = src.create_qp(scfg);
  QpConfig rcfg;
  rcfg.type = QpType::kRC;
  rcfg.on_cqe = [](const Cqe&) {};
  const Qpn rqpn = dst.create_qp(rcfg);
  src.connect_qp(sqpn, dst.gid(), rqpn, 777);
  dst.connect_qp(rqpn, src.gid(), sqpn, 777);

  c.fabric().set_cable_up(c.topology().rnic(RnicId{3}).uplink, false);
  src.post_send_connected(sqpn, 50, 0, 1);
  c.scheduler().run_until(msec(50));

  EXPECT_TRUE(broken);
  EXPECT_EQ(src.qp_state(sqpn), QpState::kError);
  EXPECT_EQ(src.counters().rc_broken_connections, 1u);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_FALSE(cqes[0].success);
}

TEST_F(RnicTest, HigherRetryBudgetSurvivesLongerOutage) {
  // The paper's operational fix for flapping (§7.1 #1): max retries +
  // longer timeout keeps connections alive through flaps.
  host::Cluster& c = cluster_;
  RnicDevice& src = c.rnic_device(RnicId{0});
  RnicDevice& dst = c.rnic_device(RnicId{3});
  bool broken = false;
  std::vector<Cqe> cqes;
  QpConfig scfg;
  scfg.type = QpType::kRC;
  scfg.retransmit_timeout = msec(8);
  scfg.max_retries = 7;
  scfg.on_cqe = [&](const Cqe& cq) { cqes.push_back(cq); };
  scfg.on_broken = [&] { broken = true; };
  const Qpn sqpn = src.create_qp(scfg);
  QpConfig rcfg;
  rcfg.type = QpType::kRC;
  rcfg.on_cqe = [](const Cqe&) {};
  const Qpn rqpn = dst.create_qp(rcfg);
  src.connect_qp(sqpn, dst.gid(), rqpn, 777);
  dst.connect_qp(rqpn, src.gid(), sqpn, 777);

  // 30 ms outage: would break a 3x1ms budget but not a 7x8ms one.
  c.fabric().set_cable_up(c.topology().rnic(RnicId{3}).uplink, false);
  src.post_send_connected(sqpn, 50, 0, 1);
  c.scheduler().schedule_at(msec(30), [&] {
    c.fabric().set_cable_up(c.topology().rnic(RnicId{3}).uplink, true);
  });
  c.scheduler().run_until(msec(200));
  EXPECT_FALSE(broken);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_TRUE(cqes[0].success);
}

TEST_F(RnicTest, StaleQpnSilentlyDropped) {
  // Probe noise source: target recreated its QPs, probe uses the old QPN.
  RnicDevice& src = cluster_.rnic_device(RnicId{0});
  RnicDevice& dst = cluster_.rnic_device(RnicId{3});
  QpConfig cfg;
  cfg.type = QpType::kUD;
  cfg.on_cqe = [](const Cqe&) {};
  const Qpn sqpn = src.create_qp(cfg);
  const Qpn old_rqpn = dst.create_qp(cfg);
  dst.reset_all_qps();  // Agent restart on the destination host
  (void)dst.create_qp(cfg);

  src.post_send_ud(sqpn, dst.gid(), old_rqpn, 1, 50, 0, 1);
  cluster_.scheduler().run_until(msec(1));
  EXPECT_EQ(dst.counters().rx_dropped_no_qp, 1u);
  EXPECT_EQ(dst.counters().rx_packets, 0u);
}

TEST_F(RnicTest, DownRnicDropsEverything) {
  RnicDevice& src = cluster_.rnic_device(RnicId{0});
  RnicDevice& dst = cluster_.rnic_device(RnicId{3});
  QpConfig cfg;
  cfg.type = QpType::kUD;
  cfg.on_cqe = [](const Cqe&) {};
  const Qpn sqpn = src.create_qp(cfg);
  const Qpn rqpn = dst.create_qp(cfg);
  dst.set_down(true);
  src.post_send_ud(sqpn, dst.gid(), rqpn, 1, 50, 0, 1);
  cluster_.scheduler().run_until(msec(1));
  EXPECT_EQ(dst.counters().rx_packets, 0u);
  // The host link is down too, so the fabric already dropped it.
  EXPECT_FALSE(cluster_.fabric().link_usable(
      cluster_.topology().rnic(RnicId{3}).uplink));
  dst.set_down(false);
  src.post_send_ud(sqpn, dst.gid(), rqpn, 1, 50, 0, 2);
  cluster_.scheduler().run_until(msec(2));
  EXPECT_EQ(dst.counters().rx_packets, 1u);
}

TEST_F(RnicTest, MisconfiguredRnicIsUnreachable) {
  // #6/#7: route or GID index missing -> silently unreachable.
  RnicDevice& src = cluster_.rnic_device(RnicId{0});
  RnicDevice& dst = cluster_.rnic_device(RnicId{3});
  QpConfig cfg;
  cfg.type = QpType::kUD;
  cfg.on_cqe = [](const Cqe&) {};
  const Qpn sqpn = src.create_qp(cfg);
  const Qpn rqpn = dst.create_qp(cfg);
  dst.set_gid_index_missing(true);
  src.post_send_ud(sqpn, dst.gid(), rqpn, 1, 50, 0, 1);
  cluster_.scheduler().run_until(msec(1));
  EXPECT_EQ(dst.counters().rx_packets, 0u);
  EXPECT_EQ(dst.counters().rx_dropped_misconfig, 1u);
  // And it cannot send either.
  dst.set_gid_index_missing(false);
  src.set_routing_config_missing(true);
  src.post_send_ud(sqpn, dst.gid(), rqpn, 1, 50, 0, 2);
  cluster_.scheduler().run_until(msec(2));
  EXPECT_EQ(dst.counters().rx_packets, 0u);
}

TEST_F(RnicTest, QpcCacheLruAndMissPenalty) {
  rnic::RnicParams params;
  params.qpc_cache_slots = 2;
  params.qpc_miss_penalty = usec(5);
  host::ClusterConfig ccfg;
  ccfg.rnic = params;
  host::Cluster c(topo::build_clos(small_cfg()), ccfg);
  RnicDevice& dev = c.rnic_device(RnicId{0});
  EXPECT_EQ(dev.qpc_touch(Qpn{10}), usec(5));  // miss
  EXPECT_EQ(dev.qpc_touch(Qpn{11}), usec(5));  // miss
  EXPECT_EQ(dev.qpc_touch(Qpn{10}), 0);        // hit
  EXPECT_EQ(dev.qpc_touch(Qpn{12}), usec(5));  // miss, evicts 11
  EXPECT_EQ(dev.qpc_touch(Qpn{11}), usec(5));  // miss again
  EXPECT_EQ(dev.counters().qpc_cache_hits, 1u);
  EXPECT_EQ(dev.counters().qpc_cache_misses, 4u);
}

TEST_F(RnicTest, PcieFactorValidation) {
  RnicDevice& dev = cluster_.rnic_device(RnicId{0});
  EXPECT_THROW(dev.set_pcie_factor(0.0), std::invalid_argument);
  EXPECT_THROW(dev.set_pcie_factor(1.5), std::invalid_argument);
  dev.set_pcie_factor(0.25);
  EXPECT_DOUBLE_EQ(dev.pcie_factor(), 0.25);
  // The fabric-facing drain rate of the downlink degrades with it.
  EXPECT_DOUBLE_EQ(cluster_.fabric()
                       .link_state(cluster_.topology().rnic(RnicId{0}).downlink)
                       .service_rate_factor,
                   0.25);
}

TEST_F(RnicTest, ApiErrorsThrow) {
  RnicDevice& dev = cluster_.rnic_device(RnicId{0});
  QpConfig cfg;
  cfg.type = QpType::kUD;
  EXPECT_THROW(dev.create_qp(cfg), std::invalid_argument);  // no on_cqe
  cfg.on_cqe = [](const Cqe&) {};
  const Qpn ud = dev.create_qp(cfg);
  EXPECT_THROW(dev.connect_qp(ud, Gid{1}, Qpn{1}, 1), std::logic_error);
  EXPECT_THROW(dev.post_send_connected(ud, 50, 0, 1), std::logic_error);
  EXPECT_THROW(dev.post_send_ud(Qpn{9999}, Gid{1}, Qpn{1}, 1, 50, 0, 1),
               std::out_of_range);
  QpConfig rc = cfg;
  rc.type = QpType::kRC;
  const Qpn rcq = dev.create_qp(rc);
  EXPECT_THROW(dev.post_send_ud(rcq, Gid{1}, Qpn{1}, 1, 50, 0, 1),
               std::logic_error);
  EXPECT_THROW(dev.post_send_connected(rcq, 50, 0, 1),
               std::logic_error);  // not connected yet
}

}  // namespace
}  // namespace rpm::rnic
