// Unit tests for src/sketch: quantile-sketch determinism (merge order and
// sharding invariance, canonical serialization), quantile error bounds,
// LinkSketch/HostSummary merge algebra, the bank's flush contract, the
// store's (exporter, seq) dedup, the exporter's flush/requeue/spill
// discipline, and a small end-to-end check that sketch_mode=on actually
// thins the record volume an Analyzer processes.
#include <any>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"
#include "core/rpingmesh.h"
#include "host/cluster.h"
#include "sim/scheduler.h"
#include "sketch/exporter.h"
#include "sketch/sketch.h"
#include "topo/topology.h"
#include "transport/transport.h"

namespace rpm::sketch {
namespace {

std::vector<std::uint8_t> bytes_of(const QuantileSketch& s) {
  std::vector<std::uint8_t> out;
  s.encode(out);
  return out;
}

TEST(QuantileSketch, MergeIsOrderAndShardingInvariant) {
  // The same sample set, accumulated three ways: one sketch, two shards
  // merged A+B, two shards merged B+A — byte-identical encodings all around.
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> dist(1.0, 1e7);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(dist(gen));

  QuantileSketch all;
  QuantileSketch a;
  QuantileSketch b;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    all.add(samples[i]);
    (i % 2 == 0 ? a : b).add(samples[i]);
  }
  QuantileSketch ab = a;
  ab.merge(b);
  QuantileSketch ba = b;
  ba.merge(a);

  EXPECT_EQ(bytes_of(ab), bytes_of(all));
  EXPECT_EQ(bytes_of(ba), bytes_of(all));
  EXPECT_EQ(ab.count(), all.count());
  EXPECT_DOUBLE_EQ(ab.sum(), ba.sum());
}

TEST(QuantileSketch, ManyWayShardingMatchesSingleSketch) {
  // 8 shards, merged in shard-index order — the exact shape the ingest
  // worker pool produces — equals the single-accumulator sketch.
  std::mt19937_64 gen(11);
  std::uniform_real_distribution<double> dist(100.0, 1e6);
  QuantileSketch all;
  std::vector<QuantileSketch> shards(8);
  for (int i = 0; i < 4096; ++i) {
    const double v = dist(gen);
    all.add(v);
    shards[static_cast<std::size_t>(i) % shards.size()].add(v);
  }
  QuantileSketch merged;
  for (const QuantileSketch& s : shards) merged.merge(s);
  EXPECT_EQ(bytes_of(merged), bytes_of(all));
}

TEST(QuantileSketch, SerializationRoundTripsExactly) {
  QuantileSketch s;
  s.add(0.0);        // zero bucket
  s.add(-5.0);       // also zero bucket (non-positive)
  s.add(123.456, 3);
  s.add(1e9);
  std::vector<std::uint8_t> buf;
  s.encode(buf);
  EXPECT_EQ(buf.size(), s.serialized_bytes());

  std::size_t off = 0;
  const QuantileSketch back = QuantileSketch::decode(buf, off);
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(bytes_of(back), buf);
  EXPECT_EQ(back.count(), s.count());
  EXPECT_DOUBLE_EQ(back.sum(), s.sum());
  EXPECT_DOUBLE_EQ(back.quantile(0.5), s.quantile(0.5));

  // Truncation is an error, not a garbage sketch.
  std::vector<std::uint8_t> cut(buf.begin(), buf.end() - 1);
  off = 0;
  EXPECT_THROW(QuantileSketch::decode(cut, off), std::runtime_error);
}

TEST(QuantileSketch, QuantileErrorWithinRelativeAccuracyBound) {
  std::mt19937_64 gen(3);
  std::lognormal_distribution<double> dist(10.0, 1.5);
  std::vector<double> samples;
  QuantileSketch s;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(gen);
    samples.push_back(v);
    s.add(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double truth =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    const double got = s.quantile(q);
    // Fixed-boundary DDSketch guarantee: relative error <= a (plus a hair of
    // slack for the discrete target index).
    EXPECT_NEAR(got, truth, truth * 2.0 * QuantileSketch::kRelativeAccuracy)
        << "q=" << q;
  }
}

TEST(LinkSketch, MergeIsCommutative) {
  LinkSketch a;
  a.pkts = 10;
  a.bytes = 1000;
  a.ecn_sum = 0.25;
  a.drops[2] = 3;
  a.hop_delay_ns.add(500.0);
  LinkSketch b;
  b.pkts = 5;
  b.bytes = 700;
  b.drops[2] = 1;
  b.drops[5] = 4;
  b.hop_delay_ns.add(900.0);
  b.queue_bytes.add(4096.0);

  LinkSketch ab = a;
  ab.merge(b);
  LinkSketch ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.pkts, 15u);
  EXPECT_EQ(ab.bytes, 1700u);
  EXPECT_EQ(ab.total_drops(), 8u);
  EXPECT_EQ(ba.pkts, ab.pkts);
  EXPECT_EQ(ba.total_drops(), ab.total_drops());
  EXPECT_DOUBLE_EQ(ba.ecn_sum, ab.ecn_sum);
  EXPECT_EQ(bytes_of(ba.hop_delay_ns), bytes_of(ab.hop_delay_ns));
  EXPECT_FALSE(ab.empty());
  EXPECT_TRUE(LinkSketch{}.empty());
}

TEST(HostSummary, MergeAggregatesAllComponents) {
  HostSummary a;
  a.folded_records = 2;
  a.tormesh_ok[{1, 2}] = 2;
  a.ok_delay_by_target[2].add(1000.0, 2);
  a.rtt.add(5000.0, 2);
  HostSummary b;
  b.folded_records = 3;
  b.tormesh_ok[{1, 2}] = 1;
  b.tormesh_ok[{3, 4}] = 2;
  b.ok_delay_by_target[2].add(2000.0);
  b.ok_delay_by_target[4].add(1500.0, 2);
  b.rtt.add(7000.0, 3);

  HostSummary ab = a;
  ab.merge(b);
  EXPECT_EQ(ab.folded_records, 5u);
  EXPECT_EQ((ab.tormesh_ok[{1, 2}]), 3u);
  EXPECT_EQ((ab.tormesh_ok[{3, 4}]), 2u);
  EXPECT_EQ(ab.ok_delay_by_target[2].count(), 3u);
  EXPECT_EQ(ab.rtt.count(), 5u);
  EXPECT_GT(ab.serialized_bytes(), 0u);
  EXPECT_TRUE(HostSummary{}.empty());
  EXPECT_FALSE(ab.empty());
}

TEST(LinkSketchBank, FlushReturnsNonEmptySortedAndClears) {
  LinkSketchBank bank(8);
  bank.on_forward(5, 100, 2000, 0, 0.0);
  bank.on_forward(1, 200, 3000, 512, 0.5);
  bank.on_drop(3, 2);
  EXPECT_EQ(bank.updates(), 3u);

  const auto flushed = bank.flush();
  ASSERT_EQ(flushed.size(), 3u);
  EXPECT_EQ(flushed[0].first, 1u);  // ascending link order
  EXPECT_EQ(flushed[1].first, 3u);
  EXPECT_EQ(flushed[2].first, 5u);
  EXPECT_EQ(flushed[1].second.total_drops(), 1u);
  EXPECT_EQ(flushed[2].second.pkts, 1u);

  EXPECT_TRUE(bank.flush().empty());  // drained
}

TEST(SketchStore, DeduplicatesByExporterAndSeq) {
  SketchStore store;
  const auto make_report = [](std::uint64_t seq) {
    SketchReport rep;
    rep.exporter = 1;
    rep.seq = seq;
    LinkSketch ls;
    ls.pkts = 1;
    ls.bytes = 100;
    rep.links.emplace_back(7u, ls);
    return rep;
  };
  EXPECT_TRUE(store.ingest(make_report(1)));
  EXPECT_TRUE(store.ingest(make_report(2)));
  EXPECT_FALSE(store.ingest(make_report(1)));  // retried delivery
  EXPECT_EQ(store.reports_merged(), 2u);
  EXPECT_EQ(store.duplicates(), 1u);

  const auto links = store.drain_period();
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links.at(7).pkts, 2u);
  EXPECT_TRUE(store.drain_period().empty());  // period state cleared
  // Dedup state survives the drain.
  EXPECT_FALSE(store.ingest(make_report(2)));
}

TEST(SketchExporter, FlushesPeriodicallyAndSpillsThroughOutage) {
  sim::InlineScheduler sched;
  transport::ChannelConfig cc;
  cc.base_latency = usec(50);
  cc.latency_jitter = 0;
  cc.retry_jitter = 0;
  cc.loss_prob = 0.0;
  transport::ControlPlane cp(sched, Rng(42), cc);
  SketchStore store;
  transport::Channel& ch =
      cp.make_channel("sketch/test", [&](std::uint64_t, std::any& p) {
        if (auto* rep = std::any_cast<SketchReport>(&p)) {
          store.ingest(std::move(*rep));
        }
      });
  LinkSketchBank bank(4);
  SketchExporterConfig ecfg;
  ecfg.period = sec(5);
  SketchExporter exp(sched, ch, bank, ecfg);
  exp.start();

  // Two periods of traffic: two reports, both delivered and merged.
  bank.on_forward(0, 100, 1000, 0, 0.0);
  sched.run_until(sec(6));
  bank.on_forward(1, 100, 1000, 0, 0.0);
  sched.run_until(sec(11));
  EXPECT_EQ(exp.reports_sent(), 2u);
  EXPECT_EQ(store.reports_merged(), 2u);
  EXPECT_EQ(exp.spill_depth(), 0u);

  // An empty period flushes nothing.
  sched.run_until(sec(16));
  EXPECT_EQ(exp.reports_sent(), 2u);

  // Outage: reports expire through the requeue cap into the spill ring...
  ch.set_peer_down(true);
  bank.on_forward(2, 100, 1000, 0, 0.0);
  sched.run_until(sec(60));
  EXPECT_GT(exp.spill_depth(), 0u);
  const std::uint64_t merged_before = store.reports_merged();

  // ...and drain in order once the peer acks again.
  ch.set_peer_down(false);
  bank.on_forward(3, 100, 1000, 0, 0.0);
  sched.run_until(sec(90));
  EXPECT_EQ(exp.spill_depth(), 0u);
  EXPECT_GT(store.reports_merged(), merged_before);
  EXPECT_EQ(store.duplicates(), 0u);

  exp.stop();
  EXPECT_FALSE(exp.running());
}

TEST(SketchE2E, SketchModeThinsAnalyzerRecordVolume) {
  // Same small cluster, same seed, 60 simulated seconds: sketch_mode=on must
  // process far fewer raw records per period than off while still counting
  // every probe in the SLA table.
  const auto run = [](core::SketchMode mode) {
    topo::ClosConfig tc;
    tc.num_pods = 1;
    tc.tors_per_pod = 2;
    tc.aggs_per_pod = 2;
    tc.spines_per_plane = 1;
    tc.hosts_per_tor = 2;
    tc.rnics_per_host = 2;
    host::Cluster cluster(topo::build_clos(tc), [] {
      host::ClusterConfig c;
      c.seed = 21;
      return c;
    }());
    core::RPingmeshConfig rc;
    rc.analyzer.period = sec(20);
    rc.analyzer.sketch_mode = mode;
    core::RPingmesh rpm(cluster, rc);
    rpm.start();
    cluster.run_for(sec(60));
    struct Out {
      std::size_t records = 0;
      std::size_t sla_probes = 0;
    } out;
    for (const core::PeriodReport& rep : rpm.analyzer().history()) {
      out.records += rep.records_processed;
      out.sla_probes += rep.cluster_sla.probes;
    }
    return out;
  };
  const auto off = run(core::SketchMode::kOff);
  const auto on = run(core::SketchMode::kOn);
  ASSERT_GT(off.records, 0u);
  // The healthy steady state folds nearly everything.
  EXPECT_LT(on.records * 10, off.records)
      << "on=" << on.records << " off=" << off.records;
  // ...but the SLA probe population is preserved (folded records counted).
  EXPECT_EQ(on.sla_probes, off.sla_probes);
}

}  // namespace
}  // namespace rpm::sketch
