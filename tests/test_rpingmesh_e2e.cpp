// End-to-end tests of the deployed R-Pingmesh system: Agents probing over
// the simulated fabric, Analyzer classifying and localizing injected faults.
#include <deque>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "obs/diagnosis.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "traffic/dml.h"

namespace rpm::core {
namespace {

topo::ClosConfig clos_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

struct Deployment {
  explicit Deployment(host::ClusterConfig cfg = {}, RPingmeshConfig rcfg = {})
      : cluster(topo::build_clos(clos_cfg()), cfg), rpm(cluster, rcfg) {
    rpm.start();
  }
  host::Cluster cluster;
  RPingmesh rpm;
};

bool has_problem(const PeriodReport& rep, ProblemCategory cat) {
  for (const Problem& p : rep.problems) {
    if (p.category == cat) return true;
  }
  return false;
}

const Problem* find_problem(const PeriodReport& rep, ProblemCategory cat) {
  for (const Problem& p : rep.problems) {
    if (p.category == cat) return &p;
  }
  return nullptr;
}

TEST(RPingmeshE2E, HealthyClusterHasCleanSla) {
  Deployment d;
  d.cluster.run_for(sec(45));
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  EXPECT_GT(rep->records_processed, 500u);
  EXPECT_EQ(rep->cluster_sla.timeouts, 0u);
  EXPECT_DOUBLE_EQ(rep->cluster_sla.rnic_drop_rate, 0.0);
  EXPECT_DOUBLE_EQ(rep->cluster_sla.switch_drop_rate, 0.0);
  // Idle RoCE RTT: a few microseconds, far below a software RTT.
  EXPECT_GT(rep->cluster_sla.rtt_p50, 1000.0);      // > 1 us
  EXPECT_LT(rep->cluster_sla.rtt_p99, 100'000.0);   // < 100 us
  // No problems on a healthy cluster.
  for (const Problem& p : rep->problems) {
    EXPECT_EQ(p.priority, Priority::kNoise) << p.summary;
  }
}

TEST(RPingmeshE2E, WorkerPoolIngestionMatchesInlineEndToEnd) {
  // Full-system determinism across ingest backends: a fixed-seed deployment
  // must produce identical period reports and diagnosis JSON whether the
  // Analyzer ingests inline or on a 1- or 4-thread worker pool. This is the
  // e2e leg of the cross-thread-count determinism property (the transport
  // hand-off, dedup of retried batches, and period bucketing all included);
  // the chaos suite checks the same property on ChaosReport bytes.
  const auto digest = [](std::size_t threads) {
    RPingmeshConfig rcfg;
    rcfg.analyzer.ingest.threads = threads;
    host::ClusterConfig ccfg;
    ccfg.seed = 42;
    Deployment d(ccfg, rcfg);
    d.cluster.run_for(sec(45));
    const PeriodReport* rep = d.rpm.analyzer().last_report();
    EXPECT_NE(rep, nullptr);
    if (rep == nullptr) return std::string{};
    std::ostringstream os;
    os << rep->records_processed << '|' << rep->cluster_sla.probes << '|'
       << rep->cluster_sla.timeouts << '|' << rep->cluster_sla.rtt_p50 << '|'
       << rep->cluster_sla.rtt_p99 << '|' << rep->cluster_sla.proc_p99 << '|'
       << rep->problems.size() << '\n';
    os << obs::to_json(*d.rpm.analyzer().last_diagnosis());
    return os.str();
  };
  const std::string inline_digest = digest(0);
  ASSERT_FALSE(inline_digest.empty());
  EXPECT_GT(inline_digest.find('|'), 0u);
  EXPECT_EQ(digest(1), inline_digest);
  EXPECT_EQ(digest(4), inline_digest);
}

TEST(RPingmeshE2E, MeasuredRttMatchesGroundTruthDespiteClockChaos) {
  // The decisive test of §4.2.1: every clock has up to ±1 s offset, yet the
  // reported network RTT must be microsecond-accurate.
  Deployment d;
  d.cluster.run_for(sec(25));
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  // Ground truth on an idle fabric: propagation (500ns/hop) * hops * 2 +
  // small serialization; ToR-mesh ~2 hops, cross-pod ~6 hops. So P50 within
  // [2us, 10us].
  EXPECT_GT(rep->cluster_sla.rtt_p50, 1500.0);
  EXPECT_LT(rep->cluster_sla.rtt_p50, 10'000.0);
  // And processing delay is measured separately: microseconds on idle hosts.
  EXPECT_LT(rep->cluster_sla.proc_p50, 100'000.0);
  EXPECT_GT(rep->cluster_sla.proc_p50, 0.0);
}

TEST(RPingmeshE2E, RnicDownDetectedAsRnicProblem) {
  Deployment d;
  d.cluster.run_for(sec(25));
  faults::FaultInjector inj(d.cluster);
  inj.inject_rnic_down(RnicId{5});
  d.cluster.run_for(sec(21));
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  const Problem* p = find_problem(*rep, ProblemCategory::kRnicProblem);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->rnic, RnicId{5});
  EXPECT_GT(rep->timeouts_rnic, 0u);
  // Crucially, NO switch problem is reported: ToR-mesh filtering keeps the
  // RNIC's timeouts out of switch localization (§4.3.2).
  EXPECT_FALSE(has_problem(*rep, ProblemCategory::kSwitchNetworkProblem));
}

TEST(RPingmeshE2E, HostDownClassifiedAsNonNetwork) {
  Deployment d;
  d.cluster.run_for(sec(25));
  faults::FaultInjector inj(d.cluster);
  inj.inject_host_down(HostId{3});
  d.cluster.run_for(sec(45));  // > silence threshold + a full period
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  const Problem* p = find_problem(*rep, ProblemCategory::kHostDown);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->host, HostId{3});
  EXPECT_GT(rep->timeouts_host_down, 0u);
  // Host-down timeouts must NOT be blamed on switches.
  EXPECT_FALSE(has_problem(*rep, ProblemCategory::kSwitchNetworkProblem));
}

TEST(RPingmeshE2E, QpnResetFilteredAsNoise) {
  Deployment d;
  d.cluster.run_for(sec(25));
  // Restart the Agent on host 1: its RNICs get fresh QPNs; peers' pinglists
  // are stale until the next 5-minute refresh.
  d.rpm.agent(HostId{1}).restart();
  d.cluster.run_for(sec(21));
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  EXPECT_GT(rep->timeouts_qpn_reset, 0u);
  // The noise is not misattributed to RNIC or switch problems.
  EXPECT_FALSE(has_problem(*rep, ProblemCategory::kRnicProblem));
  EXPECT_FALSE(has_problem(*rep, ProblemCategory::kSwitchNetworkProblem));
  EXPECT_TRUE(has_problem(*rep, ProblemCategory::kQpnResetNoise));
}

TEST(RPingmeshE2E, QpnResetWithControllerRestartStaysNoise) {
  // The §4.3.1 worst case: an Agent restarts WHILE the Controller is down,
  // so the fresh QPNs cannot be registered anywhere and every peer keeps
  // probing QPNs that no longer exist — straight through the Controller's
  // own restart, which wiped the registry. The resulting timeout burst must
  // be triaged as probe noise (network-innocent), never pinned on a switch
  // or an RNIC, and the whole mesh must re-register once the Controller is
  // back.
  Deployment d;
  d.cluster.run_for(sec(25));
  const TimeNs crash_at = d.cluster.scheduler().now();
  d.rpm.crash_controller();
  ASSERT_TRUE(d.rpm.controller_down());
  d.cluster.run_for(sec(2));
  d.rpm.agent(HostId{1}).restart();  // restarts into a dead Controller
  d.cluster.run_for(sec(23));
  d.rpm.restart_controller();
  ASSERT_FALSE(d.rpm.controller_down());
  // Leases expired during the blackout; capped backoff re-registers every
  // Agent and the post-registration pinglist refresh spreads the new QPNs.
  d.cluster.run_for(sec(25));

  std::size_t qpn_noise_timeouts = 0;
  const Problem* noise = nullptr;
  for (const PeriodReport& rep : d.rpm.analyzer().history()) {
    if (rep.period_end <= crash_at) continue;
    qpn_noise_timeouts += rep.timeouts_qpn_reset;
    // The control-plane event must not masquerade as a network fault.
    EXPECT_FALSE(has_problem(rep, ProblemCategory::kSwitchNetworkProblem));
    EXPECT_FALSE(has_problem(rep, ProblemCategory::kRnicProblem));
    if (const Problem* p = find_problem(rep, ProblemCategory::kQpnResetNoise)) {
      noise = p;
    }
  }
  EXPECT_GT(qpn_noise_timeouts, 0u);
  ASSERT_NE(noise, nullptr) << "stale-QPN burst was never triaged as noise";

  // The receipt names the QPN-reset triage branch, including the registry
  // wipe across the Controller restart.
  const std::string receipt = d.rpm.analyzer().explain(noise->problem_id);
  EXPECT_NE(receipt.find("QPN"), std::string::npos) << receipt;
  EXPECT_NE(receipt.find("restart"), std::string::npos) << receipt;

  // Lease-driven recovery: every host re-registered with the new epoch.
  EXPECT_EQ(d.rpm.controller().num_registered_agents(),
            d.cluster.num_hosts());
  EXPECT_GT(d.rpm.agent(HostId{0}).lease_expiries(), 0u);
  EXPECT_GT(d.rpm.agent(HostId{0}).reregistrations(), 0u);
}

TEST(RPingmeshE2E, SwitchPortFlappingLocalizedByVoting) {
  Deployment d;
  d.cluster.run_for(sec(25));
  // Flap a ToR uplink: tor-0/0 -> agg-0/0 direction.
  const auto& topo = d.cluster.topology();
  LinkId victim;
  for (const topo::Link& l : topo.links()) {
    if (l.from.is_switch() && l.to.is_switch() &&
        topo.switch_info(l.from.as_switch()).tier == topo::SwitchTier::kTor) {
      victim = l.id;
      break;
    }
  }
  ASSERT_TRUE(victim.valid());
  faults::FaultInjector inj(d.cluster);
  inj.inject_switch_port_flapping(victim, msec(300), msec(300));
  d.cluster.run_for(sec(41));
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  const Problem* p = find_problem(*rep, ProblemCategory::kSwitchNetworkProblem);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(rep->timeouts_switch, 0u);
  // Algorithm 1 fingered the flapping cable (either direction).
  const LinkId peer = topo.link(victim).peer;
  bool hit = false;
  for (LinkId l : p->suspect_links) {
    if (l == victim || l == peer) hit = true;
  }
  EXPECT_TRUE(hit) << "voting missed the flapping link";
  // And no RNIC was wrongly blamed.
  EXPECT_FALSE(has_problem(*rep, ProblemCategory::kRnicProblem));

  // Every verdict this period carries a resolvable evidence chain, and
  // explain() renders non-empty receipts (probe ids, thresholds) for it.
  for (const Problem& pr : rep->problems) {
    ASSERT_NE(pr.problem_id, 0u) << pr.summary;
    ASSERT_TRUE(pr.evidence.valid()) << pr.summary;
    ASSERT_NE(d.rpm.analyzer().evidence(pr.evidence), nullptr) << pr.summary;
    const std::string j = d.rpm.analyzer().explain(pr.problem_id);
    ASSERT_FALSE(j.empty()) << pr.summary;
    EXPECT_NE(j.find("\"probe_ids\":["), std::string::npos) << pr.summary;
    EXPECT_NE(j.find("\"thresholds\":[{"), std::string::npos) << pr.summary;
  }
  // The switch verdict's chain holds the Algorithm 1 tally behind the
  // suspect list plus the probes that voted.
  const obs::EvidenceChain* chain = d.rpm.analyzer().evidence(p->evidence);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->verdict, "switch-network-problem");
  EXPECT_FALSE(chain->probe_ids.empty());
  EXPECT_GT(chain->total_probes, 0u);
  EXPECT_FALSE(chain->link_votes.empty());
  EXPECT_FALSE(chain->thresholds.empty());
}

TEST(RPingmeshE2E, AgentCpuOccupationFilteredAsNoise) {
  // Figure 6 (right): service pegs every core of a 2-RNIC host; probes to
  // BOTH RNICs "drop" simultaneously. The multi-RNIC filter must call it
  // noise instead of reporting RNIC problems.
  Deployment d;
  d.cluster.run_for(sec(25));
  faults::FaultInjector inj(d.cluster);
  inj.inject_agent_cpu_occupation(HostId{2});
  d.cluster.run_for(sec(41));  // include one fully-starved analysis period
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  const Problem* noise = find_problem(*rep, ProblemCategory::kAgentCpuNoise);
  ASSERT_NE(noise, nullptr);
  EXPECT_EQ(noise->host, HostId{2});
  EXPECT_EQ(noise->priority, Priority::kNoise);
  EXPECT_FALSE(has_problem(*rep, ProblemCategory::kRnicProblem));
}

TEST(RPingmeshE2E, CpuOverloadSurfacesAsProcessingDelayBottleneck) {
  Deployment d;
  d.cluster.run_for(sec(25));
  faults::FaultInjector inj(d.cluster);
  inj.inject_cpu_overload(HostId{1}, 0.97);
  d.cluster.run_for(sec(41));  // include one fully-overloaded period
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  const Problem* p =
      find_problem(*rep, ProblemCategory::kHighProcessingDelay);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->host, HostId{1});
}

TEST(RPingmeshE2E, ServiceTracingFollowsConnectionsLifecycle) {
  Deployment d;
  d.cluster.run_for(sec(5));
  traffic::DmlConfig dml;
  dml.service = ServiceId{7};
  dml.workers = {RnicId{0}, RnicId{4}, RnicId{8}, RnicId{12}};
  dml.compute_time = msec(200);
  dml.comm_bytes = 50'000'000;
  traffic::DmlService svc(d.cluster, dml);
  svc.start();
  // The Agent on each worker host picked up the 5-tuples via tracepoints.
  std::size_t entries = 0;
  for (const RnicId w : dml.workers) {
    entries += d.rpm.agent(d.cluster.topology().rnic(w).host)
                   .service_entries();
  }
  EXPECT_GE(entries, 8u);  // 4 ring connections, both endpoints trace
  d.cluster.run_for(sec(21));
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  bool saw_service_sla = false;
  for (const auto& [svc_id, sla] : rep->service_slas) {
    if (svc_id == ServiceId{7}) {
      saw_service_sla = true;
      EXPECT_GT(sla.probes, 100u);
    }
  }
  EXPECT_TRUE(saw_service_sla);
  svc.stop();
  d.cluster.run_for(sec(1));
  for (const RnicId w : dml.workers) {
    EXPECT_EQ(
        d.rpm.agent(d.cluster.topology().rnic(w).host).service_entries(), 0u);
  }
}

TEST(RPingmeshE2E, ImpactAssessmentAssignsPriorities) {
  Deployment d;
  d.cluster.run_for(sec(5));
  traffic::DmlConfig dml;
  dml.service = ServiceId{7};
  dml.workers = {RnicId{0}, RnicId{4}, RnicId{8}, RnicId{12}};
  dml.compute_time = msec(200);
  dml.comm_bytes = 50'000'000;
  traffic::DmlService svc(d.cluster, dml);
  d.rpm.watch_service(
      {ServiceId{7}, [&svc] { return svc.relative_throughput(); }});
  svc.start();
  d.cluster.run_for(sec(25));

  // A problem on a worker RNIC is in the service network: P0 or P1.
  faults::FaultInjector inj(d.cluster);
  const int h = inj.inject_rnic_down(RnicId{4});
  // Coalesced uploads traverse the control plane: a batch flushed at a
  // period boundary lands in the NEXT period, so cover one extra period.
  d.cluster.run_for(sec(41));
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  const Problem* p = find_problem(*rep, ProblemCategory::kRnicProblem);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->in_service_network);
  EXPECT_TRUE(p->priority == Priority::kP0 || p->priority == Priority::kP1)
      << priority_name(p->priority);
  EXPECT_FALSE(d.rpm.analyzer().network_innocent(ServiceId{7}));
  inj.clear(h);

  // A problem far from the service (different pod, unused RNIC) is P2.
  inj.inject_rnic_down(RnicId{15});
  // Long enough that the last analyzed period holds no late-delivered
  // timeouts of the (cleared) RNIC-4 fault, only RNIC 15's.
  d.cluster.run_for(sec(61));
  rep = d.rpm.analyzer().last_report();
  const Problem* p2 = find_problem(*rep, ProblemCategory::kRnicProblem);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->rnic, RnicId{15});
  EXPECT_EQ(p2->priority, Priority::kP2);
}

TEST(RPingmeshE2E, ControlPlaneLossKeepsReportsCorrect) {
  // Degrade the monitoring plane itself: uploads and RPCs get slow and
  // lossy. Measurements must survive unharmed — batches retry, duplicates
  // are suppressed, and the Analyzer neither loses data nor double counts.
  telemetry::registry().reset();  // safe: no Deployment alive yet
  Deployment d;
  d.cluster.run_for(sec(5));
  faults::FaultInjector inj(d.cluster);
  inj.inject_control_plane_degradation(msec(2), 0.25);
  d.cluster.run_for(sec(46));  // analyses at t = 20 s and t = 40 s

  const telemetry::Snapshot snap = telemetry::registry().snapshot();
  // The degradation actually bit: transmissions were lost and retried.
  EXPECT_GT(snap.sum("rpm_transport_msgs_total", {{"result", "lost"}}), 0.0);
  EXPECT_GT(snap.sum("rpm_transport_msgs_total", {{"result", "retry"}}), 0.0);
  EXPECT_GT(snap.sum("rpm_transport_msgs_total", {{"result", "duplicate"}}),
            0.0);
  // No double counting: the Analyzer processed at most what Agents uploaded.
  EXPECT_LE(snap.sum("rpm_analyzer_records_total"),
            snap.sum("rpm_agent_upload_records_total"));

  // And the reports themselves stay clean: a healthy fabric with a sick
  // control plane must not show fabric problems.
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  ASSERT_NE(rep, nullptr);
  EXPECT_GT(rep->records_processed, 100u);
  EXPECT_EQ(rep->cluster_sla.timeouts, 0u);
  EXPECT_FALSE(has_problem(*rep, ProblemCategory::kRnicProblem));
  EXPECT_FALSE(has_problem(*rep, ProblemCategory::kSwitchNetworkProblem));
  EXPECT_FALSE(has_problem(*rep, ProblemCategory::kHostDown));
}

std::string serialize_history(const std::deque<PeriodReport>& hist) {
  std::ostringstream os;
  os << std::hexfloat;  // doubles must match bit for bit
  for (const PeriodReport& r : hist) {
    os << r.period_start << '|' << r.period_end << '|' << r.records_processed
       << '|' << r.timeouts_host_down << '|' << r.timeouts_qpn_reset << '|'
       << r.timeouts_agent_cpu << '|' << r.timeouts_rnic << '|'
       << r.timeouts_switch << '\n';
    const auto sla = [&os](const SlaReport& s) {
      os << s.probes << ' ' << s.timeouts << ' ' << s.rnic_drop_rate << ' '
         << s.switch_drop_rate << ' ' << s.rtt_mean << ' ' << s.rtt_p50 << ' '
         << s.rtt_p90 << ' ' << s.rtt_p99 << ' ' << s.rtt_p999 << ' '
         << s.proc_p50 << ' ' << s.proc_p90 << ' ' << s.proc_p99 << ' '
         << s.proc_p999 << '\n';
    };
    sla(r.cluster_sla);
    for (const auto& [svc, s] : r.service_slas) {
      os << "svc " << svc.value << ' ';
      sla(s);
    }
    for (const Problem& p : r.problems) {
      os << static_cast<int>(p.category) << ' ' << static_cast<int>(p.priority)
         << ' ' << p.rnic.value << ' ' << p.host.value << ' '
         << p.anomalous_probes << ' ' << p.in_service_network << ' '
         << p.summary << '\n';
      for (LinkId l : p.suspect_links) os << 'L' << l.value << ' ';
      for (SwitchId s : p.suspect_switches) os << 'S' << s.value << ' ';
      os << '\n';
    }
  }
  return os.str();
}

TEST(RPingmeshE2E, LossyControlPlaneRunsAreDeterministic) {
  // Two runs with the same seed and a lossy transport must produce
  // byte-identical report histories: every loss draw, retry timer, and
  // duplicate delivery rides the one deterministic scheduler.
  const auto run_once = [] {
    host::ClusterConfig cfg;
    cfg.control_plane.loss_prob = 0.3;
    Deployment d(cfg);
    d.cluster.run_for(sec(45));
    return serialize_history(d.rpm.analyzer().history());
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(RPingmeshE2E, GidMissingMakesRnicUnreachable) {
  Deployment d;
  d.cluster.run_for(sec(25));
  faults::FaultInjector inj(d.cluster);
  inj.inject_gid_index_missing(RnicId{6});
  d.cluster.run_for(sec(21));
  const PeriodReport* rep = d.rpm.analyzer().last_report();
  const Problem* p = find_problem(*rep, ProblemCategory::kRnicProblem);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->rnic, RnicId{6});
}

TEST(RPingmeshE2E, FullRunExportsNonZeroTelemetry) {
  // Reset the process-wide registry so counts are attributable to this run.
  // Safe here: no Deployment (and thus no cached metric handle) is alive.
  telemetry::registry().reset();
  Deployment d;
  d.cluster.run_for(sec(25));
  faults::FaultInjector inj(d.cluster);
  inj.inject_rnic_down(RnicId{5});
  d.cluster.run_for(sec(21));

  const telemetry::Snapshot snap = telemetry::registry().snapshot();
  // Agent probing activity across all hosts and probe kinds.
  EXPECT_GT(snap.sum("rpm_agent_probes_sent_total"), 0.0);
  EXPECT_GT(snap.sum("rpm_agent_probes_completed_total"), 0.0);
  EXPECT_GT(snap.sum("rpm_agent_probe_timeouts_total"), 0.0);
  EXPECT_GT(snap.sum("rpm_agent_upload_records_total"), 0.0);
  // Analyzer ran periods and attributed the injected fault to a problem.
  EXPECT_GT(snap.sum("rpm_analyzer_periods_total"), 0.0);
  EXPECT_GT(snap.sum("rpm_analyzer_records_total"), 0.0);
  EXPECT_GT(snap.sum("rpm_analyzer_problems_total"), 0.0);
  EXPECT_GT(
      snap.sum("rpm_analyzer_timeouts_total", {{"cause", "rnic-problem"}}),
      0.0);
  // The control-plane transport carried those uploads and registrations...
  EXPECT_GT(snap.sum("rpm_transport_msgs_total", {{"result", "sent"}}), 0.0);
  EXPECT_GT(snap.sum("rpm_transport_msgs_total", {{"result", "delivered"}}),
            0.0);
  // ...batched: several records (and periods) per upload message.
  EXPECT_LT(snap.sum("rpm_agent_uploads_total") * 10.0,
            snap.sum("rpm_agent_upload_records_total"));
  // Sharded ingestion accepted each batch exactly once.
  EXPECT_GT(snap.sum("rpm_analyzer_batches_total", {{"result", "accepted"}}),
            0.0);
  EXPECT_DOUBLE_EQ(
      snap.sum("rpm_analyzer_batches_total", {{"result", "duplicate"}}), 0.0);
  // Controller served pinglists; fabric moved packets; faults were recorded.
  EXPECT_GT(snap.sum("rpm_controller_pinglist_requests_total"), 0.0);
  EXPECT_GT(snap.sum("rpm_fabric_delivered_total"), 0.0);
  EXPECT_GT(snap.sum("rpm_faults_injected_total",
                     {{"kind", "rnic-down"}}),
            0.0);
  // And the rendered exposition carries the headline families.
  const std::string text = telemetry::to_prometheus(snap);
  EXPECT_NE(text.find("rpm_agent_network_rtt_ns"), std::string::npos);
  EXPECT_NE(text.find("rpm_analyzer_stage_ns"), std::string::npos);
  EXPECT_NE(text.find("rpm_sim_executed_events"), std::string::npos);
  EXPECT_NE(text.find("rpm_transport_delivery_latency_ns"), std::string::npos);
  EXPECT_NE(text.find("rpm_transport_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("rpm_analyzer_ingest_bucket_records"),
            std::string::npos);
}

TEST(RPingmeshE2E, AgentOverheadScalesWithProbeRate) {
  Deployment d;
  d.cluster.run_for(sec(30));
  const Agent& a = d.rpm.agent(HostId{0});
  EXPECT_GT(a.probes_sent(), 100u);
  // Figure 7 scale: Agent state is tens of KB per host in this small
  // cluster; far below 18.5 MB even with production fan-out.
  EXPECT_LT(a.approx_memory_bytes(), 20u * 1024 * 1024);
}

}  // namespace
}  // namespace rpm::core
