// Unit and property tests for ECMP routing: determinism, validity, load
// spreading, failure rehash, and rate-limited traceroute.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "routing/ecmp.h"
#include "topo/topology.h"

namespace rpm::routing {
namespace {

using topo::ClosConfig;
using topo::Topology;

ClosConfig cfg3tier() {
  ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 1;
  return cfg;
}

FiveTuple tuple_for(const Topology& t, RnicId src, RnicId dst,
                    std::uint16_t port) {
  FiveTuple f;
  f.src_ip = t.rnic(src).ip;
  f.dst_ip = t.rnic(dst).ip;
  f.src_port = port;
  return f;
}

class EcmpTest : public ::testing::Test {
 protected:
  EcmpTest() : topo_(build_clos(cfg3tier())), router_(topo_) {}
  Topology topo_;
  EcmpRouter router_;
};

TEST_F(EcmpTest, PathIsWellFormed) {
  const RnicId src{0}, dst{static_cast<std::uint32_t>(topo_.num_rnics() - 1)};
  const Path p = router_.resolve(src, dst, tuple_for(topo_, src, dst, 1000));
  ASSERT_TRUE(p.complete);
  // Links must chain: link[i].to == link[i+1].from.
  for (std::size_t i = 0; i + 1 < p.links.size(); ++i) {
    EXPECT_EQ(topo_.link(p.links[i]).to, topo_.link(p.links[i + 1]).from);
  }
  EXPECT_EQ(topo_.link(p.links.front()).from,
            topo::NodeRef::host(topo_.rnic(src).host));
  EXPECT_EQ(topo_.link(p.links.back()).to,
            topo::NodeRef::host(topo_.rnic(dst).host));
  // Cross-pod in a 3-tier Clos: host-tor, tor-agg, agg-spine, spine-agg,
  // agg-tor, tor-host = 6 links, 5 switches... (switches: tor, agg, spine,
  // agg, tor).
  EXPECT_EQ(p.links.size(), 6u);
  EXPECT_EQ(p.switches.size(), 5u);
}

TEST_F(EcmpTest, IntraTorPathIsTwoHops) {
  // RNICs 0 and 1 share a ToR in this config.
  const RnicId a{0}, b{1};
  ASSERT_EQ(topo_.rnic(a).tor, topo_.rnic(b).tor);
  const Path p = router_.resolve(a, b, tuple_for(topo_, a, b, 1000));
  ASSERT_TRUE(p.complete);
  EXPECT_EQ(p.links.size(), 2u);
  EXPECT_EQ(p.switches.size(), 1u);
}

TEST_F(EcmpTest, DeterministicForSameTuple) {
  const RnicId src{0}, dst{7};
  const auto t = tuple_for(topo_, src, dst, 3333);
  const Path p1 = router_.resolve(src, dst, t);
  const Path p2 = router_.resolve(src, dst, t);
  EXPECT_EQ(p1.links, p2.links);
}

TEST_F(EcmpTest, DifferentPortsSpreadAcrossParallelPaths) {
  const RnicId src{0}, dst{7};  // cross-pod
  std::set<std::vector<LinkId>> distinct;
  for (std::uint16_t port = 1000; port < 1200; ++port) {
    distinct.insert(
        router_.resolve(src, dst, tuple_for(topo_, src, dst, port)).links);
  }
  // 4 parallel cross-pod paths; 200 ports must find all of them.
  EXPECT_EQ(distinct.size(), 4u);
}

TEST_F(EcmpTest, SpreadIsRoughlyUniform) {
  const RnicId src{0}, dst{7};
  std::map<std::vector<LinkId>, int> counts;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto t =
        tuple_for(topo_, src, dst, static_cast<std::uint16_t>(1000 + i));
    counts[router_.resolve(src, dst, t).links]++;
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [path, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.05);
  }
}

TEST_F(EcmpTest, RehashesAroundDownLink) {
  const RnicId src{0}, dst{7};
  const auto t = tuple_for(topo_, src, dst, 1000);
  const Path before = router_.resolve(src, dst, t);
  ASSERT_TRUE(before.complete);
  // Kill the first fabric link it used (tor->agg).
  const LinkId dead = before.links[1];
  const auto up = [dead](LinkId l) { return l != dead; };
  const Path after = router_.resolve(src, dst, t, up);
  ASSERT_TRUE(after.complete);
  for (LinkId l : after.links) EXPECT_NE(l, dead);
  EXPECT_NE(before.links, after.links);
}

TEST_F(EcmpTest, BlackholeWhenAllCandidatesDown) {
  const RnicId src{0}, dst{7};
  const auto t = tuple_for(topo_, src, dst, 1000);
  // Take down every uplink of src's ToR.
  const SwitchId tor = topo_.rnic(src).tor;
  std::set<LinkId> dead;
  for (LinkId l : topo_.out_links(topo::NodeRef::sw(tor))) {
    if (topo_.link(l).to.is_switch()) dead.insert(l);
  }
  const Path p = router_.resolve(src, dst, t,
                                 [&](LinkId l) { return !dead.contains(l); });
  EXPECT_FALSE(p.complete);
  ASSERT_FALSE(p.switches.empty());
  EXPECT_EQ(p.switches.back(), tor);
}

TEST_F(EcmpTest, DownSourceUplinkGivesEmptyPath) {
  const RnicId src{0}, dst{7};
  const LinkId up = topo_.rnic(src).uplink;
  const Path p = router_.resolve(src, dst, tuple_for(topo_, src, dst, 1),
                                 [&](LinkId l) { return l != up; });
  EXPECT_FALSE(p.complete);
  EXPECT_TRUE(p.links.empty());
}

TEST_F(EcmpTest, CandidatesExposedForEquationOne) {
  const SwitchId src_tor = topo_.rnic(RnicId{0}).tor;
  const SwitchId dst_tor = topo_.rnic(RnicId{7}).tor;
  const auto& cand = router_.candidates(src_tor, dst_tor);
  EXPECT_EQ(cand.size(), 2u);  // aggs_per_pod uplink choices at the ToR
}

TEST_F(EcmpTest, PickRejectsZeroCandidates) {
  EXPECT_THROW(router_.pick(SwitchId{0}, FiveTuple{}, 0),
               std::invalid_argument);
}

TEST_F(EcmpTest, DifferentSeedsGiveDifferentMappings) {
  EcmpRouter other(topo_, 0xABCDEF);
  const RnicId src{0}, dst{7};
  int diffs = 0;
  for (std::uint16_t port = 0; port < 64; ++port) {
    const auto t = tuple_for(topo_, src, dst, port);
    if (router_.resolve(src, dst, t).links !=
        other.resolve(src, dst, t).links) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);
}

TEST_F(EcmpTest, PropagationTotalSumsHops) {
  const RnicId src{0}, dst{7};
  const Path p = router_.resolve(src, dst, tuple_for(topo_, src, dst, 1));
  TimeNs expect = 0;
  for (LinkId l : p.links) expect += topo_.link(l).propagation;
  EXPECT_EQ(p.propagation_total(topo_), expect);
}

TEST(EcmpRail, RoutesAcrossRails) {
  topo::RailConfig cfg;
  cfg.num_hosts = 2;
  cfg.rails = 2;
  cfg.num_spines = 2;
  const Topology t = build_rail_optimized(cfg);
  EcmpRouter router(t);
  // NIC 0 and NIC 1 of host 0 are on different rails: path crosses a spine.
  const RnicId a{0}, b{1};
  FiveTuple tuple;
  tuple.src_ip = t.rnic(a).ip;
  tuple.dst_ip = t.rnic(b).ip;
  tuple.src_port = 99;
  const Path p = router.resolve(a, b, tuple);
  ASSERT_TRUE(p.complete);
  EXPECT_EQ(p.switches.size(), 3u);  // rail, spine, rail
  EXPECT_EQ(t.switch_info(p.switches[1]).tier, topo::SwitchTier::kSpine);
}

TEST(TracerouteTest, ReportsFullPathWhenUnderRate) {
  const Topology t = build_clos(cfg3tier());
  EcmpRouter router(t);
  TracerouteService tracer(router, 100.0);
  FiveTuple tuple;
  tuple.src_ip = t.rnic(RnicId{0}).ip;
  tuple.dst_ip = t.rnic(RnicId{7}).ip;
  tuple.src_port = 5;
  const auto r = tracer.trace(RnicId{0}, RnicId{7}, tuple, sec(1));
  EXPECT_TRUE(r.all_responded);
  EXPECT_EQ(r.hops.size(), r.path.switches.size());
  for (const auto& h : r.hops) EXPECT_TRUE(h.responded);
}

TEST(TracerouteTest, SwitchCpuRateLimitSuppressesResponses) {
  const Topology t = build_clos(cfg3tier());
  EcmpRouter router(t);
  TracerouteService tracer(router, 2.0);  // 2 responses/s per switch
  FiveTuple tuple;
  tuple.src_ip = t.rnic(RnicId{0}).ip;
  tuple.dst_ip = t.rnic(RnicId{7}).ip;
  tuple.src_port = 5;
  // Burst of traces at the same instant: only the first two get answers
  // from each switch.
  int full = 0, partial = 0;
  for (int i = 0; i < 6; ++i) {
    const auto r = tracer.trace(RnicId{0}, RnicId{7}, tuple, sec(1));
    (r.all_responded ? full : partial)++;
  }
  EXPECT_EQ(full, 2);
  EXPECT_EQ(partial, 4);
}

TEST(TracerouteTest, TokensRefillOverTime) {
  const Topology t = build_clos(cfg3tier());
  EcmpRouter router(t);
  TracerouteService tracer(router, 1.0);
  FiveTuple tuple;
  tuple.src_ip = t.rnic(RnicId{0}).ip;
  tuple.dst_ip = t.rnic(RnicId{7}).ip;
  EXPECT_TRUE(tracer.trace(RnicId{0}, RnicId{7}, tuple, sec(1)).all_responded);
  EXPECT_FALSE(tracer.trace(RnicId{0}, RnicId{7}, tuple, sec(1)).all_responded);
  EXPECT_TRUE(tracer.trace(RnicId{0}, RnicId{7}, tuple, sec(3)).all_responded);
}

TEST(TracerouteTest, RejectsNonPositiveRate) {
  const Topology t = build_clos(cfg3tier());
  EcmpRouter router(t);
  EXPECT_THROW(TracerouteService(router, 0.0), std::invalid_argument);
}

// Property sweep: every (src, dst) RNIC pair resolves to a complete,
// loop-free path in a healthy fabric.
class AllPairsTest : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(AllPairsTest, CompleteAndLoopFree) {
  const Topology t = build_clos(cfg3tier());
  const EcmpRouter router(t);
  const std::uint16_t port = GetParam();
  for (std::uint32_t s = 0; s < t.num_rnics(); ++s) {
    for (std::uint32_t d = 0; d < t.num_rnics(); ++d) {
      if (s == d) continue;
      FiveTuple tuple;
      tuple.src_ip = t.rnic(RnicId{s}).ip;
      tuple.dst_ip = t.rnic(RnicId{d}).ip;
      tuple.src_port = port;
      const Path p = router.resolve(RnicId{s}, RnicId{d}, tuple);
      ASSERT_TRUE(p.complete) << s << "->" << d;
      std::set<SwitchId> seen(p.switches.begin(), p.switches.end());
      EXPECT_EQ(seen.size(), p.switches.size()) << "loop in path";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ports, AllPairsTest,
                         ::testing::Values(1000, 2173, 40000, 65535));

}  // namespace
}  // namespace rpm::routing
