// Unit tests of the Analyzer pipeline (§4.3) on synthetic probe records —
// precise control over every classification branch.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/controller.h"
#include "core/ingest.h"
#include "rnic/rnic.h"
#include "routing/ecmp.h"
#include "sim/scheduler.h"
#include "telemetry/metrics.h"
#include "topo/topology.h"

namespace rpm::core {
namespace {

topo::ClosConfig clos_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  return cfg;
}

class AnalyzerTest : public ::testing::Test {
 protected:
  AnalyzerTest()
      : topo_(topo::build_clos(clos_cfg())),
        router_(topo_),
        ctrl_(topo_, router_),
        analyzer_(topo_, ctrl_, sched_) {
    // Register every RNIC with a known QPN.
    for (const topo::HostInfo& h : topo_.hosts()) {
      std::vector<RnicCommInfo> infos;
      for (RnicId r : h.rnics) {
        infos.push_back(
            {r, topo_.rnic(r).ip, rnic::gid_of(r), Qpn{0x100 + r.value}});
      }
      ctrl_.register_agent(h.id, infos);
    }
  }

  ProbeRecord make_record(RnicId prober, RnicId target, ProbeStatus status,
                          ProbeKind kind = ProbeKind::kTorMesh) {
    ProbeRecord r;
    r.id = next_id_++;
    r.kind = kind;
    r.prober = prober;
    r.target = target;
    r.prober_host = topo_.rnic(prober).host;
    r.target_qpn = Qpn{0x100 + target.value};
    r.status = status;
    r.sent_at = sched_.now();
    if (status == ProbeStatus::kOk) {
      r.network_rtt = usec(5);
      r.responder_delay = usec(8);
      r.prober_delay = usec(8);
    }
    // Realistic traced paths for voting.
    FiveTuple t;
    t.src_ip = topo_.rnic(prober).ip;
    t.dst_ip = topo_.rnic(target).ip;
    t.src_port = static_cast<std::uint16_t>(1000 + (r.id % 5000));
    r.fwd_path = router_.resolve(prober, target, t);
    FiveTuple rev = t;
    std::swap(rev.src_ip, rev.dst_ip);
    r.rev_path = router_.resolve(target, prober, rev);
    r.path_known = true;
    return r;
  }

  /// Keeps a host "alive" by uploading heartbeats from it.
  void heartbeat_all_hosts() {
    for (const topo::HostInfo& h : topo_.hosts()) {
      analyzer_.upload(h.id, {});
    }
  }

  /// Healthy ToR-mesh background so per-RNIC stats have denominators.
  void upload_healthy_tormesh(int rounds = 20) {
    std::vector<ProbeRecord> recs;
    for (int i = 0; i < rounds; ++i) {
      for (SwitchId tor : topo_.tor_switches()) {
        const auto& group = topo_.rnics_under_tor(tor);
        for (std::size_t a = 0; a < group.size(); ++a) {
          recs.push_back(make_record(group[a], group[(a + 1) % group.size()],
                                     ProbeStatus::kOk));
        }
      }
    }
    analyzer_.upload(HostId{0}, std::move(recs));
  }

  topo::Topology topo_;
  routing::EcmpRouter router_;
  sim::InlineScheduler sched_;
  Controller ctrl_;
  Analyzer analyzer_;
  std::uint64_t next_id_ = 1;
};

TEST_F(AnalyzerTest, EmptyPeriodIsClean) {
  heartbeat_all_hosts();
  const PeriodReport& rep = analyzer_.analyze_now();
  EXPECT_EQ(rep.records_processed, 0u);
  EXPECT_TRUE(rep.problems.empty());
  EXPECT_EQ(rep.cluster_sla.probes, 0u);
}

TEST_F(AnalyzerTest, HostDownWhenSilent) {
  // Host 3 never uploads after becoming known; everyone else heartbeats.
  analyzer_.upload(HostId{3}, {});
  sched_.run_until(sec(30));  // > 20 s silence
  for (const topo::HostInfo& h : topo_.hosts()) {
    if (h.id != HostId{3}) analyzer_.upload(h.id, {});
  }
  // Timeouts to host 3's RNICs are attributed to the down host.
  std::vector<ProbeRecord> recs;
  const RnicId dead = topo_.host(HostId{3}).rnics[0];
  for (int i = 0; i < 10; ++i) {
    recs.push_back(make_record(RnicId{0}, dead, ProbeStatus::kTimeout));
  }
  analyzer_.upload(HostId{0}, std::move(recs));
  const PeriodReport& rep = analyzer_.analyze_now();
  EXPECT_EQ(rep.timeouts_host_down, 10u);
  EXPECT_EQ(rep.timeouts_switch, 0u);
  EXPECT_EQ(rep.timeouts_rnic, 0u);
  bool host_down_problem = false;
  for (const auto& p : rep.problems) {
    if (p.category == ProblemCategory::kHostDown && p.host == HostId{3}) {
      host_down_problem = true;
    }
  }
  EXPECT_TRUE(host_down_problem);
}

TEST_F(AnalyzerTest, QpnMismatchIsNoiseNotNetwork) {
  heartbeat_all_hosts();
  upload_healthy_tormesh();
  std::vector<ProbeRecord> recs;
  for (int i = 0; i < 10; ++i) {
    ProbeRecord r = make_record(RnicId{0}, RnicId{2}, ProbeStatus::kTimeout);
    r.target_qpn = Qpn{0x9999};  // stale QPN
    recs.push_back(r);
  }
  analyzer_.upload(HostId{0}, std::move(recs));
  const PeriodReport& rep = analyzer_.analyze_now();
  EXPECT_EQ(rep.timeouts_qpn_reset, 10u);
  EXPECT_EQ(rep.timeouts_rnic, 0u);
  EXPECT_EQ(rep.timeouts_switch, 0u);
}

TEST_F(AnalyzerTest, TorMeshTimeoutRatioFlagsRnic) {
  heartbeat_all_hosts();
  upload_healthy_tormesh();
  // 30% of probes to RNIC 6 time out (> 10% threshold).
  std::vector<ProbeRecord> recs;
  for (int i = 0; i < 14; ++i) {
    recs.push_back(make_record(RnicId{4}, RnicId{6}, ProbeStatus::kOk));
  }
  for (int i = 0; i < 6; ++i) {
    recs.push_back(make_record(RnicId{4}, RnicId{6}, ProbeStatus::kTimeout));
  }
  analyzer_.upload(HostId{2}, std::move(recs));
  const PeriodReport& rep = analyzer_.analyze_now();
  bool flagged = false;
  for (const auto& p : rep.problems) {
    if (p.category == ProblemCategory::kRnicProblem && p.rnic == RnicId{6}) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
  EXPECT_EQ(rep.timeouts_rnic, 6u);
}

TEST_F(AnalyzerTest, BelowThresholdRatioDoesNotFlag) {
  heartbeat_all_hosts();
  upload_healthy_tormesh();
  // 5% timeouts: below the 10% bar.
  std::vector<ProbeRecord> recs;
  for (int i = 0; i < 38; ++i) {
    recs.push_back(make_record(RnicId{4}, RnicId{6}, ProbeStatus::kOk));
  }
  for (int i = 0; i < 2; ++i) {
    recs.push_back(make_record(RnicId{4}, RnicId{6}, ProbeStatus::kTimeout));
  }
  analyzer_.upload(HostId{2}, std::move(recs));
  const PeriodReport& rep = analyzer_.analyze_now();
  for (const auto& p : rep.problems) {
    EXPECT_NE(p.category, ProblemCategory::kRnicProblem);
  }
  // The sub-threshold timeouts fall through to switch attribution.
  EXPECT_EQ(rep.timeouts_switch, 2u);
}

TEST_F(AnalyzerTest, GreedyAttributionClearsPollutedPeers) {
  heartbeat_all_hosts();
  // RNIC 0 is dead: probes TO it all fail, and probes FROM it fail too,
  // polluting peers 1, 2, 3 under the same ToR.
  std::vector<ProbeRecord> recs;
  const auto& group = topo_.rnics_under_tor(topo_.rnic(RnicId{0}).tor);
  ASSERT_EQ(group.size(), 4u);
  for (int round = 0; round < 10; ++round) {
    for (RnicId a : group) {
      for (RnicId b : group) {
        if (a == b) continue;
        const bool involves_dead = (a == RnicId{0}) || (b == RnicId{0});
        recs.push_back(make_record(
            a, b, involves_dead ? ProbeStatus::kTimeout : ProbeStatus::kOk));
      }
    }
  }
  analyzer_.upload(HostId{0}, std::move(recs));
  const PeriodReport& rep = analyzer_.analyze_now();
  std::size_t rnic_problems = 0;
  RnicId flagged;
  for (const auto& p : rep.problems) {
    if (p.category == ProblemCategory::kRnicProblem) {
      ++rnic_problems;
      flagged = p.rnic;
    }
  }
  EXPECT_EQ(rnic_problems, 1u) << "peers must not be blamed";
  EXPECT_EQ(flagged, RnicId{0});
  EXPECT_EQ(rep.timeouts_switch, 0u);
}

TEST_F(AnalyzerTest, MultiRnicSimultaneousTimeoutsAreCpuNoise) {
  heartbeat_all_hosts();
  upload_healthy_tormesh();
  // Both RNICs of host 1 (RNICs 2 and 3) "drop" 30% simultaneously.
  std::vector<ProbeRecord> recs;
  for (RnicId victim : topo_.host(HostId{1}).rnics) {
    for (int i = 0; i < 14; ++i) {
      recs.push_back(make_record(RnicId{0}, victim, ProbeStatus::kOk));
    }
    for (int i = 0; i < 6; ++i) {
      recs.push_back(make_record(RnicId{0}, victim, ProbeStatus::kTimeout));
    }
  }
  analyzer_.upload(HostId{0}, std::move(recs));
  const PeriodReport& rep = analyzer_.analyze_now();
  EXPECT_GT(rep.timeouts_agent_cpu, 0u);
  EXPECT_EQ(rep.timeouts_rnic, 0u);
  bool noise = false;
  for (const auto& p : rep.problems) {
    EXPECT_NE(p.category, ProblemCategory::kRnicProblem);
    if (p.category == ProblemCategory::kAgentCpuNoise &&
        p.host == HostId{1}) {
      noise = true;
      EXPECT_EQ(p.priority, Priority::kNoise);
    }
  }
  EXPECT_TRUE(noise);
}

TEST_F(AnalyzerTest, StarvedResponderDelayIsCpuNoise) {
  heartbeat_all_hosts();
  upload_healthy_tormesh();
  // Only ONE RNIC of the host shows timeouts (multi-RNIC filter does not
  // fire), but its completed probes show ~200 ms responder delays.
  std::vector<ProbeRecord> recs;
  for (int i = 0; i < 14; ++i) {
    ProbeRecord r = make_record(RnicId{0}, RnicId{2}, ProbeStatus::kOk);
    r.responder_delay = msec(200);
    recs.push_back(r);
  }
  for (int i = 0; i < 6; ++i) {
    recs.push_back(make_record(RnicId{0}, RnicId{2}, ProbeStatus::kTimeout));
  }
  analyzer_.upload(HostId{0}, std::move(recs));
  const PeriodReport& rep = analyzer_.analyze_now();
  for (const auto& p : rep.problems) {
    EXPECT_NE(p.category, ProblemCategory::kRnicProblem);
  }
  EXPECT_GT(rep.timeouts_agent_cpu, 0u);
}

TEST_F(AnalyzerTest, FiltersCanBeDisabled) {
  AnalyzerConfig cfg;
  cfg.enable_cpu_noise_filters = false;
  Analyzer no_filters(topo_, ctrl_, sched_, cfg);
  for (const topo::HostInfo& h : topo_.hosts()) no_filters.upload(h.id, {});
  std::vector<ProbeRecord> recs;
  for (RnicId victim : topo_.host(HostId{1}).rnics) {
    for (int i = 0; i < 14; ++i) {
      recs.push_back(make_record(RnicId{0}, victim, ProbeStatus::kOk));
    }
    for (int i = 0; i < 6; ++i) {
      recs.push_back(make_record(RnicId{0}, victim, ProbeStatus::kTimeout));
    }
  }
  no_filters.upload(HostId{0}, std::move(recs));
  const PeriodReport& rep = no_filters.analyze_now();
  // Without the Fig. 6 filters both RNICs are (wrongly) flagged.
  std::size_t rnic_problems = 0;
  for (const auto& p : rep.problems) {
    if (p.category == ProblemCategory::kRnicProblem) ++rnic_problems;
  }
  EXPECT_EQ(rnic_problems, 2u);
}

TEST_F(AnalyzerTest, Algorithm1FindsCommonLink) {
  heartbeat_all_hosts();
  upload_healthy_tormesh();
  // Build timeout probes that all share one fabric link: same (src, dst,
  // port) repeated — deterministic ECMP gives one path.
  std::vector<ProbeRecord> recs;
  ProbeRecord proto =
      make_record(RnicId{0}, RnicId{12}, ProbeStatus::kTimeout,
                  ProbeKind::kInterTor);
  const LinkId common = proto.fwd_path.links[1];
  for (int i = 0; i < 10; ++i) {
    ProbeRecord r = proto;
    r.id = next_id_++;
    recs.push_back(r);
  }
  // Plus unrelated OK probes elsewhere.
  for (int i = 0; i < 50; ++i) {
    recs.push_back(make_record(RnicId{4}, RnicId{8}, ProbeStatus::kOk,
                               ProbeKind::kInterTor));
  }
  analyzer_.upload(HostId{0}, std::move(recs));
  const PeriodReport& rep = analyzer_.analyze_now();
  const Problem* sw = nullptr;
  for (const auto& p : rep.problems) {
    if (p.category == ProblemCategory::kSwitchNetworkProblem) sw = &p;
  }
  ASSERT_NE(sw, nullptr);
  bool found = false;
  for (LinkId l : sw->suspect_links) {
    if (l == common) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(sw->top_link_votes.empty());
  EXPECT_GE(sw->top_link_votes.front().second, 10u);
}

TEST_F(AnalyzerTest, RnicBlameWindowPersistsAcrossPeriods) {
  heartbeat_all_hosts();
  upload_healthy_tormesh();
  // Period 1: RNIC 6 anomalous.
  std::vector<ProbeRecord> recs;
  for (int i = 0; i < 20; ++i) {
    recs.push_back(make_record(RnicId{4}, RnicId{6}, ProbeStatus::kTimeout));
  }
  analyzer_.upload(HostId{2}, std::move(recs));
  sched_.run_until(sec(20));
  analyzer_.analyze_now();
  // Period 2 (within the 60 s blame window): sparse timeouts to RNIC 6 must
  // still be attributed to the RNIC, not to switches.
  heartbeat_all_hosts();
  upload_healthy_tormesh();
  recs.clear();
  recs.push_back(make_record(RnicId{4}, RnicId{6}, ProbeStatus::kTimeout,
                             ProbeKind::kInterTor));
  recs.push_back(make_record(RnicId{4}, RnicId{6}, ProbeStatus::kTimeout,
                             ProbeKind::kInterTor));
  analyzer_.upload(HostId{2}, std::move(recs));
  sched_.run_until(sec(40));
  const PeriodReport& rep = analyzer_.analyze_now();
  EXPECT_EQ(rep.timeouts_rnic, 2u);
  EXPECT_EQ(rep.timeouts_switch, 0u);
}

TEST_F(AnalyzerTest, SlaSplitsRnicAndSwitchDropRates) {
  heartbeat_all_hosts();
  upload_healthy_tormesh(10);  // 160 OK probes
  std::vector<ProbeRecord> recs;
  // An anomalous RNIC (20 timeouts)...
  for (int i = 0; i < 20; ++i) {
    recs.push_back(make_record(RnicId{4}, RnicId{6}, ProbeStatus::kTimeout));
  }
  // ...and a switch problem (10 timeouts on one inter-ToR tuple).
  ProbeRecord proto = make_record(RnicId{0}, RnicId{12},
                                  ProbeStatus::kTimeout, ProbeKind::kInterTor);
  for (int i = 0; i < 10; ++i) {
    ProbeRecord r = proto;
    r.id = next_id_++;
    recs.push_back(r);
  }
  analyzer_.upload(HostId{0}, std::move(recs));
  const PeriodReport& rep = analyzer_.analyze_now();
  const auto& sla = rep.cluster_sla;
  EXPECT_EQ(sla.probes, 160u + 30u);
  EXPECT_EQ(sla.timeouts, 30u);
  EXPECT_NEAR(sla.rnic_drop_rate, 20.0 / 190.0, 1e-9);
  EXPECT_NEAR(sla.switch_drop_rate, 10.0 / 190.0, 1e-9);
  EXPECT_GT(sla.rtt_p50, 0.0);
}

TEST_F(AnalyzerTest, ServiceImpactPriorities) {
  heartbeat_all_hosts();
  upload_healthy_tormesh();
  // A degraded service whose tracing sees switch timeouts -> P0.
  double metric = 0.2;  // below the 0.5 threshold
  analyzer_.register_service({ServiceId{9}, [&metric] { return metric; }});
  std::vector<ProbeRecord> recs;
  ProbeRecord proto = make_record(RnicId{0}, RnicId{12},
                                  ProbeStatus::kTimeout,
                                  ProbeKind::kServiceTracing);
  proto.service = ServiceId{9};
  for (int i = 0; i < 10; ++i) {
    ProbeRecord r = proto;
    r.id = next_id_++;
    recs.push_back(r);
  }
  // Plus OK service probes so the service network is known.
  for (int i = 0; i < 50; ++i) {
    ProbeRecord r = make_record(RnicId{0}, RnicId{12}, ProbeStatus::kOk,
                                ProbeKind::kServiceTracing);
    r.service = ServiceId{9};
    recs.push_back(r);
  }
  analyzer_.upload(HostId{0}, std::move(recs));
  const PeriodReport& rep = analyzer_.analyze_now();
  const Problem* sw = nullptr;
  for (const auto& p : rep.problems) {
    if (p.category == ProblemCategory::kSwitchNetworkProblem) sw = &p;
  }
  ASSERT_NE(sw, nullptr);
  EXPECT_TRUE(sw->detected_by_service_tracing);
  EXPECT_TRUE(sw->in_service_network);
  EXPECT_EQ(sw->priority, Priority::kP0);
  EXPECT_FALSE(analyzer_.network_innocent(ServiceId{9}));
  // A healthy metric downgrades the same evidence to P1.
  metric = 0.9;
  heartbeat_all_hosts();
  recs.clear();
  for (int i = 0; i < 10; ++i) {
    ProbeRecord r = proto;
    r.id = next_id_++;
    recs.push_back(r);
  }
  analyzer_.upload(HostId{0}, std::move(recs));
  const PeriodReport& rep2 = analyzer_.analyze_now();
  for (const auto& p : rep2.problems) {
    if (p.category == ProblemCategory::kSwitchNetworkProblem) {
      EXPECT_EQ(p.priority, Priority::kP1);
    }
  }
}

TEST_F(AnalyzerTest, NetworkInnocentWhenNoServiceProblems) {
  analyzer_.register_service({ServiceId{9}, [] { return 0.1; }});
  heartbeat_all_hosts();
  upload_healthy_tormesh();
  analyzer_.analyze_now();
  // Service degraded but no P0/P1: the network is innocent.
  EXPECT_TRUE(analyzer_.network_innocent(ServiceId{9}));
}

TEST_F(AnalyzerTest, HighProcessingDelayProblem) {
  heartbeat_all_hosts();
  upload_healthy_tormesh();
  std::vector<ProbeRecord> recs;
  for (int i = 0; i < 20; ++i) {
    ProbeRecord r = make_record(RnicId{0}, RnicId{4}, ProbeStatus::kOk);
    r.responder_delay = msec(20);  // way above the 5 ms threshold
    recs.push_back(r);
  }
  analyzer_.upload(HostId{0}, std::move(recs));
  const PeriodReport& rep = analyzer_.analyze_now();
  const Problem* p = nullptr;
  for (const auto& prob : rep.problems) {
    if (prob.category == ProblemCategory::kHighProcessingDelay) p = &prob;
  }
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->host, topo_.rnic(RnicId{4}).host);
}

TEST_F(AnalyzerTest, HistoryBounded) {
  AnalyzerConfig cfg;
  cfg.history_limit = 3;
  Analyzer a(topo_, ctrl_, sched_, cfg);
  for (int i = 0; i < 10; ++i) a.analyze_now();
  EXPECT_EQ(a.history().size(), 3u);
}

TEST_F(AnalyzerTest, RecordTapSeesEveryUpload) {
  int taps = 0;
  analyzer_.set_record_tap([&](const ProbeRecord&) { ++taps; });
  std::vector<ProbeRecord> recs;
  recs.push_back(make_record(RnicId{0}, RnicId{1}, ProbeStatus::kOk));
  recs.push_back(make_record(RnicId{0}, RnicId{2}, ProbeStatus::kOk));
  analyzer_.upload(HostId{0}, std::move(recs));
  EXPECT_EQ(taps, 2);
}

TEST_F(AnalyzerTest, ShardedIngestMergesEveryHostsRecords) {
  // Records spread across all ingest buckets must all reach the same
  // period report, independent of the shard count.
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    AnalyzerConfig cfg;
    cfg.ingest.shards = shards;
    Analyzer a(topo_, ctrl_, sched_, cfg);
    std::size_t total = 0;
    std::uint64_t seq = 1;
    for (const topo::HostInfo& h : topo_.hosts()) {
      UploadBatch b;
      b.host = h.id;
      b.seq = seq++;
      for (int i = 0; i < 5; ++i) {
        b.records.push_back(
            make_record(h.rnics[0], h.rnics[1], ProbeStatus::kOk));
      }
      total += b.records.size();
      a.sink().submit(std::move(b));
    }
    const PeriodReport& rep = a.analyze_now();
    EXPECT_EQ(rep.records_processed, total) << "shards=" << shards;
  }
}

TEST_F(AnalyzerTest, DuplicateBatchesAreSuppressed) {
  // An at-least-once transport redelivers batches; the same (host, seq)
  // must count once no matter how often it arrives.
  UploadBatch b;
  b.host = HostId{0};
  b.seq = 7;
  b.records.push_back(make_record(RnicId{0}, RnicId{1}, ProbeStatus::kOk));
  b.records.push_back(make_record(RnicId{0}, RnicId{2}, ProbeStatus::kOk));

  analyzer_.sink().submit(UploadBatch(b));
  analyzer_.sink().submit(UploadBatch(b));  // retransmit duplicate
  analyzer_.sink().submit(UploadBatch(b));

  // A distinct sequence number from the same host is new data.
  UploadBatch b2 = b;
  b2.seq = 8;
  analyzer_.sink().submit(std::move(b2));

  const PeriodReport& rep = analyzer_.analyze_now();
  EXPECT_EQ(rep.records_processed, 4u);  // 2 + 2, duplicates dropped
}

TEST_F(AnalyzerTest, StaleBatchBehindDedupWindowIsDropped) {
  AnalyzerConfig cfg;
  cfg.ingest.dedup_window = 4;
  Analyzer a(topo_, ctrl_, sched_, cfg);
  auto batch = [&](std::uint64_t seq) {
    UploadBatch b;
    b.host = HostId{0};
    b.seq = seq;
    b.records.push_back(make_record(RnicId{0}, RnicId{1}, ProbeStatus::kOk));
    return b;
  };
  a.sink().submit(batch(100));
  a.sink().submit(batch(101));
  // Far behind the window: can only be an ancient retransmit.
  a.sink().submit(batch(10));
  const PeriodReport& rep = a.analyze_now();
  EXPECT_EQ(rep.records_processed, 2u);
}

TEST_F(AnalyzerTest, DuplicateBatchStillProvesHostLiveness) {
  // Host 0 keeps resending one batch (its acks are being lost). It must not
  // be declared down: duplicates still prove the Agent is alive.
  UploadBatch b;
  b.host = HostId{0};
  b.seq = 1;
  analyzer_.sink().submit(UploadBatch(b));
  sched_.run_until(sec(30));  // beyond the 20 s silence threshold
  for (const topo::HostInfo& h : topo_.hosts()) {
    if (h.id != HostId{0}) analyzer_.upload(h.id, {});
  }
  analyzer_.sink().submit(UploadBatch(b));  // duplicate, fresh timestamp
  const PeriodReport& rep = analyzer_.analyze_now();
  for (const auto& p : rep.problems) {
    EXPECT_FALSE(p.category == ProblemCategory::kHostDown &&
                 p.host == HostId{0});
  }
}

TEST_F(AnalyzerTest, RetriedBatchLeavesVoteTallyUnchanged) {
  // An at-least-once transport — and the Agent's own requeue of expired
  // batches, which reuses the original sequence number — can deliver the
  // same (host, seq) batch several times. Algorithm 1's vote tally and the
  // evidence chain behind the switch verdict must count each probe once.
  std::vector<ProbeRecord> healthy;
  for (int i = 0; i < 50; ++i) {
    healthy.push_back(make_record(RnicId{4}, RnicId{8}, ProbeStatus::kOk,
                                  ProbeKind::kInterTor));
  }
  UploadBatch b;
  b.host = HostId{0};
  b.seq = 42;
  const ProbeRecord proto = make_record(RnicId{0}, RnicId{12},
                                        ProbeStatus::kTimeout,
                                        ProbeKind::kInterTor);
  for (int i = 0; i < 10; ++i) {
    ProbeRecord r = proto;
    r.id = next_id_++;
    b.records.push_back(r);
  }

  struct Outcome {
    std::size_t records = 0;
    std::size_t top_votes = 0;
    std::string chain_json;
  };
  const auto run = [&](int deliveries) {
    Analyzer a(topo_, ctrl_, sched_);
    for (const topo::HostInfo& h : topo_.hosts()) a.upload(h.id, {});
    a.upload(HostId{0}, healthy);
    for (int i = 0; i < deliveries; ++i) a.sink().submit(UploadBatch(b));
    const PeriodReport& rep = a.analyze_now();
    const Problem* sw = nullptr;
    for (const Problem& p : rep.problems) {
      if (p.category == ProblemCategory::kSwitchNetworkProblem) sw = &p;
    }
    Outcome out;
    out.records = rep.records_processed;
    if (sw != nullptr) {
      out.top_votes = sw->top_link_votes.empty()
                          ? 0
                          : sw->top_link_votes.front().second;
      if (const obs::EvidenceChain* c = a.evidence(sw->evidence)) {
        out.chain_json = obs::to_json(*c);
      }
    }
    return out;
  };

  const Outcome once = run(1);
  const Outcome thrice = run(3);
  EXPECT_EQ(once.records, 60u);
  EXPECT_EQ(thrice.records, once.records);
  // Exactly the 10 distinct timeout probes vote — never 30.
  EXPECT_EQ(once.top_votes, 10u);
  EXPECT_EQ(thrice.top_votes, once.top_votes);
  // Byte-identical receipts: probe ids, tallies, thresholds all unchanged.
  ASSERT_FALSE(once.chain_json.empty());
  EXPECT_EQ(thrice.chain_json, once.chain_json);
}

TEST_F(AnalyzerTest, SpillDrainedBatchesLeaveVoteTallyUnchanged) {
  // During an Analyzer outage the Agent parks fully-retried batches in its
  // spill ring and drains them on reconnect — out of order relative to the
  // wire, possibly duplicated by the at-least-once transport, and landing
  // in a later analysis period than they would have. Summed across periods,
  // the (host, seq) dedup and period bucketing must absorb that late
  // history without double-counting a single Algorithm-1 vote.
  const auto make_batch = [&](std::uint64_t seq) {
    UploadBatch b;
    b.host = HostId{0};
    b.seq = seq;
    for (int i = 0; i < 5; ++i) {
      b.records.push_back(make_record(RnicId{0}, RnicId{12},
                                      ProbeStatus::kTimeout,
                                      ProbeKind::kInterTor));
    }
    return b;
  };
  const UploadBatch b1 = make_batch(1);
  const UploadBatch b2 = make_batch(2);
  const UploadBatch b3 = make_batch(3);
  const UploadBatch b4 = make_batch(4);

  std::vector<ProbeRecord> healthy;
  for (int i = 0; i < 50; ++i) {
    healthy.push_back(make_record(RnicId{4}, RnicId{8}, ProbeStatus::kOk,
                                  ProbeKind::kInterTor));
  }

  struct Tally {
    std::size_t records = 0;
    std::size_t votes = 0;
  };
  const auto tally_period = [](Analyzer& a, Tally& t) {
    const PeriodReport& rep = a.analyze_now();
    t.records += rep.records_processed;
    for (const Problem& p : rep.problems) {
      if (p.category == ProblemCategory::kSwitchNetworkProblem &&
          !p.top_link_votes.empty()) {
        t.votes += p.top_link_votes.front().second;
      }
    }
  };
  const auto feed = [&](Analyzer& a) {
    for (const topo::HostInfo& h : topo_.hosts()) a.upload(h.id, {});
    a.upload(HostId{0}, healthy);
  };

  // Baseline: all four batches arrive in order inside one period.
  Analyzer in_order(topo_, ctrl_, sched_);
  Tally baseline;
  feed(in_order);
  for (const UploadBatch* b : {&b1, &b2, &b3, &b4}) {
    in_order.sink().submit(UploadBatch(*b));
  }
  tally_period(in_order, baseline);
  EXPECT_EQ(baseline.records, 70u);
  EXPECT_EQ(baseline.votes, 20u);  // 4 batches x 5 distinct timeout probes

  // Outage replay: batch 1 lands normally; the period closes; then the
  // spill ring drains 3, 2, a transport-duplicated 2, and 4 into the next
  // period.
  Analyzer replay(topo_, ctrl_, sched_);
  Tally late;
  feed(replay);
  replay.sink().submit(UploadBatch(b1));
  tally_period(replay, late);
  feed(replay);
  for (const UploadBatch* b : {&b3, &b2, &b2, &b4}) {
    replay.sink().submit(UploadBatch(*b));
  }
  tally_period(replay, late);

  // The healthy background was fed twice (once per period); discount it.
  EXPECT_EQ(late.records - healthy.size(), baseline.records);
  EXPECT_EQ(late.votes, baseline.votes);
}

TEST_F(AnalyzerTest, ConfigValidation) {
  AnalyzerConfig bad;
  bad.period = 0;
  EXPECT_THROW(Analyzer(topo_, ctrl_, sched_, bad), std::invalid_argument);
  EXPECT_THROW(analyzer_.register_service({ServiceId{1}, nullptr}),
               std::invalid_argument);

  // IngestConfig::validate rejects nonsense instead of silently clamping.
  AnalyzerConfig zero_shards;
  zero_shards.ingest.shards = 0;
  EXPECT_THROW(Analyzer(topo_, ctrl_, sched_, zero_shards),
               std::invalid_argument);
  AnalyzerConfig too_many_threads;
  too_many_threads.ingest.shards = 2;
  too_many_threads.ingest.threads = 3;
  EXPECT_THROW(Analyzer(topo_, ctrl_, sched_, too_many_threads),
               std::invalid_argument);
  AnalyzerConfig no_queue;
  no_queue.ingest.threads = 1;
  no_queue.ingest.queue_capacity = 0;
  EXPECT_THROW(Analyzer(topo_, ctrl_, sched_, no_queue),
               std::invalid_argument);
  AnalyzerConfig no_window;
  no_window.ingest.dedup_window = 0;
  EXPECT_THROW(Analyzer(topo_, ctrl_, sched_, no_window),
               std::invalid_argument);

  // A sane worker-pool config constructs (and joins its threads) cleanly.
  AnalyzerConfig pool;
  pool.ingest.threads = 2;
  EXPECT_NO_THROW(Analyzer(topo_, ctrl_, sched_, pool));
}

TEST_F(AnalyzerTest, SinkSubmitIsTheIngestSurface) {
  // The deprecated ingest_batch shim is gone; sink().submit() is the one
  // ingest surface.
  UploadBatch b;
  b.host = HostId{0};
  b.seq = 1;
  b.records.push_back(make_record(RnicId{0}, RnicId{1}, ProbeStatus::kOk));
  analyzer_.sink().submit(std::move(b));
  EXPECT_EQ(analyzer_.analyze_now().records_processed, 1u);
}

TEST_F(AnalyzerTest, WorkerPoolVerdictsMatchInlineForAnyThreadCount) {
  // Determinism property (the tentpole's core guarantee): the same uploads
  // produce byte-identical verdicts, SLA tables, and diagnosis JSON whether
  // ingestion ran inline (threads = 0) or on a 1- or 4-thread worker pool.
  // Per-shard FIFO queues + single-consumer shards + shard-index-order merge
  // make the merged record vector identical to the inline path's.

  // Build the scenario once; each run replays copies of the same batches.
  std::vector<UploadBatch> batches;
  std::uint64_t seq = 1;
  for (const topo::HostInfo& h : topo_.hosts()) {  // liveness heartbeats
    UploadBatch b;
    b.host = h.id;
    b.seq = seq++;
    batches.push_back(std::move(b));
  }
  {
    UploadBatch healthy;  // ToR-mesh background with denominators
    healthy.host = HostId{0};
    healthy.seq = seq++;
    for (int i = 0; i < 30; ++i) {
      healthy.records.push_back(
          make_record(RnicId{4}, RnicId{8}, ProbeStatus::kOk,
                      ProbeKind::kInterTor));
    }
    batches.push_back(std::move(healthy));
  }
  {
    UploadBatch timeouts;  // a switch problem: common-path timeouts
    timeouts.host = HostId{1};
    timeouts.seq = seq++;
    for (int i = 0; i < 10; ++i) {
      timeouts.records.push_back(make_record(RnicId{2}, RnicId{12},
                                             ProbeStatus::kTimeout,
                                             ProbeKind::kInterTor));
    }
    batches.push_back(std::move(timeouts));
  }
  {
    UploadBatch hot;  // congestion: sustained high RTT
    hot.host = HostId{2};
    hot.seq = seq++;
    for (int i = 0; i < 8; ++i) {
      ProbeRecord r = make_record(RnicId{5}, RnicId{9}, ProbeStatus::kOk,
                                  ProbeKind::kInterTor);
      r.network_rtt = msec(2);
      hot.records.push_back(r);
    }
    batches.push_back(std::move(hot));
  }

  const auto digest = [&](std::size_t threads) {
    AnalyzerConfig cfg;
    cfg.ingest.threads = threads;
    Analyzer a(topo_, ctrl_, sched_, cfg);
    EXPECT_EQ(a.sink().num_threads(), threads);
    for (const UploadBatch& b : batches) {
      a.sink().submit(UploadBatch(b));
      a.sink().submit(UploadBatch(b));  // at-least-once duplicate
    }
    const PeriodReport& rep = a.analyze_now();
    std::ostringstream os;
    os << rep.records_processed << '|' << rep.timeouts_switch << '|'
       << rep.timeouts_rnic << '|' << rep.timeouts_host_down << '|'
       << rep.cluster_sla.probes << '|' << rep.cluster_sla.timeouts << '|'
       << rep.cluster_sla.rtt_p50 << '|' << rep.cluster_sla.rtt_p99 << '|'
       << rep.cluster_sla.switch_drop_rate << '\n';
    for (const Problem& p : rep.problems) {
      os << static_cast<int>(p.category) << ':'
         << static_cast<int>(p.priority) << ':' << p.summary;
      for (LinkId l : p.suspect_links) os << ':' << l.value;
      os << '\n';
    }
    os << obs::to_json(*a.last_diagnosis());
    return os.str();
  };

  const std::string inline_digest = digest(0);
  EXPECT_GT(inline_digest.size(), 100u);
  EXPECT_EQ(digest(1), inline_digest);
  EXPECT_EQ(digest(4), inline_digest);
}

TEST(IngestSinkTest, QueueFullDropsOldestAndCountsIt) {
  // Bounded per-shard queues shed load by dropping the OLDEST queued batch,
  // counted in rpm_analyzer_ingest_dropped_total. Workers are parked via the
  // test hook so the overflow is deterministic.
  IngestConfig cfg;
  cfg.shards = 2;
  cfg.threads = 2;
  cfg.queue_capacity = 4;
  auto sink = make_ingest_sink(cfg, {});
  sink->stall_workers_for_test(true);

  const double dropped_before =
      telemetry::registry().snapshot().sum("rpm_analyzer_ingest_dropped_total");
  for (std::uint64_t s = 1; s <= 10; ++s) {  // host 0 -> shard 0, capacity 4
    UploadBatch b;
    b.host = HostId{0};
    b.seq = s;
    ProbeRecord r;
    r.id = s;
    b.records.push_back(r);
    sink->submit(std::move(b));
  }
  const double dropped_after =
      telemetry::registry().snapshot().sum("rpm_analyzer_ingest_dropped_total");
  EXPECT_DOUBLE_EQ(dropped_after - dropped_before, 6.0);

  // Drain processes what survived: the four NEWEST batches, in order.
  const std::vector<ProbeRecord> records = sink->drain_period();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].id, 7u + i);
  }

  // Unstall + a fresh submit: the pool processes it normally again.
  sink->stall_workers_for_test(false);
  UploadBatch fresh;
  fresh.host = HostId{0};
  fresh.seq = 11;
  fresh.records.emplace_back();
  sink->submit(std::move(fresh));
  EXPECT_EQ(sink->drain_period().size(), 1u);
}

}  // namespace
}  // namespace rpm::core
