// Unit tests for the control-plane transport: delivery timing, loss/retry/
// backoff, bounded-window backpressure, cancellation, counter invariants,
// RPC correlation, and plane-wide degradation.
#include <algorithm>
#include <any>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"
#include "transport/transport.h"

namespace rpm::transport {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  /// A lossless, jitter-free config so timing assertions are exact.
  static ChannelConfig lossless() {
    ChannelConfig cfg;
    cfg.base_latency = usec(50);
    cfg.latency_jitter = 0;
    cfg.retry_jitter = 0;
    cfg.loss_prob = 0.0;
    cfg.reorder_prob = 0.0;
    return cfg;
  }

  sim::InlineScheduler sched_;
  ControlPlane cp_{sched_, Rng(42)};
};

TEST_F(TransportTest, DeliversPayloadAtConfiguredLatency) {
  std::vector<TimeNs> delivered_at;
  std::vector<int> bodies;
  Channel& ch = cp_.make_channel(
      "t.basic",
      [&](std::uint64_t, std::any& p) {
        delivered_at.push_back(sched_.now());
        bodies.push_back(std::any_cast<int>(p));
      },
      lossless());

  const std::uint64_t seq = ch.send(std::any(7));
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(ch.in_flight(), 1u);

  sched_.run_until(sec(1));
  ASSERT_EQ(delivered_at.size(), 1u);
  EXPECT_EQ(delivered_at[0], usec(50));
  EXPECT_EQ(bodies[0], 7);
  EXPECT_EQ(ch.counters().delivered, 1u);
  EXPECT_EQ(ch.counters().duplicates, 0u);
  EXPECT_EQ(ch.in_flight(), 0u);  // ack came back, window drained
}

TEST_F(TransportTest, JitterStaysWithinBounds) {
  ChannelConfig cfg = lossless();
  cfg.latency_jitter = usec(25);
  std::vector<TimeNs> delivered_at;
  Channel& ch = cp_.make_channel(
      "t.jitter",
      [&](std::uint64_t, std::any&) { delivered_at.push_back(sched_.now()); },
      cfg);

  for (int i = 0; i < 100; ++i) ch.send(std::any(i));
  sched_.run_until(sec(1));

  ASSERT_EQ(delivered_at.size(), 100u);
  for (TimeNs t : delivered_at) {
    EXPECT_GE(t, cfg.base_latency);
    EXPECT_LE(t, cfg.base_latency + cfg.latency_jitter);
  }
}

TEST_F(TransportTest, TotalLossExpiresAfterBackoffSchedule) {
  ChannelConfig cfg = lossless();
  cfg.loss_prob = 1.0;
  cfg.max_attempts = 3;
  cfg.retry_timeout = msec(10);
  cfg.retry_backoff = 2.0;

  int deliveries = 0;
  std::vector<std::uint64_t> expired;
  Channel& ch = cp_.make_channel(
      "t.blackhole", [&](std::uint64_t, std::any&) { ++deliveries; }, cfg);
  ch.set_on_expire([&](std::uint64_t seq, std::any&) {
    expired.push_back(seq);
    EXPECT_EQ(sched_.now(), msec(70));  // 10 + 20 + 40 (backoff x2 each)
  });

  ch.send(std::any(std::string("doomed")));
  sched_.run_until(sec(5));

  EXPECT_EQ(deliveries, 0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 1u);
  const auto& c = ch.counters();
  EXPECT_EQ(c.sent, 1u);
  EXPECT_EQ(c.lost, 3u);     // one per attempt
  EXPECT_EQ(c.retries, 2u);  // attempts 2 and 3
  EXPECT_EQ(c.expired, 1u);
  EXPECT_EQ(c.delivered, 0u);
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST_F(TransportTest, BackoffIsCappedAtMaxRetryTimeout) {
  ChannelConfig cfg = lossless();
  cfg.loss_prob = 1.0;
  cfg.max_attempts = 4;
  cfg.retry_timeout = msec(10);
  cfg.retry_backoff = 10.0;
  cfg.max_retry_timeout = msec(20);

  TimeNs expired_at = -1;
  Channel& ch =
      cp_.make_channel("t.cap", [](std::uint64_t, std::any&) {}, cfg);
  ch.set_on_expire(
      [&](std::uint64_t, std::any&) { expired_at = sched_.now(); });

  ch.send(std::any(0));
  sched_.run_until(sec(5));
  // Timers: 10, then capped at 20, 20, 20 -> expiry at 70ms, not 10+100+...
  EXPECT_EQ(expired_at, msec(70));
}

TEST_F(TransportTest, RetryExhaustionUnderTotalLossWithJitterAndCap) {
  // The edge the two tests above leave open: jitter + backoff cap + attempt
  // cap together. Under 100% loss every retransmit timer must stay within
  // [capped backoff, capped backoff + retry_jitter], the message must stop
  // at max_attempts (not retry forever), and exactly one `expired` is
  // counted with the payload handed back through on_expire.
  ChannelConfig cfg = lossless();
  cfg.loss_prob = 1.0;
  cfg.max_attempts = 5;
  cfg.retry_timeout = msec(10);
  cfg.retry_backoff = 3.0;
  cfg.max_retry_timeout = msec(25);
  cfg.retry_jitter = msec(2);

  TimeNs expired_at = -1;
  std::string expired_body;
  Channel& ch = cp_.make_channel(
      "t.exhaust", [](std::uint64_t, std::any&) { FAIL(); }, cfg);
  ch.set_on_expire([&](std::uint64_t, std::any& p) {
    expired_at = sched_.now();
    expired_body = std::any_cast<std::string>(p);
  });

  ch.send(std::any(std::string("exhausted")));
  sched_.run_until(sec(10));

  // One timer per attempt (the last declares expiry): 10 ms, then
  // 30/90/270/810 ms all capped at 25 ms, each + [0, 2] ms of jitter ->
  // expiry in [110, 120] ms. No timer may exceed cap + jitter.
  EXPECT_GE(expired_at, msec(110));
  EXPECT_LE(expired_at, msec(110) + 5 * cfg.retry_jitter);
  EXPECT_EQ(expired_body, "exhausted");
  const auto& c = ch.counters();
  EXPECT_EQ(c.sent, 1u);
  EXPECT_EQ(c.lost, 5u);     // one transmission per attempt, all eaten
  EXPECT_EQ(c.retries, 4u);  // attempts 2..5
  EXPECT_EQ(c.expired, 1u);
  EXPECT_EQ(c.delivered, 0u);
  EXPECT_EQ(ch.in_flight(), 0u);  // nothing left armed after give-up
}

TEST_F(TransportTest, FullWindowDropsOldestMessage) {
  ChannelConfig cfg = lossless();
  cfg.max_in_flight = 2;

  std::vector<int> bodies;
  std::vector<std::uint64_t> expired;
  Channel& ch = cp_.make_channel(
      "t.window",
      [&](std::uint64_t, std::any& p) {
        bodies.push_back(std::any_cast<int>(p));
      },
      cfg);
  ch.set_on_expire(
      [&](std::uint64_t seq, std::any&) { expired.push_back(seq); });

  ch.send(std::any(1));
  ch.send(std::any(2));
  ch.send(std::any(3));  // evicts seq 1 (latest-wins backpressure)
  EXPECT_EQ(ch.in_flight(), 2u);

  sched_.run_until(sec(1));
  EXPECT_EQ(bodies, (std::vector<int>{2, 3}));
  EXPECT_EQ(expired, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(ch.counters().dropped, 1u);
  EXPECT_EQ(ch.counters().delivered, 2u);
}

TEST_F(TransportTest, CancelUnackedStopsDeliveryAndCountsDrops) {
  int deliveries = 0;
  Channel& ch = cp_.make_channel(
      "t.cancel", [&](std::uint64_t, std::any&) { ++deliveries; }, lossless());

  for (int i = 0; i < 5; ++i) ch.send(std::any(i));
  ch.cancel_unacked();
  EXPECT_EQ(ch.in_flight(), 0u);

  sched_.run_until(sec(1));
  EXPECT_EQ(deliveries, 0);  // queued delivery events became no-ops
  EXPECT_EQ(ch.counters().dropped, 5u);
  EXPECT_EQ(ch.counters().delivered, 0u);
}

TEST_F(TransportTest, NoteAppDropOnlyBumpsTheDropCounter) {
  Channel& ch =
      cp_.make_channel("t.appdrop", [](std::uint64_t, std::any&) {}, lossless());
  ch.note_app_drop(3);
  EXPECT_EQ(ch.counters().dropped, 3u);
  EXPECT_EQ(ch.counters().sent, 0u);
}

TEST_F(TransportTest, LossyChannelCountersStayConsistent) {
  ChannelConfig cfg = lossless();
  cfg.loss_prob = 0.3;
  cfg.latency_jitter = usec(25);
  cfg.retry_timeout = msec(5);
  cfg.max_in_flight = 4096;  // no backpressure in this test

  int handler_runs = 0;
  Channel& ch = cp_.make_channel(
      "t.lossy", [&](std::uint64_t, std::any&) { ++handler_runs; }, cfg);

  constexpr int kMsgs = 300;
  for (int i = 0; i < kMsgs; ++i) ch.send(std::any(i));
  sched_.run_until(sec(30));

  const auto& c = ch.counters();
  EXPECT_EQ(c.sent, kMsgs);
  // Every message either reached the handler once or exhausted its retries.
  EXPECT_EQ(c.delivered + c.expired, c.sent);
  // 30% loss over 6 attempts: virtually everything gets through, with
  // visible retry/duplicate traffic.
  EXPECT_GT(c.delivered, static_cast<std::uint64_t>(0.95 * kMsgs));
  EXPECT_GT(c.retries, 0u);
  EXPECT_GT(c.lost, 0u);
  // The handler runs once per delivery, duplicates included.
  EXPECT_EQ(static_cast<std::uint64_t>(handler_runs),
            c.delivered + c.duplicates);
  EXPECT_EQ(ch.in_flight(), 0u);
}

TEST_F(TransportTest, RpcRoundTripReturnsServerResult) {
  RpcChannel& rpc = cp_.make_rpc_channel(
      "t.rpc",
      [](const std::any& req) {
        return std::any(std::any_cast<int>(req) * 2);
      },
      lossless());

  int result = 0;
  int fired = 0;
  rpc.call(std::any(21), [&](std::any& rsp) {
    ++fired;
    result = std::any_cast<int>(rsp);
  });
  EXPECT_EQ(rpc.pending_calls(), 1u);

  sched_.run_until(sec(1));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(result, 42);
  EXPECT_EQ(rpc.pending_calls(), 0u);
}

TEST_F(TransportTest, RpcFiresEachCompletionOnceDespiteLossAndRetries) {
  ChannelConfig cfg = lossless();
  cfg.loss_prob = 0.4;
  cfg.retry_timeout = msec(5);
  cfg.max_in_flight = 4096;

  int server_runs = 0;
  RpcChannel& rpc = cp_.make_rpc_channel(
      "t.rpc_lossy",
      [&](const std::any& req) {
        ++server_runs;
        return std::any(std::any_cast<int>(req) + 1);
      },
      cfg);

  constexpr int kCalls = 100;
  std::vector<int> completions(kCalls, 0);
  for (int i = 0; i < kCalls; ++i) {
    rpc.call(std::any(i), [&completions, i](std::any& rsp) {
      ++completions[i];
      EXPECT_EQ(std::any_cast<int>(rsp), i + 1);
    });
  }
  sched_.run_until(sec(30));

  int done = 0;
  for (int i = 0; i < kCalls; ++i) {
    EXPECT_LE(completions[i], 1) << "call " << i << " completed twice";
    done += completions[i];
  }
  // 40% loss: a few calls may expire end-to-end, most complete exactly once.
  EXPECT_GT(done, kCalls * 8 / 10);
  // Retried deliveries re-ran the (idempotent) server.
  EXPECT_GT(server_runs, done);
  // Anything not completed was pruned when its request expired.
  EXPECT_EQ(rpc.pending_calls(), static_cast<std::size_t>(kCalls - done));
}

TEST_F(TransportTest, RpcCancelPendingDropsCompletions) {
  RpcChannel& rpc = cp_.make_rpc_channel(
      "t.rpc_cancel", [](const std::any&) { return std::any(0); }, lossless());

  int fired = 0;
  rpc.call(std::any(1), [&](std::any&) { ++fired; });
  rpc.cancel_pending();
  sched_.run_until(sec(1));

  EXPECT_EQ(fired, 0);
  EXPECT_EQ(rpc.pending_calls(), 0u);
}

TEST_F(TransportTest, DegradationAddsLatencyAndLossPlaneWide) {
  std::vector<TimeNs> delivered_at;
  Channel& ch = cp_.make_channel(
      "t.degraded",
      [&](std::uint64_t, std::any&) { delivered_at.push_back(sched_.now()); },
      lossless());

  cp_.set_degradation(msec(1), 0.0);
  ch.send(std::any(0));
  sched_.run_until(sec(1));
  ASSERT_EQ(delivered_at.size(), 1u);
  EXPECT_EQ(delivered_at[0], msec(1) + usec(50));

  // Total extra loss: nothing gets through; the message expires instead.
  cp_.set_degradation(0, 1.0);
  ch.send(std::any(1));
  sched_.run_until(sec(30));
  EXPECT_EQ(delivered_at.size(), 1u);
  EXPECT_EQ(ch.counters().expired, 1u);

  // Clearing restores the configured behaviour.
  cp_.clear_degradation();
  ch.send(std::any(2));
  const TimeNs sent_at = sched_.now();
  sched_.run_until(sched_.now() + sec(1));
  ASSERT_EQ(delivered_at.size(), 2u);
  EXPECT_EQ(delivered_at[1], sent_at + usec(50));
}

TEST_F(TransportTest, RetryJitterAvoidsThunderingHerd) {
  // Eight channels lose their first transmission at the same tick. With
  // retry_jitter on, each channel's own seeded Rng spreads the retransmit
  // timers: the second attempts must NOT all land on the same tick (the
  // thundering herd that would re-bury a Controller recovering from a
  // crash), yet every one stays inside [retry_timeout, retry_timeout +
  // retry_jitter].
  constexpr int kChannels = 8;
  ChannelConfig cfg = lossless();
  cfg.loss_prob = 1.0;
  cfg.retry_jitter = msec(5);
  std::vector<TimeNs> second_attempt_at;
  for (int i = 0; i < kChannels; ++i) {
    Channel& ch = cp_.make_channel("t.herd" + std::to_string(i),
                                   [](std::uint64_t, std::any&) {}, cfg);
    ch.set_on_attempt([&](std::uint64_t, std::uint32_t attempt) {
      if (attempt == 2) second_attempt_at.push_back(sched_.now());
    });
    ch.send(std::any(i));
  }
  sched_.run_until(sec(5));

  ASSERT_EQ(second_attempt_at.size(), static_cast<std::size_t>(kChannels));
  for (TimeNs t : second_attempt_at) {
    EXPECT_GE(t, cfg.retry_timeout);
    EXPECT_LE(t, cfg.retry_timeout + cfg.retry_jitter);
  }
  std::sort(second_attempt_at.begin(), second_attempt_at.end());
  const auto distinct = static_cast<std::size_t>(
      std::unique(second_attempt_at.begin(), second_attempt_at.end()) -
      second_attempt_at.begin());
  EXPECT_GE(distinct, 2u) << "all " << kChannels
                          << " channels retried on the same tick";
}

TEST_F(TransportTest, PeerDownDropsTrafficAndBumpsEpochOnRecovery) {
  std::size_t delivered = 0;
  Channel& ch = cp_.make_channel(
      "t.down", [&](std::uint64_t, std::any&) { ++delivered; }, lossless());
  EXPECT_FALSE(ch.peer_down());
  EXPECT_EQ(ch.peer_epoch(), 1u);

  // In flight when the peer dies: counted lost, never delivered.
  ch.send(std::any(1));
  ch.set_peer_down(true);
  sched_.run_until(sec(1));
  EXPECT_EQ(delivered, 0u);

  // Fresh sends against a dead peer burn their attempts and expire.
  ch.send(std::any(2));
  sched_.run_until(sec(5));
  EXPECT_EQ(delivered, 0u);
  EXPECT_GE(ch.counters().expired, 1u);
  EXPECT_GT(ch.counters().lost, 0u);

  // Recovery: epoch bumps (stale-response guard) and delivery resumes.
  ch.set_peer_down(false);
  EXPECT_EQ(ch.peer_epoch(), 2u);
  ch.send(std::any(3));
  sched_.run_until(sched_.now() + sec(1));
  EXPECT_EQ(delivered, 1u);
  EXPECT_FALSE(ch.peer_down());
}

TEST_F(TransportTest, ControlPlaneCountsItsChannels) {
  EXPECT_EQ(cp_.num_channels(), 0u);
  cp_.make_channel("t.a", nullptr);
  cp_.make_rpc_channel("t.b", [](const std::any&) { return std::any(); });
  EXPECT_EQ(cp_.num_channels(), 3u);  // one plain + req/rsp pair
}

// Partition binding: a channel whose sender lives on partition 0 and whose
// receiver is bound to partition 1 must run its handler on partition 1's
// clock, at the same simulated latency, deterministically.
TEST(TransportPartitioned, DeliveryRunsOnBoundPartition) {
  sim::ParallelConfig pcfg;
  pcfg.partitions = 2;
  pcfg.lookahead = usec(10);
  ChannelConfig ccfg;
  ccfg.base_latency = usec(50);
  ccfg.latency_jitter = 0;
  ccfg.retry_jitter = 0;

  auto run_once = [&] {
    sim::ParallelScheduler ps(pcfg);
    std::vector<std::pair<std::uint64_t, TimeNs>> deliveries;
    // Sender endpoint on partition 0 (the control-plane partition).
    ControlPlane cp(ps.partition(0), Rng(42));
    Channel& ch = cp.make_channel(
        "t.part",
        [&](std::uint64_t seq, std::any&) {
          deliveries.emplace_back(seq, ps.partition(1).now());
        },
        ccfg);
    ch.bind_delivery_scheduler(ps.partition(1));
    for (int i = 0; i < 4; ++i) ch.send(std::any(i));
    ps.run_until(sec(1));
    EXPECT_EQ(ch.counters().delivered, 4u);
    EXPECT_EQ(ch.in_flight(), 0u);  // acks crossed back to partition 0
    // The delivery events themselves executed on partition 1.
    EXPECT_GE(ps.partition_executed(1), 4u);
    return deliveries;
  };

  const auto first = run_once();
  ASSERT_EQ(first.size(), 4u);
  // All handler invocations saw partition 1's clock at the delivery time.
  for (const auto& [seq, t] : first) EXPECT_GE(t, usec(50));
  // Byte-identical across runs (the partitioned determinism invariant).
  EXPECT_EQ(run_once(), first);
}

}  // namespace
}  // namespace rpm::transport
