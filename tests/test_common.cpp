// Unit tests for src/common: ids, time helpers, 5-tuples, RNG, statistics.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/five_tuple.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace rpm {
namespace {

TEST(Types, TimeHelpers) {
  EXPECT_EQ(usec(1), 1'000);
  EXPECT_EQ(msec(1), 1'000'000);
  EXPECT_EQ(sec(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_usec(usec(7)), 7.0);
}

TEST(Types, IdsAreStronglyTyped) {
  const HostId h{3};
  const RnicId r{3};
  EXPECT_TRUE(h.valid());
  EXPECT_FALSE(HostId{}.valid());
  EXPECT_EQ(h, HostId{3});
  EXPECT_NE(h, HostId{4});
  // h == r must not compile; verified by the type system, not at runtime.
  static_assert(!std::is_same_v<HostId, RnicId>);
  (void)r;
}

TEST(Types, IdHashUsableInSets) {
  std::unordered_set<RnicId> s;
  s.insert(RnicId{1});
  s.insert(RnicId{1});
  s.insert(RnicId{2});
  EXPECT_EQ(s.size(), 2u);
}

TEST(Types, GbpsConversion) {
  EXPECT_DOUBLE_EQ(gbps_to_Bps(8.0), 1e9);
}

TEST(FiveTuple, DefaultsToRoceV2) {
  const FiveTuple t;
  EXPECT_EQ(t.dst_port, kRoceUdpPort);
  EXPECT_EQ(t.protocol, 17);
}

TEST(FiveTuple, EqualityAndHash) {
  FiveTuple a;
  a.src_ip = IpAddr{1};
  a.dst_ip = IpAddr{2};
  a.src_port = 1000;
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.stable_hash(), b.stable_hash());
  b.src_port = 1001;
  EXPECT_NE(a, b);
  EXPECT_NE(a.stable_hash(), b.stable_hash());
}

TEST(FiveTuple, HashSpreadsAcrossSourcePorts) {
  // ECMP quality depends on distinct source ports producing distinct hashes.
  FiveTuple t;
  t.src_ip = IpAddr{0x0A000001};
  t.dst_ip = IpAddr{0x0A000002};
  std::set<std::uint64_t> hashes;
  for (std::uint16_t p = 1000; p < 1256; ++p) {
    t.src_port = p;
    hashes.insert(t.stable_hash());
  }
  EXPECT_EQ(hashes.size(), 256u);
}

TEST(FiveTuple, ToStringFormat) {
  FiveTuple t;
  t.src_ip = IpAddr{0x0A000001};
  t.dst_ip = IpAddr{0x0A000002};
  t.src_port = 4242;
  EXPECT_EQ(t.to_string(), "10.0.0.1:4242->10.0.0.2:4791/p17");
}

TEST(Rng, Deterministic) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntBounds) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
  EXPECT_THROW(r.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(1);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  EXPECT_FALSE(r.chance(-1.0));
  EXPECT_TRUE(r.chance(2.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(99);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(7);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.3);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(3);
  Rng child = parent.fork();
  // Child diverges from parent.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    any_diff |= parent.uniform_int(0, 1 << 30) != child.uniform_int(0, 1 << 30);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(OnlineStats, Basics) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(PercentileWindow, EmptyIsZero) {
  PercentileWindow w;
  EXPECT_DOUBLE_EQ(w.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(PercentileWindow, KnownQuantiles) {
  PercentileWindow w;
  for (int i = 1; i <= 100; ++i) w.add(i);
  EXPECT_NEAR(w.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(w.percentile(0.99), 99.0, 1.0);
  EXPECT_NEAR(w.percentile(0.0), 1.0, 0.5);
  EXPECT_NEAR(w.percentile(1.0), 100.0, 0.5);
  EXPECT_DOUBLE_EQ(w.mean(), 50.5);
}

TEST(LogHistogram, PercentilesWithinBucketError) {
  LogHistogram h(1.0, 1e9);
  for (int i = 1; i <= 10000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 10000u);
  // 4% bucket resolution.
  EXPECT_NEAR(h.percentile(0.5), 5000.0, 5000.0 * 0.08);
  EXPECT_NEAR(h.percentile(0.99), 9900.0, 9900.0 * 0.08);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a(1.0, 1e6), b(1.0, 1e6);
  a.add(10.0);
  b.add(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(LogHistogram, RejectsInvalidBounds) {
  EXPECT_THROW(LogHistogram(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 10.0), std::invalid_argument);
}

TEST(LogHistogram, MergeRejectsShapeMismatch) {
  LogHistogram a(1.0, 1e6), b(1.0, 1e9);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

}  // namespace
}  // namespace rpm
