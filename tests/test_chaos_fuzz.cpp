// Tests for the property-based chaos fuzzing stack: FaultCatalog specs and
// their JSON codec, CampaignGen determinism + validity envelope, the
// ChaosRunner same-`at` tie-break, the invariant oracles, ddmin shrinking
// (a deliberately broken oracle must reduce a ~20-step generated plan to a
// minimal counterexample), the run_fuzz loop's corpus artifacts, replay of
// the checked-in tests/chaos_corpus/, and the journal's CRC fallback.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "chaos/fuzz.h"
#include "chaos/gen.h"
#include "chaos/oracle.h"
#include "chaos/plan_io.h"
#include "chaos/shrink.h"
#include "common/json.h"
#include "common/rng.h"
#include "faults/catalog.h"
#include "faults/faults.h"
#include "host/cluster.h"
#include "topo/topology.h"

namespace rpm::chaos {
namespace {

topo::ClosConfig small_clos() {
  return DeploymentSpec{}.clos();  // the fuzzer's default 8-host fabric
}

LinkId first_fabric_link(const topo::Topology& topo) {
  for (const topo::Link& l : topo.links()) {
    if (l.from.is_switch() && l.to.is_switch()) return l.id;
  }
  return LinkId{};
}

// ---- FaultCatalog + FaultSpec JSON ----

TEST(FaultSpecJson, EveryConstructorRoundTrips) {
  const std::vector<faults::FaultSpec> specs = {
      faults::FaultSpec::rnic_flapping(RnicId{3}, msec(200), msec(800)),
      faults::FaultSpec::switch_port_flapping(LinkId{5}, msec(100), msec(400)),
      faults::FaultSpec::corruption(LinkId{7}, 0.25),
      faults::FaultSpec::rnic_down(RnicId{2}),
      faults::FaultSpec::host_down(HostId{4}),
      faults::FaultSpec::pfc_deadlock(LinkId{9}),
      faults::FaultSpec::route_missing(RnicId{1}),
      faults::FaultSpec::gid_index_missing(RnicId{6}),
      faults::FaultSpec::acl_error(SwitchId{8}),
      faults::FaultSpec::pfc_misconfigured(LinkId{3}),
      faults::FaultSpec::cpu_overload(HostId{2}, 0.95),
      faults::FaultSpec::pcie_downgrade(RnicId{4}, 0.5),
      faults::FaultSpec::agent_cpu_occupation(HostId{1}),
      faults::FaultSpec::control_plane_degradation(msec(5), 0.1),
      faults::FaultSpec::qpn_reset(HostId{0}),
  };
  for (const faults::FaultSpec& s : specs) {
    ASSERT_TRUE(s.valid());
    const std::string text = faults::spec_to_value(s).dump();
    const faults::FaultSpec back =
        faults::spec_from_value(json::Value::parse(text));
    EXPECT_EQ(back.ctor, s.ctor) << text;
    EXPECT_EQ(back.rnic, s.rnic) << text;
    EXPECT_EQ(back.host, s.host) << text;
    EXPECT_EQ(back.link, s.link) << text;
    EXPECT_EQ(back.sw, s.sw) << text;
    EXPECT_EQ(back.down_time, s.down_time) << text;
    EXPECT_EQ(back.up_time, s.up_time) << text;
    EXPECT_EQ(back.extra_latency, s.extra_latency) << text;
    EXPECT_DOUBLE_EQ(back.prob, s.prob) << text;
    EXPECT_DOUBLE_EQ(back.factor, s.factor) << text;
    EXPECT_DOUBLE_EQ(back.load, s.load) << text;
    EXPECT_DOUBLE_EQ(back.extra_loss, s.extra_loss) << text;
  }
}

TEST(FaultCatalog, EverySampledSpecAppliesToAnInjector) {
  const topo::Topology topo = topo::build_clos(small_clos());
  host::Cluster cluster(topo::build_clos(small_clos()), host::ClusterConfig{});
  faults::FaultInjector injector(cluster);
  Rng rng(11);
  const faults::FaultCatalog& catalog = faults::FaultCatalog::instance();
  ASSERT_FALSE(catalog.entries().empty());
  for (const faults::FaultCatalog::Entry& e : catalog.entries()) {
    const faults::FaultSpec spec = e.sample(rng, topo);
    ASSERT_TRUE(spec.valid()) << e.name;
    EXPECT_EQ(spec.ctor, e.name);
    EXPECT_GE(catalog.apply(injector, spec), 0) << e.name;
  }
}

TEST(FaultCatalog, UnknownConstructorIsRejected) {
  host::Cluster cluster(topo::build_clos(small_clos()), host::ClusterConfig{});
  faults::FaultInjector injector(cluster);
  EXPECT_EQ(faults::FaultCatalog::instance().find("no-such-fault"), nullptr);
  faults::FaultSpec bogus;
  bogus.ctor = "no-such-fault";
  EXPECT_THROW(faults::FaultCatalog::instance().apply(injector, bogus),
               std::invalid_argument);
}

// ---- ChaosPlan JSON ----

TEST(PlanJson, AllStepKindsRoundTripByteIdentically) {
  ChaosPlan plan;
  plan.seed = 99;
  plan.duration = sec(150);
  plan.controller_crash(sec(20))
      .controller_restart(sec(35))
      .analyzer_outage(sec(40), sec(55))
      .agent_restart(sec(60), HostId{2})
      .pod_analyzer_crash(sec(65), 1)
      .pod_analyzer_restart(sec(75), 1)
      .inject(sec(80), "h3", faults::FaultSpec::host_down(HostId{3}))
      .clear(sec(100), "h3")
      .inject(sec(105), "corr", faults::FaultSpec::corruption(LinkId{4}, 0.5));
  const std::string text = plan_to_json(plan);
  EXPECT_EQ(plan_to_json(plan_from_json(text)), text);
}

TEST(PlanJson, MalformedInputThrows) {
  EXPECT_THROW(plan_from_json("not json"), std::runtime_error);
  EXPECT_THROW(plan_from_json("[1, 2]"), std::runtime_error);
  // kInject without its spec.
  EXPECT_THROW(
      plan_from_json(R"({"steps": [{"kind": "inject", "at_ns": 1}]})"),
      std::runtime_error);
  // Unknown step name.
  EXPECT_THROW(
      plan_from_json(R"({"steps": [{"kind": "meteor-strike", "at_ns": 1}]})"),
      std::invalid_argument);
}

// ---- CampaignGen ----

TEST(CampaignGen, SameSeedYieldsByteIdenticalPlans) {
  const topo::Topology topo = topo::build_clos(small_clos());
  const CampaignGen gen;
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::string a = plan_to_json(gen.generate(seed, topo));
    const std::string b = plan_to_json(gen.generate(seed, topo));
    EXPECT_EQ(a, b) << "seed " << seed;
    distinct.insert(a);
  }
  EXPECT_GE(distinct.size(), 2u) << "seeds produce indistinguishable plans";
}

TEST(CampaignGen, PlansStayInsideTheValidityEnvelope) {
  const topo::Topology topo = topo::build_clos(small_clos());
  CampaignGenConfig cfg;  // flat: pods = 0 disables pod-bounce
  const CampaignGen gen(cfg);
  const TimeNs lo = cfg.period;
  const TimeNs hi = cfg.duration - cfg.settle_tail;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ChaosPlan plan = gen.generate(seed, topo);
    EXPECT_LE(plan.steps.size(),
              static_cast<std::size_t>(2 * cfg.max_events));
    std::set<std::string> injected;
    for (const ChaosStep& s : plan.steps) {
      EXPECT_GE(s.at, lo) << "seed " << seed;
      EXPECT_LE(s.at, hi) << "seed " << seed;
      EXPECT_EQ(s.at % cfg.time_grid, 0) << "seed " << seed;
      EXPECT_NE(s.kind, ChaosStep::Kind::kPodAnalyzerCrash);
      EXPECT_NE(s.kind, ChaosStep::Kind::kPodAnalyzerRestart);
      if (s.kind == ChaosStep::Kind::kInject) {
        EXPECT_TRUE(s.spec.valid());
        EXPECT_FALSE(s.label.empty());
        injected.insert(s.label);
      } else if (s.kind == ChaosStep::Kind::kClear) {
        // Insertion order puts every inject before its clear.
        EXPECT_TRUE(injected.contains(s.clear_ref))
            << "seed " << seed << ": clear of '" << s.clear_ref
            << "' precedes its inject";
      }
    }
  }
}

TEST(CampaignGen, FederatedConfigEmitsPodBouncesWithValidPodIds) {
  const topo::Topology topo = topo::build_clos(small_clos());
  CampaignGenConfig cfg;
  cfg.pods = 3;
  const CampaignGen gen(cfg);
  bool saw_pod_bounce = false;
  for (std::uint64_t seed = 1; seed <= 30 && !saw_pod_bounce; ++seed) {
    for (const ChaosStep& s : gen.generate(seed, topo).steps) {
      if (s.kind == ChaosStep::Kind::kPodAnalyzerCrash ||
          s.kind == ChaosStep::Kind::kPodAnalyzerRestart) {
        saw_pod_bounce = true;
        EXPECT_LT(s.pod, cfg.pods);
      }
    }
  }
  EXPECT_TRUE(saw_pod_bounce);
}

// ---- ChaosRunner tie-break (same-`at` steps) ----

TEST(ChaosRunnerTieBreak, SameTimestampStepsExecuteInInsertionOrder) {
  // inject and clear of the SAME label at the SAME tick: only the stable
  // insertion-order tie-break makes this legal (clear-before-inject would
  // target a fault that does not exist yet). Generated plans collide on the
  // snap grid all the time, so this must hold, deterministically.
  DeploymentSpec spec;
  const topo::Topology topo = topo::build_clos(spec.clos());
  ChaosPlan plan;
  plan.duration = sec(40);
  plan.controller_crash(sec(10)).controller_restart(sec(10));
  plan.agent_restart(sec(15), HostId{1});
  plan.agent_restart(sec(15), HostId{2});
  plan.inject(sec(20), "corr",
              faults::FaultSpec::corruption(first_fabric_link(topo), 0.5));
  plan.clear(sec(20), "corr");

  const CampaignResult first = run_campaign(spec, plan, OracleConfig{});
  // Agent restarts record their own qpn-reset ground truths; find the
  // injected fault's entry by label.
  const auto truths = first.report.ground_truths;
  const auto it = std::find_if(
      truths.begin(), truths.end(),
      [](const ChaosReport::GroundTruthScore& g) { return g.label == "corr"; });
  ASSERT_NE(it, truths.end());
  EXPECT_EQ(it->injected_at, sec(20));
  EXPECT_EQ(it->cleared_at, sec(20));

  const CampaignResult second = run_campaign(spec, plan, OracleConfig{});
  EXPECT_EQ(first.report.to_json(), second.report.to_json());
}

// ---- invariant oracles ----

TEST(Oracle, FlagsEachViolationClassAndPassesCleanRuns) {
  DeploymentSpec spec;
  host::ClusterConfig ccfg;
  ccfg.seed = spec.cluster_seed;
  host::Cluster cluster(topo::build_clos(spec.clos()), ccfg);
  core::RPingmeshConfig rcfg;
  rcfg.analyzer.period = spec.period;
  core::RPingmesh rpm(cluster, rcfg);
  faults::FaultInjector injector(cluster);
  rpm.start();
  ChaosPlan quiet;
  quiet.duration = sec(25);
  const ChaosReport rep = ChaosRunner(cluster, rpm, injector).run(quiet);

  OracleConfig cfg;
  cfg.period = spec.period;
  EXPECT_TRUE(check_invariants(rep, rpm, cfg).ok());

  const auto has = [](const OracleReport& r, const std::string& name) {
    return std::any_of(
        r.violations.begin(), r.violations.end(),
        [&](const InvariantViolation& v) { return v.oracle == name; });
  };

  ChaosReport bad = rep;
  bad.false_positives = 1;
  bad.switch_false_positives = 1;
  bad.outage_false_positives = 1;
  const OracleReport judged = check_invariants(bad, rpm, cfg);
  EXPECT_TRUE(has(judged, "phantom-verdict"));
  EXPECT_TRUE(has(judged, "phantom-switch"));
  EXPECT_TRUE(has(judged, "outage-false-positive"));

  // Recovery: enforced only when the campaign leaves room to observe the
  // budget; -1 ("never recovered") inside the observable window violates.
  ChaosReport slow = rep;
  cfg.max_recovery_periods = 2;  // deadline = at + 3 periods = at + 15 s
  slow.recoveries.push_back({"controller-restart", sec(5), -1});
  EXPECT_TRUE(has(check_invariants(slow, rpm, cfg), "recovery"));
  slow.recoveries[0] = {"controller-restart", sec(20), -1};  // deadline 35 s
  EXPECT_FALSE(has(check_invariants(slow, rpm, cfg), "recovery"))
      << "an event with no room to observe recovery must not be scored";
}

// ---- Shrinker ----

TEST(Shrinker, PropertyMustHoldOnEntry) {
  ChaosPlan plan;
  plan.controller_crash(sec(10)).controller_restart(sec(20));
  EXPECT_THROW((void)Shrinker().shrink(plan, [](const ChaosPlan&) {
    return false;
  }),
               std::invalid_argument);
  EXPECT_THROW((void)Shrinker().shrink(plan, PropertyFn{}),
               std::invalid_argument);
}

TEST(Shrinker, BrokenOracleReducesTwentyStepPlanToMinimalCounterexample) {
  // The acceptance scenario: a deliberately broken oracle (here: "any plan
  // containing a controller crash plus this specific fault label fails")
  // must shrink a ~20-step generated campaign to <= 5 steps while the
  // violation keeps reproducing.
  const topo::Topology topo = topo::build_clos(small_clos());
  CampaignGenConfig cfg;
  cfg.duration = sec(600);
  cfg.min_events = 12;
  cfg.max_events = 12;
  cfg.pods = 2;
  const CampaignGen gen(cfg);

  ChaosPlan plan;
  std::string needed_label;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const ChaosPlan candidate = gen.generate(seed, topo);
    if (candidate.steps.size() < 18) continue;
    bool crash = false;
    std::string label;
    for (const ChaosStep& s : candidate.steps) {
      if (s.kind == ChaosStep::Kind::kControllerCrash) crash = true;
      if (s.kind == ChaosStep::Kind::kInject && label.empty()) {
        label = s.label;
      }
    }
    if (crash && !label.empty()) {
      plan = candidate;
      needed_label = label;
      break;
    }
  }
  ASSERT_GE(plan.steps.size(), 18u) << "no dense-enough generated plan found";

  const PropertyFn broken_oracle = [&](const ChaosPlan& candidate) {
    bool crash = false;
    bool fault = false;
    for (const ChaosStep& s : candidate.steps) {
      if (s.kind == ChaosStep::Kind::kControllerCrash) crash = true;
      if (s.kind == ChaosStep::Kind::kInject && s.label == needed_label) {
        fault = true;
      }
    }
    return crash && fault;
  };

  const ShrinkResult res = Shrinker().shrink(plan, broken_oracle);
  EXPECT_GE(res.steps_before, 18u);
  EXPECT_LE(res.steps_after, 5u);  // crash(+restart) + inject(+clear)
  EXPECT_TRUE(broken_oracle(res.plan));
  EXPECT_LE(res.trials, ShrinkConfig{}.max_trials);
  // The duration-trim mutation applies (the property is time-independent).
  EXPECT_LT(res.plan.duration, plan.duration);
}

// ---- run_fuzz: broken oracle => shrunk corpus artifact ----

TEST(Fuzz, BrokenRecoveryBudgetShrinksAndWritesReplayableArtifact) {
  // With max_recovery_periods = 0 every control-plane event violates the
  // recovery oracle, so the fuzz loop must flag the seed, ddmin the plan
  // down (re-running real campaigns), and land a {deployment, plan}
  // artifact that replays to the same violation.
  const std::string dir = ::testing::TempDir() + "fuzz_corpus";
  std::filesystem::create_directories(dir);

  FuzzConfig cfg;
  cfg.num_seeds = 1;
  cfg.base_seed = 1;
  cfg.alternate_pods = 0;
  cfg.check_determinism = false;  // covered by CI's byte-diff; save the time
  cfg.gen.duration = sec(80);
  cfg.gen.min_events = 3;
  cfg.gen.max_events = 5;
  cfg.oracle.max_recovery_periods = 0;  // deliberately broken budget
  cfg.shrink_cfg.max_trials = 32;
  cfg.corpus_dir = dir;

  // Pick the first seed whose generated plan contains a control-plane event
  // (the broken budget only fires on recovery entries).
  const topo::Topology topo = topo::build_clos(cfg.deployment.clos());
  for (; cfg.base_seed < 64; ++cfg.base_seed) {
    CampaignGenConfig gcfg = cfg.gen;
    gcfg.pods = cfg.deployment.pods;
    bool control_plane = false;
    for (const ChaosStep& s :
         CampaignGen(gcfg).generate(cfg.base_seed, topo).steps) {
      control_plane = s.kind != ChaosStep::Kind::kInject &&
                      s.kind != ChaosStep::Kind::kClear;
      if (control_plane) break;
    }
    if (control_plane) break;
  }
  ASSERT_LT(cfg.base_seed, 64u);

  const FuzzReport rep = run_fuzz(cfg);
  EXPECT_EQ(rep.failures, 1);
  ASSERT_EQ(rep.seeds.size(), 1u);
  const FuzzReport::SeedResult& sr = rep.seeds[0];
  ASSERT_FALSE(sr.violations.empty());
  EXPECT_EQ(sr.violations[0].oracle, "recovery");
  ASSERT_FALSE(sr.minimal_plan_json.empty());
  EXPECT_GT(sr.shrink_trials, 0u);
  const ChaosPlan minimal = plan_from_json(sr.minimal_plan_json);
  EXPECT_LE(minimal.steps.size(), 5u);
  EXPECT_LT(minimal.steps.size(), sr.steps);

  const std::string path =
      dir + "/seed" + std::to_string(sr.seed) + ".json";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const CampaignResult replay = replay_artifact(buf.str(), cfg.oracle);
  ASSERT_FALSE(replay.oracle.violations.empty());
  EXPECT_EQ(replay.oracle.violations[0].oracle, "recovery");

  // The report itself is parseable, deterministic JSON.
  EXPECT_EQ(json::Value::parse(rep.to_json()).dump(2) + "\n", rep.to_json());
}

// ---- regression corpus replay ----

TEST(Fuzz, CheckedInCorpusReplaysCleanly) {
  // Every artifact in tests/chaos_corpus/ is a once-failing (or
  // representative) campaign that must now pass every invariant oracle.
  const std::filesystem::path dir(RPM_CHAOS_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::vector<std::filesystem::path> artifacts;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".json") artifacts.push_back(e.path());
  }
  std::sort(artifacts.begin(), artifacts.end());
  ASSERT_GE(artifacts.size(), 3u);
  for (const std::filesystem::path& p : artifacts) {
    std::ifstream in(p);
    ASSERT_TRUE(in.is_open()) << p;
    std::stringstream buf;
    buf << in.rdbuf();
    const CampaignResult res = replay_artifact(buf.str());
    EXPECT_TRUE(res.oracle.ok())
        << p.filename() << ": " << res.oracle.summary();
    EXPECT_GT(res.report.periods, 0u) << p.filename();
  }
}

// ---- journal CRC fallback (the fuzzer's at-rest corruption hook) ----

TEST(JournalCorruption, BitFlipFallsBackToCleanStartAndIsCounted) {
  core::StateJournal journal;
  core::AnalyzerCheckpoint cp;
  cp.last_period_end = sec(10);
  cp.next_problem_id = 42;
  cp.next_evidence_id = 7;
  cp.known_hosts = {1, 2, 3};
  cp.rnic_blamed_until = {{4, sec(9)}};
  cp.host_noise_until = {{2, sec(70)}};
  journal.save_checkpoint("analyzer", cp);

  const auto loaded = journal.load_checkpoint("analyzer");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->next_problem_id, 42u);
  EXPECT_EQ(loaded->host_noise_until, cp.host_noise_until);
  EXPECT_EQ(journal.corrupt_total(), 0u);

  // One flipped bit anywhere in the stored bytes must fail the CRC and be
  // reported as "no checkpoint" (clean restart), never an exception.
  ASSERT_TRUE(journal.corrupt_checkpoint("analyzer", 123));
  EXPECT_FALSE(journal.load_checkpoint("analyzer").has_value());
  EXPECT_EQ(journal.corrupt_total(), 1u);

  // The next save overwrites the damage.
  journal.save_checkpoint("analyzer", cp);
  EXPECT_TRUE(journal.load_checkpoint("analyzer").has_value());
  EXPECT_FALSE(journal.corrupt_checkpoint("no-such-role", 0));
}

}  // namespace
}  // namespace rpm::chaos
