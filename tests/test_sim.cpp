// Unit tests for the discrete-event scheduler and device clocks.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/clock.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"

namespace rpm::sim {
namespace {

TEST(Scheduler, RunsEventsInTimestampOrder) {
  EventScheduler s;
  std::vector<int> order;
  s.schedule_at(usec(30), [&] { order.push_back(3); });
  s.schedule_at(usec(10), [&] { order.push_back(1); });
  s.schedule_at(usec(20), [&] { order.push_back(2); });
  s.run_until(usec(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), usec(100));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  EventScheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(usec(10), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, PastTimesClampToNow) {
  EventScheduler s;
  s.run_until(usec(50));
  bool ran = false;
  s.schedule_at(usec(10), [&] {
    ran = true;
    EXPECT_EQ(s.now(), usec(50));
  });
  s.run_until(usec(50));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, ScheduleAfterNegativeDelayClamps) {
  EventScheduler s;
  s.run_until(usec(5));
  bool ran = false;
  s.schedule_after(-100, [&] { ran = true; });
  s.run_until(usec(5));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  EventScheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) s.schedule_after(usec(1), recurse);
  };
  s.schedule_after(0, recurse);
  s.run_until(msec(1));
  EXPECT_EQ(depth, 10);
}

TEST(Scheduler, RunUntilDoesNotRunLaterEvents) {
  EventScheduler s;
  bool ran = false;
  s.schedule_at(usec(100), [&] { ran = true; });
  s.run_until(usec(99));
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_until(usec(100));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, EventAtExactBoundaryRuns) {
  EventScheduler s;
  bool ran = false;
  s.schedule_at(usec(100), [&] { ran = true; });
  s.run_until(usec(100));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, RejectsEmptyCallback) {
  EventScheduler s;
  EXPECT_THROW(s.schedule_at(0, {}), std::invalid_argument);
}

TEST(Scheduler, CountsExecutedEvents) {
  EventScheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_after(i, [] {});
  s.run_all();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(PeriodicTask, FiresAtFixedPeriod) {
  EventScheduler s;
  std::vector<TimeNs> fires;
  PeriodicTask t(s, msec(10), [&] { fires.push_back(s.now()); });
  t.start();
  s.run_until(msec(35));
  ASSERT_EQ(fires.size(), 4u);  // t=0, 10, 20, 30 ms
  EXPECT_EQ(fires[0], 0);
  EXPECT_EQ(fires[3], msec(30));
}

TEST(PeriodicTask, FirstDelayHonoured) {
  EventScheduler s;
  std::vector<TimeNs> fires;
  PeriodicTask t(s, msec(10), [&] { fires.push_back(s.now()); });
  t.start(msec(5));
  s.run_until(msec(26));
  ASSERT_EQ(fires.size(), 3u);  // 5, 15, 25
  EXPECT_EQ(fires[0], msec(5));
}

TEST(PeriodicTask, CancelStopsFiring) {
  EventScheduler s;
  int count = 0;
  PeriodicTask t(s, msec(1), [&] { ++count; });
  t.start();
  s.run_until(msec(3));
  t.cancel();
  s.run_until(msec(10));
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(t.running());
}

TEST(PeriodicTask, CallbackMayCancelItself) {
  EventScheduler s;
  int count = 0;
  PeriodicTask t(s, msec(1), [&] {
    if (++count == 2) t.cancel();
  });
  t.start();
  s.run_until(msec(10));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, SafeToDestroyWithEventInFlight) {
  EventScheduler s;
  int count = 0;
  {
    PeriodicTask t(s, msec(1), [&] { ++count; });
    t.start();
    s.run_until(msec(2));
  }  // destroyed with the next firing still queued
  s.run_until(msec(10));
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, SetPeriodAppliesFromNextRearm) {
  // The firing already queued when set_period is called keeps its old delay;
  // subsequent firings use the new period.
  EventScheduler s;
  std::vector<TimeNs> fires;
  PeriodicTask t(s, msec(10), [&] { fires.push_back(s.now()); });
  t.start();
  s.run_until(msec(10));  // fires at 0 and 10; next already queued for 20
  t.set_period(msec(20));
  s.run_until(msec(50));  // fires at 20 (old delay), then 40
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_EQ(fires[2], msec(20));
  EXPECT_EQ(fires[3], msec(40));
}

TEST(PeriodicTask, SetPeriodFromWithinCallbackAppliesToNextRearm) {
  // An Agent retunes its probe cadence from inside the probing callback
  // (pinglist refresh); the re-arm after the callback must read the new
  // period, not the one captured when the firing was queued.
  EventScheduler s;
  std::vector<TimeNs> fires;
  PeriodicTask t(s, msec(10), [&] {
    fires.push_back(s.now());
    if (fires.size() == 2) t.set_period(msec(3));
  });
  t.start();
  s.run_until(msec(20));
  // 0, 10 (changes period), 13, 16, 19.
  ASSERT_EQ(fires.size(), 5u);
  EXPECT_EQ(fires[2], msec(13));
  EXPECT_EQ(fires[4], msec(19));
  EXPECT_EQ(t.period(), msec(3));
}

TEST(PeriodicTask, CancelWhileQueuedThenRestartDropsStaleFiring) {
  // cancel() with a firing already queued, then start() again before the
  // stale event's timestamp: the generation guard must swallow the stale
  // event or the task would fire on both the old and the new cadence.
  EventScheduler s;
  std::vector<TimeNs> fires;
  PeriodicTask t(s, msec(10), [&] { fires.push_back(s.now()); });
  t.start();
  s.run_until(msec(10));  // fired at 0 and 10; next queued for 20
  t.cancel();
  t.start(msec(5));  // new cadence: 15, 25, 35...
  s.run_until(msec(30));
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_EQ(fires[2], msec(15));  // NOT the stale t=20 event
  EXPECT_EQ(fires[3], msec(25));
  EXPECT_TRUE(t.running());
}

TEST(PeriodicTask, RejectsBadArguments) {
  EventScheduler s;
  EXPECT_THROW(PeriodicTask(s, 0, [] {}), std::invalid_argument);
  EXPECT_THROW(PeriodicTask(s, msec(1), {}), std::invalid_argument);
  PeriodicTask ok(s, msec(1), [] {});
  EXPECT_THROW(ok.set_period(-1), std::invalid_argument);
}

// `EventScheduler` stays a source-compatible alias for one release while
// call sites migrate to the Scheduler interface / InlineScheduler backend.
static_assert(std::is_same_v<EventScheduler, InlineScheduler>);

TEST(EventHandle, CancelPreventsExecution) {
  InlineScheduler s;
  int fired = 0;
  EventHandle h = s.schedule_at(usec(10), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  s.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(h.pending());
  // Cancel is idempotent but only the first call wins.
  EXPECT_FALSE(h.cancel());
}

TEST(EventHandle, LifecycleAndDefaultHandle) {
  InlineScheduler s;
  EventHandle none;
  EXPECT_FALSE(none);
  EXPECT_FALSE(none.pending());
  EXPECT_FALSE(none.cancel());

  int fired = 0;
  EventHandle h = s.schedule_after(usec(5), [&] { ++fired; });
  EXPECT_TRUE(static_cast<bool>(h));
  EXPECT_TRUE(h.pending());
  s.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  // Too late to cancel an event that already ran.
  EXPECT_FALSE(h.cancel());
}

TEST(EventHandle, CancelledEventsAreNotCountedExecuted) {
  InlineScheduler s;
  s.schedule_at(usec(1), [] {});
  EventHandle h = s.schedule_at(usec(2), [] {});
  h.cancel();
  // A queued-but-cancelled entry still counts as pending until popped.
  EXPECT_EQ(s.pending_events(), 2u);
  s.run_all();
  EXPECT_EQ(s.executed_events(), 1u);
}

// ---------------------------------------------------------------------------
// ParallelScheduler

// Deterministic self-expanding workload: every event records "(time):(id)"
// into its partition's trace and spawns one local and one cross-partition
// child until `depth` runs out. Identical traces across runs/worker counts
// is the determinism invariant the partitioned backend guarantees.
struct MatrixWorkload {
  explicit MatrixWorkload(ParallelScheduler& s)
      : ps(s), trace(s.num_partitions()) {}

  void spawn(std::uint32_t p, TimeNs t, std::uint64_t id, int depth) {
    ps.partition(p).schedule_at(t, [this, p, id, depth] {
      const TimeNs now = ps.partition(p).now();
      trace[p].push_back(std::to_string(now) + ":" + std::to_string(id));
      if (depth == 0) return;
      const std::uint64_t h = id * 2654435761ull + p;
      spawn(p, now + 31 + static_cast<TimeNs>(h % 97), 2 * id + 1, depth - 1);
      const auto q = static_cast<std::uint32_t>((p + 1 + h % 3) %
                                                ps.num_partitions());
      spawn(q, now + 113 + static_cast<TimeNs>(h % 57), 2 * id + 2,
            depth - 1);
    });
  }

  ParallelScheduler& ps;
  std::vector<std::vector<std::string>> trace;
};

std::vector<std::vector<std::string>> run_matrix(std::uint32_t partitions,
                                                 std::uint32_t workers) {
  ParallelConfig cfg;
  cfg.partitions = partitions;
  cfg.workers = workers;
  cfg.lookahead = nsec(100);
  ParallelScheduler ps(cfg);
  MatrixWorkload w(ps);
  for (std::uint32_t p = 0; p < partitions; ++p) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      w.spawn(p, nsec(10 + 7 * i + p), p * 100 + i, 6);
    }
  }
  ps.run_until(usec(50));
  return w.trace;
}

TEST(ParallelScheduler, DeterministicAcrossRunsAndWorkerCounts) {
  for (std::uint32_t partitions : {1u, 2u, 4u}) {
    const auto reference = run_matrix(partitions, 1);
    std::size_t total = 0;
    for (const auto& t : reference) total += t.size();
    ASSERT_GT(total, 100u) << partitions;
    for (std::uint32_t workers : {1u, 2u, 4u}) {
      for (int rep = 0; rep < 2; ++rep) {
        EXPECT_EQ(run_matrix(partitions, workers), reference)
            << "partitions=" << partitions << " workers=" << workers
            << " rep=" << rep;
      }
    }
  }
}

// With one partition the window loop degenerates to a single-queue drain:
// the event order must match InlineScheduler exactly.
struct LinearWorkload {
  explicit LinearWorkload(Scheduler& s) : sched(s) {}
  void spawn(TimeNs t, std::uint64_t id, int depth) {
    sched.schedule_at(t, [this, id, depth] {
      const TimeNs now = sched.now();
      trace.push_back(std::to_string(now) + ":" + std::to_string(id));
      if (depth == 0) return;
      spawn(now + 31 + static_cast<TimeNs>(id % 97), 2 * id + 1, depth - 1);
      spawn(now + 113 + static_cast<TimeNs>(id % 57), 2 * id + 2, depth - 1);
    });
  }
  Scheduler& sched;
  std::vector<std::string> trace;
};

TEST(ParallelScheduler, OnePartitionMatchesInlineScheduler) {
  InlineScheduler inline_s;
  LinearWorkload a(inline_s);
  ParallelConfig cfg;
  cfg.partitions = 1;
  ParallelScheduler ps(cfg);
  LinearWorkload b(ps);
  for (std::uint64_t i = 0; i < 4; ++i) {
    a.spawn(nsec(10 + 7 * i), i, 6);
    b.spawn(nsec(10 + 7 * i), i, 6);
  }
  inline_s.run_until(usec(50));
  ps.run_until(usec(50));
  ASSERT_GT(a.trace.size(), 100u);
  EXPECT_EQ(b.trace, a.trace);
}

// Regression for cross-cut tie-breaking: seed events with the SAME
// timestamp on opposite sides of a cut edge each post cross-partition
// events at the same target time. The destination must merge them by
// (time, src-partition, edge-seq), after its own same-tick local events.
TEST(ParallelScheduler, CrossCutTiesMergeBySourcePartitionThenSeq) {
  ParallelConfig cfg;
  cfg.partitions = 3;
  cfg.lookahead = nsec(100);
  cfg.workers = 1;
  ParallelScheduler ps(cfg);
  std::vector<std::string> order;
  // Both seeds fire at t=1000 in the same window; their cross events target
  // t=1040, inside the lookahead horizon, so both clamp to the next window
  // boundary (t=1100) — a forced tie.
  for (std::uint32_t src : {1u, 2u}) {
    ps.partition(src).schedule_at(nsec(1000), [&ps, &order, src] {
      ps.partition(0).schedule_at(nsec(1040), [&order, src] {
        order.push_back("s" + std::to_string(src) + "a");
      });
      ps.partition(0).schedule_at(nsec(1040), [&order, src] {
        order.push_back("s" + std::to_string(src) + "b");
      });
    });
  }
  ps.partition(0).schedule_at(nsec(1100), [&order] {
    order.push_back("local");
  });
  ps.run_until(usec(2));
  EXPECT_EQ(order, (std::vector<std::string>{"local", "s1a", "s1b", "s2a",
                                             "s2b"}));
  EXPECT_EQ(ps.cross_events(), 4u);
  EXPECT_GE(ps.sync_windows(), 2u);
}

TEST(ParallelScheduler, AggregatesCountsAndObserverSeesPartitionIds) {
  ParallelConfig cfg;
  cfg.partitions = 2;
  cfg.lookahead = nsec(50);
  ParallelScheduler ps(cfg);
  std::vector<std::uint32_t> observed;
  ps.set_dispatch_observer(
      [&observed](std::uint32_t partition, std::uint64_t) {
        observed.push_back(partition);
      });
  for (int i = 0; i < 3; ++i) ps.partition(0).schedule_at(nsec(10 + i), [] {});
  for (int i = 0; i < 2; ++i) ps.partition(1).schedule_at(nsec(10 + i), [] {});
  EXPECT_EQ(ps.pending_events(), 5u);
  EXPECT_EQ(ps.partition(0).pending_events(), 3u);
  EXPECT_EQ(ps.partition(1).pending_events(), 2u);
  ps.run_all();
  EXPECT_EQ(ps.executed_events(), 5u);
  EXPECT_EQ(ps.partition_executed(0), 3u);
  EXPECT_EQ(ps.partition_executed(1), 2u);
  EXPECT_EQ(ps.pending_events(), 0u);
  std::size_t p0 = 0;
  for (std::uint32_t p : observed) p0 += p == 0 ? 1 : 0;
  EXPECT_EQ(observed.size(), 5u);
  EXPECT_EQ(p0, 3u);
  EXPECT_EQ(ps.partition(0).partition_id(), 0u);
  EXPECT_EQ(ps.partition(1).partition_id(), 1u);
}

TEST(ParallelScheduler, RunUntilBoundarySemantics) {
  ParallelConfig cfg;
  cfg.partitions = 2;
  cfg.lookahead = nsec(10);
  ParallelScheduler ps(cfg);
  int at_boundary = 0;
  int after = 0;
  ps.partition(1).schedule_at(usec(100), [&] { ++at_boundary; });
  ps.partition(0).schedule_at(usec(100) + 1, [&] { ++after; });
  ps.run_until(usec(100));
  EXPECT_EQ(at_boundary, 1);  // event at exactly t_end runs
  EXPECT_EQ(after, 0);
  EXPECT_EQ(ps.now(), usec(100));
  ps.run_until(usec(200));
  EXPECT_EQ(after, 1);
}

TEST(ParallelScheduler, HandleCancelWorksAcrossPartitions) {
  ParallelConfig cfg;
  cfg.partitions = 2;
  ParallelScheduler ps(cfg);
  int fired = 0;
  EventHandle h = ps.partition(1).schedule_at(usec(10), [&] { ++fired; });
  EXPECT_TRUE(h.cancel());
  ps.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(ps.executed_events(), 0u);
}

TEST(ParallelScheduler, PeriodicTaskRunsOnPartitionFacade) {
  ParallelConfig cfg;
  cfg.partitions = 2;
  cfg.lookahead = nsec(100);
  ParallelScheduler ps(cfg);
  int fired = 0;
  PeriodicTask task(ps.partition(1), usec(10), [&] { ++fired; });
  task.start();
  ps.run_until(usec(35));
  EXPECT_EQ(fired, 4);  // t = 0, 10, 20, 30 us, all on partition 1
  EXPECT_EQ(ps.partition_executed(1), 4u);
  task.cancel();
  ps.run_until(usec(100));
  EXPECT_EQ(fired, 4);
}

TEST(DeviceClock, AppliesOffset) {
  DeviceClock c(msec(5), 0.0);
  EXPECT_EQ(c.read(0), msec(5));
  EXPECT_EQ(c.read(sec(1)), sec(1) + msec(5));
}

TEST(DeviceClock, AppliesDrift) {
  DeviceClock c(0, 100.0);  // 100 ppm fast
  EXPECT_EQ(c.read(sec(1)), sec(1) + usec(100));
}

TEST(DeviceClock, SameClockDifferencesCancelOffset) {
  // The invariant R-Pingmesh relies on: durations measured on one clock are
  // accurate regardless of its offset.
  DeviceClock c(-sec(1), 0.0);
  const TimeNs a = c.read(usec(10));
  const TimeNs b = c.read(usec(35));
  EXPECT_EQ(b - a, usec(25));
}

TEST(DeviceClock, DriftErrorNegligibleOverMicroseconds) {
  DeviceClock c(0, 50.0);  // worst-case drift used by the simulator
  const TimeNs span = usec(100);
  const TimeNs measured = c.read(sec(10) + span) - c.read(sec(10));
  // 50 ppm over 100 us = 5 ns error.
  EXPECT_NEAR(static_cast<double>(measured - span), 0.0, 6.0);
}

TEST(DeviceClock, RandomClocksDiffer) {
  Rng rng(42);
  DeviceClock a = DeviceClock::random(rng);
  DeviceClock b = DeviceClock::random(rng);
  EXPECT_NE(a.read(0), b.read(0));
}

}  // namespace
}  // namespace rpm::sim
