// Unit tests for the discrete-event scheduler and device clocks.
#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.h"
#include "sim/scheduler.h"

namespace rpm::sim {
namespace {

TEST(Scheduler, RunsEventsInTimestampOrder) {
  EventScheduler s;
  std::vector<int> order;
  s.schedule_at(usec(30), [&] { order.push_back(3); });
  s.schedule_at(usec(10), [&] { order.push_back(1); });
  s.schedule_at(usec(20), [&] { order.push_back(2); });
  s.run_until(usec(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), usec(100));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  EventScheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(usec(10), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, PastTimesClampToNow) {
  EventScheduler s;
  s.run_until(usec(50));
  bool ran = false;
  s.schedule_at(usec(10), [&] {
    ran = true;
    EXPECT_EQ(s.now(), usec(50));
  });
  s.run_until(usec(50));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, ScheduleAfterNegativeDelayClamps) {
  EventScheduler s;
  s.run_until(usec(5));
  bool ran = false;
  s.schedule_after(-100, [&] { ran = true; });
  s.run_until(usec(5));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  EventScheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) s.schedule_after(usec(1), recurse);
  };
  s.schedule_after(0, recurse);
  s.run_until(msec(1));
  EXPECT_EQ(depth, 10);
}

TEST(Scheduler, RunUntilDoesNotRunLaterEvents) {
  EventScheduler s;
  bool ran = false;
  s.schedule_at(usec(100), [&] { ran = true; });
  s.run_until(usec(99));
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_until(usec(100));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, EventAtExactBoundaryRuns) {
  EventScheduler s;
  bool ran = false;
  s.schedule_at(usec(100), [&] { ran = true; });
  s.run_until(usec(100));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, RejectsEmptyCallback) {
  EventScheduler s;
  EXPECT_THROW(s.schedule_at(0, {}), std::invalid_argument);
}

TEST(Scheduler, CountsExecutedEvents) {
  EventScheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_after(i, [] {});
  s.run_all();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(PeriodicTask, FiresAtFixedPeriod) {
  EventScheduler s;
  std::vector<TimeNs> fires;
  PeriodicTask t(s, msec(10), [&] { fires.push_back(s.now()); });
  t.start();
  s.run_until(msec(35));
  ASSERT_EQ(fires.size(), 4u);  // t=0, 10, 20, 30 ms
  EXPECT_EQ(fires[0], 0);
  EXPECT_EQ(fires[3], msec(30));
}

TEST(PeriodicTask, FirstDelayHonoured) {
  EventScheduler s;
  std::vector<TimeNs> fires;
  PeriodicTask t(s, msec(10), [&] { fires.push_back(s.now()); });
  t.start(msec(5));
  s.run_until(msec(26));
  ASSERT_EQ(fires.size(), 3u);  // 5, 15, 25
  EXPECT_EQ(fires[0], msec(5));
}

TEST(PeriodicTask, CancelStopsFiring) {
  EventScheduler s;
  int count = 0;
  PeriodicTask t(s, msec(1), [&] { ++count; });
  t.start();
  s.run_until(msec(3));
  t.cancel();
  s.run_until(msec(10));
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(t.running());
}

TEST(PeriodicTask, CallbackMayCancelItself) {
  EventScheduler s;
  int count = 0;
  PeriodicTask t(s, msec(1), [&] {
    if (++count == 2) t.cancel();
  });
  t.start();
  s.run_until(msec(10));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, SafeToDestroyWithEventInFlight) {
  EventScheduler s;
  int count = 0;
  {
    PeriodicTask t(s, msec(1), [&] { ++count; });
    t.start();
    s.run_until(msec(2));
  }  // destroyed with the next firing still queued
  s.run_until(msec(10));
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, SetPeriodAppliesFromNextRearm) {
  // The firing already queued when set_period is called keeps its old delay;
  // subsequent firings use the new period.
  EventScheduler s;
  std::vector<TimeNs> fires;
  PeriodicTask t(s, msec(10), [&] { fires.push_back(s.now()); });
  t.start();
  s.run_until(msec(10));  // fires at 0 and 10; next already queued for 20
  t.set_period(msec(20));
  s.run_until(msec(50));  // fires at 20 (old delay), then 40
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_EQ(fires[2], msec(20));
  EXPECT_EQ(fires[3], msec(40));
}

TEST(PeriodicTask, SetPeriodFromWithinCallbackAppliesToNextRearm) {
  // An Agent retunes its probe cadence from inside the probing callback
  // (pinglist refresh); the re-arm after the callback must read the new
  // period, not the one captured when the firing was queued.
  EventScheduler s;
  std::vector<TimeNs> fires;
  PeriodicTask t(s, msec(10), [&] {
    fires.push_back(s.now());
    if (fires.size() == 2) t.set_period(msec(3));
  });
  t.start();
  s.run_until(msec(20));
  // 0, 10 (changes period), 13, 16, 19.
  ASSERT_EQ(fires.size(), 5u);
  EXPECT_EQ(fires[2], msec(13));
  EXPECT_EQ(fires[4], msec(19));
  EXPECT_EQ(t.period(), msec(3));
}

TEST(PeriodicTask, CancelWhileQueuedThenRestartDropsStaleFiring) {
  // cancel() with a firing already queued, then start() again before the
  // stale event's timestamp: the generation guard must swallow the stale
  // event or the task would fire on both the old and the new cadence.
  EventScheduler s;
  std::vector<TimeNs> fires;
  PeriodicTask t(s, msec(10), [&] { fires.push_back(s.now()); });
  t.start();
  s.run_until(msec(10));  // fired at 0 and 10; next queued for 20
  t.cancel();
  t.start(msec(5));  // new cadence: 15, 25, 35...
  s.run_until(msec(30));
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_EQ(fires[2], msec(15));  // NOT the stale t=20 event
  EXPECT_EQ(fires[3], msec(25));
  EXPECT_TRUE(t.running());
}

TEST(PeriodicTask, RejectsBadArguments) {
  EventScheduler s;
  EXPECT_THROW(PeriodicTask(s, 0, [] {}), std::invalid_argument);
  EXPECT_THROW(PeriodicTask(s, msec(1), {}), std::invalid_argument);
  PeriodicTask ok(s, msec(1), [] {});
  EXPECT_THROW(ok.set_period(-1), std::invalid_argument);
}

TEST(DeviceClock, AppliesOffset) {
  DeviceClock c(msec(5), 0.0);
  EXPECT_EQ(c.read(0), msec(5));
  EXPECT_EQ(c.read(sec(1)), sec(1) + msec(5));
}

TEST(DeviceClock, AppliesDrift) {
  DeviceClock c(0, 100.0);  // 100 ppm fast
  EXPECT_EQ(c.read(sec(1)), sec(1) + usec(100));
}

TEST(DeviceClock, SameClockDifferencesCancelOffset) {
  // The invariant R-Pingmesh relies on: durations measured on one clock are
  // accurate regardless of its offset.
  DeviceClock c(-sec(1), 0.0);
  const TimeNs a = c.read(usec(10));
  const TimeNs b = c.read(usec(35));
  EXPECT_EQ(b - a, usec(25));
}

TEST(DeviceClock, DriftErrorNegligibleOverMicroseconds) {
  DeviceClock c(0, 50.0);  // worst-case drift used by the simulator
  const TimeNs span = usec(100);
  const TimeNs measured = c.read(sec(10) + span) - c.read(sec(10));
  // 50 ppm over 100 us = 5 ns error.
  EXPECT_NEAR(static_cast<double>(measured - span), 0.0, 6.0);
}

TEST(DeviceClock, RandomClocksDiffer) {
  Rng rng(42);
  DeviceClock a = DeviceClock::random(rng);
  DeviceClock b = DeviceClock::random(rng);
  EXPECT_NE(a.read(0), b.read(0));
}

}  // namespace
}  // namespace rpm::sim
