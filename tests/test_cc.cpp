// Tests for congestion control: DCQCN and DelayCC behaviour on shared
// bottlenecks, and the queue-depth difference that drives Figure 11.
#include <gtest/gtest.h>

#include "cc/cc.h"
#include "fabric/fabric.h"
#include "routing/ecmp.h"
#include "sim/scheduler.h"
#include "topo/topology.h"

namespace rpm::cc {
namespace {

topo::ClosConfig small_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 1;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 1;
  cfg.hosts_per_tor = 4;
  cfg.rnics_per_host = 1;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

class CcTest : public ::testing::Test {
 protected:
  CcTest()
      : topo_(topo::build_clos(small_cfg())),
        router_(topo_),
        fab_(topo_, router_, sched_) {}

  fabric::FlowSpec flow(RnicId src, RnicId dst, double gbps,
                        std::uint16_t port, fabric::RateController* cc) {
    fabric::FlowSpec f;
    f.src = src;
    f.dst = dst;
    f.tuple.src_ip = topo_.rnic(src).ip;
    f.tuple.dst_ip = topo_.rnic(dst).ip;
    f.tuple.src_port = port;
    f.demand_Bps = gbps_to_Bps(gbps);
    f.controller = cc;
    return f;
  }

  /// Incast: rnics 1..n -> rnic 0 (all on the same ToR side in this cfg? use
  /// cross-ToR sources to stress the downlink).
  std::vector<FlowId> start_incast(fabric::RateController* cc, int n) {
    std::vector<FlowId> ids;
    for (int i = 0; i < n; ++i) {
      ids.push_back(fab_.add_flow(flow(RnicId{static_cast<std::uint32_t>(
                                           4 + i)},  // other ToR
                                       RnicId{0}, 100.0,
                                       static_cast<std::uint16_t>(7000 + i),
                                       cc)));
    }
    fab_.start();
    return ids;
  }

  topo::Topology topo_;
  routing::EcmpRouter router_;
  sim::InlineScheduler sched_;
  fabric::Fabric fab_;
};

TEST_F(CcTest, DcqcnStartsAtDemandCappedLineRate) {
  Dcqcn cc;
  EXPECT_DOUBLE_EQ(cc.reset(0, gbps_to_Bps(40), gbps_to_Bps(100)),
                   gbps_to_Bps(40));
  EXPECT_DOUBLE_EQ(cc.reset(1, gbps_to_Bps(400), gbps_to_Bps(100)),
                   gbps_to_Bps(100));
  EXPECT_EQ(cc.name(), "dcqcn");
}

TEST_F(CcTest, DcqcnCutsOnEcnAndRecovers) {
  Dcqcn cc;
  const double line = gbps_to_Bps(100);
  double rate = cc.reset(0, line, line);
  fabric::CcFeedback fb;
  fb.dt = usec(100);
  // Marked: rate must drop.
  fb.ecn_fraction = 1.0;
  const double after_cut = cc.update(0, fb, rate);
  EXPECT_LT(after_cut, rate);
  // Clean for a while: rate recovers toward the target.
  fb.ecn_fraction = 0.0;
  double r = after_cut;
  for (int i = 0; i < 200; ++i) r = cc.update(0, fb, r);
  EXPECT_GT(r, after_cut);
  EXPECT_LE(r, line);
}

TEST_F(CcTest, DcqcnRespectsMinRate) {
  DcqcnParams params;
  Dcqcn cc(params);
  const double line = gbps_to_Bps(100);
  double r = cc.reset(0, line, line);
  fabric::CcFeedback fb;
  fb.dt = usec(100);
  fb.ecn_fraction = 1.0;
  for (int i = 0; i < 10000; ++i) r = cc.update(0, fb, r);
  EXPECT_GE(r, params.min_rate_Bps);
}

TEST_F(CcTest, DelayCcTracksTargetDelay) {
  DelayCc cc;
  const double line = gbps_to_Bps(100);
  double r = cc.reset(0, line, line);
  fabric::CcFeedback fb;
  fb.dt = usec(100);
  // Above target: decrease.
  fb.queue_delay = usec(100);
  const double down = cc.update(0, fb, r);
  EXPECT_LT(down, r);
  // Below target: increase.
  fb.queue_delay = usec(1);
  const double up = cc.update(0, fb, down);
  EXPECT_GT(up, down);
  EXPECT_EQ(cc.name(), "delaycc");
}

TEST_F(CcTest, IncastConvergesToFairShareUnderDcqcn) {
  Dcqcn cc;
  const auto ids = start_incast(&cc, 4);
  sched_.run_until(msec(200));
  // 4 flows into one 100G downlink: each should get ~25G (wide tolerance:
  // fluid DCQCN oscillates).
  for (FlowId id : ids) {
    const auto st = fab_.flow_stats(id);
    EXPECT_GT(st.achieved_Bps, gbps_to_Bps(10.0));
    EXPECT_LT(st.achieved_Bps, gbps_to_Bps(45.0));
  }
  // Aggregate cannot exceed the bottleneck.
  double total = 0;
  for (FlowId id : ids) total += fab_.flow_stats(id).achieved_Bps;
  EXPECT_LE(total, gbps_to_Bps(105.0));
}

TEST_F(CcTest, DelayCcKeepsQueuesLowerThanDcqcn) {
  // The Figure 11 claim, reduced to its mechanism: under the same incast,
  // the delay-based controller holds the bottleneck queue (and thus tail
  // RTT) far lower than DCQCN.
  const LinkId bottleneck = topo_.rnic(RnicId{0}).downlink;

  Dcqcn dcqcn;
  auto ids = start_incast(&dcqcn, 4);
  double dcqcn_queue = 0;
  for (int i = 0; i < 100; ++i) {
    sched_.run_until(sched_.now() + msec(2));
    dcqcn_queue = std::max(
        dcqcn_queue, static_cast<double>(fab_.link_state(bottleneck).queue_bytes));
  }
  for (FlowId id : ids) fab_.remove_flow(id);
  sched_.run_until(sched_.now() + msec(500));  // drain

  DelayCc delaycc;
  ids = start_incast(&delaycc, 4);
  double delaycc_queue = 0;
  for (int i = 0; i < 100; ++i) {
    sched_.run_until(sched_.now() + msec(2));
    delaycc_queue = std::max(
        delaycc_queue,
        static_cast<double>(fab_.link_state(bottleneck).queue_bytes));
  }
  EXPECT_GT(dcqcn_queue, 0.0);
  EXPECT_LT(delaycc_queue, dcqcn_queue * 0.5)
      << "delay-based CC should keep queues much shorter";
}

TEST_F(CcTest, ControllersKeepPerFlowStateSeparate) {
  Dcqcn cc;
  const double line = gbps_to_Bps(100);
  double r0 = cc.reset(0, line, line);
  double r1 = cc.reset(1, line, line);
  fabric::CcFeedback marked;
  marked.dt = usec(100);
  marked.ecn_fraction = 1.0;
  fabric::CcFeedback clean;
  clean.dt = usec(100);
  r0 = cc.update(0, marked, r0);
  r1 = cc.update(1, clean, r1);
  EXPECT_LT(r0, r1);  // only flow 0 was cut
}

}  // namespace
}  // namespace rpm::cc
