// Tests for the verbs facade and the eBPF-style tracepoints used by
// R-Pingmesh's service-flow monitor (§4.2.2).
#include <gtest/gtest.h>

#include <vector>

#include "host/cluster.h"
#include "verbs/verbs.h"

namespace rpm::verbs {
namespace {

topo::ClosConfig small_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 1;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 1;
  cfg.spines_per_plane = 1;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 1;
  return cfg;
}

class VerbsTest : public ::testing::Test {
 protected:
  VerbsTest() : cluster_(topo::build_clos(small_cfg())) {}
  host::Cluster cluster_;
};

TEST_F(VerbsTest, ModifyQpFiresTracepointWithFiveTuple) {
  auto ctx = cluster_.open_device(RnicId{0});
  auto& reg = cluster_.host(HostId{0}).tracepoints();

  std::vector<ModifyQpEvent> events;
  reg.attach_modify_qp([&](const ModifyQpEvent& e) { events.push_back(e); });

  rnic::QpConfig cfg;
  cfg.type = rnic::QpType::kRC;
  cfg.on_cqe = [](const rnic::Cqe&) {};
  const Qpn qpn = ctx.create_qp(cfg);
  ctx.modify_qp_connect(qpn, rnic::gid_of(RnicId{3}), Qpn{0x200}, 54321);

  ASSERT_EQ(events.size(), 1u);
  const ModifyQpEvent& e = events[0];
  EXPECT_EQ(e.host, HostId{0});
  EXPECT_EQ(e.rnic, RnicId{0});
  EXPECT_EQ(e.local_qpn, qpn);
  EXPECT_EQ(e.tuple.src_ip, cluster_.topology().rnic(RnicId{0}).ip);
  EXPECT_EQ(e.tuple.dst_ip, cluster_.topology().rnic(RnicId{3}).ip);
  EXPECT_EQ(e.tuple.src_port, 54321);
  EXPECT_EQ(e.tuple.dst_port, kRoceUdpPort);
  EXPECT_EQ(e.remote_gid, rnic::gid_of(RnicId{3}));
  EXPECT_EQ(e.remote_qpn, Qpn{0x200});
}

TEST_F(VerbsTest, DestroyQpFiresTracepoint) {
  auto ctx = cluster_.open_device(RnicId{0});
  auto& reg = cluster_.host(HostId{0}).tracepoints();
  std::vector<DestroyQpEvent> events;
  reg.attach_destroy_qp([&](const DestroyQpEvent& e) { events.push_back(e); });
  rnic::QpConfig cfg;
  cfg.type = rnic::QpType::kRC;
  cfg.on_cqe = [](const rnic::Cqe&) {};
  const Qpn qpn = ctx.create_qp(cfg);
  ctx.destroy_qp(qpn);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].local_qpn, qpn);
  EXPECT_FALSE(ctx.device().has_qp(qpn));
}

TEST_F(VerbsTest, DetachStopsDelivery) {
  auto ctx = cluster_.open_device(RnicId{0});
  auto& reg = cluster_.host(HostId{0}).tracepoints();
  int count = 0;
  const int handle =
      reg.attach_modify_qp([&](const ModifyQpEvent&) { ++count; });
  rnic::QpConfig cfg;
  cfg.type = rnic::QpType::kRC;
  cfg.on_cqe = [](const rnic::Cqe&) {};
  const Qpn a = ctx.create_qp(cfg);
  ctx.modify_qp_connect(a, rnic::gid_of(RnicId{3}), Qpn{0x200}, 1);
  reg.detach(handle);
  const Qpn b = ctx.create_qp(cfg);
  ctx.modify_qp_connect(b, rnic::gid_of(RnicId{3}), Qpn{0x201}, 2);
  EXPECT_EQ(count, 1);
}

TEST_F(VerbsTest, MultipleSubscribersAllFire) {
  auto ctx = cluster_.open_device(RnicId{0});
  auto& reg = cluster_.host(HostId{0}).tracepoints();
  int a = 0, b = 0;
  reg.attach_modify_qp([&](const ModifyQpEvent&) { ++a; });
  reg.attach_modify_qp([&](const ModifyQpEvent&) { ++b; });
  rnic::QpConfig cfg;
  cfg.type = rnic::QpType::kRC;
  cfg.on_cqe = [](const rnic::Cqe&) {};
  const Qpn qpn = ctx.create_qp(cfg);
  ctx.modify_qp_connect(qpn, rnic::gid_of(RnicId{3}), Qpn{0x200}, 1);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST_F(VerbsTest, TracepointsArePerHost) {
  // An eBPF program loaded on host 0 must not see host 1's QP activity.
  auto ctx1 = cluster_.open_device(RnicId{1});  // host 1's RNIC
  auto& reg0 = cluster_.host(HostId{0}).tracepoints();
  int count = 0;
  reg0.attach_modify_qp([&](const ModifyQpEvent&) { ++count; });
  rnic::QpConfig cfg;
  cfg.type = rnic::QpType::kRC;
  cfg.on_cqe = [](const rnic::Cqe&) {};
  const Qpn qpn = ctx1.create_qp(cfg);
  ctx1.modify_qp_connect(qpn, rnic::gid_of(RnicId{3}), Qpn{0x200}, 1);
  EXPECT_EQ(count, 0);
}

TEST_F(VerbsTest, EndToEndConnectedSendViaFacade) {
  auto a = cluster_.open_device(RnicId{0});
  auto b = cluster_.open_device(RnicId{3});
  std::vector<rnic::Cqe> recv;
  rnic::QpConfig acfg;
  acfg.type = rnic::QpType::kRC;
  acfg.on_cqe = [](const rnic::Cqe&) {};
  rnic::QpConfig bcfg;
  bcfg.type = rnic::QpType::kRC;
  bcfg.on_cqe = [&](const rnic::Cqe& c) {
    if (!c.is_send) recv.push_back(c);
  };
  const Qpn qa = a.create_qp(acfg);
  const Qpn qb = b.create_qp(bcfg);
  a.modify_qp_connect(qa, b.gid(), qb, 999);
  b.modify_qp_connect(qb, a.gid(), qa, 999);
  a.post_send(qa, 4096, std::string("data"), 5);
  cluster_.scheduler().run_until(msec(5));
  ASSERT_EQ(recv.size(), 1u);
  EXPECT_EQ(recv[0].tuple.src_port, 999);
}

}  // namespace
}  // namespace rpm::verbs
