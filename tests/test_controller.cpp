// Tests for the Controller: Equation (1), parallel-path counting, registry
// semantics (QPN freshness), and pinglist construction.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/controller.h"
#include "rnic/rnic.h"
#include "routing/ecmp.h"
#include "topo/topology.h"

namespace rpm::core {
namespace {

topo::ClosConfig clos_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  return cfg;
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : topo_(topo::build_clos(clos_cfg())),
        router_(topo_),
        ctrl_(topo_, router_) {}

  void register_all() {
    for (const topo::HostInfo& h : topo_.hosts()) {
      std::vector<RnicCommInfo> infos;
      for (RnicId r : h.rnics) {
        infos.push_back(RnicCommInfo{r, topo_.rnic(r).ip, rnic::gid_of(r),
                                     Qpn{0x100 + r.value}});
      }
      ctrl_.register_agent(h.id, infos);
    }
  }

  topo::Topology topo_;
  routing::EcmpRouter router_;
  Controller ctrl_;
};

TEST(Equation1, MatchesBruteForceMonteCarlo) {
  // For small N, verify the analytic k against a Monte-Carlo coverage
  // estimate: k tuples must cover all N paths with probability >= P.
  Rng rng(7);
  for (std::uint32_t n : {2u, 4u, 8u}) {
    const std::uint32_t k = equation1_min_tuples(n, 0.99);
    ASSERT_GE(k, n);
    int covered = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
      std::set<std::uint32_t> seen;
      for (std::uint32_t i = 0; i < k; ++i) {
        seen.insert(static_cast<std::uint32_t>(rng.uniform_int(0, n - 1)));
      }
      if (seen.size() == n) ++covered;
    }
    EXPECT_GE(static_cast<double>(covered) / trials, 0.985) << "N=" << n;
  }
}

// Independent implementation of the inclusion-exclusion sum of Equation (1),
// used to verify arg-min minimality analytically (a Monte-Carlo check at the
// boundary would be flaky by construction).
double uncovered_prob_reference(std::uint32_t n, std::uint32_t k) {
  double sum = 0.0;
  double binom = 1.0;  // C(n, i), updated incrementally
  for (std::uint32_t i = 1; i <= n; ++i) {
    binom *= static_cast<double>(n - i + 1) / static_cast<double>(i);
    const double term =
        binom * std::pow(1.0 - static_cast<double>(i) / n,
                         static_cast<double>(k));
    sum += (i % 2 == 1) ? term : -term;
  }
  return sum;
}

TEST(Equation1, MinimalityAtBoundary) {
  // k satisfies the bound; k-1 must not (k is the arg-min subject to k>=N).
  for (std::uint32_t n : {2u, 3u, 4u, 8u, 16u, 32u}) {
    const std::uint32_t k = equation1_min_tuples(n, 0.99);
    EXPECT_LE(uncovered_prob_reference(n, k), 0.01) << "N=" << n;
    if (k > n) {
      EXPECT_GT(uncovered_prob_reference(n, k - 1), 0.01) << "N=" << n;
    }
  }
}

TEST(Equation1, MonotonicInN) {
  std::uint32_t prev = 0;
  for (std::uint32_t n = 1; n <= 64; n *= 2) {
    const std::uint32_t k = equation1_min_tuples(n, 0.99);
    EXPECT_GE(k, prev);
    prev = k;
  }
}

TEST(Equation1, MonotonicInP) {
  EXPECT_LE(equation1_min_tuples(8, 0.9), equation1_min_tuples(8, 0.99));
  EXPECT_LE(equation1_min_tuples(8, 0.99), equation1_min_tuples(8, 0.999));
}

TEST(Equation1, EdgeCases) {
  EXPECT_EQ(equation1_min_tuples(1, 0.99), 1u);
  EXPECT_THROW(equation1_min_tuples(0, 0.99), std::invalid_argument);
  EXPECT_THROW(equation1_min_tuples(4, 0.0), std::invalid_argument);
  EXPECT_THROW(equation1_min_tuples(4, 1.0), std::invalid_argument);
}

TEST_F(ControllerTest, ParallelPathCount) {
  const auto& tors = topo_.tor_switches();
  // Same pod: aggs_per_pod = 2 paths; cross pod: 2 * 2 = 4.
  EXPECT_EQ(count_parallel_paths(router_, tors[0], tors[1]), 2u);
  EXPECT_EQ(count_parallel_paths(router_, tors[0], tors[2]), 4u);
  EXPECT_EQ(count_parallel_paths(router_, tors[0], tors[0]), 1u);
}

TEST_F(ControllerTest, TuplesPerTorUsesWorstCaseN) {
  // N = 4 (cross pod) dominates; Equation 1 with P=0.99 and N=4 gives k.
  const std::uint32_t expect_k = equation1_min_tuples(4, 0.99);
  for (SwitchId tor : topo_.tor_switches()) {
    EXPECT_EQ(ctrl_.tuples_for_tor(tor), expect_k);
  }
}

TEST_F(ControllerTest, RegistryStoresLatestQpn) {
  EXPECT_FALSE(ctrl_.comm_info(RnicId{0}).has_value());
  register_all();
  auto info = ctrl_.comm_info(RnicId{0});
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->qpn, Qpn{0x100});
  // Agent restart: re-register with a fresh QPN; Controller keeps the latest.
  ctrl_.register_agent(
      HostId{0}, {RnicCommInfo{RnicId{0}, topo_.rnic(RnicId{0}).ip,
                               rnic::gid_of(RnicId{0}), Qpn{0x900}}});
  EXPECT_EQ(ctrl_.comm_info(RnicId{0})->qpn, Qpn{0x900});
}

TEST_F(ControllerTest, RegisterRejectsForeignRnic) {
  // RNIC 0 belongs to host 0; registering it from host 1 is a bug.
  EXPECT_THROW(
      ctrl_.register_agent(HostId{1}, {RnicCommInfo{RnicId{0}, IpAddr{},
                                                    Gid{}, Qpn{1}}}),
      std::invalid_argument);
}

TEST_F(ControllerTest, CommInfoByIp) {
  register_all();
  const auto info = ctrl_.comm_info_by_ip(topo_.rnic(RnicId{3}).ip);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->rnic, RnicId{3});
  EXPECT_FALSE(ctrl_.comm_info_by_ip(IpAddr{1}).has_value());
}

TEST_F(ControllerTest, TorMeshPinglistCoversTorPeers) {
  register_all();
  const Pinglist pl = ctrl_.tormesh_pinglist(RnicId{0});
  // 2 hosts * 2 rnics under the ToR, minus self = 3 targets.
  EXPECT_EQ(pl.entries.size(), 3u);
  const SwitchId my_tor = topo_.rnic(RnicId{0}).tor;
  for (const PinglistEntry& e : pl.entries) {
    EXPECT_EQ(topo_.rnic(e.target).tor, my_tor);
    EXPECT_NE(e.target, RnicId{0});
    EXPECT_EQ(e.kind, ProbeKind::kTorMesh);
    EXPECT_TRUE(e.target_qpn.valid());
  }
  // 10 pps (§5).
  EXPECT_EQ(pl.probe_interval, msec(100));
}

TEST_F(ControllerTest, TorMeshSkipsUnregisteredPeers) {
  // Nothing registered: empty list (targets' QPNs are unknown).
  EXPECT_TRUE(ctrl_.tormesh_pinglist(RnicId{0}).entries.empty());
}

TEST_F(ControllerTest, InterTorTuplesStayWithinPlanAndCrossTors) {
  register_all();
  std::size_t total_entries = 0;
  for (const topo::RnicInfo& r : topo_.rnics()) {
    const Pinglist pl = ctrl_.intertor_pinglist(r.id);
    total_entries += pl.entries.size();
    for (const PinglistEntry& e : pl.entries) {
      EXPECT_NE(topo_.rnic(e.target).tor, r.tor) << "must cross ToRs";
      EXPECT_EQ(e.kind, ProbeKind::kInterTor);
      EXPECT_EQ(e.tuple.src_ip, r.ip);
    }
  }
  // Every ToR contributed exactly k tuples, distributed over its RNICs.
  const std::uint32_t k = equation1_min_tuples(4, 0.99);
  EXPECT_EQ(total_entries, static_cast<std::size_t>(k) *
                               topo_.tor_switches().size());
}

TEST_F(ControllerTest, InterTorTuplesCoverAllParallelPaths) {
  register_all();
  // Gather the tuples of one ToR and check ECMP spreads them over all 4
  // cross-pod paths with the Equation-1 guarantee (P=0.99; this topology and
  // seed should just cover).
  std::set<std::vector<LinkId>> paths_hit;
  for (const topo::RnicInfo& r : topo_.rnics()) {
    if (r.tor != topo_.tor_switches()[0]) continue;
    for (const PinglistEntry& e : ctrl_.intertor_pinglist(r.id).entries) {
      if (topo_.switch_info(topo_.rnic(e.target).tor).pod ==
          topo_.switch_info(r.tor).pod) {
        continue;  // same-pod tuples exercise only 2 paths
      }
      const auto path = router_.resolve(r.id, e.target, e.tuple);
      // Identify the path by its fabric links (strip host edges).
      std::vector<LinkId> mid(path.links.begin() + 1, path.links.end() - 1);
      paths_hit.insert(mid);
    }
  }
  EXPECT_GE(paths_hit.size(), 3u);  // probabilistic, but 0.99 coverage
}

TEST_F(ControllerTest, RotationReplacesSomeTuples) {
  register_all();
  auto snapshot = [&] {
    std::set<std::pair<std::uint32_t, std::uint16_t>> s;
    for (const topo::RnicInfo& r : topo_.rnics()) {
      for (const PinglistEntry& e : ctrl_.intertor_pinglist(r.id).entries) {
        s.insert({e.target.value, e.tuple.src_port});
      }
    }
    return s;
  };
  const auto before = snapshot();
  ctrl_.rotate_intertor_tuples();
  const auto after = snapshot();
  EXPECT_NE(before, after);
  // Total tuple count is conserved.
  EXPECT_EQ(before.size(), after.size());
}

TEST_F(ControllerTest, ConfigValidation) {
  ControllerConfig bad;
  bad.per_link_probes_per_sec = 0.0;
  EXPECT_THROW(Controller(topo_, router_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace rpm::core
