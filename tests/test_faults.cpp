// Tests for the fault injector: every Table-2 root cause produces its
// expected observable symptom and reverts cleanly.
#include <gtest/gtest.h>

#include "faults/faults.h"

namespace rpm::faults {
namespace {

topo::ClosConfig small_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  return cfg;
}

class FaultsTest : public ::testing::Test {
 protected:
  FaultsTest() : cluster_(topo::build_clos(small_cfg())), inj_(cluster_) {}

  fabric::SendOutcome send(RnicId src, RnicId dst,
                           std::uint16_t port = 1000) {
    fabric::Datagram d;
    d.src = src;
    d.dst = dst;
    d.tuple.src_ip = cluster_.topology().rnic(src).ip;
    d.tuple.dst_ip = cluster_.topology().rnic(dst).ip;
    d.tuple.src_port = port;
    d.size = 50;
    return cluster_.fabric().send(d);
  }

  host::Cluster cluster_;
  FaultInjector inj_;
};

TEST_F(FaultsTest, KindPredicates) {
  EXPECT_TRUE(is_network_fault(FaultKind::kSwitchPortFlapping));
  EXPECT_TRUE(is_network_fault(FaultKind::kRnicDown));
  EXPECT_FALSE(is_network_fault(FaultKind::kHostDown));
  EXPECT_FALSE(is_network_fault(FaultKind::kAgentCpuOccupation));
  EXPECT_TRUE(is_rnic_fault(FaultKind::kRnicFlapping));
  EXPECT_TRUE(is_rnic_fault(FaultKind::kPcieDowngrade));
  EXPECT_FALSE(is_rnic_fault(FaultKind::kSwitchAclError));
}

TEST_F(FaultsTest, RnicFlappingTogglesAndClears) {
  const int h = inj_.inject_rnic_flapping(RnicId{0}, msec(50), msec(50));
  // During the first down phase, traffic to RNIC 0 drops.
  cluster_.scheduler().run_until(msec(10));
  EXPECT_FALSE(send(RnicId{4}, RnicId{0}).delivered);
  // In the up phase, it flows.
  cluster_.scheduler().run_until(msec(70));
  EXPECT_TRUE(send(RnicId{4}, RnicId{0}).delivered);
  // Down again in the next cycle.
  cluster_.scheduler().run_until(msec(110));
  EXPECT_FALSE(send(RnicId{4}, RnicId{0}).delivered);
  inj_.clear(h);
  cluster_.scheduler().run_until(msec(400));
  EXPECT_TRUE(send(RnicId{4}, RnicId{0}).delivered);
}

TEST_F(FaultsTest, FlappingRejectsNonPositiveDwell) {
  EXPECT_THROW(inj_.inject_rnic_flapping(RnicId{0}, 0, msec(1)),
               std::invalid_argument);
}

TEST_F(FaultsTest, CorruptionAffectsBothDirectionsAndClears) {
  const auto probe = send(RnicId{0}, RnicId{12});
  ASSERT_TRUE(probe.delivered);
  const LinkId mid = probe.path.links[2];
  const int h = inj_.inject_corruption(mid, 1.0);
  EXPECT_FALSE(send(RnicId{0}, RnicId{12}).delivered);
  inj_.clear(h);
  EXPECT_TRUE(send(RnicId{0}, RnicId{12}).delivered);
  EXPECT_THROW(inj_.inject_corruption(mid, 1.5), std::invalid_argument);
}

TEST_F(FaultsTest, HostDownTakesAllRnicsDown) {
  const int h = inj_.inject_host_down(HostId{1});
  EXPECT_TRUE(cluster_.host(HostId{1}).is_down());
  for (RnicId r : cluster_.topology().host(HostId{1}).rnics) {
    EXPECT_TRUE(cluster_.rnic_device(r).is_down());
  }
  inj_.clear(h);
  EXPECT_FALSE(cluster_.host(HostId{1}).is_down());
  for (RnicId r : cluster_.topology().host(HostId{1}).rnics) {
    EXPECT_FALSE(cluster_.rnic_device(r).is_down());
  }
}

TEST_F(FaultsTest, PfcDeadlockBlocksRoceOnly) {
  const auto probe = send(RnicId{0}, RnicId{12});
  ASSERT_TRUE(probe.delivered);
  const LinkId mid = probe.path.links[2];
  const int h = inj_.inject_pfc_deadlock(mid);
  EXPECT_FALSE(send(RnicId{0}, RnicId{12}).delivered);
  // TCP-class traffic sails through (different traffic class): the reason
  // Pingmesh cannot see this problem (§2.4).
  fabric::Datagram tcp;
  tcp.src = RnicId{0};
  tcp.dst = RnicId{12};
  tcp.tuple.src_ip = cluster_.topology().rnic(RnicId{0}).ip;
  tcp.tuple.dst_ip = cluster_.topology().rnic(RnicId{12}).ip;
  tcp.tuple.src_port = 1000;
  tcp.tuple.protocol = 6;
  EXPECT_TRUE(cluster_.fabric().send(tcp).delivered);
  inj_.clear(h);
  EXPECT_TRUE(send(RnicId{0}, RnicId{12}).delivered);
}

TEST_F(FaultsTest, MisconfigurationsMakeRnicUnreachable) {
  // Give RNIC 2 a receiving QP so healthy packets actually land.
  rnic::QpConfig qcfg;
  qcfg.type = rnic::QpType::kUD;
  qcfg.on_cqe = [](const rnic::Cqe&) {};
  const Qpn rx = cluster_.rnic_device(RnicId{2}).create_qp(qcfg);
  const auto send_to_qp = [&] {
    fabric::Datagram d;
    d.src = RnicId{0};
    d.dst = RnicId{2};
    d.tuple.src_ip = cluster_.topology().rnic(RnicId{0}).ip;
    d.tuple.dst_ip = cluster_.topology().rnic(RnicId{2}).ip;
    d.tuple.src_port = 1000;
    d.dst_qpn = rx;
    cluster_.fabric().send(d);
  };
  const int h1 = inj_.inject_route_missing(RnicId{2});
  // Fabric delivers, but the misconfigured RNIC cannot demux RoCE traffic.
  send_to_qp();
  cluster_.run_for(msec(1));
  EXPECT_GT(cluster_.rnic_device(RnicId{2}).counters().rx_dropped_misconfig,
            0u);
  EXPECT_EQ(cluster_.rnic_device(RnicId{2}).counters().rx_packets, 0u);
  inj_.clear(h1);
  const int h2 = inj_.inject_gid_index_missing(RnicId{2});
  send_to_qp();
  cluster_.run_for(msec(1));
  EXPECT_EQ(cluster_.rnic_device(RnicId{2}).counters().rx_packets, 0u);
  inj_.clear(h2);
  send_to_qp();
  cluster_.run_for(msec(1));
  EXPECT_GT(cluster_.rnic_device(RnicId{2}).counters().rx_packets, 0u);
}

TEST_F(FaultsTest, AclErrorBlocksPairAndClears) {
  const auto probe = send(RnicId{0}, RnicId{12});
  ASSERT_TRUE(probe.delivered);
  const SwitchId sw = probe.path.switches[1];
  const int h = inj_.inject_acl_error(sw, cluster_.topology().rnic(RnicId{0}).ip,
                                      cluster_.topology().rnic(RnicId{12}).ip);
  // The specific pair may or may not hash through `sw`; wildcard-check by
  // sending the same tuple (deterministic path).
  EXPECT_FALSE(send(RnicId{0}, RnicId{12}).delivered);
  inj_.clear(h);
  EXPECT_TRUE(send(RnicId{0}, RnicId{12}).delivered);
}

TEST_F(FaultsTest, CpuOverloadSetsAndRestoresLoad) {
  const double before = cluster_.host(HostId{2}).cpu_load();
  const int h = inj_.inject_cpu_overload(HostId{2}, 0.97);
  EXPECT_DOUBLE_EQ(cluster_.host(HostId{2}).cpu_load(), 0.97);
  inj_.clear(h);
  EXPECT_DOUBLE_EQ(cluster_.host(HostId{2}).cpu_load(), before);
}

TEST_F(FaultsTest, PcieDowngradeDegradesDrainRateAndClears) {
  const int h = inj_.inject_pcie_downgrade(RnicId{3}, 0.25);
  const LinkId down = cluster_.topology().rnic(RnicId{3}).downlink;
  EXPECT_DOUBLE_EQ(cluster_.fabric().link_state(down).service_rate_factor,
                   0.25);
  inj_.clear(h);
  EXPECT_DOUBLE_EQ(cluster_.fabric().link_state(down).service_rate_factor,
                   1.0);
}

TEST_F(FaultsTest, RecordsCarryGroundTruth) {
  const int h = inj_.inject_switch_port_flapping(LinkId{0}, msec(10), msec(10));
  const FaultRecord& rec = inj_.record(h);
  EXPECT_EQ(rec.kind, FaultKind::kSwitchPortFlapping);
  EXPECT_EQ(rec.link, LinkId{0});
  EXPECT_TRUE(rec.active);
  EXPECT_FALSE(rec.describe(cluster_.topology()).empty());
  EXPECT_EQ(inj_.active_faults().size(), 1u);
  inj_.clear(h);
  EXPECT_TRUE(inj_.active_faults().empty());
  EXPECT_THROW(inj_.record(h), std::out_of_range);
}

TEST_F(FaultsTest, ClearAllRevertsEverything) {
  inj_.inject_rnic_down(RnicId{0});
  inj_.inject_cpu_overload(HostId{3});
  inj_.inject_corruption(LinkId{0}, 0.5);
  EXPECT_EQ(inj_.active_faults().size(), 3u);
  inj_.clear_all();
  EXPECT_TRUE(inj_.active_faults().empty());
  EXPECT_FALSE(cluster_.rnic_device(RnicId{0}).is_down());
  EXPECT_DOUBLE_EQ(cluster_.fabric().link_state(LinkId{0}).corrupt_prob, 0.0);
}

TEST_F(FaultsTest, ClearAllRevertsInAscendingHandleOrder) {
  // Two stacked CPU faults on one host, each capturing the load it saw at
  // injection time. clear_all() must revert in ascending-handle (injection)
  // order on every platform: overload first (restoring the idle baseline),
  // then the Agent-occupation fault, whose captured "before" re-applies the
  // 0.5 overload. Iterating the unordered map directly would let the hash
  // function pick the survivor and break seeded-run byte-identity.
  const double baseline = cluster_.host(HostId{2}).cpu_load();
  inj_.inject_cpu_overload(HostId{2}, 0.5);
  inj_.inject_agent_cpu_occupation(HostId{2});
  EXPECT_DOUBLE_EQ(cluster_.host(HostId{2}).cpu_load(), 1.0);

  inj_.clear_all();
  EXPECT_TRUE(inj_.active_faults().empty());
  EXPECT_NE(cluster_.host(HostId{2}).cpu_load(), baseline);
  EXPECT_DOUBLE_EQ(cluster_.host(HostId{2}).cpu_load(), 0.5);
}

TEST_F(FaultsTest, ClearIsIdempotent) {
  const int h = inj_.inject_rnic_down(RnicId{0});
  inj_.clear(h);
  inj_.clear(h);  // no throw, no effect
  EXPECT_FALSE(cluster_.rnic_device(RnicId{0}).is_down());
}

TEST_F(FaultsTest, AllKindsHaveNames) {
  for (int k = 1; k <= static_cast<int>(FaultKind::kQpnReset); ++k) {
    EXPECT_STRNE(fault_kind_name(static_cast<FaultKind>(k)), "?");
  }
}

}  // namespace
}  // namespace rpm::faults
