// Tests for the fabric: packet delivery, drop reasons, fluid queueing, ECN,
// PFC backpressure vs lossy overflow, ACL, and fault hooks.
#include <gtest/gtest.h>

#include "fabric/fabric.h"
#include "routing/ecmp.h"
#include "sim/scheduler.h"
#include "topo/topology.h"

namespace rpm::fabric {
namespace {

topo::ClosConfig small_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 1;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

class FabricTest : public ::testing::Test {
 protected:
  FabricTest()
      : topo_(topo::build_clos(small_cfg())),
        router_(topo_),
        fab_(topo_, router_, sched_) {}

  Datagram dgram(RnicId src, RnicId dst, std::uint16_t port = 1000) {
    Datagram d;
    d.src = src;
    d.dst = dst;
    d.tuple.src_ip = topo_.rnic(src).ip;
    d.tuple.dst_ip = topo_.rnic(dst).ip;
    d.tuple.src_port = port;
    d.size = 50;
    return d;
  }

  FlowSpec flow(RnicId src, RnicId dst, double gbps,
                std::uint16_t port = 2000) {
    FlowSpec f;
    f.src = src;
    f.dst = dst;
    f.tuple.src_ip = topo_.rnic(src).ip;
    f.tuple.dst_ip = topo_.rnic(dst).ip;
    f.tuple.src_port = port;
    f.demand_Bps = gbps_to_Bps(gbps);
    return f;
  }

  topo::Topology topo_;
  routing::EcmpRouter router_;
  sim::InlineScheduler sched_;
  Fabric fab_;
};

TEST_F(FabricTest, DeliversAcrossCluster) {
  bool delivered = false;
  const RnicId src{0}, dst{7};
  fab_.set_delivery_handler(dst, [&](const Datagram& d) {
    delivered = true;
    EXPECT_EQ(d.src, src);
  });
  const SendOutcome out = fab_.send(dgram(src, dst));
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.drop, DropReason::kNone);
  EXPECT_GT(out.latency, 0);
  sched_.run_until(msec(1));
  EXPECT_TRUE(delivered);
}

TEST_F(FabricTest, IdleLatencyIsPropagationPlusSerialization) {
  const RnicId src{0}, dst{7};
  const SendOutcome out = fab_.send(dgram(src, dst));
  ASSERT_TRUE(out.delivered);
  const TimeNs prop = out.path.propagation_total(topo_);
  // 50B at 100 Gb/s is 4 ns per hop; 6 hops => within tens of ns of prop.
  EXPECT_GE(out.latency, prop);
  EXPECT_LE(out.latency, prop + nsec(100));
}

TEST_F(FabricTest, DownCableDropsWithLinkDown) {
  const RnicId src{0}, dst{7};
  fab_.set_cable_up(topo_.rnic(dst).uplink, false);
  const SendOutcome out = fab_.send(dgram(src, dst));
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.drop, DropReason::kLinkDown);
  EXPECT_EQ(out.drop_link, topo_.rnic(dst).downlink);
}

TEST_F(FabricTest, SourceUplinkDownDropsAtSource) {
  const RnicId src{0}, dst{7};
  fab_.set_cable_up(topo_.rnic(src).uplink, false);
  const SendOutcome out = fab_.send(dgram(src, dst));
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.drop, DropReason::kLinkDown);
  EXPECT_EQ(out.drop_link, topo_.rnic(src).uplink);
}

TEST_F(FabricTest, BlackholeWhenEveryUplinkDead) {
  const RnicId src{0}, dst{7};
  const SwitchId tor = topo_.rnic(src).tor;
  for (LinkId l : topo_.out_links(topo::NodeRef::sw(tor))) {
    if (topo_.link(l).to.is_switch()) fab_.set_cable_up(l, false);
  }
  const SendOutcome out = fab_.send(dgram(src, dst));
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.drop, DropReason::kBlackhole);
  EXPECT_EQ(out.drop_switch, tor);
}

TEST_F(FabricTest, FlappingLinkDropsInPlaceWithoutRerouting) {
  // A flap is faster than routing convergence: packets keep hashing onto
  // the bouncing link and are lost there (unlike an admin-down link).
  const RnicId src{0}, dst{7};
  const SendOutcome before = fab_.send(dgram(src, dst));
  ASSERT_TRUE(before.delivered);
  fab_.set_cable_flapping(before.path.links[1], true);
  const SendOutcome during = fab_.send(dgram(src, dst));
  EXPECT_FALSE(during.delivered);
  EXPECT_EQ(during.drop, DropReason::kLinkDown);
  EXPECT_EQ(during.drop_link, before.path.links[1]);
  EXPECT_EQ(during.path.links, before.path.links);  // same forwarding path
  fab_.set_cable_flapping(before.path.links[1], false);
  const SendOutcome after = fab_.send(dgram(src, dst));
  EXPECT_TRUE(after.delivered);
  EXPECT_EQ(after.path.links, before.path.links);
}

TEST_F(FabricTest, FlowThroughFlappingLinkStallsDuringDownPhase) {
  const FlowId a = fab_.add_flow(flow(RnicId{0}, RnicId{7}, 10.0, 2001));
  fab_.start();
  sched_.run_until(msec(1));
  const auto path = fab_.flow_path(a).links;
  fab_.set_cable_flapping(path[1], true);
  sched_.run_until(msec(2));
  EXPECT_DOUBLE_EQ(fab_.flow_stats(a).achieved_Bps, 0.0);
  EXPECT_DOUBLE_EQ(fab_.flow_stats(a).loss_rate, 1.0);
  EXPECT_EQ(fab_.flow_path(a).links, path);  // no reroute during flap
  fab_.set_cable_flapping(path[1], false);
  sched_.run_until(msec(3));
  EXPECT_GT(fab_.flow_stats(a).achieved_Bps, 0.0);
}

TEST_F(FabricTest, CorruptionDropsProbabilistically) {
  const RnicId src{0}, dst{7};
  const SendOutcome probe = fab_.send(dgram(src, dst));
  fab_.link_state(probe.path.links[2]).corrupt_prob = 0.5;
  int drops = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const SendOutcome out = fab_.send(dgram(src, dst));
    if (!out.delivered) {
      EXPECT_EQ(out.drop, DropReason::kCorruption);
      ++drops;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.5, 0.1);
  EXPECT_GT(fab_.link_state(probe.path.links[2]).drops_corrupt, 0u);
}

TEST_F(FabricTest, PfcDeadlockBlocksPath) {
  const RnicId src{0}, dst{7};
  const SendOutcome probe = fab_.send(dgram(src, dst));
  fab_.link_state(probe.path.links[1]).deadlocked = true;
  const SendOutcome out = fab_.send(dgram(src, dst));
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.drop, DropReason::kPfcDeadlock);
  EXPECT_EQ(out.drop_link, probe.path.links[1]);
}

TEST_F(FabricTest, AclDenyMatchesExactPair) {
  const RnicId src{0}, dst{7};
  const SendOutcome probe = fab_.send(dgram(src, dst));
  ASSERT_TRUE(probe.delivered);
  const SwitchId sw = probe.path.switches[0];
  fab_.add_acl_deny(sw, topo_.rnic(src).ip, topo_.rnic(dst).ip);
  const SendOutcome out = fab_.send(dgram(src, dst));
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.drop, DropReason::kAclDeny);
  EXPECT_EQ(out.drop_switch, sw);
  // Other destinations unaffected.
  EXPECT_TRUE(fab_.send(dgram(src, RnicId{5})).delivered);
  fab_.clear_acl(sw);
  EXPECT_TRUE(fab_.send(dgram(src, dst)).delivered);
}

TEST_F(FabricTest, AclWildcardSource) {
  const RnicId src{0}, dst{7};
  const SendOutcome probe = fab_.send(dgram(src, dst));
  fab_.add_acl_deny(probe.path.switches[0], IpAddr{}, topo_.rnic(dst).ip);
  EXPECT_FALSE(fab_.send(dgram(src, dst)).delivered);
}

TEST_F(FabricTest, FlowBelowCapacityIsLossless) {
  const FlowId id = fab_.add_flow(flow(RnicId{0}, RnicId{7}, 50.0));
  fab_.start();
  sched_.run_until(msec(10));
  const FlowStats st = fab_.flow_stats(id);
  EXPECT_NEAR(st.achieved_Bps, gbps_to_Bps(50.0), gbps_to_Bps(0.5));
  EXPECT_DOUBLE_EQ(st.loss_rate, 0.0);
  EXPECT_EQ(st.queue_delay, 0);
}

TEST_F(FabricTest, CongestionBuildsQueueAndDelay) {
  // Two 80G flows from different sources forced to the same destination
  // downlink (100G): 60G oversubscription on tor->host.
  fab_.add_flow(flow(RnicId{0}, RnicId{7}, 80.0, 2001));
  fab_.add_flow(flow(RnicId{2}, RnicId{7}, 80.0, 2002));
  fab_.start();
  sched_.run_until(msec(5));
  const LinkId down = topo_.rnic(RnicId{7}).downlink;
  EXPECT_GT(fab_.link_state(down).queue_bytes, 0);
  EXPECT_GT(fab_.link_queue_delay(down), 0);
  // Probes through the congested link see the queueing delay.
  const SendOutcome out = fab_.send(dgram(RnicId{4}, RnicId{7}));
  ASSERT_TRUE(out.delivered);
  EXPECT_GE(out.latency, fab_.link_queue_delay(down));
}

TEST_F(FabricTest, SharedBottleneckThrottlesProportionally) {
  const FlowId a = fab_.add_flow(flow(RnicId{0}, RnicId{7}, 80.0, 2001));
  const FlowId b = fab_.add_flow(flow(RnicId{2}, RnicId{7}, 80.0, 2002));
  fab_.start();
  sched_.run_until(msec(5));
  // 160G offered into 100G: each should achieve ~50G.
  EXPECT_NEAR(fab_.flow_stats(a).achieved_Bps, gbps_to_Bps(50.0),
              gbps_to_Bps(4.0));
  EXPECT_NEAR(fab_.flow_stats(b).achieved_Bps, gbps_to_Bps(50.0),
              gbps_to_Bps(4.0));
}

TEST_F(FabricTest, LosslessQueueCapsAtBufferAndPushesBack) {
  fab_.add_flow(flow(RnicId{0}, RnicId{7}, 100.0, 2001));
  fab_.add_flow(flow(RnicId{2}, RnicId{7}, 100.0, 2002));
  fab_.start();
  sched_.run_until(msec(50));
  const LinkId down = topo_.rnic(RnicId{7}).downlink;
  const LinkState& s = fab_.link_state(down);
  EXPECT_LE(s.queue_bytes, fab_.config().buffer_bytes);
  EXPECT_TRUE(s.pfc_paused);
  EXPECT_GT(s.pfc_pause_events, 0u);
  EXPECT_DOUBLE_EQ(s.overflow_drop_frac, 0.0);  // lossless: no drops
  // Backpressure spreads into upstream (agg->tor / host->tor) queues.
  Bytes upstream_q = 0;
  const SwitchId tor = topo_.rnic(RnicId{7}).tor;
  for (LinkId out : topo_.out_links(topo::NodeRef::sw(tor))) {
    upstream_q += fab_.link_state(topo_.link(out).peer).queue_bytes;
  }
  EXPECT_GT(upstream_q, 0);
}

TEST_F(FabricTest, PfcMisconfiguredQueueDropsInsteadOfPausing) {
  const LinkId down = topo_.rnic(RnicId{7}).downlink;
  fab_.link_state(down).pfc_misconfigured = true;
  fab_.add_flow(flow(RnicId{0}, RnicId{7}, 100.0, 2001));
  fab_.add_flow(flow(RnicId{2}, RnicId{7}, 100.0, 2002));
  fab_.start();
  sched_.run_until(msec(60));
  const LinkState& s = fab_.link_state(down);
  EXPECT_GT(s.overflow_drop_frac, 0.0);
  EXPECT_GT(s.drops_overflow, 0u);
  // Probes through the overflowing queue are dropped with some probability.
  int drops = 0;
  for (int i = 0; i < 200; ++i) {
    if (!fab_.send(dgram(RnicId{4}, RnicId{7})).delivered) ++drops;
  }
  EXPECT_GT(drops, 0);
}

TEST_F(FabricTest, PcieDowngradedEndpointCongestsItsDownlink) {
  const LinkId down = topo_.rnic(RnicId{7}).downlink;
  fab_.link_state(down).service_rate_factor = 0.25;  // 100G -> 25G drain
  fab_.add_flow(flow(RnicId{0}, RnicId{7}, 50.0, 2001));
  fab_.start();
  sched_.run_until(msec(20));
  EXPECT_GT(fab_.link_state(down).queue_bytes, 0);
  EXPECT_GT(fab_.link_queue_delay(down), usec(10));
}

TEST_F(FabricTest, RemoveFlowFreesCapacity) {
  const FlowId a = fab_.add_flow(flow(RnicId{0}, RnicId{7}, 80.0, 2001));
  const FlowId b = fab_.add_flow(flow(RnicId{2}, RnicId{7}, 80.0, 2002));
  fab_.start();
  sched_.run_until(msec(5));
  fab_.remove_flow(b);
  sched_.run_until(sched_.now() + msec(200));  // queue drains
  EXPECT_NEAR(fab_.flow_stats(a).achieved_Bps, gbps_to_Bps(80.0),
              gbps_to_Bps(2.0));
  EXPECT_EQ(fab_.num_flows(), 1u);
}

TEST_F(FabricTest, FlowPathReresolvedAfterTopologyChange) {
  const FlowId a = fab_.add_flow(flow(RnicId{0}, RnicId{7}, 10.0, 2001));
  fab_.start();
  sched_.run_until(msec(1));
  const auto before = fab_.flow_path(a).links;
  fab_.set_cable_up(before[1], false);
  sched_.run_until(msec(2));
  const auto after = fab_.flow_path(a).links;
  EXPECT_NE(before, after);
}

TEST_F(FabricTest, FlowThroughDownLinkIsLostUntilRehash) {
  const FlowId a = fab_.add_flow(flow(RnicId{0}, RnicId{7}, 10.0, 2001));
  fab_.start();
  sched_.run_until(msec(1));
  // Take the destination edge down: no alternative path exists.
  fab_.set_cable_up(topo_.rnic(RnicId{7}).uplink, false);
  sched_.run_until(msec(3));
  EXPECT_DOUBLE_EQ(fab_.flow_stats(a).achieved_Bps, 0.0);
  EXPECT_DOUBLE_EQ(fab_.flow_stats(a).loss_rate, 1.0);
}

TEST_F(FabricTest, SetFlowDemandChangesRate) {
  const FlowId a = fab_.add_flow(flow(RnicId{0}, RnicId{7}, 10.0, 2001));
  fab_.start();
  sched_.run_until(msec(2));
  EXPECT_NEAR(fab_.flow_stats(a).achieved_Bps, gbps_to_Bps(10.0),
              gbps_to_Bps(0.5));
  fab_.set_flow_demand(a, gbps_to_Bps(40.0));
  sched_.run_until(sched_.now() + msec(2));
  EXPECT_NEAR(fab_.flow_stats(a).achieved_Bps, gbps_to_Bps(40.0),
              gbps_to_Bps(1.0));
}

TEST_F(FabricTest, ConfigValidation) {
  FabricConfig bad;
  bad.step_interval = 0;
  EXPECT_THROW(Fabric(topo_, router_, sched_, bad), std::invalid_argument);
  FabricConfig bad2;
  bad2.ecn_kmin = bad2.ecn_kmax;
  EXPECT_THROW(Fabric(topo_, router_, sched_, bad2), std::invalid_argument);
}

TEST_F(FabricTest, RejectsNegativeDemand) {
  auto f = flow(RnicId{0}, RnicId{7}, 10.0);
  f.demand_Bps = -1.0;
  EXPECT_THROW(fab_.add_flow(f), std::invalid_argument);
}

TEST_F(FabricTest, DropReasonNames) {
  EXPECT_STREQ(drop_reason_name(DropReason::kNone), "none");
  EXPECT_STREQ(drop_reason_name(DropReason::kAclDeny), "acl-deny");
  EXPECT_STREQ(drop_reason_name(DropReason::kPfcDeadlock), "pfc-deadlock");
}

}  // namespace
}  // namespace rpm::fabric
