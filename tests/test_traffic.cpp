// Tests for the DML service model: patterns, iteration structure, barrel
// effect, checkpoints, failure modes, and the compute-slowdown confusion.
#include <gtest/gtest.h>

#include "faults/faults.h"
#include "traffic/dml.h"

namespace rpm::traffic {
namespace {

topo::ClosConfig clos_cfg() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 1;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

DmlConfig base_cfg() {
  DmlConfig cfg;
  cfg.service = ServiceId{1};
  cfg.workers = {RnicId{0}, RnicId{2}, RnicId{4}, RnicId{6}};
  cfg.pattern = CommPattern::kAllReduceRing;
  cfg.per_flow_gbps = 40.0;
  cfg.compute_time = msec(100);
  cfg.comm_bytes = 50'000'000;  // 10 ms at 40G
  return cfg;
}

class DmlTest : public ::testing::Test {
 protected:
  DmlTest() : cluster_(topo::build_clos(clos_cfg())) {}
  host::Cluster cluster_;
};

TEST_F(DmlTest, PatternNames) {
  EXPECT_STREQ(comm_pattern_name(CommPattern::kAllReduceRing),
               "allreduce-ring");
  EXPECT_STREQ(comm_pattern_name(CommPattern::kAllToAll), "all2all");
  EXPECT_STREQ(comm_pattern_name(CommPattern::kIncast), "incast");
}

TEST_F(DmlTest, ConfigValidation) {
  DmlConfig bad = base_cfg();
  bad.workers = {RnicId{0}};
  EXPECT_THROW(DmlService(cluster_, bad), std::invalid_argument);
  bad = base_cfg();
  bad.per_flow_gbps = 0;
  EXPECT_THROW(DmlService(cluster_, bad), std::invalid_argument);
  DmlService ok(cluster_, base_cfg());
  EXPECT_THROW(ok.set_compute_slowdown(0.5), std::invalid_argument);
}

TEST_F(DmlTest, RingHasOneFlowPerWorker) {
  DmlService svc(cluster_, base_cfg());
  svc.start();
  EXPECT_EQ(svc.connections().size(), 4u);
  svc.stop();
}

TEST_F(DmlTest, All2AllHasAllOrderedPairs) {
  DmlConfig cfg = base_cfg();
  cfg.pattern = CommPattern::kAllToAll;
  DmlService svc(cluster_, cfg);
  svc.start();
  EXPECT_EQ(svc.connections().size(), 12u);  // 4*3
  svc.stop();
}

TEST_F(DmlTest, IncastConvergesOnWorkerZero) {
  DmlConfig cfg = base_cfg();
  cfg.pattern = CommPattern::kIncast;
  DmlService svc(cluster_, cfg);
  svc.start();
  ASSERT_EQ(svc.connections().size(), 3u);
  for (const DmlConnection& c : svc.connections()) {
    EXPECT_EQ(c.dst, RnicId{0});
  }
  svc.stop();
}

TEST_F(DmlTest, HealthyJobIteratesAtFullThroughput) {
  DmlService svc(cluster_, base_cfg());
  svc.start();
  cluster_.run_for(sec(3));
  EXPECT_GT(svc.iterations_completed(), 15u);
  EXPECT_GT(svc.relative_throughput(), 0.8);
  EXPECT_FALSE(svc.failed());
  svc.stop();
}

TEST_F(DmlTest, ComputeAndCommPhasesAlternate) {
  DmlService svc(cluster_, base_cfg());
  svc.start();
  // Count transitions by sampling.
  int comm_samples = 0, idle_samples = 0;
  for (int i = 0; i < 200; ++i) {
    cluster_.run_for(msec(5));
    (svc.in_comm_phase() ? comm_samples : idle_samples)++;
  }
  EXPECT_GT(comm_samples, 10);
  EXPECT_GT(idle_samples, 50);
  svc.stop();
}

TEST_F(DmlTest, BarrelEffectSlowestFlowGatesIteration) {
  // Degrade ONE flow's path (corruption -> reduced goodput): the whole
  // job slows down even though the other three flows are healthy. Use a
  // communication-dominated iteration so the effect is visible.
  DmlConfig cfg = base_cfg();
  cfg.compute_time = msec(20);
  cfg.comm_bytes = 250'000'000;  // 50 ms at 40G
  DmlService svc(cluster_, cfg);
  svc.start();
  cluster_.run_for(sec(2));
  const double healthy_iters = static_cast<double>(svc.iterations_completed());
  faults::FaultInjector inj(cluster_);
  // 50% corruption on one worker's host link halves that flow's goodput;
  // the iteration completes only when the SLOWEST flow finishes.
  inj.inject_corruption(cluster_.topology().rnic(RnicId{2}).uplink, 0.5);
  const auto before = svc.iterations_completed();
  cluster_.run_for(sec(2));
  const double degraded_iters =
      static_cast<double>(svc.iterations_completed() - before);
  EXPECT_LT(degraded_iters, healthy_iters * 0.8);
  EXPECT_LT(svc.relative_throughput(), 0.85);
  svc.stop();
}

TEST_F(DmlTest, FlappingBreaksConnectionWithSmallRetryBudget) {
  DmlConfig cfg = base_cfg();
  cfg.rc_max_retries = 2;
  cfg.rc_retransmit_timeout = msec(2);
  cfg.keepalive_interval = msec(20);
  DmlService svc(cluster_, cfg);
  svc.start();
  cluster_.run_for(msec(500));
  faults::FaultInjector inj(cluster_);
  inj.inject_rnic_flapping(RnicId{2}, msec(200), msec(100));
  cluster_.run_for(sec(3));
  EXPECT_TRUE(svc.failed());
  EXPECT_DOUBLE_EQ(svc.relative_throughput(), 0.0);
  svc.stop();
}

TEST_F(DmlTest, MaxRetriesSurvivesTheSameFlap) {
  // The paper's ops mitigation (§7.1 #1): retries to the max + longer
  // timeout ride out flapping without task failure.
  DmlConfig cfg = base_cfg();
  cfg.rc_max_retries = 7;
  cfg.rc_retransmit_timeout = msec(60);
  cfg.keepalive_interval = msec(20);
  DmlService svc(cluster_, cfg);
  svc.start();
  cluster_.run_for(msec(500));
  faults::FaultInjector inj(cluster_);
  const int h = inj.inject_rnic_flapping(RnicId{2}, msec(200), msec(100));
  cluster_.run_for(sec(3));
  EXPECT_FALSE(svc.failed());
  inj.clear(h);
  svc.stop();
}

TEST_F(DmlTest, CheckpointsIdleTheNetworkAndLoadCpus) {
  DmlConfig cfg = base_cfg();
  cfg.checkpoint_interval = sec(1);
  cfg.checkpoint_duration = msec(400);
  DmlService svc(cluster_, cfg);
  svc.start();
  bool saw_checkpoint = false;
  bool network_idle_during_checkpoint = true;
  bool cpu_loaded_during_checkpoint = false;
  for (int i = 0; i < 600; ++i) {
    cluster_.run_for(msec(5));
    if (svc.in_checkpoint()) {
      saw_checkpoint = true;
      if (svc.avg_network_throughput_Bps() > gbps_to_Bps(0.5)) {
        network_idle_during_checkpoint = false;
      }
      const HostId h = cluster_.topology().rnic(RnicId{0}).host;
      if (cluster_.host(h).cpu_load() > 0.9) cpu_loaded_during_checkpoint = true;
    }
  }
  EXPECT_TRUE(saw_checkpoint);
  EXPECT_TRUE(network_idle_during_checkpoint);
  EXPECT_TRUE(cpu_loaded_during_checkpoint);
  svc.stop();
}

TEST_F(DmlTest, ComputeSlowdownLooksLikeNetworkDegradationAtCoarseGrain) {
  // Figure 9: a compute bug drags BOTH the training rate and the average
  // network throughput down, while the network itself is innocent.
  DmlService svc(cluster_, base_cfg());
  svc.start();
  cluster_.run_for(sec(2));
  double healthy_tp = svc.relative_throughput();
  svc.set_compute_slowdown(3.0);
  cluster_.run_for(sec(3));
  EXPECT_LT(svc.relative_throughput(), healthy_tp * 0.7);
  EXPECT_FALSE(svc.failed());
  svc.stop();
}

TEST_F(DmlTest, StopDestroysQpsAndFlows) {
  DmlService svc(cluster_, base_cfg());
  svc.start();
  const auto conns = svc.connections();
  cluster_.run_for(msec(100));
  svc.stop();
  EXPECT_TRUE(svc.connections().empty());
  for (const DmlConnection& c : conns) {
    EXPECT_FALSE(cluster_.rnic_device(c.src).has_qp(c.src_qpn));
    EXPECT_FALSE(cluster_.rnic_device(c.dst).has_qp(c.dst_qpn));
  }
  EXPECT_EQ(cluster_.fabric().num_flows(), 0u);
}

TEST_F(DmlTest, HostDownDuringTrainingFailsTheTask) {
  DmlConfig cfg = base_cfg();
  cfg.keepalive_interval = msec(20);
  cfg.rc_max_retries = 3;
  cfg.rc_retransmit_timeout = msec(5);
  DmlService svc(cluster_, cfg);
  svc.start();
  cluster_.run_for(msec(500));
  faults::FaultInjector inj(cluster_);
  inj.inject_host_down(cluster_.topology().rnic(RnicId{4}).host);
  cluster_.run_for(sec(3));
  EXPECT_TRUE(svc.failed());
  svc.stop();
}

}  // namespace
}  // namespace rpm::traffic
