// Tests for the self-observability subsystem: MetricsRegistry lifecycle,
// label deduplication, histogram percentiles, deterministic Prometheus/JSON
// golden output, the PeriodicDumper scrape loop, and trace-span nesting.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/scheduler.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace rpm::telemetry {
namespace {

// ---- registry lifecycle ----

TEST(MetricsRegistry, CounterRoundTrip) {
  MetricsRegistry reg;
  Counter c = reg.counter("t_events_total", "events");
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(reg.num_series(), 1u);
}

TEST(MetricsRegistry, DefaultHandlesAreInertNotCrashy) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.valid());
  c.inc();
  g.set(1.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistry, ResetDropsEverything) {
  MetricsRegistry reg;
  reg.counter("t_a_total", "a").inc();
  reg.gauge("t_b", "b").set(1);
  const int id = reg.add_collector([](MetricsRegistry&) {});
  (void)id;
  EXPECT_EQ(reg.num_series(), 2u);
  EXPECT_EQ(reg.num_collectors(), 1u);
  reg.reset();
  EXPECT_EQ(reg.num_series(), 0u);
  EXPECT_EQ(reg.num_collectors(), 0u);
}

TEST(MetricsRegistry, EmptyNameThrows) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("", "x"), std::invalid_argument);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("t_thing", "x");
  EXPECT_THROW(reg.gauge("t_thing", "x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("t_thing", "x"), std::invalid_argument);
}

// ---- label dedup ----

TEST(MetricsRegistry, SameLabelsDifferentOrderShareOneSeries) {
  MetricsRegistry reg;
  Counter a =
      reg.counter("t_req_total", "req", {{"host", "3"}, {"kind", "mesh"}});
  Counter b =
      reg.counter("t_req_total", "req", {{"kind", "mesh"}, {"host", "3"}});
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(reg.num_series(), 1u);
}

TEST(MetricsRegistry, DistinctLabelValuesGetDistinctSeries) {
  MetricsRegistry reg;
  reg.counter("t_req_total", "req", {{"host", "0"}}).inc(1);
  reg.counter("t_req_total", "req", {{"host", "1"}}).inc(2);
  EXPECT_EQ(reg.num_series(), 2u);
  const Snapshot snap = reg.snapshot();
  const SeriesSample* s0 = snap.find("t_req_total", {{"host", "0"}});
  const SeriesSample* s1 = snap.find("t_req_total", {{"host", "1"}});
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s0->counter_value, 1u);
  EXPECT_EQ(s1->counter_value, 2u);
  EXPECT_DOUBLE_EQ(snap.sum("t_req_total"), 3.0);
  EXPECT_DOUBLE_EQ(snap.sum("t_req_total", {{"host", "1"}}), 2.0);
}

// ---- histogram percentiles ----

TEST(MetricsRegistry, HistogramPercentilesTrackDistribution) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("t_rtt_ns", "rtt");
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 500'500.0);
  // LogHistogram buckets are ~4% wide; allow 10%.
  EXPECT_NEAR(h.percentile(0.50), 500.0, 50.0);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 99.0);
  const Snapshot snap = reg.snapshot();
  const SeriesSample* s = snap.find("t_rtt_ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->hist_count, 1000u);
  EXPECT_NEAR(s->hist_p50, 500.0, 50.0);
  EXPECT_GE(s->hist_p999, s->hist_p50);
}

// ---- collectors ----

TEST(MetricsRegistry, CollectorRunsAtSnapshotTime) {
  MetricsRegistry reg;
  int calls = 0;
  {
    CollectorGuard guard(reg, [&calls](MetricsRegistry& r) {
      ++calls;
      r.gauge("t_depth", "depth").set(7.0);
    });
    EXPECT_EQ(reg.num_collectors(), 1u);
    const Snapshot snap = reg.snapshot();
    EXPECT_EQ(calls, 1);
    const SeriesSample* s = snap.find("t_depth");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->gauge_value, 7.0);
  }
  // Guard out of scope: unregistered, further snapshots don't call it.
  EXPECT_EQ(reg.num_collectors(), 0u);
  (void)reg.snapshot();
  EXPECT_EQ(calls, 1);
}

// ---- golden exporter output ----

MetricsRegistry& golden_registry(MetricsRegistry& reg) {
  reg.counter("t_requests_total", "Requests handled",
              {{"kind", "b"}, {"host", "0"}})
      .inc(3);
  reg.counter("t_requests_total", "Requests handled",
              {{"host", "1"}, {"kind", "a"}})
      .inc(7);
  reg.gauge("t_queue_depth", "Current queue depth").set(2.5);
  return reg;
}

TEST(Export, PrometheusGolden) {
  MetricsRegistry reg;
  const std::string text = to_prometheus(golden_registry(reg).snapshot());
  EXPECT_EQ(text,
            "# HELP t_queue_depth Current queue depth\n"
            "# TYPE t_queue_depth gauge\n"
            "t_queue_depth 2.5\n"
            "# HELP t_requests_total Requests handled\n"
            "# TYPE t_requests_total counter\n"
            "t_requests_total{host=\"0\",kind=\"b\"} 3\n"
            "t_requests_total{host=\"1\",kind=\"a\"} 7\n");
}

TEST(Export, JsonGolden) {
  MetricsRegistry reg;
  const std::string text = to_json(golden_registry(reg).snapshot());
  EXPECT_EQ(
      text,
      "{\"metrics\":["
      "{\"name\":\"t_queue_depth\",\"type\":\"gauge\",\"labels\":{},"
      "\"value\":2.5},"
      "{\"name\":\"t_requests_total\",\"type\":\"counter\","
      "\"labels\":{\"host\":\"0\",\"kind\":\"b\"},\"value\":3},"
      "{\"name\":\"t_requests_total\",\"type\":\"counter\","
      "\"labels\":{\"host\":\"1\",\"kind\":\"a\"},\"value\":7}"
      "]}");
}

TEST(Export, HistogramRendersAsSummary) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("t_lat_ns", "latency", {{"stage", "classify"}});
  for (int i = 0; i < 100; ++i) h.observe(1000.0);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE t_lat_ns summary\n"), std::string::npos);
  EXPECT_NE(text.find("t_lat_ns{stage=\"classify\",quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("t_lat_ns{stage=\"classify\",quantile=\"0.999\"} "),
            std::string::npos);
  EXPECT_NE(text.find("t_lat_ns_sum{stage=\"classify\"} 100000\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_lat_ns_count{stage=\"classify\"} 100\n"),
            std::string::npos);
}

TEST(Export, HistogramCountSumSurviveTextRoundTrip) {
  // The standard summary series must round-trip through the text format:
  // every histogram's `<name>_count`/`<name>_sum` line, parsed back out of
  // to_prometheus(), equals the snapshot's hist_count/hist_sum exactly.
  // This is what downstream scrapers (and the BENCH_*.json validators)
  // rely on — the quantile lines are approximations, these two are not.
  MetricsRegistry reg;
  Histogram a = reg.histogram("rt_lat_ns", "latency", {{"stage", "vote"}});
  Histogram b = reg.histogram("rt_lat_ns", "latency", {{"stage", "sla"}});
  Histogram c = reg.histogram("rt_close_ns", "close cost");
  for (int i = 1; i <= 1000; ++i) a.observe(static_cast<double>(i));
  b.observe(0.5);
  b.observe(2.25);
  c.observe(1e9);

  const Snapshot snap = reg.snapshot();
  const std::string text = to_prometheus(snap);

  // Parse "<series> <value>\n" lines back into a map.
  const auto parse_value = [&text](const std::string& series) {
    const std::string needle = series + ' ';
    const std::size_t pos = text.find(needle);
    EXPECT_NE(pos, std::string::npos) << series;
    if (pos == std::string::npos) return std::string();
    const std::size_t eol = text.find('\n', pos);
    return text.substr(pos + needle.size(), eol - pos - needle.size());
  };

  for (const SeriesSample& s : snap.series) {
    if (s.type != MetricType::kHistogram) continue;
    std::string labels;
    if (!s.labels.empty()) {
      labels = "{";
      for (const Label& l : s.labels) {
        if (labels.size() > 1) labels += ',';
        labels += l.key + "=\"" + l.value + '"';
      }
      labels += '}';
    }
    EXPECT_EQ(parse_value(s.name + "_count" + labels),
              std::to_string(s.hist_count))
        << s.name << labels;
    EXPECT_EQ(std::stod(parse_value(s.name + "_sum" + labels)), s.hist_sum)
        << s.name << labels;
  }
  // Ground truth for the parse itself.
  EXPECT_EQ(parse_value("rt_lat_ns_count{stage=\"vote\"}"), "1000");
  EXPECT_EQ(parse_value("rt_lat_ns_count{stage=\"sla\"}"), "2");
  EXPECT_EQ(std::stod(parse_value("rt_lat_ns_sum{stage=\"sla\"}")), 2.75);
  EXPECT_EQ(parse_value("rt_close_ns_count"), "1");
}

TEST(Export, SurvivabilityMetricsRoundTrip) {
  // The five metric families the control-plane survivability layer emits
  // (src/core agent + controller) must survive both exporters intact: a
  // counter pair, a depth gauge, a registration gauge, and the
  // reconnect-backoff histogram (rendered as a summary).
  MetricsRegistry reg;
  reg.counter("rpm_agent_lease_expired_total", "Controller leases lost",
              {{"host", "1"}})
      .inc(2);
  reg.counter("rpm_agent_reregistrations_total",
              "Re-registrations after a lost lease", {{"host", "1"}})
      .inc();
  reg.gauge("rpm_agent_spill_ring_depth", "Batches parked for catch-up",
            {{"host", "1"}})
      .set(3);
  reg.gauge("rpm_controller_registered_agents",
            "Hosts with a live registration lease")
      .set(16);
  Histogram h = reg.histogram("rpm_agent_reconnect_backoff_delay_ns",
                              "Backoff before re-register/catch-up attempts",
                              {{"host", "1"}});
  h.observe(5e8);
  h.observe(1e9);

  const Snapshot snap = reg.snapshot();
  const std::string prom = to_prometheus(snap);
  EXPECT_NE(prom.find("rpm_agent_lease_expired_total{host=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("rpm_agent_reregistrations_total{host=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("rpm_agent_spill_ring_depth{host=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("rpm_controller_registered_agents 16\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE rpm_agent_reconnect_backoff_delay_ns summary"),
            std::string::npos);
  EXPECT_NE(
      prom.find("rpm_agent_reconnect_backoff_delay_ns_count{host=\"1\"} 2\n"),
      std::string::npos);

  const std::string json = to_json(snap);
  for (const char* name :
       {"rpm_agent_lease_expired_total", "rpm_agent_reregistrations_total",
        "rpm_agent_spill_ring_depth", "rpm_controller_registered_agents",
        "rpm_agent_reconnect_backoff_delay_ns"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + name + "\""),
              std::string::npos)
        << name;
  }
}

TEST(Export, PrometheusEscapesHostileLabelValues) {
  // A label value is free text (file paths, service names, summaries): the
  // exposition format requires \, ", and newline escaped, or one hostile
  // value corrupts the whole scrape.
  MetricsRegistry reg;
  reg.counter("t_hostile_total", "Help with \\ backslash\nand newline",
              {{"path", "C:\\temp\n\"quoted\""}})
      .inc();
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(
      text.find("t_hostile_total{path=\"C:\\\\temp\\n\\\"quoted\\\"\"} 1\n"),
      std::string::npos)
      << text;
  // HELP text escapes backslash and newline (quotes stay literal there).
  EXPECT_NE(
      text.find("# HELP t_hostile_total Help with \\\\ backslash\\nand "
                "newline\n"),
      std::string::npos)
      << text;
  // No raw newline survives inside any line: every '\n' starts a full
  // "name...", "# ..." or empty-tail line.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    EXPECT_TRUE(line[0] == '#' || line.rfind("t_hostile_total", 0) == 0)
        << "corrupted line: " << line;
  }
}

TEST(Export, HelpAndTypeEmittedOncePerFamily) {
  MetricsRegistry reg;
  reg.counter("t_family_total", "fam", {{"id", "0"}}).inc();
  reg.counter("t_family_total", "fam", {{"id", "1"}}).inc(2);
  reg.counter("t_family_total", "fam", {{"id", "2"}}).inc(3);
  const std::string text = to_prometheus(reg.snapshot());
  const auto count = [&text](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("# HELP t_family_total"), 1u);
  EXPECT_EQ(count("# TYPE t_family_total"), 1u);
  EXPECT_EQ(count("t_family_total{id="), 3u);
}

TEST(Export, DeterministicAcrossIdenticalRegistries) {
  MetricsRegistry a;
  MetricsRegistry b;
  EXPECT_EQ(to_prometheus(golden_registry(a).snapshot()),
            to_prometheus(golden_registry(b).snapshot()));
  EXPECT_EQ(to_json(a.snapshot()), to_json(b.snapshot()));
}

// ---- periodic dumper on the sim clock ----

TEST(Export, PeriodicDumperFollowsSimClock) {
  sim::InlineScheduler sched;
  MetricsRegistry reg;
  Counter ticks = reg.counter("t_ticks_total", "ticks");
  std::vector<std::string> dumps;
  PeriodicDumper dumper(
      sched, sec(1), [&dumps](const std::string& text) {
        dumps.push_back(text);
      },
      ExportFormat::kPrometheus, &reg);
  dumper.start(sec(1));
  ticks.inc(5);
  sched.run_until(sec(3));
  EXPECT_EQ(dumper.dumps(), 3u);
  ASSERT_EQ(dumps.size(), 3u);
  EXPECT_NE(dumps.back().find("t_ticks_total 5\n"), std::string::npos);
  dumper.stop();
  sched.run_until(sec(10));
  EXPECT_EQ(dumper.dumps(), 3u);
}

// ---- trace spans ----

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.begin_span("x", "c"), 0u);
  t.end_span(0);
  t.instant("x", "c");
  t.async_begin("x", "c", 1);
  EXPECT_EQ(t.num_events(), 0u);
}

TEST(Tracer, NestedSpansEmitCompleteEventsWithDepth) {
  Tracer t;
  TimeNs sim_now = 0;
  t.enable([&sim_now] { return sim_now; });
  sim_now = usec(10);
  const auto outer = t.begin_span("period", "analyzer");
  const auto inner = t.begin_span("classify", "analyzer");
  ASSERT_NE(outer, 0u);
  ASSERT_NE(inner, 0u);
  t.end_span(inner);
  t.end_span(outer);
  EXPECT_EQ(t.num_events(), 2u);
  const std::string json = t.chrome_json();
  // Inner span ends first and sits at depth 1; outer at depth 0.
  EXPECT_NE(json.find("\"name\":\"classify\",\"cat\":\"analyzer\","
                      "\"ph\":\"X\",\"pid\":1,\"tid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"period\",\"cat\":\"analyzer\","
                      "\"ph\":\"X\",\"pid\":1,\"tid\":0"),
            std::string::npos);
  // ts is simulated microseconds: 10us.
  EXPECT_NE(json.find("\"ts\":10.000"), std::string::npos);
}

TEST(Tracer, EndingOuterSpanClosesAbandonedInnerSpans) {
  Tracer t;
  t.enable([] { return TimeNs{0}; });
  const auto outer = t.begin_span("outer", "c");
  (void)t.begin_span("inner", "c");  // never explicitly ended
  t.end_span(outer);
  EXPECT_EQ(t.num_events(), 2u);  // both emitted
}

TEST(Tracer, AsyncSpansCarryIdAndSimDuration) {
  Tracer t;
  TimeNs sim_now = 0;
  t.enable([&sim_now] { return sim_now; });
  t.async_begin("probe", "tormesh", 42);
  sim_now = usec(5);
  t.async_end("probe", "tormesh", 42);
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"42\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":5.000"), std::string::npos);
}

TEST(Tracer, ChromeJsonIsStructurallyBalanced) {
  Tracer t;
  t.enable([] { return TimeNs{0}; });
  const auto s = t.begin_span("a\"quoted\"", "c\\slash");
  t.instant("marker", "fault");
  t.end_span(s);
  const std::string json = t.chrome_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"g\""), std::string::npos);
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Histogram, ConcurrentObserveIsThreadSafe) {
  // Histogram::observe is documented thread-safe (guarded by a per-series
  // mutex) since the Analyzer's ingest worker pool observes off the sim
  // thread. Hammer one series from several threads — under TSan this is the
  // race detector's target; everywhere it must not lose a single sample.
  MetricsRegistry reg;
  Histogram h = reg.histogram("t_concurrent_ns", "concurrent observes");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  constexpr double kValue = 100.0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(kValue);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), kThreads * kPerThread * kValue);
  const Snapshot snap = reg.snapshot();
  const SeriesSample* s = snap.find("t_concurrent_ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->hist_count, h.count());
}

TEST(Tracer, BoundedBufferCountsDrops) {
  Tracer t;
  t.enable([] { return TimeNs{0}; });
  t.set_max_events(2);
  t.instant("a", "c");
  t.instant("b", "c");
  t.instant("c", "c");
  EXPECT_EQ(t.num_events(), 2u);
  EXPECT_EQ(t.dropped_events(), 1u);
  t.clear();
  EXPECT_EQ(t.num_events(), 0u);
  EXPECT_EQ(t.dropped_events(), 0u);
}

}  // namespace
}  // namespace rpm::telemetry
