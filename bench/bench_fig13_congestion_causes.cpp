// Figure 13 reproduction: the two most common congestion causes R-Pingmesh
// found in production, each built as a workload and localized by the
// Analyzer's high-RTT voting.
//
//  (a) ToR switch DOWNLINK congestion from many-to-one incast;
//  (b) ToR switch UPLINK congestion from an ECMP hash collision between
//      elephant flows.
#include "bench_util.h"

namespace rpm {
namespace {

void incast_case() {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = usec(200);
  bench::Deployment d(bench::default_clos(), ccfg);
  traffic::DmlConfig dml;
  dml.service = ServiceId{1};
  dml.workers = {RnicId{0}, RnicId{4}, RnicId{8}, RnicId{12}};  // 3 -> 1
  dml.pattern = traffic::CommPattern::kIncast;
  dml.per_flow_gbps = 55.0;  // 165G offered into a 100G downlink
  dml.compute_time = msec(50);
  dml.comm_bytes = 800'000'000;
  traffic::DmlService svc(d.cluster, dml);
  svc.start();
  d.cluster.run_for(sec(41));

  const LinkId truth = d.cluster.topology().rnic(RnicId{0}).downlink;
  const auto* rep = d.rpm.analyzer().last_report();
  const auto* p =
      bench::find_problem(*rep, core::ProblemCategory::kHighNetworkRtt);
  bench::print_header("Figure 13 (a): many-to-one incast congestion");
  std::printf("ground truth bottleneck : %s (ToR downlink)\n",
              d.cluster.topology().link(truth).name.c_str());
  if (p != nullptr && !p->suspect_links.empty()) {
    bool correct = false;
    for (LinkId l : p->suspect_links) correct |= (l == truth);
    std::printf("analyzer hottest link   : %s (%s, %zu hot probes)\n",
                d.cluster.topology().link(p->suspect_links.front()).name.c_str(),
                correct ? "CORRECT" : "different", p->anomalous_probes);
  } else {
    std::printf("analyzer                : no congestion problem reported\n");
  }
  svc.stop();
}

void hash_collision_case() {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = usec(200);
  bench::Deployment d(bench::default_clos(), ccfg);
  auto& fab = d.cluster.fabric();
  // Two elephants from hosts under the same ToR to remote ToRs; scan source
  // ports until both hash onto the SAME ToR uplink.
  const RnicId a{0}, b{2}, dst1{8}, dst2{10};
  FiveTuple t1;
  t1.src_ip = d.cluster.topology().rnic(a).ip;
  t1.dst_ip = d.cluster.topology().rnic(dst1).ip;
  t1.src_port = 7001;
  const LinkId shared = fab.current_path(a, dst1, t1).links[1];
  std::uint16_t port2 = 7002;
  for (;; ++port2) {
    FiveTuple t2;
    t2.src_ip = d.cluster.topology().rnic(b).ip;
    t2.dst_ip = d.cluster.topology().rnic(dst2).ip;
    t2.src_port = port2;
    if (fab.current_path(b, dst2, t2).links[1] == shared) break;
  }

  traffic::DmlConfig s1;
  s1.service = ServiceId{1};
  s1.workers = {a, dst1};
  s1.per_flow_gbps = 70.0;
  s1.compute_time = msec(50);
  s1.comm_bytes = 900'000'000;
  s1.base_port = t1.src_port;
  traffic::DmlConfig s2 = s1;
  s2.service = ServiceId{2};
  s2.workers = {b, dst2};
  s2.base_port = port2;
  traffic::DmlService svc1(d.cluster, s1);
  traffic::DmlService svc2(d.cluster, s2);
  svc1.start();
  svc2.start();
  d.cluster.run_for(sec(41));

  const auto* rep = d.rpm.analyzer().last_report();
  bench::print_header(
      "Figure 13 (b): ECMP hash collision on a ToR uplink (140G offered on "
      "100G)");
  std::printf("ground truth bottleneck : %s (ToR uplink)\n",
              d.cluster.topology().link(shared).name.c_str());
  bool any = false;
  for (const auto& p : rep->problems) {
    if (p.category != core::ProblemCategory::kHighNetworkRtt) continue;
    any = true;
    bool correct = false;
    for (LinkId l : p.suspect_links) correct |= (l == shared);
    std::printf(
        "analyzer (%s svc %u)    : hottest %s (%s)\n",
        p.detected_by_service_tracing ? "tracing" : "cluster",
        p.service.valid() ? p.service.value : 0,
        p.suspect_links.empty()
            ? "-"
            : d.cluster.topology().link(p.suspect_links.front()).name.c_str(),
        correct ? "CORRECT" : "different");
  }
  if (!any) std::printf("analyzer                : no congestion reported\n");
  std::printf(
      "\nRemediation (§7.3): the service reroutes the colliding flow by "
      "changing its source\nport via modify_qp — demonstrated in "
      "examples/service_tracing_loadbalance.\n");
  svc1.stop();
  svc2.stop();
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::incast_case();
  rpm::hash_collision_case();
  return 0;
}
