// Ablation (§7.4 discussion): Traceroute vs INT path tracing.
//
// Traceroute consumes switch CPU, so switches cap their response rate; the
// Agent falls back to cached (possibly stale or absent) paths, which starves
// Algorithm 1 of evidence. INT is stamped by the data plane: every probe
// record carries a fresh path. We localize the same switch fault under a
// harshly rate-limited control plane and compare.
#include "bench_util.h"

namespace rpm {
namespace {

struct Result {
  std::size_t records = 0;
  std::size_t with_paths = 0;
  bool localized = false;
  bool correct = false;
};

Result run(bool use_int, double traceroute_budget_per_sec) {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = msec(1);
  ccfg.traceroute_responses_per_sec = traceroute_budget_per_sec;
  core::RPingmeshConfig rcfg;
  rcfg.agent.use_int_telemetry = use_int;
  bench::Deployment d(bench::default_clos(), ccfg, rcfg);

  Result res;
  d.rpm.analyzer().set_record_tap([&](const core::ProbeRecord& r) {
    ++res.records;
    if (r.path_known) ++res.with_paths;
  });

  d.cluster.run_for(sec(21));
  LinkId victim;
  std::size_t seen = 0;
  for (const topo::Link& l : d.cluster.topology().links()) {
    if (l.from.is_switch() && l.to.is_switch() && seen++ == 2) {
      victim = l.id;
      break;
    }
  }
  d.faults.inject_corruption(victim, 0.6);
  d.cluster.run_for(sec(41));

  const auto* p = bench::find_problem(
      *d.rpm.analyzer().last_report(),
      core::ProblemCategory::kSwitchNetworkProblem);
  if (p != nullptr) {
    res.localized = !p->suspect_links.empty();
    const LinkId peer = d.cluster.topology().link(victim).peer;
    for (LinkId l : p->suspect_links) {
      if (l == victim || l == peer) res.correct = true;
    }
  }
  return res;
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::bench::print_header(
      "Ablation: Traceroute vs INT path tracing under a starved switch "
      "control plane (2 traceroute responses/s per switch)");
  rpm::bench::print_row_header({"tracer", "records_with_path", "localized",
                                "correct_link"});
  for (const bool use_int : {false, true}) {
    const rpm::Result r = rpm::run(use_int, 2.0);
    char frac[32];
    std::snprintf(frac, sizeof frac, "%.1f%%",
                  r.records ? 100.0 * r.with_paths / r.records : 0.0);
    std::printf("%-22s%-22s%-22s%-22s\n", use_int ? "INT" : "traceroute",
                frac, r.localized ? "yes" : "NO",
                r.correct ? "yes" : "NO");
  }
  std::printf(
      "\nTakeaway: with the control plane rate-limited, traceroute leaves "
      "most records\npathless and localization degrades or fails; INT keeps "
      "every record traced. This is\nwhy the paper decoupled its path-tracing "
      "module (§7.4).\n");
  return 0;
}
