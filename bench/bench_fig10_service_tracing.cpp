// Figure 10 reproduction: Service Tracing probes sent by one RNIC capture
// the periodic All2All traffic of a DML job — RTT spikes exactly during the
// communication phases and returns to baseline during compute, at a modest
// 10 ms probing interval (thanks to per-round pinglist shuffling, §7.3).
#include "bench_util.h"
#include "common/stats.h"

namespace rpm {
namespace {

void run() {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = usec(200);
  bench::Deployment d(bench::default_clos(), ccfg);

  traffic::DmlConfig dml;
  dml.service = ServiceId{1};
  dml.workers = {RnicId{0}, RnicId{2}, RnicId{4}, RnicId{6},
                 RnicId{8}, RnicId{10}, RnicId{12}, RnicId{14}};
  dml.pattern = traffic::CommPattern::kAllToAll;
  dml.per_flow_gbps = 13.0;  // 7 flows/NIC: near line rate during comm
  dml.compute_time = msec(1000);
  dml.comm_bytes = 800'000'000;  // ~0.5 s comm phase
  traffic::DmlService svc(d.cluster, dml);

  // Tap service-tracing probes from one RNIC; bucket RTT per 100 ms.
  struct Bucket {
    PercentileWindow rtt;
    bool comm = false;
  };
  std::vector<Bucket> buckets(80);  // 8 s of 100 ms buckets
  const TimeNs t0 = sec(5);
  d.rpm.analyzer().set_record_tap([&](const core::ProbeRecord& r) {
    if (r.kind != core::ProbeKind::kServiceTracing) return;
    if (r.prober != RnicId{0}) return;
    if (r.status != core::ProbeStatus::kOk) return;
    const auto idx = static_cast<std::size_t>((r.sent_at - t0) / msec(100));
    if (idx < buckets.size()) {
      buckets[idx].rtt.add(static_cast<double>(r.network_rtt));
    }
  });

  svc.start();
  d.cluster.run_for(t0);
  // Mark comm phases while running.
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    d.cluster.run_for(msec(100));
    buckets[i].comm = svc.in_comm_phase();
  }

  bench::print_header(
      "Figure 10: per-100ms service-tracing RTT from one RNIC during "
      "periodic All2All");
  bench::print_row_header({"t_ms", "phase", "probes", "rtt_max_us"});
  for (std::size_t i = 0; i < buckets.size(); i += 2) {
    // Merge two buckets per row to keep the table compact.
    PercentileWindow merged;
    merged = buckets[i].rtt;
    const double mx = std::max(buckets[i].rtt.percentile(1.0),
                               buckets[i + 1].rtt.percentile(1.0));
    const bool comm = buckets[i].comm || buckets[i + 1].comm;
    std::printf("%-22zu%-22s%-22zu%-22.1f\n", i * 100,
                comm ? "COMM" : "compute",
                buckets[i].rtt.count() + buckets[i + 1].rtt.count(), mx / 1e3);
  }

  // Quantify the separation: tail RTT during comm vs compute.
  PercentileWindow comm_rtt, idle_rtt;
  for (auto& b : buckets) {
    for (double q : {0.5, 0.9, 1.0}) {
      if (b.rtt.count() == 0) continue;
      (b.comm ? comm_rtt : idle_rtt).add(b.rtt.percentile(q));
    }
  }
  std::printf(
      "\ncomm-phase RTT p90 = %.1f us  vs  compute-phase RTT p90 = %.1f us\n",
      comm_rtt.percentile(0.9) / 1e3, idle_rtt.percentile(0.9) / 1e3);
  std::printf(
      "Takeaway: probes riding the service 5-tuples light up exactly when "
      "All2All\ncommunication does — hotspots are observable at 10 ms "
      "probing without 1 ms overkill.\n");
  svc.stop();
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::run();
  return 0;
}
