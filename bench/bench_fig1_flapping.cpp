// Figure 1 reproduction: a single flapping switch port (top panel) or RNIC
// (bottom panel) severely degrades the average training throughput of the
// whole DML cluster — dropping to zero during down phases — even though only
// one of the four ring flows crosses the flapping element (barrel effect).
//
// Paper shape to reproduce: throughput ~1.0 before the flap; collapsing
// (min reaching ~0) while flapping; full recovery after repair.
#include "bench_util.h"

namespace rpm {
namespace {

void print_window(bench::Deployment& d, traffic::DmlService& svc, int seconds,
                  int& t) {
  for (int s = 0; s < seconds; ++s, ++t) {
    // Average/min over 10 samples inside the second (the flap beat is
    // faster than 1 Hz).
    double sum = 0.0, mn = 1e9, net = 0.0;
    for (int k = 0; k < 10; ++k) {
      d.cluster.run_for(msec(100));
      const double tp = svc.relative_throughput();
      sum += tp;
      mn = std::min(mn, tp);
      net += svc.avg_network_throughput_Bps() * 8e-9;
    }
    std::printf("%-22d%-22.3f%-22.3f%-22.1f%-22s\n", t, sum / 10.0, mn,
                net / 10.0, svc.failed() ? "YES" : "no");
  }
}

void run_panel(const char* title, bool flap_rnic) {
  bench::Deployment d;
  traffic::DmlConfig dml;
  dml.service = ServiceId{1};
  dml.workers = {RnicId{0}, RnicId{4}, RnicId{8}, RnicId{12}};
  dml.pattern = traffic::CommPattern::kAllReduceRing;
  dml.per_flow_gbps = 40.0;
  dml.compute_time = msec(300);
  dml.comm_bytes = 250'000'000;  // 50 ms at 40G
  // Ops mitigation already applied (§7.1 #1): retries at the max and a large
  // retransmit timeout, so the task survives the flaps — but throughput
  // still collapses during every down phase.
  dml.rc_max_retries = 7;
  dml.rc_retransmit_timeout = msec(600);
  traffic::DmlService svc(d.cluster, dml);
  d.rpm.watch_service(
      {dml.service, [&svc] { return svc.relative_throughput(); }});
  svc.start();
  d.cluster.run_for(sec(5));

  bench::print_header(title);
  bench::print_row_header(
      {"time_s", "tp_avg", "tp_min", "avg_net_Gbps", "failed"});
  int t = 0;
  print_window(d, svc, 5, t);  // healthy baseline

  // Flap: 3 s down / 1 s up (inside the 7 x 600 ms retry budget).
  int handle = 0;
  if (flap_rnic) {
    handle = d.faults.inject_rnic_flapping(RnicId{4}, msec(3000), msec(1000));
  } else {
    const auto path =
        d.cluster.fabric().flow_path(svc.connections()[1].flow);
    handle = d.faults.inject_switch_port_flapping(path.links[1], msec(3000),
                                                  msec(1000));
  }
  std::printf("-- flapping starts --\n");
  print_window(d, svc, 20, t);
  d.faults.clear(handle);
  std::printf("-- flapping repaired --\n");
  print_window(d, svc, 5, t);
  svc.stop();
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::run_panel("Figure 1 (top): flapping SWITCH PORT vs DML throughput",
                 /*flap_rnic=*/false);
  rpm::run_panel("Figure 1 (bottom): flapping RNIC vs DML throughput",
                 /*flap_rnic=*/true);
  return 0;
}
