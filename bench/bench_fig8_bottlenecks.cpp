// Figure 8 reproduction.
//
// (left)  CPU overload on some hosts shows up as high END-HOST PROCESSING
//         DELAY while network RTT stays flat: R-Pingmesh separates the two
//         because it measures them independently (④-③ vs (⑤-②)-(④-③)).
// (right) An intra-host bandwidth bottleneck (PCIe downgrade) makes the RNIC
//         assert PFC; the congestion tree raises the P99 NETWORK RTT seen by
//         Service Tracing and ToR-mesh probes to the sick RNIC.
#include "bench_util.h"

namespace rpm {
namespace {

void left_panel() {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = msec(1);
  bench::Deployment d(bench::default_clos(), ccfg);
  d.cluster.run_for(sec(21));

  bench::print_header(
      "Figure 8 (left): CPU overload -> processing delay, NOT network RTT");
  bench::print_row_header(
      {"period", "overload", "proc_p99_ms", "rtt_p99_us", "verdict"});
  int handle = -1;
  for (int period = 1; period <= 6; ++period) {
    if (period == 3) handle = d.faults.inject_cpu_overload(HostId{1}, 0.97);
    if (period == 5) d.faults.clear(handle);
    d.cluster.run_for(sec(20));
    const auto* rep = d.rpm.analyzer().last_report();
    const auto* p =
        bench::find_problem(*rep, core::ProblemCategory::kHighProcessingDelay);
    std::printf("%-22d%-22s%-22.2f%-22.1f%s\n", period,
                (period >= 3 && period < 5) ? "ON" : "off",
                rep->cluster_sla.proc_p99 / 1e6, rep->cluster_sla.rtt_p99 / 1e3,
                p != nullptr ? p->summary.c_str() : "-");
  }
}

void right_panel() {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = usec(200);
  bench::Deployment d(bench::default_clos(), ccfg);

  // Service traffic into the soon-to-be-sick RNIC keeps its downlink busy.
  traffic::DmlConfig dml;
  dml.service = ServiceId{1};
  dml.workers = {RnicId{4}, RnicId{0}, RnicId{8}};
  dml.pattern = traffic::CommPattern::kIncast;
  dml.per_flow_gbps = 30.0;
  dml.compute_time = msec(50);
  dml.comm_bytes = 500'000'000;
  traffic::DmlService svc(d.cluster, dml);
  d.rpm.watch_service(
      {dml.service, [&svc] { return svc.relative_throughput(); }});
  svc.start();
  d.cluster.run_for(sec(21));

  bench::print_header(
      "Figure 8 (right): PCIe downgrade -> PFC storm -> high P99 network RTT");
  bench::print_row_header(
      {"period", "downgrade", "svc_rtt_p99_us", "proc_p99_ms", "verdict"});
  int handle = -1;
  for (int period = 1; period <= 6; ++period) {
    if (period == 3) handle = d.faults.inject_pcie_downgrade(RnicId{4}, 0.25);
    if (period == 5) d.faults.clear(handle);
    d.cluster.run_for(sec(20));
    const auto* rep = d.rpm.analyzer().last_report();
    double svc_rtt = 0;
    for (const auto& [sid, sla] : rep->service_slas) {
      if (sid == dml.service) svc_rtt = sla.rtt_p99 / 1e3;
    }
    const auto* p =
        bench::find_problem(*rep, core::ProblemCategory::kHighNetworkRtt);
    std::printf("%-22d%-22s%-22.1f%-22.2f%s\n", period,
                (period >= 3 && period < 5) ? "ON" : "off", svc_rtt,
                rep->cluster_sla.proc_p99 / 1e6,
                p != nullptr ? p->summary.c_str() : "-");
  }
  svc.stop();
  std::printf(
      "\nTakeaway: the two bottleneck families are separable — CPU overload "
      "moves only the\nprocessing-delay metric; the PFC storm moves only the "
      "network-RTT metric.\n");
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::left_panel();
  rpm::right_panel();
  return 0;
}
