// Micro-benchmarks (google-benchmark) for the hot paths of the simulator
// and the R-Pingmesh pipeline: 5-tuple hashing, ECMP resolution, fabric
// fluid steps, packet sends, a full Analyzer period, and the telemetry
// primitives sprinkled through all of the above.
#include <any>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/analyzer.h"
#include "core/controller.h"
#include "fabric/fabric.h"
#include "host/cluster.h"
#include "obs/flight_recorder.h"
#include "routing/ecmp.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "topo/topology.h"
#include "transport/transport.h"

namespace rpm {
namespace {

topo::ClosConfig bench_clos() {
  topo::ClosConfig cfg;
  cfg.num_pods = 4;
  cfg.tors_per_pod = 4;
  cfg.aggs_per_pod = 4;
  cfg.spines_per_plane = 4;
  cfg.hosts_per_tor = 4;
  cfg.rnics_per_host = 2;
  return cfg;
}

void BM_FiveTupleHash(benchmark::State& state) {
  FiveTuple t;
  t.src_ip = IpAddr{0x0A000001};
  t.dst_ip = IpAddr{0x0A00F001};
  std::uint16_t port = 0;
  for (auto _ : state) {
    t.src_port = ++port;
    benchmark::DoNotOptimize(t.stable_hash());
  }
}
BENCHMARK(BM_FiveTupleHash);

void BM_EcmpResolve(benchmark::State& state) {
  const topo::Topology topo = topo::build_clos(bench_clos());
  const routing::EcmpRouter router(topo);
  FiveTuple t;
  t.src_ip = topo.rnic(RnicId{0}).ip;
  t.dst_ip = topo.rnic(RnicId{100}).ip;
  std::uint16_t port = 0;
  for (auto _ : state) {
    t.src_port = ++port;
    benchmark::DoNotOptimize(router.resolve(RnicId{0}, RnicId{100}, t));
  }
}
BENCHMARK(BM_EcmpResolve);

void BM_FabricSend(benchmark::State& state) {
  const topo::Topology topo = topo::build_clos(bench_clos());
  const routing::EcmpRouter router(topo);
  sim::InlineScheduler sched;
  fabric::Fabric fab(topo, router, sched);
  fabric::Datagram d;
  d.src = RnicId{0};
  d.dst = RnicId{100};
  d.tuple.src_ip = topo.rnic(d.src).ip;
  d.tuple.dst_ip = topo.rnic(d.dst).ip;
  std::uint16_t port = 0;
  for (auto _ : state) {
    d.tuple.src_port = ++port;
    benchmark::DoNotOptimize(fab.send(d));
  }
}
BENCHMARK(BM_FabricSend);

void BM_FluidStep(benchmark::State& state) {
  const topo::Topology topo = topo::build_clos(bench_clos());
  const routing::EcmpRouter router(topo);
  sim::InlineScheduler sched;
  fabric::Fabric fab(topo, router, sched);
  // A realistic flow population.
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < flows; ++i) {
    fabric::FlowSpec f;
    f.src = RnicId{i % static_cast<std::uint32_t>(topo.num_rnics())};
    f.dst = RnicId{(i * 37 + 11) % static_cast<std::uint32_t>(topo.num_rnics())};
    if (f.src == f.dst) f.dst = RnicId{(f.dst.value + 1) %
                                       static_cast<std::uint32_t>(topo.num_rnics())};
    f.tuple.src_ip = topo.rnic(f.src).ip;
    f.tuple.dst_ip = topo.rnic(f.dst).ip;
    f.tuple.src_port = static_cast<std::uint16_t>(1000 + i);
    f.demand_Bps = gbps_to_Bps(10);
    fab.add_flow(f);
  }
  for (auto _ : state) {
    fab.step_once();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidStep)->Arg(16)->Arg(128)->Arg(512);

void BM_Equation1(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::equation1_min_tuples(n, 0.99));
  }
}
BENCHMARK(BM_Equation1)->Arg(4)->Arg(32)->Arg(128);

void BM_AnalyzerPeriod(benchmark::State& state) {
  const topo::Topology topo = topo::build_clos(bench_clos());
  const routing::EcmpRouter router(topo);
  sim::InlineScheduler sched;
  core::Controller ctrl(topo, router);
  // Register everything so QPN checks hit the registry.
  for (const topo::HostInfo& h : topo.hosts()) {
    std::vector<core::RnicCommInfo> infos;
    for (RnicId r : h.rnics) {
      infos.push_back({r, topo.rnic(r).ip, Gid{r.value + 1}, Qpn{0x100}});
    }
    ctrl.register_agent(h.id, infos);
  }
  core::Analyzer analyzer(topo, ctrl, sched);

  // Synthesize a period's worth of records (~the paper's scale per 20 s for
  // this cluster size).
  const auto n_records = static_cast<std::size_t>(state.range(0));
  std::vector<core::ProbeRecord> batch;
  Rng rng(5);
  for (std::size_t i = 0; i < n_records; ++i) {
    core::ProbeRecord r;
    r.id = i;
    r.kind = core::ProbeKind::kTorMesh;
    r.prober = RnicId{static_cast<std::uint32_t>(rng.index(topo.num_rnics()))};
    const auto& peers = topo.rnics_under_tor(topo.rnic(r.prober).tor);
    r.target = peers[rng.index(peers.size())];
    r.prober_host = topo.rnic(r.prober).host;
    r.target_qpn = Qpn{0x100};
    r.status = rng.chance(0.01) ? core::ProbeStatus::kTimeout
                                : core::ProbeStatus::kOk;
    r.network_rtt = usec(5);
    r.responder_delay = usec(8);
    batch.push_back(r);
  }
  for (auto _ : state) {
    state.PauseTiming();
    analyzer.upload(HostId{0}, batch);
    state.ResumeTiming();
    benchmark::DoNotOptimize(analyzer.analyze_now());
  }
  state.SetItemsProcessed(state.iterations() * n_records);
}
BENCHMARK(BM_AnalyzerPeriod)->Arg(10000)->Arg(50000);

// Full per-message cost of the control-plane transport on a clean channel:
// send + scheduled delivery + handler + ack + (no-op) retry timer — the
// events every Agent upload and Controller RPC pays.
void BM_TransportSendDeliver(benchmark::State& state) {
  sim::InlineScheduler sched;
  transport::ControlPlane cp(sched, Rng(9));
  std::uint64_t delivered = 0;
  transport::Channel& ch = cp.make_channel(
      "bench.ch",
      [&](std::uint64_t, std::any&) { ++delivered; });
  for (auto _ : state) {
    ch.send(std::any(std::uint64_t{1}));
    sched.run_all();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransportSendDeliver);

// Cost of a full peer outage cycle on a channel with traffic in flight:
// messages sent against a down peer burn their (jittered) retry schedule
// and expire, then the peer recovers and a fresh send delivers — the path
// every Agent upload channel takes through an Analyzer brownout.
void BM_TransportPeerOutage(benchmark::State& state) {
  sim::InlineScheduler sched;
  transport::ControlPlane cp(sched, Rng(9));
  std::uint64_t delivered = 0;
  transport::Channel& ch = cp.make_channel(
      "bench.outage", [&](std::uint64_t, std::any&) { ++delivered; });
  for (auto _ : state) {
    ch.set_peer_down(true);
    for (int i = 0; i < 8; ++i) ch.send(std::any(std::uint64_t{1}));
    sched.run_all();  // all eight expire through the backoff schedule
    ch.set_peer_down(false);
    ch.send(std::any(std::uint64_t{2}));
    sched.run_all();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * 9);
}
BENCHMARK(BM_TransportPeerOutage);

// Sharded vs single-bucket Analyzer ingestion: range(0) buckets receiving
// range(1) records (spread over per-host batches), merged at period close.
void BM_AnalyzerShardedIngest(benchmark::State& state) {
  const topo::Topology topo = topo::build_clos(bench_clos());
  const routing::EcmpRouter router(topo);
  sim::InlineScheduler sched;
  core::Controller ctrl(topo, router);
  core::AnalyzerConfig cfg;
  cfg.ingest.shards = static_cast<std::size_t>(state.range(0));
  core::Analyzer analyzer(topo, ctrl, sched, cfg);

  const auto n_records = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kBatch = 128;  // records per upload message
  core::ProbeRecord proto;
  proto.kind = core::ProbeKind::kTorMesh;
  proto.prober = RnicId{0};
  proto.target = RnicId{1};
  proto.status = core::ProbeStatus::kOk;
  proto.network_rtt = usec(5);

  std::uint64_t seq = 1;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<core::UploadBatch> batches;
    for (std::size_t done = 0; done < n_records; done += kBatch) {
      core::UploadBatch b;
      b.host = HostId{static_cast<std::uint32_t>(
          (done / kBatch) % topo.hosts().size())};
      b.seq = seq++;
      b.records.assign(std::min(kBatch, n_records - done), proto);
      batches.push_back(std::move(b));
    }
    state.ResumeTiming();
    for (core::UploadBatch& b : batches) {
      analyzer.sink().submit(std::move(b));
    }
    benchmark::DoNotOptimize(analyzer.analyze_now());  // includes the merge
  }
  state.SetItemsProcessed(state.iterations() * n_records);
}
BENCHMARK(BM_AnalyzerShardedIngest)
    ->Args({1, 10000})
    ->Args({8, 10000})
    ->Args({1, 100000})
    ->Args({8, 100000});

// Inline vs worker-pool ingestion throughput on the bare IngestSink:
// range(0) worker threads (0 = inline backend) ingesting range(1) records
// in 128-record batches spread over 64 hosts / 8 shards, then the
// period-close drain (the pool's barrier + merge included). The acceptance
// bar for the pool: >= 2x inline throughput at 4 threads on 100k records —
// this needs >= 2 physical cores. On a single-core host (some CI runners)
// real_time cannot beat inline no matter the thread count; there the win
// shows in the CPU column instead, which only charges the submitting
// thread: it roughly halves at threads >= 1 because dedup + bucket append
// moved off the sim thread.
void BM_IngestWorkerPool(benchmark::State& state) {
  core::IngestConfig cfg;
  cfg.shards = 8;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  cfg.queue_capacity = 1 << 16;  // never shed load in the bench
  auto sink = core::make_ingest_sink(cfg, {});

  const auto n_records = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kBatch = 128;  // records per upload message
  core::ProbeRecord proto;
  proto.kind = core::ProbeKind::kTorMesh;
  proto.prober = RnicId{0};
  proto.target = RnicId{1};
  proto.status = core::ProbeStatus::kOk;
  proto.network_rtt = usec(5);

  std::uint64_t seq = 1;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<core::UploadBatch> batches;
    for (std::size_t done = 0; done < n_records; done += kBatch) {
      core::UploadBatch b;
      b.host = HostId{static_cast<std::uint32_t>((done / kBatch) % 64)};
      b.seq = seq++;
      b.records.assign(std::min(kBatch, n_records - done), proto);
      batches.push_back(std::move(b));
    }
    state.ResumeTiming();
    for (core::UploadBatch& b : batches) sink->submit(std::move(b));
    benchmark::DoNotOptimize(sink->drain_period());  // barrier + merge
  }
  state.SetItemsProcessed(state.iterations() * n_records);
}
BENCHMARK(BM_IngestWorkerPool)
    ->Args({0, 10000})
    ->Args({1, 10000})
    ->Args({2, 10000})
    ->Args({4, 10000})
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Args({2, 100000})
    ->Args({4, 100000})
    ->UseRealTime();

// The Agent's per-probe hot path pays one begin_probe + ~7 record() calls.
// range(0) is the sampling rate in per-mille (0, 1, 1000); -1 benchmarks the
// recorder left disabled, which must collapse every call to a single branch
// (the <2% overhead budget of the observability layer).
void BM_FlightRecorderProbePath(benchmark::State& state) {
  obs::FlightRecorder rec;
  if (state.range(0) >= 0) {
    obs::FlightRecorderConfig cfg;
    cfg.sample_rate = static_cast<double>(state.range(0)) / 1000.0;
    cfg.capacity = 4096;
    rec.enable(cfg);
  }
  std::uint64_t id = 0;
  for (auto _ : state) {
    ++id;
    // Mirrors the real instrumentation: every per-event call site is guarded
    // by the cached sampling decision (ProbeRecord::flight_sampled /
    // Datagram::trace_id != 0), so unsampled probes pay only begin_probe.
    const bool sampled = rec.begin_probe(id, "tor-mesh", id);
    if (sampled) {
      rec.record(id, obs::ProbeEventKind::kVerbsPost);
      rec.record(id, obs::ProbeEventKind::kSendCqe, id);
      rec.record(id, obs::ProbeEventKind::kHop, 1, 2);
      rec.record(id, obs::ProbeEventKind::kHop, 2, 2);
      rec.record(id, obs::ProbeEventKind::kResponderRecv, id);
      rec.record(id, obs::ProbeEventKind::kProberAckCqe, id);
      rec.record(id, obs::ProbeEventKind::kCompleted, 5000, 8000);
    }
    benchmark::DoNotOptimize(sampled);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderProbePath)->Arg(-1)->Arg(0)->Arg(1)->Arg(1000);

// The instrumented hot paths above pay one of these per event; the increment
// must stay in the low nanoseconds (one relaxed atomic add through a cached
// handle) for the telemetry layer to be free.
void BM_TelemetryCounterInc(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  const telemetry::Counter c =
      reg.counter("bench_counter_total", "bench", {{"host", "0"}});
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_TelemetryCounterInc);

void BM_TelemetryHistogramObserve(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  const telemetry::Histogram h =
      reg.histogram("bench_rtt_ns", "bench", {{"host", "0"}});
  double v = 1000.0;
  for (auto _ : state) {
    v += 17.0;
    if (v > 1e6) v = 1000.0;
    h.observe(v);
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_TelemetryHistogramObserve);

// Cold path: get-or-create lookup by (name, labels) — what a component pays
// once at construction, never per event.
void BM_TelemetryCounterLookup(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  reg.counter("bench_lookup_total", "bench", {{"host", "42"}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reg.counter("bench_lookup_total", "bench", {{"host", "42"}}));
  }
}
BENCHMARK(BM_TelemetryCounterLookup);

void BM_TelemetrySnapshotExport(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < n; ++i) {
    reg.counter("bench_series_total", "bench", {{"id", std::to_string(i)}})
        .inc(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(telemetry::to_prometheus(reg.snapshot()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TelemetrySnapshotExport)->Arg(100)->Arg(1000);

// Standalone ingest-throughput measurement behind `--ingest-json[=PATH]`:
// the same workload as BM_IngestWorkerPool (100k records, 128-record batches
// over 64 hosts, 8 shards) measured directly and written as
// BENCH_ingest.json — events/sec per thread count plus the period's record
// and wire-byte volume — so re-anchors can see the ingest perf curve without
// running the whole google-benchmark suite.
int write_ingest_json(const std::string& path) {
  constexpr std::size_t kRecords = 100000;
  constexpr std::size_t kBatch = 128;

  core::ProbeRecord proto;
  proto.kind = core::ProbeKind::kTorMesh;
  proto.prober = RnicId{0};
  proto.target = RnicId{1};
  proto.status = core::ProbeStatus::kOk;
  proto.network_rtt = usec(5);

  const auto make_batches = [&](std::uint64_t& seq) {
    std::vector<core::UploadBatch> batches;
    for (std::size_t done = 0; done < kRecords; done += kBatch) {
      core::UploadBatch b;
      b.host = HostId{static_cast<std::uint32_t>((done / kBatch) % 64)};
      b.seq = seq++;
      b.records.assign(std::min(kBatch, kRecords - done), proto);
      batches.push_back(std::move(b));
    }
    return batches;
  };

  std::uint64_t seq = 1;
  std::size_t period_bytes = 0;
  for (const core::UploadBatch& b : make_batches(seq)) {
    period_bytes += core::upload_batch_wire_bytes(b);
  }

  bench::BenchJson out("ingest");
  out.param("records_per_period", static_cast<std::uint64_t>(kRecords))
      .param("batch", static_cast<std::uint64_t>(kBatch))
      .param("hosts", 64)
      .param("shards", 8);
  out.metric("bytes_per_period", static_cast<std::uint64_t>(period_bytes));
  std::string modes = "[";
  bool first = true;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{2}, std::size_t{4}}) {
    core::IngestConfig cfg;
    cfg.shards = 8;
    cfg.threads = threads;
    cfg.queue_capacity = 1 << 16;
    auto sink = core::make_ingest_sink(cfg, {});

    // Warm-up period, then three measured periods.
    for (int rep = 0; rep < 1; ++rep) {
      for (core::UploadBatch& b : make_batches(seq)) sink->submit(std::move(b));
      (void)sink->drain_period();
    }
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      for (core::UploadBatch& b : make_batches(seq)) sink->submit(std::move(b));
      (void)sink->drain_period();
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double eps = static_cast<double>(kRecords * kReps) / secs;

    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s{\"threads\":%zu,\"events_per_sec\":%.0f}",
                  first ? "" : ",", threads, eps);
    modes += buf;
    first = false;
  }
  modes += "]";
  out.metric_raw("modes", modes);

  if (!out.write_file(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s: %s\n", path.c_str(), out.str().c_str());
  return 0;
}

}  // namespace
}  // namespace rpm

int main(int argc, char** argv) {
  // --ingest-json[=PATH] short-circuits into the direct ingest measurement;
  // everything else is standard BENCHMARK_MAIN behavior.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ingest-json") return rpm::write_ingest_json("BENCH_ingest.json");
    if (arg.rfind("--ingest-json=", 0) == 0) {
      return rpm::write_ingest_json(arg.substr(std::strlen("--ingest-json=")));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
