// Upload-volume reduction from switch-side sketch summaries (ROADMAP
// "Switch-side sketch summaries").
//
// Runs the same cluster twice — sketch_mode=off (every probe record shipped
// raw, the historical pipeline) and sketch_mode=on (Agents fold healthy OK
// records into HostSummary sketches, switches export per-link SketchReports)
// — and compares what the Analyzer had to ingest per 20 s period: raw
// records, wire bytes across every control-plane channel, and the ingest
// cost. The ISSUE acceptance bar is a >= 10x reduction in records/period at
// 1k hosts with verdict parity (parity is asserted by
// test_chaos.SketchModeMatchesRawVerdictsOnChaosGroundTruth; this bench
// measures the volume side).
//
// Flags:
//   --hosts N    total hosts (default 1024). Topology: 3-tier Clos, 16
//                hosts/ToR, 4 ToRs/pod => 64 hosts/pod, N/64 pods.
//   --seconds S  simulated seconds per mode (default 45 => 2 full periods)
//   --dump       print only the deterministic JSON (no wall-clock fields)
//                to stdout; CI diffs two same-seed runs of this output.
//   --out PATH   write the full JSON incl. cpu_ms (default BENCH_sketch.json)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "telemetry/metrics.h"

namespace rpm {
namespace {

struct ModeResult {
  std::uint64_t periods = 0;
  std::uint64_t records = 0;       // raw records the Analyzer processed
  std::uint64_t wire_bytes = 0;    // all channels, rpm_transport_bytes_total
  std::uint64_t sketch_reports = 0;
  std::uint64_t folded_records = 0;
  std::uint64_t sla_probes = 0;    // cluster SLA sample count (raw + folded)
  double cpu_ms = 0.0;             // wall time of the simulation run
};

double counter_sum(const char* name) {
  return telemetry::registry().snapshot().sum(name, {});
}

ModeResult run_mode(bool sketch_on, std::uint32_t hosts, int seconds) {
  topo::ClosConfig tcfg;
  tcfg.hosts_per_tor = 16;
  tcfg.tors_per_pod = 4;
  tcfg.aggs_per_pod = 2;
  tcfg.spines_per_plane = 2;
  tcfg.num_pods = hosts / (tcfg.hosts_per_tor * tcfg.tors_per_pod);
  if (tcfg.num_pods == 0) tcfg.num_pods = 1;
  tcfg.rnics_per_host = 1;

  core::RPingmeshConfig rcfg;
  rcfg.analyzer.sketch_mode =
      sketch_on ? core::SketchMode::kOn : core::SketchMode::kOff;

  // The registry is process-global and both modes run in one process, so
  // measure deltas around the run instead of resetting.
  const double bytes0 = counter_sum("rpm_transport_bytes_total");
  const double reports0 = counter_sum("rpm_sketch_reports_total");
  const double folded0 = counter_sum("rpm_agent_upload_folded_total");

  bench::Deployment d(tcfg, {}, rcfg);
  const auto wall0 = std::chrono::steady_clock::now();
  d.cluster.run_for(sec(seconds));
  const auto wall1 = std::chrono::steady_clock::now();

  ModeResult r;
  r.cpu_ms = std::chrono::duration<double, std::milli>(wall1 - wall0).count();
  for (const core::PeriodReport& rep : d.rpm.analyzer().history()) {
    ++r.periods;
    r.records += rep.records_processed;
    r.sla_probes += rep.cluster_sla.probes;
  }
  r.wire_bytes = static_cast<std::uint64_t>(
      counter_sum("rpm_transport_bytes_total") - bytes0);
  r.sketch_reports = static_cast<std::uint64_t>(
      counter_sum("rpm_sketch_reports_total") - reports0);
  r.folded_records = static_cast<std::uint64_t>(
      counter_sum("rpm_agent_upload_folded_total") - folded0);
  return r;
}

std::string mode_json(const ModeResult& r, bool with_cpu) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"periods\":%llu,\"records_per_period\":%llu,"
                "\"bytes_per_period\":%llu,\"sketch_reports\":%llu,"
                "\"folded_records\":%llu,\"sla_probes_per_period\":%llu",
                static_cast<unsigned long long>(r.periods),
                static_cast<unsigned long long>(
                    r.periods == 0 ? 0 : r.records / r.periods),
                static_cast<unsigned long long>(
                    r.periods == 0 ? 0 : r.wire_bytes / r.periods),
                static_cast<unsigned long long>(r.sketch_reports),
                static_cast<unsigned long long>(r.folded_records),
                static_cast<unsigned long long>(
                    r.periods == 0 ? 0 : r.sla_probes / r.periods));
  std::string out = buf;
  if (with_cpu) {
    std::snprintf(buf, sizeof(buf), ",\"cpu_ms\":%.1f", r.cpu_ms);
    out += buf;
  }
  out += "}";
  return out;
}

std::string result_json(std::uint32_t hosts, int seconds,
                        const ModeResult& off, const ModeResult& on,
                        bool with_cpu) {
  // A fault-free cluster folds every record, so guard the denominator: the
  // reduction is then "off.records x" rather than infinity.
  const double rec_x = static_cast<double>(off.records) /
                       static_cast<double>(on.records == 0 ? 1 : on.records);
  const double byte_x =
      static_cast<double>(off.wire_bytes) /
      static_cast<double>(on.wire_bytes == 0 ? 1 : on.wire_bytes);
  char buf[256];
  bench::BenchJson out("sketch_volume");
  out.param("hosts", hosts)
      .param("seconds", static_cast<std::uint64_t>(seconds))
      .param("seed", 7);
  out.metric_raw("off", mode_json(off, with_cpu));
  out.metric_raw("on", mode_json(on, with_cpu));
  std::snprintf(buf, sizeof(buf),
                "{\"records_x\":%.2f,\"bytes_x\":%.2f}", rec_x, byte_x);
  out.metric_raw("reduction", buf);
  return out.str();
}

int run(int argc, char** argv) {
  std::uint32_t hosts = 1024;
  int seconds = 45;
  bool dump = false;
  std::string out_path = "BENCH_sketch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      hosts = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--hosts N] [--seconds S] [--dump] [--out P]\n",
                   argv[0]);
      return 2;
    }
  }

  const ModeResult off = run_mode(false, hosts, seconds);
  const ModeResult on = run_mode(true, hosts, seconds);

  if (dump) {
    // Deterministic view only — byte-identical across same-seed runs.
    std::printf("%s\n", result_json(hosts, seconds, off, on, false).c_str());
    return 0;
  }

  std::ofstream f(out_path);
  f << result_json(hosts, seconds, off, on, true) << "\n";
  f.close();

  bench::print_header("Sketch upload-volume reduction (ISSUE: >=10x @ 1k "
                      "hosts)");
  bench::print_row_header({"mode", "records/period", "bytes/period",
                           "sketch_reports", "folded", "cpu_ms"});
  const auto row = [](const char* m, const ModeResult& r) {
    std::printf("%-22s%-22llu%-22llu%-22llu%-22llu%-22.1f\n", m,
                static_cast<unsigned long long>(
                    r.periods == 0 ? 0 : r.records / r.periods),
                static_cast<unsigned long long>(
                    r.periods == 0 ? 0 : r.wire_bytes / r.periods),
                static_cast<unsigned long long>(r.sketch_reports),
                static_cast<unsigned long long>(r.folded_records), r.cpu_ms);
  };
  row("off", off);
  row("on", on);
  const double rec_x = static_cast<double>(off.records) /
                       static_cast<double>(on.records == 0 ? 1 : on.records);
  std::printf("\nTakeaway: folding healthy records into mergeable sketches "
              "cuts Analyzer record\nvolume %.1fx at %u hosts while SLA "
              "sample counts stay equal (%llu vs %llu per\nperiod) — the "
              "Analyzer sees the same population, just summarized. Wrote "
              "%s.\n",
              rec_x, hosts,
              static_cast<unsigned long long>(
                  off.periods == 0 ? 0 : off.sla_probes / off.periods),
              static_cast<unsigned long long>(
                  on.periods == 0 ? 0 : on.sla_probes / on.periods),
              out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace rpm

int main(int argc, char** argv) { return rpm::run(argc, argv); }
