// Figure 4 validation: the four-timestamp UD measurement recovers the true
// network RTT with sub-microsecond accuracy even though every RNIC and host
// clock has a random offset up to ±1 s and drift up to ±50 ppm — because
// every term of (⑤-②)-(④-③) is a same-clock difference.
//
// Method: tap every completed probe, compute its analytic ground-truth RTT
// from the traced path (propagation + serialization per hop on an otherwise
// idle fabric, plus the RX DMA at each end, which real CQE timestamps also
// include), and report the measurement-error distribution.
//
// For contrast we also show what naive cross-clock arithmetic (e.g. ③-②,
// responder clock minus prober clock) would report: values on the order of
// the clock offsets, ~6 orders of magnitude wrong.
#include <cmath>

#include "bench_util.h"
#include "common/stats.h"

namespace rpm {
namespace {

void run() {
  bench::Deployment d;

  PercentileWindow error_ns;
  PercentileWindow rtt_us;
  std::size_t completed = 0;
  const TimeNs rx_dma = 2 * nsec(600);  // both recv CQEs include RX DMA

  d.rpm.analyzer().set_record_tap([&](const core::ProbeRecord& r) {
    if (r.status != core::ProbeStatus::kOk || !r.path_known) return;
    // Ground truth from the traced path (the fabric is idle: no queueing).
    TimeNs truth = rx_dma;
    const auto& topo = d.cluster.topology();
    for (const routing::Path* p : {&r.fwd_path, &r.rev_path}) {
      for (LinkId l : p->links) {
        const auto& link = topo.link(l);
        truth += link.propagation +
                 static_cast<TimeNs>(50.0 / link.capacity_Bps * 1e9);
      }
    }
    error_ns.add(std::abs(static_cast<double>(r.network_rtt - truth)));
    rtt_us.add(static_cast<double>(r.network_rtt) / 1e3);
    ++completed;
  });

  d.cluster.run_for(sec(30));

  bench::print_header(
      "Figure 4 validation: per-probe |measured RTT - ground truth| over an "
      "idle fabric");
  bench::print_row_header({"metric", "value"});
  std::printf("%-22s%-22zu\n", "probes_checked", completed);
  std::printf("%-22s%-22.1f\n", "rtt_p50_us", rtt_us.percentile(0.5));
  std::printf("%-22s%-22.1f\n", "rtt_p99_us", rtt_us.percentile(0.99));
  std::printf("%-22s%-22.1f\n", "error_p50_ns", error_ns.percentile(0.5));
  std::printf("%-22s%-22.1f\n", "error_p99_ns", error_ns.percentile(0.99));
  std::printf("%-22s%-22.1f\n", "error_max_ns", error_ns.percentile(1.0));

  bench::print_header("The clock chaos it survived (per-device clocks)");
  bench::print_row_header({"device", "offset_ms", "drift_ppm"});
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto& clk = d.cluster.rnic_device(RnicId{i}).clock();
    std::printf("%-22s%-22.2f%-22.2f\n",
                d.cluster.topology().rnic(RnicId{i}).name.c_str(),
                static_cast<double>(clk.offset()) / 1e6, clk.drift_ppm());
  }

  bench::print_header(
      "What naive cross-clock subtraction would report (③-② style)");
  PercentileWindow naive;
  for (std::uint32_t i = 0; i + 1 < d.cluster.num_rnics(); i += 2) {
    const TimeNs a = d.cluster.rnic_device(RnicId{i}).rnic_now();
    const TimeNs b = d.cluster.rnic_device(RnicId{i + 1}).rnic_now();
    naive.add(std::abs(static_cast<double>(b - a)));
  }
  std::printf(
      "median |cross-clock delta| = %.1f ms  (vs true one-way ~1 us)\n",
      naive.percentile(0.5) / 1e6);
  std::printf(
      "\nTakeaway: same-clock differences keep the error at nanoseconds "
      "(drift over a\nmicrosecond-scale flight is negligible); cross-clock "
      "arithmetic would be off by\nhundreds of milliseconds.\n");
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::run();
  return 0;
}
