// Figure 5 reproduction: SLA monitoring over time for one DML job.
//
// Paper timeline shape:
//  (a) training throughput dips during periodic TCP checkpoints and during
//      two anomalies;
//  (b) service network RTT DROPS during checkpoints (RoCE idle) and rises
//      during congestion/drop anomalies;
//  (c) end-host processing delay RISES during checkpoints (TCP is CPU
//      hungry);
//  (d) service-network probe drop rate spikes only during the two switch
//      anomalies that sit in the service network (=> P0/P1);
//  (e) cluster-network drop rate additionally sees an anomalous RNIC that
//      the service never uses (=> P2, service unaffected).
#include "bench_util.h"
#include "cc/cc.h"

namespace rpm {
namespace {

void run() {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = usec(500);
  core::RPingmeshConfig rcfg;
  // All2All self-congestion is normal for this job; only flag RTT outliers
  // well above its working point so the problem list tracks the injected
  // faults (drops), not the job's own traffic.
  rcfg.analyzer.high_rtt_threshold = msec(1);
  bench::Deployment d(bench::default_clos(), ccfg, rcfg);
  static cc::Dcqcn dcqcn;  // production RNICs run DCQCN
  traffic::DmlConfig dml;
  dml.controller = &dcqcn;
  dml.service = ServiceId{1};
  dml.workers = {RnicId{0}, RnicId{2}, RnicId{4},  RnicId{6},
                 RnicId{8}, RnicId{10}, RnicId{12}, RnicId{14}};
  dml.pattern = traffic::CommPattern::kAllToAll;  // queues build during comm
  dml.per_flow_gbps = 12.0;
  dml.compute_time = msec(300);
  dml.comm_bytes = 150'000'000;
  // Checkpoint length covers a whole 20 s analysis period so the RTT dip
  // is visible at the Analyzer's reporting granularity.
  dml.checkpoint_interval = sec(60);
  dml.checkpoint_duration = sec(22);
  traffic::DmlService svc(d.cluster, dml);
  d.rpm.watch_service({dml.service, [&svc] { return svc.relative_throughput(); }});
  svc.start();
  d.cluster.run_for(sec(2));

  // Anomaly schedule (absolute seconds):
  //  [80, 100)  corruption on a link the service uses        -> P0/P1
  //  [150, 170) corruption on another service-path link      -> P0/P1
  //  [200, 220) persistent drops on an RNIC outside the job  -> P2
  // Pick FABRIC links (not host edges) from two cross-ToR connections: edge
  // links would be classified as RNIC problems per the paper's footnote 4.
  const auto fabric_link_of = [&](std::size_t from_conn) {
    for (std::size_t i = from_conn; i < svc.connections().size(); ++i) {
      const auto& path =
          d.cluster.fabric().flow_path(svc.connections()[i].flow);
      if (path.links.size() >= 4) return path.links[1];
    }
    throw std::runtime_error("no cross-ToR connection");
  };
  const LinkId svc_link1 = fabric_link_of(0);
  const LinkId svc_link2 = fabric_link_of(20);
  const RnicId outside_rnic{15};

  bench::print_header(
      "Figure 5: per-20s SLA timeline (checkpoints every 60s for 22s; anomalies "
      "@80s, @150s in service network, @200s outside)");
  bench::print_row_header({"t_s", "(a)train_tp", "(b)svc_rtt_p99_us",
                           "(c)proc_p99_us", "(d)svc_drop", "(e)clus_drop",
                           "verdict"});

  int fault_handle = -1;
  for (int period = 1; period <= 12; ++period) {
    const int t_end = period * 20;
    // Fault schedule transitions inside this period.
    const auto at = [&](int t_fault, auto&& fn) {
      if (t_end - 20 <= t_fault && t_fault < t_end) {
        d.cluster.run_for(sec(t_fault - (t_end - 20)));
        fn();
        d.cluster.run_for(sec(t_end - t_fault));
      }
    };
    bool acted = false;
    for (const auto& [ts, action] :
         std::vector<std::pair<int, std::function<void()>>>{
             {80, [&] { fault_handle = d.faults.inject_corruption(svc_link1, 0.15); }},
             {100, [&] { d.faults.clear(fault_handle); }},
             {150, [&] { fault_handle = d.faults.inject_corruption(svc_link2, 0.15); }},
             {170, [&] { d.faults.clear(fault_handle); }},
             {200,
              [&] {
                fault_handle = d.faults.inject_corruption(
                    d.cluster.topology().rnic(outside_rnic).uplink, 0.6);
              }},
             {220, [&] { d.faults.clear(fault_handle); }}}) {
      if (t_end - 20 <= ts && ts < t_end) {
        at(ts, action);
        acted = true;
        break;
      }
    }
    if (!acted) d.cluster.run_for(sec(20));

    const auto* rep = d.rpm.analyzer().last_report();
    double svc_rtt = 0, svc_drop = 0;
    for (const auto& [sid, sla] : rep->service_slas) {
      if (sid == dml.service) {
        svc_rtt = sla.rtt_p99 / 1e3;
        svc_drop = sla.switch_drop_rate + sla.rnic_drop_rate;
      }
    }
    const double clus_drop = rep->cluster_sla.switch_drop_rate +
                             rep->cluster_sla.rnic_drop_rate;
    // Most severe problem this period, labelled with its category (the
    // checkpoint's own CPU spike legitimately surfaces as a P1 end-host
    // bottleneck on worker hosts).
    std::string verdict = "healthy";
    int best = 3;
    for (const auto& p : rep->problems) {
      const int rank = p.priority == core::Priority::kP0   ? 0
                       : p.priority == core::Priority::kP1 ? 1
                       : p.priority == core::Priority::kP2 ? 2
                                                           : 3;
      if (rank < best) {
        best = rank;
        verdict = std::string(core::priority_name(p.priority)) + ":" +
                  core::problem_category_name(p.category);
      }
    }
    std::printf("%-22d%-22.3f%-22.1f%-22.1f%-22.4f%-22.4f%s\n", t_end,
                svc.relative_throughput(), svc_rtt,
                rep->cluster_sla.proc_p99 / 1e3, svc_drop, clus_drop,
                verdict.c_str());
  }
  std::printf(
      "\nTakeaway: checkpoints show as RTT dips + processing-delay spikes; "
      "service-network\ndrops appear in BOTH (d) and (e) and are prioritized "
      "P0/P1; the outside RNIC's drops\nappear only in (e) and are filed P2 "
      "(service unaffected) — matching Figure 5.\n");
  svc.stop();
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::run();
  return 0;
}
