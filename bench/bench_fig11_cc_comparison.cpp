// Figure 11 reproduction.
//
// (left)  Tail network RTT of a service using All2All vs one using
//         AllReduce: All2All's incast keeps queues (and tail RTT) far
//         higher.
// (right) The same All2All workload under commodity DCQCN vs a
//         self-developed delay-based CC ("DelayCC"): the delay-based
//         algorithm cuts tail RTT hard and improves iteration throughput —
//         the comparison R-Pingmesh's RTT metrics made measurable.
#include "bench_util.h"
#include "cc/cc.h"

namespace rpm {
namespace {

struct RunResult {
  double rtt_p50_us = 0;
  double rtt_p99_us = 0;
  double iterations_per_min = 0;
};

RunResult run_service(traffic::CommPattern pattern,
                      fabric::RateController* cc) {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = usec(200);
  bench::Deployment d(bench::default_clos(), ccfg);
  traffic::DmlConfig dml;
  dml.service = ServiceId{1};
  dml.workers = {RnicId{0}, RnicId{2}, RnicId{4}, RnicId{6},
                 RnicId{8}, RnicId{10}, RnicId{12}, RnicId{14}};
  dml.pattern = pattern;
  dml.per_flow_gbps =
      pattern == traffic::CommPattern::kAllToAll ? 14.0 : 90.0;
  dml.compute_time = msec(100);
  dml.comm_bytes = pattern == traffic::CommPattern::kAllToAll
                       ? 250'000'000
                       : 1'500'000'000;
  dml.controller = cc;
  traffic::DmlService svc(d.cluster, dml);
  svc.start();
  d.cluster.run_for(sec(81));  // settle + 3 analysis periods

  RunResult res;
  int periods = 0;
  for (const auto& rep : d.rpm.analyzer().history()) {
    for (const auto& [sid, sla] : rep.service_slas) {
      if (sid != dml.service || sla.probes < 50) continue;
      res.rtt_p50_us += sla.rtt_p50 / 1e3;
      res.rtt_p99_us += sla.rtt_p99 / 1e3;
      ++periods;
    }
  }
  if (periods > 0) {
    res.rtt_p50_us /= periods;
    res.rtt_p99_us /= periods;
  }
  res.iterations_per_min =
      static_cast<double>(svc.iterations_completed()) * 60.0 / 81.0;
  svc.stop();
  return res;
}

}  // namespace
}  // namespace rpm

int main() {
  using rpm::traffic::CommPattern;

  rpm::bench::print_header(
      "Figure 11 (left): service-network RTT, AllReduce vs All2All (DCQCN)");
  rpm::bench::print_row_header(
      {"comm_mode", "rtt_p50_us", "rtt_p99_us", "iters_per_min"});
  rpm::cc::Dcqcn dcqcn_l1, dcqcn_l2;
  const auto ar = rpm::run_service(CommPattern::kAllReduceRing, &dcqcn_l1);
  const auto a2a = rpm::run_service(CommPattern::kAllToAll, &dcqcn_l2);
  std::printf("%-22s%-22.1f%-22.1f%-22.1f\n", "AllReduce", ar.rtt_p50_us,
              ar.rtt_p99_us, ar.iterations_per_min);
  std::printf("%-22s%-22.1f%-22.1f%-22.1f\n", "All2All", a2a.rtt_p50_us,
              a2a.rtt_p99_us, a2a.iterations_per_min);

  rpm::bench::print_header(
      "Figure 11 (right): All2All under DCQCN vs delay-based CC");
  rpm::bench::print_row_header(
      {"cc_algorithm", "rtt_p50_us", "rtt_p99_us", "iters_per_min"});
  rpm::cc::Dcqcn dcqcn_r;
  rpm::cc::DelayCc delaycc;
  const auto with_dcqcn = rpm::run_service(CommPattern::kAllToAll, &dcqcn_r);
  const auto with_delay = rpm::run_service(CommPattern::kAllToAll, &delaycc);
  std::printf("%-22s%-22.1f%-22.1f%-22.1f\n", "DCQCN", with_dcqcn.rtt_p50_us,
              with_dcqcn.rtt_p99_us, with_dcqcn.iterations_per_min);
  std::printf("%-22s%-22.1f%-22.1f%-22.1f\n", "DelayCC", with_delay.rtt_p50_us,
              with_delay.rtt_p99_us, with_delay.iterations_per_min);
  std::printf(
      "\nExpected shape (paper): All2All tail RTT >> AllReduce; the "
      "self-developed CC slashes\ntail RTT vs DCQCN at comparable or better "
      "training throughput.\n");
  return 0;
}
