// Federation scale-out economics (ROADMAP "Hierarchical federation").
//
// Deploys a federated R-Pingmesh (per-pod Analyzers + global merge tier +
// warm standby Controller) and runs the acceptance chaos drill: kill the
// primary Controller mid-period, kill one PodAnalyzer mid-drain, let the
// lease/epoch/journal machinery recover. Reports, per pod, the record rate
// the PodAnalyzer absorbed and the digest bytes it pushed upstream; at the
// cluster level, the fan-in ratio between raw upload volume (what a flat
// Analyzer would have ingested over the wire) and the digest volume the
// global tier actually consumed; and the periods-to-recovery after each
// control-plane kill.
//
// Flags:
//   --hosts N    total hosts (default 128). Topology: 4-pod 3-tier Clos,
//                4 ToRs/pod, N/16 hosts per ToR.
//   --pods P     federation pods (default 4; Clos pods fold modulo P)
//   --seconds S  simulated seconds (default 120 => 24 analysis periods)
//   --dump       print only the deterministic JSON (no wall-clock fields)
//                to stdout; CI diffs two same-seed runs of this output.
//   --out PATH   full JSON incl. cpu_ms (default BENCH_federation.json)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "chaos/chaos.h"
#include "telemetry/metrics.h"

namespace rpm {
namespace {

/// Sum of rpm_transport_bytes_total over channels whose name starts with
/// `prefix` ("upload/", "digest/", ...).
std::uint64_t channel_bytes(const telemetry::Snapshot& snap,
                            const std::string& prefix) {
  double total = 0.0;
  for (const telemetry::SeriesSample& s : snap.series) {
    if (s.name != "rpm_transport_bytes_total") continue;
    for (const telemetry::Label& l : s.labels) {
      if (l.key == "channel" && l.value.rfind(prefix, 0) == 0) {
        total += static_cast<double>(s.counter_value);
      }
    }
  }
  return static_cast<std::uint64_t>(total);
}

struct PodStats {
  std::size_t hosts = 0;
  std::uint64_t periods = 0;
  std::uint64_t records = 0;
  std::uint64_t digests = 0;
  std::uint64_t digest_bytes = 0;
};

int run(int argc, char** argv) {
  std::uint32_t hosts = 128;
  std::size_t pods = 4;
  int seconds = 120;
  bool dump = false;
  std::string out_path = "BENCH_federation.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      hosts = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--pods") == 0 && i + 1 < argc) {
      pods = std::stoul(argv[++i]);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--hosts N] [--pods P] [--seconds S] [--dump] "
                   "[--out P]\n",
                   argv[0]);
      return 2;
    }
  }

  topo::ClosConfig tcfg;
  tcfg.num_pods = 4;
  tcfg.tors_per_pod = 4;
  tcfg.aggs_per_pod = 2;
  tcfg.spines_per_plane = 2;
  tcfg.hosts_per_tor = hosts / (tcfg.num_pods * tcfg.tors_per_pod);
  if (tcfg.hosts_per_tor == 0) tcfg.hosts_per_tor = 1;
  tcfg.rnics_per_host = 1;

  core::RPingmeshConfig rcfg;
  rcfg.analyzer.period = sec(5);
  rcfg.federation.pods = pods;
  rcfg.federation.standby_controller = true;

  bench::Deployment d(tcfg, {}, rcfg);
  chaos::ChaosRunner runner(d.cluster, d.rpm, d.faults);

  // The acceptance drill: primary Controller killed mid-period, one
  // PodAnalyzer killed mid-drain, both recovered through lease transfer /
  // journal restore. No network faults — the bench measures plumbing cost
  // and recovery, parity is test_federation's job.
  chaos::ChaosPlan plan;
  plan.seed = 7;
  plan.duration = sec(seconds);
  plan.controller_crash(sec(32));
  plan.controller_restart(sec(50));
  if (d.rpm.federated()) {
    plan.pod_analyzer_crash(sec(57), 1 % d.rpm.num_pods());
    plan.pod_analyzer_restart(sec(68), 1 % d.rpm.num_pods());
  }

  const auto wall0 = std::chrono::steady_clock::now();
  const chaos::ChaosReport rep = runner.run(plan);
  const auto wall1 = std::chrono::steady_clock::now();
  const double cpu_ms =
      std::chrono::duration<double, std::milli>(wall1 - wall0).count();

  std::vector<PodStats> pod_stats;
  std::uint64_t digest_bytes_total = 0;
  for (std::size_t p = 0; p < d.rpm.num_pods() && d.rpm.federated(); ++p) {
    core::PodAnalyzer& pa = d.rpm.pod_analyzer(p);
    PodStats st;
    st.hosts = pa.hosts().size();
    for (const core::PeriodReport& r : pa.analyzer().history()) {
      ++st.periods;
      st.records += r.records_processed;
    }
    st.digests = pa.digests_sent();
    st.digest_bytes = pa.digest_bytes_sent();
    digest_bytes_total += st.digest_bytes;
    pod_stats.push_back(st);
  }

  const telemetry::Snapshot snap = telemetry::registry().snapshot();
  const std::uint64_t upload_bytes = channel_bytes(snap, "upload/");
  const std::uint64_t digest_wire_bytes = channel_bytes(snap, "digest/");
  const double fan_in_x =
      static_cast<double>(upload_bytes) /
      static_cast<double>(digest_wire_bytes == 0 ? 1 : digest_wire_bytes);

  // ---- JSON (one BenchJson schema shared by every BENCH_*.json) ----
  bench::BenchJson out("federation");
  char buf[512];
  out.param("hosts", hosts)
      .param("pods", static_cast<std::uint64_t>(d.rpm.num_pods()))
      .param("seconds", static_cast<std::uint64_t>(seconds))
      .param("seed", 7);
  std::snprintf(
      buf, sizeof(buf),
      "{\"periods\":%zu,\"merges\":%llu,\"problems\":%zu,"
      "\"upload_bytes\":%llu,\"digest_bytes\":%llu,\"fan_in_x\":%.2f}",
      rep.periods,
      static_cast<unsigned long long>(
          d.rpm.federated() ? d.rpm.global_analyzer().merges() : 0),
      rep.problems_total, static_cast<unsigned long long>(upload_bytes),
      static_cast<unsigned long long>(digest_wire_bytes), fan_in_x);
  out.metric_raw("global", buf);
  std::string per_pod = "[";
  for (std::size_t p = 0; p < pod_stats.size(); ++p) {
    const PodStats& st = pod_stats[p];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"pod\":%zu,\"hosts\":%zu,\"records_per_period\":%llu,"
                  "\"digests\":%llu,\"digest_bytes\":%llu}",
                  p == 0 ? "" : ",", p, st.hosts,
                  static_cast<unsigned long long>(
                      st.periods == 0 ? 0 : st.records / st.periods),
                  static_cast<unsigned long long>(st.digests),
                  static_cast<unsigned long long>(st.digest_bytes));
    per_pod += buf;
  }
  per_pod += "]";
  out.metric_raw("per_pod", per_pod);
  std::string recoveries = "[";
  for (std::size_t i = 0; i < rep.recoveries.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"event\":\"%s\",\"periods_to_recover\":%d}",
                  i == 0 ? "" : ",", rep.recoveries[i].event.c_str(),
                  rep.recoveries[i].periods_to_recover);
    recoveries += buf;
  }
  recoveries += "]";
  out.metric_raw("recoveries", recoveries);
  out.metric("false_positives",
             static_cast<std::uint64_t>(rep.false_positives));

  if (dump) {
    // Deterministic view only — byte-identical across same-seed runs.
    std::printf("%s\n", out.str().c_str());
    return 0;
  }

  out.metric("cpu_ms", cpu_ms, "%.1f");
  out.write_file(out_path);

  bench::print_header("Federation fan-in + failover recovery");
  bench::print_row_header(
      {"pod", "hosts", "records/period", "digests", "digest_bytes"});
  for (std::size_t p = 0; p < pod_stats.size(); ++p) {
    const PodStats& st = pod_stats[p];
    std::printf("%-22zu%-22zu%-22llu%-22llu%-22llu\n", p, st.hosts,
                static_cast<unsigned long long>(
                    st.periods == 0 ? 0 : st.records / st.periods),
                static_cast<unsigned long long>(st.digests),
                static_cast<unsigned long long>(st.digest_bytes));
  }
  std::printf("\nTakeaway: the global tier consumed %llu digest bytes where "
              "a flat Analyzer\ningested %llu upload bytes — a %.0fx fan-in "
              "reduction — and every control-plane\nkill recovered within ",
              static_cast<unsigned long long>(digest_wire_bytes),
              static_cast<unsigned long long>(upload_bytes), fan_in_x);
  int worst = 0;
  for (const auto& r : rep.recoveries) {
    if (r.periods_to_recover > worst) worst = r.periods_to_recover;
  }
  std::printf("%d periods. Wrote %s.\n", worst, out_path.c_str());
  (void)digest_bytes_total;
  return 0;
}

}  // namespace
}  // namespace rpm

int main(int argc, char** argv) { return rpm::run(argc, argv); }
