// Equation (1) reproduction: the minimum number of random 5-tuples k that
// covers all N parallel ECMP paths with probability P, plus an empirical
// Monte-Carlo check of the coverage actually achieved.
#include <set>

#include "bench_util.h"
#include "core/controller.h"

namespace rpm {
namespace {

double empirical_coverage(std::uint32_t n, std::uint32_t k, Rng& rng) {
  const int trials = 20000;
  int covered = 0;
  for (int t = 0; t < trials; ++t) {
    std::set<std::uint32_t> seen;
    for (std::uint32_t i = 0; i < k; ++i) {
      seen.insert(static_cast<std::uint32_t>(rng.uniform_int(0, n - 1)));
    }
    if (seen.size() == n) ++covered;
  }
  return static_cast<double>(covered) / trials;
}

void run() {
  bench::print_header(
      "Equation (1): tuples needed to cover N parallel ECMP paths");
  bench::print_row_header({"N_paths", "k(P=0.90)", "k(P=0.99)", "k(P=0.999)",
                           "empirical_cov@0.99"});
  Rng rng(1234);
  for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto k90 = core::equation1_min_tuples(n, 0.90);
    const auto k99 = core::equation1_min_tuples(n, 0.99);
    const auto k999 = core::equation1_min_tuples(n, 0.999);
    std::printf("%-22u%-22u%-22u%-22u%-22.4f\n", n, k90, k99, k999,
                empirical_coverage(n, k99, rng));
  }

  // And on a real topology: the Controller's per-ToR plan.
  bench::Deployment d;
  bench::print_header("Controller plan on the 3-tier Clos (P = 0.99)");
  bench::print_row_header({"tor", "parallel_paths", "k_tuples"});
  for (SwitchId tor : d.cluster.topology().tor_switches()) {
    std::uint32_t n = 1;
    for (SwitchId other : d.cluster.topology().tor_switches()) {
      if (other == tor) continue;
      n = std::max(n, core::count_parallel_paths(d.cluster.router(), tor,
                                                 other));
    }
    std::printf("%-22s%-22u%-22u\n",
                d.cluster.topology().switch_info(tor).name.c_str(), n,
                d.rpm.controller().tuples_for_tor(tor));
  }
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::run();
  return 0;
}
