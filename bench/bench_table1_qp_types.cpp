// Table 1 reproduction: feature comparison of the three QP types.
//
//   | feature                  | RC   | UC | UD |
//   | accurate RTT measurement | no   | yes| yes|
//   | connection overhead      | high | high | low |
//
// Part 1 — measurement capability: when does the send CQE fire? For UD/UC it
// fires at wire-send (timestamp ② observable); for RC only after the
// hardware ACK returns, so ② is unobservable and RTT cannot be separated
// from the remote's behaviour.
//
// Part 2 — connection overhead: probing M targets needs M connected QPs with
// RC/UC but a single QP with UD. Connected QPs occupy QPC cache slots and
// evict the service's contexts: we measure the cache-miss stall added to
// service operations.
#include "bench_util.h"
#include "rnic/rnic.h"

namespace rpm {
namespace {

struct CqeTiming {
  TimeNs post_time = 0;
  TimeNs send_cqe_time = kNoTime;  // scheduler time when the CQE appeared
};

void measurement_capability(bench::Deployment& d) {
  bench::print_header("Table 1 part 1: when does the send CQE fire?");
  bench::print_row_header(
      {"qp_type", "send_cqe_after_us", "timestamp2_observable"});

  auto& sched = d.cluster.scheduler();
  for (rnic::QpType type :
       {rnic::QpType::kRC, rnic::QpType::kUC, rnic::QpType::kUD}) {
    rnic::RnicDevice& src = d.cluster.rnic_device(RnicId{0});
    rnic::RnicDevice& dst = d.cluster.rnic_device(RnicId{12});
    CqeTiming timing;
    rnic::QpConfig scfg;
    scfg.type = type;
    scfg.on_cqe = [&](const rnic::Cqe& c) {
      if (c.is_send && timing.send_cqe_time == kNoTime) {
        timing.send_cqe_time = sched.now();
      }
    };
    const Qpn sqpn = src.create_qp(scfg);
    rnic::QpConfig rcfg;
    rcfg.type = type;
    rcfg.on_cqe = [](const rnic::Cqe&) {};
    const Qpn rqpn = dst.create_qp(rcfg);

    timing.post_time = sched.now();
    if (type == rnic::QpType::kUD) {
      src.post_send_ud(sqpn, dst.gid(), rqpn, 777, 50, 0, 1);
    } else {
      src.connect_qp(sqpn, dst.gid(), rqpn, 777);
      dst.connect_qp(rqpn, src.gid(), sqpn, 777);
      src.post_send_connected(sqpn, 50, 0, 1);
    }
    d.cluster.run_for(msec(5));
    const double us =
        static_cast<double>(timing.send_cqe_time - timing.post_time) / 1e3;
    // UD/UC: CQE fires at wire-send (TX DMA + a first-touch QPC stall,
    // ~2.6 us here). RC: CQE only after the ACK made a full network round
    // trip (~10 us), so it cannot timestamp the wire-send.
    const bool observable = us < 5.0;
    std::printf("%-22s%-22.2f%-22s\n", rnic::qp_type_name(type), us,
                observable ? "YES (CQE at wire-send)"
                           : "NO (CQE waits for ACK)");
    src.destroy_qp(sqpn);
    dst.destroy_qp(rqpn);
  }
}

void connection_overhead() {
  bench::print_header(
      "Table 1 part 2: QPC-cache pressure of probing 64 targets");
  bench::print_row_header({"qp_type", "probing_qps", "svc_miss_rate",
                           "svc_stall_us_per_op"});

  constexpr int kTargets = 64;
  constexpr int kServiceQps = 48;
  constexpr int kOpsPerQp = 50;

  for (rnic::QpType type :
       {rnic::QpType::kRC, rnic::QpType::kUC, rnic::QpType::kUD}) {
    host::ClusterConfig ccfg;
    ccfg.rnic.qpc_cache_slots = 64;  // small cache to make pressure visible
    bench::Deployment d(bench::default_clos(), ccfg);
    rnic::RnicDevice& dev = d.cluster.rnic_device(RnicId{0});

    // Probing state: one QP per target for connected types, one total for UD.
    const int probing_qps = type == rnic::QpType::kUD ? 1 : kTargets;
    std::vector<Qpn> probe_qps;
    rnic::QpConfig pcfg;
    pcfg.type = type;
    pcfg.on_cqe = [](const rnic::Cqe&) {};
    for (int i = 0; i < probing_qps; ++i) {
      probe_qps.push_back(dev.create_qp(pcfg));
    }
    // Service QPs.
    std::vector<Qpn> service_qps;
    rnic::QpConfig scfg;
    scfg.type = rnic::QpType::kRC;
    scfg.on_cqe = [](const rnic::Cqe&) {};
    for (int i = 0; i < kServiceQps; ++i) {
      service_qps.push_back(dev.create_qp(scfg));
    }

    // Interleave: each probing round touches every probing QP, then the
    // service touches its QPs round-robin (like real traffic would).
    TimeNs service_stall = 0;
    std::uint64_t service_ops = 0;
    std::uint64_t service_misses_before = 0;
    for (int round = 0; round < kOpsPerQp; ++round) {
      for (Qpn q : probe_qps) dev.qpc_touch(q);
      const auto misses0 = dev.counters().qpc_cache_misses;
      for (Qpn q : service_qps) {
        service_stall += dev.qpc_touch(q);
        ++service_ops;
      }
      service_misses_before += dev.counters().qpc_cache_misses - misses0;
    }
    const double miss_rate = static_cast<double>(service_misses_before) /
                             static_cast<double>(service_ops);
    std::printf("%-22s%-22d%-22.3f%-22.3f\n", rnic::qp_type_name(type),
                probing_qps, miss_rate,
                static_cast<double>(service_stall) /
                    static_cast<double>(service_ops) / 1e3);
  }
  std::printf(
      "\nTakeaway: RC/UC probing at fan-out evicts service QP contexts "
      "(misses, stalls);\nUD probing holds one QP and leaves the cache to "
      "the service — and only UC/UD can\nobserve timestamp ②, so UD is the "
      "only type with BOTH properties (the paper's choice).\n");
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::bench::Deployment d;
  rpm::measurement_capability(d);
  rpm::connection_overhead();
  return 0;
}
