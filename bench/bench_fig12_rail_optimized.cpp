// Figure 12 reproduction: rail-optimized clusters let R-Pingmesh simplify
// Cluster Monitoring (§7.4). NICs of one host sit on different rails, so
// host-LOCAL inter-NIC probes must traverse the top-tier spines: with enough
// 5-tuples, self-probing covers every fabric link without any Controller
// pinglist — and a fabric fault is localized from those probes alone.
#include <map>
#include <set>

#include "bench_util.h"
#include "core/controller.h"

namespace rpm {
namespace {

void run() {
  topo::RailConfig rcfg;
  rcfg.num_hosts = 4;
  rcfg.rails = 4;
  rcfg.num_spines = 4;
  rcfg.host_link.capacity_gbps = 100.0;
  rcfg.fabric_link.capacity_gbps = 100.0;
  host::Cluster cluster(topo::build_rail_optimized(rcfg));
  const auto& topo = cluster.topology();

  bench::print_header(
      "Figure 12: rail-optimized cluster, host-local inter-rail probing");
  std::printf("hosts=%zu rails=%u spines=%u fabric cables=%zu\n",
              topo.num_hosts(), rcfg.rails, rcfg.num_spines,
              (topo.num_links() - 2 * topo.num_rnics()) / 2);

  // Every inter-rail path crosses a spine.
  FiveTuple probe;
  probe.src_ip = topo.rnic(RnicId{0}).ip;
  probe.dst_ip = topo.rnic(RnicId{1}).ip;
  probe.src_port = 1;
  const auto p = cluster.router().resolve(RnicId{0}, RnicId{1}, probe);
  std::printf("NIC0 -> NIC1 of host 0 crosses %zu switches (rail, spine, "
              "rail)\n", p.switches.size());

  // Coverage: how many 5-tuples per host until every fabric link is seen by
  // some host-local probe (both directions)?
  std::set<std::uint32_t> fabric_links;
  for (const topo::Link& l : topo.links()) {
    if (l.from.is_switch() && l.to.is_switch()) fabric_links.insert(l.id.value);
  }
  std::set<std::uint32_t> covered;
  int tuples_used = 0;
  for (std::uint16_t port = 1000; covered.size() < fabric_links.size() &&
                                  port < 4000;
       ++port) {
    for (const topo::HostInfo& h : topo.hosts()) {
      for (std::size_t i = 0; i < h.rnics.size(); ++i) {
        for (std::size_t j = 0; j < h.rnics.size(); ++j) {
          if (i == j) continue;
          FiveTuple t;
          t.src_ip = topo.rnic(h.rnics[i]).ip;
          t.dst_ip = topo.rnic(h.rnics[j]).ip;
          t.src_port = port;
          const auto path = cluster.router().resolve(h.rnics[i], h.rnics[j], t);
          for (LinkId l : path.links) {
            if (fabric_links.contains(l.value)) covered.insert(l.value);
          }
        }
      }
    }
    ++tuples_used;
  }
  std::printf(
      "fabric links covered by host-local probes: %zu / %zu using %d "
      "source ports per NIC pair\n",
      covered.size(), fabric_links.size(), tuples_used);
  const std::uint32_t n_paths = core::count_parallel_paths(
      cluster.router(), topo.rnic(RnicId{0}).tor, topo.rnic(RnicId{1}).tor);
  std::printf("Equation-1 check: N=%u parallel rail->spine->rail paths need "
              "k=%u tuples at P=0.99\n",
              n_paths, core::equation1_min_tuples(n_paths, 0.99));

  // One-way fault localization without a Controller: break one rail->spine
  // cable and count which link the failed host-local probes implicate.
  fabric::Fabric& fab = cluster.fabric();
  const LinkId victim{*fabric_links.begin()};
  // Flapping (not admin-down) so forwarding state keeps pointing at it.
  fab.set_cable_flapping(victim, true);
  std::map<std::uint32_t, int> votes;
  int drops = 0, sent = 0;
  for (std::uint16_t port = 5000; port < 5200; ++port) {
    for (const topo::HostInfo& h : topo.hosts()) {
      for (std::size_t i = 0; i < h.rnics.size(); ++i) {
        const std::size_t j = (i + 1) % h.rnics.size();
        fabric::Datagram d;
        d.src = h.rnics[i];
        d.dst = h.rnics[j];
        d.tuple.src_ip = topo.rnic(h.rnics[i]).ip;
        d.tuple.dst_ip = topo.rnic(h.rnics[j]).ip;
        d.tuple.src_port = port;
        d.size = 50;
        const auto out = fab.send(d);
        ++sent;
        if (!out.delivered) {
          ++drops;
          for (LinkId l : out.path.links) ++votes[l.value];
        }
      }
    }
  }
  std::uint32_t best = 0;
  int best_votes = 0;
  for (const auto& [l, v] : votes) {
    if (v > best_votes) {
      best = l;
      best_votes = v;
    }
  }
  std::printf(
      "\ninjected fault on %s; one-way probes dropped %d/%d; top-voted link: "
      "%s (%s)\n",
      topo.link(victim).name.c_str(), drops, sent,
      topo.link(LinkId{best}).name.c_str(),
      best == victim.value || LinkId{best} == topo.link(victim).peer
          ? "CORRECT"
          : "wrong");
  std::printf(
      "Takeaway: in rail-optimized fabrics, hosts can monitor the whole "
      "cluster by probing\ntheir own NICs across rails — no pinglists, "
      "one-way timeouts suffice (§7.4).\n");
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::run();
  return 0;
}
