// Table 2 reproduction: all 14 root causes found by R-Pingmesh during
// deployment. Each row injects one root cause into a fresh cluster, runs
// the system, and reports how the Analyzer detected, categorized, and
// localized it.
#include <functional>
#include <set>
#include <sstream>

#include "bench_util.h"
#include "cc/cc.h"

namespace rpm {
namespace {

struct RowResult {
  bool detected = false;
  std::string category;
  std::string located;
};

struct Row {
  int number;
  const char* root_cause;
  const char* expected;
  std::function<RowResult()> run;
};

/// Fresh deployment tuned for these short episodes.
std::unique_ptr<bench::Deployment> make_deployment(TimeNs step = msec(1)) {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = step;
  return std::make_unique<bench::Deployment>(bench::default_clos(), ccfg);
}

/// Deployment for congestion rows: finer fluid step, DCQCN keeps queues at
/// the ECN knee (as production RNICs do), and the Analyzer's congestion
/// threshold sits between the idle baseline (~7 us) and the knee delay.
std::unique_ptr<bench::Deployment> make_congestion_deployment() {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = usec(200);
  core::RPingmeshConfig rcfg;
  rcfg.analyzer.high_rtt_threshold = usec(100);
  return std::make_unique<bench::Deployment>(bench::default_clos(), ccfg,
                                             rcfg);
}

RowResult summarize(bench::Deployment& d, core::ProblemCategory expect_cat) {
  // Scan every analysis period: some faults (e.g. #9) break the service's
  // connections, after which the traffic — and the evidence — disappears
  // from later periods.
  RowResult r;
  for (const auto& rep : d.rpm.analyzer().history()) {
    for (const auto& p : rep.problems) {
      if (p.category != expect_cat) continue;
      r.detected = true;
      r.category = core::problem_category_name(p.category);
      std::ostringstream os;
      if (p.rnic.valid()) os << d.cluster.topology().rnic(p.rnic).name;
      if (p.host.valid()) os << " " << d.cluster.topology().host(p.host).name;
      if (!p.suspect_links.empty()) {
        os << d.cluster.topology().link(p.suspect_links.front()).name;
      }
      r.located = os.str();
    }
  }
  return r;
}

/// Simple fault rows: inject, run 21 s warmup + 41 s faulted, summarize.
RowResult simple_row(core::ProblemCategory expect,
                     const std::function<int(bench::Deployment&)>& inject) {
  auto d = make_deployment();
  d->cluster.run_for(sec(21));
  inject(*d);
  d->cluster.run_for(sec(41));
  return summarize(*d, expect);
}

LinkId fabric_link(bench::Deployment& d, std::size_t skip = 0) {
  std::size_t seen = 0;
  for (const topo::Link& l : d.cluster.topology().links()) {
    if (l.from.is_switch() && l.to.is_switch()) {
      if (seen++ == skip) return l.id;
    }
  }
  throw std::runtime_error("no fabric link");
}

/// #9: PFC headroom misconfigured — only bites under heavy congestion.
RowResult row_pfc_misconfigured() {
  auto d = make_deployment(usec(200));
  traffic::DmlConfig dml;
  dml.service = ServiceId{1};
  dml.workers = {RnicId{0}, RnicId{4}, RnicId{8}, RnicId{12}};
  dml.pattern = traffic::CommPattern::kIncast;
  dml.per_flow_gbps = 60.0;  // 3 x 60G into one 100G downlink
  dml.compute_time = msec(50);
  dml.comm_bytes = 800'000'000;
  traffic::DmlService svc(d->cluster, dml);
  svc.start();
  d->cluster.run_for(sec(21));
  // Misconfigure a fabric link feeding the congested ToR: PFC backpressure
  // from the incast bottleneck piles bytes into it, and with the headroom
  // wrong those bytes are DROPPED there instead of pausing upstream.
  // (Misconfiguring the ToR->RNIC downlink itself would be classified as an
  // RNIC problem, per the paper's footnote-4 convention.)
  const SwitchId tor = d->cluster.topology().rnic(RnicId{0}).tor;
  for (LinkId out : d->cluster.topology().out_links(topo::NodeRef::sw(tor))) {
    const LinkId in = d->cluster.topology().link(out).peer;
    if (d->cluster.topology().link(in).from.is_switch()) {
      d->faults.inject_pfc_misconfigured(in);
    }
  }
  d->cluster.run_for(sec(41));
  auto r = summarize(*d, core::ProblemCategory::kSwitchNetworkProblem);
  svc.stop();
  return r;
}

/// #10: ECMP hash collision — two elephants on one ToR uplink.
RowResult row_uneven_load_balance() {
  auto d = make_congestion_deployment();
  static cc::Dcqcn dcqcn;
  // Find two cross-ToR flows from the same source ToR that hash onto the
  // SAME uplink.
  auto& fab = d->cluster.fabric();
  const RnicId a{0}, b{2};  // two hosts under tor-0/0
  const RnicId dst1{8}, dst2{10};
  FiveTuple t1, t2;
  t1.src_ip = d->cluster.topology().rnic(a).ip;
  t1.dst_ip = d->cluster.topology().rnic(dst1).ip;
  t2.src_ip = d->cluster.topology().rnic(b).ip;
  t2.dst_ip = d->cluster.topology().rnic(dst2).ip;
  t1.src_port = 5001;
  const LinkId up1 = fab.current_path(a, dst1, t1).links[1];
  for (std::uint16_t p = 5002;; ++p) {
    t2.src_port = p;
    if (fab.current_path(b, dst2, t2).links[1] == up1) break;
  }
  // Two services, one flow each, colliding on `up1`.
  traffic::DmlConfig s1;
  s1.service = ServiceId{1};
  s1.workers = {a, dst1};
  s1.per_flow_gbps = 70.0;
  s1.compute_time = msec(50);
  s1.comm_bytes = 900'000'000;
  s1.base_port = t1.src_port;
  s1.controller = &dcqcn;
  traffic::DmlConfig s2 = s1;
  s2.service = ServiceId{2};
  s2.workers = {b, dst2};
  s2.base_port = t2.src_port;
  traffic::DmlService svc1(d->cluster, s1);
  traffic::DmlService svc2(d->cluster, s2);
  svc1.start();
  svc2.start();
  d->cluster.run_for(sec(62));
  auto r = summarize(*d, core::ProblemCategory::kHighNetworkRtt);
  svc1.stop();
  svc2.stop();
  return r;
}

/// #11: interference between services — same mechanism seen from two
/// tenants whose Service Tracing fingers the same link.
RowResult row_service_interference() {
  auto d = make_congestion_deployment();
  static cc::Dcqcn dcqcn;
  traffic::DmlConfig s1;
  s1.service = ServiceId{1};
  s1.workers = {RnicId{0}, RnicId{8}};
  s1.per_flow_gbps = 70.0;
  s1.compute_time = msec(50);
  s1.comm_bytes = 900'000'000;
  s1.base_port = 6100;
  s1.controller = &dcqcn;
  traffic::DmlConfig s2 = s1;
  s2.service = ServiceId{2};
  s2.workers = {RnicId{2}, RnicId{10}};
  s2.base_port = 6100 + 17;
  // Align the two flows onto one uplink by scanning ports.
  auto& fab = d->cluster.fabric();
  FiveTuple t1;
  t1.src_ip = d->cluster.topology().rnic(s1.workers[0]).ip;
  t1.dst_ip = d->cluster.topology().rnic(s1.workers[1]).ip;
  t1.src_port = s1.base_port;
  const LinkId up1 = fab.current_path(s1.workers[0], s1.workers[1], t1).links[1];
  FiveTuple t2 = t1;
  t2.src_ip = d->cluster.topology().rnic(s2.workers[0]).ip;
  t2.dst_ip = d->cluster.topology().rnic(s2.workers[1]).ip;
  for (std::uint16_t p = 6200;; ++p) {
    t2.src_port = p;
    if (fab.current_path(s2.workers[0], s2.workers[1], t2).links[1] == up1) {
      s2.base_port = p;
      break;
    }
  }
  traffic::DmlService svc1(d->cluster, s1);
  traffic::DmlService svc2(d->cluster, s2);
  svc1.start();
  svc2.start();
  d->cluster.run_for(sec(62));
  // Both tenants' Service Tracing must implicate the shared link.
  RowResult r;
  const auto* rep = d->rpm.analyzer().last_report();
  // Congestion trees spread via PFC pushback, so each tenant's argmax may
  // land on a different branch; the shared root must still rank in both
  // tenants' top vote histograms.
  std::set<std::uint32_t> tenants;
  for (const auto& p : rep->problems) {
    if (p.category != core::ProblemCategory::kHighNetworkRtt) continue;
    if (!p.detected_by_service_tracing) continue;
    for (const auto& [l, votes] : p.top_link_votes) {
      if (l == up1) {
        tenants.insert(p.service.value);
        break;
      }
    }
  }
  const int tenants_blaming_shared = static_cast<int>(tenants.size());
  r.detected = tenants_blaming_shared >= 2;
  r.category = "high-network-rtt (x2 tenants)";
  r.located = d->cluster.topology().link(up1).name;
  svc1.stop();
  svc2.stop();
  return r;
}

/// #13/#14: PCIe downgrade -> RNIC cannot drain -> PFC storm at its ToR.
RowResult row_pcie_downgrade() {
  auto d = make_deployment(usec(200));
  // Traffic into the downgraded RNIC so its downlink queue builds.
  traffic::DmlConfig dml;
  dml.service = ServiceId{1};
  dml.workers = {RnicId{4}, RnicId{0}, RnicId{8}};
  dml.pattern = traffic::CommPattern::kIncast;
  dml.per_flow_gbps = 30.0;
  dml.compute_time = msec(50);
  dml.comm_bytes = 800'000'000;
  traffic::DmlService svc(d->cluster, dml);
  svc.start();
  d->cluster.run_for(sec(21));
  d->faults.inject_pcie_downgrade(RnicId{4}, 0.25);  // 100G -> 25G drain
  d->cluster.run_for(sec(41));
  auto r = summarize(*d, core::ProblemCategory::kHighNetworkRtt);
  svc.stop();
  return r;
}

}  // namespace
}  // namespace rpm

int main() {
  using rpm::core::ProblemCategory;
  using rpm::bench::Deployment;

  std::vector<rpm::Row> rows = {
      {1, "RNIC flapping", "rnic-problem",
       [] {
         return rpm::simple_row(ProblemCategory::kRnicProblem,
                                [](Deployment& d) {
                                  return d.faults.inject_rnic_flapping(
                                      rpm::RnicId{5}, rpm::msec(400),
                                      rpm::msec(400));
                                });
       }},
      {1, "switch port flapping", "switch-network-problem",
       [] {
         return rpm::simple_row(ProblemCategory::kSwitchNetworkProblem,
                                [](Deployment& d) {
                                  return d.faults.inject_switch_port_flapping(
                                      rpm::fabric_link(d, 2), rpm::msec(400),
                                      rpm::msec(400));
                                });
       }},
      {2, "packet corruption (fiber/module)", "switch-network-problem",
       [] {
         return rpm::simple_row(ProblemCategory::kSwitchNetworkProblem,
                                [](Deployment& d) {
                                  return d.faults.inject_corruption(
                                      rpm::fabric_link(d, 5), 0.5);
                                });
       }},
      {3, "accidental RNIC down (*)", "rnic-problem",
       [] {
         return rpm::simple_row(ProblemCategory::kRnicProblem,
                                [](Deployment& d) {
                                  return d.faults.inject_rnic_down(
                                      rpm::RnicId{9});
                                });
       }},
      {4, "accidental host down (*)", "host-down",
       [] {
         return rpm::simple_row(ProblemCategory::kHostDown,
                                [](Deployment& d) {
                                  return d.faults.inject_host_down(
                                      rpm::HostId{3});
                                });
       }},
      {5, "PFC deadlock (*)", "switch-network-problem",
       [] {
         return rpm::simple_row(ProblemCategory::kSwitchNetworkProblem,
                                [](Deployment& d) {
                                  return d.faults.inject_pfc_deadlock(
                                      rpm::fabric_link(d, 7));
                                });
       }},
      {6, "RNIC route config missing (*)", "rnic-problem",
       [] {
         return rpm::simple_row(ProblemCategory::kRnicProblem,
                                [](Deployment& d) {
                                  return d.faults.inject_route_missing(
                                      rpm::RnicId{11});
                                });
       }},
      {7, "RNIC GID index missing (*)", "rnic-problem",
       [] {
         return rpm::simple_row(ProblemCategory::kRnicProblem,
                                [](Deployment& d) {
                                  return d.faults.inject_gid_index_missing(
                                      rpm::RnicId{6});
                                });
       }},
      {8, "switch ACL misconfiguration (*)", "switch-network-problem",
       [] {
         return rpm::simple_row(
             ProblemCategory::kSwitchNetworkProblem, [](Deployment& d) {
               // Deny one tenant pair at an agg switch.
               for (const auto& sw : d.cluster.topology().switches()) {
                 if (sw.tier == rpm::topo::SwitchTier::kAgg) {
                   return d.faults.inject_acl_error(
                       sw.id, rpm::IpAddr{},
                       d.cluster.topology().rnic(rpm::RnicId{12}).ip);
                 }
               }
               throw std::runtime_error("no agg switch");
             });
       }},
      {9, "PFC unconfigured/misconfigured headroom", "switch-network-problem",
       [] { return rpm::row_pfc_misconfigured(); }},
      {10, "uneven load balance (ECMP collision)", "high-network-rtt",
       [] { return rpm::row_uneven_load_balance(); }},
      {11, "interference between services", "high-network-rtt (both tenants)",
       [] { return rpm::row_service_interference(); }},
      {12, "CPU overload", "high-processing-delay",
       [] {
         return rpm::simple_row(ProblemCategory::kHighProcessingDelay,
                                [](Deployment& d) {
                                  return d.faults.inject_cpu_overload(
                                      rpm::HostId{5}, 0.97);
                                });
       }},
      {13, "PCIe link speed/width downgraded", "high-network-rtt (PFC storm)",
       [] { return rpm::row_pcie_downgrade(); }},
      {14, "incorrect PCIe/RNIC config (ACS/ATS)", "high-network-rtt "
       "(PFC storm)",
       [] { return rpm::row_pcie_downgrade(); }},
  };

  rpm::bench::print_header(
      "Table 2: the 14 problem root causes, injected and re-detected "
      "((*) = causes service failure in the paper)");
  std::printf("%-4s%-38s%-34s%-10s%s\n", "#", "root cause",
              "expected detection", "detected", "located at");
  std::printf("%-4s%-38s%-34s%-10s%s\n", "--", "----", "----", "----", "----");
  int detected = 0;
  for (const auto& row : rows) {
    const rpm::RowResult r = row.run();
    detected += r.detected ? 1 : 0;
    std::printf("%-4d%-38s%-34s%-10s%s\n", row.number, row.root_cause,
                row.expected, r.detected ? "YES" : "NO",
                r.located.c_str());
  }
  std::printf("\n%d / %zu root causes detected and categorized.\n", detected,
              rows.size());
  return 0;
}
