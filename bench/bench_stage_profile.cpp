// Submit→verdict wall-clock breakdown (ROADMAP "Streaming period close").
//
// Drives the Analyzer directly — synthetic ToR-mesh records batched over 64
// hosts, no fabric in the loop — across a grid of records/period × ingest
// worker threads, with the stage profiler on. Each cell reports end-to-end
// wall time, events/sec, and the per-stage profile (ingest.submit,
// ingest.drain_barrier, drain.triage/vote/sla/..., period.close), which is
// exactly the baseline the streaming-period-close work will optimize
// against: today everything after the barrier is serial on the sim thread,
// and the stage rows show it.
//
// Flags:
//   --records L   comma list of records/period      (default 100000,1000000)
//   --threads L   comma list of ingest threads      (default 0,1,2,4)
//   --reps N      measured periods per cell         (default 3)
//   --budget-ms B period-close watchdog budget, 0 = off (default 0)
//   --out PATH    output JSON                (default BENCH_profile.json)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/analyzer.h"
#include "core/controller.h"
#include "prof/prof.h"
#include "routing/ecmp.h"
#include "sim/scheduler.h"
#include "topo/topology.h"

namespace rpm {
namespace {

std::vector<std::uint64_t> parse_list(const char* s) {
  std::vector<std::uint64_t> out;
  std::uint64_t cur = 0;
  bool have = false;
  for (; *s != '\0'; ++s) {
    if (*s == ',') {
      if (have) out.push_back(cur);
      cur = 0;
      have = false;
    } else if (*s >= '0' && *s <= '9') {
      cur = cur * 10 + static_cast<std::uint64_t>(*s - '0');
      have = true;
    }
  }
  if (have) out.push_back(cur);
  return out;
}

struct CellResult {
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t periods = 0;
  std::string stages;  // JSON array
};

/// One (records/period, threads) cell: fresh Analyzer, fresh profiler
/// epoch; 1 warm-up period + `reps` measured periods.
CellResult run_cell(const topo::Topology& topo, const core::Controller& ctrl,
                    std::uint64_t records_per_period, std::size_t threads,
                    int reps, TimeNs budget) {
  constexpr std::size_t kBatch = 128;
  constexpr std::uint32_t kHosts = 64;

  sim::InlineScheduler sched;
  core::AnalyzerConfig cfg;
  cfg.period = sec(5);
  cfg.ingest.shards = 8;
  cfg.ingest.threads = threads;
  cfg.ingest.queue_capacity = 1 << 16;
  core::Analyzer analyzer(topo, ctrl, sched, cfg);

  const std::vector<topo::HostInfo>& hosts = topo.hosts();
  core::ProbeRecord proto;
  proto.kind = core::ProbeKind::kTorMesh;
  proto.status = core::ProbeStatus::kOk;
  proto.network_rtt = usec(5);
  proto.responder_delay = usec(2);
  proto.prober_delay = usec(3);

  std::uint64_t seq = 1;
  std::uint64_t next_id = 1;
  const auto run_period = [&](int period_idx) {
    sched.run_until(cfg.period * static_cast<TimeNs>(period_idx + 1));
    for (std::uint64_t done = 0; done < records_per_period; done += kBatch) {
      core::UploadBatch b;
      const std::size_t hi =
          static_cast<std::size_t>(done / kBatch) % kHosts % hosts.size();
      const topo::HostInfo& h = hosts[hi];
      b.host = h.id;
      b.seq = seq++;
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(kBatch, records_per_period - done));
      b.records.assign(n, proto);
      for (core::ProbeRecord& r : b.records) {
        r.id = next_id++;
        r.prober = h.rnics[0];
        r.prober_host = h.id;
        r.target = hosts[(hi + 1) % hosts.size()].rnics[0];
        r.sent_at = sched.now();
        // Spread RTTs so the SLA percentile tables do real work.
        r.network_rtt = usec(3) + static_cast<TimeNs>(r.id % 512) * 10;
      }
      analyzer.sink().submit(std::move(b));
    }
    (void)analyzer.analyze_now();
  };

  prof::ProfilerConfig pcfg;
  pcfg.period_close_budget = budget;
  pcfg.max_trace_events = 0;  // stats only; no trace allocation in the loop
  prof::profiler().enable(pcfg);
  run_period(0);  // warm-up: pool spin-up, dedup maps, bucket capacity
  prof::profiler().enable(pcfg);  // reset buffers; keep only measured reps

  const auto t0 = std::chrono::steady_clock::now();
  for (int p = 0; p < reps; ++p) run_period(p + 1);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  prof::profiler().disable();

  CellResult res;
  res.wall_ms = secs * 1e3;
  res.events_per_sec =
      static_cast<double>(records_per_period * static_cast<std::uint64_t>(
                                                   reps)) /
      (secs > 0 ? secs : 1e-9);
  res.periods = static_cast<std::uint64_t>(reps);
  res.stages = bench::stages_json(prof::profiler().report());
  return res;
}

int run(int argc, char** argv) {
  std::vector<std::uint64_t> records = {100000, 1000000};
  std::vector<std::uint64_t> threads = {0, 1, 2, 4};
  int reps = 3;
  std::uint64_t budget_ms = 0;
  std::string out_path = "BENCH_profile.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      records = parse_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = parse_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--budget-ms") == 0 && i + 1 < argc) {
      budget_ms = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--records L] [--threads L] [--reps N] "
                   "[--budget-ms B] [--out P]\n",
                   argv[0]);
      return 2;
    }
  }
  if (records.empty() || threads.empty() || reps < 1) {
    std::fprintf(stderr, "empty grid\n");
    return 2;
  }

  // 64-host 2-pod Clos; the workload addresses hosts by index so the cell
  // driver works for any size >= 1.
  topo::ClosConfig tcfg;
  tcfg.num_pods = 2;
  tcfg.tors_per_pod = 4;
  tcfg.aggs_per_pod = 2;
  tcfg.spines_per_plane = 2;
  tcfg.hosts_per_tor = 8;
  tcfg.rnics_per_host = 1;
  const topo::Topology topo = topo::build_clos(tcfg);
  routing::EcmpRouter router(topo);
  core::Controller ctrl(topo, router);

  bench::BenchJson out("stage_profile");
  const auto join = [](const std::vector<std::uint64_t>& v) {
    std::string s;
    for (std::uint64_t x : v) {
      if (!s.empty()) s += ',';
      s += std::to_string(x);
    }
    return s;
  };
  out.param("hosts", static_cast<std::uint64_t>(topo.hosts().size()))
      .param("shards", 8)
      .param("batch", 128)
      .param("reps", static_cast<std::uint64_t>(reps))
      .param("records_list", join(records))
      .param("threads_list", join(threads))
      .param("budget_ms", budget_ms);

  bench::print_header("Submit -> verdict wall-clock stage profile");
  bench::print_row_header({"records/period", "threads", "wall ms/period",
                           "events/sec", "overruns"});

  std::string runs = "[";
  bool first = true;
  prof::ProfileReport biggest;
  char buf[160];
  for (const std::uint64_t rpp : records) {
    for (const std::uint64_t th : threads) {
      const CellResult cell =
          run_cell(topo, ctrl, rpp, static_cast<std::size_t>(th), reps,
                   static_cast<TimeNs>(budget_ms) * 1000000);
      const std::uint64_t overruns = prof::profiler().budget_overruns();
      std::snprintf(buf, sizeof(buf),
                    "%s{\"records\":%llu,\"threads\":%llu,"
                    "\"wall_ms\":%.1f,\"events_per_sec\":%.0f,"
                    "\"budget_overruns\":%llu,\"stages\":",
                    first ? "" : ",",
                    static_cast<unsigned long long>(rpp),
                    static_cast<unsigned long long>(th), cell.wall_ms,
                    cell.events_per_sec,
                    static_cast<unsigned long long>(overruns));
      runs += buf;
      runs += cell.stages;
      runs += '}';
      first = false;
      biggest = prof::profiler().report();
      std::printf("%-22llu%-22llu%-22.1f%-22.0f%-22llu\n",
                  static_cast<unsigned long long>(rpp),
                  static_cast<unsigned long long>(th),
                  cell.wall_ms / reps, cell.events_per_sec,
                  static_cast<unsigned long long>(overruns));
    }
  }
  runs += "]";
  out.metric_raw("runs", runs);
  // Top-level stages row: the last (largest) cell, for the standard schema.
  out.stages_from(biggest);

  if (!out.write_file(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace rpm

int main(int argc, char** argv) { return rpm::run(argc, argv); }
