// Figure 7 reproduction: Agent CPU and memory overhead, and its linear
// scaling with the number of RNICs per host.
//
// Paper numbers (production, 8 RNICs/host): ~3% of one core, ~18.5 MB RSS,
// <300 Kbps per RNIC. We report our Agent's equivalents: probes+responses
// handled per second, estimated CPU fraction (measured wall time of Agent
// event processing vs simulated seconds), approximate resident state, and
// probe bandwidth per RNIC.
#include <chrono>

#include "bench_util.h"
#include "telemetry/metrics.h"

namespace rpm {
namespace {

/// Host-0 Agent activity pulled from the telemetry registry (summed over
/// probe kinds) rather than from Agent accessors — the same numbers an
/// operator would scrape in production.
struct AgentStats {
  double probes = 0.0;
  double responses = 0.0;
};

AgentStats agent_stats_from_registry() {
  const telemetry::Snapshot snap = telemetry::registry().snapshot();
  AgentStats s;
  s.probes = snap.sum("rpm_agent_probes_sent_total", {{"host", "0"}});
  s.responses = snap.sum("rpm_agent_responses_sent_total", {{"host", "0"}});
  return s;
}

void run() {
  bench::print_header(
      "Figure 7: Agent overhead vs RNICs per host (paper: ~3% core, "
      "~18.5 MB @ 8 RNICs)");
  bench::print_row_header({"rnics_per_host", "probe_pps", "est_cpu_pct",
                           "agent_mem_kb", "probe_kbps_per_rnic"});

  for (std::uint32_t rnics : {1u, 2u, 4u, 8u}) {
    topo::ClosConfig tcfg = bench::default_clos();
    tcfg.rnics_per_host = rnics;
    tcfg.hosts_per_tor = 1;  // keep total RNIC count moderate
    host::ClusterConfig ccfg;
    ccfg.fabric.step_interval = msec(1);
    bench::Deployment d(tcfg, ccfg);
    d.cluster.run_for(sec(5));

    const core::Agent& agent = d.rpm.agent(HostId{0});
    const AgentStats before = agent_stats_from_registry();
    const auto events0 = d.cluster.scheduler().executed_events();

    const auto wall0 = std::chrono::steady_clock::now();
    constexpr int kSimSeconds = 30;
    d.cluster.run_for(sec(kSimSeconds));
    const auto wall1 = std::chrono::steady_clock::now();

    const AgentStats after = agent_stats_from_registry();
    const double probes = (after.probes - before.probes) / kSimSeconds;
    const double responses =
        (after.responses - before.responses) / kSimSeconds;
    const double events =
        static_cast<double>(d.cluster.scheduler().executed_events() - events0);

    // CPU estimate: wall time attributable to this Agent's share of events,
    // spread over simulated seconds. (The paper measures the real daemon; we
    // measure the simulated daemon's event-processing cost.)
    const double wall_s =
        std::chrono::duration<double>(wall1 - wall0).count();
    const double agent_event_share =
        (probes + responses) * 6.0 * kSimSeconds / events;  // ~6 events/probe
    const double cpu_pct =
        100.0 * wall_s * agent_event_share / kSimSeconds;

    // Probe bandwidth: (probe + 2 ACKs) * 50 B per probe round.
    const double kbps_per_rnic =
        (probes / rnics) * 3 * 50 * 8 / 1e3;

    std::printf("%-22u%-22.0f%-22.2f%-22.1f%-22.1f\n", rnics,
                probes + responses, cpu_pct,
                static_cast<double>(agent.approx_memory_bytes()) / 1024.0,
                kbps_per_rnic);
  }
  std::printf(
      "\nTakeaway: overhead scales ~linearly with RNIC count and stays far "
      "below one core\nand tens of MB — the paper's 'deployable everywhere' "
      "claim. Probe bandwidth is a\nfew hundred Kbps per RNIC, negligible on "
      "100/200G links.\n");
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::run();
  return 0;
}
