// bench_sim_scale: event-loop throughput of the partitioned parallel
// scheduler vs the single-queue InlineScheduler baseline.
//
// Workload: one self-rescheduling probe actor per host of a Clos topology,
// assigned to its pod's partition (topo::build_pod_partitions). Every event
// burns a fixed deterministic compute kernel (xorshift rounds — standing in
// for probe matching, classification, and counter updates), re-arms itself
// one interval later, and every `cross_every`-th firing posts a cross-pod
// event to a peer host one fabric RTT away — so the conservative windows
// carry real cross-cut traffic through the per-edge inboxes.
//
// Two throughput numbers per cell, both reported to BENCH_sim.json:
//   * events_per_sec      — wall clock on THIS machine, with
//                           workers = min(partitions, hardware threads).
//   * cp_events_per_sec   — critical-path throughput: events divided by
//                           (sum over windows of the slowest partition's
//                           drain + inbox merges), the wall-time bound with
//                           one core per partition
//                           (ParallelConfig::measure_critical_path). On a
//                           multi-core runner wall speedup approaches this;
//                           on a single-core box only cp_speedup can show
//                           the partitioning win. `cores` in params says
//                           which regime produced the file.
//
// Usage:
//   bench_sim_scale [--hosts 1024,10240] [--partitions 1,2,4,8]
//                   [--interval-us 200] [--duration-ms 10]
//                   [--work-rounds 96] [--out BENCH_sim.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"
#include "topo/partition.h"
#include "topo/topology.h"

namespace rpm::bench {
namespace {

std::vector<std::uint64_t> parse_list(const char* s) {
  std::vector<std::uint64_t> out;
  std::uint64_t cur = 0;
  bool have = false;
  for (const char* p = s;; ++p) {
    if (*p >= '0' && *p <= '9') {
      cur = cur * 10 + static_cast<std::uint64_t>(*p - '0');
      have = true;
    } else {
      if (have) out.push_back(cur);
      cur = 0;
      have = false;
      if (*p == '\0') break;
    }
  }
  return out;
}

/// A Clos shape with approximately `hosts` hosts across 8 pods. The fabric
/// tier's propagation delay is the cut-edge lookahead, so wide windows —
/// realistic for pod-scale fabrics (tens of microseconds of fiber).
topo::ClosConfig clos_for_hosts(std::uint64_t hosts) {
  topo::ClosConfig cfg;
  cfg.num_pods = 8;
  cfg.tors_per_pod = hosts >= 100000 ? 16 : hosts >= 10000 ? 8 : 4;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.rnics_per_host = 1;
  const std::uint64_t tors = cfg.num_pods * cfg.tors_per_pod;
  cfg.hosts_per_tor = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(1, hosts / tors));
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  cfg.fabric_link.propagation = usec(5);  // cut-edge lookahead = 5 us
  return cfg;
}

/// Deterministic per-event compute kernel.
inline std::uint64_t spin(std::uint64_t x, std::uint32_t rounds) {
  for (std::uint32_t i = 0; i < rounds; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

struct CellResult {
  std::uint64_t hosts = 0;
  std::uint64_t partitions = 0;
  std::uint64_t workers = 0;
  std::uint64_t events = 0;
  std::uint64_t cross = 0;
  std::uint64_t windows = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t cp_ns = 0;  // critical path (== wall_ns for the baseline)
};

struct Knobs {
  TimeNs interval = usec(200);
  TimeNs duration = msec(10);
  std::uint32_t work_rounds = 96;
  std::uint32_t cross_every = 8;
};

/// Per-host actor state; `sink` defeats dead-code elimination.
struct Actor {
  sim::Scheduler* sched = nullptr;       // the host's partition
  sim::Scheduler* peer_sched = nullptr;  // a cross-pod peer's partition
  std::uint64_t state = 0;
  std::uint64_t fires = 0;
};

class Workload {
 public:
  Workload(const topo::Topology& topo, const topo::PartitionMap& map,
           std::vector<sim::Scheduler*> partition_scheds, Knobs knobs)
      : knobs_(knobs), actors_(topo.num_hosts()) {
    const std::uint64_t n = topo.num_hosts();
    for (std::uint64_t h = 0; h < n; ++h) {
      Actor& a = actors_[h];
      a.state = h * 0x9E3779B97F4A7C15ull + 1;
      a.sched = partition_scheds[map.host_partition[h]];
      // Cross-pod peer: half the fleet away — always a different pod.
      const std::uint64_t peer = (h + n / 2) % n;
      a.peer_sched = partition_scheds[map.host_partition[peer]];
    }
  }

  void start() {
    for (std::uint64_t h = 0; h < actors_.size(); ++h) {
      // Phase-spread so the first window isn't one synchronized burst.
      arm(h, static_cast<TimeNs>(h % static_cast<std::uint64_t>(
                                         knobs_.interval)));
    }
  }

  [[nodiscard]] std::uint64_t events() const {
    std::uint64_t total = 0;
    for (const Actor& a : actors_) total += a.fires;
    return total + cross_fired_;
  }
  [[nodiscard]] std::uint64_t sink() const {
    return sink_.load(std::memory_order_relaxed);
  }

 private:
  void arm(std::uint64_t h, TimeNs delay) {
    Actor& a = actors_[h];
    a.sched->schedule_at(a.sched->now() + delay, [this, h] { fire(h); });
  }

  void fire(std::uint64_t h) {
    Actor& a = actors_[h];
    a.state = spin(a.state, knobs_.work_rounds);
    ++a.fires;
    if (a.fires % knobs_.cross_every == 0) {
      // A cross-pod probe: lands one fabric RTT later on the peer's
      // partition; the receiver just burns the same kernel. The counter is
      // only touched by the destination partition's drainer — but two
      // *different* sources may target one destination, so keep it atomic.
      const std::uint32_t rounds = knobs_.work_rounds;
      a.peer_sched->schedule_at(a.sched->now() + 2 * usec(5),
                                [this, seed = a.state, rounds] {
                                  sink_fold(spin(seed, rounds));
                                  cross_fired_.fetch_add(
                                      1, std::memory_order_relaxed);
                                });
    }
    arm(h, knobs_.interval);
  }

  void sink_fold(std::uint64_t v) {
    sink_.fetch_xor(v, std::memory_order_relaxed);
  }

  Knobs knobs_;
  std::vector<Actor> actors_;
  std::atomic<std::uint64_t> cross_fired_{0};
  std::atomic<std::uint64_t> sink_{0};
};

CellResult run_cell(const topo::Topology& topo, const topo::PartitionMap& map,
                    std::uint64_t partitions, Knobs knobs) {
  CellResult res;
  res.hosts = topo.num_hosts();
  res.partitions = partitions;

  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t wall_ns = 0;

  if (partitions <= 1) {
    // The real pre-partitioning backend, not a 1-partition ParallelScheduler:
    // this is the baseline every speedup is measured against.
    sim::InlineScheduler sched;
    std::vector<sim::Scheduler*> scheds(1, &sched);
    topo::PartitionMap one;  // all hosts -> partition 0
    one.num_partitions = 1;
    one.host_partition.assign(topo.num_hosts(), 0);
    Workload w(topo, one, scheds, knobs);
    w.start();
    sched.run_until(knobs.duration);
    wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    res.workers = 1;
    res.events = w.events();
    res.wall_ns = wall_ns;
    res.cp_ns = wall_ns;
    sink = w.sink();
  } else {
    sim::ParallelConfig cfg;
    cfg.partitions = static_cast<std::uint32_t>(partitions);
    cfg.lookahead = map.cut_lookahead;
    cfg.workers = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(partitions, hw));
    cfg.measure_critical_path = true;
    sim::ParallelScheduler ps(cfg);
    std::vector<sim::Scheduler*> scheds;
    for (std::uint32_t p = 0; p < cfg.partitions; ++p) {
      scheds.push_back(&ps.partition(p));
    }
    Workload w(topo, map, scheds, knobs);
    w.start();
    ps.run_until(knobs.duration);
    wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    res.workers = cfg.workers;
    res.events = w.events();
    res.cross = ps.cross_events();
    res.windows = ps.sync_windows();
    res.wall_ns = wall_ns;
    res.cp_ns = std::max<std::uint64_t>(1, ps.critical_path_ns());
    sink = w.sink();
  }
  if (sink == 0xDEADBEEF) std::printf("# sink %llu\n",
                                      static_cast<unsigned long long>(sink));
  return res;
}

double mps(std::uint64_t events, std::uint64_t ns) {
  return ns == 0 ? 0.0
                 : static_cast<double>(events) / (static_cast<double>(ns) / 1e9);
}

int run(int argc, char** argv) {
  std::vector<std::uint64_t> hosts = {1024, 10240};
  std::vector<std::uint64_t> partitions = {1, 2, 4, 8};
  Knobs knobs;
  std::string out = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      hosts = parse_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--partitions") == 0 && i + 1 < argc) {
      partitions = parse_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--interval-us") == 0 && i + 1 < argc) {
      knobs.interval = usec(std::stoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      knobs.duration = msec(std::stoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--work-rounds") == 0 && i + 1 < argc) {
      knobs.work_rounds = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", argv[i]);
      return 2;
    }
  }

  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  print_header("Partitioned scheduler scaling (events/sec)");
  print_row_header({"hosts", "partitions", "workers", "events", "Mev/s wall",
                    "Mev/s cp", "speedup wall", "speedup cp"});

  std::string runs_json = "[";
  bool first = true;
  double headline_cp = 0.0;
  double headline_wall = 0.0;
  for (const std::uint64_t h : hosts) {
    const topo::Topology topo = topo::build_clos(clos_for_hosts(h));
    double base_wall_mps = 0.0;
    double base_cp_mps = 0.0;
    for (const std::uint64_t p : partitions) {
      const topo::PartitionMap map = topo::build_pod_partitions(
          topo, static_cast<std::uint32_t>(p));
      const CellResult r = run_cell(topo, map, p, knobs);
      const double wall = mps(r.events, r.wall_ns);
      const double cp = mps(r.events, r.cp_ns);
      if (p == 1) {
        base_wall_mps = wall;
        base_cp_mps = cp;
      }
      const double su_wall = base_wall_mps > 0 ? wall / base_wall_mps : 0.0;
      const double su_cp = base_cp_mps > 0 ? cp / base_cp_mps : 0.0;
      if (p == 4 && h >= 10000) {
        headline_cp = su_cp;
        headline_wall = su_wall;
      }
      std::printf("%-22llu%-22llu%-22llu%-22llu%-22.2f%-22.2f%-22.2f%-22.2f\n",
                  static_cast<unsigned long long>(r.hosts),
                  static_cast<unsigned long long>(r.partitions),
                  static_cast<unsigned long long>(r.workers),
                  static_cast<unsigned long long>(r.events), wall / 1e6,
                  cp / 1e6, su_wall, su_cp);
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "%s{\"hosts\":%llu,\"partitions\":%llu,\"workers\":%llu,"
          "\"events\":%llu,\"cross_events\":%llu,\"windows\":%llu,"
          "\"events_per_sec\":%.0f,\"cp_events_per_sec\":%.0f,"
          "\"speedup_wall\":%.2f,\"speedup_cp\":%.2f}",
          first ? "" : ",", static_cast<unsigned long long>(r.hosts),
          static_cast<unsigned long long>(r.partitions),
          static_cast<unsigned long long>(r.workers),
          static_cast<unsigned long long>(r.events),
          static_cast<unsigned long long>(r.cross),
          static_cast<unsigned long long>(r.windows), wall, cp, su_wall,
          su_cp);
      runs_json += buf;
      first = false;
    }
  }
  runs_json += ']';

  BenchJson json("sim_scale");
  json.param("cores", hw)
      .param("interval_us", static_cast<std::uint64_t>(knobs.interval / 1000))
      .param("duration_ms",
             static_cast<std::uint64_t>(knobs.duration / 1000000))
      .param("work_rounds", knobs.work_rounds)
      .param("cross_every", knobs.cross_every)
      .metric_raw("runs", runs_json)
      .metric("speedup_cp_4p", headline_cp)
      .metric("speedup_wall_4p", headline_wall);
  if (!json.write_file(out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s (cores=%u; on a single-core runner only the\n"
              "critical-path columns can show the partitioning win)\n",
              out.c_str(), hw);
  return 0;
}

}  // namespace
}  // namespace rpm::bench

int main(int argc, char** argv) { return rpm::bench::run(argc, argv); }
