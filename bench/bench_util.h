// Shared plumbing for the per-figure/table reproduction benches: standard
// cluster builds, a deployed R-Pingmesh wrapper, series printing.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "host/cluster.h"
#include "traffic/dml.h"

namespace rpm::bench {

/// The default evaluation fabric: a 2-pod, 3-tier Clos (scaled down from the
/// paper's thousands of servers; the shapes under test do not depend on
/// scale).
inline topo::ClosConfig default_clos() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

/// A cluster with R-Pingmesh deployed and started.
struct Deployment {
  explicit Deployment(topo::ClosConfig topo_cfg = default_clos(),
                      host::ClusterConfig cluster_cfg = {},
                      core::RPingmeshConfig rpm_cfg = {})
      : cluster(topo::build_clos(topo_cfg), cluster_cfg),
        rpm(cluster, rpm_cfg),
        faults(cluster) {
    rpm.start();
  }

  host::Cluster cluster;
  core::RPingmesh rpm;
  faults::FaultInjector faults;
};

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_row_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%-22s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-22s", "----");
  std::printf("\n");
}

/// Latest problem of a category in a report, or nullptr.
inline const core::Problem* find_problem(const core::PeriodReport& rep,
                                         core::ProblemCategory cat) {
  for (const core::Problem& p : rep.problems) {
    if (p.category == cat) return &p;
  }
  return nullptr;
}

}  // namespace rpm::bench
