// Shared plumbing for the per-figure/table reproduction benches: standard
// cluster builds, a deployed R-Pingmesh wrapper, series printing, and the
// BENCH_*.json perf-trajectory writer.
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "host/cluster.h"
#include "prof/prof.h"
#include "traffic/dml.h"

namespace rpm::bench {

/// The default evaluation fabric: a 2-pod, 3-tier Clos (scaled down from the
/// paper's thousands of servers; the shapes under test do not depend on
/// scale).
inline topo::ClosConfig default_clos() {
  topo::ClosConfig cfg;
  cfg.num_pods = 2;
  cfg.tors_per_pod = 2;
  cfg.aggs_per_pod = 2;
  cfg.spines_per_plane = 2;
  cfg.hosts_per_tor = 2;
  cfg.rnics_per_host = 2;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

/// A cluster with R-Pingmesh deployed and started.
struct Deployment {
  explicit Deployment(topo::ClosConfig topo_cfg = default_clos(),
                      host::ClusterConfig cluster_cfg = {},
                      core::RPingmeshConfig rpm_cfg = {})
      : cluster(topo::build_clos(topo_cfg), cluster_cfg),
        rpm(cluster, rpm_cfg),
        faults(cluster) {
    rpm.start();
  }

  host::Cluster cluster;
  core::RPingmesh rpm;
  faults::FaultInjector faults;
};

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_row_header(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%-22s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-22s", "----");
  std::printf("\n");
}

/// Latest problem of a category in a report, or nullptr.
inline const core::Problem* find_problem(const core::PeriodReport& rep,
                                         core::ProblemCategory cat) {
  for (const core::Problem& p : rep.problems) {
    if (p.category == cat) return &p;
  }
  return nullptr;
}

/// The one BENCH_*.json schema every bench emits, so the perf trajectory is
/// diffable across PRs with a single validator:
///
///   {"bench": "<name>",
///    "params":  {...},   // workload knobs (deterministic)
///    "metrics": {...},   // measured results
///    "stages":  [...]}   // optional prof::ProfileReport breakdown
///
/// Keys keep insertion order; values are written verbatim in a deterministic
/// format, so two same-seed runs emit byte-identical JSON as long as the
/// caller keeps wall-clock metrics (cpu_ms and friends) out of --dump mode.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  BenchJson& param(const std::string& k, std::uint64_t v) {
    return add(params_, k, std::to_string(v));
  }
  BenchJson& param(const std::string& k, const std::string& v) {
    return add(params_, k, quote(v));
  }
  /// `json` must already be valid JSON (object, array, number, ...).
  BenchJson& param_raw(const std::string& k, const std::string& json) {
    return add(params_, k, json);
  }

  BenchJson& metric(const std::string& k, std::uint64_t v) {
    return add(metrics_, k, std::to_string(v));
  }
  BenchJson& metric(const std::string& k, double v,
                    const char* fmt = "%.2f") {
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return add(metrics_, k, buf);
  }
  BenchJson& metric(const std::string& k, const std::string& v) {
    return add(metrics_, k, quote(v));
  }
  BenchJson& metric_raw(const std::string& k, const std::string& json) {
    return add(metrics_, k, json);
  }

  /// Attach the per-stage wall-clock breakdown of a profiler run (see
  /// stages_json below).
  BenchJson& stages_from(const prof::ProfileReport& rep);

  [[nodiscard]] std::string str() const {
    std::string out = "{\"bench\":" + quote(bench_);
    out += ",\"params\":{" + params_ + '}';
    out += ",\"metrics\":{" + metrics_ + '}';
    if (has_stages_) out += ",\"stages\":[" + stages_ + ']';
    out += '}';
    return out;
  }

  bool write_file(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << str() << "\n";
    return static_cast<bool>(f);
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }
  BenchJson& add(std::string& dst, const std::string& k,
                 const std::string& v) {
    if (!dst.empty()) dst += ',';
    dst += quote(k) + ':' + v;
    return *this;
  }

  std::string bench_;
  std::string params_;
  std::string metrics_;
  std::string stages_;
  bool has_stages_ = false;
};

/// JSON array of one profiler run's per-stage rows — stages with zero
/// samples are skipped. Shared by BenchJson::stages_from and benches that
/// embed one breakdown per workload cell.
inline std::string stages_json(const prof::ProfileReport& rep) {
  std::string out = "[";
  char buf[256];
  bool first = true;
  for (std::size_t i = 0; i < prof::kNumStages; ++i) {
    const prof::StageStats& st = rep.stages[i];
    if (st.count == 0) continue;
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"stage\":\"%s\",\"count\":%llu,\"total_ns\":%llu,"
        "\"min_ns\":%llu,\"max_ns\":%llu,\"p50_ns\":%.1f,\"p99_ns\":%.1f}",
        first ? "" : ",", prof::stage_name(static_cast<prof::Stage>(i)),
        static_cast<unsigned long long>(st.count),
        static_cast<unsigned long long>(st.total_ns),
        static_cast<unsigned long long>(st.min_ns),
        static_cast<unsigned long long>(st.max_ns), st.p50_ns(), st.p99_ns());
    out += buf;
    first = false;
  }
  out += ']';
  return out;
}

inline BenchJson& BenchJson::stages_from(const prof::ProfileReport& rep) {
  const std::string arr = stages_json(rep);
  stages_ = arr.substr(1, arr.size() - 2);
  has_stages_ = true;
  return *this;
}

}  // namespace rpm::bench
