// Figure 6 reproduction.
//
// (left) Localization accuracy over a month of problems. The paper reports
// 207 problems, 85% accurate overall: all 157 switch problems accurate, but
// only 20/50 RNIC problems confirmed — the other 30 were really the service
// occupying the Agent's CPU (probe noise). We run a scaled-down schedule of
// fault episodes with ground truth and score the Analyzer twice:
//   * filters OFF — reproduces the paper's initial deployment (RNIC false
//     positives from Agent-CPU occupation);
//   * filters ON  — reproduces the fixed deployment (multi-RNIC simultaneity
//     + responder-delay checks eliminate the false positives).
//
// (right) The signature of the noise: probes to MULTIPLE RNICs of one host
// "dropped" at the same moment.
#include "bench_util.h"

namespace rpm {
namespace {

struct Score {
  int reported = 0;
  int accurate = 0;
  int switch_reported = 0;
  int switch_accurate = 0;
  int rnic_reported = 0;
  int rnic_confirmed = 0;
  int noise_filtered = 0;
};

enum class EpisodeKind { kSwitchFault, kRnicFault, kAgentCpu };

void run_episode(EpisodeKind kind, std::uint64_t seed, bool filters,
                 Score& score) {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = msec(1);  // no fluid flows in these episodes
  ccfg.seed = seed;
  core::RPingmeshConfig rcfg;
  rcfg.analyzer.enable_cpu_noise_filters = filters;
  bench::Deployment d(bench::default_clos(), ccfg, rcfg);
  Rng rng(seed * 977 + 13);

  d.cluster.run_for(sec(21));  // settle + one clean period

  faults::FaultRecord truth;
  switch (kind) {
    case EpisodeKind::kSwitchFault: {
      // Random fabric (switch-switch) cable; random symptom.
      std::vector<LinkId> fabric_links;
      for (const topo::Link& l : d.cluster.topology().links()) {
        if (l.from.is_switch() && l.to.is_switch()) fabric_links.push_back(l.id);
      }
      const LinkId victim = fabric_links[rng.index(fabric_links.size())];
      const int pick = static_cast<int>(rng.uniform_int(0, 2));
      int h = 0;
      if (pick == 0) {
        h = d.faults.inject_switch_port_flapping(victim, msec(400), msec(400));
      } else if (pick == 1) {
        h = d.faults.inject_corruption(victim, 0.5);
      } else {
        h = d.faults.inject_pfc_deadlock(victim);
      }
      truth = d.faults.record(h);
      break;
    }
    case EpisodeKind::kRnicFault: {
      const RnicId victim{
          static_cast<std::uint32_t>(rng.index(d.cluster.num_rnics()))};
      const int pick = static_cast<int>(rng.uniform_int(0, 2));
      int h = 0;
      if (pick == 0) {
        h = d.faults.inject_rnic_down(victim);
      } else if (pick == 1) {
        h = d.faults.inject_gid_index_missing(victim);
      } else {
        h = d.faults.inject_rnic_flapping(victim, msec(500), msec(300));
      }
      truth = d.faults.record(h);
      break;
    }
    case EpisodeKind::kAgentCpu: {
      const HostId victim{
          static_cast<std::uint32_t>(rng.index(d.cluster.num_hosts()))};
      truth = d.faults.record(d.faults.inject_agent_cpu_occupation(victim));
      break;
    }
  }

  d.cluster.run_for(sec(41));  // one fully-faulted analysis period
  const auto* rep = d.rpm.analyzer().last_report();

  // Score the report against ground truth.
  for (const auto& p : rep->problems) {
    if (p.category == core::ProblemCategory::kSwitchNetworkProblem) {
      ++score.reported;
      ++score.switch_reported;
      bool hit = false;
      if (kind == EpisodeKind::kSwitchFault) {
        const LinkId peer = d.cluster.topology().link(truth.link).peer;
        for (LinkId l : p.suspect_links) {
          if (l == truth.link || l == peer) hit = true;
        }
      }
      if (hit) {
        ++score.accurate;
        ++score.switch_accurate;
      }
    } else if (p.category == core::ProblemCategory::kRnicProblem) {
      ++score.reported;
      ++score.rnic_reported;
      if (kind == EpisodeKind::kRnicFault && p.rnic == truth.rnic) {
        ++score.accurate;
        ++score.rnic_confirmed;
      }
    } else if (p.category == core::ProblemCategory::kAgentCpuNoise) {
      if (kind == EpisodeKind::kAgentCpu) ++score.noise_filtered;
    }
  }
}

Score run_schedule(bool filters) {
  // Scaled-down month: 24 switch faults, 6 RNIC faults, 10 Agent-CPU
  // occupation episodes (paper ratio: 157 switch / 20 real RNIC / 30 noise).
  Score s;
  std::uint64_t seed = 1;
  for (int i = 0; i < 24; ++i) {
    run_episode(EpisodeKind::kSwitchFault, seed++, filters, s);
  }
  for (int i = 0; i < 6; ++i) {
    run_episode(EpisodeKind::kRnicFault, seed++, filters, s);
  }
  for (int i = 0; i < 10; ++i) {
    run_episode(EpisodeKind::kAgentCpu, seed++, filters, s);
  }
  return s;
}

void print_score(const char* label, const Score& s) {
  std::printf("%s\n", label);
  std::printf("  problems reported            : %d\n", s.reported);
  std::printf("  accurate                     : %d (%.0f%%)\n", s.accurate,
              s.reported ? 100.0 * s.accurate / s.reported : 0.0);
  std::printf("  switch problems reported     : %d, accurate %d (%.0f%%)\n",
              s.switch_reported, s.switch_accurate,
              s.switch_reported ? 100.0 * s.switch_accurate / s.switch_reported
                                : 0.0);
  std::printf("  RNIC problems reported       : %d, confirmed %d\n",
              s.rnic_reported, s.rnic_confirmed);
  std::printf("  Agent-CPU episodes filtered  : %d / 10\n", s.noise_filtered);
}

void run_right_panel() {
  // Figure 6 (right): the tell-tale signature of CPU-occupation noise.
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = msec(1);
  bench::Deployment d(bench::default_clos(), ccfg);
  d.cluster.run_for(sec(21));
  d.faults.inject_agent_cpu_occupation(HostId{2});
  d.cluster.run_for(sec(41));
  const auto* rep = d.rpm.analyzer().last_report();
  bench::print_header(
      "Figure 6 (right): simultaneous multi-RNIC 'drops' on one host");
  std::printf("timeouts classified as agent-cpu noise : %zu\n",
              rep->timeouts_agent_cpu);
  std::printf("timeouts classified as RNIC problems   : %zu\n",
              rep->timeouts_rnic);
  const auto* noise =
      bench::find_problem(*rep, core::ProblemCategory::kAgentCpuNoise);
  std::printf("noise verdict emitted for host          : %s\n",
              noise != nullptr
                  ? d.cluster.topology().host(noise->host).name.c_str()
                  : "(none)");
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::bench::print_header(
      "Figure 6 (left): localization accuracy over a fault schedule "
      "(24 switch + 6 RNIC + 10 Agent-CPU episodes)");
  const rpm::Score off = rpm::run_schedule(/*filters=*/false);
  print_score("\n-- Analyzer WITHOUT Fig. 6 noise filters (paper's initial "
              "deployment) --",
              off);
  const rpm::Score on = rpm::run_schedule(/*filters=*/true);
  print_score("\n-- Analyzer WITH noise filters (paper's fix) --", on);
  std::printf(
      "\nExpected shape: switch accuracy ~100%% in both runs; RNIC false "
      "positives from\nAgent-CPU occupation disappear once the filters are "
      "on (paper: 30 of 50 RNIC\nreports were this noise).\n");
  rpm::run_right_panel();
  return 0;
}
