// Figure 2 reproduction: P99 software RTT measured by (TCP) Pingmesh tracks
// the hosts' CPU load, not the network. R-Pingmesh's hardware-timestamped
// network RTT stays flat across the same sweep because host scheduling
// delays cancel out of (⑤-②)-(④-③).
//
// Paper shape to reproduce: software P99 RTT rises by orders of magnitude
// with load; hardware network RTT does not.
#include "common/stats.h"
#include "pingmesh/pingmesh.h"

#include "bench_util.h"

namespace rpm {
namespace {

void run() {
  bench::Deployment d;
  pingmesh::SoftwarePingmesh software(d.cluster);
  d.cluster.run_for(sec(2));

  bench::print_header(
      "Figure 2: P99 software RTT (Pingmesh) vs hardware network RTT "
      "(R-Pingmesh) as host load varies");
  bench::print_row_header({"host_load", "sw_p99_rtt_us", "hw_p99_rtt_us",
                           "hw_p99_procdelay_us"});

  for (double load : {0.1, 0.3, 0.5, 0.7, 0.85, 0.95}) {
    for (const topo::HostInfo& h : d.cluster.topology().hosts()) {
      d.cluster.host(h.id).set_cpu_load(load);
    }
    // Software probes between a fixed cross-pod pair.
    PercentileWindow sw;
    for (int i = 0; i < 300; ++i) {
      software.probe(RnicId{0}, RnicId{12},
                     [&sw](const pingmesh::SoftwarePingResult& r) {
                       if (r.ok) sw.add(static_cast<double>(r.software_rtt));
                     });
      d.cluster.run_for(msec(3));
    }
    // Let an R-Pingmesh analysis period complete under this load.
    d.cluster.run_for(sec(21));
    const auto* rep = d.rpm.analyzer().last_report();
    std::printf("%-22.2f%-22.1f%-22.1f%-22.1f\n", load, sw.percentile(0.99) / 1e3,
                rep->cluster_sla.rtt_p99 / 1e3,
                rep->cluster_sla.proc_p99 / 1e3);
  }
  std::printf(
      "\nTakeaway: software RTT balloons with load (Pingmesh cannot tell "
      "host from network);\nR-Pingmesh's network RTT stays flat and the load "
      "shows up where it belongs: processing delay.\n");
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::run();
  return 0;
}
