// Figure 9 reproduction: training throughput keeps decreasing, the service
// team suspects network congestion — but R-Pingmesh shows the network RTT
// is *decreasing* (less traffic!) and processing delay is stable, so neither
// network nor CPU is the bottleneck. The real culprit is a compute-side bug
// (reproduced here as a growing compute slowdown).
#include <cstdlib>

#include "bench_util.h"
#include "cc/cc.h"

namespace rpm {
namespace {

void run() {
  host::ClusterConfig ccfg;
  ccfg.fabric.step_interval = usec(500);
  core::RPingmeshConfig rcfg;
  // The job's own comm bursts are its normal working point, not a problem;
  // alert only well above it.
  rcfg.analyzer.high_rtt_threshold = msec(2);
  bench::Deployment d(bench::default_clos(), ccfg, rcfg);
  static cc::Dcqcn dcqcn;  // production default: queues stay at the ECN knee
  traffic::DmlConfig dml;
  dml.controller = &dcqcn;
  dml.service = ServiceId{1};
  dml.workers = {RnicId{0}, RnicId{2}, RnicId{4},  RnicId{6},
                 RnicId{8}, RnicId{10}, RnicId{12}, RnicId{14}};
  dml.pattern = traffic::CommPattern::kAllToAll;
  dml.per_flow_gbps = 13.5;  // 7 flows/NIC: ~95G bursts during comm
  dml.compute_time = msec(250);
  dml.comm_bytes = 120'000'000;
  traffic::DmlService svc(d.cluster, dml);
  d.rpm.watch_service(
      {dml.service, [&svc] { return svc.relative_throughput(); }});
  svc.start();
  d.cluster.run_for(sec(21));

  bench::print_header(
      "Figure 9: continuously decreasing throughput with DECREASING RTT and "
      "stable processing delay => network innocent");
  bench::print_row_header({"period", "train_tp", "avg_net_Gbps",
                           "svc_rtt_mean_us", "proc_p99_us", "net_innocent"});

  double slowdown = 1.0;
  for (int period = 1; period <= 8; ++period) {
    if (period >= 3) {
      slowdown *= 1.6;  // the compute bug keeps getting worse
      svc.set_compute_slowdown(slowdown);
    }
    d.cluster.run_for(sec(20));
    const auto* rep = d.rpm.analyzer().last_report();
    // Mean service RTT: with the job communicating less per unit time, the
    // fraction of probes that sample comm-phase queues falls — the paper's
    // "RTT is also decreasing" signal.
    double svc_rtt = 0;
    for (const auto& [sid, sla] : rep->service_slas) {
      if (sid == dml.service) svc_rtt = sla.rtt_mean / 1e3;
    }
    std::printf("%-22d%-22.3f%-22.1f%-22.1f%-22.1f%s\n", period,
                svc.relative_throughput(),
                svc.avg_network_throughput_Bps() * 8e-9, svc_rtt,
                rep->cluster_sla.proc_p99 / 1e3,
                d.rpm.analyzer().network_innocent(dml.service) ? "YES" : "no");
    if (getenv("RPM_DBG")) {
      for (const auto& p : rep->problems)
        std::printf("      [%s/%s] %s\n", core::priority_name(p.priority),
                    core::problem_category_name(p.category), p.summary.c_str());
    }
  }
  std::printf(
      "\nTakeaway: throughput and tail RTT fall TOGETHER while processing "
      "delay is flat.\nR-Pingmesh's verdict stays 'network innocent', "
      "steering the investigation to the\ncompute side (the paper's case: a "
      "bug in the training code).\n");
  svc.stop();
}

}  // namespace
}  // namespace rpm

int main() {
  rpm::run();
  return 0;
}
