// Chaos fuzzer CLI: drive a batch of seeded random campaigns through the
// deployed R-Pingmesh, judge each against the invariant oracles, shrink any
// failure to a minimal plan, and write a deterministic FuzzReport JSON.
// Same flags => byte-identical report (CI runs the batch twice and diffs).
//
//   $ ./examples/chaos_fuzz [--seeds N] [--base-seed S] [--out PATH]
//                           [--corpus-dir DIR] [--pods P] [--duration SECS]
//
// Exit status: 0 when every seed passed every oracle, 1 otherwise.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/fuzz.h"

int main(int argc, char** argv) {
  using namespace rpm;

  chaos::FuzzConfig cfg;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const auto arg_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "chaos_fuzz: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      cfg.num_seeds = std::atoi(arg_value());
    } else if (std::strcmp(argv[i], "--base-seed") == 0) {
      cfg.base_seed = std::strtoull(arg_value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = arg_value();
    } else if (std::strcmp(argv[i], "--corpus-dir") == 0) {
      cfg.corpus_dir = arg_value();
    } else if (std::strcmp(argv[i], "--pods") == 0) {
      cfg.deployment.pods = static_cast<std::size_t>(std::atoi(arg_value()));
      cfg.alternate_pods = 0;  // explicit pod count: no alternation
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      cfg.gen.duration = sec(std::atoi(arg_value()));
    } else {
      std::fprintf(stderr, "chaos_fuzz: unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const chaos::FuzzReport rep = chaos::run_fuzz(cfg);

  std::printf("chaos_fuzz: %d seed(s) from %llu, %d failure(s)\n",
              rep.num_seeds, static_cast<unsigned long long>(rep.base_seed),
              rep.failures);
  for (const auto& s : rep.seeds) {
    if (s.violations.empty()) continue;
    std::printf("  seed %llu FAILED:\n",
                static_cast<unsigned long long>(s.seed));
    for (const auto& v : s.violations) {
      std::printf("    %s: %s\n", v.oracle.c_str(), v.detail.c_str());
    }
  }

  const std::string json = rep.to_json();
  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "chaos_fuzz: cannot open %s\n", out_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("FuzzReport written to %s\n", out_path.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }

  return rep.ok() ? 0 : 1;
}
