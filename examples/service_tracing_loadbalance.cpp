// Service-tracing-guided load balancing (§7.3).
//
// Two tenants' elephant flows collide on one ToR uplink (ECMP hash
// collision, Figure 13b). Service Tracing measures the RTT of exactly the
// paths the services use and fingers the congested link. The remedy is the
// paper's: the service calls modify_qp with a NEW source port, ECMP
// re-hashes the flow onto a parallel path, and the tail RTT collapses.
//
//   $ ./examples/service_tracing_loadbalance
#include <cstdio>

#include "cc/cc.h"
#include "core/rpingmesh.h"
#include "traffic/dml.h"

int main() {
  using namespace rpm;

  topo::ClosConfig topo_cfg;
  topo_cfg.num_pods = 2;
  topo_cfg.tors_per_pod = 2;
  topo_cfg.aggs_per_pod = 2;
  topo_cfg.spines_per_plane = 2;
  topo_cfg.hosts_per_tor = 2;
  topo_cfg.rnics_per_host = 2;
  topo_cfg.host_link.capacity_gbps = 100.0;
  topo_cfg.fabric_link.capacity_gbps = 100.0;
  host::ClusterConfig cluster_cfg;
  cluster_cfg.fabric.step_interval = usec(200);
  host::Cluster cluster(topo::build_clos(topo_cfg), cluster_cfg);

  core::RPingmeshConfig rpm_cfg;
  rpm_cfg.analyzer.high_rtt_threshold = usec(100);
  core::RPingmesh rpm(cluster, rpm_cfg);
  rpm.start();

  // Two single-connection jobs whose flows collide on one ToR uplink.
  cc::Dcqcn dcqcn;
  auto& fab = cluster.fabric();
  const RnicId a{0}, b{2}, dst1{8}, dst2{10};
  FiveTuple t1;
  t1.src_ip = cluster.topology().rnic(a).ip;
  t1.dst_ip = cluster.topology().rnic(dst1).ip;
  t1.src_port = 7100;
  const LinkId shared = fab.current_path(a, dst1, t1).links[1];
  std::uint16_t collide_port = 7200;
  for (;; ++collide_port) {
    FiveTuple t2;
    t2.src_ip = cluster.topology().rnic(b).ip;
    t2.dst_ip = cluster.topology().rnic(dst2).ip;
    t2.src_port = collide_port;
    if (fab.current_path(b, dst2, t2).links[1] == shared) break;
  }
  std::printf("two elephants collide on: %s\n",
              cluster.topology().link(shared).name.c_str());

  traffic::DmlConfig s1;
  s1.service = ServiceId{1};
  s1.workers = {a, dst1};
  s1.per_flow_gbps = 70.0;
  s1.compute_time = msec(50);
  s1.comm_bytes = 900'000'000;
  s1.base_port = t1.src_port;
  s1.controller = &dcqcn;
  traffic::DmlConfig s2 = s1;
  s2.service = ServiceId{2};
  s2.workers = {b, dst2};
  s2.base_port = collide_port;
  traffic::DmlService svc1(cluster, s1);
  traffic::DmlService svc2(cluster, s2);
  svc1.start();
  svc2.start();
  cluster.run_for(sec(41));

  const auto show = [&](const char* when) {
    const auto* rep = rpm.analyzer().last_report();
    std::printf("\n-- %s --\n", when);
    for (const auto& [sid, sla] : rep->service_slas) {
      std::printf("service %u: rtt p50=%.1fus p99=%.1fus (%zu probes)\n",
                  sid.value, sla.rtt_p50 / 1e3, sla.rtt_p99 / 1e3, sla.probes);
    }
    for (const auto& p : rep->problems) {
      if (p.category == core::ProblemCategory::kHighNetworkRtt &&
          p.detected_by_service_tracing) {
        std::printf("service %u tracing: %s\n", p.service.value,
                    p.summary.c_str());
      }
    }
  };
  show("while colliding");

  // The fix: reroute service 2's congested flow by changing its source
  // port via modify_qp (the verbs flow-label trick). Find a port that picks
  // the OTHER uplink.
  const auto& conn = svc2.connections()[0];
  std::uint16_t new_port = 7500;
  for (;; ++new_port) {
    FiveTuple t = conn.tuple;
    t.src_port = new_port;
    if (fab.current_path(conn.src, conn.dst, t).links[1] != shared) break;
  }
  std::printf("\nrerouting service 2's flow: source port %u -> %u "
              "(modify_qp)\n", conn.tuple.src_port, new_port);
  // In-place reconnect: modify_qp with the new flow label + move the fluid
  // flow to the new 5-tuple.
  auto ctx = cluster.open_device(conn.src, s2.service);
  ctx.modify_qp_connect(conn.src_qpn, rnic::gid_of(conn.dst), conn.dst_qpn,
                        new_port);
  fabric::FlowSpec moved;
  moved.src = conn.src;
  moved.dst = conn.dst;
  moved.tuple = conn.tuple;
  moved.tuple.src_port = new_port;
  moved.demand_Bps = gbps_to_Bps(s2.per_flow_gbps);
  moved.controller = &dcqcn;
  cluster.fabric().remove_flow(conn.flow);
  cluster.fabric().add_flow(moved);

  cluster.run_for(sec(41));
  show("after rerouting");
  std::printf(
      "\nTakeaway: Service Tracing pinpointed the congested uplink; one "
      "modify_qp moved the\nflow to a parallel path and the tail RTT of BOTH "
      "tenants collapsed (§7.3).\n");
  svc1.stop();
  svc2.stop();
  rpm.stop();
  return 0;
}
