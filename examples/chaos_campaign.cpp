// Chaos campaign: deploy R-Pingmesh on a 16-host Clos fabric, then batter
// the control plane while real faults are in flight — Controller crash and
// restart, an Agent process restart (QPN reset), an Analyzer brownout, a
// host failure, and a corrupting fabric link that stays broken. The
// ChaosRunner scores every Analyzer verdict against FaultRecord ground
// truth and writes a deterministic JSON scorecard: same seed, byte-for-byte
// the same report (CI diffs two runs to prove it).
//
//   $ ./examples/chaos_campaign [out.json [seed]]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "chaos/chaos.h"
#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "host/cluster.h"
#include "topo/topology.h"

int main(int argc, char** argv) {
  using namespace rpm;

  const char* out_path = argc > 1 ? argv[1] : nullptr;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // Same fabric shape as the e2e tests: 2 pods x 2 ToRs x 2 hosts x 2 RNICs.
  topo::ClosConfig topo_cfg;
  topo_cfg.num_pods = 2;
  topo_cfg.tors_per_pod = 2;
  topo_cfg.aggs_per_pod = 2;
  topo_cfg.spines_per_plane = 2;
  topo_cfg.hosts_per_tor = 2;
  topo_cfg.rnics_per_host = 2;
  topo_cfg.host_link.capacity_gbps = 100.0;
  topo_cfg.fabric_link.capacity_gbps = 100.0;

  host::ClusterConfig cluster_cfg;
  cluster_cfg.seed = seed;
  host::Cluster cluster(topo::build_clos(topo_cfg), cluster_cfg);

  // Short analysis periods so recovery is visible in a 160 s campaign.
  core::RPingmeshConfig rpm_cfg;
  rpm_cfg.analyzer.period = sec(5);
  core::RPingmesh rpm(cluster, rpm_cfg);
  faults::FaultInjector injector(cluster);
  rpm.start();

  // The first switch-to-switch link: corrupting it hits inter-ToR probes in
  // both pods' Algorithm-1 vote tallies.
  LinkId fabric_link;
  for (const topo::Link& l : cluster.topology().links()) {
    if (l.from.is_switch() && l.to.is_switch()) {
      fabric_link = l.id;
      break;
    }
  }

  chaos::ChaosPlan plan;
  plan.seed = seed;
  plan.duration = sec(160);
  plan.controller_crash(sec(30))
      .agent_restart(sec(32), HostId{1})  // restarts into a dead Controller
      .controller_restart(sec(50))
      .analyzer_outage(sec(55), sec(73))
      .inject(sec(75), "host3-down",
              faults::FaultSpec::host_down(HostId{3}))
      .clear(sec(95), "host3-down")
      .inject(sec(100), "fabric-corruption",
              faults::FaultSpec::corruption(
                  fabric_link, 0.5));  // still active at campaign end

  chaos::ChaosRunner runner(cluster, rpm, injector);
  const chaos::ChaosReport report = runner.run(plan);

  std::printf("chaos campaign: seed=%llu, %zu periods scored\n",
              static_cast<unsigned long long>(report.seed), report.periods);
  std::printf("  verdicts: %zu total, %zu true-positive, %zu false-positive"
              " (%zu switch, %zu in outage windows)\n",
              report.problems_total, report.true_positives,
              report.false_positives, report.switch_false_positives,
              report.outage_false_positives);
  std::printf("  mislocalized: %zu, collateral host-down: %zu, noise: %zu,"
              " unscored: %zu\n",
              report.mislocalized, report.collateral_host_down,
              report.noise_problems, report.unscored_problems);
  std::printf("  precision=%.3f recall=%.3f\n", report.precision,
              report.recall);
  for (const auto& g : report.ground_truths) {
    std::printf("  ground truth %-18s %-22s %s\n", g.label.c_str(),
                g.kind.c_str(),
                !g.scored ? "(noise, unscored)"
                          : (g.matched ? "localized" : "MISSED"));
  }
  for (const auto& r : report.recoveries) {
    std::printf("  recovery after %-22s at %3llds: %d period(s)\n",
                r.event.c_str(), static_cast<long long>(r.at / sec(1)),
                r.periods_to_recover);
  }

  const std::string json = report.to_json();
  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("report written to %s (%zu bytes)\n", out_path, json.size());
  } else {
    std::fputs(json.c_str(), stdout);
  }

  rpm.stop();
  return 0;
}
