// Public-cloud war story (§7.1 #5, #8): some of a tenant's RDMA connections
// stop communicating. The tenant suspects a switch ACL misconfiguration.
// R-Pingmesh sees a burst of timeout probes and, from their 5-tuples and
// paths, localizes the true culprit: a PFC DEADLOCK on one link — while the
// tenant's TCP-based checks (which ride another traffic class) see nothing
// wrong. A second act injects a real ACL error to show both stories.
//
//   $ ./examples/public_cloud_diagnosis
#include <cstdio>

#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "pingmesh/pingmesh.h"

int main() {
  using namespace rpm;

  topo::ClosConfig topo_cfg;
  topo_cfg.num_pods = 2;
  topo_cfg.tors_per_pod = 2;
  topo_cfg.aggs_per_pod = 2;
  topo_cfg.spines_per_plane = 2;
  topo_cfg.hosts_per_tor = 2;
  topo_cfg.rnics_per_host = 2;
  host::Cluster cluster(topo::build_clos(topo_cfg));
  core::RPingmesh rpm(cluster);
  rpm.start();
  pingmesh::SoftwarePingmesh tcp_checks(cluster);
  faults::FaultInjector faults(cluster);
  cluster.run_for(sec(25));

  // --- Act 1: PFC deadlock (the paper's cloud incident) ---
  LinkId deadlocked;
  for (const topo::Link& l : cluster.topology().links()) {
    if (l.from.is_switch() && l.to.is_switch()) {
      deadlocked = l.id;
      break;
    }
  }
  const int h1 = faults.inject_pfc_deadlock(deadlocked);
  std::printf("[cloud] tenant reports: some RDMA connections cannot "
              "communicate; suspects switch ACLs\n");

  // The tenant's own TCP reachability checks pass (wrong traffic class!).
  int tcp_ok = 0, tcp_fail = 0;
  for (int i = 0; i < 20; ++i) {
    tcp_checks.probe(RnicId{0}, RnicId{12},
                     [&](const pingmesh::SoftwarePingResult& r) {
                       (r.ok ? tcp_ok : tcp_fail)++;
                     });
    cluster.run_for(msec(5));
  }
  cluster.run_for(msec(600));
  std::printf("[tenant] TCP checks: %d ok, %d failed -> 'network looks "
              "fine??'\n", tcp_ok, tcp_fail);

  cluster.run_for(sec(41));
  std::printf("[r-pingmesh] analysis:\n");
  for (const auto& p : rpm.analyzer().last_report()->problems) {
    std::printf("  [%s] %s\n", core::priority_name(p.priority),
                p.summary.c_str());
    for (const auto& [l, votes] : p.top_link_votes) {
      std::printf("      suspect %-28s votes=%zu\n",
                  cluster.topology().link(l).name.c_str(), votes);
      break;  // top suspect is enough for the story
    }
  }
  std::printf("  (injected deadlock was on: %s)\n",
              cluster.topology().link(deadlocked).name.c_str());
  faults.clear(h1);
  cluster.run_for(sec(81));  // heal + let blame windows expire

  // --- Act 2: an actual ACL misconfiguration (#8) ---
  SwitchId agg;
  for (const auto& sw : cluster.topology().switches()) {
    if (sw.tier == topo::SwitchTier::kAgg) {
      agg = sw.id;
      break;
    }
  }
  faults.inject_acl_error(agg, IpAddr{},
                          cluster.topology().rnic(RnicId{12}).ip);
  std::printf("\n[cloud] ops re-ran the tenant-isolation ACL script; "
              "a rule now wrongly drops traffic to one RNIC at %s\n",
              cluster.topology().switch_info(agg).name.c_str());
  cluster.run_for(sec(41));
  for (const auto& p : rpm.analyzer().last_report()->problems) {
    std::printf("  [%s] %s\n", core::priority_name(p.priority),
                p.summary.c_str());
    if (!p.suspect_switches.empty()) {
      std::printf("      suspect switch: %s\n",
                  cluster.topology()
                      .switch_info(p.suspect_switches.front())
                      .name.c_str());
    }
  }
  std::printf(
      "\nTakeaway: RoCE-native probes catch RoCE-class problems (PFC "
      "deadlock) that TCP\nchecks cannot see, and random inter-RNIC probing "
      "catches tenant-isolation ACL errors.\n");
  rpm.stop();
  return 0;
}
