// "Is it a network problem?" — the paper's headline operational question
// (§2.1, §7.2), as a walkthrough.
//
// A DML training job degrades twice. The first time the cause IS the
// network (packet corruption on a link the job uses); the second time it is
// NOT (a compute-side bug — GPU underclocking in the paper). Both look the
// same from the service's coarse metrics. R-Pingmesh tells them apart in one
// analysis period.
//
//   $ ./examples/troubleshoot_training
#include <cstdio>

#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "traffic/dml.h"

int main() {
  using namespace rpm;

  topo::ClosConfig topo_cfg;
  topo_cfg.num_pods = 2;
  topo_cfg.tors_per_pod = 2;
  topo_cfg.aggs_per_pod = 2;
  topo_cfg.spines_per_plane = 2;
  topo_cfg.hosts_per_tor = 2;
  topo_cfg.rnics_per_host = 2;
  host::Cluster cluster(topo::build_clos(topo_cfg));
  core::RPingmesh rpm(cluster);
  rpm.start();

  // An 8-rank All2All training job.
  traffic::DmlConfig dml;
  dml.service = ServiceId{42};
  dml.workers = {RnicId{0}, RnicId{2}, RnicId{4},  RnicId{6},
                 RnicId{8}, RnicId{10}, RnicId{12}, RnicId{14}};
  dml.pattern = traffic::CommPattern::kAllToAll;
  dml.per_flow_gbps = 10.0;
  dml.compute_time = msec(300);
  dml.comm_bytes = 100'000'000;
  dml.rc_retransmit_timeout = msec(50);  // ride out the lossy episode
  traffic::DmlService job(cluster, dml);
  rpm.watch_service({dml.service, [&job] { return job.relative_throughput(); }});
  job.start();
  cluster.run_for(sec(25));
  std::printf("job started: throughput=%.2f (healthy)\n",
              job.relative_throughput());

  faults::FaultInjector faults(cluster);
  const auto diagnose = [&](const char* scenario) {
    std::printf("\n=== %s ===\n", scenario);
    std::printf("observed: training throughput=%.2f\n",
                job.relative_throughput());
    const auto* rep = rpm.analyzer().last_report();
    bool network_problem = false;
    for (const auto& p : rep->problems) {
      if ((p.priority == core::Priority::kP0 ||
           p.priority == core::Priority::kP1) &&
          p.service == dml.service) {
        network_problem = true;
        std::printf("R-Pingmesh: [%s] %s\n", core::priority_name(p.priority),
                    p.summary.c_str());
      }
    }
    if (!network_problem) {
      std::printf(
          "R-Pingmesh: no P0/P1 problem in the service network -> the "
          "NETWORK IS INNOCENT.\n            Look at compute (GPU clocks, "
          "NCCL parameters, training code).\n");
    } else {
      std::printf("R-Pingmesh: the network IS the problem; see suspects "
                  "above.\n");
    }
    std::printf("network_innocent(%u) = %s\n", dml.service.value,
                rpm.analyzer().network_innocent(dml.service) ? "true"
                                                             : "false");
  };

  // --- Scenario 1: it IS the network. ---
  // Corrupt a link one of the job's flows crosses.
  const auto& path = cluster.fabric().flow_path(job.connections()[3].flow);
  const int h1 = faults.inject_corruption(path.links[1], 0.15);
  cluster.run_for(sec(41));
  diagnose("scenario 1: throughput degraded (cause: corrupted fiber)");
  faults.clear(h1);
  cluster.run_for(sec(61));  // heal + let the blame window expire

  // --- Scenario 2: it is NOT the network. ---
  job.set_compute_slowdown(3.0);  // the paper's buggy training code
  cluster.run_for(sec(41));
  diagnose("scenario 2: throughput degraded (cause: compute-side bug)");

  job.stop();
  rpm.stop();
  return 0;
}
