// Quickstart: build a simulated RoCE cluster, deploy R-Pingmesh on every
// host, watch the SLA, break something, and see it detected, categorized,
// localized, and prioritized — all in ~40 lines of API use. Along the way
// the telemetry subsystem watches R-Pingmesh itself: a Prometheus-style
// scrape loop on the simulation clock, a final metrics dump, and a
// chrome://tracing span file.
//
//   $ ./examples/quickstart
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>

#include "core/rootcause.h"
#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "host/cluster.h"
#include "obs/diagnosis.h"
#include "obs/flight_recorder.h"
#include "prof/prof.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "topo/topology.h"

namespace {

// Print only the exposition lines for the families we want to showcase.
void print_filtered(const std::string& prometheus_text,
                    std::initializer_list<const char*> prefixes) {
  std::size_t start = 0;
  while (start < prometheus_text.size()) {
    std::size_t end = prometheus_text.find('\n', start);
    if (end == std::string::npos) end = prometheus_text.size();
    const std::string line = prometheus_text.substr(start, end - start);
    start = end + 1;
    if (line.rfind("# ", 0) == 0) continue;  // skip HELP/TYPE comments
    for (const char* p : prefixes) {
      if (line.rfind(p, 0) == 0) {
        std::printf("%s\n", line.c_str());
        break;
      }
    }
  }
}

}  // namespace

int main() {
  using namespace rpm;

  // 1. A 3-tier Clos fabric: 2 pods x 2 ToRs x 2 hosts x 2 RNICs.
  topo::ClosConfig topo_cfg;
  topo_cfg.num_pods = 2;
  topo_cfg.tors_per_pod = 2;
  topo_cfg.aggs_per_pod = 2;
  topo_cfg.spines_per_plane = 2;
  topo_cfg.hosts_per_tor = 2;
  topo_cfg.rnics_per_host = 2;
  host::Cluster cluster(topo::build_clos(topo_cfg));
  std::printf("cluster: %zu hosts, %zu RNICs, %zu switches\n",
              cluster.num_hosts(), cluster.num_rnics(),
              cluster.topology().num_switches());

  // 2. Turn on self-observability: trace spans stamped with simulated time,
  // and a periodic "scrape" of the metrics registry every 20 s of sim time.
  telemetry::tracer().enable(
      [&cluster]() -> TimeNs { return cluster.scheduler().now(); });
  std::uint64_t scrape_bytes = 0;
  telemetry::PeriodicDumper scraper(
      cluster.scheduler(), sec(20),
      [&scrape_bytes](const std::string& text) {
        scrape_bytes += text.size();
      });
  scraper.start(sec(20));

  // ...and the probe flight recorder: with sample_rate 1.0 every probe's
  // causal timeline (Agent enqueue -> RNIC CQEs -> per-hop fabric traversal
  // -> upload attempts -> Analyzer ingest) is kept in a bounded ring.
  obs::FlightRecorderConfig flight_cfg;
  flight_cfg.sample_rate = 1.0;
  flight_cfg.capacity = 1 << 15;
  obs::recorder().enable(
      flight_cfg, [&cluster]() -> TimeNs { return cluster.scheduler().now(); });

  // ...and the wall-clock stage profiler: where CPU time actually goes
  // between submit and verdict (sim dispatch, ingest, the drain.* stages),
  // with a 50 ms watchdog on each period close. Purely observational — the
  // simulation's decisions never see wall time.
  prof::ProfilerConfig prof_cfg;
  prof_cfg.period_close_budget = msec(50);
  prof::profiler().enable(prof_cfg);
  prof::profiler().attach_scheduler(cluster.scheduler());

  // 3. Deploy R-Pingmesh: Controller + one Agent per host + Analyzer.
  core::RPingmesh rpm(cluster);
  rpm.start();

  // 4. Let it monitor a healthy cluster for two analysis periods.
  cluster.run_for(sec(45));
  const core::PeriodReport* rep = rpm.analyzer().last_report();
  std::printf("\n-- healthy cluster, one 20 s analysis period --\n");
  std::printf("probe records analyzed : %zu\n", rep->records_processed);
  std::printf("network RTT            : p50=%.1fus p99=%.1fus\n",
              rep->cluster_sla.rtt_p50 / 1e3, rep->cluster_sla.rtt_p99 / 1e3);
  std::printf("host processing delay  : p50=%.1fus p99=%.1fus\n",
              rep->cluster_sla.proc_p50 / 1e3,
              rep->cluster_sla.proc_p99 / 1e3);
  std::printf("drop rates             : rnic=%.4f switch=%.4f\n",
              rep->cluster_sla.rnic_drop_rate,
              rep->cluster_sla.switch_drop_rate);

  // 5. Break an RNIC, then a switch port, and watch both get localized.
  faults::FaultInjector faults(cluster);
  std::printf("\n-- injecting: RNIC 5 down --\n");
  const int h1 = faults.inject_rnic_down(RnicId{5});
  cluster.run_for(sec(21));
  for (const core::Problem& p : rpm.analyzer().last_report()->problems) {
    std::printf("[%s] %s\n", core::priority_name(p.priority),
                p.summary.c_str());
  }
  faults.clear(h1);

  std::printf("\n-- injecting: corruption on a fabric cable --\n");
  LinkId victim;
  for (const topo::Link& l : cluster.topology().links()) {
    if (l.from.is_switch() && l.to.is_switch()) {
      victim = l.id;
      break;
    }
  }
  core::RootCauseAdvisor advisor(cluster);
  advisor.snapshot_baseline();
  faults.inject_corruption(victim, 0.5);
  cluster.run_for(sec(41));
  for (const core::Problem& p : rpm.analyzer().last_report()->problems) {
    std::printf("[%s] %s\n", core::priority_name(p.priority),
                p.summary.c_str());
    // §7.5 extension: counter-driven root-cause hypotheses.
    for (const core::RootCauseHint& h : advisor.advise(p)) {
      std::printf("    hint (%.0f%%): %s\n        evidence: %s\n",
                  h.confidence * 100, h.cause.c_str(), h.evidence.c_str());
    }
  }
  std::printf("(injected fault was on: %s)\n",
              cluster.topology().link(victim).name.c_str());

  // 5b. Why does the Analyzer believe any of that? Every verdict carries an
  // evidence chain: input probe ids, the Algorithm 1 vote tally, and every
  // threshold compared. explain() renders it as structured JSON, and each
  // listed probe id resolves to a full per-hop timeline in the recorder.
  if (!rpm.analyzer().last_report()->problems.empty()) {
    const core::Problem& first = rpm.analyzer().last_report()->problems[0];
    const std::string receipt = rpm.analyzer().explain(first.problem_id);
    std::printf("\n-- explain(problem_id=%llu) --\n%s\n",
                static_cast<unsigned long long>(first.problem_id),
                receipt.c_str());
  }

  // 6. How did R-Pingmesh itself behave? Dump the self-observability
  // metrics: Agent probe volume, Analyzer pipeline cost, and the fabric
  // counters on the faulted link.
  scraper.stop();
  const telemetry::Snapshot snap = telemetry::registry().snapshot();
  const std::string prom = telemetry::to_prometheus(snap);
  std::printf("\n-- self-observability (%llu periodic scrapes, %llu bytes) --\n",
              static_cast<unsigned long long>(scraper.dumps()),
              static_cast<unsigned long long>(scrape_bytes));
  std::printf("\nagent probe counters:\n");
  print_filtered(prom, {"rpm_agent_probes_sent_total{host=\"0\"",
                        "rpm_agent_probes_completed_total{host=\"0\"",
                        "rpm_agent_probe_timeouts_total{host=\"0\""});
  std::printf("\nanalyzer pipeline (per-stage wall cost):\n");
  print_filtered(prom, {"rpm_analyzer_stage_ns", "rpm_analyzer_periods"});
  std::printf("\ncontrol-plane transport (uploads + RPCs, host 0):\n");
  print_filtered(prom, {"rpm_transport_msgs_total{channel=\"upload/h0\"",
                        "rpm_transport_msgs_total{channel=\"ctrl/h0",
                        "rpm_analyzer_batches_total"});
  std::printf("\nfabric + per-link counters (faulted link shows drops):\n");
  print_filtered(prom, {"rpm_fabric_", "rpm_link_"});
  std::printf("\nevent loop:\n");
  print_filtered(prom, {"rpm_sim_"});

  // The trace of everything above — telemetry spans, one track per sampled
  // probe, and the profiler's wall-clock stage tracks (pid 3) — viewable in
  // chrome://tracing / Perfetto.
  std::string extra = obs::recorder().chrome_events();
  const std::string prof_events = prof::profiler().chrome_events();
  if (!prof_events.empty()) {
    if (!extra.empty()) extra += ',';
    extra += prof_events;
  }
  const std::string trace = telemetry::tracer().chrome_json(extra);
  if (std::FILE* f = std::fopen("quickstart_trace.json", "w")) {
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::printf("\ntrace: %zu span events + %llu probe timelines"
                " -> quickstart_trace.json\n",
                telemetry::tracer().num_events(),
                static_cast<unsigned long long>(
                    obs::recorder().live_timelines()));
  }

  // The flight-recorder ring and the last period's full diagnosis log, as
  // machine-readable JSON dumps (CI validates both parse).
  const std::string flight = obs::recorder().to_json();
  if (std::FILE* f = std::fopen("quickstart_flight.json", "w")) {
    std::fwrite(flight.data(), 1, flight.size(), f);
    std::fclose(f);
    std::printf("flight recorder: %llu/%llu probes sampled"
                " -> quickstart_flight.json\n",
                static_cast<unsigned long long>(
                    obs::recorder().probes_sampled()),
                static_cast<unsigned long long>(obs::recorder().probes_seen()));
  }
  if (const obs::DiagnosisLog* dlog = rpm.analyzer().last_diagnosis()) {
    const std::string diag = obs::to_json(*dlog);
    if (std::FILE* f = std::fopen("quickstart_diagnosis.json", "w")) {
      std::fwrite(diag.data(), 1, diag.size(), f);
      std::fclose(f);
      std::printf("diagnosis log: %zu evidence chains"
                  " -> quickstart_diagnosis.json\n",
                  dlog->chains.size());
    }
  }

  // Where the wall-clock went, per stage (quickstart_profile.json holds the
  // full breakdown with quantiles).
  const prof::ProfileReport prof_rep = prof::profiler().report();
  std::printf("\nwall-clock stage profile (count / total ms):\n");
  for (std::size_t i = 0; i < prof::kNumStages; ++i) {
    const prof::StageStats& st = prof_rep.stages[i];
    if (st.count == 0) continue;
    std::printf("  %-22s %8llu  %10.2f\n",
                prof::stage_name(static_cast<prof::Stage>(i)),
                static_cast<unsigned long long>(st.count),
                static_cast<double>(st.total_ns) / 1e6);
  }
  const std::string prof_json = prof_rep.to_json();
  if (std::FILE* f = std::fopen("quickstart_profile.json", "w")) {
    std::fwrite(prof_json.data(), 1, prof_json.size(), f);
    std::fclose(f);
    std::printf("stage profile (%llu period closes, %llu budget overruns)"
                " -> quickstart_profile.json\n",
                static_cast<unsigned long long>(
                    prof_rep.stage(prof::Stage::kPeriodClose).count),
                static_cast<unsigned long long>(prof_rep.budget_overruns));
  }

  rpm.stop();
  prof::profiler().disable();
  prof::Profiler::detach_scheduler(cluster.scheduler());
  obs::recorder().disable();
  return 0;
}
