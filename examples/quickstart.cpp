// Quickstart: build a simulated RoCE cluster, deploy R-Pingmesh on every
// host, watch the SLA, break something, and see it detected, categorized,
// localized, and prioritized — all in ~40 lines of API use.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/rootcause.h"
#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "host/cluster.h"
#include "topo/topology.h"

int main() {
  using namespace rpm;

  // 1. A 3-tier Clos fabric: 2 pods x 2 ToRs x 2 hosts x 2 RNICs.
  topo::ClosConfig topo_cfg;
  topo_cfg.num_pods = 2;
  topo_cfg.tors_per_pod = 2;
  topo_cfg.aggs_per_pod = 2;
  topo_cfg.spines_per_plane = 2;
  topo_cfg.hosts_per_tor = 2;
  topo_cfg.rnics_per_host = 2;
  host::Cluster cluster(topo::build_clos(topo_cfg));
  std::printf("cluster: %zu hosts, %zu RNICs, %zu switches\n",
              cluster.num_hosts(), cluster.num_rnics(),
              cluster.topology().num_switches());

  // 2. Deploy R-Pingmesh: Controller + one Agent per host + Analyzer.
  core::RPingmesh rpm(cluster);
  rpm.start();

  // 3. Let it monitor a healthy cluster for two analysis periods.
  cluster.run_for(sec(45));
  const core::PeriodReport* rep = rpm.analyzer().last_report();
  std::printf("\n-- healthy cluster, one 20 s analysis period --\n");
  std::printf("probe records analyzed : %zu\n", rep->records_processed);
  std::printf("network RTT            : p50=%.1fus p99=%.1fus\n",
              rep->cluster_sla.rtt_p50 / 1e3, rep->cluster_sla.rtt_p99 / 1e3);
  std::printf("host processing delay  : p50=%.1fus p99=%.1fus\n",
              rep->cluster_sla.proc_p50 / 1e3,
              rep->cluster_sla.proc_p99 / 1e3);
  std::printf("drop rates             : rnic=%.4f switch=%.4f\n",
              rep->cluster_sla.rnic_drop_rate,
              rep->cluster_sla.switch_drop_rate);

  // 4. Break an RNIC, then a switch port, and watch both get localized.
  faults::FaultInjector faults(cluster);
  std::printf("\n-- injecting: RNIC 5 down --\n");
  const int h1 = faults.inject_rnic_down(RnicId{5});
  cluster.run_for(sec(21));
  for (const core::Problem& p : rpm.analyzer().last_report()->problems) {
    std::printf("[%s] %s\n", core::priority_name(p.priority),
                p.summary.c_str());
  }
  faults.clear(h1);

  std::printf("\n-- injecting: corruption on a fabric cable --\n");
  LinkId victim;
  for (const topo::Link& l : cluster.topology().links()) {
    if (l.from.is_switch() && l.to.is_switch()) {
      victim = l.id;
      break;
    }
  }
  core::RootCauseAdvisor advisor(cluster);
  advisor.snapshot_baseline();
  faults.inject_corruption(victim, 0.5);
  cluster.run_for(sec(41));
  for (const core::Problem& p : rpm.analyzer().last_report()->problems) {
    std::printf("[%s] %s\n", core::priority_name(p.priority),
                p.summary.c_str());
    // §7.5 extension: counter-driven root-cause hypotheses.
    for (const core::RootCauseHint& h : advisor.advise(p)) {
      std::printf("    hint (%.0f%%): %s\n        evidence: %s\n",
                  h.confidence * 100, h.cause.c_str(), h.evidence.c_str());
    }
  }
  std::printf("(injected fault was on: %s)\n",
              cluster.topology().link(victim).name.c_str());

  rpm.stop();
  return 0;
}
