# Empty compiler generated dependencies file for test_agent.
# This may be replaced when dependencies are built.
