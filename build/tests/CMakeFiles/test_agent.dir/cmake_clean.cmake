file(REMOVE_RECURSE
  "CMakeFiles/test_agent.dir/test_agent.cpp.o"
  "CMakeFiles/test_agent.dir/test_agent.cpp.o.d"
  "test_agent"
  "test_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
