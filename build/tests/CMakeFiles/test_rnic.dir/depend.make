# Empty dependencies file for test_rnic.
# This may be replaced when dependencies are built.
