file(REMOVE_RECURSE
  "CMakeFiles/test_rnic.dir/test_rnic.cpp.o"
  "CMakeFiles/test_rnic.dir/test_rnic.cpp.o.d"
  "test_rnic"
  "test_rnic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
