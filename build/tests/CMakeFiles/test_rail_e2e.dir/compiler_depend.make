# Empty compiler generated dependencies file for test_rail_e2e.
# This may be replaced when dependencies are built.
