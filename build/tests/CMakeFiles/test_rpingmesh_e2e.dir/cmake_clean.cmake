file(REMOVE_RECURSE
  "CMakeFiles/test_rpingmesh_e2e.dir/test_rpingmesh_e2e.cpp.o"
  "CMakeFiles/test_rpingmesh_e2e.dir/test_rpingmesh_e2e.cpp.o.d"
  "test_rpingmesh_e2e"
  "test_rpingmesh_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rpingmesh_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
