# Empty dependencies file for test_rpingmesh_e2e.
# This may be replaced when dependencies are built.
