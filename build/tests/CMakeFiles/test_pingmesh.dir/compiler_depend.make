# Empty compiler generated dependencies file for test_pingmesh.
# This may be replaced when dependencies are built.
