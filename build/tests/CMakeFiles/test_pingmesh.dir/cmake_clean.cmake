file(REMOVE_RECURSE
  "CMakeFiles/test_pingmesh.dir/test_pingmesh.cpp.o"
  "CMakeFiles/test_pingmesh.dir/test_pingmesh.cpp.o.d"
  "test_pingmesh"
  "test_pingmesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pingmesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
