file(REMOVE_RECURSE
  "CMakeFiles/test_routing.dir/test_routing.cpp.o"
  "CMakeFiles/test_routing.dir/test_routing.cpp.o.d"
  "test_routing"
  "test_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
