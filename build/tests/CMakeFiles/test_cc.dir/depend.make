# Empty dependencies file for test_cc.
# This may be replaced when dependencies are built.
