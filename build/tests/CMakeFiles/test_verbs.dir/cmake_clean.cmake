file(REMOVE_RECURSE
  "CMakeFiles/test_verbs.dir/test_verbs.cpp.o"
  "CMakeFiles/test_verbs.dir/test_verbs.cpp.o.d"
  "test_verbs"
  "test_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
