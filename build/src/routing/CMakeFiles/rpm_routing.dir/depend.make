# Empty dependencies file for rpm_routing.
# This may be replaced when dependencies are built.
