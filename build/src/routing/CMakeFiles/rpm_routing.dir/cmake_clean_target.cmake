file(REMOVE_RECURSE
  "librpm_routing.a"
)
