file(REMOVE_RECURSE
  "CMakeFiles/rpm_routing.dir/ecmp.cpp.o"
  "CMakeFiles/rpm_routing.dir/ecmp.cpp.o.d"
  "librpm_routing.a"
  "librpm_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
