# Empty compiler generated dependencies file for rpm_routing.
# This may be replaced when dependencies are built.
