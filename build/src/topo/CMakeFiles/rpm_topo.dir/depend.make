# Empty dependencies file for rpm_topo.
# This may be replaced when dependencies are built.
