file(REMOVE_RECURSE
  "CMakeFiles/rpm_topo.dir/topology.cpp.o"
  "CMakeFiles/rpm_topo.dir/topology.cpp.o.d"
  "librpm_topo.a"
  "librpm_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
