file(REMOVE_RECURSE
  "librpm_topo.a"
)
