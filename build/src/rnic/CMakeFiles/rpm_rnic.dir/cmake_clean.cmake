file(REMOVE_RECURSE
  "CMakeFiles/rpm_rnic.dir/rnic.cpp.o"
  "CMakeFiles/rpm_rnic.dir/rnic.cpp.o.d"
  "librpm_rnic.a"
  "librpm_rnic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_rnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
