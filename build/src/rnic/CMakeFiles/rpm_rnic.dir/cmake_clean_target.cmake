file(REMOVE_RECURSE
  "librpm_rnic.a"
)
