# Empty compiler generated dependencies file for rpm_rnic.
# This may be replaced when dependencies are built.
