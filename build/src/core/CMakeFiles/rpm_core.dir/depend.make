# Empty dependencies file for rpm_core.
# This may be replaced when dependencies are built.
