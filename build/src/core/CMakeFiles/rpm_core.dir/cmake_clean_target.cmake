file(REMOVE_RECURSE
  "librpm_core.a"
)
