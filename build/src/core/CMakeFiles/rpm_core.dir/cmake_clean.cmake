file(REMOVE_RECURSE
  "CMakeFiles/rpm_core.dir/agent.cpp.o"
  "CMakeFiles/rpm_core.dir/agent.cpp.o.d"
  "CMakeFiles/rpm_core.dir/analyzer.cpp.o"
  "CMakeFiles/rpm_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/rpm_core.dir/controller.cpp.o"
  "CMakeFiles/rpm_core.dir/controller.cpp.o.d"
  "CMakeFiles/rpm_core.dir/rootcause.cpp.o"
  "CMakeFiles/rpm_core.dir/rootcause.cpp.o.d"
  "CMakeFiles/rpm_core.dir/rpingmesh.cpp.o"
  "CMakeFiles/rpm_core.dir/rpingmesh.cpp.o.d"
  "CMakeFiles/rpm_core.dir/types.cpp.o"
  "CMakeFiles/rpm_core.dir/types.cpp.o.d"
  "librpm_core.a"
  "librpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
