file(REMOVE_RECURSE
  "CMakeFiles/rpm_common.dir/five_tuple.cpp.o"
  "CMakeFiles/rpm_common.dir/five_tuple.cpp.o.d"
  "CMakeFiles/rpm_common.dir/log.cpp.o"
  "CMakeFiles/rpm_common.dir/log.cpp.o.d"
  "CMakeFiles/rpm_common.dir/stats.cpp.o"
  "CMakeFiles/rpm_common.dir/stats.cpp.o.d"
  "librpm_common.a"
  "librpm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
