# Empty dependencies file for rpm_common.
# This may be replaced when dependencies are built.
