file(REMOVE_RECURSE
  "librpm_common.a"
)
