# Empty dependencies file for rpm_fabric.
# This may be replaced when dependencies are built.
