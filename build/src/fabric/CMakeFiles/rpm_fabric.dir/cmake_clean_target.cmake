file(REMOVE_RECURSE
  "librpm_fabric.a"
)
