file(REMOVE_RECURSE
  "CMakeFiles/rpm_fabric.dir/fabric.cpp.o"
  "CMakeFiles/rpm_fabric.dir/fabric.cpp.o.d"
  "CMakeFiles/rpm_fabric.dir/int_telemetry.cpp.o"
  "CMakeFiles/rpm_fabric.dir/int_telemetry.cpp.o.d"
  "librpm_fabric.a"
  "librpm_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
