file(REMOVE_RECURSE
  "CMakeFiles/rpm_sim.dir/scheduler.cpp.o"
  "CMakeFiles/rpm_sim.dir/scheduler.cpp.o.d"
  "librpm_sim.a"
  "librpm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
