file(REMOVE_RECURSE
  "librpm_sim.a"
)
