# Empty dependencies file for rpm_sim.
# This may be replaced when dependencies are built.
