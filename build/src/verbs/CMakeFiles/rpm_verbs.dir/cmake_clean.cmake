file(REMOVE_RECURSE
  "CMakeFiles/rpm_verbs.dir/verbs.cpp.o"
  "CMakeFiles/rpm_verbs.dir/verbs.cpp.o.d"
  "librpm_verbs.a"
  "librpm_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
