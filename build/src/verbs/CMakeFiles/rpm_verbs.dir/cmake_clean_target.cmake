file(REMOVE_RECURSE
  "librpm_verbs.a"
)
