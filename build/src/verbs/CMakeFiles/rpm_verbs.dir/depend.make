# Empty dependencies file for rpm_verbs.
# This may be replaced when dependencies are built.
