# Empty compiler generated dependencies file for rpm_verbs.
# This may be replaced when dependencies are built.
