file(REMOVE_RECURSE
  "CMakeFiles/rpm_host.dir/cluster.cpp.o"
  "CMakeFiles/rpm_host.dir/cluster.cpp.o.d"
  "CMakeFiles/rpm_host.dir/host.cpp.o"
  "CMakeFiles/rpm_host.dir/host.cpp.o.d"
  "librpm_host.a"
  "librpm_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
