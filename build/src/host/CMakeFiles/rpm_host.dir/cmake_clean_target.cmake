file(REMOVE_RECURSE
  "librpm_host.a"
)
