# Empty dependencies file for rpm_host.
# This may be replaced when dependencies are built.
