# Empty compiler generated dependencies file for rpm_pingmesh.
# This may be replaced when dependencies are built.
