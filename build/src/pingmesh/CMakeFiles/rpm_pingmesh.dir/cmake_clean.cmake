file(REMOVE_RECURSE
  "CMakeFiles/rpm_pingmesh.dir/pingmesh.cpp.o"
  "CMakeFiles/rpm_pingmesh.dir/pingmesh.cpp.o.d"
  "librpm_pingmesh.a"
  "librpm_pingmesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_pingmesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
