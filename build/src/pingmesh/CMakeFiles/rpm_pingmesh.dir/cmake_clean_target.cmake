file(REMOVE_RECURSE
  "librpm_pingmesh.a"
)
