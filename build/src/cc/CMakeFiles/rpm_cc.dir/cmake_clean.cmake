file(REMOVE_RECURSE
  "CMakeFiles/rpm_cc.dir/cc.cpp.o"
  "CMakeFiles/rpm_cc.dir/cc.cpp.o.d"
  "librpm_cc.a"
  "librpm_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
