file(REMOVE_RECURSE
  "librpm_cc.a"
)
