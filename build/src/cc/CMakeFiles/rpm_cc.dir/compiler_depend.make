# Empty compiler generated dependencies file for rpm_cc.
# This may be replaced when dependencies are built.
