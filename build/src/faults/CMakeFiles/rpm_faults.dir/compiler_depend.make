# Empty compiler generated dependencies file for rpm_faults.
# This may be replaced when dependencies are built.
