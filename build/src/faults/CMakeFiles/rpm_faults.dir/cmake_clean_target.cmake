file(REMOVE_RECURSE
  "librpm_faults.a"
)
