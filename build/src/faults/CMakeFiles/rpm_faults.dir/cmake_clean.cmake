file(REMOVE_RECURSE
  "CMakeFiles/rpm_faults.dir/faults.cpp.o"
  "CMakeFiles/rpm_faults.dir/faults.cpp.o.d"
  "librpm_faults.a"
  "librpm_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
