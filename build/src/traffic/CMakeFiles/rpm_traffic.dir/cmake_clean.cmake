file(REMOVE_RECURSE
  "CMakeFiles/rpm_traffic.dir/dml.cpp.o"
  "CMakeFiles/rpm_traffic.dir/dml.cpp.o.d"
  "librpm_traffic.a"
  "librpm_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
