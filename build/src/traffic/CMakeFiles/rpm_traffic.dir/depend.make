# Empty dependencies file for rpm_traffic.
# This may be replaced when dependencies are built.
