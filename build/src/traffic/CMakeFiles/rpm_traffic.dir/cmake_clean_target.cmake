file(REMOVE_RECURSE
  "librpm_traffic.a"
)
