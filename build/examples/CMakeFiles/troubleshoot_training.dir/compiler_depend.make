# Empty compiler generated dependencies file for troubleshoot_training.
# This may be replaced when dependencies are built.
