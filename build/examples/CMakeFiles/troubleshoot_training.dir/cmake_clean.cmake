file(REMOVE_RECURSE
  "CMakeFiles/troubleshoot_training.dir/troubleshoot_training.cpp.o"
  "CMakeFiles/troubleshoot_training.dir/troubleshoot_training.cpp.o.d"
  "troubleshoot_training"
  "troubleshoot_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/troubleshoot_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
