file(REMOVE_RECURSE
  "CMakeFiles/public_cloud_diagnosis.dir/public_cloud_diagnosis.cpp.o"
  "CMakeFiles/public_cloud_diagnosis.dir/public_cloud_diagnosis.cpp.o.d"
  "public_cloud_diagnosis"
  "public_cloud_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/public_cloud_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
