# Empty compiler generated dependencies file for public_cloud_diagnosis.
# This may be replaced when dependencies are built.
