# Empty dependencies file for service_tracing_loadbalance.
# This may be replaced when dependencies are built.
