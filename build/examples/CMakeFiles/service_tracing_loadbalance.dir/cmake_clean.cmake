file(REMOVE_RECURSE
  "CMakeFiles/service_tracing_loadbalance.dir/service_tracing_loadbalance.cpp.o"
  "CMakeFiles/service_tracing_loadbalance.dir/service_tracing_loadbalance.cpp.o.d"
  "service_tracing_loadbalance"
  "service_tracing_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_tracing_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
