# Empty compiler generated dependencies file for bench_table1_qp_types.
# This may be replaced when dependencies are built.
