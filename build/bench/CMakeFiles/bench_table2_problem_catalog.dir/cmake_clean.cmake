file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_problem_catalog.dir/bench_table2_problem_catalog.cpp.o"
  "CMakeFiles/bench_table2_problem_catalog.dir/bench_table2_problem_catalog.cpp.o.d"
  "bench_table2_problem_catalog"
  "bench_table2_problem_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_problem_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
