# Empty compiler generated dependencies file for bench_table2_problem_catalog.
# This may be replaced when dependencies are built.
