# Empty dependencies file for bench_fig1_flapping.
# This may be replaced when dependencies are built.
