file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_flapping.dir/bench_fig1_flapping.cpp.o"
  "CMakeFiles/bench_fig1_flapping.dir/bench_fig1_flapping.cpp.o.d"
  "bench_fig1_flapping"
  "bench_fig1_flapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_flapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
