# Empty dependencies file for bench_fig9_network_innocent.
# This may be replaced when dependencies are built.
