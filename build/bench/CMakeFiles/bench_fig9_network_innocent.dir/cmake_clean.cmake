file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_network_innocent.dir/bench_fig9_network_innocent.cpp.o"
  "CMakeFiles/bench_fig9_network_innocent.dir/bench_fig9_network_innocent.cpp.o.d"
  "bench_fig9_network_innocent"
  "bench_fig9_network_innocent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_network_innocent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
