file(REMOVE_RECURSE
  "CMakeFiles/bench_eq1_coverage.dir/bench_eq1_coverage.cpp.o"
  "CMakeFiles/bench_eq1_coverage.dir/bench_eq1_coverage.cpp.o.d"
  "bench_eq1_coverage"
  "bench_eq1_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
