# Empty compiler generated dependencies file for bench_eq1_coverage.
# This may be replaced when dependencies are built.
