# Empty compiler generated dependencies file for bench_fig12_rail_optimized.
# This may be replaced when dependencies are built.
