file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_rail_optimized.dir/bench_fig12_rail_optimized.cpp.o"
  "CMakeFiles/bench_fig12_rail_optimized.dir/bench_fig12_rail_optimized.cpp.o.d"
  "bench_fig12_rail_optimized"
  "bench_fig12_rail_optimized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_rail_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
