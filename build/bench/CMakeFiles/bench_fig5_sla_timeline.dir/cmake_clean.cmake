file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sla_timeline.dir/bench_fig5_sla_timeline.cpp.o"
  "CMakeFiles/bench_fig5_sla_timeline.dir/bench_fig5_sla_timeline.cpp.o.d"
  "bench_fig5_sla_timeline"
  "bench_fig5_sla_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sla_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
