# Empty dependencies file for bench_fig5_sla_timeline.
# This may be replaced when dependencies are built.
