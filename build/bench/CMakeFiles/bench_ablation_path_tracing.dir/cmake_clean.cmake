file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_path_tracing.dir/bench_ablation_path_tracing.cpp.o"
  "CMakeFiles/bench_ablation_path_tracing.dir/bench_ablation_path_tracing.cpp.o.d"
  "bench_ablation_path_tracing"
  "bench_ablation_path_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_path_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
