# Empty dependencies file for bench_ablation_path_tracing.
# This may be replaced when dependencies are built.
