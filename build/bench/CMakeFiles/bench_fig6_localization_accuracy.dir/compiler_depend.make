# Empty compiler generated dependencies file for bench_fig6_localization_accuracy.
# This may be replaced when dependencies are built.
