
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_congestion_causes.cpp" "bench/CMakeFiles/bench_fig13_congestion_causes.dir/bench_fig13_congestion_causes.cpp.o" "gcc" "bench/CMakeFiles/bench_fig13_congestion_causes.dir/bench_fig13_congestion_causes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/rpm_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/rpm_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/pingmesh/CMakeFiles/rpm_pingmesh.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/rpm_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/rpm_host.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/rpm_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/rnic/CMakeFiles/rpm_rnic.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/rpm_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/rpm_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rpm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/rpm_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
