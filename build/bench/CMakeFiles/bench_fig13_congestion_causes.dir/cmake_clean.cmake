file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_congestion_causes.dir/bench_fig13_congestion_causes.cpp.o"
  "CMakeFiles/bench_fig13_congestion_causes.dir/bench_fig13_congestion_causes.cpp.o.d"
  "bench_fig13_congestion_causes"
  "bench_fig13_congestion_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_congestion_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
