# Empty dependencies file for bench_fig13_congestion_causes.
# This may be replaced when dependencies are built.
