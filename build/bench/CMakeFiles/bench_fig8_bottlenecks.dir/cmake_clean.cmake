file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bottlenecks.dir/bench_fig8_bottlenecks.cpp.o"
  "CMakeFiles/bench_fig8_bottlenecks.dir/bench_fig8_bottlenecks.cpp.o.d"
  "bench_fig8_bottlenecks"
  "bench_fig8_bottlenecks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bottlenecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
