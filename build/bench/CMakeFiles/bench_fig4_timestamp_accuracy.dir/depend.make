# Empty dependencies file for bench_fig4_timestamp_accuracy.
# This may be replaced when dependencies are built.
