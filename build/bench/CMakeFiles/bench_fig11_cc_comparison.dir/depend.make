# Empty dependencies file for bench_fig11_cc_comparison.
# This may be replaced when dependencies are built.
