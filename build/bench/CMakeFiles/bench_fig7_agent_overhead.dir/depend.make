# Empty dependencies file for bench_fig7_agent_overhead.
# This may be replaced when dependencies are built.
