# Empty dependencies file for bench_fig10_service_tracing.
# This may be replaced when dependencies are built.
