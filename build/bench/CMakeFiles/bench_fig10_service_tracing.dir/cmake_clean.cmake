file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_service_tracing.dir/bench_fig10_service_tracing.cpp.o"
  "CMakeFiles/bench_fig10_service_tracing.dir/bench_fig10_service_tracing.cpp.o.d"
  "bench_fig10_service_tracing"
  "bench_fig10_service_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_service_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
