# Empty compiler generated dependencies file for bench_fig2_software_rtt.
# This may be replaced when dependencies are built.
