file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_software_rtt.dir/bench_fig2_software_rtt.cpp.o"
  "CMakeFiles/bench_fig2_software_rtt.dir/bench_fig2_software_rtt.cpp.o.d"
  "bench_fig2_software_rtt"
  "bench_fig2_software_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_software_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
