#include "routing/ecmp.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace rpm::routing {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

TimeNs Path::propagation_total(const topo::Topology& topo) const {
  TimeNs total = 0;
  for (LinkId l : links) total += topo.link(l).propagation;
  return total;
}

EcmpRouter::EcmpRouter(const topo::Topology& topo, std::uint64_t seed)
    : topo_(topo), seed_(seed) {
  build_tables();
}

void EcmpRouter::build_tables() {
  const auto& tors = topo_.tor_switches();
  tor_ordinal_.assign(topo_.num_switches(),
                      std::numeric_limits<std::size_t>::max());
  for (std::size_t i = 0; i < tors.size(); ++i) {
    tor_ordinal_[tors[i].value] = i;
  }

  candidates_.assign(tors.size(), {});
  constexpr auto kInf = std::numeric_limits<std::uint32_t>::max();

  for (std::size_t ti = 0; ti < tors.size(); ++ti) {
    const SwitchId dst_tor = tors[ti];
    // BFS on the switch-only graph from the destination ToR.
    std::vector<std::uint32_t> dist(topo_.num_switches(), kInf);
    std::deque<SwitchId> q;
    dist[dst_tor.value] = 0;
    q.push_back(dst_tor);
    while (!q.empty()) {
      const SwitchId s = q.front();
      q.pop_front();
      for (LinkId out : topo_.out_links(topo::NodeRef::sw(s))) {
        const topo::Link& l = topo_.link(out);
        if (!l.to.is_switch()) continue;
        const SwitchId nb = l.to.as_switch();
        if (dist[nb.value] == kInf) {
          dist[nb.value] = dist[s.value] + 1;
          q.push_back(nb);
        }
      }
    }
    // Candidates at each switch: out-links to switch neighbours one step
    // closer to dst_tor. (Already sorted because out_links is sorted.)
    auto& per_switch = candidates_[ti];
    per_switch.assign(topo_.num_switches(), {});
    for (std::size_t s = 0; s < topo_.num_switches(); ++s) {
      if (dist[s] == kInf || dist[s] == 0) continue;
      for (LinkId out : topo_.out_links(topo::NodeRef::sw(SwitchId{
               static_cast<std::uint32_t>(s)}))) {
        const topo::Link& l = topo_.link(out);
        if (!l.to.is_switch()) continue;
        if (dist[l.to.as_switch().value] + 1 == dist[s]) {
          per_switch[s].push_back(out);
        }
      }
    }
  }
}

const std::vector<LinkId>& EcmpRouter::candidates(SwitchId sw,
                                                  SwitchId dst_tor) const {
  const std::size_t ord = tor_ordinal_.at(dst_tor.value);
  if (ord == std::numeric_limits<std::size_t>::max()) {
    throw std::invalid_argument("candidates: dst is not a ToR");
  }
  return candidates_[ord].at(sw.value);
}

std::size_t EcmpRouter::pick(SwitchId sw, const FiveTuple& tuple,
                             std::size_t n) const {
  if (n == 0) throw std::invalid_argument("pick: no candidates");
  const std::uint64_t h =
      mix64(tuple.stable_hash() ^ mix64(seed_ ^ (sw.value + 1)));
  return static_cast<std::size_t>(h % n);
}

Path EcmpRouter::resolve(RnicId src, RnicId dst, const FiveTuple& tuple,
                         const LinkUpFn& link_up) const {
  const auto up = [&](LinkId l) { return !link_up || link_up(l); };

  Path path;
  const topo::RnicInfo& s = topo_.rnic(src);
  const topo::RnicInfo& d = topo_.rnic(dst);

  // First hop: RNIC to its ToR.
  if (!up(s.uplink)) return path;  // blackholed at the host link
  path.links.push_back(s.uplink);

  SwitchId cur = s.tor;
  const std::size_t ord = tor_ordinal_.at(d.tor.value);
  if (ord == std::numeric_limits<std::size_t>::max()) {
    throw std::invalid_argument("resolve: destination not under a ToR");
  }

  constexpr int kMaxHops = 16;
  for (int hop = 0; hop < kMaxHops; ++hop) {
    path.switches.push_back(cur);
    if (cur == d.tor) {
      if (!up(d.downlink)) return path;  // ToR -> RNIC link down
      path.links.push_back(d.downlink);
      path.complete = true;
      return path;
    }
    const auto& cand = candidates_[ord][cur.value];
    // Filter to live links; a failure re-hashes among survivors.
    std::vector<LinkId> live;
    live.reserve(cand.size());
    for (LinkId l : cand) {
      if (up(l)) live.push_back(l);
    }
    if (live.empty()) return path;  // blackhole
    const LinkId next = live[pick(cur, tuple, live.size())];
    path.links.push_back(next);
    cur = topo_.link(next).to.as_switch();
  }
  return path;  // loop guard tripped; report incomplete
}

TracerouteService::TracerouteService(const EcmpRouter& router,
                                     double max_responses_per_sec)
    : router_(router), rate_(max_responses_per_sec) {
  if (rate_ <= 0.0) {
    throw std::invalid_argument("TracerouteService: rate must be > 0");
  }
  buckets_.resize(router_.topology().num_switches());
}

bool TracerouteService::consume_token(SwitchId sw, TimeNs now) {
  Bucket& b = buckets_[sw.value];
  const double refill = to_seconds(now - b.last) * rate_;
  b.tokens = std::min(rate_, b.tokens + refill);  // burst = 1 s worth
  b.last = now;
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return true;
  }
  return false;
}

TracerouteService::Result TracerouteService::trace(RnicId src, RnicId dst,
                                                   const FiveTuple& tuple,
                                                   TimeNs now,
                                                   const LinkUpFn& link_up) {
  Result r;
  r.path = router_.resolve(src, dst, tuple, link_up);
  r.all_responded = true;
  for (std::size_t i = 0; i < r.path.switches.size(); ++i) {
    Hop h;
    h.ingress = i < r.path.links.size() ? r.path.links[i] : LinkId{};
    if (consume_token(r.path.switches[i], now)) {
      h.sw = r.path.switches[i];
      h.responded = true;
    } else {
      r.all_responded = false;
    }
    r.hops.push_back(h);
  }
  return r;
}

}  // namespace rpm::routing
