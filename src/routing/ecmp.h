// ECMP routing over a Topology.
//
// Routing is next-hop based, like real Clos fabrics: each switch hashes the
// outer 5-tuple with a per-switch seed and picks among the out-links that lie
// on a shortest path toward the destination ToR. Candidate sets are
// precomputed by BFS from every ToR, which keeps resolve() O(path length) and
// makes the router topology-agnostic (it works for both the 3-tier Clos and
// the rail-optimized fabric).
//
// Link failures: resolve() accepts a link-up predicate. Down candidates are
// filtered out *before* hashing, so a failure re-hashes flows onto the
// surviving links — exactly the behaviour that makes post-failure Traceroute
// misleading (§4.2.3), which R-Pingmesh counters with continuous path
// tracing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/five_tuple.h"
#include "common/types.h"
#include "topo/topology.h"

namespace rpm::routing {

/// Predicate deciding whether a directed link is currently usable.
using LinkUpFn = std::function<bool(LinkId)>;

/// A resolved forwarding path. `links` and `switches` are in traversal
/// order; `complete` is false when the packet was blackholed (all candidate
/// next-hops down), in which case the vectors hold the prefix traversed.
struct Path {
  std::vector<LinkId> links;
  std::vector<SwitchId> switches;
  bool complete = false;

  [[nodiscard]] TimeNs propagation_total(const topo::Topology& topo) const;
};

class EcmpRouter {
 public:
  /// `seed` perturbs every switch's hash function (deterministic per seed).
  EcmpRouter(const topo::Topology& topo, std::uint64_t seed = 0x5eed);

  /// Resolve the path a packet with `tuple` takes from `src` to `dst`.
  /// `link_up` may be empty (everything up).
  [[nodiscard]] Path resolve(RnicId src, RnicId dst, const FiveTuple& tuple,
                             const LinkUpFn& link_up = {}) const;

  /// ECMP candidates at `sw` toward the ToR of `dst_tor` (pre-failure, i.e.
  /// unfiltered). Exposed for tests and for Equation-1 coverage counting.
  [[nodiscard]] const std::vector<LinkId>& candidates(SwitchId sw,
                                                      SwitchId dst_tor) const;

  /// The index the switch would pick among n candidates for this tuple.
  [[nodiscard]] std::size_t pick(SwitchId sw, const FiveTuple& tuple,
                                 std::size_t n) const;

  [[nodiscard]] const topo::Topology& topology() const { return topo_; }

 private:
  void build_tables();

  const topo::Topology& topo_;
  std::uint64_t seed_;
  // candidates_[tor_ordinal][switch_id] = out-links on shortest paths.
  std::vector<std::vector<std::vector<LinkId>>> candidates_;
  std::vector<std::size_t> tor_ordinal_;  // switch id -> ordinal among ToRs
};

/// Traceroute facade with per-switch response rate limiting, mimicking the
/// switch-CPU constraint of §4.2.3. A trace re-resolves the *current* path
/// (post-failure rehash included). Switches whose per-second budget is
/// exhausted do not answer: their hop is recorded as unknown.
class TracerouteService {
 public:
  struct Hop {
    SwitchId sw;        // invalid if the switch did not respond
    LinkId ingress;     // link whose `to` is this switch (invalid if unknown)
    bool responded = false;
  };
  struct Result {
    std::vector<Hop> hops;
    Path path;  // the underlying resolved path (ground truth for the sim)
    bool all_responded = false;
  };

  TracerouteService(const EcmpRouter& router, double max_responses_per_sec);

  /// Run one trace at simulated time `now`.
  Result trace(RnicId src, RnicId dst, const FiveTuple& tuple, TimeNs now,
               const LinkUpFn& link_up = {});

 private:
  bool consume_token(SwitchId sw, TimeNs now);

  const EcmpRouter& router_;
  double rate_;
  struct Bucket {
    double tokens = 0.0;
    TimeNs last = 0;
  };
  std::vector<Bucket> buckets_;
};

}  // namespace rpm::routing
