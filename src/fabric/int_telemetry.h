// In-band Network Telemetry (INT) path tracing — the upgrade path the paper
// leaves open in §7.4.
//
// Traceroute burns switch CPU, so switches rate-limit responses and the
// Agent's path cache can go stale. INT metadata is stamped by the data
// plane: no CPU cost, no rate limit, and each hop can report its queue
// depth — which localizes congestion directly instead of inferring it from
// RTT voting. The paper decoupled its path-tracing module precisely so INT
// could slot in on capable fabrics; this class is that slot-in.
#pragma once

#include "common/five_tuple.h"
#include "common/types.h"
#include "fabric/fabric.h"

namespace rpm::fabric {

/// One INT hop record: the traversed link and the egress queue state the
/// packet observed there.
struct IntHop {
  LinkId link;
  SwitchId sw;          // switch that stamped the record (invalid on the
                        // final host-bound hop)
  Bytes queue_bytes = 0;
  TimeNs queue_delay = 0;
};

struct IntTraceResult {
  routing::Path path;
  std::vector<IntHop> hops;
  bool complete = false;
};

/// Data-plane path telemetry over the simulated fabric. Unlike
/// routing::TracerouteService there is no rate limiting: every trace
/// returns the full, current path.
class IntTelemetry {
 public:
  explicit IntTelemetry(Fabric& fabric) : fabric_(fabric) {}

  /// Trace the current ECMP path of `tuple` and sample each hop's queue.
  [[nodiscard]] IntTraceResult trace(RnicId src, RnicId dst,
                                     const FiveTuple& tuple) const;

 private:
  Fabric& fabric_;
};

}  // namespace rpm::fabric
