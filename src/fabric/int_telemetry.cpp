#include "fabric/int_telemetry.h"

namespace rpm::fabric {

IntTraceResult IntTelemetry::trace(RnicId src, RnicId dst,
                                   const FiveTuple& tuple) const {
  IntTraceResult r;
  r.path = fabric_.current_path(src, dst, tuple);
  r.complete = r.path.complete;
  r.hops.reserve(r.path.links.size());
  for (std::size_t i = 0; i < r.path.links.size(); ++i) {
    IntHop hop;
    hop.link = r.path.links[i];
    if (i < r.path.switches.size()) hop.sw = r.path.switches[i];
    hop.queue_bytes = fabric_.link_state(hop.link).queue_bytes;
    hop.queue_delay = fabric_.link_queue_delay(hop.link);
    r.hops.push_back(hop);
  }
  return r;
}

}  // namespace rpm::fabric
