#include "fabric/fabric.h"

#include "obs/flight_recorder.h"
#include "sim/parallel.h"
#include "sketch/sketch.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rpm::fabric {

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kNone:
      return "none";
    case DropReason::kLinkDown:
      return "link-down";
    case DropReason::kBlackhole:
      return "blackhole";
    case DropReason::kCorruption:
      return "corruption";
    case DropReason::kBufferOverflow:
      return "buffer-overflow";
    case DropReason::kAclDeny:
      return "acl-deny";
    case DropReason::kPfcDeadlock:
      return "pfc-deadlock";
  }
  return "?";
}

Fabric::Fabric(const topo::Topology& topo, const routing::EcmpRouter& router,
               sim::Scheduler& sched, FabricConfig cfg)
    : topo_(topo),
      router_(router),
      sched_(sched),
      cfg_(cfg),
      rng_(cfg.seed),
      links_(topo.num_links()),
      acl_(topo.num_switches()),
      delivery_(topo.num_rnics()),
      step_task_(sched, cfg.step_interval, [this] { step_once(); }),
      offered_(topo.num_links(), 0.0),
      drop_frac_(topo.num_links(), 0.0) {
  if (cfg_.step_interval <= 0) {
    throw std::invalid_argument("FabricConfig: step_interval must be > 0");
  }
  if (cfg_.ecn_kmin >= cfg_.ecn_kmax || cfg_.ecn_kmax > cfg_.buffer_bytes) {
    throw std::invalid_argument("FabricConfig: require kmin < kmax <= buffer");
  }
  init_metrics();
}

void Fabric::init_metrics() {
  auto& reg = telemetry::registry();
  sends_total_ = reg.counter("rpm_fabric_sends_total",
                             "Datagrams injected into the packet plane");
  delivered_total_ = reg.counter("rpm_fabric_delivered_total",
                                 "Datagrams delivered to a destination RNIC");
  fluid_steps_total_ = reg.counter("rpm_fabric_fluid_steps_total",
                                   "Fluid-plane integration steps executed");
  for (std::uint8_t r = 0; r < 7; ++r) {
    drops_total_[r] = reg.counter(
        "rpm_fabric_drops_total", "Datagram drops by reason",
        {{"reason", drop_reason_name(static_cast<DropReason>(r))}});
  }
  link_collector_ = telemetry::CollectorGuard(
      reg, [this](telemetry::MetricsRegistry& r) { collect_link_metrics(r); });
}

void Fabric::count_drop(DropReason r) {
  drops_total_[static_cast<std::uint8_t>(r)].inc();
}

void Fabric::collect_link_metrics(telemetry::MetricsRegistry& reg) {
  // Per-link series are materialized lazily and only for links that have
  // ever queued, paused, or dropped — a healthy idle fabric contributes no
  // per-link series, which keeps snapshots readable on big topologies.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const LinkState& s = links_[i];
    const std::uint64_t drops = s.drops_corrupt + s.drops_overflow +
                                s.drops_down;
    if (s.queue_bytes == 0 && drops == 0 && s.pfc_pause_events == 0 &&
        !s.pfc_paused) {
      continue;
    }
    const std::string& link = topo_.link(LinkId{
        static_cast<std::uint32_t>(i)}).name;
    reg.gauge("rpm_link_queue_bytes", "Current per-link queue depth",
              {{"link", link}})
        .set(static_cast<double>(s.queue_bytes));
    reg.gauge("rpm_link_ecn_mark_prob",
              "Current ECN marking probability on the link", {{"link", link}})
        .set(ecn_mark_prob(s));
    reg.gauge("rpm_link_pfc_paused", "1 while the link asserts PFC PAUSE",
              {{"link", link}})
        .set(s.pfc_paused ? 1.0 : 0.0);
    reg.counter("rpm_link_pfc_pause_total", "PFC PAUSE events on the link",
                {{"link", link}})
        .set(s.pfc_pause_events);
    reg.counter("rpm_link_drops_total", "Per-link packet drops by cause",
                {{"link", link}, {"cause", "down"}})
        .set(s.drops_down);
    reg.counter("rpm_link_drops_total", "Per-link packet drops by cause",
                {{"link", link}, {"cause", "corrupt"}})
        .set(s.drops_corrupt);
    reg.counter("rpm_link_drops_total", "Per-link packet drops by cause",
                {{"link", link}, {"cause", "overflow"}})
        .set(s.drops_overflow);
  }
}

void Fabric::set_delivery_handler(RnicId rnic, DeliveryFn fn) {
  delivery_.at(rnic.value) = std::move(fn);
}

bool Fabric::link_usable(LinkId id) const {
  return links_[id.value].usable();
}

TimeNs Fabric::link_queue_delay(LinkId id) const {
  const LinkState& s = links_[id.value];
  const double cap = effective_capacity(topo_.link(id), s);
  if (cap <= 0.0) return 0;
  return static_cast<TimeNs>(static_cast<double>(s.queue_bytes) / cap * 1e9);
}

double Fabric::effective_capacity(const topo::Link& l,
                                  const LinkState& s) const {
  return l.capacity_Bps * std::max(0.01, s.service_rate_factor);
}

double Fabric::ecn_mark_prob(const LinkState& s) const {
  if (s.queue_bytes <= cfg_.ecn_kmin) return 0.0;
  if (s.queue_bytes >= cfg_.ecn_kmax) return 1.0;
  const double f =
      static_cast<double>(s.queue_bytes - cfg_.ecn_kmin) /
      static_cast<double>(cfg_.ecn_kmax - cfg_.ecn_kmin);
  return f * cfg_.ecn_pmax;
}

LinkState& Fabric::link_state(LinkId id) { return links_.at(id.value); }
const LinkState& Fabric::link_state(LinkId id) const {
  return links_.at(id.value);
}

void Fabric::set_cable_up(LinkId any_direction, bool up) {
  const topo::Link& l = topo_.link(any_direction);
  links_[l.id.value].admin_up = up;
  links_[l.peer.value].admin_up = up;
  bump_topology_epoch();
}

void Fabric::set_cable_flapping(LinkId any_direction, bool down_phase) {
  // Deliberately no topology-epoch bump: a flap is faster than routing
  // convergence, so flows keep their paths and lose packets in place.
  const topo::Link& l = topo_.link(any_direction);
  links_[l.id.value].flapping = down_phase;
  links_[l.peer.value].flapping = down_phase;
}

void Fabric::add_acl_deny(SwitchId sw, IpAddr src, IpAddr dst) {
  acl_.at(sw.value).push_back(AclRule{src, dst});
}

void Fabric::clear_acl(SwitchId sw) { acl_.at(sw.value).clear(); }

bool Fabric::acl_denies(SwitchId sw, const FiveTuple& t) const {
  for (const AclRule& r : acl_[sw.value]) {
    const bool src_match = r.src.value == 0 || r.src == t.src_ip;
    const bool dst_match = r.dst.value == 0 || r.dst == t.dst_ip;
    if (src_match && dst_match) return true;
  }
  return false;
}

routing::Path Fabric::current_path(RnicId src, RnicId dst,
                                   const FiveTuple& tuple) const {
  return router_.resolve(src, dst, tuple,
                         [this](LinkId l) { return link_usable(l); });
}

SendOutcome Fabric::send(const Datagram& dgram) {
  sends_total_.inc();
  SendOutcome out;
  out.path = current_path(dgram.src, dgram.dst, dgram.tuple);
  // Flight-recorder hook: one compare against 0 on the untracked fast path.
  const bool traced = dgram.trace_id != 0 && obs::recorder().enabled();
  // `sketch_link`: which link's sketch absorbs the drop — out.drop_link
  // everywhere except ACL denies, which are charged to the link that carried
  // the packet into the denying switch (out.drop_link stays unset there).
  const auto trace_drop = [&](std::uint32_t sketch_link) {
    if (traced) {
      obs::recorder().record(dgram.trace_id, obs::ProbeEventKind::kFabricDrop,
                             static_cast<std::uint64_t>(out.drop),
                             out.drop_link.value);
    }
    if (sketches_ != nullptr) {
      sketches_->on_drop(sketch_link, static_cast<std::uint8_t>(out.drop));
    }
  };

  if (!out.path.complete) {
    // Either the very first hop was down, the last hop was down, or ECMP had
    // no live candidate mid-path (blackhole).
    if (out.path.links.empty()) {
      out.drop = DropReason::kLinkDown;
      out.drop_link = topo_.rnic(dgram.src).uplink;  // src edge link down
    } else if (!out.path.switches.empty() &&
               out.path.switches.back() == topo_.rnic(dgram.dst).tor) {
      out.drop = DropReason::kLinkDown;
      out.drop_link = topo_.rnic(dgram.dst).downlink;  // dst edge link down
    } else {
      out.drop = DropReason::kBlackhole;
      out.drop_link = out.path.links.back();
      if (!out.path.switches.empty()) {
        out.drop_switch = out.path.switches.back();
      }
    }
    links_[out.drop_link.value].drops_down++;
    count_drop(out.drop);
    trace_drop(out.drop_link.value);
    return out;
  }

  // Packets with protocol 17 ride the lossless RoCE traffic class; anything
  // else (TCP probes, management traffic) rides a separate lossy queue that
  // is unaffected by RoCE-queue congestion, PFC pauses, deadlocks, or PFC
  // headroom misconfiguration. This is why TCP Pingmesh probes cannot detect
  // RoCE-specific problems (§2.4).
  const bool roce_class = dgram.tuple.protocol == 17;

  Rng& rng = draw_rng(dgram.src);
  TimeNs latency = 0;
  for (std::size_t i = 0; i < out.path.links.size(); ++i) {
    const LinkId lid = out.path.links[i];
    LinkState& s = links_[lid.value];
    const topo::Link& l = topo_.link(lid);

    if (s.flapping) {
      // The port is bouncing: forwarding state still points here, but the
      // packet is lost on the wire.
      out.drop = DropReason::kLinkDown;
      out.drop_link = lid;
      s.drops_down++;
      count_drop(out.drop);
      trace_drop(out.drop_link.value);
      return out;
    }
    if (s.deadlocked && roce_class) {
      out.drop = DropReason::kPfcDeadlock;
      out.drop_link = lid;
      s.drops_down++;
      count_drop(out.drop);
      trace_drop(out.drop_link.value);
      return out;
    }
    if (s.corrupt_prob > 0.0 && rng.chance(s.corrupt_prob)) {
      out.drop = DropReason::kCorruption;
      out.drop_link = lid;
      s.drops_corrupt++;
      count_drop(out.drop);
      trace_drop(out.drop_link.value);
      return out;
    }
    if (roce_class && s.overflow_drop_frac > 0.0 &&
        rng.chance(s.overflow_drop_frac)) {
      out.drop = DropReason::kBufferOverflow;
      out.drop_link = lid;
      s.drops_overflow++;
      count_drop(out.drop);
      trace_drop(out.drop_link.value);
      return out;
    }

    const double cap = effective_capacity(l, s);
    const TimeNs serialization =
        static_cast<TimeNs>(static_cast<double>(dgram.size) / cap * 1e9);
    TimeNs hop_delay = l.propagation + serialization;
    if (roce_class) hop_delay += link_queue_delay(lid);
    latency += hop_delay;

    if (sketches_ != nullptr) {
      // This link's contribution to the datagram's one-way latency, plus
      // its current queue depth and ECN marking odds (RoCE class only:
      // the lossy queue neither marks nor backs up on RoCE congestion).
      sketches_->on_forward(lid.value, dgram.size, hop_delay, s.queue_bytes,
                            roce_class ? ecn_mark_prob(s) : 0.0);
    }

    if (traced) {
      // Per-hop traversal: a = link id, b = cumulative one-way latency so
      // far (propagation + serialization + queueing up to this hop).
      obs::recorder().record(dgram.trace_id, obs::ProbeEventKind::kHop,
                             lid.value, static_cast<std::uint64_t>(latency));
    }

    // ACL is evaluated at the switch the packet just arrived at.
    if (i < out.path.switches.size()) {
      const SwitchId sw = out.path.switches[i];
      if (!acl_[sw.value].empty() && acl_denies(sw, dgram.tuple)) {
        out.drop = DropReason::kAclDeny;
        out.drop_switch = sw;
        count_drop(out.drop);
        trace_drop(lid.value);
        return out;
      }
    }
  }

  out.delivered = true;
  out.latency = latency;
  delivered_total_.inc();
  if (DeliveryFn& handler = delivery_[dgram.dst.value]; handler) {
    // Copy the datagram into the event; the caller's object may not outlive
    // the flight time. Partitioned: delivery lands on the destination
    // RNIC's partition queue (through the per-edge inbox when the source
    // executes in another partition); sched_.now() is the sender's clock.
    const TimeNs deliver_at = sched_.now() + latency;
    sim::Scheduler& target =
        pmap_ != nullptr && psched_ != nullptr
            ? psched_->partition(pmap_->rnic_partition[dgram.dst.value])
            : sched_;
    target.schedule_at(deliver_at, [handler, dgram] { handler(dgram); });
  }
  return out;
}

Rng& Fabric::draw_rng(RnicId src) {
  if (pmap_ != nullptr && !part_rng_.empty()) {
    return part_rng_[pmap_->rnic_partition[src.value]];
  }
  return rng_;
}

void Fabric::set_partitioning(const topo::PartitionMap* map,
                              sim::ParallelScheduler* psched) {
  pmap_ = map;
  psched_ = psched;
  part_rng_.clear();
  if (pmap_ == nullptr) return;
  // One independent drop-lottery stream per partition, forked from the
  // fabric's seed stream in partition order — deterministic per partition
  // count (the unpartitioned path never forks, so `partitions = 1` via the
  // inline backend keeps the seed pipeline's exact draw sequence).
  part_rng_.reserve(pmap_->num_partitions);
  for (std::uint32_t p = 0; p < pmap_->num_partitions; ++p) {
    part_rng_.push_back(rng_.fork());
  }
}

FlowId Fabric::add_flow(const FlowSpec& spec) {
  if (spec.demand_Bps < 0.0) {
    throw std::invalid_argument("add_flow: negative demand");
  }
  Flow f;
  f.spec = spec;
  f.live = true;
  f.cc_slot = next_cc_slot_++;
  const double line_rate =
      topo_.link(topo_.rnic(spec.src).uplink).capacity_Bps;
  f.rate_Bps = spec.controller
                   ? spec.controller->reset(f.cc_slot, spec.demand_Bps,
                                            line_rate)
                   : spec.demand_Bps;
  resolve_flow_path(f);
  flows_.push_back(std::move(f));
  ++live_flows_;
  return FlowId{static_cast<std::uint32_t>(flows_.size() - 1)};
}

void Fabric::remove_flow(FlowId id) {
  Flow& f = flows_.at(id.value);
  if (f.live) {
    f.live = false;
    --live_flows_;
  }
}

void Fabric::set_flow_demand(FlowId id, double demand_Bps) {
  Flow& f = flows_.at(id.value);
  f.spec.demand_Bps = demand_Bps;
  if (!f.spec.controller) f.rate_Bps = demand_Bps;
}

FlowStats Fabric::flow_stats(FlowId id) const {
  return flows_.at(id.value).stats;
}

const routing::Path& Fabric::flow_path(FlowId id) const {
  return flows_.at(id.value).path;
}

void Fabric::resolve_flow_path(Flow& f) {
  f.path = current_path(f.spec.src, f.spec.dst, f.spec.tuple);
  f.path_epoch = topology_epoch_;
}

void Fabric::start(TimeNs first_delay) { step_task_.start(first_delay); }
void Fabric::stop() { step_task_.cancel(); }

void Fabric::step_once() {
  fluid_steps_total_.inc();
  const double ds = to_seconds(cfg_.step_interval);

  // 1. Refresh stale flow paths (topology changed since last resolve).
  for (Flow& f : flows_) {
    if (f.live && f.path_epoch != topology_epoch_) resolve_flow_path(f);
  }

  // 2. Offered load per link.
  std::fill(offered_.begin(), offered_.end(), 0.0);
  for (const Flow& f : flows_) {
    if (!f.live || !f.path.complete) continue;
    for (LinkId l : f.path.links) offered_[l.value] += f.rate_Bps;
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    offered_[i] += links_[i].extra_load_Bps;
  }

  // 3. Queue integration, ECN, PFC/overflow per link.
  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkState& s = links_[i];
    const topo::Link& l = topo_.link(LinkId{static_cast<std::uint32_t>(i)});
    const double cap = effective_capacity(l, s);
    if (!s.usable() || s.flapping || s.deadlocked) {
      // No service; queue frozen (a PFC deadlock holds buffers hostage, and
      // a flapping/down port transfers nothing).
      drop_frac_[i] = 0.0;
      continue;
    }
    const double dq = (offered_[i] - cap) * ds;
    double q = static_cast<double>(s.queue_bytes) + dq;
    if (q < 0.0) q = 0.0;

    s.overflow_drop_frac = 0.0;
    s.pfc_paused = false;
    if (q > static_cast<double>(cfg_.buffer_bytes)) {
      const double excess = q - static_cast<double>(cfg_.buffer_bytes);
      q = static_cast<double>(cfg_.buffer_bytes);
      if (s.pfc_enabled && !s.pfc_misconfigured) {
        // Lossless: push the excess back into upstream egress queues. This
        // is how congestion trees and PFC storms spread hop by hop.
        s.pfc_paused = true;
        ++s.pfc_pause_events;
        const topo::NodeRef upstream_node = l.from;
        if (upstream_node.is_switch()) {
          double feeding_total = 0.0;
          for (LinkId in : topo_.out_links(upstream_node)) {
            // in-links of `upstream_node` are peers of its out-links
            const LinkId in_id = topo_.link(in).peer;
            feeding_total += offered_[in_id.value];
          }
          if (feeding_total > 0.0) {
            for (LinkId out : topo_.out_links(upstream_node)) {
              const LinkId in_id = topo_.link(out).peer;
              const double share = offered_[in_id.value] / feeding_total;
              links_[in_id.value].queue_bytes +=
                  static_cast<Bytes>(excess * share);
            }
          }
        }
      } else {
        // Lossy queue (PFC off or headroom misconfigured): tail drop.
        const double offered_bytes = offered_[i] * ds;
        s.overflow_drop_frac =
            offered_bytes > 0.0 ? std::min(1.0, excess / offered_bytes) : 0.0;
        ++s.drops_overflow;
      }
    } else if (s.queue_bytes > static_cast<Bytes>(
                   cfg_.pfc_threshold_frac *
                   static_cast<double>(cfg_.buffer_bytes)) &&
               s.pfc_enabled && !s.pfc_misconfigured) {
      s.pfc_paused = true;
    }
    s.queue_bytes = static_cast<Bytes>(q);
    drop_frac_[i] = s.overflow_drop_frac;
  }

  // 4. Per-flow achieved rate, loss, queue delay; CC update.
  for (Flow& f : flows_) {
    if (!f.live) continue;
    FlowStats st;
    st.offered_Bps = f.rate_Bps;
    if (!f.path.complete) {
      st.loss_rate = 1.0;
      st.achieved_Bps = 0.0;
      f.stats = st;
      continue;
    }
    double factor = 1.0;
    double survive = 1.0;
    double ecn_survive = 1.0;
    TimeNs qdelay = 0;
    double bottleneck_cap = 0.0;
    bool blocked = false;
    for (LinkId lid : f.path.links) {
      const LinkState& s = links_[lid.value];
      const topo::Link& l = topo_.link(lid);
      if (!s.usable() || s.flapping || s.deadlocked) {
        blocked = true;
        break;
      }
      const double cap = effective_capacity(l, s);
      if (bottleneck_cap == 0.0 || cap < bottleneck_cap) bottleneck_cap = cap;
      const double arrival = offered_[lid.value];
      if (arrival > cap) factor = std::min(factor, cap / arrival);
      survive *= (1.0 - std::min(1.0, s.corrupt_prob + drop_frac_[lid.value]));
      ecn_survive *= (1.0 - ecn_mark_prob(s));
      qdelay += link_queue_delay(lid);
    }
    if (blocked) {
      st.loss_rate = 1.0;
      st.achieved_Bps = 0.0;
    } else {
      st.loss_rate = 1.0 - survive;
      st.achieved_Bps = f.rate_Bps * factor * survive;
      st.queue_delay = qdelay;
    }
    f.stats = st;

    if (f.spec.controller && !blocked) {
      CcFeedback fb;
      fb.ecn_fraction = 1.0 - ecn_survive;
      fb.queue_delay = qdelay;
      fb.base_rtt = 2 * f.path.propagation_total(topo_);
      fb.achieved_Bps = st.achieved_Bps;
      fb.bottleneck_capacity_Bps = bottleneck_cap;
      fb.dt = cfg_.step_interval;
      f.rate_Bps = std::clamp(
          f.spec.controller->update(f.cc_slot, fb, f.rate_Bps), 0.0,
          f.spec.demand_Bps);
    }
  }
}

}  // namespace rpm::fabric
