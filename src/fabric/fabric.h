// The RoCE fabric: dynamic network state on top of an immutable Topology.
//
// Two traffic granularities coexist (see DESIGN.md §5):
//
//  * FLUID service flows. Each registered flow has an ECMP-resolved path and
//    a rate (optionally governed by a RateController, e.g. DCQCN). Every
//    `step_interval` the engine integrates per-link queues from offered
//    load, applies ECN marking, PFC backpressure (lossless) or tail drops
//    (lossy/misconfigured), and computes achieved throughput.
//
//  * PACKET-level datagrams (probes, ACKs). A datagram resolves its path
//    with the *current* link state, accumulates per-hop propagation +
//    queueing delay sampled from the fluid queues, and is subject to per-hop
//    drop checks (link down/flap, corruption, ACL deny, PFC deadlock,
//    overflow loss). Delivery is an event at the destination RNIC's handler.
//
// All fault hooks (flaps, corruption, deadlock, ACL, PCIe service-rate
// degradation) are plain setters on link/switch state; src/faults drives
// them on a schedule.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/five_tuple.h"
#include "common/rng.h"
#include "common/types.h"
#include "routing/ecmp.h"
#include "sim/scheduler.h"
#include "telemetry/metrics.h"
#include "topo/partition.h"
#include "topo/topology.h"

namespace rpm::sketch {
class LinkSketchBank;
}  // namespace rpm::sketch

namespace rpm::sim {
class ParallelScheduler;
}  // namespace rpm::sim

namespace rpm::fabric {

/// Why a datagram was not delivered.
enum class DropReason : std::uint8_t {
  kNone,
  kLinkDown,       // admin-down or flapping link on the path
  kBlackhole,      // no live ECMP candidate (all next-hops down)
  kCorruption,     // CRC-style corruption drop (fiber/module damage)
  kBufferOverflow, // lossy or PFC-misconfigured queue overflowed
  kAclDeny,        // switch ACL dropped the packet
  kPfcDeadlock,    // path crosses a deadlocked link: never delivered
};

const char* drop_reason_name(DropReason r);

/// A single packet travelling through the fabric (probe, ACK, ...).
struct Datagram {
  RnicId src;
  RnicId dst;
  FiveTuple tuple;
  Bytes size = 64;
  Qpn src_qpn;
  Qpn dst_qpn;
  std::uint64_t wr_tag = 0;  // sender work-request id (echoed by RC HW ACKs)
  // Flight-recorder correlation key (0 = untracked). A sampled probe carries
  // its probe id here so the fabric can record per-hop traversal and drop
  // events onto the probe's timeline; the per-hop check is a single compare
  // against 0 for the (overwhelmingly common) untracked case.
  std::uint64_t trace_id = 0;
  std::any payload;          // opaque to the fabric; typed by the verbs layer
};

/// Outcome of Fabric::send (the simulator's ground truth for this packet).
struct SendOutcome {
  routing::Path path;
  bool delivered = false;
  DropReason drop = DropReason::kNone;
  LinkId drop_link;      // valid when dropped on a link
  SwitchId drop_switch;  // valid when dropped by a switch (ACL)
  TimeNs latency = 0;    // one-way network latency when delivered
};

/// Per-flow feedback handed to a RateController each fluid step.
struct CcFeedback {
  double ecn_fraction = 0.0;        // marking probability along the path
  TimeNs queue_delay = 0;           // current queueing delay along the path
  TimeNs base_rtt = 0;              // 2 * propagation along the path
  double achieved_Bps = 0.0;
  double bottleneck_capacity_Bps = 0.0;
  TimeNs dt = 0;
};

/// Congestion-control strategy interface implemented by src/cc. One
/// controller instance may govern many flows; `flow_slot` identifies the
/// flow's per-controller state.
class RateController {
 public:
  virtual ~RateController() = default;
  /// Called when a flow is (re)registered. Returns the initial rate.
  virtual double reset(std::uint32_t flow_slot, double demand_Bps,
                       double line_rate_Bps) = 0;
  /// Called every fluid step; returns the new sending rate.
  virtual double update(std::uint32_t flow_slot, const CcFeedback& fb,
                        double current_rate_Bps) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Dynamic per-link state (one per *directed* link).
///
/// `admin_up = false` models a *persistent* failure the routing layer has
/// converged around: ECMP re-hashes traffic onto surviving links (and
/// post-failure Traceroute shows the new path — the staleness pitfall of
/// §4.2.3). `flapping = true` models a port bouncing faster than routing
/// reacts: the link stays in forwarding tables and packets crossing it
/// during a down phase are simply lost.
struct LinkState {
  bool admin_up = true;
  bool flapping = false;       // currently in the "down" phase of a flap
  bool deadlocked = false;     // PFC deadlock blocks the link entirely
  bool pfc_enabled = true;     // lossless queue configured
  bool pfc_misconfigured = false;  // headroom wrong: overflow drops anyway
  double corrupt_prob = 0.0;   // per-packet corruption drop probability
  double service_rate_factor = 1.0;  // <1 models PCIe-downgraded endpoints
  double extra_load_Bps = 0.0; // background load not modelled as flows

  Bytes queue_bytes = 0;
  double overflow_drop_frac = 0.0;  // fraction of offered load dropped now
  bool pfc_paused = false;          // asserted pause towards upstream

  // counters (monotonic)
  std::uint64_t drops_corrupt = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_down = 0;
  std::uint64_t pfc_pause_events = 0;

  /// Usable for *routing* (stays in forwarding tables while flapping).
  [[nodiscard]] bool usable() const { return admin_up; }
  /// Currently able to carry a packet.
  [[nodiscard]] bool carrying() const { return admin_up && !flapping; }
};

/// Registered fluid flow.
struct FlowSpec {
  RnicId src;
  RnicId dst;
  FiveTuple tuple;
  double demand_Bps = 0.0;             // application offered load
  RateController* controller = nullptr;  // optional; nullptr = fixed demand
};

struct FlowStats {
  double offered_Bps = 0.0;
  double achieved_Bps = 0.0;
  double loss_rate = 0.0;  // instantaneous drop fraction along the path
  TimeNs queue_delay = 0;  // current queueing delay along the path
};

struct FabricConfig {
  TimeNs step_interval = usec(100);  // fluid integration step
  Bytes buffer_bytes = 32 * 1024 * 1024;   // per-port packet buffer
  Bytes ecn_kmin = 1 * 1024 * 1024;        // RED/ECN min threshold
  Bytes ecn_kmax = 8 * 1024 * 1024;        // RED/ECN max threshold
  double ecn_pmax = 0.2;                   // marking prob at kmax
  double pfc_threshold_frac = 0.75;        // queue frac asserting PAUSE
  std::uint64_t seed = 42;
};

class Fabric {
 public:
  Fabric(const topo::Topology& topo, const routing::EcmpRouter& router,
         sim::Scheduler& sched, FabricConfig cfg = {});

  // ---- packet plane ----

  /// Handler invoked (as a scheduled event) when a datagram reaches an RNIC.
  using DeliveryFn = std::function<void(const Datagram&)>;
  void set_delivery_handler(RnicId rnic, DeliveryFn fn);

  /// Inject a datagram. Resolves the path with current link state, applies
  /// drop checks, and — if it survives — schedules delivery. Returns the
  /// ground-truth outcome immediately (the simulator knows its own dice).
  SendOutcome send(const Datagram& dgram);

  /// The ECMP path this tuple would take right now (used by Traceroute).
  [[nodiscard]] routing::Path current_path(RnicId src, RnicId dst,
                                           const FiveTuple& tuple) const;

  // ---- fluid plane ----

  FlowId add_flow(const FlowSpec& spec);
  void remove_flow(FlowId id);
  void set_flow_demand(FlowId id, double demand_Bps);
  [[nodiscard]] FlowStats flow_stats(FlowId id) const;
  [[nodiscard]] const routing::Path& flow_path(FlowId id) const;
  [[nodiscard]] std::size_t num_flows() const { return live_flows_; }

  /// Start/stop the periodic fluid step (idempotent).
  void start(TimeNs first_delay = 0);
  void stop();

  /// Run one integration step manually (tests).
  void step_once();

  // ---- state & fault hooks ----

  LinkState& link_state(LinkId id);
  [[nodiscard]] const LinkState& link_state(LinkId id) const;

  /// Admin/flap helpers affecting both directions of the cable.
  void set_cable_up(LinkId any_direction, bool up);
  void set_cable_flapping(LinkId any_direction, bool down_phase);

  /// Deny all packets whose (src_ip, dst_ip) matches at `sw`. Invalid (zero)
  /// addresses act as wildcards.
  void add_acl_deny(SwitchId sw, IpAddr src, IpAddr dst);
  void clear_acl(SwitchId sw);

  [[nodiscard]] bool link_usable(LinkId id) const;

  /// Queueing delay a packet entering this link right now experiences.
  [[nodiscard]] TimeNs link_queue_delay(LinkId id) const;

  [[nodiscard]] const topo::Topology& topology() const { return topo_; }
  [[nodiscard]] const routing::EcmpRouter& router() const { return router_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const FabricConfig& config() const { return cfg_; }

  /// Marks routing-relevant state as changed; flow paths are re-resolved on
  /// the next fluid step. Called automatically by the fault setters.
  void bump_topology_epoch() { ++topology_epoch_; }

  /// Attach (or with nullptr, detach) a per-link sketch bank (src/sketch):
  /// every forwarded datagram updates its links' traffic/latency/queue
  /// sketches, every drop its drop counters. The bank draws no randomness
  /// and feeds nothing back into forwarding, so attaching one never perturbs
  /// the fabric's deterministic behavior. The bank must outlive the
  /// attachment (the owner detaches before destroying it).
  void attach_sketches(sketch::LinkSketchBank* bank) { sketches_ = bank; }
  [[nodiscard]] sketch::LinkSketchBank* sketches() const { return sketches_; }

  /// Partition the packet plane (sim/parallel.h): delivery events are
  /// scheduled on the destination RNIC's partition and per-packet drop
  /// draws come from per-partition RNG streams keyed by the *source* RNIC's
  /// partition — each partition's dispatch loop consumes its own stream, so
  /// outcomes are identical for any worker-thread mapping. Both arguments
  /// must outlive the fabric; pass (nullptr, nullptr) to detach. The fluid
  /// plane keeps running as periodic events on the scheduler the fabric was
  /// constructed with (partition 0 when that is a ParallelScheduler facade).
  void set_partitioning(const topo::PartitionMap* map,
                        sim::ParallelScheduler* psched);

 private:
  struct Flow {
    FlowSpec spec;
    routing::Path path;
    double rate_Bps = 0.0;   // current sending rate (CC-governed)
    std::uint64_t path_epoch = 0;
    bool live = false;
    FlowStats stats;
    std::uint32_t cc_slot = 0;
  };

  struct AclRule {
    IpAddr src;  // zero = wildcard
    IpAddr dst;  // zero = wildcard
  };

  void resolve_flow_path(Flow& f);
  /// Drop-lottery stream for a packet injected at `src` (partition-local
  /// when partitioned, the shared legacy stream otherwise).
  [[nodiscard]] Rng& draw_rng(RnicId src);
  [[nodiscard]] double effective_capacity(const topo::Link& l,
                                          const LinkState& s) const;
  [[nodiscard]] double ecn_mark_prob(const LinkState& s) const;
  bool acl_denies(SwitchId sw, const FiveTuple& t) const;
  void init_metrics();
  void count_drop(DropReason r);
  void collect_link_metrics(telemetry::MetricsRegistry& reg);

  const topo::Topology& topo_;
  const routing::EcmpRouter& router_;
  sim::Scheduler& sched_;
  FabricConfig cfg_;
  Rng rng_;
  const topo::PartitionMap* pmap_ = nullptr;       // optional, not owned
  sim::ParallelScheduler* psched_ = nullptr;       // optional, not owned
  std::vector<Rng> part_rng_;  // per-partition drop-lottery streams

  std::vector<LinkState> links_;
  std::vector<std::vector<AclRule>> acl_;  // per switch
  std::vector<DeliveryFn> delivery_;       // per rnic
  sketch::LinkSketchBank* sketches_ = nullptr;  // optional, not owned

  std::vector<Flow> flows_;
  std::size_t live_flows_ = 0;
  std::uint64_t topology_epoch_ = 1;
  std::uint32_t next_cc_slot_ = 0;

  sim::PeriodicTask step_task_;

  // scratch buffers reused across steps
  std::vector<double> offered_;   // per link
  std::vector<double> drop_frac_; // per link

  // self-observability (handles cached at construction; inc() on hot paths)
  telemetry::Counter sends_total_;
  telemetry::Counter delivered_total_;
  telemetry::Counter fluid_steps_total_;
  telemetry::Counter drops_total_[7];  // indexed by DropReason
  telemetry::CollectorGuard link_collector_;  // last: detached before members
};

}  // namespace rpm::fabric
