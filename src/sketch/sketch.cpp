#include "sketch/sketch.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/flight_recorder.h"

namespace rpm::sketch {
namespace {

// gamma = (1+a)/(1-a); bucket index of v>0 is ceil(log(v)/log(gamma)).
// The boundaries depend only on kRelativeAccuracy, never on the data, so
// every sketch in the system buckets identically and merges bucket-wise.
const double kGamma = (1.0 + QuantileSketch::kRelativeAccuracy) /
                      (1.0 - QuantileSketch::kRelativeAccuracy);
const double kInvLogGamma = 1.0 / std::log(kGamma);

std::int32_t bucket_index(double v) {
  return static_cast<std::int32_t>(std::ceil(std::log(v) * kInvLogGamma));
}

// Representative value of bucket i: the point with equal relative error to
// both bucket edges, 2*gamma^i / (gamma+1).
double bucket_value(std::int32_t i) {
  return 2.0 * std::pow(kGamma, static_cast<double>(i)) / (kGamma + 1.0);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& off) {
  if (off + 8 > in.size()) throw std::runtime_error("sketch decode: truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[off + i]) << (8 * i);
  }
  off += 8;
  return v;
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& off) {
  if (off + 4 > in.size()) throw std::runtime_error("sketch decode: truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[off + i]) << (8 * i);
  }
  off += 4;
  return v;
}

}  // namespace

// ---- QuantileSketch ----

void QuantileSketch::add(double v, std::uint64_t n) {
  if (n == 0) return;
  if (v > 0.0) {
    buckets_[bucket_index(v)] += n;
  } else {
    zero_count_ += n;  // renders as 0 and contributes 0 to sum()
  }
  count_ += n;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  for (const auto& [i, n] : other.buckets_) buckets_[i] += n;
  zero_count_ += other.zero_count_;
  count_ += other.count_;
}

void QuantileSketch::clear() {
  buckets_.clear();
  zero_count_ = 0;
  count_ = 0;
}

double QuantileSketch::sum() const {
  // Derived from the bucket state in ascending index order: identical
  // buckets => identical accumulation order => bit-identical result, no
  // matter how the sketch was assembled.
  double s = 0.0;
  for (const auto& [i, n] : buckets_) {
    s += bucket_value(i) * static_cast<double>(n);
  }
  return s;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t cum = zero_count_;
  if (target < cum) return 0.0;
  for (const auto& [i, n] : buckets_) {
    cum += n;
    if (target < cum) return bucket_value(i);
  }
  return buckets_.empty() ? 0.0 : bucket_value(buckets_.rbegin()->first);
}

std::size_t QuantileSketch::serialized_bytes() const {
  // count + zero_count + nbuckets header, then (index, count) entries.
  return 8 + 8 + 4 + buckets_.size() * (4 + 8);
}

void QuantileSketch::encode(std::vector<std::uint8_t>& out) const {
  put_u64(out, count_);
  put_u64(out, zero_count_);
  put_u32(out, static_cast<std::uint32_t>(buckets_.size()));
  for (const auto& [i, n] : buckets_) {
    put_u32(out, static_cast<std::uint32_t>(i));
    put_u64(out, n);
  }
}

QuantileSketch QuantileSketch::decode(const std::vector<std::uint8_t>& in,
                                      std::size_t& off) {
  QuantileSketch s;
  s.count_ = get_u64(in, off);
  s.zero_count_ = get_u64(in, off);
  const std::uint32_t n = get_u32(in, off);
  for (std::uint32_t k = 0; k < n; ++k) {
    const auto i = static_cast<std::int32_t>(get_u32(in, off));
    s.buckets_[i] = get_u64(in, off);
  }
  return s;
}

// ---- LinkSketch ----

void LinkSketch::merge(const LinkSketch& other) {
  pkts += other.pkts;
  bytes += other.bytes;
  ecn_sum += other.ecn_sum;
  for (std::size_t i = 0; i < kDropReasonSlots; ++i) drops[i] += other.drops[i];
  hop_delay_ns.merge(other.hop_delay_ns);
  queue_bytes.merge(other.queue_bytes);
}

std::uint64_t LinkSketch::total_drops() const {
  std::uint64_t n = 0;
  for (const std::uint64_t d : drops) n += d;
  return n;
}

bool LinkSketch::empty() const { return pkts == 0 && total_drops() == 0; }

std::size_t LinkSketch::serialized_bytes() const {
  // pkts + bytes + ecn_sum + drop slots, then the two sketches.
  return 8 + 8 + 8 + 8 * kDropReasonSlots + hop_delay_ns.serialized_bytes() +
         queue_bytes.serialized_bytes();
}

// ---- SketchReport ----

std::size_t SketchReport::wire_bytes() const {
  // exporter + seq + requeues + period bounds + entry count header.
  std::size_t n = 8 + 8 + 4 + 8 + 8 + 4;
  for (const auto& [link, sk] : links) n += 4 + sk.serialized_bytes();
  return n;
}

// ---- HostSummary ----

void HostSummary::merge(const HostSummary& other) {
  folded_records += other.folded_records;
  for (const auto& [pair, n] : other.tormesh_ok) tormesh_ok[pair] += n;
  for (const auto& [rnic, sk] : other.ok_delay_by_target) {
    ok_delay_by_target[rnic].merge(sk);
  }
  rtt.merge(other.rtt);
}

std::size_t HostSummary::serialized_bytes() const {
  std::size_t n = 8 + 4 + 4;  // folded count + two entry-count headers
  n += tormesh_ok.size() * (4 + 4 + 8);
  for (const auto& [rnic, sk] : ok_delay_by_target) {
    n += 4 + sk.serialized_bytes();
  }
  n += rtt.serialized_bytes();
  return n;
}

// ---- LinkSketchBank ----

void LinkSketchBank::on_forward(std::uint32_t link, Bytes bytes,
                                TimeNs hop_delay_ns, Bytes queue_bytes,
                                double ecn_prob) {
  if (link >= links_.size()) return;
  LinkSketch& s = links_[link];
  s.pkts += 1;
  s.bytes += static_cast<std::uint64_t>(bytes);
  s.ecn_sum += ecn_prob;
  s.hop_delay_ns.add(static_cast<double>(hop_delay_ns));
  s.queue_bytes.add(static_cast<double>(queue_bytes));
  ++updates_;
}

void LinkSketchBank::on_drop(std::uint32_t link, std::uint8_t reason) {
  if (link >= links_.size()) return;
  links_[link].drops[reason % kDropReasonSlots] += 1;
  ++updates_;
}

std::vector<std::pair<std::uint32_t, LinkSketch>> LinkSketchBank::flush() {
  std::vector<std::pair<std::uint32_t, LinkSketch>> out;
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    if (links_[i].empty()) continue;
    out.emplace_back(i, std::move(links_[i]));
    links_[i] = LinkSketch{};
  }
  return out;
}

// ---- SketchStore ----

bool SketchStore::ingest(SketchReport&& rep) {
  Dedup& d = dedup_[rep.exporter];
  if (d.seen.contains(rep.seq) ||
      (d.max_seq > dedup_window_ && rep.seq < d.max_seq - dedup_window_)) {
    ++duplicates_;
    m_duplicate_.inc();
    return false;
  }
  d.seen.insert(rep.seq);
  if (rep.seq > d.max_seq) {
    d.max_seq = rep.seq;
    if (d.max_seq > dedup_window_) {
      const std::uint64_t floor = d.max_seq - dedup_window_;
      std::erase_if(d.seen, [floor](std::uint64_t s) { return s < floor; });
    }
  }
  for (auto& [link, sk] : rep.links) links_[link].merge(sk);
  ++merged_;
  m_merged_.inc();
  if (rep.trace_id != 0) {
    obs::recorder().record(rep.trace_id, obs::ProbeEventKind::kSketchMerge,
                           rep.seq, rep.links.size());
  }
  return true;
}

std::map<std::uint32_t, LinkSketch> SketchStore::drain_period() {
  std::map<std::uint32_t, LinkSketch> out;
  out.swap(links_);
  return out;
}

}  // namespace rpm::sketch
