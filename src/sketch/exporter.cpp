#include "sketch/exporter.h"

#include <any>
#include <memory>
#include <utility>

#include "obs/flight_recorder.h"
#include "prof/prof.h"

namespace rpm::sketch {
namespace {

// Flight-recorder ids for sketch reports live far above probe ids (which
// are small monotone integers) so the two can share one recorder.
constexpr std::uint64_t kSketchTraceBase = 1ull << 62;

}  // namespace

SketchExporter::SketchExporter(sim::Scheduler& sched,
                               transport::Channel& channel,
                               LinkSketchBank& bank, SketchExporterConfig cfg)
    : sched_(sched),
      channel_(channel),
      bank_(bank),
      cfg_(cfg),
      flush_task_(sched, cfg.period, [this] { flush_now(); }) {
  channel_.set_on_expire(
      [this](std::uint64_t seq, std::any& p) { on_expired(seq, p); });
  channel_.set_on_acked([this](std::uint64_t seq) {
    obs::recorder().unbind_batch(cfg_.exporter_id, seq);
    on_acked();
  });
  channel_.set_on_attempt([this](std::uint64_t seq, std::uint32_t attempt) {
    obs::recorder().batch_event(cfg_.exporter_id, seq,
                                obs::ProbeEventKind::kTransportAttempt,
                                attempt);
  });
}

SketchExporter::~SketchExporter() {
  stop();
  channel_.set_on_expire(nullptr);
  channel_.set_on_acked(nullptr);
  channel_.set_on_attempt(nullptr);
}

void SketchExporter::start() {
  if (running_) return;
  running_ = true;
  period_start_ = sched_.now();
  flush_task_.start(cfg_.period);
}

void SketchExporter::stop() {
  if (!running_) return;
  running_ = false;
  ++epoch_;  // deferred resends/drains in flight become no-ops
  flush_task_.cancel();
  channel_.cancel_unacked();
  if (!spill_.empty()) {
    channel_.note_app_drop(spill_.size());
    spill_.clear();
  }
}

void SketchExporter::flush_now() {
  if (!running_) return;
  prof::StageScope prof_scope(prof::Stage::kSketchFlush);
  const TimeNs now = sched_.now();
  auto links = bank_.flush();
  if (links.empty()) {
    period_start_ = now;
    return;
  }
  SketchReport rep;
  rep.exporter = cfg_.exporter_id;
  rep.seq = next_seq_++;
  rep.period_start = period_start_;
  rep.period_end = now;
  rep.links = std::move(links);
  period_start_ = now;
  obs::FlightRecorder& fr = obs::recorder();
  if (fr.enabled()) {
    const std::uint64_t trace = kSketchTraceBase | rep.seq;
    if (fr.begin_probe(trace, "sketch-report", static_cast<std::uint64_t>(now))) {
      rep.trace_id = trace;
      fr.record(trace, obs::ProbeEventKind::kSketchFlush, rep.seq,
                rep.links.size());
    }
  }
  ++reports_sent_;
  m_reports_.inc();
  m_bytes_.inc(rep.wire_bytes());
  send_report(std::move(rep));
}

void SketchExporter::send_report(SketchReport&& rep) {
  const std::uint64_t trace = rep.trace_id;
  const auto wire = static_cast<Bytes>(rep.wire_bytes());
  const std::uint64_t chan_seq = channel_.send(std::any(std::move(rep)), wire);
  if (trace != 0) {
    obs::recorder().bind_batch(cfg_.exporter_id, chan_seq, {trace});
  }
}

void SketchExporter::on_expired(std::uint64_t chan_seq, std::any& payload) {
  obs::recorder().unbind_batch(cfg_.exporter_id, chan_seq);
  auto* rep = std::any_cast<SketchReport>(&payload);
  // Moved-from (delivered, then abandoned by a lost ack) reports have no
  // links — nothing to recover.
  if (rep == nullptr || rep->links.empty()) return;
  if (!running_) {
    channel_.note_app_drop();
    return;
  }
  if (rep->requeues >= cfg_.requeue_cap) {
    spill_report(std::move(*rep));
    return;
  }
  ++rep->requeues;
  if (rep->trace_id != 0) {
    obs::recorder().record(rep->trace_id, obs::ProbeEventKind::kRequeued,
                           rep->requeues);
  }
  // Deferred: on_expire may run from inside send() (drop-oldest
  // backpressure); never re-enter the channel synchronously.
  auto carry = std::make_shared<SketchReport>(std::move(*rep));
  sched_.schedule_after(0, [this, e = epoch_, carry] {
    if (e != epoch_ || !running_) return;
    send_report(std::move(*carry));
  });
}

void SketchExporter::spill_report(SketchReport&& rep) {
  if (rep.trace_id != 0) {
    obs::recorder().record(rep.trace_id, obs::ProbeEventKind::kSpilled,
                           rep.seq);
  }
  // Keep the ring seq-ascending (skip a seq already parked there).
  auto it = spill_.begin();
  while (it != spill_.end() && it->seq < rep.seq) ++it;
  if (it != spill_.end() && it->seq == rep.seq) return;
  spill_.insert(it, std::move(rep));
  while (spill_.size() > cfg_.spill_ring_cap) {
    SketchReport& oldest = spill_.front();
    if (oldest.trace_id != 0) {
      obs::recorder().record(oldest.trace_id,
                             obs::ProbeEventKind::kUploadDropped, oldest.seq);
    }
    ++spill_drops_;
    channel_.note_app_drop();
    spill_.pop_front();
  }
}

void SketchExporter::on_acked() {
  if (spill_.empty() || drain_pending_) return;
  drain_pending_ = true;
  // Deferred: acks arrive inside channel event handling.
  sched_.schedule_after(0, [this, e = epoch_] {
    drain_pending_ = false;
    if (e != epoch_ || !running_) return;
    drain_spill();
  });
}

void SketchExporter::drain_spill() {
  std::deque<SketchReport> parked;
  parked.swap(spill_);
  for (SketchReport& rep : parked) {
    rep.requeues = cfg_.requeue_cap;
    if (rep.trace_id != 0) {
      obs::recorder().record(rep.trace_id, obs::ProbeEventKind::kSpillDrained,
                             rep.seq);
    }
    send_report(std::move(rep));
  }
}

}  // namespace rpm::sketch
