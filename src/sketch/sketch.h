// Switch-side mergeable sketch summaries (ROADMAP "Switch-side sketch
// summaries"; cf. "Memory-Efficient Performance Monitoring on Programmable
// Switches with Lean Algorithms").
//
// R-Pingmesh ships every probe record to the Analyzer, which caps cluster
// scale on ingest volume long before probing capacity runs out. This module
// is the new layer between the fabric and the Analyzer that fixes that:
// simulated switches keep a small mergeable summary per link — drop/ECN
// counters plus quantile sketches of the link's per-hop RTT contribution and
// queue depth — exported once per 5 s period as a `SketchReport` over the
// control-plane transport. The Analyzer merges reports into a `SketchStore`
// and needs raw probe records only for Algorithm-1 localization voting on
// the links the sketches flag; Agents mirror the idea on the host side by
// folding healthy probe records into a mergeable `HostSummary` per
// `UploadBatch` instead of shipping each record.
//
// Determinism is load-bearing (the repo-wide invariant: same seed =>
// byte-identical verdicts for any ingest thread count), so the quantile
// sketch is a fixed-boundary DDSketch: logarithmic buckets at positions
// fixed by the relative-accuracy constant alone, integer counts, and a
// bucket-wise merge that is commutative and associative. Merging sketches in
// any grouping/order yields byte-identical state — no RNG, no data-dependent
// boundaries, no merge-order sensitivity.
//
// Everything is sized in bytes (`serialized_bytes`/`wire_bytes`) so the
// transport's per-channel bandwidth cost model can charge reports and
// batches for the wire they occupy.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "telemetry/metrics.h"

namespace rpm::sketch {

/// Fixed-boundary DDSketch over positive values (nanoseconds, bytes):
/// bucket i covers (gamma^(i-1), gamma^i] with gamma = (1+a)/(1-a) for
/// relative accuracy a = 1 %. Non-positive values land in a dedicated zero
/// bucket. quantile() is within `kRelativeAccuracy` of the true value;
/// merge() is bucket-wise addition — commutative, associative, and
/// deterministic regardless of merge order or sharding.
class QuantileSketch {
 public:
  static constexpr double kRelativeAccuracy = 0.01;

  void add(double v, std::uint64_t n = 1);
  void merge(const QuantileSketch& other);
  void clear();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Approximate sample sum, derived from the bucket state (counts times
  /// bucket midpoints, ascending index). Derived — never accumulated — so it
  /// is bit-identical for any add/merge grouping; a running double sum would
  /// pick up order-dependent rounding and break the byte-identical-merge
  /// guarantee. Within kRelativeAccuracy of the true sum.
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum() / static_cast<double>(count_);
  }
  /// q in [0,1]; 0 when empty. Error relative to the true sample quantile is
  /// bounded by kRelativeAccuracy.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }

  /// Exact wire size of encode()'s output (header + one entry per bucket).
  [[nodiscard]] std::size_t serialized_bytes() const;
  /// Append a canonical little-endian encoding; same state => same bytes,
  /// which is what the merge-determinism tests compare.
  void encode(std::vector<std::uint8_t>& out) const;
  /// Inverse of encode(); advances `off` past the consumed bytes. Throws
  /// std::runtime_error on a truncated buffer.
  static QuantileSketch decode(const std::vector<std::uint8_t>& in,
                               std::size_t& off);

 private:
  std::map<std::int32_t, std::uint64_t> buckets_;  // ordered: deterministic
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
};

/// Drop-reason slots in LinkSketch::drops. Indexed by the fabric's
/// DropReason enum value (passed as a plain uint8_t so this layer does not
/// depend on src/fabric; src/fabric depends on us).
constexpr std::size_t kDropReasonSlots = 8;

/// One link's summary for one export period: traffic counters, drops by
/// reason, ECN marking, and quantile sketches of the link's per-hop latency
/// contribution and queue depth. Mergeable in any order.
struct LinkSketch {
  std::uint64_t pkts = 0;
  std::uint64_t bytes = 0;
  /// Sum of the RED-curve ECN mark probabilities seen by forwarded RoCE
  /// datagrams; ecn_sum / pkts is the period's expected marking rate.
  double ecn_sum = 0.0;
  std::array<std::uint64_t, kDropReasonSlots> drops{};
  QuantileSketch hop_delay_ns;  // propagation + serialization + queueing
  QuantileSketch queue_bytes;   // egress queue depth at forward time

  void merge(const LinkSketch& other);
  [[nodiscard]] std::uint64_t total_drops() const;
  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t serialized_bytes() const;
};

/// One period's flush from a LinkSketchBank, shipped over a transport
/// Channel — sequenced, deduplicated, and spill-ring-buffered exactly like
/// an Agent's UploadBatch.
struct SketchReport {
  std::uint64_t exporter = 0;  // owner tag (one bank per fabric)
  std::uint64_t seq = 0;       // monotone per exporter; Analyzer dedup key
  std::uint32_t requeues = 0;  // application-level requeues (rides the wire)
  /// Flight-recorder correlation id when this report was sampled (0 = not).
  std::uint64_t trace_id = 0;
  TimeNs period_start = 0;
  TimeNs period_end = 0;
  std::vector<std::pair<std::uint32_t, LinkSketch>> links;  // sorted by id

  [[nodiscard]] std::size_t wire_bytes() const;
};

/// Host-side analogue of LinkSketch: the mergeable summary of the healthy
/// probe records an Agent folded out of an UploadBatch instead of shipping
/// raw (AnalyzerConfig::sketch_mode == kOn). Carries exactly what the
/// Analyzer consumes from healthy OK records: exact per-(prober,target)
/// ToR-mesh OK counts for the §4.3.2 timeout-ratio test, per-target-RNIC
/// responder-delay sketches for the Fig-6 CPU-noise filters and the
/// processing-delay bottleneck scan, and a cluster RTT sketch for SLA
/// percentiles. Ordered maps keep iteration deterministic.
struct HostSummary {
  std::uint64_t folded_records = 0;
  /// OK ToR-mesh probes by (prober rnic id, target rnic id) — exact counts,
  /// so Algorithm-1 timeout ratios are identical to raw-record mode.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> tormesh_ok;
  /// Responder delay (④-③) of folded OK records, by target rnic id.
  std::map<std::uint32_t, QuantileSketch> ok_delay_by_target;
  /// Network RTT of folded OK cluster-monitoring records.
  QuantileSketch rtt;

  void merge(const HostSummary& other);
  [[nodiscard]] bool empty() const { return folded_records == 0; }
  [[nodiscard]] std::size_t serialized_bytes() const;
};

/// Per-link sketch state for one fabric, updated from the forwarding hot
/// path (Fabric::send) and drained by the SketchExporter each period. No
/// RNG and no feedback into forwarding: attaching a bank never perturbs the
/// fabric's deterministic behavior.
class LinkSketchBank {
 public:
  explicit LinkSketchBank(std::size_t num_links) : links_(num_links) {}

  void on_forward(std::uint32_t link, Bytes bytes, TimeNs hop_delay_ns,
                  Bytes queue_bytes, double ecn_prob);
  void on_drop(std::uint32_t link, std::uint8_t reason);

  /// Non-empty link sketches in ascending link order; clears the bank.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, LinkSketch>> flush();

  [[nodiscard]] std::size_t num_links() const { return links_.size(); }
  [[nodiscard]] std::uint64_t updates() const { return updates_; }

 private:
  std::vector<LinkSketch> links_;
  std::uint64_t updates_ = 0;
};

/// Analyzer-side accumulator: deduplicates SketchReports by (exporter, seq)
/// — the same sliding window the ingest path uses for UploadBatch — and
/// merges them per link until the Analyzer drains a period.
class SketchStore {
 public:
  explicit SketchStore(std::uint64_t dedup_window = 1024)
      : dedup_window_(dedup_window) {}

  /// Merge a report; false (and counted duplicate) on a repeat delivery of
  /// a retried report. Records kSketchMerge on sampled reports' timelines.
  bool ingest(SketchReport&& rep);

  /// Merged per-link sketches accumulated since the last drain, ascending
  /// link order; clears the store's period state (dedup state survives).
  [[nodiscard]] std::map<std::uint32_t, LinkSketch> drain_period();

  [[nodiscard]] std::uint64_t reports_merged() const { return merged_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }

 private:
  struct Dedup {
    std::uint64_t max_seq = 0;
    std::set<std::uint64_t> seen;
  };

  std::uint64_t dedup_window_;
  std::unordered_map<std::uint64_t, Dedup> dedup_;  // by exporter tag
  std::map<std::uint32_t, LinkSketch> links_;
  std::uint64_t merged_ = 0;
  std::uint64_t duplicates_ = 0;
  telemetry::Counter m_merged_ = telemetry::registry().counter(
      "rpm_sketch_reports_total", "Sketch reports by processing result",
      {{"result", "merged"}});
  telemetry::Counter m_duplicate_ = telemetry::registry().counter(
      "rpm_sketch_reports_total", "Sketch reports by processing result",
      {{"result", "duplicate"}});
};

}  // namespace rpm::sketch
