// SketchExporter: flushes a fabric's LinkSketchBank to the Analyzer once
// per period over a transport Channel, with the same delivery discipline as
// Agent uploads — monotone sequence numbers for receiver dedup,
// application-level requeue on transport expiry, and a bounded spill ring
// (oldest dropped) drained when the channel acks again after an outage.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "sim/scheduler.h"
#include "sketch/sketch.h"
#include "telemetry/metrics.h"
#include "transport/transport.h"

namespace rpm::sketch {

struct SketchExporterConfig {
  TimeNs period = sec(5);       // export cadence (matches Agent uploads)
  std::uint64_t exporter_id = 1;  // wire tag + flight-recorder owner tag
  std::uint32_t requeue_cap = 2;  // expiries before a report is spilled
  std::size_t spill_ring_cap = 64;
};

class SketchExporter {
 public:
  SketchExporter(sim::Scheduler& sched, transport::Channel& channel,
                 LinkSketchBank& bank, SketchExporterConfig cfg = {});
  ~SketchExporter();
  SketchExporter(const SketchExporter&) = delete;
  SketchExporter& operator=(const SketchExporter&) = delete;

  void start();
  void stop();

  /// Flush the bank immediately (the periodic task calls this).
  void flush_now();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t reports_sent() const { return reports_sent_; }
  [[nodiscard]] std::size_t spill_depth() const { return spill_.size(); }
  [[nodiscard]] std::uint64_t spill_drops() const { return spill_drops_; }

 private:
  void send_report(SketchReport&& rep);
  void on_expired(std::uint64_t chan_seq, std::any& payload);
  void on_acked();
  void spill_report(SketchReport&& rep);
  void drain_spill();

  sim::Scheduler& sched_;
  transport::Channel& channel_;
  LinkSketchBank& bank_;
  SketchExporterConfig cfg_;
  sim::PeriodicTask flush_task_;
  bool running_ = false;
  std::uint64_t epoch_ = 0;  // invalidates deferred resends across stop()
  std::uint64_t next_seq_ = 1;
  std::uint64_t reports_sent_ = 0;
  std::uint64_t spill_drops_ = 0;
  TimeNs period_start_ = 0;
  std::deque<SketchReport> spill_;  // ascending seq
  bool drain_pending_ = false;
  telemetry::Counter m_reports_ = telemetry::registry().counter(
      "rpm_sketch_reports_total", "Sketch reports by processing result",
      {{"result", "flushed"}});
  telemetry::Counter m_bytes_ = telemetry::registry().counter(
      "rpm_sketch_bytes_total", "Wire bytes of flushed sketch reports");
};

}  // namespace rpm::sketch
