#include "host/cluster.h"

namespace rpm::host {

Cluster::Cluster(topo::Topology topology, ClusterConfig cfg)
    : topo_(std::move(topology)),
      router_(topo_, cfg.seed ^ 0xEC3Cull),
      fabric_(topo_, router_, sched_, cfg.fabric),
      tracer_(router_, cfg.traceroute_responses_per_sec),
      int_(fabric_),
      rng_(cfg.seed) {
  hosts_.reserve(topo_.num_hosts());
  for (const topo::HostInfo& h : topo_.hosts()) {
    hosts_.push_back(std::make_unique<HostModel>(
        h.id, sched_, sim::DeviceClock::random(rng_), rng_.fork(), cfg.host));
  }
  rnics_.reserve(topo_.num_rnics());
  for (const topo::RnicInfo& r : topo_.rnics()) {
    rnics_.push_back(std::make_unique<rnic::RnicDevice>(
        r.id, fabric_, sched_, sim::DeviceClock::random(rng_), rng_.fork(),
        cfg.rnic));
  }
  // Forked last so the control plane's stream never perturbs the host/RNIC
  // clock draws above (fixed-seed runs stay reproducible across versions).
  control_plane_ = std::make_unique<transport::ControlPlane>(
      sched_, rng_.fork(), cfg.control_plane);
  // Event-loop throughput: mirrored into the registry at snapshot time so
  // the scheduler's hot loop stays untouched.
  sched_collector_ = telemetry::CollectorGuard(
      telemetry::registry(), [this](telemetry::MetricsRegistry& reg) {
        reg.gauge("rpm_sim_executed_events", "Events executed by the scheduler")
            .set(static_cast<double>(sched_.executed_events()));
        reg.gauge("rpm_sim_pending_events", "Events currently queued")
            .set(static_cast<double>(sched_.pending_events()));
        reg.gauge("rpm_sim_now_seconds", "Current simulated time")
            .set(to_seconds(sched_.now()));
      });
}

void Cluster::run_for(TimeNs duration) {
  if (!started_) {
    fabric_.start();
    started_ = true;
  }
  sched_.run_until(sched_.now() + duration);
}

}  // namespace rpm::host
