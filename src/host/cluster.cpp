#include "host/cluster.h"

namespace rpm::host {

namespace {

std::unique_ptr<sim::ParallelScheduler> maybe_parallel(
    const topo::PartitionMap& map, std::uint32_t workers) {
  if (map.num_partitions <= 1) return nullptr;
  sim::ParallelConfig cfg;
  cfg.partitions = map.num_partitions;
  cfg.lookahead = map.cut_lookahead;
  cfg.workers = workers;
  return std::make_unique<sim::ParallelScheduler>(cfg);
}

}  // namespace

Cluster::Cluster(topo::Topology topology, ClusterConfig cfg)
    : topo_(std::move(topology)),
      router_(topo_, cfg.seed ^ 0xEC3Cull),
      pmap_(topo::build_pod_partitions(topo_, cfg.sim_partitions)),
      psched_(maybe_parallel(pmap_, cfg.sim_workers)),
      sched_(psched_ ? static_cast<sim::Scheduler*>(psched_.get())
                     : &inline_sched_),
      fabric_(topo_, router_, *sched_, cfg.fabric),
      tracer_(router_, cfg.traceroute_responses_per_sec),
      int_(fabric_),
      rng_(cfg.seed) {
  if (psched_) fabric_.set_partitioning(&pmap_, psched_.get());
  hosts_.reserve(topo_.num_hosts());
  for (const topo::HostInfo& h : topo_.hosts()) {
    sim::Scheduler& hs =
        psched_ ? psched_->partition(pmap_.host_partition[h.id.value])
                : *sched_;
    hosts_.push_back(std::make_unique<HostModel>(
        h.id, hs, sim::DeviceClock::random(rng_), rng_.fork(), cfg.host));
  }
  rnics_.reserve(topo_.num_rnics());
  for (const topo::RnicInfo& r : topo_.rnics()) {
    sim::Scheduler& rs =
        psched_ ? psched_->partition(pmap_.rnic_partition[r.id.value])
                : *sched_;
    rnics_.push_back(std::make_unique<rnic::RnicDevice>(
        r.id, fabric_, rs, sim::DeviceClock::random(rng_), rng_.fork(),
        cfg.rnic));
  }
  // Forked last so the control plane's stream never perturbs the host/RNIC
  // clock draws above (fixed-seed runs stay reproducible across versions).
  // The control plane lives on partition 0 (the global facade's home).
  control_plane_ = std::make_unique<transport::ControlPlane>(
      *sched_, rng_.fork(), cfg.control_plane);
  // Event-loop throughput: mirrored into the registry at snapshot time so
  // the scheduler's hot loop stays untouched. Counts aggregate across
  // partitions (Scheduler::pending_events/executed_events contract).
  sched_collector_ = telemetry::CollectorGuard(
      telemetry::registry(), [this](telemetry::MetricsRegistry& reg) {
        reg.gauge("rpm_sim_executed_events", "Events executed by the scheduler")
            .set(static_cast<double>(sched_->executed_events()));
        reg.gauge("rpm_sim_pending_events", "Events currently queued")
            .set(static_cast<double>(sched_->pending_events()));
        reg.gauge("rpm_sim_now_seconds", "Current simulated time")
            .set(to_seconds(sched_->now()));
      });
}

void Cluster::run_for(TimeNs duration) {
  if (!started_) {
    fabric_.start();
    started_ = true;
  }
  sched_->run_until(sched_->now() + duration);
}

}  // namespace rpm::host
