// Host (server) model: CPU load, userspace scheduling delay, host clock,
// down/reboot state, and the per-host tracepoint registry.
//
// Why this matters to the paper:
//  * Software-timestamped RTT (Pingmesh) includes two userspace scheduling
//    delays, so it tracks host load rather than the network (Figure 2).
//  * The responder-side processing delay R-Pingmesh measures (④-③) is this
//    scheduling delay plus DMA; CPU overload shows up there (Figure 8 left).
//  * A service pegging every core can delay the Agent so long that probes
//    time out and look like multi-RNIC drops (Figure 6 right).
#pragma once

#include <functional>

#include "common/rng.h"
#include "common/types.h"
#include "sim/clock.h"
#include "sim/scheduler.h"
#include "verbs/verbs.h"

namespace rpm::host {

struct HostParams {
  TimeNs base_process_delay = usec(3);   // healthy-host wakeup latency
  double overload_threshold = 0.9;       // load above this grows tails fast
  TimeNs overload_tail = msec(30);       // typical stall when overloaded
  double starve_threshold = 0.99;        // "service occupies every core"
  TimeNs starve_tail = msec(900);        // stall that exceeds probe timeout
  double starve_prob = 0.25;             // chance a wakeup hits the big stall
};

class HostModel {
 public:
  HostModel(HostId id, sim::Scheduler& sched, sim::DeviceClock clock,
            Rng rng, HostParams params = {});

  [[nodiscard]] HostId id() const { return id_; }

  /// Average CPU load in [0, 1].
  [[nodiscard]] double cpu_load() const { return cpu_load_; }
  void set_cpu_load(double load);

  /// Host power state. A down host runs no Agent and answers nothing.
  [[nodiscard]] bool is_down() const { return down_; }
  void set_down(bool down) { down_ = down; }

  /// Sample the delay between an event (e.g. a CQE arriving) and the
  /// userspace process actually acting on it. Load-dependent with heavy
  /// tails under overload; see HostParams.
  [[nodiscard]] TimeNs sample_process_delay();

  /// The host's own clock (used for application timestamps ① and ⑥; offset
  /// and drift differ from every RNIC clock).
  [[nodiscard]] const sim::DeviceClock& clock() const { return clock_; }
  [[nodiscard]] TimeNs host_now() const { return clock_.read(sched_.now()); }

  [[nodiscard]] verbs::TracepointRegistry& tracepoints() {
    return tracepoints_;
  }

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

 private:
  HostId id_;
  sim::Scheduler& sched_;
  sim::DeviceClock clock_;
  Rng rng_;
  HostParams params_;
  double cpu_load_ = 0.2;
  bool down_ = false;
  verbs::TracepointRegistry tracepoints_;
};

}  // namespace rpm::host
