// Cluster: one-stop assembly of a simulated RoCE deployment — topology,
// router, fabric, hosts, RNIC devices, and a traceroute service — with all
// clocks randomly offset/drifting. Everything R-Pingmesh runs against.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "fabric/fabric.h"
#include "fabric/int_telemetry.h"
#include "host/host.h"
#include "rnic/rnic.h"
#include "routing/ecmp.h"
#include "sim/scheduler.h"
#include "telemetry/metrics.h"
#include "topo/topology.h"
#include "transport/transport.h"
#include "verbs/verbs.h"

namespace rpm::host {

struct ClusterConfig {
  fabric::FabricConfig fabric{};
  rnic::RnicParams rnic{};
  HostParams host{};
  double traceroute_responses_per_sec = 100.0;  // per switch (§4.2.3)
  transport::ChannelConfig control_plane{};     // latency/loss/backoff knobs
  std::uint64_t seed = 7;
};

class Cluster {
 public:
  explicit Cluster(topo::Topology topology, ClusterConfig cfg = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::EventScheduler& scheduler() { return sched_; }
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }
  [[nodiscard]] const routing::EcmpRouter& router() const { return router_; }
  [[nodiscard]] fabric::Fabric& fabric() { return fabric_; }
  [[nodiscard]] routing::TracerouteService& traceroute() { return tracer_; }
  [[nodiscard]] fabric::IntTelemetry& int_telemetry() { return int_; }
  [[nodiscard]] transport::ControlPlane& control_plane() {
    return *control_plane_;
  }

  [[nodiscard]] HostModel& host(HostId id) { return *hosts_.at(id.value); }
  [[nodiscard]] rnic::RnicDevice& rnic_device(RnicId id) {
    return *rnics_.at(id.value);
  }
  [[nodiscard]] std::size_t num_hosts() const { return hosts_.size(); }
  [[nodiscard]] std::size_t num_rnics() const { return rnics_.size(); }

  /// Open a verbs device context for the given RNIC (as a process on the
  /// RNIC's host would). `service` attributes the process to a service for
  /// tracepoint consumers.
  [[nodiscard]] verbs::VerbsContext open_device(RnicId id,
                                                ServiceId service = {}) {
    rnic::RnicDevice& dev = rnic_device(id);
    HostModel& h = host(topo_.rnic(id).host);
    return verbs::VerbsContext(dev, h.tracepoints(), h.id(), service);
  }

  /// Fork a deterministic RNG stream for a component.
  [[nodiscard]] Rng fork_rng() { return rng_.fork(); }

  /// Advance simulated time (starts the fabric's fluid engine on first use).
  void run_for(TimeNs duration);

 private:
  topo::Topology topo_;
  routing::EcmpRouter router_;
  sim::EventScheduler sched_;
  fabric::Fabric fabric_;
  routing::TracerouteService tracer_;
  fabric::IntTelemetry int_;
  Rng rng_;
  std::vector<std::unique_ptr<HostModel>> hosts_;
  std::vector<std::unique_ptr<rnic::RnicDevice>> rnics_;
  std::unique_ptr<transport::ControlPlane> control_plane_;
  bool started_ = false;
  telemetry::CollectorGuard sched_collector_;  // event-loop gauges
};

}  // namespace rpm::host
