// Cluster: one-stop assembly of a simulated RoCE deployment — topology,
// router, fabric, hosts, RNIC devices, and a traceroute service — with all
// clocks randomly offset/drifting. Everything R-Pingmesh runs against.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "fabric/fabric.h"
#include "fabric/int_telemetry.h"
#include "host/host.h"
#include "rnic/rnic.h"
#include "routing/ecmp.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"
#include "telemetry/metrics.h"
#include "topo/partition.h"
#include "topo/topology.h"
#include "transport/transport.h"
#include "verbs/verbs.h"

namespace rpm::host {

struct ClusterConfig {
  fabric::FabricConfig fabric{};
  rnic::RnicParams rnic{};
  HostParams host{};
  double traceroute_responses_per_sec = 100.0;  // per switch (§4.2.3)
  transport::ChannelConfig control_plane{};     // latency/loss/backoff knobs
  std::uint64_t seed = 7;
  /// Partition the event loop per pod (1 = classic inline scheduler, which
  /// is byte-identical to pre-partitioning builds). Clamped to the pod
  /// count; conservative sync with lookahead = min cut-edge propagation.
  std::uint32_t sim_partitions = 1;
  /// Worker threads for partitioned runs. Default 1 (sequential round-robin
  /// over partitions — deterministic and safe with the shared fluid plane);
  /// >1 requires callers to know their handlers are partition-local.
  std::uint32_t sim_workers = 1;
};

class Cluster {
 public:
  explicit Cluster(topo::Topology topology, ClusterConfig cfg = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::Scheduler& scheduler() { return *sched_; }
  /// Pod partition assignment (num_partitions == 1 when unpartitioned).
  [[nodiscard]] const topo::PartitionMap& partition_map() const {
    return pmap_;
  }
  /// Non-null iff sim_partitions resolved to > 1.
  [[nodiscard]] sim::ParallelScheduler* parallel_scheduler() {
    return psched_.get();
  }
  [[nodiscard]] const topo::Topology& topology() const { return topo_; }
  [[nodiscard]] const routing::EcmpRouter& router() const { return router_; }
  [[nodiscard]] fabric::Fabric& fabric() { return fabric_; }
  [[nodiscard]] routing::TracerouteService& traceroute() { return tracer_; }
  [[nodiscard]] fabric::IntTelemetry& int_telemetry() { return int_; }
  [[nodiscard]] transport::ControlPlane& control_plane() {
    return *control_plane_;
  }

  [[nodiscard]] HostModel& host(HostId id) { return *hosts_.at(id.value); }
  [[nodiscard]] rnic::RnicDevice& rnic_device(RnicId id) {
    return *rnics_.at(id.value);
  }
  [[nodiscard]] std::size_t num_hosts() const { return hosts_.size(); }
  [[nodiscard]] std::size_t num_rnics() const { return rnics_.size(); }

  /// Open a verbs device context for the given RNIC (as a process on the
  /// RNIC's host would). `service` attributes the process to a service for
  /// tracepoint consumers.
  [[nodiscard]] verbs::VerbsContext open_device(RnicId id,
                                                ServiceId service = {}) {
    rnic::RnicDevice& dev = rnic_device(id);
    HostModel& h = host(topo_.rnic(id).host);
    return verbs::VerbsContext(dev, h.tracepoints(), h.id(), service);
  }

  /// Fork a deterministic RNG stream for a component.
  [[nodiscard]] Rng fork_rng() { return rng_.fork(); }

  /// Advance simulated time (starts the fabric's fluid engine on first use).
  void run_for(TimeNs duration);

 private:
  topo::Topology topo_;
  routing::EcmpRouter router_;
  topo::PartitionMap pmap_;
  sim::InlineScheduler inline_sched_;
  std::unique_ptr<sim::ParallelScheduler> psched_;  // null when 1 partition
  sim::Scheduler* sched_;  // facade in use: psched_ ? psched_ : inline_sched_
  fabric::Fabric fabric_;
  routing::TracerouteService tracer_;
  fabric::IntTelemetry int_;
  Rng rng_;
  std::vector<std::unique_ptr<HostModel>> hosts_;
  std::vector<std::unique_ptr<rnic::RnicDevice>> rnics_;
  std::unique_ptr<transport::ControlPlane> control_plane_;
  bool started_ = false;
  telemetry::CollectorGuard sched_collector_;  // event-loop gauges
};

}  // namespace rpm::host
