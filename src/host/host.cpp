#include "host/host.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rpm::host {

HostModel::HostModel(HostId id, sim::Scheduler& sched,
                     sim::DeviceClock clock, Rng rng, HostParams params)
    : id_(id), sched_(sched), clock_(clock), rng_(rng), params_(params) {}

void HostModel::set_cpu_load(double load) {
  if (load < 0.0 || load > 1.0) {
    throw std::invalid_argument("set_cpu_load: load must be in [0, 1]");
  }
  cpu_load_ = load;
}

TimeNs HostModel::sample_process_delay() {
  // Queueing-flavoured growth: mean delay scales like 1/(1-load), with an
  // extra heavy tail once the host is overloaded and a probe-timeout-scale
  // stall when the service starves the Agent of CPU entirely.
  const double load = std::min(cpu_load_, 0.995);
  const double mean =
      static_cast<double>(params_.base_process_delay) / (1.0 - load);
  TimeNs d = static_cast<TimeNs>(rng_.exponential(mean));

  if (cpu_load_ >= params_.overload_threshold) {
    const double sev =
        (cpu_load_ - params_.overload_threshold) /
        std::max(1e-9, 1.0 - params_.overload_threshold);
    d += static_cast<TimeNs>(
        rng_.exponential(static_cast<double>(params_.overload_tail) * sev));
  }
  if (cpu_load_ >= params_.starve_threshold &&
      rng_.chance(params_.starve_prob)) {
    d += static_cast<TimeNs>(rng_.uniform(
        0.3 * static_cast<double>(params_.starve_tail),
        1.7 * static_cast<double>(params_.starve_tail)));
  }
  return d;
}

}  // namespace rpm::host
