// Data-center topology graph: hosts, RNICs, switches, directed links.
//
// Links are *directed*: one physical cable is two Link records (one per
// direction) because queues, PFC pause state, and Algorithm-1 votes are all
// per-direction. `Link::peer` gives the opposite direction.
//
// Two builders are provided:
//  * build_clos()  — the paper's evaluation fabric: 3-tier CLOS, every RNIC
//    of a host attached to the same ToR, 1:1 oversubscription (§6).
//  * build_rail_optimized() — the 2-tier rail-optimized fabric of Figure 12:
//    RNIC i of every host attaches to rail switch i, rails fully meshed to
//    spines.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/five_tuple.h"
#include "common/types.h"

namespace rpm::topo {

enum class SwitchTier : std::uint8_t { kTor, kAgg, kSpine, kRail };

const char* tier_name(SwitchTier tier);

/// Either a host or a switch; links connect NodeRefs.
struct NodeRef {
  enum class Kind : std::uint8_t { kNone, kHost, kSwitch } kind = Kind::kNone;
  std::uint32_t index = 0;

  static NodeRef host(HostId h) { return {Kind::kHost, h.value}; }
  static NodeRef sw(SwitchId s) { return {Kind::kSwitch, s.value}; }

  [[nodiscard]] bool is_host() const { return kind == Kind::kHost; }
  [[nodiscard]] bool is_switch() const { return kind == Kind::kSwitch; }
  [[nodiscard]] HostId as_host() const {
    if (!is_host()) throw std::logic_error("NodeRef: not a host");
    return HostId{index};
  }
  [[nodiscard]] SwitchId as_switch() const {
    if (!is_switch()) throw std::logic_error("NodeRef: not a switch");
    return SwitchId{index};
  }

  friend constexpr auto operator<=>(NodeRef, NodeRef) = default;
};

struct LinkSpec {
  double capacity_gbps = 400.0;
  TimeNs propagation = nsec(500);  // one hop of fiber + switch pipeline
};

/// One direction of a physical cable.
struct Link {
  LinkId id;
  NodeRef from;
  NodeRef to;
  LinkId peer;  // the opposite direction of the same cable
  double capacity_Bps = 0.0;
  TimeNs propagation = 0;
  std::string name;
};

struct RnicInfo {
  RnicId id;
  HostId host;
  std::uint32_t index_in_host = 0;  // the "rail index" for rail topologies
  IpAddr ip;
  SwitchId tor;       // attachment switch (ToR or rail switch)
  LinkId uplink;      // RNIC -> ToR direction
  LinkId downlink;    // ToR -> RNIC direction
  std::string name;
};

struct HostInfo {
  HostId id;
  std::vector<RnicId> rnics;
  std::string name;
};

struct SwitchInfo {
  SwitchId id;
  SwitchTier tier = SwitchTier::kTor;
  std::uint32_t pod = 0;    // pod index (Clos) or plane (spines)
  std::uint32_t plane = 0;  // agg/spine plane index
  std::string name;
};

/// Immutable topology graph. Dynamic state (link up/down, queues) lives in
/// fabric::Fabric; the Topology itself never changes after construction.
class Topology {
 public:
  // -- construction (used by the builders) --
  HostId add_host();
  SwitchId add_switch(SwitchTier tier, std::uint32_t pod, std::uint32_t plane,
                      std::string name);
  RnicId add_rnic(HostId host, SwitchId tor, const LinkSpec& link);
  /// Adds both directions of a cable; returns the a->b direction.
  LinkId add_cable(NodeRef a, NodeRef b, const LinkSpec& spec);

  // -- accessors --
  [[nodiscard]] const HostInfo& host(HostId id) const;
  [[nodiscard]] const RnicInfo& rnic(RnicId id) const;
  [[nodiscard]] const SwitchInfo& switch_info(SwitchId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;

  [[nodiscard]] std::size_t num_hosts() const { return hosts_.size(); }
  [[nodiscard]] std::size_t num_rnics() const { return rnics_.size(); }
  [[nodiscard]] std::size_t num_switches() const { return switches_.size(); }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }

  [[nodiscard]] const std::vector<HostInfo>& hosts() const { return hosts_; }
  [[nodiscard]] const std::vector<RnicInfo>& rnics() const { return rnics_; }
  [[nodiscard]] const std::vector<SwitchInfo>& switches() const {
    return switches_;
  }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Out-links of a node, sorted by LinkId (deterministic ECMP candidate
  /// order).
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeRef n) const;

  /// All RNICs attached to the given ToR/rail switch (the ToR-mesh group).
  [[nodiscard]] const std::vector<RnicId>& rnics_under_tor(SwitchId tor) const;

  /// All ToR-tier switches (tiers kTor and kRail).
  [[nodiscard]] const std::vector<SwitchId>& tor_switches() const {
    return tors_;
  }

  /// RNIC lookup by IP. Throws if unknown.
  [[nodiscard]] RnicId rnic_by_ip(IpAddr ip) const;

  /// Human-readable link description "tor-0/3 -> agg-0/1".
  [[nodiscard]] std::string link_name(LinkId id) const;

 private:
  std::vector<HostInfo> hosts_;
  std::vector<RnicInfo> rnics_;
  std::vector<SwitchInfo> switches_;
  std::vector<Link> links_;
  std::vector<SwitchId> tors_;
  // out-link adjacency: hosts first, then switches (resized on demand)
  std::vector<std::vector<LinkId>> host_out_;
  std::vector<std::vector<LinkId>> switch_out_;
  std::vector<std::vector<RnicId>> tor_rnics_;  // indexed by switch id
};

/// Configuration for the 3-tier CLOS builder. Parallel cross-pod paths
/// between two ToRs = aggs_per_pod * spines_per_plane; within a pod it is
/// aggs_per_pod.
struct ClosConfig {
  std::uint32_t num_pods = 2;
  std::uint32_t tors_per_pod = 2;
  std::uint32_t aggs_per_pod = 2;
  std::uint32_t spines_per_plane = 2;  // plane count == aggs_per_pod
  std::uint32_t hosts_per_tor = 4;
  std::uint32_t rnics_per_host = 1;
  LinkSpec host_link{};   // RNIC <-> ToR
  LinkSpec fabric_link{}; // switch <-> switch
};

Topology build_clos(const ClosConfig& cfg);

/// Configuration for the 2-tier rail-optimized builder (Figure 12).
struct RailConfig {
  std::uint32_t num_hosts = 4;
  std::uint32_t rails = 4;  // NICs per host == rail switches
  std::uint32_t num_spines = 2;
  LinkSpec host_link{};
  LinkSpec fabric_link{};
};

Topology build_rail_optimized(const RailConfig& cfg);

/// Number of parallel ECMP paths between two distinct ToRs in a Clos built
/// by build_clos (used to size Equation-1 pinglists).
std::uint32_t clos_parallel_paths(const ClosConfig& cfg, bool cross_pod);

}  // namespace rpm::topo
