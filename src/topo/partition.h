// Topology partitioning for the parallel simulator.
//
// A PartitionMap assigns every host, RNIC, and switch to one of N simulation
// partitions. The pod is the cut unit: all ToRs/aggs of a pod — and every
// host and RNIC under them — land in the same partition (pods are the
// natural Clos subtree: intra-pod traffic never crosses a partition), pods
// are distributed round-robin, and the pod-less spine tier is spread across
// partitions by switch id. Partition 0 doubles as the control-plane
// partition (Controller/Analyzer/transport events).
//
// The map also carries the conservative-sync lookahead: the minimum link
// propagation delay over *cut edges* (links whose endpoints live in
// different partitions). A probe crossing a pod boundary is in flight for at
// least that long, so partitions may safely advance in windows of that width
// (see sim/parallel.h).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "topo/topology.h"

namespace rpm::topo {

struct PartitionMap {
  std::uint32_t num_partitions = 1;
  std::vector<std::uint32_t> host_partition;    // indexed by HostId
  std::vector<std::uint32_t> rnic_partition;    // indexed by RnicId
  std::vector<std::uint32_t> switch_partition;  // indexed by SwitchId
  /// Minimum propagation delay across cut edges; the safe conservative
  /// lookahead. Falls back to the topology-wide minimum when nothing is cut
  /// (num_partitions == 1).
  TimeNs cut_lookahead = 0;
  std::size_t cut_links = 0;  // directed links crossing a partition boundary

  [[nodiscard]] std::uint32_t partition_of(NodeRef n) const {
    return n.is_host() ? host_partition[n.as_host().value]
                       : switch_partition[n.as_switch().value];
  }
  [[nodiscard]] bool is_cut(const Link& l) const {
    return partition_of(l.from) != partition_of(l.to);
  }
};

/// Build the per-pod partition map described above. `partitions` is clamped
/// to [1, number of pods] — more partitions than pods would leave some empty.
PartitionMap build_pod_partitions(const Topology& topo,
                                  std::uint32_t partitions);

}  // namespace rpm::topo
