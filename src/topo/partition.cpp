#include "topo/partition.h"

#include <algorithm>

namespace rpm::topo {

PartitionMap build_pod_partitions(const Topology& topo,
                                  std::uint32_t partitions) {
  // Count pods among pod-bearing tiers (ToR/agg/rail; spine `pod` means
  // plane, see SwitchInfo).
  std::uint32_t num_pods = 0;
  for (const SwitchInfo& s : topo.switches()) {
    if (s.tier == SwitchTier::kSpine) continue;
    num_pods = std::max(num_pods, s.pod + 1);
  }
  if (num_pods == 0) num_pods = 1;

  PartitionMap map;
  map.num_partitions = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(partitions, num_pods));

  map.switch_partition.resize(topo.num_switches());
  for (const SwitchInfo& s : topo.switches()) {
    // Pods round-robin; the pod-less spine tier spreads by switch id so no
    // single partition serializes every cross-pod hop.
    const std::uint32_t key =
        s.tier == SwitchTier::kSpine ? s.id.value : s.pod;
    map.switch_partition[s.id.value] = key % map.num_partitions;
  }

  // Hosts and RNICs follow their attachment ToR's partition, which keeps
  // every RNIC<->ToR link internal to one partition.
  map.host_partition.assign(topo.num_hosts(), 0);
  map.rnic_partition.resize(topo.num_rnics());
  for (const RnicInfo& r : topo.rnics()) {
    const std::uint32_t p = map.switch_partition[r.tor.value];
    map.rnic_partition[r.id.value] = p;
    map.host_partition[r.host.value] = p;
  }

  // Lookahead: min propagation over cut edges (fallback: over all links).
  TimeNs min_cut = 0;
  TimeNs min_all = 0;
  for (const Link& l : topo.links()) {
    if (min_all == 0 || l.propagation < min_all) min_all = l.propagation;
    if (!map.is_cut(l)) continue;
    ++map.cut_links;
    if (min_cut == 0 || l.propagation < min_cut) min_cut = l.propagation;
  }
  map.cut_lookahead = min_cut != 0 ? min_cut : min_all;
  if (map.cut_lookahead < 1) map.cut_lookahead = 1;
  return map;
}

}  // namespace rpm::topo
