#include "topo/topology.h"

#include <algorithm>
#include <sstream>

namespace rpm::topo {

const char* tier_name(SwitchTier tier) {
  switch (tier) {
    case SwitchTier::kTor:
      return "tor";
    case SwitchTier::kAgg:
      return "agg";
    case SwitchTier::kSpine:
      return "spine";
    case SwitchTier::kRail:
      return "rail";
  }
  return "?";
}

HostId Topology::add_host() {
  const HostId id{static_cast<std::uint32_t>(hosts_.size())};
  hosts_.push_back(HostInfo{id, {}, "host-" + std::to_string(id.value)});
  host_out_.emplace_back();
  return id;
}

SwitchId Topology::add_switch(SwitchTier tier, std::uint32_t pod,
                              std::uint32_t plane, std::string name) {
  const SwitchId id{static_cast<std::uint32_t>(switches_.size())};
  switches_.push_back(SwitchInfo{id, tier, pod, plane, std::move(name)});
  switch_out_.emplace_back();
  tor_rnics_.emplace_back();
  if (tier == SwitchTier::kTor || tier == SwitchTier::kRail) {
    tors_.push_back(id);
  }
  return id;
}

RnicId Topology::add_rnic(HostId host, SwitchId tor, const LinkSpec& spec) {
  if (host.value >= hosts_.size()) throw std::out_of_range("add_rnic: host");
  if (tor.value >= switches_.size()) throw std::out_of_range("add_rnic: tor");
  const RnicId id{static_cast<std::uint32_t>(rnics_.size())};
  const auto index_in_host =
      static_cast<std::uint32_t>(hosts_[host.value].rnics.size());
  // 10.x.y.z style address derived from the RNIC index; unique per RNIC.
  const IpAddr ip{0x0A000000u + id.value + 1};

  const LinkId up = add_cable(NodeRef::host(host), NodeRef::sw(tor), spec);
  const LinkId down = links_[up.value].peer;

  RnicInfo info;
  info.id = id;
  info.host = host;
  info.index_in_host = index_in_host;
  info.ip = ip;
  info.tor = tor;
  info.uplink = up;
  info.downlink = down;
  info.name = "rnic-" + std::to_string(host.value) + "-" +
              std::to_string(index_in_host);
  rnics_.push_back(std::move(info));
  hosts_[host.value].rnics.push_back(id);
  tor_rnics_[tor.value].push_back(id);
  return id;
}

LinkId Topology::add_cable(NodeRef a, NodeRef b, const LinkSpec& spec) {
  const auto mk = [&](NodeRef from, NodeRef to) {
    const LinkId id{static_cast<std::uint32_t>(links_.size())};
    Link l;
    l.id = id;
    l.from = from;
    l.to = to;
    l.capacity_Bps = gbps_to_Bps(spec.capacity_gbps);
    l.propagation = spec.propagation;
    links_.push_back(std::move(l));
    return id;
  };
  const LinkId ab = mk(a, b);
  const LinkId ba = mk(b, a);
  links_[ab.value].peer = ba;
  links_[ba.value].peer = ab;
  links_[ab.value].name = link_name(ab);
  links_[ba.value].name = link_name(ba);

  auto& out_a = (a.is_host() ? host_out_[a.index] : switch_out_[a.index]);
  auto& out_b = (b.is_host() ? host_out_[b.index] : switch_out_[b.index]);
  out_a.push_back(ab);
  out_b.push_back(ba);
  std::sort(out_a.begin(), out_a.end());
  std::sort(out_b.begin(), out_b.end());
  return ab;
}

const HostInfo& Topology::host(HostId id) const {
  if (id.value >= hosts_.size()) throw std::out_of_range("host id");
  return hosts_[id.value];
}

const RnicInfo& Topology::rnic(RnicId id) const {
  if (id.value >= rnics_.size()) throw std::out_of_range("rnic id");
  return rnics_[id.value];
}

const SwitchInfo& Topology::switch_info(SwitchId id) const {
  if (id.value >= switches_.size()) throw std::out_of_range("switch id");
  return switches_[id.value];
}

const Link& Topology::link(LinkId id) const {
  if (id.value >= links_.size()) throw std::out_of_range("link id");
  return links_[id.value];
}

const std::vector<LinkId>& Topology::out_links(NodeRef n) const {
  if (n.is_host()) {
    if (n.index >= host_out_.size()) throw std::out_of_range("out_links host");
    return host_out_[n.index];
  }
  if (n.index >= switch_out_.size()) {
    throw std::out_of_range("out_links switch");
  }
  return switch_out_[n.index];
}

const std::vector<RnicId>& Topology::rnics_under_tor(SwitchId tor) const {
  if (tor.value >= tor_rnics_.size()) throw std::out_of_range("tor id");
  return tor_rnics_[tor.value];
}

RnicId Topology::rnic_by_ip(IpAddr ip) const {
  const std::uint32_t idx = ip.value - 0x0A000000u - 1;
  if (idx >= rnics_.size()) throw std::out_of_range("rnic_by_ip: unknown ip");
  return RnicId{idx};
}

std::string Topology::link_name(LinkId id) const {
  const Link& l = link(id);
  const auto node_name = [&](NodeRef n) -> std::string {
    if (n.is_host()) return hosts_[n.index].name;
    return switches_[n.index].name;
  };
  return node_name(l.from) + "->" + node_name(l.to);
}

Topology build_clos(const ClosConfig& cfg) {
  if (cfg.num_pods == 0 || cfg.tors_per_pod == 0 || cfg.aggs_per_pod == 0 ||
      cfg.spines_per_plane == 0 || cfg.hosts_per_tor == 0 ||
      cfg.rnics_per_host == 0) {
    throw std::invalid_argument("build_clos: all dimensions must be > 0");
  }
  Topology t;

  // Switches. Spine plane p serves agg index p of every pod.
  std::vector<std::vector<SwitchId>> tors(cfg.num_pods);
  std::vector<std::vector<SwitchId>> aggs(cfg.num_pods);
  std::vector<std::vector<SwitchId>> spines(cfg.aggs_per_pod);
  for (std::uint32_t p = 0; p < cfg.num_pods; ++p) {
    for (std::uint32_t i = 0; i < cfg.tors_per_pod; ++i) {
      std::ostringstream name;
      name << "tor-" << p << '/' << i;
      tors[p].push_back(t.add_switch(SwitchTier::kTor, p, 0, name.str()));
    }
    for (std::uint32_t i = 0; i < cfg.aggs_per_pod; ++i) {
      std::ostringstream name;
      name << "agg-" << p << '/' << i;
      aggs[p].push_back(t.add_switch(SwitchTier::kAgg, p, i, name.str()));
    }
  }
  for (std::uint32_t plane = 0; plane < cfg.aggs_per_pod; ++plane) {
    for (std::uint32_t s = 0; s < cfg.spines_per_plane; ++s) {
      std::ostringstream name;
      name << "spine-" << plane << '/' << s;
      spines[plane].push_back(
          t.add_switch(SwitchTier::kSpine, 0, plane, name.str()));
    }
  }

  // Fabric cables: every ToR to every agg of its pod; agg of plane p to all
  // spines of plane p.
  for (std::uint32_t p = 0; p < cfg.num_pods; ++p) {
    for (SwitchId tor : tors[p]) {
      for (SwitchId agg : aggs[p]) {
        t.add_cable(NodeRef::sw(tor), NodeRef::sw(agg), cfg.fabric_link);
      }
    }
    for (std::uint32_t plane = 0; plane < cfg.aggs_per_pod; ++plane) {
      for (SwitchId spine : spines[plane]) {
        t.add_cable(NodeRef::sw(aggs[p][plane]), NodeRef::sw(spine),
                    cfg.fabric_link);
      }
    }
  }

  // Hosts: all RNICs of a host attach to the same ToR.
  for (std::uint32_t p = 0; p < cfg.num_pods; ++p) {
    for (SwitchId tor : tors[p]) {
      for (std::uint32_t h = 0; h < cfg.hosts_per_tor; ++h) {
        const HostId host = t.add_host();
        for (std::uint32_t r = 0; r < cfg.rnics_per_host; ++r) {
          t.add_rnic(host, tor, cfg.host_link);
        }
      }
    }
  }
  return t;
}

Topology build_rail_optimized(const RailConfig& cfg) {
  if (cfg.num_hosts == 0 || cfg.rails == 0 || cfg.num_spines == 0) {
    throw std::invalid_argument("build_rail_optimized: dimensions must be > 0");
  }
  Topology t;
  std::vector<SwitchId> rails;
  std::vector<SwitchId> spines;
  for (std::uint32_t r = 0; r < cfg.rails; ++r) {
    rails.push_back(
        t.add_switch(SwitchTier::kRail, 0, r, "rail-" + std::to_string(r)));
  }
  for (std::uint32_t s = 0; s < cfg.num_spines; ++s) {
    spines.push_back(
        t.add_switch(SwitchTier::kSpine, 0, s, "spine-" + std::to_string(s)));
  }
  for (SwitchId rail : rails) {
    for (SwitchId spine : spines) {
      t.add_cable(NodeRef::sw(rail), NodeRef::sw(spine), cfg.fabric_link);
    }
  }
  for (std::uint32_t h = 0; h < cfg.num_hosts; ++h) {
    const HostId host = t.add_host();
    for (std::uint32_t r = 0; r < cfg.rails; ++r) {
      t.add_rnic(host, rails[r], cfg.host_link);
    }
  }
  return t;
}

std::uint32_t clos_parallel_paths(const ClosConfig& cfg, bool cross_pod) {
  return cross_pod ? cfg.aggs_per_pod * cfg.spines_per_plane
                   : cfg.aggs_per_pod;
}

}  // namespace rpm::topo
