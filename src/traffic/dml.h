// Distributed-ML service model.
//
// DML training alternates compute (network idle) and communication (network
// saturated) every few seconds, synchronizes all workers each iteration
// (barrel effect), and periodically checkpoints over CPU-hungry TCP
// (§2, §7.3). This module reproduces that traffic shape:
//
//  * Connections are real simulated RC QPs connected via modify_qp — so the
//    R-Pingmesh Agent's eBPF monitor observes the service 5-tuples exactly
//    as in production — paired with fluid flows carrying the bulk bytes.
//  * Each connection also posts periodic small RC sends ("keepalives")
//    standing in for in-flight messages: under flapping they retransmit and,
//    if the retry budget is exhausted, the connection breaks and the task
//    fails (§7.1 #1).
//  * Iterations: compute for `compute_time` (scaled by a slowdown knob used
//    to reproduce Figure 9's non-network degradation), then communicate
//    until EVERY flow has moved `comm_bytes` (the barrel effect).
//  * Checkpoints: every `checkpoint_interval` the job pauses communication
//    and pegs worker-host CPUs (TCP upload), reproducing Figure 5's
//    RTT-dip + processing-delay-spike signature.
//
// Throughput metric: `relative_throughput()` in [0,1] — the ratio of ideal
// to actual iteration duration, decaying live while an iteration overruns
// and 0 after task failure. This is the "training rate" the Analyzer's
// impact assessment watches (§4.3.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "fabric/fabric.h"
#include "host/cluster.h"
#include "sim/scheduler.h"
#include "verbs/verbs.h"

namespace rpm::traffic {

enum class CommPattern : std::uint8_t {
  kAllReduceRing,  // worker i -> worker i+1 (mod N): N flows, gentle
  kAllToAll,       // every ordered pair: N(N-1) flows, heavy incast
  kIncast,         // workers[1..] -> workers[0]: many-to-one (Fig. 13)
};

const char* comm_pattern_name(CommPattern p);

struct DmlConfig {
  ServiceId service{0};
  std::vector<RnicId> workers;           // one rank per RNIC
  CommPattern pattern = CommPattern::kAllReduceRing;
  double per_flow_gbps = 40.0;           // demand during comm phases
  TimeNs compute_time = msec(800);       // per-iteration compute phase
  Bytes comm_bytes = 512LL * 1024 * 1024 / 8;  // per-flow bytes per iteration
  fabric::RateController* controller = nullptr;  // nullptr = fixed demand
  std::uint16_t base_port = 20000;

  // RC reliability knobs (the paper's ops guidance: crank these up, §7.1).
  int rc_max_retries = 7;
  TimeNs rc_retransmit_timeout = msec(4);
  TimeNs keepalive_interval = msec(100);  // in-flight message cadence

  // Checkpointing (0 interval disables).
  TimeNs checkpoint_interval = 0;
  TimeNs checkpoint_duration = sec(8);
  double checkpoint_cpu_load = 0.96;

  TimeNs poll_interval = msec(1);  // progress-integration cadence
};

/// One RC connection + fluid flow between two ranks.
struct DmlConnection {
  RnicId src;
  RnicId dst;
  FiveTuple tuple;
  FlowId flow;
  Qpn src_qpn;
  Qpn dst_qpn;
  bool broken = false;
};

class DmlService {
 public:
  DmlService(host::Cluster& cluster, DmlConfig cfg);
  ~DmlService();
  DmlService(const DmlService&) = delete;
  DmlService& operator=(const DmlService&) = delete;

  /// Establish all connections (firing modify_qp tracepoints) and begin the
  /// first iteration.
  void start();
  /// Tear everything down (firing destroy_qp tracepoints).
  void stop();

  /// Figure 9: slow the *compute* side down (>= 1). Network is untouched,
  /// but coarse-grained network throughput sags with it.
  void set_compute_slowdown(double factor);

  // ---- metrics the Analyzer / benches watch ----

  /// Training rate relative to the fault-free ideal, in [0, 1].
  [[nodiscard]] double relative_throughput() const;
  /// Mean achieved network rate across live flows right now (B/s).
  [[nodiscard]] double avg_network_throughput_Bps() const;
  [[nodiscard]] std::size_t iterations_completed() const { return iters_; }
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] bool in_comm_phase() const { return phase_ == Phase::kComm; }
  [[nodiscard]] bool in_checkpoint() const {
    return phase_ == Phase::kCheckpoint;
  }
  [[nodiscard]] bool running() const { return running_; }

  [[nodiscard]] ServiceId id() const { return cfg_.service; }
  [[nodiscard]] const std::vector<DmlConnection>& connections() const {
    return conns_;
  }
  [[nodiscard]] const DmlConfig& config() const { return cfg_; }
  [[nodiscard]] TimeNs ideal_iteration_time() const;

 private:
  enum class Phase : std::uint8_t { kIdle, kCompute, kComm, kCheckpoint };

  void build_pairs();
  void begin_iteration();
  void begin_comm();
  void finish_iteration();
  void begin_checkpoint();
  void end_checkpoint();
  void poll_progress();
  void post_keepalives();
  void set_all_demands(double bps);
  void set_worker_cpu_load(double load);

  host::Cluster& cluster_;
  DmlConfig cfg_;
  std::vector<std::pair<RnicId, RnicId>> pairs_;
  std::vector<DmlConnection> conns_;
  std::vector<Bytes> moved_;  // per-connection bytes this comm phase

  Phase phase_ = Phase::kIdle;
  bool running_ = false;
  bool failed_ = false;
  double compute_slowdown_ = 1.0;
  std::size_t iters_ = 0;
  TimeNs iter_start_ = 0;
  TimeNs last_poll_ = 0;
  TimeNs last_checkpoint_ = 0;
  double last_completed_rel_ = 1.0;
  std::uint64_t epoch_ = 0;  // invalidates stale phase-transition events
  std::uint64_t next_keepalive_wr_ = 1;
  sim::PeriodicTask poll_task_;
  sim::PeriodicTask keepalive_task_;
};

}  // namespace rpm::traffic
