#include "traffic/dml.h"

#include <algorithm>
#include <stdexcept>

namespace rpm::traffic {

const char* comm_pattern_name(CommPattern p) {
  switch (p) {
    case CommPattern::kAllReduceRing:
      return "allreduce-ring";
    case CommPattern::kAllToAll:
      return "all2all";
    case CommPattern::kIncast:
      return "incast";
  }
  return "?";
}

DmlService::DmlService(host::Cluster& cluster, DmlConfig cfg)
    : cluster_(cluster),
      cfg_(std::move(cfg)),
      poll_task_(cluster.scheduler(), cfg_.poll_interval,
                 [this] { poll_progress(); }),
      keepalive_task_(cluster.scheduler(),
                      cfg_.keepalive_interval > 0 ? cfg_.keepalive_interval
                                                  : msec(100),
                      [this] { post_keepalives(); }) {
  if (cfg_.workers.size() < 2) {
    throw std::invalid_argument("DmlService: need at least 2 workers");
  }
  if (cfg_.per_flow_gbps <= 0.0 || cfg_.comm_bytes <= 0) {
    throw std::invalid_argument("DmlService: invalid traffic parameters");
  }
  build_pairs();
}

DmlService::~DmlService() {
  if (running_) stop();
}

void DmlService::build_pairs() {
  const auto& w = cfg_.workers;
  switch (cfg_.pattern) {
    case CommPattern::kAllReduceRing:
      for (std::size_t i = 0; i < w.size(); ++i) {
        pairs_.emplace_back(w[i], w[(i + 1) % w.size()]);
      }
      break;
    case CommPattern::kAllToAll:
      for (std::size_t i = 0; i < w.size(); ++i) {
        for (std::size_t j = 0; j < w.size(); ++j) {
          if (i != j) pairs_.emplace_back(w[i], w[j]);
        }
      }
      break;
    case CommPattern::kIncast:
      for (std::size_t i = 1; i < w.size(); ++i) {
        pairs_.emplace_back(w[i], w[0]);
      }
      break;
  }
}

void DmlService::start() {
  if (running_) return;
  running_ = true;
  failed_ = false;
  const auto& topo = cluster_.topology();

  std::uint16_t port = cfg_.base_port;
  for (const auto& [src, dst] : pairs_) {
    DmlConnection c;
    c.src = src;
    c.dst = dst;
    c.tuple.src_ip = topo.rnic(src).ip;
    c.tuple.dst_ip = topo.rnic(dst).ip;
    c.tuple.src_port = port++;

    // Real RC QPs on both ends so modify_qp/destroy_qp tracepoints fire
    // with this connection's 5-tuple.
    auto src_ctx = cluster_.open_device(src, cfg_.service);
    auto dst_ctx = cluster_.open_device(dst, cfg_.service);
    const std::size_t idx = conns_.size();

    rnic::QpConfig scfg;
    scfg.type = rnic::QpType::kRC;
    scfg.max_retries = cfg_.rc_max_retries;
    scfg.retransmit_timeout = cfg_.rc_retransmit_timeout;
    scfg.on_cqe = [](const rnic::Cqe&) {};
    scfg.on_broken = [this, idx] {
      conns_[idx].broken = true;
      failed_ = true;  // one broken connection fails the training task
      set_all_demands(0.0);  // the NCCL process aborts; traffic stops
    };
    c.src_qpn = src_ctx.create_qp(scfg);

    rnic::QpConfig dcfg;
    dcfg.type = rnic::QpType::kRC;
    dcfg.on_cqe = [](const rnic::Cqe&) {};
    c.dst_qpn = dst_ctx.create_qp(dcfg);

    src_ctx.modify_qp_connect(c.src_qpn, rnic::gid_of(dst), c.dst_qpn,
                              c.tuple.src_port);
    dst_ctx.modify_qp_connect(c.dst_qpn, rnic::gid_of(src), c.src_qpn,
                              c.tuple.src_port);

    // The bulk data plane: a fluid flow sharing the connection's 5-tuple.
    fabric::FlowSpec fs;
    fs.src = src;
    fs.dst = dst;
    fs.tuple = c.tuple;
    fs.demand_Bps = 0.0;  // idle until the first comm phase
    fs.controller = cfg_.controller;
    c.flow = cluster_.fabric().add_flow(fs);

    conns_.push_back(c);
  }
  moved_.assign(conns_.size(), 0);
  last_checkpoint_ = cluster_.scheduler().now();
  poll_task_.start();
  keepalive_task_.start();
  begin_iteration();
}

void DmlService::stop() {
  if (!running_) return;
  running_ = false;
  ++epoch_;
  poll_task_.cancel();
  keepalive_task_.cancel();
  set_worker_cpu_load(0.2);
  for (DmlConnection& c : conns_) {
    cluster_.fabric().remove_flow(c.flow);
    auto src_ctx = cluster_.open_device(c.src);
    auto dst_ctx = cluster_.open_device(c.dst);
    if (src_ctx.device().has_qp(c.src_qpn)) src_ctx.destroy_qp(c.src_qpn);
    if (dst_ctx.device().has_qp(c.dst_qpn)) dst_ctx.destroy_qp(c.dst_qpn);
  }
  conns_.clear();
  phase_ = Phase::kIdle;
}

void DmlService::set_compute_slowdown(double factor) {
  if (factor < 1.0) {
    throw std::invalid_argument("set_compute_slowdown: factor must be >= 1");
  }
  compute_slowdown_ = factor;
}

TimeNs DmlService::ideal_iteration_time() const {
  const double rate = gbps_to_Bps(cfg_.per_flow_gbps);
  const auto comm =
      static_cast<TimeNs>(static_cast<double>(cfg_.comm_bytes) / rate * 1e9);
  return cfg_.compute_time + comm;
}

void DmlService::set_all_demands(double bps) {
  for (const DmlConnection& c : conns_) {
    cluster_.fabric().set_flow_demand(c.flow, c.broken ? 0.0 : bps);
  }
}

void DmlService::set_worker_cpu_load(double load) {
  // Each distinct worker host gets the load (idempotent per host).
  std::vector<HostId> hosts;
  for (RnicId r : cfg_.workers) {
    hosts.push_back(cluster_.topology().rnic(r).host);
  }
  std::sort(hosts.begin(), hosts.end());
  hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
  for (HostId h : hosts) {
    if (!cluster_.host(h).is_down()) cluster_.host(h).set_cpu_load(load);
  }
}

void DmlService::begin_iteration() {
  if (!running_ || failed_) return;
  // Checkpoint due?
  if (cfg_.checkpoint_interval > 0 &&
      cluster_.scheduler().now() - last_checkpoint_ >=
          cfg_.checkpoint_interval) {
    begin_checkpoint();
    return;
  }
  phase_ = Phase::kCompute;
  iter_start_ = cluster_.scheduler().now();
  set_all_demands(0.0);
  const auto compute = static_cast<TimeNs>(
      static_cast<double>(cfg_.compute_time) * compute_slowdown_);
  const std::uint64_t ep = epoch_;
  cluster_.scheduler().schedule_after(compute, [this, ep] {
    if (running_ && ep == epoch_) begin_comm();
  });
}

void DmlService::begin_comm() {
  phase_ = Phase::kComm;
  std::fill(moved_.begin(), moved_.end(), 0);
  last_poll_ = cluster_.scheduler().now();
  set_all_demands(gbps_to_Bps(cfg_.per_flow_gbps));
}

void DmlService::poll_progress() {
  if (phase_ != Phase::kComm || failed_) return;
  const TimeNs now = cluster_.scheduler().now();
  const double dt = to_seconds(now - last_poll_);
  last_poll_ = now;
  if (dt <= 0.0) return;
  bool all_done = true;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].broken) continue;  // broken == failed task anyway
    const auto st = cluster_.fabric().flow_stats(conns_[i].flow);
    moved_[i] += static_cast<Bytes>(st.achieved_Bps * dt);
    if (moved_[i] < cfg_.comm_bytes) all_done = false;
  }
  if (all_done) finish_iteration();
}

void DmlService::finish_iteration() {
  ++iters_;
  const TimeNs actual = cluster_.scheduler().now() - iter_start_;
  // Relative to the *fault-free* ideal. A compute slowdown is included in
  // `actual` only, so a compute bug drags the metric down just like a
  // network problem would at coarse granularity — the Figure 9 confusion.
  last_completed_rel_ = std::min(
      1.0, static_cast<double>(ideal_iteration_time()) /
               std::max<double>(1.0, static_cast<double>(actual)));
  begin_iteration();
}

void DmlService::begin_checkpoint() {
  phase_ = Phase::kCheckpoint;
  last_checkpoint_ = cluster_.scheduler().now();
  iter_start_ = cluster_.scheduler().now();
  set_all_demands(0.0);  // RoCE network idle while TCP uploads run
  set_worker_cpu_load(cfg_.checkpoint_cpu_load);
  const std::uint64_t ep = epoch_;
  cluster_.scheduler().schedule_after(cfg_.checkpoint_duration, [this, ep] {
    if (running_ && ep == epoch_) end_checkpoint();
  });
}

void DmlService::end_checkpoint() {
  set_worker_cpu_load(0.3);
  phase_ = Phase::kIdle;
  begin_iteration();
}

void DmlService::post_keepalives() {
  if (failed_ || !running_) return;
  if (phase_ != Phase::kComm) return;  // messages fly during communication
  for (DmlConnection& c : conns_) {
    if (c.broken) continue;
    auto ctx = cluster_.open_device(c.src);
    if (!ctx.device().has_qp(c.src_qpn)) continue;
    if (ctx.device().qp_state(c.src_qpn) != rnic::QpState::kReadyToSend) {
      continue;
    }
    ctx.post_send(c.src_qpn, 4096, /*payload=*/0, next_keepalive_wr_++);
  }
}

double DmlService::relative_throughput() const {
  if (failed_) return 0.0;
  if (!running_) return 0.0;
  double rel = last_completed_rel_;
  if (phase_ == Phase::kComm || phase_ == Phase::kCompute) {
    const TimeNs elapsed = cluster_.scheduler().now() - iter_start_;
    const TimeNs ideal = ideal_iteration_time();
    if (elapsed > ideal) {
      rel = std::min(rel, static_cast<double>(ideal) /
                              static_cast<double>(elapsed));
    }
  }
  return rel;
}

double DmlService::avg_network_throughput_Bps() const {
  if (conns_.empty()) return 0.0;
  double sum = 0.0;
  for (const DmlConnection& c : conns_) {
    sum += cluster_.fabric().flow_stats(c.flow).achieved_Bps;
  }
  return sum / static_cast<double>(conns_.size());
}

}  // namespace rpm::traffic
