#include "cc/cc.h"

#include <algorithm>
#include <cmath>

namespace rpm::cc {

double Dcqcn::reset(std::uint32_t flow_slot, double demand_Bps,
                    double line_rate_Bps) {
  State s;
  s.line_rate = line_rate_Bps;
  s.target_rate = std::min(demand_Bps, line_rate_Bps);
  s.alpha = 1.0;
  flows_[flow_slot] = s;
  // DCQCN starts at line rate (demand-capped) and reacts to marks.
  return s.target_rate;
}

double Dcqcn::update(std::uint32_t flow_slot, const fabric::CcFeedback& fb,
                     double current_rate_Bps) {
  State& s = flows_[flow_slot];
  double rate = current_rate_Bps;
  s.since_decrease += fb.dt;
  s.since_increase += fb.dt;

  if (fb.ecn_fraction > 0.0) {
    // CNP received this window: update alpha and cut (rate-limited).
    s.alpha = (1.0 - params_.g) * s.alpha + params_.g * fb.ecn_fraction;
    if (s.since_decrease >= params_.decrease_min_gap) {
      s.target_rate = rate;
      rate = std::max(params_.min_rate_Bps, rate * (1.0 - s.alpha / 2.0));
      s.since_decrease = 0;
      s.recovery_round = 0;
    }
  } else {
    s.alpha = (1.0 - params_.g) * s.alpha;
    if (s.since_increase >= params_.increase_period) {
      s.since_increase = 0;
      if (s.recovery_round < params_.fast_recovery_rounds) {
        // Fast recovery: halve the gap to the pre-cut target.
        ++s.recovery_round;
      } else if (s.recovery_round < 2 * params_.fast_recovery_rounds) {
        // Additive increase grows the target.
        s.target_rate += params_.rate_ai_Bps;
        ++s.recovery_round;
      } else {
        // Hyper increase once the path has stayed clean for a long time.
        s.target_rate += params_.rate_hai_Bps;
      }
      s.target_rate = std::min(s.target_rate, s.line_rate);
      rate = (rate + s.target_rate) / 2.0;
    }
  }
  return std::clamp(rate, params_.min_rate_Bps, s.line_rate);
}

double DelayCc::reset(std::uint32_t flow_slot, double demand_Bps,
                      double line_rate_Bps) {
  flows_[flow_slot] = State{line_rate_Bps};
  return std::min(demand_Bps, line_rate_Bps);
}

double DelayCc::update(std::uint32_t flow_slot, const fabric::CcFeedback& fb,
                       double current_rate_Bps) {
  const State& s = flows_[flow_slot];
  const double target = static_cast<double>(params_.target_delay);
  const double delay = static_cast<double>(fb.queue_delay);
  double rate = current_rate_Bps;
  if (delay > target) {
    // Multiplicative decrease proportional to how far past target we are.
    const double overshoot = std::min(1.0, (delay - target) / delay);
    rate *= (1.0 - params_.beta * overshoot);
  } else {
    // Below target: probe upward additively.
    rate += params_.additive_gain * s.line_rate *
            to_seconds(fb.dt) / to_seconds(usec(100));
  }
  const double floor = params_.min_rate_frac * s.line_rate;
  return std::clamp(rate, floor, s.line_rate);
}

}  // namespace rpm::cc
