// Congestion control algorithms for the fluid traffic engine.
//
// Figure 11 (right) of the paper compares commodity DCQCN against
// ByteDance's self-developed algorithm on All2All traffic: the custom
// algorithm cuts tail RTT and raises training throughput. We implement:
//
//  * Dcqcn — the fluid-granularity analogue of DCQCN [Zhu et al., SIGCOMM'15]:
//    ECN-fraction-driven multiplicative decrease with the alpha estimator,
//    followed by fast recovery toward the pre-cut target rate and additive /
//    hyper increase. DCQCN keeps queues near the ECN knee, so tail latency
//    under incast stays high.
//
//  * DelayCc — a Swift/HPCC-flavoured delay-based controller that steers the
//    path queueing delay toward a small target. It keeps queues (and thus
//    tail RTT) much lower at modest throughput cost, reproducing the paper's
//    comparison shape.
//
// Controllers are stateless about flows except via `flow_slot`, matching the
// fabric::RateController contract.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.h"
#include "fabric/fabric.h"

namespace rpm::cc {

struct DcqcnParams {
  double g = 1.0 / 16.0;         // alpha EWMA gain (per update that sees ECN)
  double rate_ai_Bps = gbps_to_Bps(0.4);   // additive increase step
  double rate_hai_Bps = gbps_to_Bps(2.0);  // hyper increase step
  TimeNs increase_period = usec(300);      // time between increase events
  TimeNs decrease_min_gap = usec(50);      // at most one cut per gap
  int fast_recovery_rounds = 3;            // rounds of (Rc+Rt)/2 averaging
  double min_rate_Bps = gbps_to_Bps(0.1);
};

class Dcqcn final : public fabric::RateController {
 public:
  explicit Dcqcn(DcqcnParams params = {}) : params_(params) {}

  double reset(std::uint32_t flow_slot, double demand_Bps,
               double line_rate_Bps) override;
  double update(std::uint32_t flow_slot, const fabric::CcFeedback& fb,
                double current_rate_Bps) override;
  [[nodiscard]] std::string name() const override { return "dcqcn"; }

 private:
  struct State {
    double target_rate = 0.0;
    double alpha = 1.0;
    TimeNs since_decrease = 0;
    TimeNs since_increase = 0;
    int recovery_round = 0;
    double line_rate = 0.0;
  };
  DcqcnParams params_;
  std::unordered_map<std::uint32_t, State> flows_;
};

struct DelayCcParams {
  TimeNs target_delay = usec(8);   // steer path queueing delay here
  double beta = 0.6;               // max multiplicative decrease strength
  double additive_gain = 0.05;     // fraction of line rate added when below
  double min_rate_frac = 0.01;     // floor as a fraction of line rate
};

class DelayCc final : public fabric::RateController {
 public:
  explicit DelayCc(DelayCcParams params = {}) : params_(params) {}

  double reset(std::uint32_t flow_slot, double demand_Bps,
               double line_rate_Bps) override;
  double update(std::uint32_t flow_slot, const fabric::CcFeedback& fb,
                double current_rate_Bps) override;
  [[nodiscard]] std::string name() const override { return "delaycc"; }

 private:
  struct State {
    double line_rate = 0.0;
  };
  DelayCcParams params_;
  std::unordered_map<std::uint32_t, State> flows_;
};

}  // namespace rpm::cc
