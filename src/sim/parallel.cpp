#include "sim/parallel.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace rpm::sim {

namespace {
/// Which partition the calling thread is currently executing an event for.
/// Owner-tagged so nested/sibling schedulers never confuse each other.
struct TlsContext {
  const void* owner = nullptr;
  std::uint32_t partition = 0;
};
thread_local TlsContext tls_ctx;
}  // namespace

// ---------------------------------------------------------------------------
// Worker pool: persistent threads, one round per sync window. Partitions are
// claimed via an atomic cursor, so any thread may drain any partition —
// determinism comes from partition state being touched only by its claimant
// within a window, never from the claim order.

class ParallelScheduler::Pool {
 public:
  Pool(ParallelScheduler* owner, std::uint32_t extra_threads)
      : owner_(owner) {
    threads_.reserve(extra_threads);
    for (std::uint32_t i = 0; i < extra_threads; ++i) {
      threads_.emplace_back([this] { worker_main(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  /// Run one window across all partitions; the calling thread participates.
  /// Returns only after every partition is drained (the barrier).
  void run_round(TimeNs window_end, bool inclusive) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      window_end_ = window_end;
      inclusive_ = inclusive;
      done_ = 0;
      next_part_.store(0, std::memory_order_relaxed);
      ++round_;
    }
    cv_work_.notify_all();
    owner_->drain_claimed(window_end, inclusive, next_part_);
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return done_ == threads_.size(); });
  }

 private:
  void worker_main() {
    std::uint64_t seen = 0;
    for (;;) {
      TimeNs window_end;
      bool inclusive;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] { return stop_ || round_ != seen; });
        if (stop_) return;
        seen = round_;
        window_end = window_end_;
        inclusive = inclusive_;
      }
      owner_->drain_claimed(window_end, inclusive, next_part_);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++done_;
      }
      cv_done_.notify_one();
    }
  }

  ParallelScheduler* owner_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_, cv_done_;
  std::uint64_t round_ = 0;
  std::size_t done_ = 0;
  bool stop_ = false;
  TimeNs window_end_ = 0;
  bool inclusive_ = false;
  std::atomic<std::uint32_t> next_part_{0};
};

// ---------------------------------------------------------------------------

ParallelScheduler::ParallelScheduler(ParallelConfig cfg)
    : lookahead_(cfg.lookahead),
      measure_critical_path_(cfg.measure_critical_path) {
  if (cfg.partitions == 0) {
    throw std::invalid_argument("ParallelScheduler: partitions == 0");
  }
  if (lookahead_ < 1) {
    throw std::invalid_argument("ParallelScheduler: lookahead < 1 ns");
  }
  parts_.reserve(cfg.partitions);
  for (std::uint32_t i = 0; i < cfg.partitions; ++i) {
    auto p = std::make_unique<Part>(this, i);
    p->outbox.resize(cfg.partitions);
    p->edge_seq.assign(cfg.partitions, 0);
    parts_.push_back(std::move(p));
  }
  std::uint32_t w = cfg.workers == 0 ? cfg.partitions : cfg.workers;
  workers_ = std::min<std::uint32_t>(std::max<std::uint32_t>(w, 1),
                                     cfg.partitions);
  if (workers_ > 1) pool_ = std::make_unique<Pool>(this, workers_ - 1);
}

ParallelScheduler::~ParallelScheduler() = default;

EventHandle ParallelScheduler::route(std::uint32_t target, TimeNs t,
                                     EventFn fn) {
  if (!fn) throw std::invalid_argument("schedule_at: empty callback");
  auto ctl = std::make_shared<detail::EventCtl>();
  if (running_ && tls_ctx.owner == this) {
    Part& src = *parts_[tls_ctx.partition];
    if (src.id == target) {
      // Partition-local: same semantics as the single queue.
      if (t < src.local_now) t = src.local_now;
      src.queue.push(Entry{t, src.next_seq++, ctl, std::move(fn)});
    } else {
      // Cross-partition: per-edge outbox, merged at the next barrier with a
      // (time, src-partition, seq) sort so arrival order is deterministic
      // for any worker-thread mapping.
      src.outbox[target].push_back(
          CrossEvent{t, src.edge_seq[target]++, ctl, std::move(fn)});
    }
  } else {
    // Quiescent (setup, between runs, or tests): direct push. Callers must
    // be single-threaded here, exactly like InlineScheduler.
    Part& p = *parts_[target];
    if (t < p.local_now) t = p.local_now;
    p.queue.push(Entry{t, p.next_seq++, ctl, std::move(fn)});
  }
  return EventHandle(std::move(ctl));
}

void ParallelScheduler::drain_partition(Part& p, TimeNs window_end,
                                        bool inclusive) {
  const TlsContext saved = tls_ctx;
  tls_ctx = TlsContext{this, p.id};
  const auto busy0 = measure_critical_path_
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  while (!p.queue.empty()) {
    const Entry& top = p.queue.top();
    if (inclusive ? top.time > window_end : top.time >= window_end) break;
    Entry e = std::move(const_cast<Entry&>(top));
    p.queue.pop();
    p.local_now = e.time;
    std::uint8_t expected = detail::EventCtl::kPending;
    if (!e.ctl->state.compare_exchange_strong(
            expected, detail::EventCtl::kDone, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      continue;  // cancelled through its EventHandle
    }
    ++p.executed;
    EventFn fn = std::move(e.fn);
    if (dispatch_observer_) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      dispatch_observer_(p.id, static_cast<std::uint64_t>(ns));
    } else {
      fn();
    }
  }
  if (measure_critical_path_) {
    p.window_busy_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - busy0)
            .count());
  }
  p.local_now = window_end;
  tls_ctx = saved;
}

void ParallelScheduler::drain_claimed(TimeNs window_end, bool inclusive,
                                      std::atomic<std::uint32_t>& next) {
  for (std::uint32_t i;
       (i = next.fetch_add(1, std::memory_order_relaxed)) < parts_.size();) {
    drain_partition(*parts_[i], window_end, inclusive);
  }
}

void ParallelScheduler::run_window(TimeNs window_end, bool inclusive) {
  if (pool_) {
    pool_->run_round(window_end, inclusive);
  } else {
    for (auto& p : parts_) drain_partition(*p, window_end, inclusive);
  }
}

void ParallelScheduler::merge_inboxes() {
  for (std::uint32_t dst = 0; dst < parts_.size(); ++dst) {
    Part& q = *parts_[dst];
    merge_scratch_.clear();
    for (std::uint32_t src = 0; src < parts_.size(); ++src) {
      if (src == dst) continue;
      std::vector<CrossEvent>& ob = parts_[src]->outbox[dst];
      for (CrossEvent& ev : ob) {
        merge_scratch_.push_back(TaggedCross{ev.time, src, ev.seq,
                                             std::move(ev.ctl),
                                             std::move(ev.fn)});
      }
      ob.clear();
    }
    if (merge_scratch_.empty()) continue;
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const TaggedCross& a, const TaggedCross& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    cross_events_ += merge_scratch_.size();
    for (TaggedCross& ev : merge_scratch_) {
      // A cross delay below the lookahead would land in the receiver's
      // executed past; clamp to the window boundary (deterministic — it
      // depends only on window edges, not thread timing).
      const TimeNs t = std::max(ev.time, q.local_now);
      q.queue.push(Entry{t, q.next_seq++, std::move(ev.ctl), std::move(ev.fn)});
    }
    merge_scratch_.clear();
  }
}

TimeNs ParallelScheduler::min_next_event() const {
  TimeNs min_next = kNever;
  for (const auto& p : parts_) {
    if (!p->queue.empty()) min_next = std::min(min_next, p->queue.top().time);
  }
  return min_next;
}

void ParallelScheduler::run_until(TimeNs t_end) {
  if (running_) throw std::logic_error("ParallelScheduler: re-entrant run");
  running_ = true;
  for (;;) {
    const TimeNs min_next = min_next_event();
    if (min_next > t_end) break;  // also covers the empty case (kNever)
    TimeNs window_end = min_next > kNever - lookahead_ ? kNever
                                                       : min_next + lookahead_;
    bool inclusive = false;
    if (window_end >= t_end) {
      window_end = t_end;
      inclusive = true;
    }
    run_window(window_end, inclusive);
    ++windows_;
    if (measure_critical_path_) {
      // Critical path: the slowest partition bounds this window's wall time
      // under one-core-per-partition execution; merges are serial.
      std::uint64_t slowest = 0;
      for (auto& p : parts_) {
        slowest = std::max(slowest, p->window_busy_ns);
        p->window_busy_ns = 0;
      }
      const auto m0 = std::chrono::steady_clock::now();
      merge_inboxes();
      const auto merge_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - m0)
              .count();
      critical_path_ns_ += slowest + static_cast<std::uint64_t>(merge_ns);
      if (barrier_observer_) {
        barrier_observer_(static_cast<std::uint64_t>(merge_ns));
      }
      continue;
    }
    if (barrier_observer_) {
      // Time the serial tail of the window: straggler wait is part of
      // run_window; what remains observable here is the merge. Measure the
      // merge and report it (the dominant sync cost at high partition
      // counts; the in-window wait is already visible as idle gap between
      // dispatch samples).
      const auto t0 = std::chrono::steady_clock::now();
      merge_inboxes();
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      barrier_observer_(static_cast<std::uint64_t>(ns));
    } else {
      merge_inboxes();
    }
  }
  for (auto& p : parts_) p->local_now = std::max(p->local_now, t_end);
  global_now_ = std::max(global_now_, t_end);
  running_ = false;
}

void ParallelScheduler::run_all() {
  while (step()) {
  }
}

bool ParallelScheduler::step() {
  // Serial single-event semantics: consume the globally earliest entry
  // (ties by partition id), then merge any cross events it produced.
  if (running_) throw std::logic_error("ParallelScheduler: step during run");
  Part* best = nullptr;
  for (auto& p : parts_) {
    if (p->queue.empty()) continue;
    if (best == nullptr || p->queue.top().time < best->queue.top().time) {
      best = p.get();
    }
  }
  if (best == nullptr) return false;
  running_ = true;
  Part& p = *best;
  Entry e = std::move(const_cast<Entry&>(p.queue.top()));
  p.queue.pop();
  p.local_now = e.time;
  global_now_ = std::max(global_now_, e.time);
  std::uint8_t expected = detail::EventCtl::kPending;
  if (e.ctl->state.compare_exchange_strong(expected, detail::EventCtl::kDone,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
    ++p.executed;
    const TlsContext saved = tls_ctx;
    tls_ctx = TlsContext{this, p.id};
    EventFn fn = std::move(e.fn);
    if (dispatch_observer_) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      dispatch_observer_(p.id, static_cast<std::uint64_t>(ns));
    } else {
      fn();
    }
    tls_ctx = saved;
  }
  merge_inboxes();
  running_ = false;
  return true;
}

TimeNs ParallelScheduler::now() const {
  if (tls_ctx.owner == this) return parts_[tls_ctx.partition]->local_now;
  return global_now_;
}

EventHandle ParallelScheduler::schedule_at(TimeNs t, EventFn fn) {
  return route(0, t, std::move(fn));
}

std::size_t ParallelScheduler::pending_events() const {
  std::size_t total = 0;
  for (const auto& p : parts_) {
    total += p->queue.size();
    for (const auto& ob : p->outbox) total += ob.size();
  }
  return total;
}

std::uint64_t ParallelScheduler::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& p : parts_) total += p->executed;
  return total;
}

void ParallelScheduler::set_dispatch_observer(DispatchObserver obs) {
  if (running_) {
    throw std::logic_error("ParallelScheduler: observer change during run");
  }
  dispatch_observer_ = std::move(obs);
}

std::size_t ParallelScheduler::partition_pending(std::uint32_t p) const {
  return parts_.at(p)->queue.size();
}

std::uint64_t ParallelScheduler::partition_executed(std::uint32_t p) const {
  return parts_.at(p)->executed;
}

}  // namespace rpm::sim
