#include "sim/scheduler.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace rpm::sim {

EventHandle InlineScheduler::schedule_at(TimeNs t, EventFn fn) {
  if (!fn) throw std::invalid_argument("schedule_at: empty callback");
  if (t < now_) t = now_;
  auto ctl = std::make_shared<detail::EventCtl>();
  queue_.push(Entry{t, next_seq_++, ctl, std::move(fn)});
  return EventHandle(std::move(ctl));
}

void InlineScheduler::execute(Entry& e) {
  now_ = e.time;
  // Claim the event: a concurrently-held EventHandle that already cancelled
  // it wins, and the entry is skipped without running or counting.
  std::uint8_t expected = detail::EventCtl::kPending;
  if (!e.ctl->state.compare_exchange_strong(expected, detail::EventCtl::kDone,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
    return;
  }
  ++executed_;
  // Move the callback out before invoking: it may schedule more events,
  // which mutates the queue.
  EventFn fn = std::move(e.fn);
  if (dispatch_observer_) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    dispatch_observer_(0, static_cast<std::uint64_t>(ns));
  } else {
    fn();
  }
}

void InlineScheduler::run_until(TimeNs t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    // priority_queue::top() is const; the Entry must be moved out to pop
    // before running so re-entrant scheduling is safe.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    execute(e);
  }
  if (t_end > now_) now_ = t_end;
}

void InlineScheduler::run_all() {
  while (step()) {
  }
}

bool InlineScheduler::step() {
  if (queue_.empty()) return false;
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  execute(e);
  return true;
}

PeriodicTask::PeriodicTask(Scheduler& sched, TimeNs period, EventFn fn)
    : sched_(sched), period_(period), fn_(std::move(fn)) {
  if (period_ <= 0) throw std::invalid_argument("PeriodicTask: period <= 0");
  if (!fn_) throw std::invalid_argument("PeriodicTask: empty callback");
}

PeriodicTask::~PeriodicTask() { cancel(); }

void PeriodicTask::arm(TimeNs delay) {
  pending_ = sched_.schedule_after(delay, [this] { fire(); });
}

void PeriodicTask::fire() {
  fn_();
  // Re-arm unless the callback cancelled us — or cancelled AND restarted,
  // in which case start() already queued a fresh firing (pending_ refers to
  // it and is still pending; the event this closure belongs to is kDone).
  if (running_ && !pending_.pending()) arm(period_);
}

void PeriodicTask::start(TimeNs first_delay) {
  if (running_) return;
  running_ = true;
  arm(first_delay);
}

void PeriodicTask::cancel() {
  running_ = false;
  pending_.cancel();
}

void PeriodicTask::set_period(TimeNs period) {
  if (period <= 0) throw std::invalid_argument("set_period: period <= 0");
  period_ = period;
}

}  // namespace rpm::sim
