#include "sim/scheduler.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace rpm::sim {

void EventScheduler::schedule_at(TimeNs t, EventFn fn) {
  if (!fn) throw std::invalid_argument("schedule_at: empty callback");
  if (t < now_) t = now_;
  queue_.push(Entry{t, next_seq_++, std::move(fn)});
}

void EventScheduler::schedule_after(TimeNs delay, EventFn fn) {
  schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
}

void EventScheduler::execute(Entry& e) {
  now_ = e.time;
  ++executed_;
  // Move the callback out before invoking: it may schedule more events,
  // which mutates the queue.
  EventFn fn = std::move(e.fn);
  if (dispatch_observer_) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    dispatch_observer_(static_cast<std::uint64_t>(ns));
  } else {
    fn();
  }
}

void EventScheduler::run_until(TimeNs t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    // priority_queue::top() is const; the Entry must be moved out to pop
    // before running so re-entrant scheduling is safe.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    execute(e);
  }
  if (t_end > now_) now_ = t_end;
}

void EventScheduler::run_all() {
  while (step()) {
  }
}

bool EventScheduler::step() {
  if (queue_.empty()) return false;
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  execute(e);
  return true;
}

PeriodicTask::PeriodicTask(EventScheduler& sched, TimeNs period, EventFn fn)
    : sched_(sched),
      state_(std::make_shared<State>(State{period, std::move(fn), false, 0})) {
  if (state_->period <= 0) {
    throw std::invalid_argument("PeriodicTask: period <= 0");
  }
  if (!state_->fn) throw std::invalid_argument("PeriodicTask: empty callback");
}

PeriodicTask::~PeriodicTask() { cancel(); }

// Self-rescheduling event bound to a generation; holds the state alive by
// shared_ptr so a destroyed PeriodicTask never dangles.
EventFn PeriodicTask::make_fire(std::shared_ptr<State> st,
                                EventScheduler* sched, std::uint64_t gen) {
  return [st, sched, gen] {
    if (!st->running || gen != st->generation) return;
    st->fn();
    if (!st->running || gen != st->generation) return;
    sched->schedule_after(st->period, make_fire(st, sched, gen));
  };
}

void PeriodicTask::start(TimeNs first_delay) {
  if (state_->running) return;
  state_->running = true;
  const std::uint64_t gen = ++state_->generation;
  sched_.schedule_after(first_delay, make_fire(state_, &sched_, gen));
}

void PeriodicTask::cancel() {
  state_->running = false;
  ++state_->generation;
}

void PeriodicTask::set_period(TimeNs period) {
  if (period <= 0) throw std::invalid_argument("set_period: period <= 0");
  state_->period = period;
}

TimeNs PeriodicTask::period() const { return state_->period; }

bool PeriodicTask::running() const { return state_->running; }

}  // namespace rpm::sim
