// Partitioned parallel discrete-event scheduler.
//
// The Clos topology is partitioned (per pod, see topo::PartitionMap); each
// partition owns its own event queue, sequence counter, and partition-local
// clock, and is drained by exactly one worker thread per synchronization
// window. Synchronization is conservative and null-message-free:
//
//   window_end = min(next event time across partitions) + lookahead
//
// where `lookahead` is the minimum link-propagation delay across cut edges.
// All partitions advance in parallel to `window_end` (exclusive, except in
// the final window of a run_until, which is inclusive of t_end), then a
// barrier exchanges cross-partition events and the next window begins.
//
// Cross-partition traffic goes through per-edge outboxes: an event executing
// in partition p that schedules into partition q appends to outbox[p][q]
// stamped (time, src-partition, edge-seq). At the barrier each destination
// merges its inbound events sorted by (time, src-partition, seq), so the
// merge order — and therefore the whole simulation — is byte-identical for
// any worker-thread count or partition->thread mapping. Events that would
// land in a receiver's past (cross delay below the lookahead) are clamped to
// the window boundary, deterministically.
//
// With partitions == 1 the window loop degenerates to the single-queue drain
// and event order is identical to InlineScheduler.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/scheduler.h"

namespace rpm::sim {

struct ParallelConfig {
  std::uint32_t partitions = 1;
  /// Conservative sync window width; must be >= 1 ns. Use the topology's
  /// minimum cut-edge propagation delay (topo::PartitionMap::cut_lookahead).
  TimeNs lookahead = nsec(500);
  /// Worker threads draining partitions each window (clamped to
  /// [1, partitions]; 0 = one per partition). 1 = sequential round-robin —
  /// identical output, no extra threads.
  std::uint32_t workers = 1;
  /// Record per-window per-partition drain wall time and accumulate the
  /// critical path (sum over windows of the slowest partition's drain, plus
  /// inbox merges): the run's wall-time lower bound with one core per
  /// partition. Two clock reads per partition per window; off by default.
  bool measure_critical_path = false;
};

class ParallelScheduler final : public Scheduler {
 public:
  explicit ParallelScheduler(ParallelConfig cfg);
  ~ParallelScheduler() override;

  [[nodiscard]] std::uint32_t num_partitions() const {
    return static_cast<std::uint32_t>(parts_.size());
  }
  [[nodiscard]] TimeNs lookahead() const { return lookahead_; }
  [[nodiscard]] std::uint32_t num_workers() const { return workers_; }

  /// The per-partition Scheduler facade components hold. schedule_at targets
  /// partition `p` (routed through the per-edge outbox when called from an
  /// event executing in another partition); now() is partition-local.
  /// run_until/run_all/step on a facade drive the whole scheduler.
  [[nodiscard]] Scheduler& partition(std::uint32_t p) { return *parts_.at(p); }

  // -- per-partition introspection (quiescent reads) --
  [[nodiscard]] std::size_t partition_pending(std::uint32_t p) const;
  [[nodiscard]] std::uint64_t partition_executed(std::uint32_t p) const;
  /// Cross-partition events merged so far / sync windows run so far.
  [[nodiscard]] std::uint64_t cross_events() const { return cross_events_; }
  [[nodiscard]] std::uint64_t sync_windows() const { return windows_; }
  /// Accumulated critical path (see ParallelConfig::measure_critical_path);
  /// 0 unless measurement was enabled.
  [[nodiscard]] std::uint64_t critical_path_ns() const {
    return critical_path_ns_;
  }

  /// Wall-clock barrier observer: called once per sync window with the time
  /// the coordinating thread spent merging cross-partition inboxes at the
  /// barrier (the profiler records it as sim.sync_barrier).
  using BarrierObserver = std::function<void(std::uint64_t wall_ns)>;
  void set_barrier_observer(BarrierObserver obs) {
    barrier_observer_ = std::move(obs);
  }

  // -- Scheduler interface (the global facade) --
  // Scheduling targets partition 0, the control-plane partition, unless
  // called from inside an event (then the event's own partition is the
  // source and partition 0 the destination, via the outbox). now() inside an
  // event is the executing partition's clock; quiescent, the global clock.
  [[nodiscard]] TimeNs now() const override;
  EventHandle schedule_at(TimeNs t, EventFn fn) override;
  void run_until(TimeNs t_end) override;
  void run_all() override;
  bool step() override;
  [[nodiscard]] std::size_t pending_events() const override;
  [[nodiscard]] std::uint64_t executed_events() const override;
  void set_dispatch_observer(DispatchObserver obs) override;

 private:
  class Pool;

  struct Entry {
    TimeNs time;
    std::uint64_t seq;
    std::shared_ptr<detail::EventCtl> ctl;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  /// One cross-partition event in an outbox (seq is per (src, dst) edge).
  struct CrossEvent {
    TimeNs time;
    std::uint64_t seq;
    std::shared_ptr<detail::EventCtl> ctl;
    EventFn fn;
  };

  /// One partition: queue + clock + outboxes, plus the Scheduler facade
  /// components hold.
  struct Part final : Scheduler {
    Part(ParallelScheduler* o, std::uint32_t i) : owner(o), id(i) {}

    [[nodiscard]] TimeNs now() const override { return local_now; }
    EventHandle schedule_at(TimeNs t, EventFn fn) override {
      return owner->route(id, t, std::move(fn));
    }
    void run_until(TimeNs t_end) override { owner->run_until(t_end); }
    void run_all() override { owner->run_all(); }
    bool step() override { return owner->step(); }
    /// Partition-local queue depth (the global facade aggregates).
    [[nodiscard]] std::size_t pending_events() const override {
      return queue.size();
    }
    [[nodiscard]] std::uint64_t executed_events() const override {
      return executed;
    }
    void set_dispatch_observer(DispatchObserver obs) override {
      owner->set_dispatch_observer(std::move(obs));
    }
    [[nodiscard]] std::uint32_t partition_id() const override { return id; }

    ParallelScheduler* owner;
    std::uint32_t id;
    TimeNs local_now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
    std::uint64_t window_busy_ns = 0;  // this window's drain wall time
    std::priority_queue<Entry, std::vector<Entry>, Later> queue;
    std::vector<std::vector<CrossEvent>> outbox;  // indexed by dst partition
    std::vector<std::uint64_t> edge_seq;          // per (this, dst) edge
  };

  EventHandle route(std::uint32_t target, TimeNs t, EventFn fn);
  void drain_partition(Part& p, TimeNs window_end, bool inclusive);
  void drain_claimed(TimeNs window_end, bool inclusive,
                     std::atomic<std::uint32_t>& next);
  void run_window(TimeNs window_end, bool inclusive);
  void merge_inboxes();
  [[nodiscard]] TimeNs min_next_event() const;

  static constexpr TimeNs kNever = std::numeric_limits<TimeNs>::max();

  std::vector<std::unique_ptr<Part>> parts_;
  TimeNs lookahead_;
  std::uint32_t workers_;
  bool measure_critical_path_;
  TimeNs global_now_ = 0;
  bool running_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t cross_events_ = 0;
  std::uint64_t critical_path_ns_ = 0;
  DispatchObserver dispatch_observer_;
  BarrierObserver barrier_observer_;
  std::unique_ptr<Pool> pool_;
  // merge scratch: inbound events tagged with their source partition
  struct TaggedCross {
    TimeNs time;
    std::uint32_t src;
    std::uint64_t seq;
    std::shared_ptr<detail::EventCtl> ctl;
    EventFn fn;
  };
  std::vector<TaggedCross> merge_scratch_;
};

}  // namespace rpm::sim
