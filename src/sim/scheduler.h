// Discrete-event simulation core.
//
// `Scheduler` is the abstract clock + event-queue interface every component
// holds (`now`/`schedule_at`/`schedule_after`/`run_until`). Two backends
// implement it:
//
//  * InlineScheduler — the classic single binary heap. One queue owns
//    simulated time; `run_until` drains events in timestamp order with ties
//    broken by insertion order, so runs are fully deterministic.
//  * ParallelScheduler (sim/parallel.h) — one queue per topology partition,
//    synchronized conservatively in lookahead windows; components hold the
//    per-partition `Scheduler` facade and never see the difference.
//
// `schedule_at`/`schedule_after` return a cancellable EventHandle: cancel()
// guarantees the callback never runs (the queue entry is skipped when it
// surfaces). PeriodicTask is built on that guarantee.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.h"

namespace rpm::sim {

/// Event callback. Captures whatever state it needs; executed at most once
/// (exactly once unless cancelled through its EventHandle).
using EventFn = std::function<void()>;

namespace detail {
/// Shared control block between a queued event and its EventHandle.
/// The state machine is monotonic: kPending -> kCancelled | kDone.
struct EventCtl {
  static constexpr std::uint8_t kPending = 0;
  static constexpr std::uint8_t kCancelled = 1;
  static constexpr std::uint8_t kDone = 2;
  std::atomic<std::uint8_t> state{kPending};
};
}  // namespace detail

/// Cancellable reference to one scheduled event. Default-constructed handles
/// are inert. Handles may outlive the event (cancel() after execution is a
/// no-op) and may be cancelled from any thread.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from running. Returns true if this call cancelled it
  /// (false: already executed, already cancelled, or inert handle).
  bool cancel() {
    if (!ctl_) return false;
    std::uint8_t expected = detail::EventCtl::kPending;
    return ctl_->state.compare_exchange_strong(
        expected, detail::EventCtl::kCancelled, std::memory_order_acq_rel,
        std::memory_order_acquire);
  }

  /// Scheduled and neither executed nor cancelled yet.
  [[nodiscard]] bool pending() const {
    return ctl_ && ctl_->state.load(std::memory_order_acquire) ==
                       detail::EventCtl::kPending;
  }

  /// True for handles that refer to a real event (even a finished one).
  explicit operator bool() const { return ctl_ != nullptr; }

 private:
  friend class InlineScheduler;
  friend class ParallelScheduler;
  explicit EventHandle(std::shared_ptr<detail::EventCtl> ctl)
      : ctl_(std::move(ctl)) {}

  std::shared_ptr<detail::EventCtl> ctl_;
};

/// Abstract simulation scheduler. Components depend on this interface only,
/// so the single-queue and partitioned backends are swappable (the same move
/// core::IngestSink made for ingestion).
class Scheduler {
 public:
  Scheduler() = default;
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time (partition-local for a partition facade).
  [[nodiscard]] virtual TimeNs now() const = 0;

  /// Schedule `fn` at absolute simulated time `t` (clamped to now()).
  virtual EventHandle schedule_at(TimeNs t, EventFn fn) = 0;

  /// Schedule `fn` `delay` nanoseconds from now (delay < 0 is clamped to 0).
  EventHandle schedule_after(TimeNs delay, EventFn fn) {
    return schedule_at(now() + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Run events until simulated time would exceed `t_end`; afterwards
  /// now() == t_end. Events scheduled exactly at t_end are executed.
  virtual void run_until(TimeNs t_end) = 0;

  /// Run until the event queue is empty (use with care: self-rescheduling
  /// periodic events make this unbounded).
  virtual void run_all() = 0;

  /// Consume at most one pending entry; returns false if the queue is empty.
  virtual bool step() = 0;

  /// Events currently queued (cancelled-but-not-yet-surfaced entries count;
  /// a partitioned backend aggregates across every partition and in-flight
  /// cross-partition inbox).
  [[nodiscard]] virtual std::size_t pending_events() const = 0;

  /// Total events executed so far (aggregated across partitions; cancelled
  /// entries are skipped, not executed).
  [[nodiscard]] virtual std::uint64_t executed_events() const = 0;

  /// Wall-clock dispatch observer: when set, every executed event's callback
  /// is timed with std::chrono::steady_clock and the elapsed nanoseconds are
  /// reported together with the partition that ran it (always 0 for the
  /// single-queue backend). Purely observational — it cannot affect event
  /// order or simulated time (the profiler installs one; see
  /// prof::Profiler::attach_scheduler). One branch per event when unset.
  /// A partitioned backend invokes it concurrently from worker threads; the
  /// observer must be thread-safe.
  using DispatchObserver =
      std::function<void(std::uint32_t partition, std::uint64_t wall_ns)>;
  virtual void set_dispatch_observer(DispatchObserver obs) = 0;

  /// Partition this handle schedules into (0 for single-queue backends and
  /// for a partitioned backend's global facade).
  [[nodiscard]] virtual std::uint32_t partition_id() const { return 0; }
};

/// The single-threaded single-queue backend: one binary heap owns simulated
/// time. This is the seed pipeline's scheduler, unchanged in behavior.
class InlineScheduler final : public Scheduler {
 public:
  InlineScheduler() = default;

  [[nodiscard]] TimeNs now() const override { return now_; }
  EventHandle schedule_at(TimeNs t, EventFn fn) override;
  void run_until(TimeNs t_end) override;
  void run_all() override;
  bool step() override;
  [[nodiscard]] std::size_t pending_events() const override {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t executed_events() const override {
    return executed_;
  }
  void set_dispatch_observer(DispatchObserver obs) override {
    dispatch_observer_ = std::move(obs);
  }

 private:
  struct Entry {
    TimeNs time;
    std::uint64_t seq;
    std::shared_ptr<detail::EventCtl> ctl;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void execute(Entry& e);

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  DispatchObserver dispatch_observer_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

/// One-release compatibility shim: out-of-tree code that names the concrete
/// backend keeps compiling. New code should hold `Scheduler&` and construct
/// `InlineScheduler` (or `ParallelScheduler`).
using EventScheduler = InlineScheduler;

/// Repeatedly invokes a callback with a fixed period until cancelled.
/// The callback may adjust the period for the next firing via set_period().
/// Built on EventHandle cancellation: cancel() (and the destructor) revoke
/// the queued firing itself, so no stale closure ever runs — the old
/// shared-state generation counter is gone.
class PeriodicTask {
 public:
  PeriodicTask(Scheduler& sched, TimeNs period, EventFn fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start(TimeNs first_delay = 0);
  void cancel();
  [[nodiscard]] bool running() const { return running_; }

  void set_period(TimeNs period);
  [[nodiscard]] TimeNs period() const { return period_; }

 private:
  void arm(TimeNs delay);
  void fire();

  Scheduler& sched_;
  TimeNs period_;
  EventFn fn_;
  bool running_ = false;
  EventHandle pending_;
};

}  // namespace rpm::sim
