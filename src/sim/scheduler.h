// Discrete-event simulation core.
//
// A single EventScheduler owns simulated time. Components schedule callbacks
// at absolute times or after delays; `run_until` drains events in timestamp
// order. Ties are broken by insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.h"

namespace rpm::sim {

/// Event callback. Captures whatever state it needs; executed exactly once.
using EventFn = std::function<void()>;

class EventScheduler {
 public:
  EventScheduler() = default;
  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  /// Current simulated time.
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (clamped to now()).
  void schedule_at(TimeNs t, EventFn fn);

  /// Schedule `fn` `delay` nanoseconds from now (delay < 0 is clamped to 0).
  void schedule_after(TimeNs delay, EventFn fn);

  /// Run events until simulated time would exceed `t_end`; afterwards
  /// now() == t_end. Events scheduled exactly at t_end are executed.
  void run_until(TimeNs t_end);

  /// Run until the event queue is empty (use with care: self-rescheduling
  /// periodic events make this unbounded).
  void run_all();

  /// Execute at most one pending event; returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed so far (for overhead accounting).
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Wall-clock dispatch observer: when set, every executed event's callback
  /// is timed with std::chrono::steady_clock and the elapsed nanoseconds are
  /// reported. Purely observational — it cannot affect event order or
  /// simulated time (the profiler installs one; see prof::Profiler::
  /// attach_scheduler). One branch per event when unset.
  using DispatchObserver = std::function<void(std::uint64_t wall_ns)>;
  void set_dispatch_observer(DispatchObserver obs) {
    dispatch_observer_ = std::move(obs);
  }

 private:
  struct Entry {
    TimeNs time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void execute(Entry& e);

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  DispatchObserver dispatch_observer_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

/// Repeatedly invokes a callback with a fixed period until cancelled.
/// The callback may adjust the period for the next firing via set_period().
/// Safe to destroy while a firing is still queued: the scheduled closure
/// shares ownership of the task state and checks a generation counter.
class PeriodicTask {
 public:
  PeriodicTask(EventScheduler& sched, TimeNs period, EventFn fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start(TimeNs first_delay = 0);
  void cancel();
  [[nodiscard]] bool running() const;

  void set_period(TimeNs period);
  [[nodiscard]] TimeNs period() const;

 private:
  struct State {
    TimeNs period;
    EventFn fn;
    bool running;
    std::uint64_t generation;  // invalidates in-flight events on cancel
  };

  static EventFn make_fire(std::shared_ptr<State> st, EventScheduler* sched,
                           std::uint64_t gen);

  EventScheduler& sched_;
  std::shared_ptr<State> state_;
};

}  // namespace rpm::sim
