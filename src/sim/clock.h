// Free-running device clocks.
//
// Real RNICs and hosts each have their own oscillator: readings from two
// different devices are not comparable without synchronization. R-Pingmesh's
// central measurement trick (§4.2.1) is that every delay it reports is a
// difference of two readings taken on the *same* clock, so offsets cancel and
// drift is negligible over the sub-millisecond spans involved.
//
// The simulator gives every RNIC and host a DeviceClock with a random offset
// (up to seconds) and drift (tens of ppm) so that any accidental cross-clock
// arithmetic in the Agent would show up as wildly wrong RTTs in tests.
#pragma once

#include <cmath>

#include "common/rng.h"
#include "common/types.h"

namespace rpm::sim {

class DeviceClock {
 public:
  DeviceClock() = default;

  /// `offset`: reading at simulated time 0. `drift_ppm`: parts-per-million
  /// frequency error (positive runs fast).
  DeviceClock(TimeNs offset, double drift_ppm)
      : offset_(offset), drift_ppm_(drift_ppm) {}

  /// Construct with random offset in ±1 s and drift in ±50 ppm.
  static DeviceClock random(Rng& rng) {
    return DeviceClock(rng.uniform_int(-1'000'000'000, 1'000'000'000),
                       rng.uniform(-50.0, 50.0));
  }

  /// Clock reading at simulated time `sim_now`.
  [[nodiscard]] TimeNs read(TimeNs sim_now) const {
    const double skew = static_cast<double>(sim_now) * drift_ppm_ * 1e-6;
    return offset_ + sim_now + static_cast<TimeNs>(std::llround(skew));
  }

  [[nodiscard]] TimeNs offset() const { return offset_; }
  [[nodiscard]] double drift_ppm() const { return drift_ppm_; }

 private:
  TimeNs offset_ = 0;
  double drift_ppm_ = 0.0;
};

}  // namespace rpm::sim
