#include "rnic/rnic.h"

#include <algorithm>
#include <stdexcept>

namespace rpm::rnic {

namespace {
constexpr std::uint64_t kGidBase = 0xfe80'0000'0000'0000ULL;
}  // namespace

const char* qp_type_name(QpType t) {
  switch (t) {
    case QpType::kRC:
      return "RC";
    case QpType::kUC:
      return "UC";
    case QpType::kUD:
      return "UD";
  }
  return "?";
}

Gid gid_of(RnicId id) { return Gid{kGidBase + id.value + 1}; }

std::optional<RnicId> rnic_of_gid(Gid gid) {
  if (gid.value <= kGidBase) return std::nullopt;
  return RnicId{static_cast<std::uint32_t>(gid.value - kGidBase - 1)};
}

RnicDevice::RnicDevice(RnicId id, fabric::Fabric& fabric,
                       sim::Scheduler& sched, sim::DeviceClock clock,
                       Rng rng, RnicParams params)
    : id_(id),
      fabric_(fabric),
      sched_(sched),
      clock_(clock),
      rng_(rng),
      params_(params) {
  fabric_.set_delivery_handler(
      id_, [this](const fabric::Datagram& d) { on_datagram(d); });
}

Gid RnicDevice::gid() const { return gid_of(id_); }

IpAddr RnicDevice::ip() const { return fabric_.topology().rnic(id_).ip; }

TimeNs RnicDevice::tx_delay() const {
  return static_cast<TimeNs>(
      static_cast<double>(params_.tx_dma) / pcie_factor_);
}

TimeNs RnicDevice::rx_delay() const {
  return static_cast<TimeNs>(
      static_cast<double>(params_.rx_dma) / pcie_factor_);
}

Qpn RnicDevice::create_qp(QpConfig cfg) {
  if (!cfg.on_cqe) throw std::invalid_argument("create_qp: on_cqe required");
  const Qpn qpn{next_qpn_++};
  Qp qp;
  qp.qpn = qpn;
  qp.cfg = std::move(cfg);
  qp.state = qp.cfg.type == QpType::kUD ? QpState::kReadyToSend
                                        : QpState::kReset;
  qps_.emplace(qpn.value, std::move(qp));
  return qpn;
}

void RnicDevice::destroy_qp(Qpn qpn) {
  qps_.erase(qpn.value);
  qpc_lru_.erase(std::remove(qpc_lru_.begin(), qpc_lru_.end(), qpn),
                 qpc_lru_.end());
}

bool RnicDevice::has_qp(Qpn qpn) const { return qps_.contains(qpn.value); }

QpState RnicDevice::qp_state(Qpn qpn) const {
  const auto it = qps_.find(qpn.value);
  if (it == qps_.end()) throw std::out_of_range("qp_state: unknown QPN");
  return it->second.state;
}

RnicDevice::Qp* RnicDevice::find_qp(Qpn qpn) {
  const auto it = qps_.find(qpn.value);
  return it == qps_.end() ? nullptr : &it->second;
}

void RnicDevice::connect_qp(Qpn qpn, Gid remote_gid, Qpn remote_qpn,
                            std::uint16_t src_port) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::out_of_range("connect_qp: unknown QPN");
  if (qp->cfg.type == QpType::kUD) {
    throw std::logic_error("connect_qp: UD QPs are connectionless");
  }
  qp->remote_gid = remote_gid;
  qp->remote_qpn = remote_qpn;
  qp->src_port = src_port;
  qp->state = QpState::kReadyToSend;
}

TimeNs RnicDevice::qpc_touch(Qpn qpn) {
  const auto it = std::find(qpc_lru_.begin(), qpc_lru_.end(), qpn);
  if (it != qpc_lru_.end()) {
    // hit: move to hottest position
    qpc_lru_.erase(it);
    qpc_lru_.push_back(qpn);
    ++counters_.qpc_cache_hits;
    return 0;
  }
  ++counters_.qpc_cache_misses;
  qpc_lru_.push_back(qpn);
  if (qpc_lru_.size() > params_.qpc_cache_slots) {
    qpc_lru_.erase(qpc_lru_.begin());  // evict coldest
  }
  return params_.qpc_miss_penalty;
}

void RnicDevice::wire_send(Qp& qp, const fabric::Datagram& d,
                           std::uint64_t wr_id, bool gen_send_cqe_now) {
  // DMA + (possible) QPC miss stall, then the packet hits the wire.
  const TimeNs stall = qpc_touch(qp.qpn);
  const Qpn qpn = qp.qpn;
  sched_.schedule_after(tx_delay() + stall, [this, d, wr_id, qpn,
                                             gen_send_cqe_now] {
    Qp* q = find_qp(qpn);
    if (q == nullptr || down_ || gid_index_missing_ || route_missing_) {
      return;  // QP destroyed or device unable to transmit
    }
    fabric_.send(d);
    ++counters_.tx_packets;
    if (gen_send_cqe_now) {
      // UD/UC semantics: CQE as soon as the message is on the wire (§4.2.1).
      Cqe cqe;
      cqe.qpn = qpn;
      cqe.wr_id = wr_id;
      cqe.is_send = true;
      cqe.timestamp = rnic_now();
      cqe.byte_len = d.size;
      q->cfg.on_cqe(cqe);
    }
  });
}

void RnicDevice::post_send_ud(Qpn qpn, Gid dst_gid, Qpn dst_qpn,
                              std::uint16_t src_port, Bytes size,
                              std::any payload, std::uint64_t wr_id,
                              std::uint64_t trace_id) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::out_of_range("post_send_ud: unknown QPN");
  if (qp->cfg.type != QpType::kUD) {
    throw std::logic_error("post_send_ud: not a UD QP");
  }
  if (down_ || gid_index_missing_ || route_missing_) return;  // silently lost

  const auto dst = rnic_of_gid(dst_gid);
  if (!dst) return;  // unknown GID: unroutable

  fabric::Datagram d;
  d.src = id_;
  d.dst = *dst;
  d.tuple.src_ip = ip();
  d.tuple.dst_ip = fabric_.topology().rnic(*dst).ip;
  d.tuple.src_port = src_port;
  d.size = size;
  d.src_qpn = qpn;
  d.dst_qpn = dst_qpn;
  d.trace_id = trace_id;
  d.payload = std::move(payload);
  wire_send(*qp, d, wr_id, /*gen_send_cqe_now=*/true);
}

void RnicDevice::post_send_connected(Qpn qpn, Bytes size, std::any payload,
                                     std::uint64_t wr_id) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) {
    throw std::out_of_range("post_send_connected: unknown QPN");
  }
  if (qp->cfg.type == QpType::kUD) {
    throw std::logic_error("post_send_connected: UD QP needs post_send_ud");
  }
  if (qp->state != QpState::kReadyToSend) {
    throw std::logic_error("post_send_connected: QP not connected");
  }
  if (down_ || gid_index_missing_ || route_missing_) return;

  if (qp->cfg.type == QpType::kRC) {
    qp->inflight.emplace(wr_id, PendingRcSend{wr_id, size, payload, 0});
    rc_transmit(qpn, wr_id);
    return;
  }

  // UC: fire and forget, send CQE at wire time, no reliability.
  const auto dst = rnic_of_gid(qp->remote_gid);
  if (!dst) return;
  fabric::Datagram d;
  d.src = id_;
  d.dst = *dst;
  d.tuple.src_ip = ip();
  d.tuple.dst_ip = fabric_.topology().rnic(*dst).ip;
  d.tuple.src_port = qp->src_port;
  d.size = size;
  d.src_qpn = qpn;
  d.dst_qpn = qp->remote_qpn;
  d.payload = std::move(payload);
  wire_send(*qp, d, wr_id, /*gen_send_cqe_now=*/true);
}

void RnicDevice::rc_transmit(Qpn qpn, std::uint64_t wr_id) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) return;
  auto it = qp->inflight.find(wr_id);
  if (it == qp->inflight.end()) return;  // already ACKed
  PendingRcSend& p = it->second;
  ++p.attempts;
  if (p.attempts > 1) ++counters_.rc_retransmits;

  const auto dst = rnic_of_gid(qp->remote_gid);
  if (!dst) return;
  fabric::Datagram d;
  d.src = id_;
  d.dst = *dst;
  d.tuple.src_ip = ip();
  d.tuple.dst_ip = fabric_.topology().rnic(*dst).ip;
  d.tuple.src_port = qp->src_port;
  d.size = p.size;
  d.src_qpn = qpn;
  d.dst_qpn = qp->remote_qpn;
  d.wr_tag = wr_id;
  d.payload = p.payload;
  // RC semantics: NO send CQE yet; it is generated when the hardware ACK
  // arrives (this is precisely why RC cannot observe timestamp ②).
  wire_send(*qp, d, wr_id, /*gen_send_cqe_now=*/false);
  arm_rc_timeout(qpn, wr_id);
}

void RnicDevice::arm_rc_timeout(Qpn qpn, std::uint64_t wr_id) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) return;
  const int attempt = qp->inflight.at(wr_id).attempts;
  sched_.schedule_after(qp->cfg.retransmit_timeout, [this, qpn, wr_id,
                                                     attempt] {
    Qp* q = find_qp(qpn);
    if (q == nullptr || q->state == QpState::kError) return;
    auto it = q->inflight.find(wr_id);
    if (it == q->inflight.end()) return;      // ACKed in the meantime
    if (it->second.attempts != attempt) return;  // a retransmit re-armed us
    if (it->second.attempts > q->cfg.max_retries) {
      // Retries exhausted: the connection breaks (the paper's training-task
      // failure mode under severe flapping, §7.1 #1).
      q->state = QpState::kError;
      ++counters_.rc_broken_connections;
      Cqe cqe;
      cqe.qpn = qpn;
      cqe.wr_id = wr_id;
      cqe.is_send = true;
      cqe.success = false;
      cqe.timestamp = rnic_now();
      q->cfg.on_cqe(cqe);
      if (q->cfg.on_broken) q->cfg.on_broken();
      return;
    }
    rc_transmit(qpn, wr_id);
  });
}

void RnicDevice::on_datagram(const fabric::Datagram& d) {
  if (down_) {
    ++counters_.rx_dropped_down;
    return;
  }
  if (gid_index_missing_ || route_missing_) {
    // Misconfigured RNIC cannot demultiplex RoCE traffic (§7.1 #6, #7).
    ++counters_.rx_dropped_misconfig;
    return;
  }
  // RX DMA, then demultiplex by destination QPN.
  const fabric::Datagram copy = d;
  sched_.schedule_after(rx_delay(), [this, copy] {
    Qp* qp = find_qp(copy.dst_qpn);
    if (qp == nullptr || qp->state == QpState::kError) {
      // Stale QPN: the sender used outdated communication info ("QPN
      // reset" noise, §4.3.1). Real RNICs silently drop these.
      ++counters_.rx_dropped_no_qp;
      return;
    }
    ++counters_.rx_packets;

    // RC hardware ACK handling.
    if (const auto* ack = std::any_cast<HwAck>(&copy.payload)) {
      auto it = qp->inflight.find(ack->wr_id);
      if (it != qp->inflight.end()) {
        qp->inflight.erase(it);
        // RC send CQE is generated now, at ACK arrival (§4.2.1).
        Cqe cqe;
        cqe.qpn = qp->qpn;
        cqe.wr_id = ack->wr_id;
        cqe.is_send = true;
        cqe.timestamp = rnic_now();
        qp->cfg.on_cqe(cqe);
      }
      return;
    }

    if (qp->cfg.type == QpType::kRC) {
      // Generate the hardware ACK back to the sender, mirroring the data
      // packet's source port (like real RNICs do).
      const auto src_rnic = copy.src;
      fabric::Datagram ack;
      ack.src = id_;
      ack.dst = src_rnic;
      ack.tuple.src_ip = ip();
      ack.tuple.dst_ip = copy.tuple.src_ip;
      ack.tuple.src_port = copy.tuple.src_port;
      ack.size = 64;
      ack.src_qpn = qp->qpn;
      ack.dst_qpn = copy.src_qpn;
      ack.payload = HwAck{copy.wr_tag};
      fabric_.send(ack);
    }

    Cqe cqe;
    cqe.qpn = qp->qpn;
    cqe.is_send = false;
    cqe.timestamp = rnic_now();
    cqe.src_gid = gid_of(copy.src);
    cqe.src_qpn = copy.src_qpn;
    cqe.tuple = copy.tuple;
    cqe.byte_len = copy.size;
    cqe.payload = copy.payload;
    qp->cfg.on_cqe(cqe);
  });
}

void RnicDevice::set_down(bool down) {
  down_ = down;
  // A down RNIC takes its host link with it (port down on both ends).
  fabric_.set_cable_up(fabric_.topology().rnic(id_).uplink, !down);
}

void RnicDevice::set_pcie_factor(double factor) {
  if (factor <= 0.0 || factor > 1.0) {
    throw std::invalid_argument("set_pcie_factor: factor must be in (0, 1]");
  }
  pcie_factor_ = factor;
  // The host link's fabric-facing service rate degrades with PCIe: the RNIC
  // cannot drain at line rate, queues build at the ToR (PFC storm, #13/#14).
  const auto& info = fabric_.topology().rnic(id_);
  fabric_.link_state(info.downlink).service_rate_factor = factor;
}

void RnicDevice::reset_all_qps() {
  qps_.clear();
  qpc_lru_.clear();
}

}  // namespace rpm::rnic
