// Software model of a commodity RDMA NIC.
//
// The model is deliberately faithful to the CQE-timestamp semantics that
// R-Pingmesh's measurement method depends on (§4.2.1, Table 1):
//
//  * RNICs never expose "packet sent/received at T" directly; they only
//    timestamp Completion Queue Events, using the RNIC's own free-running
//    clock (sim::DeviceClock — offset and drift are real here).
//  * UD/UC QPs generate the *send* CQE when the message hits the wire, so
//    timestamps ② (probe sent) and ④ (ACK sent) are observable.
//  * RC QPs generate the send CQE only after the hardware ACK returns, so a
//    prober using RC cannot observe ② — this is why the Agent probes with UD.
//  * Receive CQEs exist for all types: timestamps ③ and ⑤ are observable.
//
// Also modelled, because the paper's problem catalogue needs them:
//  * QPN allocation that changes when the owning process recreates QPs
//    (Agent restart → "QPN reset" probe noise, §4.3.1).
//  * A QPC cache: each active QP context occupies a slot; overflow causes
//    per-operation miss penalties (why RC/UC probing at fan-out degrades
//    service traffic, Table 1).
//  * RC retransmission: `max_retries` (7 in the paper's deployment) and a
//    retransmit timeout; exhausted retries break the connection — exactly
//    the failure mode flapping induces in training jobs (§7.1 #1).
//  * Misconfiguration flags (#6 missing RDMA route, #7 missing GID index)
//    that make the RNIC silently unreachable, and a PCIe factor (<1 after a
//    downgrade, #13/#14) that slows DMA and the fabric-facing service rate.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/five_tuple.h"
#include "common/rng.h"
#include "common/types.h"
#include "fabric/fabric.h"
#include "sim/clock.h"
#include "sim/scheduler.h"

namespace rpm::rnic {

enum class QpType : std::uint8_t { kRC, kUC, kUD };
enum class QpState : std::uint8_t { kReset, kReadyToRecv, kReadyToSend, kError };

const char* qp_type_name(QpType t);

/// Completion Queue Event. `timestamp` is a reading of the *owning RNIC's*
/// clock — comparable only with other readings of the same RNIC's clock.
struct Cqe {
  Qpn qpn;
  std::uint64_t wr_id = 0;
  bool is_send = false;
  bool success = true;
  TimeNs timestamp = 0;
  // receive-side context
  Gid src_gid;
  Qpn src_qpn;
  FiveTuple tuple;
  Bytes byte_len = 0;
  std::any payload;
};

using CqeHandler = std::function<void(const Cqe&)>;

struct QpConfig {
  QpType type = QpType::kUD;
  CqeHandler on_cqe;  // invoked for both send and receive completions
  // RC-only knobs (paper §7.1 #1: ops crank retries to the max, 7):
  int max_retries = 7;
  TimeNs retransmit_timeout = msec(4);
  std::function<void()> on_broken;  // RC retries exhausted -> QP error
};

/// Tunable physical parameters of the device.
struct RnicParams {
  TimeNs tx_dma = nsec(600);  // host memory -> wire, at full PCIe width
  TimeNs rx_dma = nsec(600);  // wire -> host memory
  std::size_t qpc_cache_slots = 256;
  TimeNs qpc_miss_penalty = usec(2);
};

/// Counters a real RNIC would expose (used by tests and the fault catalog).
struct RnicCounters {
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_dropped_no_qp = 0;       // stale QPN (QPN reset noise)
  std::uint64_t rx_dropped_misconfig = 0;   // GID index / route missing
  std::uint64_t rx_dropped_down = 0;
  std::uint64_t rc_retransmits = 0;
  std::uint64_t rc_broken_connections = 0;
  std::uint64_t qpc_cache_misses = 0;
  std::uint64_t qpc_cache_hits = 0;
};

class RnicDevice {
 public:
  RnicDevice(RnicId id, fabric::Fabric& fabric, sim::Scheduler& sched,
             sim::DeviceClock clock, Rng rng, RnicParams params = {});

  RnicDevice(const RnicDevice&) = delete;
  RnicDevice& operator=(const RnicDevice&) = delete;

  [[nodiscard]] RnicId id() const { return id_; }
  [[nodiscard]] Gid gid() const;
  [[nodiscard]] IpAddr ip() const;
  [[nodiscard]] const topo::Topology& topology() const {
    return fabric_.topology();
  }
  [[nodiscard]] const sim::DeviceClock& clock() const { return clock_; }
  [[nodiscard]] TimeNs rnic_now() const { return clock_.read(sched_.now()); }

  // ---- verbs-level operations (wrapped by src/verbs) ----

  /// Create a QP; returns its freshly allocated QPN (never reused).
  Qpn create_qp(QpConfig cfg);
  void destroy_qp(Qpn qpn);
  [[nodiscard]] bool has_qp(Qpn qpn) const;
  [[nodiscard]] QpState qp_state(Qpn qpn) const;

  /// Connect an RC/UC QP to a remote endpoint. `src_port` fixes the outer
  /// UDP source port (the verbs flow-label trick, §3.1).
  void connect_qp(Qpn qpn, Gid remote_gid, Qpn remote_qpn,
                  std::uint16_t src_port);

  /// UD send to an explicit destination (address handle + remote QPN).
  /// `trace_id` (0 = untracked) is the flight-recorder correlation key
  /// copied into the outgoing Datagram so the fabric can attribute per-hop
  /// events to a sampled probe.
  void post_send_ud(Qpn qpn, Gid dst_gid, Qpn dst_qpn, std::uint16_t src_port,
                    Bytes size, std::any payload, std::uint64_t wr_id,
                    std::uint64_t trace_id = 0);

  /// Send on a connected (RC/UC) QP.
  void post_send_connected(Qpn qpn, Bytes size, std::any payload,
                           std::uint64_t wr_id);

  // ---- fault hooks (driven by src/faults) ----

  void set_down(bool down);
  [[nodiscard]] bool is_down() const { return down_; }
  void set_gid_index_missing(bool missing) { gid_index_missing_ = missing; }
  void set_routing_config_missing(bool missing) { route_missing_ = missing; }
  /// PCIe width/speed factor in (0,1]; also degrades the fabric-facing
  /// service rate of the host link (PFC-storm precursor, §7.1 #13-#14).
  void set_pcie_factor(double factor);
  [[nodiscard]] double pcie_factor() const { return pcie_factor_; }

  /// Destroys every QP and reallocates nothing: the next create_qp calls
  /// return *new* QPNs. Models the owning process (Agent) restarting.
  void reset_all_qps();

  [[nodiscard]] const RnicCounters& counters() const { return counters_; }
  [[nodiscard]] std::size_t active_qp_count() const { return qps_.size(); }

  /// Touch the QPC cache slot of `qpn` as real traffic would; returns the
  /// added latency (0 on hit, miss penalty on miss). Exposed so benches can
  /// model service traffic sharing the cache with probing QPs.
  TimeNs qpc_touch(Qpn qpn);

 private:
  struct PendingRcSend {
    std::uint64_t wr_id = 0;
    Bytes size = 0;
    std::any payload;
    int attempts = 0;
  };

  struct Qp {
    Qpn qpn;
    QpConfig cfg;
    QpState state = QpState::kReset;
    // connected-QP context
    Gid remote_gid;
    Qpn remote_qpn;
    std::uint16_t src_port = 0;
    // RC in-flight sends keyed by wr_id
    std::unordered_map<std::uint64_t, PendingRcSend> inflight;
  };

  /// Tag carried by RC hardware ACK datagrams.
  struct HwAck {
    std::uint64_t wr_id;
  };

  void on_datagram(const fabric::Datagram& d);
  void wire_send(Qp& qp, const fabric::Datagram& d, std::uint64_t wr_id,
                 bool gen_send_cqe_now);
  void rc_transmit(Qpn qpn, std::uint64_t wr_id);
  void arm_rc_timeout(Qpn qpn, std::uint64_t wr_id);
  [[nodiscard]] TimeNs tx_delay() const;
  [[nodiscard]] TimeNs rx_delay() const;
  Qp* find_qp(Qpn qpn);

  RnicId id_;
  fabric::Fabric& fabric_;
  sim::Scheduler& sched_;
  sim::DeviceClock clock_;
  Rng rng_;
  RnicParams params_;

  bool down_ = false;
  bool gid_index_missing_ = false;
  bool route_missing_ = false;
  double pcie_factor_ = 1.0;

  std::uint32_t next_qpn_ = 0x100;  // QPNs start above reserved range
  std::unordered_map<std::uint32_t, Qp> qps_;
  std::vector<Qpn> qpc_lru_;  // front = coldest
  RnicCounters counters_;
};

/// Derives the Gid deterministically from an RnicId (and vice versa), the
/// simulator's stand-in for GID assignment.
Gid gid_of(RnicId id);
std::optional<RnicId> rnic_of_gid(Gid gid);

}  // namespace rpm::rnic
