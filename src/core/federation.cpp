#include "core/federation.h"

#include <algorithm>
#include <any>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "obs/flight_recorder.h"
#include "prof/prof.h"
#include "telemetry/trace.h"

namespace rpm::core {

namespace {

// Digest flight traces live far above the probe id space (probes count up
// from 1; sketch reports use bit 62). The global tier reconstructs the same
// id from (pod, seq), so its kDigestMerge event lands on the timeline the
// pod opened at flush — one causal story per digest.
constexpr std::uint64_t kDigestTraceBase = 1ull << 61;

std::uint64_t digest_trace_id(std::uint32_t pod, std::uint64_t seq) {
  return kDigestTraceBase | (static_cast<std::uint64_t>(pod) << 32) |
         (seq & 0xFFFFFFFFull);
}

void add_threshold(obs::EvidenceChain& c, const char* name, double threshold,
                   double observed) {
  c.thresholds.push_back({name, threshold, observed, observed > threshold});
}

void add_probe(obs::EvidenceChain& c, std::uint64_t id) {
  ++c.total_probes;
  if (c.probe_ids.size() < obs::kEvidenceProbeIdCap) c.probe_ids.push_back(id);
}

}  // namespace

// ---------------------------------------------------------------------------
// PodAnalyzer
// ---------------------------------------------------------------------------

PodAnalyzer::PodAnalyzer(const topo::Topology& topo,
                         const Controller& controller,
                         sim::Scheduler& sched, AnalyzerConfig cfg,
                         std::uint32_t pod, std::vector<HostId> hosts)
    : pod_(pod),
      hosts_(std::move(hosts)),
      role_("pod" + std::to_string(pod)),
      analyzer_(topo, controller, sched, std::move(cfg)) {
  if (hosts_.empty()) {
    throw std::invalid_argument("PodAnalyzer: empty host set");
  }
  for (HostId h : hosts_) scratch_.local_hosts.insert(h.value);
  analyzer_.set_federation_scratch(&scratch_);
  analyzer_.set_period_hook(
      [this](const PeriodReport& rep, const obs::DiagnosisLog& dlog) {
        on_period(rep, dlog);
      });
  analyzer_.set_checkpoint_hook(
      [this](AnalyzerCheckpoint& cp) { cp.digest_seq = seq_; });
  // PodAnalyzers exist only in federated deployments (pods >= 2), so these
  // series never appear in a flat run's scrape.
  auto& reg = telemetry::registry();
  digests_total_ =
      reg.counter("rpm_pod_digests_total", "PodDigests flushed by this pod",
                  {{"pod", std::to_string(pod_)}});
  digest_bytes_total_ = reg.counter("rpm_pod_digest_bytes_total",
                                    "Declared wire bytes of flushed digests",
                                    {{"pod", std::to_string(pod_)}});
}

void PodAnalyzer::on_period(const PeriodReport& rep,
                            const obs::DiagnosisLog& dlog) {
  prof::StageScope prof_scope(prof::Stage::kDigestFlush);
  PodDigest d;
  d.pod = pod_;
  d.seq = ++seq_;
  d.period_start = rep.period_start;
  d.period_end = rep.period_end;
  d.records_processed = rep.records_processed;
  d.problems = rep.problems;
  d.chains = dlog.chains;
  d.timeouts_host_down = rep.timeouts_host_down;
  d.timeouts_qpn_reset = rep.timeouts_qpn_reset;
  d.timeouts_agent_cpu = rep.timeouts_agent_cpu;
  d.timeouts_rnic = rep.timeouts_rnic;
  d.timeouts_switch = rep.timeouts_switch;
  // The scratch outputs are rebuilt by the next analyze pass — move, don't
  // copy.
  d.down_hosts = std::move(scratch_.down_hosts);
  d.blamed_rnics = std::move(scratch_.blamed_rnics);
  d.cpu_noise_hosts = std::move(scratch_.cpu_noise_hosts);
  d.foreign = std::move(scratch_.foreign);
  d.cluster_sla = std::move(scratch_.cluster_sla);
  d.service_slas = std::move(scratch_.service_slas);
  d.service_nets = std::move(scratch_.service_nets);

  const std::size_t bytes = pod_digest_wire_bytes(d);
  bytes_sent_ += bytes;
  digests_total_.inc();
  digest_bytes_total_.inc(static_cast<double>(bytes));

  obs::FlightRecorder& fr = obs::recorder();
  if (fr.enabled()) {
    const std::uint64_t trace = digest_trace_id(pod_, d.seq);
    if (fr.begin_probe(trace, "pod-digest",
                       static_cast<std::uint64_t>(d.period_end))) {
      fr.record(trace, obs::ProbeEventKind::kDigestFlush, d.seq,
                d.problems.size());
    }
  }

  if (channel_ != nullptr) {
    channel_->send(std::any(std::move(d)), bytes);
  }
}

void PodAnalyzer::attach_journal(StateJournal* journal) {
  journal_ = journal;
  analyzer_.attach_journal(journal, role_);
}

void PodAnalyzer::crash() {
  analyzer_.crash();
  seq_ = 0;  // lost with the process; restart_from_journal reloads it
}

bool PodAnalyzer::restart_from_journal() {
  if (journal_ != nullptr) {
    if (const auto cp = journal_->load_checkpoint(role_)) {
      seq_ = cp->digest_seq;
    }
  }
  return analyzer_.restore_from_journal();
}

// ---------------------------------------------------------------------------
// GlobalAnalyzer
// ---------------------------------------------------------------------------

GlobalAnalyzer::GlobalAnalyzer(const topo::Topology& topo,
                               sim::Scheduler& sched, Config cfg)
    : topo_(topo), sched_(sched), cfg_(std::move(cfg)) {
  if (cfg_.analyzer.period <= 0) {
    throw std::invalid_argument("GlobalAnalyzer: period must be positive");
  }
  if (cfg_.digest_dedup_window == 0) {
    throw std::invalid_argument(
        "GlobalAnalyzer: digest_dedup_window must be positive");
  }
  // Federated deployments only — never present in a flat scrape.
  auto& reg = telemetry::registry();
  merges_total_ = reg.counter("rpm_global_merges_total",
                              "Global merge passes completed");
  digests_merged_total_ = reg.counter(
      "rpm_global_digests_merged_total",
      "PodDigests folded into global merges (first deliveries only)");
}

void GlobalAnalyzer::ingest_digest(PodDigest&& d) {
  if (outage_) return;  // a blacked-out merge tier hears nothing
  DedupState& st = digest_dedup_[d.pod];
  if (!dedup_accept(st, d.seq, cfg_.digest_dedup_window)) {
    ++duplicate_digests_;
    return;
  }
  pending_.push_back(std::move(d));
}

void GlobalAnalyzer::register_service(ServiceBinding binding) {
  services_.push_back(std::move(binding));
}

void GlobalAnalyzer::start() {
  if (merge_task_) return;
  merge_task_ = std::make_unique<sim::PeriodicTask>(
      sched_, cfg_.analyzer.period, [this] {
        if (!outage_) merge_now();
      });
  // Offset past the pods' period boundary so in-flight digests land first.
  merge_task_->start(cfg_.analyzer.period + cfg_.merge_offset);
}

void GlobalAnalyzer::stop() {
  if (merge_task_) merge_task_->cancel();
  merge_task_.reset();
}

void GlobalAnalyzer::set_outage(bool outage) {
  if (outage_ == outage) return;
  outage_ = outage;
  if (outage_) {
    pending_.clear();
    telemetry::tracer().instant("global-analyzer-outage-begin", "control");
    return;
  }
  telemetry::tracer().instant("global-analyzer-outage-end", "control");
  // The blackout never reads as a giant merge period.
  last_period_end_ = sched_.now();
}

void GlobalAnalyzer::attach_journal(StateJournal* journal) {
  journal_ = journal;
}

void GlobalAnalyzer::crash() {
  telemetry::tracer().instant("global-analyzer-crash", "control");
  outage_ = true;
  pending_.clear();
  digest_dedup_.clear();
  history_.clear();
  diagnosis_.clear();
  next_evidence_id_ = 1;
  next_problem_id_ = 1;
  last_period_end_ = 0;
}

bool GlobalAnalyzer::restart_from_journal() {
  std::optional<AnalyzerCheckpoint> cp;
  if (journal_ != nullptr) cp = journal_->load_checkpoint("global");
  if (cp.has_value()) {
    next_problem_id_ = cp->next_problem_id;
    next_evidence_id_ = cp->next_evidence_id;
    digest_dedup_.clear();
    for (const IngestCheckpoint::HostWindow& hw : cp->digest_dedup.hosts) {
      DedupState st;
      st.max_seq = hw.max_seq;
      st.seen.insert(hw.seen.begin(), hw.seen.end());
      digest_dedup_.emplace(hw.host, std::move(st));
    }
  }
  outage_ = false;
  // Fresh boundary either way — downtime is not a merge period.
  last_period_end_ = sched_.now();
  telemetry::tracer().instant("global-analyzer-restart", "control");
  return cp.has_value();
}

void GlobalAnalyzer::save_checkpoint() {
  if (journal_ == nullptr) return;
  AnalyzerCheckpoint cp;
  cp.last_period_end = last_period_end_;
  cp.next_problem_id = next_problem_id_;
  cp.next_evidence_id = next_evidence_id_;
  std::vector<std::uint32_t> pods;
  pods.reserve(digest_dedup_.size());
  for (const auto& [pod, st] : digest_dedup_) pods.push_back(pod);
  std::sort(pods.begin(), pods.end());
  for (std::uint32_t pod : pods) {
    const DedupState& st = digest_dedup_.at(pod);
    IngestCheckpoint::HostWindow hw;
    hw.host = pod;  // "host" slot carries the pod id for digest windows
    hw.max_seq = st.max_seq;
    hw.seen.assign(st.seen.begin(), st.seen.end());
    std::sort(hw.seen.begin(), hw.seen.end());
    cp.digest_dedup.hosts.push_back(std::move(hw));
  }
  journal_->save_checkpoint("global", cp);
}

void GlobalAnalyzer::vote_foreign(
    const std::vector<const ForeignTimeout*>& evidence, Problem& p,
    obs::EvidenceChain& c) const {
  // Algorithm 1 over the flattened fwd+rev paths the pods shipped — the
  // global counterpart of AnalysisCore::vote_paths, same winner/tie rules.
  std::unordered_map<std::uint32_t, std::size_t> link_votes;
  std::unordered_map<std::uint32_t, std::size_t> switch_votes;
  for (const ForeignTimeout* f : evidence) {
    if (!f->path_known) continue;
    for (std::uint32_t l : f->path_links) ++link_votes[l];
    for (std::uint32_t s : f->path_switches) ++switch_votes[s];
  }
  std::size_t best_link = 0;
  for (const auto& [_, v] : link_votes) best_link = std::max(best_link, v);
  for (const auto& [l, v] : link_votes) {
    if (v == best_link && best_link > 0) p.suspect_links.push_back(LinkId{l});
  }
  std::size_t best_switch = 0;
  for (const auto& [_, v] : switch_votes) {
    best_switch = std::max(best_switch, v);
  }
  for (const auto& [s, v] : switch_votes) {
    if (v == best_switch && best_switch > 0) {
      p.suspect_switches.push_back(SwitchId{s});
    }
  }
  std::sort(p.suspect_links.begin(), p.suspect_links.end());
  std::sort(p.suspect_switches.begin(), p.suspect_switches.end());
  std::vector<std::pair<LinkId, std::size_t>> all;
  all.reserve(link_votes.size());
  for (const auto& [l, v] : link_votes) all.emplace_back(LinkId{l}, v);
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > 10) all.resize(10);
  p.top_link_votes = std::move(all);
  static constexpr std::size_t kTallyCap = 64;
  const auto fill =
      [](const std::unordered_map<std::uint32_t, std::size_t>& votes,
         std::vector<obs::VoteCount>& out) {
        out.reserve(std::min(votes.size(), kTallyCap));
        for (const auto& [id, v] : votes) out.push_back({id, v});
        std::sort(out.begin(), out.end(),
                  [](const obs::VoteCount& a, const obs::VoteCount& b) {
                    if (a.votes != b.votes) return a.votes > b.votes;
                    return a.id < b.id;
                  });
        if (out.size() > kTallyCap) out.resize(kTallyCap);
      };
  fill(link_votes, c.link_votes);
  fill(switch_votes, c.switch_votes);
}

const PeriodReport& GlobalAnalyzer::merge_now() {
  // A global merge is the federation tier's period close: same watchdog,
  // with the merge itself as a profiled stage inside it.
  prof::PeriodCloseScope close_scope;
  prof::StageScope merge_scope(prof::Stage::kGlobalMerge);
  const TimeNs now = sched_.now();
  std::vector<PodDigest> digests = std::move(pending_);
  pending_.clear();
  // Deterministic merge order regardless of transport interleaving.
  std::sort(digests.begin(), digests.end(),
            [](const PodDigest& a, const PodDigest& b) {
              if (a.pod != b.pod) return a.pod < b.pod;
              return a.seq < b.seq;
            });

  PeriodReport rep;
  rep.period_start = last_period_end_;
  rep.period_end = now;
  last_period_end_ = now;

  obs::DiagnosisLog dlog;
  dlog.period_start = rep.period_start;
  dlog.period_end = rep.period_end;

  ++merges_;
  merges_total_.inc();
  digests_merged_total_.inc(static_cast<double>(digests.size()));
  const std::uint64_t span =
      telemetry::tracer().begin_span("global.merge", "analyzer");

  obs::FlightRecorder& fr = obs::recorder();
  for (const PodDigest& d : digests) {
    rep.records_processed += d.records_processed;
    rep.timeouts_host_down += d.timeouts_host_down;
    rep.timeouts_qpn_reset += d.timeouts_qpn_reset;
    rep.timeouts_agent_cpu += d.timeouts_agent_cpu;
    rep.timeouts_rnic += d.timeouts_rnic;
    rep.timeouts_switch += d.timeouts_switch;
    if (fr.enabled()) {
      fr.record(digest_trace_id(d.pod, d.seq),
                obs::ProbeEventKind::kDigestMerge, d.pod, d.seq);
    }
  }

  // ---- union of pod liveness/blame state ----
  std::unordered_set<std::uint32_t> down;
  std::unordered_map<std::uint32_t, TimeNs> blamed;  // rnic -> max until
  std::unordered_set<std::uint32_t> cpu_noise;
  for (const PodDigest& d : digests) {
    for (std::uint32_t h : d.down_hosts) down.insert(h);
    for (const auto& [r, until] : d.blamed_rnics) {
      TimeNs& u = blamed[r];
      u = std::max(u, until);
    }
    for (std::uint32_t h : d.cpu_noise_hosts) cpu_noise.insert(h);
  }

  // ---- triage of the deferred foreign timeouts ----
  // A pod could not tell whether a timeout to another pod's host was the
  // host dying, its RNIC, or the fabric; with every pod's down-host and
  // blame state unioned, the global tier re-runs the §4.3.1 branch.
  std::vector<const ForeignTimeout*> foreign_cluster;
  std::map<std::uint32_t, std::vector<const ForeignTimeout*>> foreign_service;
  std::size_t foreign_rnic_drops = 0;
  std::size_t foreign_switch_drops = 0;
  std::map<std::uint32_t, std::pair<std::size_t, std::size_t>>
      foreign_svc_drops;  // service -> {rnic, switch} drops
  std::vector<std::uint64_t> foreign_drop_ids;  // SLA evidence sample
  for (const PodDigest& d : digests) {
    for (const ForeignTimeout& f : d.foreign) {
      if (down.contains(f.target_host.value)) {
        // The owning pod's digest already carries the host-down Problem;
        // here the probe just stops polluting network attribution.
        ++rep.timeouts_host_down;
        continue;
      }
      if (cpu_noise.contains(f.target_host.value) ||
          cpu_noise.contains(f.prober_host.value)) {
        // The owning pod's Fig. 6 filter flagged the host: the service is
        // starving its Agent, so cross-pod probes to it time out without
        // any fabric fault. The pod's digest already carries the noise
        // verdict — here the probe just stays out of Algorithm-1 voting.
        ++rep.timeouts_agent_cpu;
        continue;
      }
      const auto bt = blamed.find(f.target.value);
      const auto bp = blamed.find(f.prober.value);
      const bool rnic_blamed =
          (bt != blamed.end() && bt->second >= rep.period_start) ||
          (bp != blamed.end() && bp->second >= rep.period_start);
      if (rnic_blamed) {
        ++rep.timeouts_rnic;
        ++foreign_rnic_drops;
        foreign_drop_ids.push_back(f.probe_id);
        if (f.kind == ProbeKind::kServiceTracing) {
          ++foreign_svc_drops[f.service.value].first;
        }
        continue;
      }
      ++rep.timeouts_switch;
      ++foreign_switch_drops;
      foreign_drop_ids.push_back(f.probe_id);
      if (f.kind == ProbeKind::kServiceTracing) {
        ++foreign_svc_drops[f.service.value].second;
        foreign_service[f.service.value].push_back(&f);
      } else {
        foreign_cluster.push_back(&f);
      }
    }
  }

  // ---- collect pod verdicts, re-id'd into the global evidence space ----
  struct PendingProblem {
    Problem p;               // evidence ref already remapped
    std::size_t chain_idx;   // its chain's index in dlog.chains
    bool merged = false;
  };
  std::vector<PendingProblem> pool;
  constexpr std::size_t kNoChain = static_cast<std::size_t>(-1);
  for (PodDigest& d : digests) {
    std::unordered_map<std::uint64_t, std::uint64_t> ev_map;
    std::unordered_map<std::uint64_t, std::size_t> chain_by_ev;
    for (obs::EvidenceChain& c : d.chains) {
      const std::uint64_t new_id = next_evidence_id_++;
      ev_map[c.id] = new_id;
      c.id = new_id;
      // Re-linked below for problems that survive the merge; pod-local SLA
      // and innocent verdicts stay as supporting evidence.
      c.problem_id = 0;
      chain_by_ev[new_id] = dlog.chains.size();
      dlog.chains.push_back(std::move(c));
    }
    for (Problem& p : d.problems) {
      PendingProblem pp;
      pp.p = std::move(p);
      pp.p.problem_id = 0;
      pp.chain_idx = kNoChain;
      if (pp.p.evidence.valid()) {
        const auto it = ev_map.find(pp.p.evidence.id);
        pp.p.evidence.id = it == ev_map.end() ? 0 : it->second;
        const auto cit = chain_by_ev.find(pp.p.evidence.id);
        if (cit != chain_by_ev.end()) pp.chain_idx = cit->second;
      }
      pool.push_back(std::move(pp));
    }
  }

  // ---- vote the foreign switch evidence (cross-pod Algorithm 1) ----
  const auto emit_foreign = [&](std::vector<const ForeignTimeout*>& ev,
                                bool from_service, ServiceId svc) {
    if (ev.size() < cfg_.analyzer.min_anomalies_for_problem) return;
    PendingProblem pp;
    Problem& p = pp.p;
    p.category = ProblemCategory::kSwitchNetworkProblem;
    p.anomalous_probes = ev.size();
    p.detected_by_service_tracing = from_service;
    p.service = svc;
    obs::EvidenceChain c;
    c.verdict = "switch-network-problem";
    c.triage_branch = "global: cross-pod foreign-timeout voting";
    c.service = svc.valid() ? svc.value : 0;
    add_threshold(c, "min_anomalies_for_problem",
                  static_cast<double>(cfg_.analyzer.min_anomalies_for_problem),
                  static_cast<double>(ev.size()));
    for (const ForeignTimeout* f : ev) add_probe(c, f->probe_id);
    vote_foreign(ev, p, c);
    std::ostringstream os;
    os << "switch network problem (" << ev.size()
       << " anomalous cross-pod probes"
       << (from_service ? ", service tracing" : ", cluster monitoring") << ")";
    if (!p.suspect_links.empty()) {
      os << ", top suspect link: " << topo_.link(p.suspect_links.front()).name;
    }
    p.summary = os.str();
    c.id = next_evidence_id_++;
    c.summary = p.summary;
    p.evidence.id = c.id;
    pp.chain_idx = dlog.chains.size();
    dlog.chains.push_back(std::move(c));
    pool.push_back(std::move(pp));
  };
  emit_foreign(foreign_cluster, false, ServiceId{});
  for (auto& [svc, ev] : foreign_service) {
    emit_foreign(ev, true, ServiceId{svc});
  }

  // ---- cross-pod merge of same-fault verdicts ----
  // Two pods looking at one broken spine link each vote it from their own
  // evidence; the operator wants ONE problem with the union tally. Grouping:
  // voted categories (switch problem / high RTT) merge by suspect-link
  // overlap (connected components) when cluster-scoped and by service when
  // service-traced; host-/RNIC-scoped categories merge by their location;
  // QPN-reset noise merges wholesale.
  const auto merge_group = [&](std::vector<std::size_t>& members) {
    PendingProblem& first = pool[members.front()];
    Problem m;
    m.category = first.p.category;
    m.rnic = first.p.rnic;
    m.host = first.p.host;
    m.service = first.p.service;
    m.detected_by_service_tracing = first.p.detected_by_service_tracing;
    m.priority = first.p.priority;
    obs::EvidenceChain c;
    c.verdict = dlog.chains[first.chain_idx].verdict;
    c.triage_branch = "global-merge: cross-pod vote union";
    c.service = m.service.valid() ? m.service.value : 0;
    std::map<std::uint32_t, std::size_t> link_votes;
    std::map<std::uint32_t, std::size_t> switch_votes;
    for (std::size_t idx : members) {
      PendingProblem& pp = pool[idx];
      pp.merged = true;
      m.anomalous_probes += pp.p.anomalous_probes;
      // Most severe wins (P0 < P1 < ... numerically); the impact pass below
      // re-derives it for non-noise problems anyway.
      m.priority = std::min(m.priority, pp.p.priority);
      if (pp.chain_idx == kNoChain) continue;
      const obs::EvidenceChain& mc = dlog.chains[pp.chain_idx];
      for (std::uint64_t id : mc.probe_ids) add_probe(c, id);
      c.total_probes += mc.total_probes - mc.probe_ids.size();
      for (const obs::VoteCount& v : mc.link_votes) link_votes[v.id] += v.votes;
      for (const obs::VoteCount& v : mc.switch_votes) {
        switch_votes[v.id] += v.votes;
      }
    }
    std::size_t best_link = 0;
    for (const auto& [_, v] : link_votes) best_link = std::max(best_link, v);
    for (const auto& [l, v] : link_votes) {
      if (v == best_link && best_link > 0) m.suspect_links.push_back(LinkId{l});
    }
    std::size_t best_switch = 0;
    for (const auto& [_, v] : switch_votes) {
      best_switch = std::max(best_switch, v);
    }
    for (const auto& [s, v] : switch_votes) {
      if (v == best_switch && best_switch > 0) {
        m.suspect_switches.push_back(SwitchId{s});
      }
    }
    std::vector<std::pair<LinkId, std::size_t>> all;
    all.reserve(link_votes.size());
    for (const auto& [l, v] : link_votes) all.emplace_back(LinkId{l}, v);
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (all.size() > 10) all.resize(10);
    m.top_link_votes = std::move(all);
    const auto fill = [](const std::map<std::uint32_t, std::size_t>& votes,
                         std::vector<obs::VoteCount>& out) {
      static constexpr std::size_t kTallyCap = 64;
      out.reserve(std::min(votes.size(), kTallyCap));
      for (const auto& [id, v] : votes) out.push_back({id, v});
      std::sort(out.begin(), out.end(),
                [](const obs::VoteCount& a, const obs::VoteCount& b) {
                  if (a.votes != b.votes) return a.votes > b.votes;
                  return a.id < b.id;
                });
      if (out.size() > kTallyCap) out.resize(kTallyCap);
    };
    fill(link_votes, c.link_votes);
    fill(switch_votes, c.switch_votes);
    std::ostringstream os;
    os << "global-merge: " << problem_category_name(m.category) << " across "
       << members.size() << " pod reports (" << m.anomalous_probes
       << " anomalous probes)";
    if (!m.suspect_links.empty()) {
      os << ", top suspect link: " << topo_.link(m.suspect_links.front()).name;
    }
    m.summary = os.str();
    add_threshold(c, "min_anomalies_for_problem",
                  static_cast<double>(cfg_.analyzer.min_anomalies_for_problem),
                  static_cast<double>(m.anomalous_probes));
    c.id = next_evidence_id_++;
    c.summary = m.summary;
    m.evidence.id = c.id;
    PendingProblem pp;
    pp.p = std::move(m);
    pp.chain_idx = dlog.chains.size();
    dlog.chains.push_back(std::move(c));
    return pp;
  };

  const auto links_overlap = [](const std::vector<LinkId>& a,
                                const std::vector<LinkId>& b) {
    for (LinkId x : a) {
      for (LinkId y : b) {
        if (x == y) return true;
      }
    }
    return false;
  };
  const auto same_scope_key = [](const Problem& a, const Problem& b) {
    if (a.category != b.category) return false;
    switch (a.category) {
      case ProblemCategory::kSwitchNetworkProblem:
      case ProblemCategory::kHighNetworkRtt:
        // Handled by the link-overlap pass below.
        return false;
      case ProblemCategory::kHostDown:
      case ProblemCategory::kHighProcessingDelay:
      case ProblemCategory::kAgentCpuNoise:
        return a.host == b.host;
      case ProblemCategory::kRnicProblem:
        return a.rnic == b.rnic;
      case ProblemCategory::kQpnResetNoise:
        return true;
    }
    return false;
  };

  std::vector<PendingProblem> merged_out;
  std::vector<bool> consumed(pool.size(), false);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (consumed[i]) continue;
    const Problem& pi = pool[i].p;
    std::vector<std::size_t> members{i};
    const bool voted_cat =
        pi.category == ProblemCategory::kSwitchNetworkProblem ||
        pi.category == ProblemCategory::kHighNetworkRtt;
    if (voted_cat && !pi.detected_by_service_tracing) {
      // Connected component by suspect-link overlap (transitive: a shared
      // link chains reports together even when the endpoints differ).
      std::vector<LinkId> component_links = pi.suspect_links;
      bool grew = true;
      while (grew) {
        grew = false;
        for (std::size_t j = i + 1; j < pool.size(); ++j) {
          if (consumed[j]) continue;
          const Problem& pj = pool[j].p;
          if (pj.category != pi.category || pj.detected_by_service_tracing) {
            continue;
          }
          if (std::find(members.begin(), members.end(), j) != members.end()) {
            continue;
          }
          if (!links_overlap(component_links, pj.suspect_links)) continue;
          members.push_back(j);
          for (LinkId l : pj.suspect_links) component_links.push_back(l);
          grew = true;
        }
      }
    } else if (voted_cat) {
      for (std::size_t j = i + 1; j < pool.size(); ++j) {
        if (consumed[j]) continue;
        const Problem& pj = pool[j].p;
        if (pj.category == pi.category && pj.detected_by_service_tracing &&
            pj.service == pi.service) {
          members.push_back(j);
        }
      }
    } else {
      for (std::size_t j = i + 1; j < pool.size(); ++j) {
        if (!consumed[j] && same_scope_key(pi, pool[j].p)) members.push_back(j);
      }
    }
    for (std::size_t m : members) consumed[m] = true;
    if (members.size() == 1) {
      merged_out.push_back(std::move(pool[i]));
    } else {
      merged_out.push_back(merge_group(members));
    }
  }

  for (PendingProblem& pp : merged_out) {
    pp.p.problem_id = next_problem_id_++;
    if (pp.chain_idx != kNoChain) {
      dlog.chains[pp.chain_idx].problem_id = pp.p.problem_id;
    }
    rep.problems.push_back(std::move(pp.p));
  }

  // ---- cluster / service SLA tables from the mergeable digests ----
  // Exact counts + DDSketch tails merge associatively, so the table is the
  // same no matter how the fleet is podded; the foreign timeouts the global
  // tier just attributed add their drop classification on top.
  SlaDigest cluster;
  for (const PodDigest& d : digests) cluster.merge(d.cluster_sla);
  cluster.rnic_drops += foreign_rnic_drops;
  cluster.switch_drops += foreign_switch_drops;
  rep.cluster_sla = cluster.to_report();
  std::map<std::uint32_t, SlaDigest> svc_slas;
  for (const PodDigest& d : digests) {
    for (const auto& [svc, sd] : d.service_slas) svc_slas[svc].merge(sd);
  }
  for (auto& [svc, drops] : foreign_svc_drops) {
    svc_slas[svc].rnic_drops += drops.first;
    svc_slas[svc].switch_drops += drops.second;
  }
  for (auto& [svc, sd] : svc_slas) {
    rep.service_slas.emplace_back(ServiceId{svc}, sd.to_report());
  }
  if (rep.cluster_sla.rnic_drop_rate > 0.0 ||
      rep.cluster_sla.switch_drop_rate > 0.0) {
    obs::EvidenceChain c;
    c.id = next_evidence_id_++;
    c.verdict = "sla-violation";
    c.triage_branch = "sla: network-attributed drop rate above target";
    add_threshold(c, "network_drop_rate_target", 0.0,
                  rep.cluster_sla.rnic_drop_rate +
                      rep.cluster_sla.switch_drop_rate);
    add_threshold(c, "high_rtt_threshold_ns",
                  static_cast<double>(cfg_.analyzer.high_rtt_threshold),
                  rep.cluster_sla.rtt_p99);
    c.total_probes = rep.cluster_sla.probes;
    for (std::uint64_t id : foreign_drop_ids) {
      if (c.probe_ids.size() >= obs::kEvidenceProbeIdCap) break;
      c.probe_ids.push_back(id);
    }
    std::ostringstream os;
    os << "cluster SLA violated: network-attributed drop rate "
       << (rep.cluster_sla.rnic_drop_rate + rep.cluster_sla.switch_drop_rate)
       << " over " << rep.cluster_sla.probes << " probes";
    c.summary = os.str();
    rep.cluster_sla.evidence.id = c.id;
    dlog.chains.push_back(std::move(c));
  }

  // ---- impact (§4.3.4) against the union service networks ----
  struct Net {
    std::set<std::uint32_t> links;
    std::set<std::uint32_t> rnics;
    std::set<std::uint32_t> hosts;
  };
  std::map<std::uint32_t, Net> nets;
  for (const PodDigest& d : digests) {
    for (const ServiceNetDigest& sn : d.service_nets) {
      Net& n = nets[sn.service];
      n.links.insert(sn.links.begin(), sn.links.end());
      n.rnics.insert(sn.rnics.begin(), sn.rnics.end());
      n.hosts.insert(sn.hosts.begin(), sn.hosts.end());
    }
  }
  for (Problem& p : rep.problems) {
    if (p.priority == Priority::kNoise) continue;
    ServiceId affected;
    if (p.detected_by_service_tracing) {
      affected = p.service;
    } else {
      for (const auto& [svc, net] : nets) {
        const bool rnic_hit = p.rnic.valid() && net.rnics.contains(p.rnic.value);
        const bool host_hit = !p.rnic.valid() && p.host.valid() &&
                              net.hosts.contains(p.host.value);
        bool link_hit = false;
        for (LinkId l : p.suspect_links) {
          if (net.links.contains(l.value)) {
            link_hit = true;
            break;
          }
        }
        if (rnic_hit || host_hit || link_hit) {
          affected = ServiceId{svc};
          break;
        }
      }
    }
    if (!affected.valid()) {
      p.priority = Priority::kP2;
      continue;
    }
    p.in_service_network = true;
    p.service = affected;
    double metric = 1.0;
    for (const ServiceBinding& b : services_) {
      if (b.id == affected) metric = b.metric();
    }
    p.priority = metric < cfg_.analyzer.degradation_threshold ? Priority::kP0
                                                              : Priority::kP1;
  }

  for (const ServiceBinding& b : services_) {
    bool guilty = false;
    for (const Problem& p : rep.problems) {
      if ((p.priority == Priority::kP0 || p.priority == Priority::kP1) &&
          p.service == b.id) {
        guilty = true;
        break;
      }
    }
    if (guilty) continue;
    obs::EvidenceChain c;
    c.id = next_evidence_id_++;
    c.verdict = "network-innocent";
    c.triage_branch = "impact: no P0/P1 problem inside the service network";
    c.service = b.id.value;
    add_threshold(c, "degradation_threshold",
                  cfg_.analyzer.degradation_threshold, b.metric());
    c.summary = "network innocent for service " + std::to_string(b.id.value) +
                " this period";
    dlog.chains.push_back(std::move(c));
  }

  telemetry::tracer().end_span(span);

  history_.push_back(std::move(rep));
  while (history_.size() > cfg_.analyzer.history_limit) history_.pop_front();
  diagnosis_.push_back(std::move(dlog));
  while (diagnosis_.size() > cfg_.analyzer.history_limit) {
    if (journal_ != nullptr) {
      journal_->archive("global", std::move(diagnosis_.front()));
    }
    diagnosis_.pop_front();
  }
  save_checkpoint();
  return history_.back();
}

bool GlobalAnalyzer::network_innocent(ServiceId service) const {
  const PeriodReport* rep = last_report();
  if (rep == nullptr) return true;
  for (const Problem& p : rep->problems) {
    if ((p.priority == Priority::kP0 || p.priority == Priority::kP1) &&
        p.service == service) {
      return false;
    }
  }
  return true;
}

std::string GlobalAnalyzer::explain(std::uint64_t problem_id) const {
  for (auto it = diagnosis_.rbegin(); it != diagnosis_.rend(); ++it) {
    if (const obs::EvidenceChain* c = it->find_problem(problem_id)) {
      return obs::to_json(*c);
    }
  }
  if (journal_ != nullptr) {
    if (const obs::EvidenceChain* c =
            journal_->find_problem("global", problem_id)) {
      return obs::to_json(*c);
    }
  }
  return {};
}

const obs::EvidenceChain* GlobalAnalyzer::evidence(EvidenceRef ref) const {
  if (!ref.valid()) return nullptr;
  for (auto it = diagnosis_.rbegin(); it != diagnosis_.rend(); ++it) {
    if (const obs::EvidenceChain* c = it->find(ref.id)) return c;
  }
  if (journal_ != nullptr) return journal_->find_evidence("global", ref.id);
  return nullptr;
}

}  // namespace rpm::core
