// Shared vocabulary of the R-Pingmesh system: probe records, pinglists,
// communication info, problems, priorities, SLA reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/five_tuple.h"
#include "common/types.h"
#include "routing/ecmp.h"
#include "sketch/sketch.h"

namespace rpm::core {

/// Which probing task produced a probe (§3.2).
enum class ProbeKind : std::uint8_t {
  kTorMesh,         // Cluster Monitoring: all RNICs under the same ToR
  kInterTor,        // Cluster Monitoring: Equation-1-sized cross-ToR tuples
  kServiceTracing,  // probes reusing live service-flow 5-tuples
};

const char* probe_kind_name(ProbeKind k);

enum class ProbeStatus : std::uint8_t { kOk, kTimeout };

/// Latest communication info of an Agent-managed RNIC, as stored by the
/// Controller (§4.1). The QPN changes whenever the Agent (re)starts.
struct RnicCommInfo {
  RnicId rnic;
  IpAddr ip;
  Gid gid;
  Qpn qpn;
};

/// One entry of a pinglist: whom to probe and with which 5-tuple.
struct PinglistEntry {
  RnicId target;
  Gid target_gid;
  Qpn target_qpn;
  FiveTuple tuple;  // src_port chosen by the Controller / service monitor
  ProbeKind kind = ProbeKind::kTorMesh;
  ServiceId service;  // valid for service-tracing entries
};

/// A pinglist plus the probing cadence the Controller computed for it.
struct Pinglist {
  std::vector<PinglistEntry> entries;
  TimeNs probe_interval = msec(100);
};

/// One probe's outcome, as uploaded by the Agent to the Analyzer (§4.2.3).
struct ProbeRecord {
  std::uint64_t id = 0;
  ProbeKind kind = ProbeKind::kTorMesh;
  RnicId prober;
  RnicId target;
  HostId prober_host;
  FiveTuple tuple;
  Qpn target_qpn;       // the QPN the probe addressed (QPN-reset detection)
  ServiceId service;    // service-tracing probes only
  TimeNs sent_at = 0;   // upload bookkeeping (wall time)
  ProbeStatus status = ProbeStatus::kTimeout;
  // valid when status == kOk:
  TimeNs network_rtt = 0;       // (⑤-②)-(④-③)
  TimeNs responder_delay = 0;   // ④-③ (from the second ACK)
  TimeNs prober_delay = 0;      // (⑥-①)-(⑤-②)
  // most recent traced paths for this 5-tuple (may be stale; §4.2.3):
  routing::Path fwd_path;
  routing::Path rev_path;
  bool path_known = false;
  // Set at probe birth when the flight recorder sampled this probe: every
  // later layer (Analyzer ingest/verdict) records onto its timeline with a
  // single flag check instead of a hash lookup.
  bool flight_sampled = false;
};

/// Final categorization of an anomalous probe (§4.3).
enum class AnomalyCause : std::uint8_t {
  kHostDown,       // non-network: target host stopped uploading
  kQpnReset,       // probe noise: stale QPN
  kAgentCpuNoise,  // probe noise: service starved the Agent (Fig. 6 right)
  kRnicProblem,    // network, RNIC side
  kSwitchProblem,  // network, switch/link side
};

const char* anomaly_cause_name(AnomalyCause c);

/// Problem priorities of §2.4 / §4.3.4.
enum class Priority : std::uint8_t {
  kP0,     // in service network + service metric degraded: fix NOW
  kP1,     // in service network, service still healthy: fix on benefit
  kP2,     // outside the service network
  kNoise,  // not a real problem (filtered probe noise)
};

const char* priority_name(Priority p);

enum class ProblemCategory : std::uint8_t {
  kHostDown,
  kRnicProblem,
  kSwitchNetworkProblem,
  kHighNetworkRtt,       // congestion-flavoured bottleneck
  kHighProcessingDelay,  // end-host (CPU) bottleneck
  kQpnResetNoise,
  kAgentCpuNoise,
};

const char* problem_category_name(ProblemCategory c);

/// Reference into the per-period obs::DiagnosisLog: the evidence chain
/// (input probe ids, Algorithm 1 vote tally, thresholds compared, triage
/// branch) behind a verdict. Resolve with Analyzer::evidence() or render
/// with Analyzer::explain(problem_id).
struct EvidenceRef {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

/// A detected-and-located problem emitted by the Analyzer each period.
struct Problem {
  /// Analyzer-unique id (monotone across periods); key for explain().
  std::uint64_t problem_id = 0;
  /// Evidence chain backing this verdict in the period's DiagnosisLog.
  EvidenceRef evidence;
  ProblemCategory category{};
  Priority priority = Priority::kP2;
  // Location (whichever fields apply):
  RnicId rnic;
  HostId host;
  std::vector<LinkId> suspect_links;      // Algorithm 1 winners
  std::vector<SwitchId> suspect_switches; // Algorithm 1 (switch granularity)
  // Top-10 of the Algorithm-1 vote histogram (descending), for operators who
  // want to compare suspicion across problems (e.g. two tenants fingering
  // the same congested link while tie-breaks differ).
  std::vector<std::pair<LinkId, std::size_t>> top_link_votes;
  // Evidence:
  std::size_t anomalous_probes = 0;
  bool in_service_network = false;
  ServiceId service;           // when attributable to one service
  bool detected_by_service_tracing = false;
  std::string summary;
};

/// Per-period SLA aggregate (cluster-wide or per service network), §5.
struct SlaReport {
  std::size_t probes = 0;
  std::size_t timeouts = 0;
  double rnic_drop_rate = 0.0;    // timeouts attributed to RNICs / probes
  double switch_drop_rate = 0.0;  // timeouts attributed to switches / probes
  // distributions in nanoseconds:
  double rtt_mean = 0;
  double rtt_p50 = 0, rtt_p90 = 0, rtt_p99 = 0, rtt_p999 = 0;
  double proc_p50 = 0, proc_p90 = 0, proc_p99 = 0, proc_p999 = 0;
  /// Set when this SLA window violated a target (network-attributed drops or
  /// RTT tail over threshold); points at the violation's evidence chain.
  EvidenceRef evidence;
};

// ---- control-plane wire messages (src/transport payloads) ----

/// One Agent upload: every record accumulated since the last flush, possibly
/// coalescing several 5 s periods and all of the host's RNICs (ROADMAP
/// "Batched Agent uploads"). `seq` is monotone per Agent so the Analyzer can
/// suppress duplicate deliveries of a retried batch.
struct UploadBatch {
  HostId host;
  std::uint64_t seq = 0;
  /// Times the Agent re-queued this batch after transport expiry (rides the
  /// wire like a retry header; the Analyzer ignores it — dedup is by seq).
  std::uint32_t requeues = 0;
  std::vector<ProbeRecord> records;
  /// Sketch-mode upload thinning (AnalyzerConfig::sketch_mode == kOn): the
  /// mergeable summary of the healthy probe records the Agent folded out of
  /// `records` instead of shipping raw. Empty in sketch_mode == kOff.
  sketch::HostSummary summary;
};

/// Estimated wire size of an upload batch for the transport bandwidth cost
/// model: a fixed per-record cost plus the traced paths riding along, plus
/// the folded summary's exact serialized size.
[[nodiscard]] std::size_t upload_batch_wire_bytes(const UploadBatch& b);

/// Agent -> Controller on (re)start: freshest comm info for every RNIC the
/// Agent manages.
struct AgentRegistration {
  HostId host;
  std::vector<RnicCommInfo> rnics;
};

/// Controller -> Agent reply to a registration: whether it was accepted
/// (a crashed Controller accepts nothing) and the lease the Agent must keep
/// refreshed by heartbeats.
struct RegistrationAck {
  bool accepted = false;
  std::uint64_t controller_epoch = 0;
  TimeNs lease_duration = 0;
};

/// Agent -> Controller heartbeat refreshing the registration lease.
struct AgentHeartbeat {
  HostId host;
};

/// Controller -> Agent heartbeat reply. `known == false` means the
/// Controller holds no registration for the host (it restarted and lost its
/// registry): the Agent must re-register immediately.
struct HeartbeatAck {
  bool known = false;
  std::uint64_t controller_epoch = 0;
};

/// Agent -> Controller every 5 minutes (§5): pinglists for the host's RNICs
/// plus refreshed comm info for its service-tracing targets.
struct PinglistPullRequest {
  HostId host;
  std::vector<RnicId> rnics;
  std::vector<RnicId> comm_targets;
};

struct PinglistPullResponse {
  struct PerRnic {
    RnicId rnic;
    Pinglist tormesh;
    Pinglist intertor;
  };
  std::vector<PerRnic> rnics;
  std::vector<RnicCommInfo> comm;  // answers for comm_targets (found only)
  /// Epoch of the Controller that served this response. Agents fence with
  /// it: a response carrying an epoch older than the newest one the Agent
  /// has heard (registration/heartbeat acks) is a stale pinglist from a
  /// deposed primary and must be discarded, not applied.
  std::uint64_t controller_epoch = 0;
};

/// Everything one 20 s analysis period produced.
struct PeriodReport {
  TimeNs period_start = 0;
  TimeNs period_end = 0;
  std::vector<Problem> problems;
  SlaReport cluster_sla;
  std::vector<std::pair<ServiceId, SlaReport>> service_slas;
  std::size_t records_processed = 0;
  // Per-cause anomalous-probe counts (diagnostics).
  std::size_t timeouts_host_down = 0;
  std::size_t timeouts_qpn_reset = 0;
  std::size_t timeouts_agent_cpu = 0;
  std::size_t timeouts_rnic = 0;
  std::size_t timeouts_switch = 0;
};

}  // namespace rpm::core
