// The Analyzer's §4.3 pipeline as a reusable engine (ROADMAP "Hierarchical
// federation").
//
// AnalysisCore owns the seven-stage period pipeline — timeout triage,
// anomalous-RNIC detection, Algorithm 1 voting, bottleneck scans, SLA
// tables, impact assessment — plus all the state it threads across periods
// (host liveness clocks, RNIC blame windows, verdict/diagnosis history,
// monotone problem/evidence ids). It deliberately does NOT own ingestion,
// scheduling, or outage handling: those stay in the `Analyzer` facade
// (core/analyzer.h), which drives the core once per period. That split is
// what lets three roles share one pipeline:
//
//   flat Analyzer   the pre-federation deployment — one core fed by one
//                   IngestSink (byte-identical to the historical pipeline);
//   PodAnalyzer     a core scoped to one pod's hosts, emitting a PodDigest
//                   per period (core/federation.h);
//   GlobalAnalyzer  no core at all — it merges digests, but reuses the
//                   core's voting/SLA shapes via core/digest.h.
//
// Federation hooks are opt-in via FederationScratch: when a scratch is
// passed to analyze_period(), timeouts whose target host is outside the
// local set are *deferred* (exported as ForeignTimeouts) instead of being
// voted locally — a pod cannot tell a dead foreign host from a switch drop,
// and misvoting those paths is exactly the false-positive mode federation
// must not introduce. With a null scratch the pipeline is byte-identical to
// the pre-federation Analyzer.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/controller.h"
#include "core/digest.h"
#include "core/ingest.h"
#include "core/journal.h"
#include "core/types.h"
#include "obs/diagnosis.h"
#include "sketch/sketch.h"
#include "telemetry/metrics.h"
#include "topo/topology.h"

namespace rpm::core {

/// How the Analyzer sources its SLA tables and triage statistics (ROADMAP
/// "Switch-side sketch summaries").
///
///   kOff  raw probe records only — byte-identical to the historical
///         pipeline (the repo-wide same-seed guarantee holds against the
///         pre-sketch baseline).
///   kOn   Agents fold healthy OK records into mergeable HostSummary
///         sketches and switches export per-link sketches; SLA percentiles
///         and the Fig.-6 / bottleneck statistics are computed from the
///         merged sketches, with raw records kept only for probes that
///         carry diagnostic signal (timeouts, service tracing, outliers).
///         Deterministically reproducible: same seed => byte-identical
///         verdicts for any ingest thread count, but NOT byte-identical to
///         kOff (percentiles come from sketch buckets, not exact order
///         statistics).
enum class SketchMode : std::uint8_t { kOff, kOn };

struct AnalyzerConfig {
  TimeNs period = sec(20);                     // §5
  double rnic_timeout_threshold = 0.10;        // §5: >10% ToR-mesh timeouts
  TimeNs rnic_blame_window = sec(60);          // §5: blame RNIC for 1 min
  TimeNs host_silence_threshold = sec(20);     // §5: no upload for 20 s
  std::size_t min_anomalies_for_problem = 3;   // evidence floor
  TimeNs high_rtt_threshold = usec(500);       // congestion flag
  TimeNs high_proc_delay_threshold = msec(5);  // CPU-overload flag
  TimeNs starve_delay_threshold = msec(100);   // Fig. 6 responder-delay test
  // Once the Fig. 6 filter flags a host, keep filtering its timeouts as
  // agent-CPU noise for this long: a starved prober drains its observation
  // backlog for several periods after the service releases the CPU, and
  // those straggler records must not reach Algorithm-1 voting. Mirrors the
  // §5 rnic_blame_window hangover on the noise side.
  TimeNs cpu_noise_window = sec(60);
  double degradation_threshold = 0.5;          // metric below => severe (P0)
  bool enable_cpu_noise_filters = true;        // Fig. 6 improvements
  std::size_t history_limit = 512;
  // Ingestion runtime knobs (sharding, worker threads, queue bounds, batch
  // dedup window) — see IngestConfig in core/ingest.h. Validated (throws on
  // nonsense) at Analyzer construction. ingest.threads = 0 keeps the
  // historical inline single-threaded path; > 0 runs a worker pool with
  // byte-identical verdicts for any thread count.
  using Ingest = IngestConfig;
  Ingest ingest{};
  /// Sketch-driven analysis (see SketchMode above). RPingmesh propagates
  /// this to its Agents (upload thinning) and wires the switch-side sketch
  /// exporter only when kOn, so kOff leaves the whole schedule untouched.
  SketchMode sketch_mode = SketchMode::kOff;
};

/// How the Analyzer watches a service's key performance metric (§4.3.4):
/// `metric` returns the current relative performance in [0,1].
struct ServiceBinding {
  ServiceId id;
  std::function<double()> metric;
};

/// Per-period federation exchange. The caller (PodAnalyzer) fills
/// `local_hosts` once; analyze_period() clears and refills every output
/// field each call — together with the PeriodReport and DiagnosisLog they
/// are exactly the material a PodDigest carries.
struct FederationScratch {
  /// Hosts this pod's Agents upload for. Timeouts targeting hosts outside
  /// this set are deferred to the global tier instead of triaged locally.
  std::unordered_set<std::uint32_t> local_hosts;

  // Outputs (rebuilt per analyze_period call):
  std::vector<ForeignTimeout> foreign;
  std::vector<std::uint32_t> down_hosts;                           // sorted
  std::vector<std::pair<std::uint32_t, TimeNs>> blamed_rnics;      // sorted
  std::vector<std::uint32_t> cpu_noise_hosts;                      // sorted
  SlaDigest cluster_sla;
  std::vector<std::pair<std::uint32_t, SlaDigest>> service_slas;   // sorted
  std::vector<ServiceNetDigest> service_nets;                      // sorted
};

/// The §4.3 pipeline engine. All calls on the sim thread. Drive it with
/// analyze_period() once per period boundary; feed liveness via
/// note_host_alive() as uploads arrive.
class AnalysisCore {
 public:
  /// `directory` answers comm_info() for QPN-reset triage. It may be
  /// retargeted later (set_directory) when a standby Controller takes over.
  AnalysisCore(const topo::Topology& topo, const Controller* directory,
               AnalyzerConfig cfg);

  void set_directory(const Controller* directory) { directory_ = directory; }

  /// Receipt of ANY upload — duplicate included — proves the host alive.
  void note_host_alive(HostId h, TimeNs now) {
    last_upload_[h.value] = now;
    known_hosts_.insert(h.value);
  }

  /// Outage recovery: every known host's silence clock restarts at `now`
  /// so the blackout itself never reads as a wave of host-down verdicts.
  void forgive_silence(TimeNs now) {
    for (auto& [host, last] : last_upload_) last = std::max(last, now);
  }

  void set_period_boundary(TimeNs t) { last_period_end_ = t; }
  [[nodiscard]] TimeNs period_boundary() const { return last_period_end_; }

  void register_service(ServiceBinding binding);
  [[nodiscard]] const std::vector<ServiceBinding>& services() const {
    return services_;
  }

  /// Switch-side sketch ingestion (sketch_mode == kOn): deduplicated by
  /// (exporter, seq) and merged per link until the next period drains them.
  void ingest_sketch(sketch::SketchReport&& rep) {
    sketch_store_.ingest(std::move(rep));
  }
  [[nodiscard]] const sketch::SketchStore& sketch_store() const {
    return sketch_store_;
  }

  /// Run the seven-stage pipeline over one period's drained records and
  /// folded summary. `fed == nullptr` reproduces the pre-federation
  /// pipeline byte for byte; with a scratch, foreign-targeted timeouts are
  /// deferred and the digest outputs are filled (see FederationScratch).
  const PeriodReport& analyze_period(std::vector<ProbeRecord> records,
                                     const sketch::HostSummary& summary,
                                     TimeNs now, FederationScratch* fed);

  [[nodiscard]] const std::deque<PeriodReport>& history() const {
    return history_;
  }
  [[nodiscard]] const PeriodReport* last_report() const {
    return history_.empty() ? nullptr : &history_.back();
  }
  [[nodiscard]] bool network_innocent(ServiceId service) const;
  [[nodiscard]] std::string explain(std::uint64_t problem_id) const;
  [[nodiscard]] const obs::EvidenceChain* evidence(EvidenceRef ref) const;
  [[nodiscard]] const obs::DiagnosisLog* last_diagnosis() const {
    return diagnosis_.empty() ? nullptr : &diagnosis_.back();
  }
  [[nodiscard]] const std::deque<obs::DiagnosisLog>& diagnosis_history()
      const {
    return diagnosis_;
  }
  [[nodiscard]] const AnalyzerConfig& config() const { return cfg_; }

  // ---- persistence (core::StateJournal) ----

  /// DiagnosisLogs trimmed past history_limit spill into `journal`'s
  /// archive under `role` (explain() falls back to it), and checkpoints
  /// save/load under the same role.
  void attach_journal(StateJournal* journal, std::string role);
  [[nodiscard]] StateJournal* journal() const { return journal_; }
  [[nodiscard]] const std::string& journal_role() const { return role_; }

  /// Export the cross-period pipeline state a restart must not lose.
  void fill_checkpoint(AnalyzerCheckpoint& cp) const;
  /// Restore from a journaled checkpoint (restart path).
  void restore(const AnalyzerCheckpoint& cp);
  /// Crash: drop everything a process death loses (liveness clocks, blame
  /// windows, history, pending sketches, id counters). Journaled state is
  /// re-established by restore().
  void reset_volatile();

  // Self-observability stage names (telemetry labels; public so benches and
  // the GlobalAnalyzer reuse the same label vocabulary).
  static constexpr int kNumStages = 7;
  static const char* stage_name(int stage);

 private:
  void vote_paths(const std::vector<const ProbeRecord*>& records,
                  std::vector<LinkId>& out_links,
                  std::vector<SwitchId>& out_switches,
                  std::vector<std::pair<LinkId, std::size_t>>* top_votes =
                      nullptr,
                  obs::EvidenceChain* chain = nullptr) const;
  SlaReport make_sla(const std::vector<const ProbeRecord*>& records,
                     const std::unordered_set<std::uint64_t>& rnic_timeouts,
                     const std::unordered_set<std::uint64_t>& switch_timeouts)
      const;
  SlaReport make_sla_sketch(
      const std::vector<const ProbeRecord*>& records,
      const sketch::HostSummary& summary,
      const std::unordered_set<std::uint64_t>& rnic_timeouts,
      const std::unordered_set<std::uint64_t>& switch_timeouts) const;

  const topo::Topology& topo_;
  const Controller* directory_;
  AnalyzerConfig cfg_;

  std::unordered_map<std::uint32_t, TimeNs> last_upload_;  // by host id
  std::unordered_set<std::uint32_t> known_hosts_;
  std::unordered_map<std::uint32_t, TimeNs> rnic_blamed_until_;
  // Fig. 6 noise hangover: host id -> filtered-as-noise until (see
  // AnalyzerConfig::cpu_noise_window). Journaled like rnic_blamed_until_.
  std::unordered_map<std::uint32_t, TimeNs> host_noise_until_;
  std::vector<ServiceBinding> services_;
  std::deque<PeriodReport> history_;
  // One DiagnosisLog per period, trimmed in lockstep with history_.
  std::deque<obs::DiagnosisLog> diagnosis_;
  std::uint64_t next_evidence_id_ = 1;
  std::uint64_t next_problem_id_ = 1;
  // Switch-side sketch reports accumulated since the last period drain
  // (sketch_mode == kOn; idle otherwise).
  sketch::SketchStore sketch_store_;
  TimeNs last_period_end_ = 0;
  StateJournal* journal_ = nullptr;
  std::string role_ = "analyzer";

  // Self-observability: the 20 s pipeline is the Analyzer's hot path; each
  // stage's wall-clock cost is tracked so future sharding/batching PRs can
  // show where the time goes.
  struct Metrics {
    telemetry::Counter periods;
    telemetry::Histogram stage_ns[kNumStages];
    telemetry::Counter timeouts_by_cause[5];    // indexed by AnomalyCause
    telemetry::Counter problems_by_category[7];  // indexed by ProblemCategory
    telemetry::Counter problems_by_priority[4];  // indexed by Priority
    // Links whose period sketch showed drops — the links whose raw records
    // the sketch pipeline still wants verbatim (sketch_mode == kOn only).
    telemetry::Counter raw_fallback_links;
  };
  Metrics metrics_;
};

}  // namespace rpm::core
