// core::StateJournal — the federation's persistence layer (ROADMAP "Persist
// Analyzer (host, seq) dedup state and period boundaries").
//
// Two jobs:
//
//  1. Checkpoints. After every period close an Analyzer (flat, pod, or
//     global) writes an AnalyzerCheckpoint: its (host, seq) ingest dedup
//     windows, period boundary, monotone problem/evidence id counters,
//     host-liveness clocks, and RNIC blame windows — everything a restarted
//     process needs so re-delivered history (Agent spill rings, digest
//     retries) is deduplicated instead of re-counted, and so new evidence
//     ids never collide with archived ones. Checkpoints are stored as the
//     canonical little-endian byte encoding (encode/decode round-trips in
//     the production path, standing in for the disk file a real deployment
//     would fsync).
//
//  2. DiagnosisLog archive (ROADMAP "Evidence retention policy"). Logs that
//     age past AnalyzerConfig::history_limit spill here instead of being
//     destroyed; Analyzer::explain() falls back to the archive, so a
//     post-mortem can still pull the evidence chain of a problem that is
//     hours out of the live window.
//
// Entries are keyed by a role string ("analyzer", "pod3", "global") so one
// journal serves a whole federated deployment. Deterministic: canonical
// sorted encodings, no wall clock, no RNG.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/ingest.h"
#include "obs/diagnosis.h"

namespace rpm::core {

/// Everything one Analyzer role persists at a period close. The generic
/// fields cover the flat/pod/global pipeline state; digest_seq is the
/// PodAnalyzer's next outgoing digest sequence number and digest_dedup the
/// GlobalAnalyzer's per-pod (pod, seq) windows — unused fields stay empty.
struct AnalyzerCheckpoint {
  TimeNs last_period_end = 0;
  std::uint64_t next_problem_id = 1;
  std::uint64_t next_evidence_id = 1;
  std::vector<std::pair<std::uint32_t, TimeNs>> last_upload;  // by host, asc
  std::vector<std::uint32_t> known_hosts;                     // ascending
  std::vector<std::pair<std::uint32_t, TimeNs>> rnic_blamed_until;  // asc
  std::vector<std::pair<std::uint32_t, TimeNs>> host_noise_until;   // asc
  IngestCheckpoint ingest;
  std::uint64_t digest_seq = 0;
  IngestCheckpoint digest_dedup;  // "host" field holds the pod id
};

/// Canonical byte codec (little-endian, length-prefixed vectors, CRC32
/// trailer). Same state => same bytes; decode throws std::runtime_error on
/// truncation or checksum mismatch (bit flips, not just short reads).
void encode_checkpoint(const AnalyzerCheckpoint& cp,
                       std::vector<std::uint8_t>& out);
AnalyzerCheckpoint decode_checkpoint(const std::vector<std::uint8_t>& in);

class StateJournal {
 public:
  struct Config {
    /// Archived DiagnosisLogs retained per role (drop-oldest beyond).
    std::size_t archive_limit = 4096;
  };

  StateJournal() : StateJournal(Config{}) {}
  explicit StateJournal(Config cfg) : cfg_(cfg) {}

  // ---- checkpoints ----

  /// Persist `cp` for `role`, replacing any previous checkpoint. The state
  /// is stored encoded; load_checkpoint() decodes it back, so every save /
  /// load pair exercises the wire codec.
  void save_checkpoint(const std::string& role, const AnalyzerCheckpoint& cp);
  /// Decode the stored checkpoint. A checkpoint that fails to decode (CRC
  /// mismatch or structural damage) is reported as nullopt — the restart
  /// path's clean-start branch — and counted in corrupt_total() plus the
  /// `rpm_journal_corrupt_total` metric; it is never re-thrown.
  [[nodiscard]] std::optional<AnalyzerCheckpoint> load_checkpoint(
      const std::string& role) const;
  /// Size of the stored encoding (0 when absent) — bench/diagnostics.
  [[nodiscard]] std::size_t checkpoint_bytes(const std::string& role) const;
  /// Chaos/test hook: flip one bit (modulo the encoding size) of the stored
  /// checkpoint, simulating at-rest corruption. False when `role` is absent.
  bool corrupt_checkpoint(const std::string& role, std::size_t bit);
  /// Checkpoints rejected at decode since construction.
  [[nodiscard]] std::uint64_t corrupt_total() const { return corrupt_total_; }

  // ---- DiagnosisLog archive ----

  void archive(const std::string& role, obs::DiagnosisLog&& log);
  [[nodiscard]] std::size_t archived(const std::string& role) const;
  /// Newest-first lookup across the role's archived logs.
  [[nodiscard]] const obs::EvidenceChain* find_problem(
      const std::string& role, std::uint64_t problem_id) const;
  [[nodiscard]] const obs::EvidenceChain* find_evidence(
      const std::string& role, std::uint64_t evidence_id) const;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  mutable std::uint64_t corrupt_total_ = 0;
  std::unordered_map<std::string, std::vector<std::uint8_t>> checkpoints_;
  std::unordered_map<std::string, std::deque<obs::DiagnosisLog>> archives_;
};

}  // namespace rpm::core
