// Federation wire types: the compact per-pod summary a PodAnalyzer flushes
// to the GlobalAnalyzer at every period close (ROADMAP "Hierarchical
// federation"). A PodDigest carries the pod's *verdicts* (Problems plus the
// evidence chains behind them), its mergeable SLA state (exact counts +
// DDSketch quantiles, so the global cluster table is byte-identical for any
// merge order), and the one class of raw data a pod cannot judge alone:
// timeouts whose target host lives in another pod ("foreign" timeouts, which
// the global tier triages against the union of every pod's down-host and
// blamed-RNIC sets, then runs Algorithm 1 voting over).
//
// Digests travel over an ordinary transport::Channel ("digest/p<N>") with
// declared wire bytes (pod_digest_wire_bytes), so rpm_transport_bytes_total
// shows the federation fan-in cost next to the raw upload volume —
// BENCH_federation.json graphs that ratio.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.h"
#include "obs/diagnosis.h"
#include "sketch/sketch.h"

namespace rpm::core {

/// Mergeable SLA state for one probe population (pod cluster records, or one
/// service's records within the pod). Counts are exact; distributions are
/// DDSketches, so merging pods in any grouping yields identical tables.
struct SlaDigest {
  std::size_t probes = 0;
  std::size_t timeouts = 0;
  std::size_t rnic_drops = 0;    // timeouts attributed to RNICs
  std::size_t switch_drops = 0;  // timeouts attributed to switches
  sketch::QuantileSketch rtt;    // network RTT of OK records
  sketch::QuantileSketch proc;   // responder delay of OK records

  void merge(const SlaDigest& other) {
    probes += other.probes;
    timeouts += other.timeouts;
    rnic_drops += other.rnic_drops;
    switch_drops += other.switch_drops;
    rtt.merge(other.rtt);
    proc.merge(other.proc);
  }
  /// Render as the SlaReport shape the PeriodReport carries (rates from the
  /// exact counts, tails from the sketches).
  [[nodiscard]] SlaReport to_report() const;
};

/// A timeout the pod could not triage locally: the target host belongs to
/// another pod, so host-down and target-RNIC blame are unknowable there.
/// Compact slice of the ProbeRecord — just what global triage + Algorithm 1
/// voting need (the 5-tuple traced path, not the payload timestamps).
struct ForeignTimeout {
  std::uint64_t probe_id = 0;
  ProbeKind kind = ProbeKind::kInterTor;
  RnicId prober;
  RnicId target;
  HostId prober_host;
  HostId target_host;
  ServiceId service;
  bool path_known = false;
  std::vector<std::uint32_t> path_links;     // fwd + rev, in path order
  std::vector<std::uint32_t> path_switches;  // fwd + rev, in path order
};

/// The links/RNICs/hosts one service's tracing probes touched inside the
/// pod, so the global impact stage can place *cross-pod* problems in a
/// service network that no single pod saw in full. Sorted, deduplicated.
struct ServiceNetDigest {
  std::uint32_t service = 0;
  std::vector<std::uint32_t> links;
  std::vector<std::uint32_t> rnics;
  std::vector<std::uint32_t> hosts;
};

/// One pod period, flushed by the PodAnalyzer after its local analyze pass.
/// `seq` is monotone per pod (journaled across restarts) so the global tier
/// dedups retried deliveries exactly like the Analyzer dedups UploadBatches.
struct PodDigest {
  std::uint32_t pod = 0;
  std::uint64_t seq = 0;
  TimeNs period_start = 0;
  TimeNs period_end = 0;
  std::size_t records_processed = 0;

  // Local verdicts (problem/evidence ids are pod-local; the global tier
  // re-ids them into its own monotone spaces).
  std::vector<Problem> problems;
  std::vector<obs::EvidenceChain> chains;

  // Pod-local liveness/blame state the global triage consults for OTHER
  // pods' foreign timeouts. Sorted by id for deterministic merging.
  std::vector<std::uint32_t> down_hosts;
  std::vector<std::pair<std::uint32_t, TimeNs>> blamed_rnics;  // blamed until
  // Hosts the pod's Fig. 6 filter flagged as agent-CPU noise this period:
  // cross-pod probes to them timed out because the service starved the
  // Agent, not because of the fabric — the global triage must not let them
  // reach Algorithm-1 voting.
  std::vector<std::uint32_t> cpu_noise_hosts;  // sorted

  // Locally-attributed timeout tallies (foreign ones excluded — the global
  // tier classifies those and adds its own tallies on top).
  std::size_t timeouts_host_down = 0;
  std::size_t timeouts_qpn_reset = 0;
  std::size_t timeouts_agent_cpu = 0;
  std::size_t timeouts_rnic = 0;
  std::size_t timeouts_switch = 0;

  std::vector<ForeignTimeout> foreign;

  SlaDigest cluster_sla;
  std::vector<std::pair<std::uint32_t, SlaDigest>> service_slas;  // sorted
  std::vector<ServiceNetDigest> service_nets;                     // sorted
};

/// Declared wire size for the transport byte accounting / bandwidth model.
/// Mirrors upload_batch_wire_bytes' role for UploadBatch: a deterministic
/// estimator, not a serializer.
[[nodiscard]] std::size_t pod_digest_wire_bytes(const PodDigest& d);

}  // namespace rpm::core
