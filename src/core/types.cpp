#include "core/types.h"

namespace rpm::core {

const char* probe_kind_name(ProbeKind k) {
  switch (k) {
    case ProbeKind::kTorMesh:
      return "tor-mesh";
    case ProbeKind::kInterTor:
      return "inter-tor";
    case ProbeKind::kServiceTracing:
      return "service-tracing";
  }
  return "?";
}

const char* anomaly_cause_name(AnomalyCause c) {
  switch (c) {
    case AnomalyCause::kHostDown:
      return "host-down";
    case AnomalyCause::kQpnReset:
      return "qpn-reset";
    case AnomalyCause::kAgentCpuNoise:
      return "agent-cpu-noise";
    case AnomalyCause::kRnicProblem:
      return "rnic-problem";
    case AnomalyCause::kSwitchProblem:
      return "switch-problem";
  }
  return "?";
}

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kP0:
      return "P0";
    case Priority::kP1:
      return "P1";
    case Priority::kP2:
      return "P2";
    case Priority::kNoise:
      return "noise";
  }
  return "?";
}

std::size_t upload_batch_wire_bytes(const UploadBatch& b) {
  // Header (host + seq + requeues + record count) ...
  std::size_t n = 4 + 8 + 4 + 4;
  for (const ProbeRecord& r : b.records) {
    // ... plus each record's fixed fields (ids, tuple, timestamps, status)
    // and 4 bytes per traced path element.
    n += 96;
    if (r.path_known) {
      n += 4 * (r.fwd_path.links.size() + r.fwd_path.switches.size() +
                r.rev_path.links.size() + r.rev_path.switches.size());
    }
  }
  if (!b.summary.empty()) n += b.summary.serialized_bytes();
  return n;
}

const char* problem_category_name(ProblemCategory c) {
  switch (c) {
    case ProblemCategory::kHostDown:
      return "host-down";
    case ProblemCategory::kRnicProblem:
      return "rnic-problem";
    case ProblemCategory::kSwitchNetworkProblem:
      return "switch-network-problem";
    case ProblemCategory::kHighNetworkRtt:
      return "high-network-rtt";
    case ProblemCategory::kHighProcessingDelay:
      return "high-processing-delay";
    case ProblemCategory::kQpnResetNoise:
      return "qpn-reset-noise";
    case ProblemCategory::kAgentCpuNoise:
      return "agent-cpu-noise";
  }
  return "?";
}

}  // namespace rpm::core
