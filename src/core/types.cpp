#include "core/types.h"

namespace rpm::core {

const char* probe_kind_name(ProbeKind k) {
  switch (k) {
    case ProbeKind::kTorMesh:
      return "tor-mesh";
    case ProbeKind::kInterTor:
      return "inter-tor";
    case ProbeKind::kServiceTracing:
      return "service-tracing";
  }
  return "?";
}

const char* anomaly_cause_name(AnomalyCause c) {
  switch (c) {
    case AnomalyCause::kHostDown:
      return "host-down";
    case AnomalyCause::kQpnReset:
      return "qpn-reset";
    case AnomalyCause::kAgentCpuNoise:
      return "agent-cpu-noise";
    case AnomalyCause::kRnicProblem:
      return "rnic-problem";
    case AnomalyCause::kSwitchProblem:
      return "switch-problem";
  }
  return "?";
}

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kP0:
      return "P0";
    case Priority::kP1:
      return "P1";
    case Priority::kP2:
      return "P2";
    case Priority::kNoise:
      return "noise";
  }
  return "?";
}

const char* problem_category_name(ProblemCategory c) {
  switch (c) {
    case ProblemCategory::kHostDown:
      return "host-down";
    case ProblemCategory::kRnicProblem:
      return "rnic-problem";
    case ProblemCategory::kSwitchNetworkProblem:
      return "switch-network-problem";
    case ProblemCategory::kHighNetworkRtt:
      return "high-network-rtt";
    case ProblemCategory::kHighProcessingDelay:
      return "high-processing-delay";
    case ProblemCategory::kQpnResetNoise:
      return "qpn-reset-noise";
    case ProblemCategory::kAgentCpuNoise:
      return "agent-cpu-noise";
  }
  return "?";
}

}  // namespace rpm::core
