#include "core/controller.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/flight_recorder.h"
#include "telemetry/trace.h"

namespace rpm::core {

namespace {

double binomial(std::uint32_t n, std::uint32_t k) {
  // Exact enough in double for n <= ~1000.
  double r = 1.0;
  for (std::uint32_t i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return r;
}

/// P(k tuples do NOT cover all N paths) by inclusion-exclusion.
double uncovered_probability(std::uint32_t n, std::uint32_t k) {
  double sum = 0.0;
  for (std::uint32_t i = 1; i <= n; ++i) {
    const double term =
        binomial(n, i) *
        std::pow(1.0 - static_cast<double>(i) / static_cast<double>(n),
                 static_cast<double>(k));
    sum += (i % 2 == 1) ? term : -term;
  }
  return std::max(0.0, sum);
}

}  // namespace

std::uint32_t equation1_min_tuples(std::uint32_t num_paths,
                                   double coverage_p) {
  if (num_paths == 0) throw std::invalid_argument("equation1: N must be > 0");
  if (coverage_p <= 0.0 || coverage_p >= 1.0) {
    throw std::invalid_argument("equation1: P must be in (0, 1)");
  }
  if (num_paths == 1) return 1;
  const double budget = 1.0 - coverage_p;
  for (std::uint32_t k = num_paths;; ++k) {
    if (uncovered_probability(num_paths, k) <= budget) return k;
    if (k > num_paths * 1000) {
      throw std::runtime_error("equation1: failed to converge");
    }
  }
}

std::uint32_t count_parallel_paths(const routing::EcmpRouter& router,
                                   SwitchId src_tor, SwitchId dst_tor) {
  if (src_tor == dst_tor) return 1;
  std::uint32_t product = 1;
  SwitchId cur = src_tor;
  for (int hop = 0; hop < 16; ++hop) {
    const auto& cand = router.candidates(cur, dst_tor);
    if (cand.empty()) {
      throw std::runtime_error("count_parallel_paths: unreachable ToR");
    }
    product *= static_cast<std::uint32_t>(cand.size());
    cur = router.topology().link(cand.front()).to.as_switch();
    if (cur == dst_tor) return product;
  }
  throw std::runtime_error("count_parallel_paths: path too long");
}

Controller::Controller(const topo::Topology& topo,
                       const routing::EcmpRouter& router, ControllerConfig cfg)
    : topo_(topo), router_(router), cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.per_link_probes_per_sec <= 0.0 ||
      cfg_.tormesh_probes_per_sec <= 0.0) {
    throw std::invalid_argument("ControllerConfig: probe rates must be > 0");
  }
  auto& reg = telemetry::registry();
  metrics_.registrations = reg.counter("rpm_controller_registrations_total",
                                       "Agent (re)registrations processed");
  metrics_.registered_agents = reg.gauge("rpm_controller_registered_agents",
                                         "Hosts with a live registration lease");
  const char* kinds[2] = {"tor-mesh", "inter-tor"};
  for (int k = 0; k < 2; ++k) {
    metrics_.pinglist_requests[k] =
        reg.counter("rpm_controller_pinglist_requests_total",
                    "Pinglists served to Agents", {{"kind", kinds[k]}});
    metrics_.pinglist_entries[k] =
        reg.histogram("rpm_controller_pinglist_entries",
                      "Entries per generated pinglist", {{"kind", kinds[k]}});
  }
  metrics_.plan_build_ns = reg.histogram(
      "rpm_controller_plan_build_ns",
      "Wall-clock cost of Equation-1 inter-ToR planning");
  metrics_.rotations = reg.counter("rpm_controller_rotations_total",
                                   "Inter-ToR tuple rotations executed");
  build_intertor_plan();
}

bool Controller::register_agent(HostId host,
                                const std::vector<RnicCommInfo>& rnics) {
  if (down_) return false;  // a crashed process accepts nothing
  for (const RnicCommInfo& info : rnics) {
    if (topo_.rnic(info.rnic).host != host) {
      throw std::invalid_argument(
          "register_agent: RNIC does not belong to this host");
    }
    registry_[info.rnic.value] = info;
  }
  registered_hosts_.insert(host.value);
  metrics_.registrations.inc();
  metrics_.registered_agents.set(
      static_cast<double>(registered_hosts_.size()));
  return true;
}

HeartbeatAck Controller::heartbeat(HostId host) const {
  HeartbeatAck ack;
  ack.controller_epoch = epoch_;
  ack.known = !down_ && registered_hosts_.contains(host.value);
  return ack;
}

void Controller::crash() {
  down_ = true;
  // A process crash takes the in-memory registry with it; Agents discover
  // the loss through missed heartbeats and re-register after restart().
  registry_.clear();
  registered_hosts_.clear();
  metrics_.registered_agents.set(0.0);
  telemetry::tracer().instant("controller-crash", "control");
}

void Controller::restart() {
  if (!down_) return;
  down_ = false;
  ++epoch_;
  telemetry::tracer().instant("controller-restart", "control");
}

void Controller::promote(std::uint64_t new_epoch) {
  // restart()'s known=false contract, with an assigned epoch: clear the
  // registry even though a warm standby's is already empty (promote() must
  // also work on a member that once served as primary), come up, and fence
  // everything the deposed primary might still emit.
  registry_.clear();
  registered_hosts_.clear();
  metrics_.registered_agents.set(0.0);
  down_ = false;
  epoch_ = new_epoch;
  telemetry::tracer().instant("controller-promote", "control");
}

std::optional<RnicCommInfo> Controller::comm_info(RnicId rnic) const {
  const auto it = registry_.find(rnic.value);
  if (it == registry_.end()) return std::nullopt;
  return it->second;
}

std::optional<RnicCommInfo> Controller::comm_info_by_ip(IpAddr ip) const {
  // IPs are topology-stable, so resolve through the topology.
  try {
    return comm_info(topo_.rnic_by_ip(ip));
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

Pinglist Controller::tormesh_pinglist(RnicId rnic) const {
  const topo::RnicInfo& self = topo_.rnic(rnic);
  Pinglist out;
  for (RnicId other : topo_.rnics_under_tor(self.tor)) {
    if (other == rnic) continue;
    const auto info = comm_info(other);
    if (!info) continue;  // never registered: cannot be probed yet
    PinglistEntry e;
    e.target = other;
    e.target_gid = info->gid;
    e.target_qpn = info->qpn;
    e.tuple.src_ip = self.ip;
    e.tuple.dst_ip = info->ip;
    // Stable per-pair port: ToR-mesh paths have no ECMP anyway.
    e.tuple.src_port = static_cast<std::uint16_t>(
        29000 + (rnic.value * 131 + other.value * 31) % 1000);
    e.kind = ProbeKind::kTorMesh;
    out.entries.push_back(e);
  }
  // One probe every 1/rate seconds, cycling over targets (§5: 10 pps).
  out.probe_interval =
      static_cast<TimeNs>(1e9 / cfg_.tormesh_probes_per_sec);
  metrics_.pinglist_requests[0].inc();
  metrics_.pinglist_entries[0].observe(
      static_cast<double>(out.entries.size()));
  return out;
}

std::uint32_t Controller::tuples_for_tor(SwitchId tor) const {
  const auto it = plans_.find(tor.value);
  if (it == plans_.end()) throw std::out_of_range("tuples_for_tor: not a ToR");
  return it->second.k;
}

Controller::InterTorTuple Controller::make_tuple(SwitchId tor, Rng& rng) {
  const auto& local = topo_.rnics_under_tor(tor);
  const auto& tors = topo_.tor_switches();
  InterTorTuple t;
  t.src = local[rng.index(local.size())];
  // Random destination under a different ToR.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const SwitchId dst_tor = tors[rng.index(tors.size())];
    if (dst_tor == tor) continue;
    const auto& remote = topo_.rnics_under_tor(dst_tor);
    if (remote.empty()) continue;
    t.dst = remote[rng.index(remote.size())];
    break;
  }
  t.src_port = static_cast<std::uint16_t>(cfg_.intertor_port_base +
                                          (next_port_++ % 20000));
  return t;
}

void Controller::build_intertor_plan() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto& tors = topo_.tor_switches();
  if (tors.size() < 2) return;  // single-ToR cluster: nothing to plan
  for (SwitchId tor : tors) {
    TorPlan plan;
    for (SwitchId other : tors) {
      if (other == tor) continue;
      plan.parallel_paths = std::max(
          plan.parallel_paths, count_parallel_paths(router_, tor, other));
    }
    plan.k = equation1_min_tuples(plan.parallel_paths,
                                  cfg_.coverage_probability);
    for (std::uint32_t i = 0; i < plan.k; ++i) {
      plan.tuples.push_back(make_tuple(tor, rng_));
    }
    // Cadence: k tuples spread over N parallel paths; to give every link
    // >= per_link_probes_per_sec, each tuple fires at rate * N / k.
    const double per_tuple_hz =
        cfg_.per_link_probes_per_sec *
        static_cast<double>(plan.parallel_paths) /
        static_cast<double>(plan.k);
    plan.per_tuple_interval =
        static_cast<TimeNs>(1e9 / std::max(0.1, per_tuple_hz));
    plans_[tor.value] = std::move(plan);
  }
  metrics_.plan_build_ns.observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
}

Pinglist Controller::intertor_pinglist(RnicId rnic) const {
  const topo::RnicInfo& self = topo_.rnic(rnic);
  Pinglist out;
  const auto it = plans_.find(self.tor.value);
  if (it == plans_.end()) return out;
  const TorPlan& plan = it->second;
  for (const InterTorTuple& t : plan.tuples) {
    if (t.src != rnic) continue;
    const auto info = comm_info(t.dst);
    if (!info) continue;
    PinglistEntry e;
    e.target = t.dst;
    e.target_gid = info->gid;
    e.target_qpn = info->qpn;
    e.tuple.src_ip = self.ip;
    e.tuple.dst_ip = info->ip;
    e.tuple.src_port = t.src_port;
    e.kind = ProbeKind::kInterTor;
    out.entries.push_back(e);
  }
  // The Agent cycles its entries with one probe per interval; to keep each
  // tuple at per_tuple_interval, the list interval shrinks with list size.
  const auto n = static_cast<TimeNs>(std::max<std::size_t>(
      1, out.entries.size()));
  out.probe_interval = std::max<TimeNs>(usec(100),
                                        plan.per_tuple_interval / n);
  metrics_.pinglist_requests[1].inc();
  metrics_.pinglist_entries[1].observe(
      static_cast<double>(out.entries.size()));
  return out;
}

void Controller::rotate_intertor_tuples() {
  metrics_.rotations.inc();
  for (auto& [tor_value, plan] : plans_) {
    const auto n = static_cast<std::size_t>(std::ceil(
        cfg_.rotate_fraction * static_cast<double>(plan.tuples.size())));
    for (std::size_t i = 0; i < n && !plan.tuples.empty(); ++i) {
      const std::size_t victim = rng_.index(plan.tuples.size());
      plan.tuples[victim] = make_tuple(SwitchId{tor_value}, rng_);
    }
  }
}

PinglistPullResponse serve_pinglist_pull(const Controller& controller,
                                         const PinglistPullRequest& req) {
  PinglistPullResponse rsp;
  rsp.rnics.reserve(req.rnics.size());
  for (RnicId r : req.rnics) {
    PinglistPullResponse::PerRnic per;
    per.rnic = r;
    per.tormesh = controller.tormesh_pinglist(r);
    per.intertor = controller.intertor_pinglist(r);
    rsp.rnics.push_back(std::move(per));
  }
  rsp.comm.reserve(req.comm_targets.size());
  for (RnicId r : req.comm_targets) {
    if (const auto info = controller.comm_info(r)) rsp.comm.push_back(*info);
  }
  rsp.controller_epoch = controller.epoch();
  return rsp;
}

ControllerGroup::ControllerGroup(const topo::Topology& topo,
                                 const routing::EcmpRouter& router,
                                 sim::Scheduler& sched,
                                 ControllerConfig ccfg, Config cfg)
    : sched_(sched), cfg_(cfg) {
  members_.push_back(std::make_unique<Controller>(topo, router, ccfg));
  if (cfg_.standby) {
    // Same config => identical Equation-1 plans and pinglists; the standby
    // differs only in registry content (empty until promoted) and epoch.
    members_.push_back(std::make_unique<Controller>(topo, router, ccfg));
  }
  crashed_.assign(members_.size(), false);
  if (cfg_.standby) {
    // Metric series exist only in replicated deployments so a flat run's
    // telemetry output is byte-identical to the pre-group code.
    auto& reg = telemetry::registry();
    epoch_gauge_ = reg.gauge("rpm_controller_epoch",
                             "Epoch of the active Controller");
    failovers_total_ = reg.counter("rpm_controller_failovers_total",
                                   "Standby promotions performed");
    epoch_gauge_.set(static_cast<double>(active().epoch()));
    monitor_ = std::make_unique<sim::PeriodicTask>(
        sched_, cfg_.check_interval, [this] { check_failover(); });
    monitor_->start(cfg_.check_interval);
  }
}

void ControllerGroup::crash_active() {
  if (crashed_[active_]) return;
  members_[active_]->crash();
  crashed_[active_] = true;
  crash_time_ = sched_.now();
}

void ControllerGroup::restart_crashed() {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (!crashed_[i]) continue;
    members_[i]->restart();
    crashed_[i] = false;
  }
}

void ControllerGroup::check_failover() {
  if (!crashed_[active_]) return;
  if (sched_.now() < crash_time_ + cfg_.failover_delay) return;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (crashed_[i]) continue;
    // New epoch dominates every epoch any member ever stamped, including
    // the deposed primary's — responses it left in flight are fenced out.
    std::uint64_t max_epoch = 0;
    for (const auto& m : members_) {
      max_epoch = std::max(max_epoch, m->epoch());
    }
    members_[i]->promote(max_epoch + 1);
    active_ = i;
    ++failovers_;
    epoch_gauge_.set(static_cast<double>(max_epoch + 1));
    failovers_total_.inc();
    telemetry::tracer().instant("controller-failover", "control");
    obs::FlightRecorder& fr = obs::recorder();
    if (fr.enabled()) {
      // Failovers get a flight-recorder timeline too (trace ids far above
      // the probe id space), so a dump shows WHEN the standby took over
      // between the probe/digest events it explains.
      const std::uint64_t trace = (1ull << 60) | failovers_;
      if (fr.begin_probe(trace, "controller-failover",
                         static_cast<std::uint64_t>(sched_.now()))) {
        fr.record(trace, obs::ProbeEventKind::kFailover, max_epoch + 1, i);
      }
    }
    if (on_failover_) on_failover_(*members_[i]);
    return;
  }
}

}  // namespace rpm::core
