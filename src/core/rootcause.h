// Root-cause hints — the paper's §7.5 "automatically diagnose root causes"
// future-work direction, implemented as a rule engine.
//
// The Analyzer localizes WHERE a problem is (an RNIC, a link, a host); the
// root cause (flapping port? corrupted fiber? missing GID index? PFC
// deadlock?) still needs the device counters and logs operators consult by
// hand. The RootCauseAdvisor automates that step: given a located Problem,
// it reads the implicated devices' counters (exactly the CRC/drop/pause/
// retransmit counters the paper lists) and returns ranked hypotheses with
// the evidence that produced each.
#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "host/cluster.h"

namespace rpm::core {

/// A ranked hypothesis about a problem's root cause.
struct RootCauseHint {
  std::string cause;       // e.g. "packet corruption (fiber/optics)"
  double confidence = 0.0; // [0, 1]; heuristic, ordered within a problem
  std::string evidence;    // which counters/logs support it
};

/// Render hints as a JSON array ([{"cause":...,"confidence":...,
/// "evidence":...}, ...]) — pairs with Analyzer::explain() so a diagnosis
/// dump carries both the evidence chain and the ranked root-cause guesses.
std::string hints_json(const std::vector<RootCauseHint>& hints);

/// Rule-based advisor reading device counters from the cluster — the
/// "integrate probing results with counters" design of §7.5. Stateless
/// between calls except for counter baselines (rates need deltas).
class RootCauseAdvisor {
 public:
  explicit RootCauseAdvisor(host::Cluster& cluster);

  /// Snapshot all counters; hints are computed from deltas since the last
  /// snapshot (call once per analysis period).
  void snapshot_baseline();

  /// Ranked root-cause hypotheses for a located problem (may be empty when
  /// no counter evidence distinguishes causes).
  [[nodiscard]] std::vector<RootCauseHint> advise(const Problem& p) const;

 private:
  struct LinkBaseline {
    std::uint64_t drops_corrupt = 0;
    std::uint64_t drops_overflow = 0;
    std::uint64_t drops_down = 0;
    std::uint64_t pfc_pause_events = 0;
  };
  struct RnicBaseline {
    std::uint64_t rx_dropped_no_qp = 0;
    std::uint64_t rx_dropped_misconfig = 0;
    std::uint64_t rc_retransmits = 0;
    std::uint64_t rc_broken_connections = 0;
  };

  void advise_link(LinkId link, std::vector<RootCauseHint>& out) const;
  void advise_rnic(RnicId rnic, std::vector<RootCauseHint>& out) const;

  host::Cluster& cluster_;
  std::vector<LinkBaseline> link_base_;
  std::vector<RnicBaseline> rnic_base_;
};

}  // namespace rpm::core
