// Top-level assembly: deploy R-Pingmesh (Controller + one Agent per host +
// Analyzer) onto a Cluster. This is the public entry point most examples
// and benches use.
#pragma once

#include <memory>
#include <vector>

#include "core/agent.h"
#include "core/analyzer.h"
#include "core/controller.h"
#include "host/cluster.h"
#include "sketch/exporter.h"

namespace rpm::core {

struct RPingmeshConfig {
  ControllerConfig controller{};
  AgentConfig agent{};
  AnalyzerConfig analyzer{};
  TimeNs tuple_rotation_interval = sec(3600);  // §5: rotate 20% hourly
  // After start(), re-pull every Agent's pinglists once all registrations
  // have had time to traverse the control plane (first registration order
  // otherwise decides who sees whom).
  TimeNs control_settle_delay = msec(10);
};

/// Deploys the three services onto a Cluster and wires them over its
/// transport::ControlPlane: per host one upload channel ("upload/h<N>",
/// Agent -> Analyzer UploadBatch stream) and one RPC channel ("ctrl/h<N>",
/// Agent -> Controller registrations and pinglist pulls). No component holds
/// a direct function binding to another — a degraded control plane (latency,
/// loss, reordering; see src/faults) exercises every interaction.
class RPingmesh {
 public:
  explicit RPingmesh(host::Cluster& cluster, RPingmeshConfig cfg = {});
  ~RPingmesh();

  /// Start every Agent, the Analyzer's 20 s loop, and the hourly inter-ToR
  /// tuple rotation.
  void start();
  void stop();

  // ---- control-plane survivability (src/chaos drives these) ----

  /// Crash the Controller process: its registry is wiped and every Agent's
  /// RPC channel goes peer-down. Agents rediscover it through lease expiry
  /// and re-register (capped backoff + per-agent jitter) after
  /// restart_controller().
  void crash_controller();
  void restart_controller();
  [[nodiscard]] bool controller_down() const { return controller_.is_down(); }

  /// Analyzer brownout: upload channels go peer-down, periods pause, and
  /// Agents spill fully-retried batches into their catch-up rings. Ending
  /// the outage drains the rings in seq order and forgives upload silence.
  void begin_analyzer_outage();
  void end_analyzer_outage();
  [[nodiscard]] bool analyzer_in_outage() const {
    return analyzer_.in_outage();
  }

  [[nodiscard]] Controller& controller() { return controller_; }
  [[nodiscard]] Analyzer& analyzer() { return analyzer_; }
  [[nodiscard]] Agent& agent(HostId host) { return *agents_.at(host.value); }
  [[nodiscard]] std::size_t num_agents() const { return agents_.size(); }

  /// Watch a service's performance metric for impact assessment (§4.3.4).
  void watch_service(ServiceBinding binding) {
    analyzer_.register_service(std::move(binding));
  }

 private:
  host::Cluster& cluster_;
  RPingmeshConfig cfg_;
  Controller controller_;
  Analyzer analyzer_;
  // Channels live in the Cluster's ControlPlane (they model the network);
  // these pointers let the destructor detach handlers that capture `this`.
  std::vector<transport::Channel*> upload_channels_;
  std::vector<transport::RpcChannel*> rpc_channels_;
  // Switch-side sketch pipeline (AnalyzerConfig::sketch_mode == kOn only —
  // kOff creates none of it, leaving the schedule byte-identical to the
  // pre-sketch deployment). The bank is attached to the Cluster's fabric and
  // must outlive that attachment; the exporter flushes it through
  // "sketch/fabric" into Analyzer::ingest_sketch. Declared bank-first so the
  // exporter (which drains the bank) is destroyed before it.
  std::unique_ptr<sketch::LinkSketchBank> sketch_bank_;
  transport::Channel* sketch_channel_ = nullptr;
  std::unique_ptr<sketch::SketchExporter> sketch_exporter_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::unique_ptr<sim::PeriodicTask> rotation_task_;
  std::unique_ptr<sim::PeriodicTask> settle_task_;
  bool running_ = false;
};

}  // namespace rpm::core
