// Top-level assembly: deploy R-Pingmesh (Controller group + one Agent per
// host + the analysis tier) onto a Cluster. This is the public entry point
// most examples and benches use.
//
// Two deployment shapes (FederationConfig):
//
//   pods == 1 (flat, default)  one Analyzer ingests every host's uploads —
//     byte-identical to the historical single-Analyzer pipeline.
//
//   pods >= 2 (federated)      hosts map to pods by their ToR's Clos pod
//     (folded modulo `pods`); each pod runs a PodAnalyzer over its own
//     hosts' uploads and flushes a compact PodDigest per period over
//     "digest/p<N>"; a GlobalAnalyzer merges the digests into the
//     cluster-wide verdict/SLA stream (scored_history()).
//
// Optionally a warm standby Controller (standby_controller) takes over
// `failover_delay` after a primary crash: epoch-fenced promotion, Agents
// re-register through their normal lease/backoff machinery.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/agent.h"
#include "core/analyzer.h"
#include "core/controller.h"
#include "core/federation.h"
#include "core/journal.h"
#include "host/cluster.h"
#include "sketch/exporter.h"

namespace rpm::core {

/// Control-plane scale-out knobs (ROADMAP "Hierarchical federation"). The
/// defaults reproduce the historical flat deployment byte for byte.
struct FederationConfig {
  /// Analysis pods. 1 = flat. Hosts are assigned by Clos pod of their first
  /// RNIC's ToR, folded modulo this count; every pod must end up non-empty.
  std::size_t pods = 1;
  /// Deploy a warm standby Controller with automatic promotion.
  bool standby_controller = false;
  /// Standby failover monitor cadence / takeover grace (ControllerGroup).
  TimeNs failover_check = msec(500);
  TimeNs failover_delay = sec(2);
  /// Global merge tick offset past the pods' period boundary.
  TimeNs digest_merge_offset = msec(500);
  /// Per-pod digest seq dedup window at the global tier.
  std::uint64_t digest_dedup_window = 64;
};

struct RPingmeshConfig {
  ControllerConfig controller{};
  AgentConfig agent{};
  AnalyzerConfig analyzer{};
  FederationConfig federation{};
  TimeNs tuple_rotation_interval = sec(3600);  // §5: rotate 20% hourly
  // After start(), re-pull every Agent's pinglists once all registrations
  // have had time to traverse the control plane (first registration order
  // otherwise decides who sees whom).
  TimeNs control_settle_delay = msec(10);
};

/// Deploys the services onto a Cluster and wires them over its
/// transport::ControlPlane: per host one upload channel ("upload/h<N>",
/// Agent -> Analyzer UploadBatch stream) and one RPC channel ("ctrl/h<N>",
/// Agent -> Controller registrations and pinglist pulls); federated
/// deployments add one digest channel per pod ("digest/p<N>"). No component
/// holds a direct function binding to another — a degraded control plane
/// (latency, loss, reordering; see src/faults) exercises every interaction.
class RPingmesh {
 public:
  explicit RPingmesh(host::Cluster& cluster, RPingmeshConfig cfg = {});
  ~RPingmesh();

  /// Start every Agent, the analysis tier's 20 s loop(s), and the hourly
  /// inter-ToR tuple rotation.
  void start();
  void stop();

  // ---- control-plane survivability (src/chaos drives these) ----

  /// Crash the active Controller: its registry is wiped and every Agent's
  /// RPC channel goes peer-down. With a standby, the ControllerGroup
  /// monitor promotes it after failover_delay (epoch bumped past anything
  /// the deposed primary stamped) and the RPC endpoints come back up
  /// pointing at the new primary; without one, Agents wait for
  /// restart_controller() and re-register (capped backoff + jitter).
  void crash_controller();
  void restart_controller();
  [[nodiscard]] bool controller_down() const {
    return group_.active().is_down();
  }

  /// Analyzer-tier brownout: upload (and digest) channels go peer-down,
  /// periods pause, and Agents spill fully-retried batches into their
  /// catch-up rings. Ending the outage drains the rings in seq order and
  /// forgives upload silence.
  void begin_analyzer_outage();
  void end_analyzer_outage();
  [[nodiscard]] bool analyzer_in_outage() const;

  /// Crash one pod's Analyzer process (federated only): its upload and
  /// digest channels lose their peer, its volatile pipeline state dies. The
  /// restart reloads the journaled checkpoint — dedup windows, period
  /// boundary, digest seq — so drained history is never re-counted.
  void crash_pod_analyzer(std::size_t pod);
  void restart_pod_analyzer(std::size_t pod);

  [[nodiscard]] Controller& controller() { return group_.active(); }
  [[nodiscard]] ControllerGroup& controller_group() { return group_; }

  /// Flat deployment's Analyzer. Throws std::logic_error when federated —
  /// use pod_analyzer()/global_analyzer()/scored_history() there.
  [[nodiscard]] Analyzer& analyzer();
  [[nodiscard]] bool federated() const { return global_ != nullptr; }
  [[nodiscard]] std::size_t num_pods() const {
    return federated() ? pod_analyzers_.size() : 1;
  }
  [[nodiscard]] PodAnalyzer& pod_analyzer(std::size_t pod) {
    return *pod_analyzers_.at(pod);
  }
  [[nodiscard]] GlobalAnalyzer& global_analyzer() { return *global_; }

  /// The verdict stream operators (and ChaosRunner) score: the flat
  /// Analyzer's history, or the GlobalAnalyzer's merged history.
  [[nodiscard]] const std::deque<PeriodReport>& scored_history() const;
  /// The analysis thresholds/period backing scored_history().
  [[nodiscard]] const AnalyzerConfig& analyzer_config() const;

  [[nodiscard]] StateJournal& journal() { return journal_; }

  [[nodiscard]] Agent& agent(HostId host) { return *agents_.at(host.value); }
  [[nodiscard]] std::size_t num_agents() const { return agents_.size(); }

  /// Watch a service's performance metric for impact assessment (§4.3.4).
  /// Federated: impact runs at the global tier, against the union service
  /// networks.
  void watch_service(ServiceBinding binding);

 private:
  [[nodiscard]] IngestSink& pod_sink(std::size_t pod);

  host::Cluster& cluster_;
  RPingmeshConfig cfg_;
  ControllerGroup group_;
  // In-process stand-in for the persistence layer every Analyzer role
  // journals to (checkpoints + evidence archive). Declared before the
  // analyzers that hold pointers into it.
  StateJournal journal_;
  std::unique_ptr<Analyzer> analyzer_;                      // pods == 1
  std::vector<std::unique_ptr<PodAnalyzer>> pod_analyzers_;  // pods >= 2
  std::unique_ptr<GlobalAnalyzer> global_;                   // pods >= 2
  std::vector<std::size_t> host_pod_;  // pod index by host id
  // Channels live in the Cluster's ControlPlane (they model the network);
  // these pointers let the destructor detach handlers that capture `this`.
  std::vector<transport::Channel*> upload_channels_;   // by host id
  std::vector<transport::RpcChannel*> rpc_channels_;   // by host id
  std::vector<transport::Channel*> digest_channels_;   // by pod (federated)
  // Switch-side sketch pipeline (AnalyzerConfig::sketch_mode == kOn only —
  // kOff creates none of it, leaving the schedule byte-identical to the
  // pre-sketch deployment). The bank is attached to the Cluster's fabric and
  // must outlive that attachment; the exporter flushes it through
  // "sketch/fabric" into the analysis tier. Declared bank-first so the
  // exporter (which drains the bank) is destroyed before it.
  std::unique_ptr<sketch::LinkSketchBank> sketch_bank_;
  transport::Channel* sketch_channel_ = nullptr;
  std::unique_ptr<sketch::SketchExporter> sketch_exporter_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::unique_ptr<sim::PeriodicTask> rotation_task_;
  std::unique_ptr<sim::PeriodicTask> settle_task_;
  bool running_ = false;
};

}  // namespace rpm::core
