#include "core/journal.h"

#include <array>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace rpm::core {

namespace {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), software table. Guards the
/// checkpoint encoding against bit rot, not just truncation: a real
/// deployment fsyncs these bytes to disk and reads them back after a crash.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& off) {
  if (off + 4 > in.size()) {
    throw std::runtime_error("AnalyzerCheckpoint: truncated input");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[off + i]) << (8 * i);
  }
  off += 4;
  return v;
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& off) {
  if (off + 8 > in.size()) {
    throw std::runtime_error("AnalyzerCheckpoint: truncated input");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[off + i]) << (8 * i);
  }
  off += 8;
  return v;
}

void put_time(std::vector<std::uint8_t>& out, TimeNs t) {
  put_u64(out, static_cast<std::uint64_t>(t));
}

TimeNs get_time(const std::vector<std::uint8_t>& in, std::size_t& off) {
  return static_cast<TimeNs>(get_u64(in, off));
}

void put_ingest(std::vector<std::uint8_t>& out, const IngestCheckpoint& cp) {
  put_u64(out, cp.hosts.size());
  for (const auto& w : cp.hosts) {
    put_u32(out, w.host);
    put_u64(out, w.max_seq);
    put_u64(out, w.seen.size());
    for (std::uint64_t s : w.seen) put_u64(out, s);
  }
}

IngestCheckpoint get_ingest(const std::vector<std::uint8_t>& in,
                            std::size_t& off) {
  IngestCheckpoint cp;
  const std::uint64_t n = get_u64(in, off);
  cp.hosts.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    IngestCheckpoint::HostWindow w;
    w.host = get_u32(in, off);
    w.max_seq = get_u64(in, off);
    const std::uint64_t ns = get_u64(in, off);
    w.seen.reserve(ns);
    for (std::uint64_t j = 0; j < ns; ++j) w.seen.push_back(get_u64(in, off));
    cp.hosts.push_back(std::move(w));
  }
  return cp;
}

void put_id_times(std::vector<std::uint8_t>& out,
                  const std::vector<std::pair<std::uint32_t, TimeNs>>& v) {
  put_u64(out, v.size());
  for (const auto& [id, t] : v) {
    put_u32(out, id);
    put_time(out, t);
  }
}

std::vector<std::pair<std::uint32_t, TimeNs>> get_id_times(
    const std::vector<std::uint8_t>& in, std::size_t& off) {
  std::vector<std::pair<std::uint32_t, TimeNs>> v;
  const std::uint64_t n = get_u64(in, off);
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t id = get_u32(in, off);
    v.emplace_back(id, get_time(in, off));
  }
  return v;
}

}  // namespace

void encode_checkpoint(const AnalyzerCheckpoint& cp,
                       std::vector<std::uint8_t>& out) {
  const std::size_t base = out.size();
  put_time(out, cp.last_period_end);
  put_u64(out, cp.next_problem_id);
  put_u64(out, cp.next_evidence_id);
  put_id_times(out, cp.last_upload);
  put_u64(out, cp.known_hosts.size());
  for (std::uint32_t h : cp.known_hosts) put_u32(out, h);
  put_id_times(out, cp.rnic_blamed_until);
  put_id_times(out, cp.host_noise_until);
  put_ingest(out, cp.ingest);
  put_u64(out, cp.digest_seq);
  put_ingest(out, cp.digest_dedup);
  put_u32(out, crc32(out.data() + base, out.size() - base));
}

AnalyzerCheckpoint decode_checkpoint(const std::vector<std::uint8_t>& in) {
  if (in.size() < 4) {
    throw std::runtime_error("AnalyzerCheckpoint: truncated input");
  }
  const std::size_t payload = in.size() - 4;
  std::size_t tail = payload;
  if (get_u32(in, tail) != crc32(in.data(), payload)) {
    throw std::runtime_error("AnalyzerCheckpoint: checksum mismatch");
  }
  AnalyzerCheckpoint cp;
  std::size_t off = 0;
  cp.last_period_end = get_time(in, off);
  cp.next_problem_id = get_u64(in, off);
  cp.next_evidence_id = get_u64(in, off);
  cp.last_upload = get_id_times(in, off);
  const std::uint64_t nk = get_u64(in, off);
  cp.known_hosts.reserve(nk);
  for (std::uint64_t i = 0; i < nk; ++i) {
    cp.known_hosts.push_back(get_u32(in, off));
  }
  cp.rnic_blamed_until = get_id_times(in, off);
  cp.host_noise_until = get_id_times(in, off);
  cp.ingest = get_ingest(in, off);
  cp.digest_seq = get_u64(in, off);
  cp.digest_dedup = get_ingest(in, off);
  if (off != payload) {
    throw std::runtime_error("AnalyzerCheckpoint: trailing bytes");
  }
  return cp;
}

void StateJournal::save_checkpoint(const std::string& role,
                                   const AnalyzerCheckpoint& cp) {
  std::vector<std::uint8_t>& slot = checkpoints_[role];
  slot.clear();
  encode_checkpoint(cp, slot);
}

std::optional<AnalyzerCheckpoint> StateJournal::load_checkpoint(
    const std::string& role) const {
  auto it = checkpoints_.find(role);
  if (it == checkpoints_.end()) return std::nullopt;
  try {
    return decode_checkpoint(it->second);
  } catch (const std::runtime_error&) {
    // A corrupt checkpoint must not take the Analyzer down with it: the
    // restart path treats nullopt as a clean start (losing dedup windows is
    // recoverable; crashing the restart loop is not).
    ++corrupt_total_;
    telemetry::registry()
        .counter("rpm_journal_corrupt_total",
                 "Checkpoints rejected at decode (CRC or structure)",
                 {{"role", role}})
        .inc();
    return std::nullopt;
  }
}

bool StateJournal::corrupt_checkpoint(const std::string& role,
                                      std::size_t bit) {
  auto it = checkpoints_.find(role);
  if (it == checkpoints_.end() || it->second.empty()) return false;
  std::vector<std::uint8_t>& bytes = it->second;
  bit %= bytes.size() * 8;
  bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  return true;
}

std::size_t StateJournal::checkpoint_bytes(const std::string& role) const {
  auto it = checkpoints_.find(role);
  return it == checkpoints_.end() ? 0 : it->second.size();
}

void StateJournal::archive(const std::string& role, obs::DiagnosisLog&& log) {
  std::deque<obs::DiagnosisLog>& q = archives_[role];
  q.push_back(std::move(log));
  while (q.size() > cfg_.archive_limit) q.pop_front();
}

std::size_t StateJournal::archived(const std::string& role) const {
  auto it = archives_.find(role);
  return it == archives_.end() ? 0 : it->second.size();
}

const obs::EvidenceChain* StateJournal::find_problem(
    const std::string& role, std::uint64_t problem_id) const {
  auto it = archives_.find(role);
  if (it == archives_.end()) return nullptr;
  for (auto log = it->second.rbegin(); log != it->second.rend(); ++log) {
    if (const obs::EvidenceChain* c = log->find_problem(problem_id)) return c;
  }
  return nullptr;
}

const obs::EvidenceChain* StateJournal::find_evidence(
    const std::string& role, std::uint64_t evidence_id) const {
  auto it = archives_.find(role);
  if (it == archives_.end()) return nullptr;
  for (auto log = it->second.rbegin(); log != it->second.rend(); ++log) {
    if (const obs::EvidenceChain* c = log->find(evidence_id)) return c;
  }
  return nullptr;
}

}  // namespace rpm::core
