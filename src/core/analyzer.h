// R-Pingmesh Analyzer (§4.3, §5).
//
// Every `period` (20 s in production) the Analyzer processes all records
// Agents uploaded during the period:
//
//  1. Rule out non-network timeouts and probe noise (§4.3.1):
//       host down   — the target's Agent stopped uploading (> 20 s silent);
//       QPN reset   — the probe addressed a stale QPN (compare against the
//                     Controller's freshest registration);
//       Agent-CPU   — (Figure 6 fix) probes to MULTIPLE RNICs of one host
//                     "dropped" simultaneously, or the responder showed
//                     huge processing delays: the Agent was starved, the
//                     network is innocent.
//  2. Detect anomalous RNICs from ToR-mesh probes (§4.3.2): an RNIC with
//     > 10% ToR-mesh timeouts is anomalous; every anomalous probe touching
//     it (this period and for the next minute) is attributed to the RNIC
//     and excluded from switch localization.
//  3. Localize switch network problems (§4.3.3, Algorithm 1): vote over the
//     forward+ACK paths of the remaining anomalous probes; the links (and
//     switches) with the most votes are the suspects. Cluster Monitoring
//     and each service's Service Tracing evidence are voted separately.
//  4. Detect performance bottlenecks: sustained high network RTT (switch
//     congestion) and sustained high end-host processing delay (CPU
//     overload, Figure 8).
//  5. Track SLAs (drop rates split RNIC/switch, RTT and processing-delay
//     P50..P999) for the cluster and for each service network.
//  6. Assess service impact (§4.3.4): P0 / P1 / P2 per problem, and the
//     "network innocent" verdict when a degraded service shows no P0/P1.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/controller.h"
#include "core/ingest.h"
#include "core/types.h"
#include "obs/diagnosis.h"
#include "sim/scheduler.h"
#include "sketch/sketch.h"
#include "telemetry/metrics.h"
#include "topo/topology.h"

namespace rpm::core {

/// How the Analyzer sources its SLA tables and triage statistics (ROADMAP
/// "Switch-side sketch summaries").
///
///   kOff  raw probe records only — byte-identical to the historical
///         pipeline (the repo-wide same-seed guarantee holds against the
///         pre-sketch baseline).
///   kOn   Agents fold healthy OK records into mergeable HostSummary
///         sketches and switches export per-link sketches; SLA percentiles
///         and the Fig.-6 / bottleneck statistics are computed from the
///         merged sketches, with raw records kept only for probes that
///         carry diagnostic signal (timeouts, service tracing, outliers).
///         Deterministically reproducible: same seed => byte-identical
///         verdicts for any ingest thread count, but NOT byte-identical to
///         kOff (percentiles come from sketch buckets, not exact order
///         statistics).
enum class SketchMode : std::uint8_t { kOff, kOn };

struct AnalyzerConfig {
  TimeNs period = sec(20);                     // §5
  double rnic_timeout_threshold = 0.10;        // §5: >10% ToR-mesh timeouts
  TimeNs rnic_blame_window = sec(60);          // §5: blame RNIC for 1 min
  TimeNs host_silence_threshold = sec(20);     // §5: no upload for 20 s
  std::size_t min_anomalies_for_problem = 3;   // evidence floor
  TimeNs high_rtt_threshold = usec(500);       // congestion flag
  TimeNs high_proc_delay_threshold = msec(5);  // CPU-overload flag
  TimeNs starve_delay_threshold = msec(100);   // Fig. 6 responder-delay test
  double degradation_threshold = 0.5;          // metric below => severe (P0)
  bool enable_cpu_noise_filters = true;        // Fig. 6 improvements
  std::size_t history_limit = 512;
  // Ingestion runtime knobs (sharding, worker threads, queue bounds, batch
  // dedup window) — see IngestConfig in core/ingest.h. Validated (throws on
  // nonsense) at Analyzer construction. ingest.threads = 0 keeps the
  // historical inline single-threaded path; > 0 runs a worker pool with
  // byte-identical verdicts for any thread count.
  using Ingest = IngestConfig;
  Ingest ingest{};
  /// Sketch-driven analysis (see SketchMode above). RPingmesh propagates
  /// this to its Agents (upload thinning) and wires the switch-side sketch
  /// exporter only when kOn, so kOff leaves the whole schedule untouched.
  SketchMode sketch_mode = SketchMode::kOff;
};

/// How the Analyzer watches a service's key performance metric (§4.3.4):
/// `metric` returns the current relative performance in [0,1].
struct ServiceBinding {
  ServiceId id;
  std::function<double()> metric;
};

class Analyzer {
 public:
  Analyzer(const topo::Topology& topo, const Controller& controller,
           sim::EventScheduler& sched, AnalyzerConfig cfg = {});

  /// The ingestion endpoint. This is the Analyzer's entire public ingest
  /// surface: transport deliveries call sink().submit() (dedup by (host,
  /// seq); any batch — duplicate included — proves the host alive), trusted
  /// local producers call sink().submit_trusted() or the upload()
  /// convenience below. The sink owns sharding, duplicate suppression, and
  /// — with config().ingest.threads > 0 — the worker pool (core/ingest.h).
  [[nodiscard]] IngestSink& sink() { return *sink_; }

  /// DEPRECATED shim, kept for one release: forwards to sink().submit().
  /// New code ingests through the IngestSink interface.
  [[deprecated("ingest via Analyzer::sink().submit() instead")]]
  void ingest_batch(UploadBatch batch) { sink_->submit(std::move(batch)); }

  /// Trusted local ingestion (tests, benches, co-located producers): no
  /// duplicate suppression, no batch seq — records go straight to a shard.
  /// Convenience for sink().submit_trusted().
  void upload(HostId host, std::vector<ProbeRecord> records) {
    sink_->submit_trusted(host, std::move(records));
  }

  /// Optional observer invoked for every uploaded record (monitoring UIs,
  /// benches plotting per-probe series). Not used by the analysis itself.
  void set_record_tap(std::function<void(const ProbeRecord&)> tap) {
    tap_ = std::move(tap);
  }

  /// Switch-side sketch ingestion (sketch_mode == kOn): SketchReports from
  /// the fabric exporter land here, deduplicated by (exporter, seq) and
  /// merged per link until the period drains them. Dropped during outage —
  /// matching the record path, a blacked-out Analyzer hears nothing.
  void ingest_sketch(sketch::SketchReport&& rep);

  /// The sketch store (tests / diagnostics).
  [[nodiscard]] const sketch::SketchStore& sketch_store() const {
    return sketch_store_;
  }

  void register_service(ServiceBinding binding);

  /// Begin periodic analysis.
  void start();
  void stop();

  /// Analyzer process outage (control-plane survivability). While in
  /// outage, nothing is ingested and no periods run; leaving the outage
  /// forgives every host's upload silence (bumping its last-upload time to
  /// now) so the blackout itself never reads as a wave of host-down
  /// verdicts — hosts kept measuring, the Analyzer just could not hear them.
  void set_outage(bool outage);
  [[nodiscard]] bool in_outage() const { return outage_; }

  /// Run one analysis over everything buffered since the previous period.
  const PeriodReport& analyze_now();

  [[nodiscard]] const std::deque<PeriodReport>& history() const {
    return history_;
  }
  [[nodiscard]] const PeriodReport* last_report() const {
    return history_.empty() ? nullptr : &history_.back();
  }

  /// §4.3.4: true when the last period shows no P0/P1 problem affecting
  /// this service — the network is innocent of the service's woes.
  [[nodiscard]] bool network_innocent(ServiceId service) const;

  // ---- diagnosis explainability (src/obs) ----

  /// Render the evidence chain behind a Problem as structured JSON: input
  /// probe ids, Algorithm 1 vote tally, thresholds compared, triage branch.
  /// Searches newest-first; empty string when the id is unknown (or its
  /// period aged out of the history window).
  [[nodiscard]] std::string explain(std::uint64_t problem_id) const;

  /// Resolve an EvidenceRef (Problem::evidence, SlaReport::evidence).
  [[nodiscard]] const obs::EvidenceChain* evidence(EvidenceRef ref) const;

  [[nodiscard]] const obs::DiagnosisLog* last_diagnosis() const {
    return diagnosis_.empty() ? nullptr : &diagnosis_.back();
  }
  [[nodiscard]] const std::deque<obs::DiagnosisLog>& diagnosis_history()
      const {
    return diagnosis_;
  }

  [[nodiscard]] const AnalyzerConfig& config() const { return cfg_; }

 private:
  struct Evidence {
    std::vector<const ProbeRecord*> records;
  };

  void vote_paths(const std::vector<const ProbeRecord*>& records,
                  std::vector<LinkId>& out_links,
                  std::vector<SwitchId>& out_switches,
                  std::vector<std::pair<LinkId, std::size_t>>* top_votes =
                      nullptr,
                  obs::EvidenceChain* chain = nullptr) const;
  void assess_impact(PeriodReport& report) const;
  SlaReport make_sla(const std::vector<const ProbeRecord*>& records,
                     const std::unordered_set<std::uint64_t>& rnic_timeouts,
                     const std::unordered_set<std::uint64_t>& switch_timeouts)
      const;
  SlaReport make_sla_sketch(
      const std::vector<const ProbeRecord*>& records,
      const sketch::HostSummary& summary,
      const std::unordered_set<std::uint64_t>& rnic_timeouts,
      const std::unordered_set<std::uint64_t>& switch_timeouts) const;

  const topo::Topology& topo_;
  const Controller& controller_;
  sim::EventScheduler& sched_;
  AnalyzerConfig cfg_;

  std::function<void(const ProbeRecord&)> tap_;
  std::unordered_map<std::uint32_t, TimeNs> last_upload_;  // by host id
  std::unordered_set<std::uint32_t> known_hosts_;
  std::unordered_map<std::uint32_t, TimeNs> rnic_blamed_until_;
  std::vector<ServiceBinding> services_;
  std::deque<PeriodReport> history_;
  // One DiagnosisLog per period, trimmed in lockstep with history_.
  std::deque<obs::DiagnosisLog> diagnosis_;
  std::uint64_t next_evidence_id_ = 1;
  std::uint64_t next_problem_id_ = 1;
  // Switch-side sketch reports accumulated since the last period drain
  // (sketch_mode == kOn; idle otherwise).
  sketch::SketchStore sketch_store_;
  TimeNs last_period_end_ = 0;
  bool outage_ = false;
  std::unique_ptr<sim::PeriodicTask> period_task_;
  // Declared after the state its hooks touch (tap_, last_upload_,
  // known_hosts_): destroyed first, joining any worker threads before the
  // members they could reach go away.
  std::unique_ptr<IngestSink> sink_;

  // Self-observability: the 20 s pipeline is the Analyzer's hot path; each
  // stage's wall-clock cost is tracked so future sharding/batching PRs can
  // show where the time goes.
  static constexpr int kNumStages = 7;
  static const char* stage_name(int stage);
  // Ingest-side series (uploads, records, batches by dedup outcome, bucket
  // sizes, queue depth/drops) are owned by the IngestSink.
  struct Metrics {
    telemetry::Counter periods;
    telemetry::Histogram stage_ns[kNumStages];
    telemetry::Counter timeouts_by_cause[5];    // indexed by AnomalyCause
    telemetry::Counter problems_by_category[7];  // indexed by ProblemCategory
    telemetry::Counter problems_by_priority[4];  // indexed by Priority
    // Links whose period sketch showed drops — the links whose raw records
    // the sketch pipeline still wants verbatim (sketch_mode == kOn only).
    telemetry::Counter raw_fallback_links;
  };
  Metrics metrics_;
};

}  // namespace rpm::core
