// R-Pingmesh Analyzer (§4.3, §5) — the deployment facade over AnalysisCore.
//
// Every `period` (20 s in production) the Analyzer processes all records
// Agents uploaded during the period:
//
//  1. Rule out non-network timeouts and probe noise (§4.3.1):
//       host down   — the target's Agent stopped uploading (> 20 s silent);
//       QPN reset   — the probe addressed a stale QPN (compare against the
//                     Controller's freshest registration);
//       Agent-CPU   — (Figure 6 fix) probes to MULTIPLE RNICs of one host
//                     "dropped" simultaneously, or the responder showed
//                     huge processing delays: the Agent was starved, the
//                     network is innocent.
//  2. Detect anomalous RNICs from ToR-mesh probes (§4.3.2): an RNIC with
//     > 10% ToR-mesh timeouts is anomalous; every anomalous probe touching
//     it (this period and for the next minute) is attributed to the RNIC
//     and excluded from switch localization.
//  3. Localize switch network problems (§4.3.3, Algorithm 1): vote over the
//     forward+ACK paths of the remaining anomalous probes; the links (and
//     switches) with the most votes are the suspects. Cluster Monitoring
//     and each service's Service Tracing evidence are voted separately.
//  4. Detect performance bottlenecks: sustained high network RTT (switch
//     congestion) and sustained high end-host processing delay (CPU
//     overload, Figure 8).
//  5. Track SLAs (drop rates split RNIC/switch, RTT and processing-delay
//     P50..P999) for the cluster and for each service network.
//  6. Assess service impact (§4.3.4): P0 / P1 / P2 per problem, and the
//     "network innocent" verdict when a degraded service shows no P0/P1.
//
// The pipeline itself lives in AnalysisCore (core/analysis_core.h); this
// class owns what a *deployment* of the pipeline needs — the IngestSink, the
// periodic schedule, outage/crash handling, and journal checkpointing — and
// is the role the federation tier wraps per pod (core/federation.h).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/analysis_core.h"
#include "core/controller.h"
#include "core/ingest.h"
#include "core/journal.h"
#include "core/types.h"
#include "obs/diagnosis.h"
#include "sim/scheduler.h"
#include "sketch/sketch.h"
#include "topo/topology.h"

namespace rpm::core {

class Analyzer {
 public:
  Analyzer(const topo::Topology& topo, const Controller& controller,
           sim::Scheduler& sched, AnalyzerConfig cfg = {});

  /// The ingestion endpoint. This is the Analyzer's entire public ingest
  /// surface: transport deliveries call sink().submit() (dedup by (host,
  /// seq); any batch — duplicate included — proves the host alive), trusted
  /// local producers call sink().submit_trusted() or the upload()
  /// convenience below. The sink owns sharding, duplicate suppression, and
  /// — with config().ingest.threads > 0 — the worker pool (core/ingest.h).
  [[nodiscard]] IngestSink& sink() { return *sink_; }

  /// Trusted local ingestion (tests, benches, co-located producers): no
  /// duplicate suppression, no batch seq — records go straight to a shard.
  /// Convenience for sink().submit_trusted().
  void upload(HostId host, std::vector<ProbeRecord> records) {
    sink_->submit_trusted(host, std::move(records));
  }

  /// Optional observer invoked for every uploaded record (monitoring UIs,
  /// benches plotting per-probe series). Not used by the analysis itself.
  void set_record_tap(std::function<void(const ProbeRecord&)> tap) {
    tap_ = std::move(tap);
  }

  /// Switch-side sketch ingestion (sketch_mode == kOn): SketchReports from
  /// the fabric exporter land here, deduplicated by (exporter, seq) and
  /// merged per link until the period drains them. Dropped during outage —
  /// matching the record path, a blacked-out Analyzer hears nothing.
  void ingest_sketch(sketch::SketchReport&& rep);

  /// The sketch store (tests / diagnostics).
  [[nodiscard]] const sketch::SketchStore& sketch_store() const {
    return core_->sketch_store();
  }

  void register_service(ServiceBinding binding) {
    core_->register_service(std::move(binding));
  }

  /// Begin periodic analysis.
  void start();
  void stop();

  /// Analyzer process outage (control-plane survivability). While in
  /// outage, nothing is ingested and no periods run; leaving the outage
  /// forgives every host's upload silence (bumping its last-upload time to
  /// now) so the blackout itself never reads as a wave of host-down
  /// verdicts — hosts kept measuring, the Analyzer just could not hear them.
  void set_outage(bool outage);
  [[nodiscard]] bool in_outage() const { return outage_; }

  /// Run one analysis over everything buffered since the previous period.
  const PeriodReport& analyze_now();

  [[nodiscard]] const std::deque<PeriodReport>& history() const {
    return core_->history();
  }
  [[nodiscard]] const PeriodReport* last_report() const {
    return core_->last_report();
  }

  /// §4.3.4: true when the last period shows no P0/P1 problem affecting
  /// this service — the network is innocent of the service's woes.
  [[nodiscard]] bool network_innocent(ServiceId service) const {
    return core_->network_innocent(service);
  }

  // ---- diagnosis explainability (src/obs) ----

  /// Render the evidence chain behind a Problem as structured JSON: input
  /// probe ids, Algorithm 1 vote tally, thresholds compared, triage branch.
  /// Searches newest-first; empty string when the id is unknown (with a
  /// journal attached, aged-out periods are searched in its archive too).
  [[nodiscard]] std::string explain(std::uint64_t problem_id) const {
    return core_->explain(problem_id);
  }

  /// Resolve an EvidenceRef (Problem::evidence, SlaReport::evidence).
  [[nodiscard]] const obs::EvidenceChain* evidence(EvidenceRef ref) const {
    return core_->evidence(ref);
  }

  [[nodiscard]] const obs::DiagnosisLog* last_diagnosis() const {
    return core_->last_diagnosis();
  }
  [[nodiscard]] const std::deque<obs::DiagnosisLog>& diagnosis_history()
      const {
    return core_->diagnosis_history();
  }

  [[nodiscard]] const AnalyzerConfig& config() const {
    return core_->config();
  }

  // ---- federation hooks (core/federation.h) ----

  /// Retarget QPN-reset triage at a different Controller (standby failover).
  void set_directory(const Controller* directory) {
    core_->set_directory(directory);
  }

  /// Restrict cause attribution to `scratch->local_hosts` and export
  /// digest material per period (see FederationScratch). Null restores the
  /// flat pipeline.
  void set_federation_scratch(FederationScratch* scratch) { fed_ = scratch; }

  /// Invoked after every completed period with the report and its
  /// DiagnosisLog — the PodAnalyzer builds and sends its digest here.
  void set_period_hook(
      std::function<void(const PeriodReport&, const obs::DiagnosisLog&)>
          hook) {
    period_hook_ = std::move(hook);
  }

  /// Direct pipeline access (federation roles, tests).
  [[nodiscard]] AnalysisCore& core() { return *core_; }
  [[nodiscard]] const AnalysisCore& core() const { return *core_; }

  // ---- persistence (core::StateJournal) ----

  /// Checkpoint after every period under `role`, spill aged-out
  /// DiagnosisLogs into the journal archive, and allow
  /// restore_from_journal() after a crash.
  void attach_journal(StateJournal* journal, std::string role);

  /// Lets the owner stamp extra fields (e.g. the PodAnalyzer's digest_seq)
  /// into every saved checkpoint.
  void set_checkpoint_hook(std::function<void(AnalyzerCheckpoint&)> hook) {
    checkpoint_hook_ = std::move(hook);
  }

  /// Process crash: volatile pipeline state is lost, ingestion stops (the
  /// sink is rebuilt empty and paused). Journaled state survives for
  /// restore_from_journal().
  void crash();

  /// Restart after crash(): reload the journaled checkpoint — (host, seq)
  /// dedup windows, period boundary, id counters, liveness clocks — so
  /// drained history is never re-counted. Returns false when no checkpoint
  /// was ever saved (cold start: the Analyzer still leaves the outage, with
  /// fresh state). Upload silence across the downtime is forgiven either
  /// way.
  bool restore_from_journal();

 private:
  std::unique_ptr<IngestSink> make_sink();
  void save_checkpoint();

  const topo::Topology& topo_;
  sim::Scheduler& sched_;
  // Copy of cfg.ingest so a crashed sink can be rebuilt (and because the
  // sink is constructed before the core that owns the full config).
  IngestConfig ingest_cfg_;

  std::function<void(const ProbeRecord&)> tap_;
  std::function<void(const PeriodReport&, const obs::DiagnosisLog&)>
      period_hook_;
  std::function<void(AnalyzerCheckpoint&)> checkpoint_hook_;
  FederationScratch* fed_ = nullptr;
  StateJournal* journal_ = nullptr;
  std::string role_ = "analyzer";
  bool outage_ = false;
  std::unique_ptr<AnalysisCore> core_;
  std::unique_ptr<sim::PeriodicTask> period_task_;
  // Declared after the state its hooks touch (tap_, the core's liveness
  // maps): destroyed first, joining any worker threads before the members
  // they could reach go away.
  std::unique_ptr<IngestSink> sink_;
};

}  // namespace rpm::core
