#include "core/rootcause.h"

#include <cstdio>

#include <algorithm>
#include <sstream>

namespace rpm::core {

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

}  // namespace

std::string hints_json(const std::vector<RootCauseHint>& hints) {
  std::string out = "[";
  bool first = true;
  char buf[40];
  for (const RootCauseHint& h : hints) {
    if (!first) out += ',';
    first = false;
    out += "{\"cause\":\"";
    append_json_escaped(out, h.cause);
    std::snprintf(buf, sizeof(buf), "\",\"confidence\":%.3f", h.confidence);
    out += buf;
    out += ",\"evidence\":\"";
    append_json_escaped(out, h.evidence);
    out += "\"}";
  }
  out += ']';
  return out;
}

RootCauseAdvisor::RootCauseAdvisor(host::Cluster& cluster)
    : cluster_(cluster),
      link_base_(cluster.topology().num_links()),
      rnic_base_(cluster.num_rnics()) {}

void RootCauseAdvisor::snapshot_baseline() {
  for (std::size_t i = 0; i < link_base_.size(); ++i) {
    const auto& s = cluster_.fabric().link_state(
        LinkId{static_cast<std::uint32_t>(i)});
    link_base_[i] = {s.drops_corrupt, s.drops_overflow, s.drops_down,
                     s.pfc_pause_events};
  }
  for (std::size_t i = 0; i < rnic_base_.size(); ++i) {
    const auto& c =
        cluster_.rnic_device(RnicId{static_cast<std::uint32_t>(i)}).counters();
    rnic_base_[i] = {c.rx_dropped_no_qp, c.rx_dropped_misconfig,
                     c.rc_retransmits, c.rc_broken_connections};
  }
}

void RootCauseAdvisor::advise_link(LinkId link,
                                   std::vector<RootCauseHint>& out) const {
  const auto& topo = cluster_.topology();
  // Examine both directions of the cable: symptoms often show on one side.
  for (LinkId l : {link, topo.link(link).peer}) {
    const auto& s = cluster_.fabric().link_state(l);
    const auto& base = link_base_[l.value];
    const auto d_corrupt = s.drops_corrupt - base.drops_corrupt;
    const auto d_overflow = s.drops_overflow - base.drops_overflow;
    const auto d_down = s.drops_down - base.drops_down;
    const auto d_pause = s.pfc_pause_events - base.pfc_pause_events;

    const auto name = topo.link(l).name;
    if (s.deadlocked) {
      out.push_back({"PFC deadlock (#5): watchdog not functioning",
                     0.95, name + ": link deadlocked, traffic frozen"});
    }
    if (d_corrupt > 0) {
      std::ostringstream ev;
      ev << name << ": " << d_corrupt
         << " CRC/corruption drops this period (damaged fiber, dusty optics)";
      out.push_back({"packet corruption on fiber/optical module (#2)",
                     std::min(0.9, 0.5 + 0.01 * static_cast<double>(d_corrupt)),
                     ev.str()});
    }
    if (d_down > 0 && !s.admin_up) {
      out.push_back({"link administratively/persistently down", 0.9,
                     name + ": admin-down with packets still arriving"});
    } else if (d_down > 0) {
      std::ostringstream ev;
      ev << name << ": " << d_down
         << " drops on an up link (port state bouncing)";
      out.push_back({"port flapping (#1): check cable seating/compatibility",
                     std::min(0.9, 0.5 + 0.02 * static_cast<double>(d_down)),
                     ev.str()});
    }
    if (d_overflow > 0) {
      std::ostringstream ev;
      ev << name << ": " << d_overflow
         << " buffer-overflow drop events on a lossless class";
      out.push_back(
          {"PFC unconfigured or headroom misconfigured (#9)",
           std::min(0.9, 0.4 + 0.02 * static_cast<double>(d_overflow)),
           ev.str()});
    }
    if (d_pause > 5 && d_overflow == 0 && d_corrupt == 0 && d_down == 0) {
      std::ostringstream ev;
      ev << name << ": " << d_pause
         << " PFC pause events, no drops (congestion tree)";
      out.push_back({"congestion: incast or ECMP collision (#10/#11), or a "
                     "PFC storm from a slow endpoint (#13/#14)",
                     0.6, ev.str()});
    }
  }
}

void RootCauseAdvisor::advise_rnic(RnicId rnic,
                                   std::vector<RootCauseHint>& out) const {
  const auto& dev = cluster_.rnic_device(rnic);
  const auto& c = dev.counters();
  const auto& base = rnic_base_[rnic.value];
  const auto& topo = cluster_.topology();
  const auto name = topo.rnic(rnic).name;

  if (dev.is_down()) {
    out.push_back({"RNIC down (#3): replace or reseat the device", 0.95,
                   name + ": device reports down"});
  }
  const auto d_misconfig = c.rx_dropped_misconfig - base.rx_dropped_misconfig;
  if (d_misconfig > 0) {
    std::ostringstream ev;
    ev << name << ": " << d_misconfig
       << " packets undeliverable at the RDMA layer while the port is up";
    out.push_back(
        {"RNIC misconfiguration (#6/#7): RDMA route or GID index missing",
         std::min(0.95, 0.6 + 0.01 * static_cast<double>(d_misconfig)),
         ev.str()});
  }
  const auto d_noqp = c.rx_dropped_no_qp - base.rx_dropped_no_qp;
  if (d_noqp > 0) {
    std::ostringstream ev;
    ev << name << ": " << d_noqp << " packets addressed stale QPNs";
    out.push_back({"probe noise: peer pinglists hold stale QPNs after an "
                   "Agent restart (not a hardware fault)",
                   0.5, ev.str()});
  }
  if (dev.pcie_factor() < 1.0) {
    std::ostringstream ev;
    ev << name << ": PCIe at " << dev.pcie_factor() * 100
       << "% of nominal bandwidth";
    out.push_back({"PCIe downgrade (#13/#14): reseat the card, check "
                   "ACS/ATS configuration",
                   0.9, ev.str()});
  }
  // Host-link symptoms show on the RNIC's cable.
  advise_link(topo.rnic(rnic).uplink, out);
}

std::vector<RootCauseHint> RootCauseAdvisor::advise(const Problem& p) const {
  std::vector<RootCauseHint> out;
  switch (p.category) {
    case ProblemCategory::kRnicProblem:
      if (p.rnic.valid()) advise_rnic(p.rnic, out);
      break;
    case ProblemCategory::kSwitchNetworkProblem:
    case ProblemCategory::kHighNetworkRtt:
      for (LinkId l : p.suspect_links) advise_link(l, out);
      break;
    case ProblemCategory::kHostDown:
      out.push_back({"host power/kernel failure (#4): check BMC and console",
                     0.8, "Agent stopped uploading; all host RNICs silent"});
      break;
    case ProblemCategory::kHighProcessingDelay:
      out.push_back({"CPU overload (#12): co-located CPU-hungry work (e.g. "
                     "TCP checkpoint upload)",
                     0.8, "responder processing delay elevated; network RTT "
                          "normal"});
      break;
    case ProblemCategory::kQpnResetNoise:
    case ProblemCategory::kAgentCpuNoise:
      out.push_back({"no device fault: probe noise already classified",
                     0.9, p.summary});
      break;
  }
  std::sort(out.begin(), out.end(),
            [](const RootCauseHint& a, const RootCauseHint& b) {
              return a.confidence > b.confidence;
            });
  // De-duplicate by cause, keeping the strongest.
  std::vector<RootCauseHint> dedup;
  for (auto& h : out) {
    const bool seen = std::any_of(
        dedup.begin(), dedup.end(),
        [&h](const RootCauseHint& d) { return d.cause == h.cause; });
    if (!seen) dedup.push_back(std::move(h));
  }
  return dedup;
}

}  // namespace rpm::core
