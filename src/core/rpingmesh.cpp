#include "core/rpingmesh.h"

namespace rpm::core {

RPingmesh::RPingmesh(host::Cluster& cluster, RPingmeshConfig cfg)
    : cluster_(cluster),
      cfg_(cfg),
      controller_(cluster.topology(), cluster.router(), cfg.controller),
      analyzer_(cluster.topology(), controller_, cluster.scheduler(),
                cfg.analyzer) {
  agents_.reserve(cluster_.num_hosts());
  for (const topo::HostInfo& h : cluster_.topology().hosts()) {
    agents_.push_back(std::make_unique<Agent>(
        cluster_, h.id, controller_, analyzer_.upload_sink(), cfg.agent));
  }
}

void RPingmesh::start() {
  if (running_) return;
  running_ = true;
  for (auto& a : agents_) a->start();
  // Agents registered on start; refresh once more so every pinglist sees
  // every peer's comm info (first registration order matters otherwise).
  for (auto& a : agents_) a->refresh_pinglists();
  analyzer_.start();
  rotation_task_ = std::make_unique<sim::PeriodicTask>(
      cluster_.scheduler(), cfg_.tuple_rotation_interval,
      [this] { controller_.rotate_intertor_tuples(); });
  rotation_task_->start(cfg_.tuple_rotation_interval);
}

void RPingmesh::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& a : agents_) a->stop();
  analyzer_.stop();
  if (rotation_task_) rotation_task_->cancel();
}

}  // namespace rpm::core
