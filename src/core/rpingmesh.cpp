#include "core/rpingmesh.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace rpm::core {

RPingmesh::RPingmesh(host::Cluster& cluster, RPingmeshConfig cfg)
    : cluster_(cluster),
      cfg_(cfg),
      group_(cluster.topology(), cluster.router(), cluster.scheduler(),
             cfg.controller,
             ControllerGroup::Config{cfg.federation.standby_controller,
                                     cfg.federation.failover_check,
                                     cfg.federation.failover_delay}) {
  const std::size_t pods = cfg_.federation.pods;
  if (pods == 0) {
    throw std::invalid_argument("RPingmesh: federation.pods must be >= 1");
  }
  transport::ControlPlane& cp = cluster_.control_plane();
  const topo::Topology& topo = cluster_.topology();
  const bool sketch_on = cfg_.analyzer.sketch_mode == SketchMode::kOn;
  if (sketch_on) {
    // Propagate sketch mode to the Agents: fold healthy OK records into the
    // batch HostSummary, keeping raw anything the Analyzer's outlier triage
    // inspects record by record (thresholds mirror the Analyzer's own).
    cfg_.agent.sketch_thin_uploads = true;
    cfg_.agent.sketch_keep_rtt_above = cfg_.analyzer.high_rtt_threshold;
    cfg_.agent.sketch_keep_proc_above = cfg_.analyzer.high_proc_delay_threshold;
  }

  // Hosts map to analysis pods by the Clos pod of their first RNIC's ToR,
  // folded modulo the configured pod count.
  host_pod_.assign(topo.num_hosts(), 0);
  for (const topo::HostInfo& h : topo.hosts()) {
    const SwitchId tor = topo.rnic(h.rnics.front()).tor;
    host_pod_[h.id.value] = topo.switch_info(tor).pod % pods;
  }

  // Analysis tier. Constructed before the channels/Agents so the metric
  // registration order matches the historical deployment (sink series, then
  // pipeline series, then per-Agent series).
  if (pods == 1) {
    analyzer_ = std::make_unique<Analyzer>(topo, group_.active(),
                                           cluster_.scheduler(), cfg_.analyzer);
    analyzer_->attach_journal(&journal_, "analyzer");
  } else {
    std::vector<std::vector<HostId>> pod_hosts(pods);
    for (const topo::HostInfo& h : topo.hosts()) {
      pod_hosts[host_pod_[h.id.value]].push_back(h.id);
    }
    for (std::size_t p = 0; p < pods; ++p) {
      if (pod_hosts[p].empty()) {
        throw std::invalid_argument(
            "RPingmesh: federation.pods exceeds the populated Clos pods "
            "(pod " +
            std::to_string(p) + " has no hosts)");
      }
      pod_analyzers_.push_back(std::make_unique<PodAnalyzer>(
          topo, group_.active(), cluster_.scheduler(), cfg_.analyzer,
          static_cast<std::uint32_t>(p), std::move(pod_hosts[p])));
      pod_analyzers_.back()->attach_journal(&journal_);
    }
    GlobalAnalyzer::Config gcfg;
    gcfg.analyzer = cfg_.analyzer;
    gcfg.merge_offset = cfg_.federation.digest_merge_offset;
    gcfg.digest_dedup_window = cfg_.federation.digest_dedup_window;
    global_ = std::make_unique<GlobalAnalyzer>(topo, cluster_.scheduler(),
                                               gcfg);
    global_->attach_journal(&journal_);
  }

  agents_.reserve(cluster_.num_hosts());
  for (const topo::HostInfo& h : topo.hosts()) {
    const std::string suffix = "/h" + std::to_string(h.id.value);
    const std::size_t pod = host_pod_[h.id.value];
    // Agent -> Analyzer: the upload stream hands off into the (pod's)
    // IngestSink. Records are moved out of the payload on first delivery;
    // the sink dedups retried batches by (host, seq) before touching the
    // body, and with ingest.threads > 0 the delivery only enqueues — the
    // worker pool does the rest off the sim thread.
    transport::Channel& up = cp.make_channel(
        "upload" + suffix, [this, pod](std::uint64_t, std::any& payload) {
          if (auto* batch = std::any_cast<UploadBatch>(&payload)) {
            pod_sink(pod).submit(std::move(*batch));
          }
        });
    // Agent -> Controller: registration + pinglist pulls. Both handlers are
    // idempotent, as at-least-once request delivery requires — and they
    // resolve the ACTIVE Controller at call time, so a promoted standby
    // serves (and epoch-stamps) everything that arrives after takeover.
    transport::RpcChannel& rpc = cp.make_rpc_channel(
        "ctrl" + suffix, [this](const std::any& req) -> std::any {
          Controller& c = group_.active();
          if (const auto* r = std::any_cast<AgentRegistration>(&req)) {
            RegistrationAck ack;
            ack.accepted = c.register_agent(r->host, r->rnics);
            ack.controller_epoch = c.epoch();
            ack.lease_duration = c.config().lease_duration;
            return std::any(ack);
          }
          if (const auto* r = std::any_cast<AgentHeartbeat>(&req)) {
            return std::any(c.heartbeat(r->host));
          }
          if (const auto* r = std::any_cast<PinglistPullRequest>(&req)) {
            return std::any(serve_pinglist_pull(c, *r));
          }
          return std::any();
        });
    upload_channels_.push_back(&up);
    rpc_channels_.push_back(&rpc);
    agents_.push_back(std::make_unique<Agent>(cluster_, h.id, group_.active(),
                                              up, rpc, cfg_.agent));
  }

  if (pods > 1) {
    // Pod -> global digest fan-in, one channel per pod so wire accounting
    // and outages are per pod. Created after the host channels: pods == 1
    // must keep the historical channel construction sequence exactly.
    for (std::size_t p = 0; p < pods; ++p) {
      transport::Channel& dch = cp.make_channel(
          "digest/p" + std::to_string(p),
          [this](std::uint64_t, std::any& payload) {
            if (auto* d = std::any_cast<PodDigest>(&payload)) {
              global_->ingest_digest(std::move(*d));
            }
          });
      digest_channels_.push_back(&dch);
      pod_analyzers_[p]->set_digest_channel(&dch);
    }
  }

  if (sketch_on) {
    // Switch-side sketches: the fabric updates one LinkSketch per link on
    // every forwarded/dropped datagram; the exporter flushes the bank on the
    // 5 s upload cadence through its own channel into the analysis tier's
    // SketchStore(s). Federated: every pod gets a copy (a pod cannot know
    // which links its own records will vote).
    sketch_bank_ = std::make_unique<sketch::LinkSketchBank>(topo.num_links());
    cluster_.fabric().attach_sketches(sketch_bank_.get());
    sketch_channel_ = &cp.make_channel(
        "sketch/fabric", [this](std::uint64_t, std::any& payload) {
          auto* rep = std::any_cast<sketch::SketchReport>(&payload);
          if (rep == nullptr) return;
          if (analyzer_) {
            analyzer_->ingest_sketch(std::move(*rep));
            return;
          }
          for (std::size_t p = 0; p + 1 < pod_analyzers_.size(); ++p) {
            sketch::SketchReport copy = *rep;
            pod_analyzers_[p]->analyzer().ingest_sketch(std::move(copy));
          }
          pod_analyzers_.back()->analyzer().ingest_sketch(std::move(*rep));
        });
    sketch::SketchExporterConfig ecfg;
    ecfg.period = cfg_.agent.upload_interval;
    sketch_exporter_ = std::make_unique<sketch::SketchExporter>(
        cluster_.scheduler(), *sketch_channel_, *sketch_bank_, ecfg);
  }

  // Standby promotion (ControllerGroup monitor): the new primary listens
  // where the old one did — RPC endpoints come back up — and every
  // directory pointer (Agents' comm-info lookups, Analyzers' QPN-reset
  // triage) retargets. Agents then re-register through their normal lease
  // expiry -> backoff machinery; pinglist responses the deposed primary
  // left in flight are fenced by their stale epoch.
  group_.set_on_failover([this](Controller& promoted) {
    for (transport::RpcChannel* rpc : rpc_channels_) {
      rpc->set_server_down(false);
    }
    for (auto& a : agents_) a->set_directory(&promoted);
    if (analyzer_) analyzer_->set_directory(&promoted);
    for (auto& p : pod_analyzers_) p->analyzer().set_directory(&promoted);
  });
}

RPingmesh::~RPingmesh() {
  stop();
  // The channels outlive this deployment (the ControlPlane owns them, and
  // deliveries may still be queued on the scheduler): detach every handler
  // that captures `this` before the members they reach are destroyed.
  for (transport::Channel* ch : upload_channels_) ch->set_handler(nullptr);
  for (transport::RpcChannel* rpc : rpc_channels_) {
    rpc->set_server(nullptr);
    rpc->cancel_pending();
  }
  for (transport::Channel* ch : digest_channels_) ch->set_handler(nullptr);
  if (sketch_channel_ != nullptr) sketch_channel_->set_handler(nullptr);
  // The fabric outlives this deployment too — detach the bank before it dies.
  if (sketch_bank_) cluster_.fabric().attach_sketches(nullptr);
}

IngestSink& RPingmesh::pod_sink(std::size_t pod) {
  if (analyzer_) return analyzer_->sink();
  return pod_analyzers_[pod]->analyzer().sink();
}

Analyzer& RPingmesh::analyzer() {
  if (analyzer_ == nullptr) {
    throw std::logic_error(
        "RPingmesh::analyzer(): no flat Analyzer in a federated deployment; "
        "use pod_analyzer()/global_analyzer()/scored_history()");
  }
  return *analyzer_;
}

const std::deque<PeriodReport>& RPingmesh::scored_history() const {
  return global_ ? global_->history() : analyzer_->history();
}

const AnalyzerConfig& RPingmesh::analyzer_config() const {
  return global_ ? global_->config().analyzer : analyzer_->config();
}

void RPingmesh::watch_service(ServiceBinding binding) {
  if (analyzer_) {
    analyzer_->register_service(std::move(binding));
    return;
  }
  // Impact assessment runs where the union service networks live.
  global_->register_service(std::move(binding));
}

void RPingmesh::start() {
  if (running_) return;
  running_ = true;
  for (auto& a : agents_) a->start();
  // Registrations are in flight; once they settle, refresh every pinglist so
  // each Agent sees every peer's comm info regardless of arrival order.
  settle_task_ = std::make_unique<sim::PeriodicTask>(
      cluster_.scheduler(), cfg_.control_settle_delay, [this] {
        settle_task_->cancel();  // one-shot
        if (!running_) return;
        for (auto& a : agents_) a->refresh_pinglists();
      });
  settle_task_->start(cfg_.control_settle_delay);
  if (analyzer_) {
    analyzer_->start();
  } else {
    for (auto& p : pod_analyzers_) p->start();
    global_->start();
  }
  if (sketch_exporter_) sketch_exporter_->start();
  rotation_task_ = std::make_unique<sim::PeriodicTask>(
      cluster_.scheduler(), cfg_.tuple_rotation_interval,
      [this] { group_.active().rotate_intertor_tuples(); });
  rotation_task_->start(cfg_.tuple_rotation_interval);
}

void RPingmesh::crash_controller() {
  if (group_.active().is_down()) return;
  group_.crash_active();
  // The server process is gone: every Agent's RPC channel loses its peer.
  // Requests already in flight are eaten by the (dead) endpoint; retries
  // expire normally, so Agents see the crash as unanswered heartbeats. With
  // a standby, the group monitor promotes it after failover_delay and the
  // on_failover hook brings these endpoints back up.
  for (transport::RpcChannel* rpc : rpc_channels_) rpc->set_server_down(true);
}

void RPingmesh::restart_controller() {
  const bool active_down = group_.active().is_down();
  group_.restart_crashed();
  // A member the monitor already replaced comes back as the NEXT standby —
  // the endpoints already point at the promoted primary, nothing to do. If
  // the crashed member was still active (no standby, or the takeover grace
  // had not elapsed), this is the old single-Controller restart path.
  if (active_down && !group_.active().is_down()) {
    for (transport::RpcChannel* rpc : rpc_channels_) {
      rpc->set_server_down(false);
    }
  }
}

void RPingmesh::begin_analyzer_outage() {
  if (analyzer_in_outage()) return;
  if (analyzer_) {
    analyzer_->set_outage(true);
  } else {
    for (auto& p : pod_analyzers_) p->analyzer().set_outage(true);
    global_->set_outage(true);
  }
  for (transport::Channel* ch : upload_channels_) ch->set_peer_down(true);
  for (transport::Channel* ch : digest_channels_) ch->set_peer_down(true);
  // Sketch reports head to the same dead process(es).
  if (sketch_channel_ != nullptr) sketch_channel_->set_peer_down(true);
}

void RPingmesh::end_analyzer_outage() {
  if (!analyzer_in_outage()) return;
  for (transport::Channel* ch : upload_channels_) ch->set_peer_down(false);
  for (transport::Channel* ch : digest_channels_) ch->set_peer_down(false);
  if (sketch_channel_ != nullptr) sketch_channel_->set_peer_down(false);
  // Order matters: set_outage(false) stamps "now" as every host's silence
  // epoch AFTER the channels can deliver again, so nothing slips between.
  if (analyzer_) {
    analyzer_->set_outage(false);
  } else {
    for (auto& p : pod_analyzers_) p->analyzer().set_outage(false);
    global_->set_outage(false);
  }
}

bool RPingmesh::analyzer_in_outage() const {
  return global_ ? global_->in_outage() : analyzer_->in_outage();
}

void RPingmesh::crash_pod_analyzer(std::size_t pod) {
  PodAnalyzer& pa = *pod_analyzers_.at(pod);
  if (pa.analyzer().in_outage()) return;
  pa.crash();
  // The pod's process is gone: its hosts' upload channels and its digest
  // channel lose their peer. Agents spill into their catch-up rings.
  for (const topo::HostInfo& h : cluster_.topology().hosts()) {
    if (host_pod_[h.id.value] == pod) {
      upload_channels_[h.id.value]->set_peer_down(true);
    }
  }
  digest_channels_.at(pod)->set_peer_down(true);
}

void RPingmesh::restart_pod_analyzer(std::size_t pod) {
  PodAnalyzer& pa = *pod_analyzers_.at(pod);
  if (!pa.analyzer().in_outage()) return;
  for (const topo::HostInfo& h : cluster_.topology().hosts()) {
    if (host_pod_[h.id.value] == pod) {
      upload_channels_[h.id.value]->set_peer_down(false);
    }
  }
  digest_channels_.at(pod)->set_peer_down(false);
  // Channels first, then the journal restore stamps the recovery boundary —
  // same ordering contract as end_analyzer_outage().
  pa.restart_from_journal();
}

void RPingmesh::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& a : agents_) a->stop();
  if (sketch_exporter_) sketch_exporter_->stop();
  if (analyzer_) {
    analyzer_->stop();
  } else {
    for (auto& p : pod_analyzers_) p->stop();
    global_->stop();
  }
  if (rotation_task_) rotation_task_->cancel();
  if (settle_task_) settle_task_->cancel();
}

}  // namespace rpm::core
