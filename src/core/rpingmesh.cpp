#include "core/rpingmesh.h"

#include <string>

namespace rpm::core {

RPingmesh::RPingmesh(host::Cluster& cluster, RPingmeshConfig cfg)
    : cluster_(cluster),
      cfg_(cfg),
      controller_(cluster.topology(), cluster.router(), cfg.controller),
      analyzer_(cluster.topology(), controller_, cluster.scheduler(),
                cfg.analyzer) {
  transport::ControlPlane& cp = cluster_.control_plane();
  const bool sketch_on = cfg_.analyzer.sketch_mode == SketchMode::kOn;
  if (sketch_on) {
    // Propagate sketch mode to the Agents: fold healthy OK records into the
    // batch HostSummary, keeping raw anything the Analyzer's outlier triage
    // inspects record by record (thresholds mirror the Analyzer's own).
    cfg_.agent.sketch_thin_uploads = true;
    cfg_.agent.sketch_keep_rtt_above = cfg_.analyzer.high_rtt_threshold;
    cfg_.agent.sketch_keep_proc_above = cfg_.analyzer.high_proc_delay_threshold;
  }
  agents_.reserve(cluster_.num_hosts());
  for (const topo::HostInfo& h : cluster_.topology().hosts()) {
    const std::string suffix = "/h" + std::to_string(h.id.value);
    // Agent -> Analyzer: the upload stream hands off into the Analyzer's
    // IngestSink. Records are moved out of the payload on first delivery;
    // the sink dedups retried batches by (host, seq) before touching the
    // body, and with ingest.threads > 0 the delivery only enqueues — the
    // worker pool does the rest off the sim thread.
    transport::Channel& up = cp.make_channel(
        "upload" + suffix, [this](std::uint64_t, std::any& payload) {
          if (auto* batch = std::any_cast<UploadBatch>(&payload)) {
            analyzer_.sink().submit(std::move(*batch));
          }
        });
    // Agent -> Controller: registration + pinglist pulls. Both handlers are
    // idempotent, as at-least-once request delivery requires.
    transport::RpcChannel& rpc = cp.make_rpc_channel(
        "ctrl" + suffix, [this](const std::any& req) -> std::any {
          if (const auto* r = std::any_cast<AgentRegistration>(&req)) {
            RegistrationAck ack;
            ack.accepted = controller_.register_agent(r->host, r->rnics);
            ack.controller_epoch = controller_.epoch();
            ack.lease_duration = controller_.config().lease_duration;
            return std::any(ack);
          }
          if (const auto* r = std::any_cast<AgentHeartbeat>(&req)) {
            return std::any(controller_.heartbeat(r->host));
          }
          if (const auto* r = std::any_cast<PinglistPullRequest>(&req)) {
            return std::any(serve_pinglist_pull(controller_, *r));
          }
          return std::any();
        });
    upload_channels_.push_back(&up);
    rpc_channels_.push_back(&rpc);
    agents_.push_back(std::make_unique<Agent>(cluster_, h.id, controller_, up,
                                              rpc, cfg_.agent));
  }
  if (sketch_on) {
    // Switch-side sketches: the fabric updates one LinkSketch per link on
    // every forwarded/dropped datagram; the exporter flushes the bank on the
    // 5 s upload cadence through its own channel into the Analyzer's
    // SketchStore.
    sketch_bank_ = std::make_unique<sketch::LinkSketchBank>(
        cluster_.topology().num_links());
    cluster_.fabric().attach_sketches(sketch_bank_.get());
    sketch_channel_ = &cp.make_channel(
        "sketch/fabric", [this](std::uint64_t, std::any& payload) {
          if (auto* rep = std::any_cast<sketch::SketchReport>(&payload)) {
            analyzer_.ingest_sketch(std::move(*rep));
          }
        });
    sketch::SketchExporterConfig ecfg;
    ecfg.period = cfg_.agent.upload_interval;
    sketch_exporter_ = std::make_unique<sketch::SketchExporter>(
        cluster_.scheduler(), *sketch_channel_, *sketch_bank_, ecfg);
  }
}

RPingmesh::~RPingmesh() {
  stop();
  // The channels outlive this deployment (the ControlPlane owns them, and
  // deliveries may still be queued on the scheduler): detach every handler
  // that captures `this` before the members they reach are destroyed.
  for (transport::Channel* ch : upload_channels_) ch->set_handler(nullptr);
  for (transport::RpcChannel* rpc : rpc_channels_) {
    rpc->set_server(nullptr);
    rpc->cancel_pending();
  }
  if (sketch_channel_ != nullptr) sketch_channel_->set_handler(nullptr);
  // The fabric outlives this deployment too — detach the bank before it dies.
  if (sketch_bank_) cluster_.fabric().attach_sketches(nullptr);
}

void RPingmesh::start() {
  if (running_) return;
  running_ = true;
  for (auto& a : agents_) a->start();
  // Registrations are in flight; once they settle, refresh every pinglist so
  // each Agent sees every peer's comm info regardless of arrival order.
  settle_task_ = std::make_unique<sim::PeriodicTask>(
      cluster_.scheduler(), cfg_.control_settle_delay, [this] {
        settle_task_->cancel();  // one-shot
        if (!running_) return;
        for (auto& a : agents_) a->refresh_pinglists();
      });
  settle_task_->start(cfg_.control_settle_delay);
  analyzer_.start();
  if (sketch_exporter_) sketch_exporter_->start();
  rotation_task_ = std::make_unique<sim::PeriodicTask>(
      cluster_.scheduler(), cfg_.tuple_rotation_interval,
      [this] { controller_.rotate_intertor_tuples(); });
  rotation_task_->start(cfg_.tuple_rotation_interval);
}

void RPingmesh::crash_controller() {
  if (controller_.is_down()) return;
  controller_.crash();
  // The server process is gone: every Agent's RPC channel loses its peer.
  // Requests already in flight are eaten by the (dead) endpoint; retries
  // expire normally, so Agents see the crash as unanswered heartbeats.
  for (transport::RpcChannel* rpc : rpc_channels_) rpc->set_server_down(true);
}

void RPingmesh::restart_controller() {
  if (!controller_.is_down()) return;
  controller_.restart();
  // A new connection epoch per channel; Agents reconnect via their lease
  // expiry -> backoff re-registration loop, nothing is pushed to them.
  for (transport::RpcChannel* rpc : rpc_channels_) rpc->set_server_down(false);
}

void RPingmesh::begin_analyzer_outage() {
  if (analyzer_.in_outage()) return;
  analyzer_.set_outage(true);
  for (transport::Channel* ch : upload_channels_) ch->set_peer_down(true);
  // Sketch reports head to the same dead process.
  if (sketch_channel_ != nullptr) sketch_channel_->set_peer_down(true);
}

void RPingmesh::end_analyzer_outage() {
  if (!analyzer_.in_outage()) return;
  for (transport::Channel* ch : upload_channels_) ch->set_peer_down(false);
  if (sketch_channel_ != nullptr) sketch_channel_->set_peer_down(false);
  // Order matters: set_outage(false) stamps "now" as every host's silence
  // epoch AFTER the channels can deliver again, so nothing slips between.
  analyzer_.set_outage(false);
}

void RPingmesh::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& a : agents_) a->stop();
  if (sketch_exporter_) sketch_exporter_->stop();
  analyzer_.stop();
  if (rotation_task_) rotation_task_->cancel();
  if (settle_task_) settle_task_->cancel();
}

}  // namespace rpm::core
