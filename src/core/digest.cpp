#include "core/digest.h"

namespace rpm::core {

SlaReport SlaDigest::to_report() const {
  SlaReport sla;
  sla.probes = probes;
  sla.timeouts = timeouts;
  if (probes > 0) {
    sla.rnic_drop_rate =
        static_cast<double>(rnic_drops) / static_cast<double>(probes);
    sla.switch_drop_rate =
        static_cast<double>(switch_drops) / static_cast<double>(probes);
  }
  sla.rtt_mean = rtt.mean();
  sla.rtt_p50 = rtt.quantile(0.50);
  sla.rtt_p90 = rtt.quantile(0.90);
  sla.rtt_p99 = rtt.quantile(0.99);
  sla.rtt_p999 = rtt.quantile(0.999);
  sla.proc_p50 = proc.quantile(0.50);
  sla.proc_p90 = proc.quantile(0.90);
  sla.proc_p99 = proc.quantile(0.99);
  sla.proc_p999 = proc.quantile(0.999);
  return sla;
}

namespace {

std::size_t chain_wire_bytes(const obs::EvidenceChain& c) {
  // id + problem id + enum/flag byte + tallies + thresholds + probe ids +
  // string lengths. Strings ride length-prefixed.
  std::size_t b = 8 + 8 + 4 + 8;  // id, problem id, service, total_probes
  b += 4 + c.verdict.size() + 4 + c.triage_branch.size();
  b += 4 + c.summary.size();
  b += 8 + c.link_votes.size() * (4 + 8);
  b += 8 + c.switch_votes.size() * (4 + 8);
  b += 8 + c.thresholds.size() * (8 + 8 + 1 + 16);  // value+limit+cmp+name
  b += 8 + c.probe_ids.size() * 8;
  for (const auto& [site, count] : c.drop_sites) {
    b += 4 + site.size() + 8;
    (void)count;
  }
  b += 8;
  return b;
}

std::size_t problem_wire_bytes(const Problem& p) {
  std::size_t b = 8 + 8 + 1 + 1 + 4 + 4 + 4 + 1 + 1;  // ids, enums, flags
  b += 8 + p.suspect_links.size() * 4;
  b += 8 + p.suspect_switches.size() * 4;
  b += 8 + p.top_link_votes.size() * (4 + 8);
  b += 8;  // anomalous_probes
  b += 4 + p.summary.size();
  return b;
}

std::size_t sla_digest_wire_bytes(const SlaDigest& d) {
  return 4 * 8 + d.rtt.serialized_bytes() + d.proc.serialized_bytes();
}

}  // namespace

std::size_t pod_digest_wire_bytes(const PodDigest& d) {
  std::size_t b = 4 + 8 + 8 + 8 + 8;  // pod, seq, bounds, records_processed
  b += 5 * 8;                         // timeout tallies
  b += 8 + d.down_hosts.size() * 4;
  b += 8 + d.blamed_rnics.size() * (4 + 8);
  b += 8 + d.cpu_noise_hosts.size() * 4;
  b += 8;
  for (const Problem& p : d.problems) b += problem_wire_bytes(p);
  b += 8;
  for (const obs::EvidenceChain& c : d.chains) b += chain_wire_bytes(c);
  b += 8;
  for (const ForeignTimeout& f : d.foreign) {
    b += 8 + 1 + 4 * 4 + 4 + 1;  // probe id, kind, endpoints, service, flag
    b += 8 + f.path_links.size() * 4 + 8 + f.path_switches.size() * 4;
  }
  b += sla_digest_wire_bytes(d.cluster_sla);
  b += 8;
  for (const auto& [svc, sla] : d.service_slas) {
    b += 4 + sla_digest_wire_bytes(sla);
  }
  b += 8;
  for (const ServiceNetDigest& n : d.service_nets) {
    b += 4 + 8 + n.links.size() * 4 + 8 + n.rnics.size() * 4 + 8 +
         n.hosts.size() * 4;
  }
  return b;
}

}  // namespace rpm::core
