// R-Pingmesh Controller (§4.1).
//
// Three jobs:
//  1. Central registry of the latest RNIC communication info (GID + QPN).
//     QPNs change whenever an Agent (re)starts, so Agents re-register and
//     everyone else's pinglists go stale until the next refresh — which is
//     precisely the "QPN reset" noise the Analyzer filters.
//  2. Pinglist generation. Per RNIC: a ToR-mesh pinglist (every other RNIC
//     under the same ToR) and an inter-ToR pinglist. The inter-ToR list is
//     sized by Equation (1): the minimum k such that k random 5-tuples cover
//     all N parallel ECMP paths with probability >= P (coupon collector).
//     20% of inter-ToR tuples are rotated every hour to catch tuple-specific
//     silent drops.
//  3. Serving Agents' comm-info lookups for Service Tracing targets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "core/types.h"
#include "routing/ecmp.h"
#include "sim/scheduler.h"
#include "telemetry/metrics.h"
#include "topo/topology.h"

namespace rpm::core {

struct ControllerConfig {
  double coverage_probability = 0.99;  // P in Equation (1)
  double per_link_probes_per_sec = 10.0;  // inter-ToR target rate (§5)
  double tormesh_probes_per_sec = 10.0;   // per RNIC pair group (§5)
  double rotate_fraction = 0.20;          // inter-ToR tuples per rotation
  std::uint16_t intertor_port_base = 30000;
  std::uint64_t seed = 99;
  // Lease-based liveness: how long a registration stays on file without a
  // renewing heartbeat from the Agent's side. Granted in RegistrationAck.
  TimeNs lease_duration = sec(15);
};

/// Solves Equation (1): smallest k >= N with
///   sum_{i=1..N} (-1)^{i+1} C(N,i) (1 - i/N)^k <= 1 - P.
std::uint32_t equation1_min_tuples(std::uint32_t num_paths, double coverage_p);

/// Counts parallel equal-cost paths between two ToRs by multiplying ECMP
/// fan-outs along one shortest path (exact for symmetric Clos fabrics).
std::uint32_t count_parallel_paths(const routing::EcmpRouter& router,
                                   SwitchId src_tor, SwitchId dst_tor);

class Controller {
 public:
  Controller(const topo::Topology& topo, const routing::EcmpRouter& router,
             ControllerConfig cfg = {});

  // ---- registry ----

  /// Called by an Agent when it starts or restarts: stores the freshest
  /// comm info for every RNIC the Agent manages. Returns false (and stores
  /// nothing) while the Controller process is down.
  bool register_agent(HostId host, const std::vector<RnicCommInfo>& rnics);

  /// Lease renewal: does this Controller currently hold a registration for
  /// `host`? A restarted Controller answers known=false until the Agent
  /// re-registers.
  [[nodiscard]] HeartbeatAck heartbeat(HostId host) const;

  // ---- process lifecycle (control-plane survivability) ----

  /// The Controller process crashes: every registration and heartbeat lease
  /// is lost and nothing is accepted or served until restart().
  void crash();
  /// The process comes back — with an empty registry and a new epoch; every
  /// Agent must re-register.
  void restart();
  /// Standby takeover (ControllerGroup): become primary under `new_epoch`.
  /// Reuses restart()'s known=false contract — the registry is cleared so
  /// every Agent is forced through re-registration; the new primary never
  /// trusts comm info it did not collect itself. Unlike restart(), the
  /// member need not be down (a warm standby never was), and the epoch is
  /// assigned (it must dominate every epoch the cluster has ever seen, not
  /// just this member's).
  void promote(std::uint64_t new_epoch);
  [[nodiscard]] bool is_down() const { return down_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t num_registered_agents() const {
    return registered_hosts_.size();
  }

  /// Latest comm info for an RNIC (nullopt if its Agent never registered).
  [[nodiscard]] std::optional<RnicCommInfo> comm_info(RnicId rnic) const;
  [[nodiscard]] std::optional<RnicCommInfo> comm_info_by_ip(IpAddr ip) const;

  // ---- pinglists ----

  /// ToR-mesh pinglist for `rnic`: all other registered RNICs under the
  /// same ToR, probed at the ToR-mesh cadence.
  [[nodiscard]] Pinglist tormesh_pinglist(RnicId rnic) const;

  /// Inter-ToR pinglist for `rnic`: this RNIC's share of its ToR's k
  /// Equation-1 tuples, with the Controller-computed probe interval.
  [[nodiscard]] Pinglist intertor_pinglist(RnicId rnic) const;

  /// Rotate `rotate_fraction` of every ToR's inter-ToR tuples (hourly in
  /// production).
  void rotate_intertor_tuples();

  /// Equation-1 k for a ToR (max over destination ToRs), exposed for tests.
  [[nodiscard]] std::uint32_t tuples_for_tor(SwitchId tor) const;

  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }

 private:
  struct InterTorTuple {
    RnicId src;
    RnicId dst;
    std::uint16_t src_port;
  };

  void build_intertor_plan();
  InterTorTuple make_tuple(SwitchId tor, Rng& rng);

  const topo::Topology& topo_;
  const routing::EcmpRouter& router_;
  ControllerConfig cfg_;
  Rng rng_;

  std::unordered_map<std::uint32_t, RnicCommInfo> registry_;  // by rnic id
  std::unordered_set<std::uint32_t> registered_hosts_;        // by host id
  bool down_ = false;
  std::uint64_t epoch_ = 1;  // bumped on every restart()
  // Per ToR: the k selected inter-ToR tuples and the per-tuple cadence.
  struct TorPlan {
    std::uint32_t parallel_paths = 1;
    std::uint32_t k = 0;
    std::vector<InterTorTuple> tuples;
    TimeNs per_tuple_interval = msec(100);
  };
  std::unordered_map<std::uint32_t, TorPlan> plans_;  // by tor switch id
  std::uint16_t next_port_ = 0;

  // Self-observability: pinglist generation volume and cost.
  struct Metrics {
    telemetry::Counter registrations;
    telemetry::Gauge registered_agents;        // hosts with a live lease
    telemetry::Counter pinglist_requests[2];   // {tor-mesh, inter-tor}
    telemetry::Histogram pinglist_entries[2];  // entries per generated list
    telemetry::Histogram plan_build_ns;        // Equation-1 planning (wall)
    telemetry::Counter rotations;
  };
  Metrics metrics_;
};

/// Controller-side servicing of one Agent pinglist pull (the server half of
/// the transport RPC): pinglists for every requested RNIC plus fresh comm
/// info for the requested service-tracing targets. Idempotent — safe under
/// at-least-once request delivery.
[[nodiscard]] PinglistPullResponse serve_pinglist_pull(
    const Controller& controller, const PinglistPullRequest& req);

/// Replicated control plane (ROADMAP "Hierarchical federation"): one primary
/// Controller plus an optional warm standby with lease-transfer failover.
///
/// Both members are built from the same config, so their Equation-1 plans
/// and pinglists are identical — what a standby can NEVER inherit is the
/// registry (comm info is only fresh if an Agent sent it to YOU), which is
/// why promotion reuses the restart() contract: empty registry, known=false
/// heartbeats, every Agent re-registers with the new primary using its
/// normal backoff machinery.
///
/// Epoch fencing: the promoted member's epoch is max over every member's
/// epoch + 1, strictly greater than anything the deposed primary ever
/// stamped. Agents track the newest epoch heard and discard pinglist
/// responses fenced below it (PinglistPullResponse::controller_epoch).
///
/// With `standby == false` the group is a passthrough holding exactly one
/// Controller and schedules nothing — byte-identical to the pre-group
/// deployment.
class ControllerGroup {
 public:
  struct Config {
    bool standby = false;
    /// Cadence of the failover monitor (standby only).
    TimeNs check_interval = msec(500);
    /// Grace between primary crash and takeover — the lease-transfer
    /// window; sub-second flaps never fail over.
    TimeNs failover_delay = sec(2);
  };

  ControllerGroup(const topo::Topology& topo,
                  const routing::EcmpRouter& router,
                  sim::Scheduler& sched, ControllerConfig ccfg)
      : ControllerGroup(topo, router, sched, std::move(ccfg), Config{}) {}
  ControllerGroup(const topo::Topology& topo,
                  const routing::EcmpRouter& router,
                  sim::Scheduler& sched, ControllerConfig ccfg,
                  Config cfg);

  [[nodiscard]] Controller& active() { return *members_[active_]; }
  [[nodiscard]] const Controller& active() const { return *members_[active_]; }
  [[nodiscard]] std::size_t active_index() const { return active_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] Controller& member(std::size_t i) { return *members_[i]; }
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }

  /// Crash the current primary. With a standby, the monitor promotes it
  /// after `failover_delay`; without one, the group waits for
  /// restart_crashed().
  void crash_active();
  /// Restart every crashed member via Controller::restart(). A member the
  /// monitor already replaced comes back as the warm standby for the NEXT
  /// failover; if the crashed member is still active (no standby, or the
  /// delay has not elapsed), this is exactly the old single-Controller
  /// restart path.
  void restart_crashed();

  /// Invoked right after a standby is promoted (epoch already bumped) so
  /// the deployment can retarget RPC servers and directory pointers.
  void set_on_failover(std::function<void(Controller&)> hook) {
    on_failover_ = std::move(hook);
  }

 private:
  void check_failover();

  sim::Scheduler& sched_;
  Config cfg_;
  std::vector<std::unique_ptr<Controller>> members_;
  std::vector<bool> crashed_;
  std::size_t active_ = 0;
  TimeNs crash_time_ = 0;
  std::uint64_t failovers_ = 0;
  std::function<void(Controller&)> on_failover_;
  std::unique_ptr<sim::PeriodicTask> monitor_;
  // Registered only when the standby is enabled, so a flat deployment adds
  // no metric series.
  telemetry::Gauge epoch_gauge_;
  telemetry::Counter failovers_total_;
};

}  // namespace rpm::core
