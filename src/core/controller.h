// R-Pingmesh Controller (§4.1).
//
// Three jobs:
//  1. Central registry of the latest RNIC communication info (GID + QPN).
//     QPNs change whenever an Agent (re)starts, so Agents re-register and
//     everyone else's pinglists go stale until the next refresh — which is
//     precisely the "QPN reset" noise the Analyzer filters.
//  2. Pinglist generation. Per RNIC: a ToR-mesh pinglist (every other RNIC
//     under the same ToR) and an inter-ToR pinglist. The inter-ToR list is
//     sized by Equation (1): the minimum k such that k random 5-tuples cover
//     all N parallel ECMP paths with probability >= P (coupon collector).
//     20% of inter-ToR tuples are rotated every hour to catch tuple-specific
//     silent drops.
//  3. Serving Agents' comm-info lookups for Service Tracing targets.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "core/types.h"
#include "routing/ecmp.h"
#include "telemetry/metrics.h"
#include "topo/topology.h"

namespace rpm::core {

struct ControllerConfig {
  double coverage_probability = 0.99;  // P in Equation (1)
  double per_link_probes_per_sec = 10.0;  // inter-ToR target rate (§5)
  double tormesh_probes_per_sec = 10.0;   // per RNIC pair group (§5)
  double rotate_fraction = 0.20;          // inter-ToR tuples per rotation
  std::uint16_t intertor_port_base = 30000;
  std::uint64_t seed = 99;
  // Lease-based liveness: how long a registration stays on file without a
  // renewing heartbeat from the Agent's side. Granted in RegistrationAck.
  TimeNs lease_duration = sec(15);
};

/// Solves Equation (1): smallest k >= N with
///   sum_{i=1..N} (-1)^{i+1} C(N,i) (1 - i/N)^k <= 1 - P.
std::uint32_t equation1_min_tuples(std::uint32_t num_paths, double coverage_p);

/// Counts parallel equal-cost paths between two ToRs by multiplying ECMP
/// fan-outs along one shortest path (exact for symmetric Clos fabrics).
std::uint32_t count_parallel_paths(const routing::EcmpRouter& router,
                                   SwitchId src_tor, SwitchId dst_tor);

class Controller {
 public:
  Controller(const topo::Topology& topo, const routing::EcmpRouter& router,
             ControllerConfig cfg = {});

  // ---- registry ----

  /// Called by an Agent when it starts or restarts: stores the freshest
  /// comm info for every RNIC the Agent manages. Returns false (and stores
  /// nothing) while the Controller process is down.
  bool register_agent(HostId host, const std::vector<RnicCommInfo>& rnics);

  /// Lease renewal: does this Controller currently hold a registration for
  /// `host`? A restarted Controller answers known=false until the Agent
  /// re-registers.
  [[nodiscard]] HeartbeatAck heartbeat(HostId host) const;

  // ---- process lifecycle (control-plane survivability) ----

  /// The Controller process crashes: every registration and heartbeat lease
  /// is lost and nothing is accepted or served until restart().
  void crash();
  /// The process comes back — with an empty registry and a new epoch; every
  /// Agent must re-register.
  void restart();
  [[nodiscard]] bool is_down() const { return down_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t num_registered_agents() const {
    return registered_hosts_.size();
  }

  /// Latest comm info for an RNIC (nullopt if its Agent never registered).
  [[nodiscard]] std::optional<RnicCommInfo> comm_info(RnicId rnic) const;
  [[nodiscard]] std::optional<RnicCommInfo> comm_info_by_ip(IpAddr ip) const;

  // ---- pinglists ----

  /// ToR-mesh pinglist for `rnic`: all other registered RNICs under the
  /// same ToR, probed at the ToR-mesh cadence.
  [[nodiscard]] Pinglist tormesh_pinglist(RnicId rnic) const;

  /// Inter-ToR pinglist for `rnic`: this RNIC's share of its ToR's k
  /// Equation-1 tuples, with the Controller-computed probe interval.
  [[nodiscard]] Pinglist intertor_pinglist(RnicId rnic) const;

  /// Rotate `rotate_fraction` of every ToR's inter-ToR tuples (hourly in
  /// production).
  void rotate_intertor_tuples();

  /// Equation-1 k for a ToR (max over destination ToRs), exposed for tests.
  [[nodiscard]] std::uint32_t tuples_for_tor(SwitchId tor) const;

  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }

 private:
  struct InterTorTuple {
    RnicId src;
    RnicId dst;
    std::uint16_t src_port;
  };

  void build_intertor_plan();
  InterTorTuple make_tuple(SwitchId tor, Rng& rng);

  const topo::Topology& topo_;
  const routing::EcmpRouter& router_;
  ControllerConfig cfg_;
  Rng rng_;

  std::unordered_map<std::uint32_t, RnicCommInfo> registry_;  // by rnic id
  std::unordered_set<std::uint32_t> registered_hosts_;        // by host id
  bool down_ = false;
  std::uint64_t epoch_ = 1;  // bumped on every restart()
  // Per ToR: the k selected inter-ToR tuples and the per-tuple cadence.
  struct TorPlan {
    std::uint32_t parallel_paths = 1;
    std::uint32_t k = 0;
    std::vector<InterTorTuple> tuples;
    TimeNs per_tuple_interval = msec(100);
  };
  std::unordered_map<std::uint32_t, TorPlan> plans_;  // by tor switch id
  std::uint16_t next_port_ = 0;

  // Self-observability: pinglist generation volume and cost.
  struct Metrics {
    telemetry::Counter registrations;
    telemetry::Gauge registered_agents;        // hosts with a live lease
    telemetry::Counter pinglist_requests[2];   // {tor-mesh, inter-tor}
    telemetry::Histogram pinglist_entries[2];  // entries per generated list
    telemetry::Histogram plan_build_ns;        // Equation-1 planning (wall)
    telemetry::Counter rotations;
  };
  Metrics metrics_;
};

/// Controller-side servicing of one Agent pinglist pull (the server half of
/// the transport RPC): pinglists for every requested RNIC plus fresh comm
/// info for the requested service-tracing targets. Idempotent — safe under
/// at-least-once request delivery.
[[nodiscard]] PinglistPullResponse serve_pinglist_pull(
    const Controller& controller, const PinglistPullRequest& req);

}  // namespace rpm::core
