#include "core/ingest.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/flight_recorder.h"
#include "prof/prof.h"
#include "telemetry/metrics.h"

namespace rpm::core {

void IngestConfig::validate() const {
  if (shards == 0) {
    throw std::invalid_argument("IngestConfig: shards must be > 0");
  }
  if (threads > shards) {
    throw std::invalid_argument(
        "IngestConfig: threads must not exceed shards (a worker owns whole "
        "shards; threads=" +
        std::to_string(threads) + " > shards=" + std::to_string(shards) +
        ")");
  }
  if (threads > 0 && queue_capacity == 0) {
    throw std::invalid_argument(
        "IngestConfig: queue_capacity must be > 0 when threads > 0");
  }
  if (dedup_window == 0) {
    throw std::invalid_argument("IngestConfig: dedup_window must be > 0");
  }
}

/// True when (host, seq) is a first delivery inside the window; records the
/// seq and slides the window forward.
bool dedup_accept(DedupState& st, std::uint64_t seq, std::uint64_t window) {
  if (st.seen.contains(seq) ||
      (st.max_seq > window && seq < st.max_seq - window)) {
    // Repeat delivery of a retried batch (or one so old it fell out of the
    // window — count it as a duplicate rather than risk double-counting).
    return false;
  }
  st.seen.insert(seq);
  if (seq > st.max_seq) {
    st.max_seq = seq;
    // Slide the window: forget seqs that can no longer arrive as fresh.
    if (st.max_seq > window) {
      const std::uint64_t floor = st.max_seq - window;
      std::erase_if(st.seen, [floor](std::uint64_t s) { return s < floor; });
    }
  }
  return true;
}

namespace {

/// Fold one host->DedupState map into a checkpoint under construction.
/// Callers sort cp.hosts afterwards (hosts are disjoint across shards, so
/// a single final sort canonicalizes the multi-shard case too).
void append_dedup_windows(
    IngestCheckpoint& cp,
    const std::unordered_map<std::uint32_t, DedupState>& dedup) {
  for (const auto& [host, st] : dedup) {
    IngestCheckpoint::HostWindow w;
    w.host = host;
    w.max_seq = st.max_seq;
    w.seen.assign(st.seen.begin(), st.seen.end());
    std::sort(w.seen.begin(), w.seen.end());
    cp.hosts.push_back(std::move(w));
  }
}

void finish_checkpoint(IngestCheckpoint& cp) {
  std::sort(cp.hosts.begin(), cp.hosts.end(),
            [](const IngestCheckpoint::HostWindow& a,
               const IngestCheckpoint::HostWindow& b) {
              return a.host < b.host;
            });
}

DedupState window_to_state(const IngestCheckpoint::HostWindow& w) {
  DedupState st;
  st.max_seq = w.max_seq;
  st.seen.insert(w.seen.begin(), w.seen.end());
  return st;
}

void append_records(std::vector<ProbeRecord>& bucket,
                    std::vector<ProbeRecord>&& records) {
  const std::size_t needed = bucket.size() + records.size();
  if (bucket.capacity() < needed) {
    // Grow geometrically: an exact-size reserve per batch would force a
    // reallocation on every append, quadratic over a period.
    bucket.reserve(std::max(needed, bucket.capacity() * 2));
  }
  bucket.insert(bucket.end(), std::make_move_iterator(records.begin()),
                std::make_move_iterator(records.end()));
}

struct SinkMetrics {
  telemetry::Counter uploads;
  telemetry::Counter records;
  telemetry::Counter batches_accepted;
  telemetry::Counter batches_duplicate;
  std::vector<telemetry::Histogram> bucket_records;  // per shard
  // Worker pool only:
  std::vector<telemetry::Gauge> queue_depth;  // per shard
  std::vector<telemetry::Counter> dropped;    // per shard
};

SinkMetrics make_sink_metrics(std::size_t shards, bool pool) {
  auto& reg = telemetry::registry();
  SinkMetrics m;
  m.uploads = reg.counter("rpm_analyzer_uploads_total",
                          "Agent record batches received");
  m.records = reg.counter("rpm_analyzer_records_total",
                          "Probe records received from Agents");
  m.batches_accepted =
      reg.counter("rpm_analyzer_batches_total",
                  "Transport upload batches by dedup outcome",
                  {{"result", "accepted"}});
  m.batches_duplicate =
      reg.counter("rpm_analyzer_batches_total",
                  "Transport upload batches by dedup outcome",
                  {{"result", "duplicate"}});
  m.bucket_records.reserve(shards);
  for (std::size_t b = 0; b < shards; ++b) {
    m.bucket_records.push_back(reg.histogram(
        "rpm_analyzer_ingest_bucket_records",
        "Records merged from one ingest shard at period close",
        {{"bucket", std::to_string(b)}}));
  }
  if (pool) {
    m.queue_depth.reserve(shards);
    m.dropped.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      m.queue_depth.push_back(reg.gauge(
          "rpm_analyzer_ingest_queue_depth",
          "Pending upload batches in one ingest shard queue (sampled at "
          "submit and at period close)",
          {{"shard", std::to_string(s)}}));
      m.dropped.push_back(reg.counter(
          "rpm_analyzer_ingest_dropped_total",
          "Upload batches evicted (drop-oldest) from a full ingest shard "
          "queue",
          {{"shard", std::to_string(s)}}));
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// InlineSink: the historical single-threaded path, byte for byte.
// ---------------------------------------------------------------------------

class InlineSink final : public IngestSink {
 public:
  InlineSink(const IngestConfig& cfg, IngestHooks hooks)
      : cfg_(cfg),
        hooks_(std::move(hooks)),
        buckets_(cfg.shards),
        summaries_(cfg.shards),
        metrics_(make_sink_metrics(cfg.shards, /*pool=*/false)) {}

  void submit(UploadBatch&& batch) override {
    // Belt-and-braces: during an outage the upload channels are peer-down
    // and nothing should arrive, but a delivery that races the cutover must
    // not land in a shard no period will ever drain correctly.
    if (paused_) return;
    prof::StageScope prof_scope(prof::Stage::kIngestSubmit);
    if (hooks_.host_alive) hooks_.host_alive(batch.host);
    if (!dedup_accept(dedup_[batch.host.value], batch.seq,
                      cfg_.dedup_window)) {
      metrics_.batches_duplicate.inc();
      return;
    }
    metrics_.batches_accepted.inc();
    metrics_.uploads.inc();
    metrics_.records.inc(batch.records.size());
    if (!batch.summary.empty()) {
      // Per-shard accumulation (even though everything runs on one thread
      // here) keeps the merge order identical to the worker-pool backend:
      // within a shard by submission order, across shards by index.
      summaries_[batch.host.value % buckets_.size()].merge(batch.summary);
    }
    ingest(batch.host, std::move(batch.records));
  }

  void submit_trusted(HostId host,
                      std::vector<ProbeRecord>&& records) override {
    prof::StageScope prof_scope(prof::Stage::kIngestSubmit);
    metrics_.uploads.inc();
    metrics_.records.inc(records.size());
    if (hooks_.host_alive) hooks_.host_alive(host);
    ingest(host, std::move(records));
  }

  std::vector<ProbeRecord> drain_period() override {
    std::size_t total = 0;
    for (const auto& b : buckets_) total += b.size();
    std::vector<ProbeRecord> merged;
    merged.reserve(total);
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      std::vector<ProbeRecord>& bucket = buckets_[b];
      metrics_.bucket_records[b].observe(static_cast<double>(bucket.size()));
      merged.insert(merged.end(), std::make_move_iterator(bucket.begin()),
                    std::make_move_iterator(bucket.end()));
      bucket.clear();  // keeps capacity for the next period
    }
    return merged;
  }

  sketch::HostSummary drain_summary() override {
    sketch::HostSummary merged;
    for (sketch::HostSummary& s : summaries_) {
      merged.merge(s);
      s = sketch::HostSummary{};
    }
    return merged;
  }

  void set_paused(bool paused) override { paused_ = paused; }
  [[nodiscard]] std::size_t num_shards() const override {
    return buckets_.size();
  }
  [[nodiscard]] std::size_t num_threads() const override { return 0; }

  IngestCheckpoint checkpoint() override {
    IngestCheckpoint cp;
    append_dedup_windows(cp, dedup_);
    finish_checkpoint(cp);
    return cp;
  }

  void restore(const IngestCheckpoint& cp) override {
    dedup_.clear();
    for (const auto& w : cp.hosts) dedup_[w.host] = window_to_state(w);
  }

 private:
  void ingest(HostId host, std::vector<ProbeRecord>&& records) {
    if (hooks_.tap != nullptr && *hooks_.tap) {
      for (const ProbeRecord& r : records) (*hooks_.tap)(r);
    }
    const std::size_t shard_idx = host.value % buckets_.size();
    if (obs::recorder().enabled()) {
      for (const ProbeRecord& r : records) {
        if (r.flight_sampled) {
          obs::recorder().record(r.id, obs::ProbeEventKind::kAnalyzerIngest,
                                 shard_idx);
        }
      }
    }
    append_records(buckets_[shard_idx], std::move(records));
  }

  const IngestConfig cfg_;
  const IngestHooks hooks_;
  std::vector<std::vector<ProbeRecord>> buckets_;  // by prober host % N
  std::vector<sketch::HostSummary> summaries_;     // parallel to buckets_
  std::unordered_map<std::uint32_t, DedupState> dedup_;  // by host id
  bool paused_ = false;
  SinkMetrics metrics_;
};

// ---------------------------------------------------------------------------
// WorkerPoolSink: bounded per-shard MPSC queues drained by std::threads.
// ---------------------------------------------------------------------------

class WorkerPoolSink final : public IngestSink {
 public:
  WorkerPoolSink(const IngestConfig& cfg, IngestHooks hooks)
      : cfg_(cfg),
        hooks_(std::move(hooks)),
        metrics_(make_sink_metrics(cfg.shards, /*pool=*/true)) {
    shards_.resize(cfg_.shards);
    workers_.reserve(cfg_.threads);
    for (std::size_t w = 0; w < cfg_.threads; ++w) {
      workers_.push_back(std::make_unique<Worker>());
    }
    // Static shard -> worker ownership: shard s belongs to worker s % T.
    // One consumer per shard is what makes per-shard processing order equal
    // submission order (the determinism argument in ingest.h).
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      shards_[s].worker = s % cfg_.threads;
      workers_[s % cfg_.threads]->shard_ids.push_back(s);
    }
    for (std::size_t w = 0; w < cfg_.threads; ++w) {
      workers_[w]->thread =
          std::thread([this, w] { worker_loop(*workers_[w]); });
    }
  }

  ~WorkerPoolSink() override {
    for (auto& w : workers_) {
      {
        std::lock_guard<std::mutex> lk(w->mu);
        w->stop = true;
      }
      w->cv.notify_all();
    }
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
  }

  void submit(UploadBatch&& batch) override {
    if (paused_) return;
    if (hooks_.host_alive) hooks_.host_alive(batch.host);
    enqueue(batch.host.value % shards_.size(),
            Item{std::move(batch), /*trusted=*/false});
  }

  void submit_trusted(HostId host,
                      std::vector<ProbeRecord>&& records) override {
    if (hooks_.host_alive) hooks_.host_alive(host);
    UploadBatch batch;
    batch.host = host;
    batch.records = std::move(records);
    enqueue(host.value % shards_.size(),
            Item{std::move(batch), /*trusted=*/true});
  }

  std::vector<ProbeRecord> drain_period() override {
    if (stalled_.load(std::memory_order_relaxed)) {
      // Test hook active: workers are parked, so the calling (sim) thread
      // works the queues itself — shard order, per-shard FIFO, exactly what
      // the workers would have done.
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        Worker& w = *workers_[shards_[s].worker];
        std::deque<Item> items;
        {
          std::lock_guard<std::mutex> lk(w.mu);
          items.swap(shards_[s].queue);
        }
        for (Item& it : items) process(s, std::move(it));
      }
    } else {
      prof::StageScope prof_scope(prof::Stage::kIngestDrainBarrier);
      barrier_wait();
    }
    // All shard buckets are quiescent now; merge in shard index order so the
    // result is byte-identical to the inline backend. The tap and flight
    // recorder fire here (period close) rather than at submit — workers
    // never touch them (not thread-safe); see ingest.h.
    std::size_t total = 0;
    for (const Shard& sh : shards_) total += sh.bucket.size();
    std::vector<ProbeRecord> merged;
    merged.reserve(total);
    const bool flight_on = obs::recorder().enabled();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::vector<ProbeRecord>& bucket = shards_[s].bucket;
      metrics_.bucket_records[s].observe(static_cast<double>(bucket.size()));
      if (hooks_.tap != nullptr && *hooks_.tap) {
        for (const ProbeRecord& r : bucket) (*hooks_.tap)(r);
      }
      if (flight_on) {
        for (const ProbeRecord& r : bucket) {
          if (r.flight_sampled) {
            obs::recorder().record(r.id, obs::ProbeEventKind::kAnalyzerIngest,
                                   s);
          }
        }
      }
      merged.insert(merged.end(), std::make_move_iterator(bucket.begin()),
                    std::make_move_iterator(bucket.end()));
      bucket.clear();  // keeps capacity for the next period
      metrics_.queue_depth[s].set(0.0);
    }
    return merged;
  }

  sketch::HostSummary drain_summary() override {
    // Sim thread, after drain_period()'s barrier: every shard is quiescent.
    // Per-shard accumulation happened in submission order (single consumer,
    // FIFO queue) and this merge runs in shard index order, so the merged
    // summary — including its floating-point sums — is byte-identical to
    // the inline backend's for any thread count.
    sketch::HostSummary merged;
    for (Shard& sh : shards_) {
      merged.merge(sh.summary);
      sh.summary = sketch::HostSummary{};
    }
    return merged;
  }

  void set_paused(bool paused) override { paused_ = paused; }
  [[nodiscard]] std::size_t num_shards() const override {
    return shards_.size();
  }
  [[nodiscard]] std::size_t num_threads() const override {
    return workers_.size();
  }

  void stall_workers_for_test(bool stalled) override {
    stalled_.store(stalled, std::memory_order_relaxed);
    if (!stalled) {
      for (auto& w : workers_) w->cv.notify_all();
    }
  }

  IngestCheckpoint checkpoint() override {
    if (!stalled_.load(std::memory_order_relaxed)) barrier_wait();
    // Hosts are disjoint across shards (static host % shards mapping), so
    // folding every shard map and sorting once yields the canonical form.
    IngestCheckpoint cp;
    for (const Shard& sh : shards_) append_dedup_windows(cp, sh.dedup);
    finish_checkpoint(cp);
    return cp;
  }

  void restore(const IngestCheckpoint& cp) override {
    if (!stalled_.load(std::memory_order_relaxed)) barrier_wait();
    for (Shard& sh : shards_) sh.dedup.clear();
    for (const auto& w : cp.hosts) {
      shards_[w.host % shards_.size()].dedup[w.host] = window_to_state(w);
    }
  }

 private:
  struct Item {
    UploadBatch batch;
    bool trusted = false;  // skip (host, seq) dedup
  };

  struct Shard {
    std::deque<Item> queue;  // guarded by the owning worker's mu
    // Touched only by the shard's single consumer (owning worker, or the
    // sim thread inside drain_period after the barrier / under stall):
    std::vector<ProbeRecord> bucket;
    sketch::HostSummary summary;
    std::unordered_map<std::uint32_t, DedupState> dedup;  // by host id
    std::size_t worker = 0;
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv;       // producer -> worker: work or stop
    std::condition_variable idle_cv;  // worker -> drain barrier
    std::vector<std::size_t> shard_ids;
    std::size_t in_flight = 0;  // items popped but not yet appended
    bool stop = false;
    std::thread thread;
  };

  /// Block until every queue is empty and every worker is between items.
  /// The predicate is evaluated under w.mu, which the worker releases after
  /// its final bucket append — that acquire/release pair is what makes the
  /// shard state visible to the calling (sim) thread without further locks.
  void barrier_wait() {
    for (auto& wp : workers_) {
      Worker& w = *wp;
      std::unique_lock<std::mutex> lk(w.mu);
      w.cv.notify_all();  // wake a worker that raced its last notify
      w.idle_cv.wait(lk, [&] {
        if (w.in_flight != 0) return false;
        for (std::size_t s : w.shard_ids) {
          if (!shards_[s].queue.empty()) return false;
        }
        return true;
      });
    }
  }

  void enqueue(std::size_t s, Item&& item) {
    Worker& w = *workers_[shards_[s].worker];
    {
      std::lock_guard<std::mutex> lk(w.mu);
      std::deque<Item>& q = shards_[s].queue;
      if (q.size() >= cfg_.queue_capacity) {
        // Backpressure: drop the OLDEST queued batch — fresher data is worth
        // more to a monitoring pipeline than completeness of stale data.
        q.pop_front();
        metrics_.dropped[s].inc();
      }
      q.push_back(std::move(item));
      metrics_.queue_depth[s].set(static_cast<double>(q.size()));
    }
    w.cv.notify_one();
  }

  void worker_loop(Worker& w) {
    std::unique_lock<std::mutex> lk(w.mu);
    for (;;) {
      std::size_t idx = kNone;
      if (!stalled_.load(std::memory_order_relaxed)) {
        for (std::size_t s : w.shard_ids) {
          if (!shards_[s].queue.empty()) {
            idx = s;
            break;
          }
        }
      }
      if (idx == kNone) {
        if (w.stop) return;
        w.idle_cv.notify_all();
        w.cv.wait(lk);
        continue;
      }
      Item item = std::move(shards_[idx].queue.front());
      shards_[idx].queue.pop_front();
      ++w.in_flight;
      lk.unlock();
      process(idx, std::move(item));  // sole consumer: no lock needed
      lk.lock();
      --w.in_flight;
    }
  }

  /// Dedup + count + bucket append for one queued item. Caller guarantees
  /// exclusive access to shard `s` (owning worker, or sim thread at drain).
  /// Profiled as ingest.submit: with workers live this is the worker-thread
  /// side of a submit (the per-thread profiler buffers earn their keep
  /// here); under stall it is the sim thread doing the same work.
  void process(std::size_t s, Item&& item) {
    prof::StageScope prof_scope(prof::Stage::kIngestSubmit);
    Shard& sh = shards_[s];
    if (!item.trusted) {
      if (!dedup_accept(sh.dedup[item.batch.host.value], item.batch.seq,
                        cfg_.dedup_window)) {
        metrics_.batches_duplicate.inc();
        return;
      }
      metrics_.batches_accepted.inc();
    }
    metrics_.uploads.inc();
    metrics_.records.inc(item.batch.records.size());
    if (!item.batch.summary.empty()) sh.summary.merge(item.batch.summary);
    append_records(sh.bucket, std::move(item.batch.records));
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  const IngestConfig cfg_;
  const IngestHooks hooks_;
  SinkMetrics metrics_;
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool paused_ = false;                // sim thread only
  std::atomic<bool> stalled_{false};   // test hook
};

}  // namespace

std::unique_ptr<IngestSink> make_ingest_sink(const IngestConfig& cfg,
                                             IngestHooks hooks) {
  cfg.validate();
  if (cfg.threads == 0) {
    return std::make_unique<InlineSink>(cfg, std::move(hooks));
  }
  return std::make_unique<WorkerPoolSink>(cfg, std::move(hooks));
}

}  // namespace rpm::core
