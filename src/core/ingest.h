// The Analyzer's ingestion runtime: the IngestSink API.
//
// Every record an Agent uploads passes through exactly one IngestSink. The
// sink owns the §4.3 pre-analysis mechanics — sharding by prober host,
// (host, seq) duplicate suppression for the at-least-once transport, and
// the per-period bucket merge — behind a narrow interface so the Analyzer's
// pipeline never cares whether ingestion ran inline on the simulator thread
// or on a worker pool:
//
//   submit(batch)         transport deliveries (deduplicated by (host, seq));
//   submit_trusted(...)   local producers — tests, benches, co-located
//                         collectors — no seq, no duplicate suppression;
//   drain_period()        merge every shard bucket into one period-ordered
//                         vector (called at period close, sim thread only).
//
// Two backends, selected by IngestConfig::threads:
//
//   threads == 0  InlineSink. Everything happens on the caller's (sim)
//                 thread at submit() time — byte-identical to the historical
//                 Analyzer::ingest_batch path.
//   threads  > 0  WorkerPoolSink. submit() enqueues the batch onto a bounded
//                 per-shard FIFO queue (drop-oldest on overflow, counted in
//                 rpm_analyzer_ingest_dropped_total) and returns; each shard
//                 is owned by exactly one std::thread worker that performs
//                 dedup and bucket append off the sim thread. drain_period()
//                 is a barrier: it waits until every queue is empty and every
//                 worker idle, then merges buckets in shard index order.
//
// Determinism. A host's batches always map to one shard, each shard queue is
// FIFO, and each shard has a single consumer — so per-host dedup decisions
// and per-shard bucket order equal the submission order regardless of thread
// count or interleaving. Merging in shard index order then yields a record
// vector byte-identical to the inline backend's, which is why verdicts, SLA
// tables, and ChaosReports are identical for any `threads` value (the
// repo-wide same-seed guarantee). The only timing-dependent behavior is
// drop-oldest overflow under live workers; the default queue_capacity is
// sized so simulation workloads never hit it.
//
// Observable differences between backends (documented, not load-bearing):
// the record tap and flight-recorder kAnalyzerIngest events fire at submit()
// time inline, but at drain_period() (period close, shard-major order) with
// the worker pool — the recorder and tap are not thread-safe, so workers
// never touch them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/types.h"

namespace rpm::core {

/// Per-host sliding-window batch-seq memory. Shared by both sink backends
/// (with the pool a host's state lives in its shard, touched only by the
/// shard's single consumer); also reused by the GlobalAnalyzer for per-pod
/// digest dedup.
struct DedupState {
  std::uint64_t max_seq = 0;
  std::unordered_set<std::uint64_t> seen;
};

/// True when `seq` is a first delivery inside the window; records the seq
/// and slides the window forward.
bool dedup_accept(DedupState& st, std::uint64_t seq, std::uint64_t window);

/// Canonical snapshot of per-host (host, seq) dedup windows — what the
/// StateJournal persists so a restarted sink keeps rejecting re-delivered
/// history (Agent spill rings drain old seqs after a reconnect). Hosts
/// ascending, seen seqs ascending: same state => same bytes when encoded.
struct IngestCheckpoint {
  struct HostWindow {
    std::uint32_t host = 0;
    std::uint64_t max_seq = 0;
    std::vector<std::uint64_t> seen;  // ascending
  };
  std::vector<HostWindow> hosts;  // ascending by host

  [[nodiscard]] bool empty() const { return hosts.empty(); }
};

/// Ingestion knobs (grouped as AnalyzerConfig::Ingest). Validated with
/// validate() — construction-time rejection, never silent clamping.
struct IngestConfig {
  /// Shard buckets keyed by prober host (host.value % shards).
  std::size_t shards = 8;
  /// Worker threads; 0 selects the inline single-threaded backend. Must not
  /// exceed `shards` (a worker owns whole shards; extras would sit idle).
  std::size_t threads = 0;
  /// Bounded per-shard queue (batches) for the worker pool; overflow drops
  /// the oldest queued batch. Unused by the inline backend.
  std::size_t queue_capacity = 1024;
  /// At-least-once delivery means retried batches arrive twice; per host the
  /// sink remembers batch seqs inside a sliding window of this many seqs
  /// below the highest seen and drops repeats.
  std::uint64_t dedup_window = 1024;

  /// Throws std::invalid_argument on nonsense: 0 shards, threads > shards,
  /// a 0-capacity queue with workers, or a 0 dedup window.
  void validate() const;
};

/// Callbacks the sink fires back into its owner. Both run on the sim thread
/// only (host_alive at submit, tap at submit inline / at drain with the
/// pool), so implementations may touch single-threaded state freely.
struct IngestHooks {
  /// Every submit — duplicate included — proves the uploading host alive
  /// (host-down detection keys on received uploads).
  std::function<void(HostId)> host_alive;
  /// Optional per-record observer; the pointee may be empty (checked per
  /// batch) and may be re-bound between periods by the owner.
  const std::function<void(const ProbeRecord&)>* tap = nullptr;
};

/// The ingestion endpoint. One per Analyzer; all calls from the sim thread.
class IngestSink {
 public:
  virtual ~IngestSink() = default;

  /// Transport delivery path: dedup by (host, seq), then shard. Dropped
  /// silently while paused (Analyzer outage).
  virtual void submit(UploadBatch&& batch) = 0;

  /// Trusted local path: no seq, no duplicate suppression, ignores pause
  /// (matching the historical Analyzer::upload contract).
  virtual void submit_trusted(HostId host,
                              std::vector<ProbeRecord>&& records) = 0;

  /// Merge every shard bucket into one period-ordered vector and reset the
  /// buckets (capacity kept). Worker-pool backend: barrier first.
  [[nodiscard]] virtual std::vector<ProbeRecord> drain_period() = 0;

  /// Merge and reset the per-shard HostSummary accumulation (sketch-mode
  /// upload thinning). Call after drain_period() on the sim thread — the
  /// pool backend relies on drain_period()'s barrier having run. Summaries
  /// are merged per shard in submission order and across shards in shard
  /// index order, so — like the record vector — the result is byte-identical
  /// for any thread count. Empty whenever Agents ship no summaries
  /// (sketch_mode == kOff).
  [[nodiscard]] virtual sketch::HostSummary drain_summary() = 0;

  /// Analyzer outage: while paused, submit() drops on the floor.
  virtual void set_paused(bool paused) = 0;

  /// Canonical snapshot of the per-host dedup windows for the StateJournal.
  /// Sim thread only; the pool backend runs its drain barrier first, so the
  /// snapshot reflects every batch submitted before the call.
  [[nodiscard]] virtual IngestCheckpoint checkpoint() = 0;

  /// Restart path: replace the dedup windows from a journaled snapshot so
  /// re-delivered batches (spill-ring drains, transport retries from before
  /// the crash) are suppressed instead of re-counted. Call on a fresh or
  /// drained sink — buckets are untouched.
  virtual void restore(const IngestCheckpoint& cp) = 0;

  [[nodiscard]] virtual std::size_t num_shards() const = 0;
  /// 0 for the inline backend.
  [[nodiscard]] virtual std::size_t num_threads() const = 0;

  /// Test-only: park the worker pool so queued batches provably pile up
  /// (deterministic queue-full coverage); drain_period() then processes the
  /// queues on the calling thread. Call before the first submit. No-op on
  /// the inline backend.
  virtual void stall_workers_for_test(bool /*stalled*/) {}
};

/// Build the backend `cfg.threads` selects. Throws via cfg.validate().
std::unique_ptr<IngestSink> make_ingest_sink(const IngestConfig& cfg,
                                             IngestHooks hooks);

}  // namespace rpm::core
