#include "core/analysis_core.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>

#include "common/stats.h"
#include "fabric/fabric.h"
#include "obs/flight_recorder.h"
#include "prof/prof.h"
#include "telemetry/trace.h"

namespace rpm::core {

namespace {

// Sketch-mode adapter: a per-key delay statistic backed either by the exact
// PercentileWindow (sketch_mode == kOff — byte-identical to the historical
// path, the sketch member stays empty) or by a mergeable QuantileSketch
// seeded from the Agents' folded summaries plus this period's raw outlier
// records (kOn).
struct DelayStat {
  PercentileWindow win;
  sketch::QuantileSketch sk;
  bool use_sketch = false;

  void add(double v) {
    if (use_sketch) {
      sk.add(v);
    } else {
      win.add(v);
    }
  }
  // Non-const: PercentileWindow::percentile sorts its window lazily.
  [[nodiscard]] std::size_t count() const {
    return use_sketch ? static_cast<std::size_t>(sk.count()) : win.count();
  }
  [[nodiscard]] double percentile(double q) {
    return use_sketch ? sk.quantile(q) : win.percentile(q);
  }
};

}  // namespace

const char* AnalysisCore::stage_name(int stage) {
  static constexpr const char* kNames[kNumStages] = {
      "classify",    // §4.3.1 noise filters (host down, QPN reset)
      "rnic_detect",  // §4.3.2 anomalous-RNIC detection
      "attribute",    // final per-timeout cause attribution
      "localize",     // §4.3.3 Algorithm-1 voting + problem emission
      "bottlenecks",  // high-RTT / high-processing-delay detection
      "sla",          // percentile aggregation
      "impact",       // §4.3.4 P0/P1/P2 assessment
  };
  return kNames[stage];
}

AnalysisCore::AnalysisCore(const topo::Topology& topo,
                           const Controller* directory, AnalyzerConfig cfg)
    : topo_(topo), directory_(directory), cfg_(std::move(cfg)) {
  auto& reg = telemetry::registry();
  metrics_.periods =
      reg.counter("rpm_analyzer_periods_total", "Analysis periods executed");
  for (int s = 0; s < kNumStages; ++s) {
    metrics_.stage_ns[s] =
        reg.histogram("rpm_analyzer_stage_ns",
                      "Wall-clock cost of one pipeline stage per period",
                      {{"stage", stage_name(s)}});
  }
  for (std::uint8_t c = 0; c < 5; ++c) {
    metrics_.timeouts_by_cause[c] = reg.counter(
        "rpm_analyzer_timeouts_total", "Timeout probes by attributed cause",
        {{"cause", anomaly_cause_name(static_cast<AnomalyCause>(c))}});
  }
  for (std::uint8_t c = 0; c < 7; ++c) {
    metrics_.problems_by_category[c] = reg.counter(
        "rpm_analyzer_problems_total", "Problems emitted by category",
        {{"category", problem_category_name(static_cast<ProblemCategory>(c))}});
  }
  for (std::uint8_t p = 0; p < 4; ++p) {
    metrics_.problems_by_priority[p] = reg.counter(
        "rpm_analyzer_problem_priority_total", "Problems emitted by priority",
        {{"priority", priority_name(static_cast<Priority>(p))}});
  }
  metrics_.raw_fallback_links = reg.counter(
      "rpm_analyzer_raw_fallback_links_total",
      "Links whose period sketch showed drops, keeping raw records in play");
}

void AnalysisCore::register_service(ServiceBinding binding) {
  if (!binding.metric) {
    throw std::invalid_argument("register_service: metric required");
  }
  services_.push_back(std::move(binding));
}

void AnalysisCore::attach_journal(StateJournal* journal, std::string role) {
  journal_ = journal;
  role_ = std::move(role);
}

void AnalysisCore::fill_checkpoint(AnalyzerCheckpoint& cp) const {
  cp.last_period_end = last_period_end_;
  cp.next_problem_id = next_problem_id_;
  cp.next_evidence_id = next_evidence_id_;
  cp.last_upload.assign(last_upload_.begin(), last_upload_.end());
  std::sort(cp.last_upload.begin(), cp.last_upload.end());
  cp.known_hosts.assign(known_hosts_.begin(), known_hosts_.end());
  std::sort(cp.known_hosts.begin(), cp.known_hosts.end());
  cp.rnic_blamed_until.assign(rnic_blamed_until_.begin(),
                              rnic_blamed_until_.end());
  std::sort(cp.rnic_blamed_until.begin(), cp.rnic_blamed_until.end());
  cp.host_noise_until.assign(host_noise_until_.begin(),
                             host_noise_until_.end());
  std::sort(cp.host_noise_until.begin(), cp.host_noise_until.end());
}

void AnalysisCore::restore(const AnalyzerCheckpoint& cp) {
  last_period_end_ = cp.last_period_end;
  next_problem_id_ = cp.next_problem_id;
  next_evidence_id_ = cp.next_evidence_id;
  last_upload_.clear();
  last_upload_.insert(cp.last_upload.begin(), cp.last_upload.end());
  known_hosts_.clear();
  known_hosts_.insert(cp.known_hosts.begin(), cp.known_hosts.end());
  rnic_blamed_until_.clear();
  rnic_blamed_until_.insert(cp.rnic_blamed_until.begin(),
                            cp.rnic_blamed_until.end());
  host_noise_until_.clear();
  host_noise_until_.insert(cp.host_noise_until.begin(),
                           cp.host_noise_until.end());
}

void AnalysisCore::reset_volatile() {
  last_upload_.clear();
  known_hosts_.clear();
  rnic_blamed_until_.clear();
  host_noise_until_.clear();
  history_.clear();
  diagnosis_.clear();
  next_evidence_id_ = 1;
  next_problem_id_ = 1;
  last_period_end_ = 0;
  (void)sketch_store_.drain_period();  // pending period sketches die too
}

void AnalysisCore::vote_paths(
    const std::vector<const ProbeRecord*>& records,
    std::vector<LinkId>& out_links, std::vector<SwitchId>& out_switches,
    std::vector<std::pair<LinkId, std::size_t>>* top_votes,
    obs::EvidenceChain* chain) const {
  // Algorithm 1: count traversals of each link (and switch) over the
  // anomalous probes' forward and ACK paths; return the top voted.
  std::unordered_map<std::uint32_t, std::size_t> link_votes;
  std::unordered_map<std::uint32_t, std::size_t> switch_votes;
  for (const ProbeRecord* r : records) {
    if (!r->path_known) continue;
    for (const routing::Path* p : {&r->fwd_path, &r->rev_path}) {
      for (LinkId l : p->links) ++link_votes[l.value];
      for (SwitchId s : p->switches) ++switch_votes[s.value];
    }
  }
  std::size_t best_link = 0;
  for (const auto& [_, v] : link_votes) best_link = std::max(best_link, v);
  for (const auto& [l, v] : link_votes) {
    if (v == best_link && best_link > 0) out_links.push_back(LinkId{l});
  }
  std::size_t best_switch = 0;
  for (const auto& [_, v] : switch_votes) {
    best_switch = std::max(best_switch, v);
  }
  for (const auto& [s, v] : switch_votes) {
    if (v == best_switch && best_switch > 0) {
      out_switches.push_back(SwitchId{s});
    }
  }
  std::sort(out_links.begin(), out_links.end());
  std::sort(out_switches.begin(), out_switches.end());
  if (top_votes != nullptr) {
    std::vector<std::pair<LinkId, std::size_t>> all;
    all.reserve(link_votes.size());
    for (const auto& [l, v] : link_votes) all.emplace_back(LinkId{l}, v);
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (all.size() > 10) all.resize(10);
    *top_votes = std::move(all);
  }
  if (chain != nullptr) {
    // Evidence: the full tally (descending, bounded), not just the winners —
    // explain() must show how close the runners-up were.
    static constexpr std::size_t kTallyCap = 64;
    const auto fill = [](const std::unordered_map<std::uint32_t,
                                                  std::size_t>& votes,
                         std::vector<obs::VoteCount>& out) {
      out.reserve(std::min(votes.size(), kTallyCap));
      for (const auto& [id, v] : votes) out.push_back({id, v});
      std::sort(out.begin(), out.end(),
                [](const obs::VoteCount& a, const obs::VoteCount& b) {
                  if (a.votes != b.votes) return a.votes > b.votes;
                  return a.id < b.id;
                });
      if (out.size() > kTallyCap) out.resize(kTallyCap);
    };
    fill(link_votes, chain->link_votes);
    fill(switch_votes, chain->switch_votes);
  }
}

SlaReport AnalysisCore::make_sla(
    const std::vector<const ProbeRecord*>& records,
    const std::unordered_set<std::uint64_t>& rnic_timeouts,
    const std::unordered_set<std::uint64_t>& switch_timeouts) const {
  SlaReport sla;
  PercentileWindow rtt;
  PercentileWindow proc;
  for (const ProbeRecord* r : records) {
    ++sla.probes;
    if (r->status == ProbeStatus::kTimeout) {
      ++sla.timeouts;
      if (rnic_timeouts.contains(r->id)) sla.rnic_drop_rate += 1.0;
      if (switch_timeouts.contains(r->id)) sla.switch_drop_rate += 1.0;
    } else {
      rtt.add(static_cast<double>(r->network_rtt));
      proc.add(static_cast<double>(r->responder_delay));
    }
  }
  if (sla.probes > 0) {
    sla.rnic_drop_rate /= static_cast<double>(sla.probes);
    sla.switch_drop_rate /= static_cast<double>(sla.probes);
  }
  sla.rtt_mean = rtt.mean();
  sla.rtt_p50 = rtt.percentile(0.50);
  sla.rtt_p90 = rtt.percentile(0.90);
  sla.rtt_p99 = rtt.percentile(0.99);
  sla.rtt_p999 = rtt.percentile(0.999);
  sla.proc_p50 = proc.percentile(0.50);
  sla.proc_p90 = proc.percentile(0.90);
  sla.proc_p99 = proc.percentile(0.99);
  sla.proc_p999 = proc.percentile(0.999);
  return sla;
}

SlaReport AnalysisCore::make_sla_sketch(
    const std::vector<const ProbeRecord*>& records,
    const sketch::HostSummary& summary,
    const std::unordered_set<std::uint64_t>& rnic_timeouts,
    const std::unordered_set<std::uint64_t>& switch_timeouts) const {
  // Sketch-mode cluster SLA: percentiles come from the merged quantile
  // sketches (Agents' folded summaries + this period's raw records) instead
  // of exact order statistics. Counts stay exact: every timeout rides the
  // wire raw, and the folded healthy probes are tallied by folded_records.
  SlaReport sla;
  sketch::QuantileSketch rtt;
  sketch::QuantileSketch proc;
  rtt.merge(summary.rtt);
  for (const auto& [rid, sk] : summary.ok_delay_by_target) proc.merge(sk);
  for (const ProbeRecord* r : records) {
    ++sla.probes;
    if (r->status == ProbeStatus::kTimeout) {
      ++sla.timeouts;
      if (rnic_timeouts.contains(r->id)) sla.rnic_drop_rate += 1.0;
      if (switch_timeouts.contains(r->id)) sla.switch_drop_rate += 1.0;
    } else {
      rtt.add(static_cast<double>(r->network_rtt));
      proc.add(static_cast<double>(r->responder_delay));
    }
  }
  sla.probes += summary.folded_records;
  if (sla.probes > 0) {
    sla.rnic_drop_rate /= static_cast<double>(sla.probes);
    sla.switch_drop_rate /= static_cast<double>(sla.probes);
  }
  sla.rtt_mean = rtt.mean();
  sla.rtt_p50 = rtt.quantile(0.50);
  sla.rtt_p90 = rtt.quantile(0.90);
  sla.rtt_p99 = rtt.quantile(0.99);
  sla.rtt_p999 = rtt.quantile(0.999);
  sla.proc_p50 = proc.quantile(0.50);
  sla.proc_p90 = proc.quantile(0.90);
  sla.proc_p99 = proc.quantile(0.99);
  sla.proc_p999 = proc.quantile(0.999);
  return sla;
}

const PeriodReport& AnalysisCore::analyze_period(
    std::vector<ProbeRecord> records, const sketch::HostSummary& summary,
    TimeNs now, FederationScratch* fed) {
  PeriodReport rep;
  rep.period_start = last_period_end_;
  rep.period_end = now;
  last_period_end_ = now;

  rep.records_processed = records.size();

  if (fed != nullptr) {
    fed->foreign.clear();
    fed->down_hosts.clear();
    fed->blamed_rnics.clear();
    fed->cpu_noise_hosts.clear();
    fed->cluster_sla = SlaDigest{};
    fed->service_slas.clear();
    fed->service_nets.clear();
  }

  // Sketch mode (ROADMAP "Switch-side sketch summaries"): the Agents' folded
  // healthy-probe summaries and the switches' per-link sketches feed the
  // statistics below. Both drains are empty no-ops in kOff.
  const bool sk_on = cfg_.sketch_mode == SketchMode::kOn;
  std::map<std::uint32_t, sketch::LinkSketch> link_sketches;
  if (sk_on) link_sketches = sketch_store_.drain_period();

  // Diagnosis explainability (src/obs): every verdict this period gets an
  // EvidenceChain — input probe ids, thresholds compared, Algorithm 1 vote
  // tally, triage branch — collected into one DiagnosisLog.
  obs::DiagnosisLog dlog;
  dlog.period_start = rep.period_start;
  dlog.period_end = rep.period_end;
  const auto add_probe = [](obs::EvidenceChain& c, std::uint64_t id) {
    ++c.total_probes;
    if (c.probe_ids.size() < obs::kEvidenceProbeIdCap) {
      c.probe_ids.push_back(id);
    }
  };
  const auto add_probes = [&add_probe](
                              obs::EvidenceChain& c,
                              const std::vector<const ProbeRecord*>& ev) {
    for (const ProbeRecord* r : ev) add_probe(c, r->id);
  };
  const auto add_threshold = [](obs::EvidenceChain& c, const char* name,
                                double threshold, double observed) {
    c.thresholds.push_back({name, threshold, observed, observed > threshold});
  };
  // Cross-links Problem <-> chain. Call after p.summary is final; the chain
  // is then pushed into dlog (chains are built locally so vector growth
  // never invalidates a reference).
  const auto attach_evidence = [this](Problem& p, obs::EvidenceChain& c) {
    p.problem_id = next_problem_id_++;
    c.id = next_evidence_id_++;
    p.evidence.id = c.id;
    c.problem_id = p.problem_id;
    c.summary = p.summary;
  };

  metrics_.periods.inc();
  const std::uint64_t period_span =
      telemetry::tracer().begin_span("analyzer.period", "analyzer");
  int cur_stage = -1;
  std::uint64_t stage_span = 0;
  std::chrono::steady_clock::time_point stage_t0{};
  // Transition between pipeline stages: close the previous stage's span and
  // wall-clock histogram sample, open the next. enter_stage(-1) closes out.
  // The wall-clock profiler reuses enter_stage's clock reads; its coarser
  // stage set folds classify/rnic_detect/attribute into drain.triage.
  static constexpr prof::Stage kProfStage[kNumStages] = {
      prof::Stage::kDrainTriage,     prof::Stage::kDrainTriage,
      prof::Stage::kDrainTriage,     prof::Stage::kDrainVote,
      prof::Stage::kDrainBottleneck, prof::Stage::kDrainSla,
      prof::Stage::kDrainImpact,
  };
  const auto enter_stage = [&](int next) {
    const auto wall = std::chrono::steady_clock::now();
    if (cur_stage >= 0) {
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(wall -
                                                               stage_t0)
              .count();
      metrics_.stage_ns[cur_stage].observe(static_cast<double>(ns));
      prof::profiler().record(kProfStage[cur_stage],
                              static_cast<std::uint64_t>(ns));
      telemetry::tracer().end_span(stage_span);
    }
    cur_stage = next;
    stage_t0 = wall;
    if (next >= 0) {
      stage_span = telemetry::tracer().begin_span(
          std::string("analyzer.") + stage_name(next), "analyzer");
    }
  };

  // ---- step 1: non-network timeouts and probe noise (§4.3.1) ----
  enter_stage(0);

  std::unordered_set<std::uint32_t> down_hosts;
  for (std::uint32_t h : known_hosts_) {
    const auto it = last_upload_.find(h);
    if (it == last_upload_.end() ||
        now - it->second > cfg_.host_silence_threshold) {
      down_hosts.insert(h);
    }
  }
  if (fed != nullptr) {
    fed->down_hosts.assign(down_hosts.begin(), down_hosts.end());
    std::sort(fed->down_hosts.begin(), fed->down_hosts.end());
  }

  std::vector<std::optional<AnomalyCause>> cause(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ProbeRecord& r = records[i];
    if (r.status != ProbeStatus::kTimeout) continue;
    const HostId target_host = topo_.rnic(r.target).host;
    if (down_hosts.contains(target_host.value)) {
      cause[i] = AnomalyCause::kHostDown;
      continue;
    }
    // QPN-reset noise: the probe addressed a QPN older than the freshest
    // registration the Controller holds — or a QPN the Controller has no
    // registration for at all (it restarted and lost its registry, and the
    // target has not re-registered yet). Both are control-plane staleness,
    // not network loss.
    if (const auto info = directory_->comm_info(r.target);
        !info || info->qpn != r.target_qpn) {
      cause[i] = AnomalyCause::kQpnReset;
    }
  }

  // ---- step 2: anomalous-RNIC detection from ToR-mesh data (§4.3.2) ----
  enter_stage(1);

  struct RnicStat {
    std::size_t total = 0;
    std::size_t timeouts = 0;
    PercentileWindow ok_responder_delay;
  };
  // Greedy attribution: a dead RNIC's *outgoing* probes also time out and
  // would inflate its innocent peers' timeout ratios. Repeatedly blame the
  // RNIC with the worst ratio, discount every probe involving it, and
  // re-evaluate — peers polluted only by the culprit come out clean.
  std::unordered_set<std::uint32_t> anomalous_rnics;
  // Observed timeout ratio at the moment each RNIC was blamed (evidence).
  std::unordered_map<std::uint32_t, double> blamed_frac;
  std::unordered_map<std::uint32_t, RnicStat> per_rnic;
  for (;;) {
    per_rnic.clear();
    for (std::size_t i = 0; i < records.size(); ++i) {
      const ProbeRecord& r = records[i];
      if (r.kind != ProbeKind::kTorMesh || cause[i].has_value()) continue;
      if (anomalous_rnics.contains(r.prober.value) ||
          anomalous_rnics.contains(r.target.value)) {
        continue;
      }
      RnicStat& st = per_rnic[r.target.value];
      ++st.total;
      if (r.status == ProbeStatus::kTimeout) {
        ++st.timeouts;
      } else {
        st.ok_responder_delay.add(static_cast<double>(r.responder_delay));
      }
    }
    if (sk_on) {
      // Folded ToR-mesh OK counts dilute timeout ratios exactly as their raw
      // records would; pairs touching an already-blamed RNIC are discounted
      // the same way the raw loop above discounts them.
      for (const auto& [pair, cnt] : summary.tormesh_ok) {
        if (anomalous_rnics.contains(pair.first) ||
            anomalous_rnics.contains(pair.second)) {
          continue;
        }
        per_rnic[pair.second].total += cnt;
      }
    }
    std::uint32_t worst = 0;
    double worst_frac = cfg_.rnic_timeout_threshold;
    bool found = false;
    for (const auto& [rnic, st] : per_rnic) {
      if (st.total < 3) continue;
      const double frac = static_cast<double>(st.timeouts) /
                          static_cast<double>(st.total);
      if (frac > worst_frac) {
        worst = rnic;
        worst_frac = frac;
        found = true;
      }
    }
    if (!found) break;
    anomalous_rnics.insert(worst);
    blamed_frac[worst] = worst_frac;
  }

  // Responder-delay evidence per RNIC over ALL completed probes (the greedy
  // loop above excludes blamed RNICs from its stats, but the Fig. 6 filter
  // below needs their delays). In sketch mode the stat is seeded from the
  // Agents' folded per-target delay sketches, then raw outlier records merge
  // in on top.
  std::unordered_map<std::uint32_t, DelayStat> ok_delay_by_rnic;
  std::unordered_map<std::uint32_t, DelayStat> host_ok_delay;
  if (sk_on) {
    for (const auto& [rid, sk] : summary.ok_delay_by_target) {
      DelayStat& st = ok_delay_by_rnic[rid];
      st.use_sketch = true;
      st.sk.merge(sk);
      DelayStat& hs = host_ok_delay[topo_.rnic(RnicId{rid}).host.value];
      hs.use_sketch = true;
      hs.sk.merge(sk);
    }
  }
  for (const ProbeRecord& r : records) {
    if (r.status == ProbeStatus::kOk) {
      auto [sit, inserted] = ok_delay_by_rnic.try_emplace(r.target.value);
      if (inserted) sit->second.use_sketch = sk_on;
      sit->second.add(static_cast<double>(r.responder_delay));
      auto [hit, hinserted] =
          host_ok_delay.try_emplace(topo_.rnic(r.target).host.value);
      if (hinserted) hit->second.use_sketch = sk_on;
      hit->second.add(static_cast<double>(r.responder_delay));
    }
  }

  // Figure 6 false-positive filters: the service occupying the Agent's CPU
  // makes probes to *all* of a host's RNICs time out at once, and/or shows
  // up as huge responder delays on the probes that did complete.
  std::unordered_set<std::uint32_t> cpu_noise_hosts;
  if (cfg_.enable_cpu_noise_filters) {
    std::unordered_map<std::uint32_t, std::size_t> anomalous_per_host;
    for (std::uint32_t r : anomalous_rnics) {
      ++anomalous_per_host[topo_.rnic(RnicId{r}).host.value];
    }
    for (auto it = anomalous_rnics.begin(); it != anomalous_rnics.end();) {
      const HostId h = topo_.rnic(RnicId{*it}).host;
      const bool multi_rnic_simultaneous =
          anomalous_per_host[h.value] >= 2;
      bool starved_responder = false;
      if (auto sit = ok_delay_by_rnic.find(*it);
          sit != ok_delay_by_rnic.end()) {
        auto& st = sit->second;
        starved_responder =
            st.count() > 0 &&
            st.percentile(0.9) >
                static_cast<double>(cfg_.starve_delay_threshold);
      }
      // Third Fig. 6 signal: responder processing delay (④-③) is purely
      // host-side — a switch or link fault times probes out but leaves the
      // delay of the probes that DID complete at the µs scale. An anomalous
      // RNIC on a host whose completed probes show bottleneck-scale delays
      // is therefore the service starving the Agent, even when only one of
      // the host's RNICs crossed the timeout threshold and the per-RNIC p90
      // sits below the starve bar.
      bool starved_host = false;
      if (auto hit = host_ok_delay.find(h.value);
          hit != host_ok_delay.end()) {
        auto& st = hit->second;
        starved_host =
            st.count() >= 3 &&
            st.percentile(0.9) >
                static_cast<double>(cfg_.high_proc_delay_threshold);
      }
      if (multi_rnic_simultaneous || starved_responder || starved_host) {
        cpu_noise_hosts.insert(h.value);
        it = anomalous_rnics.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Blame window: anomalous now and for the next minute (§5).
  for (std::uint32_t r : anomalous_rnics) {
    rnic_blamed_until_[r] = now + cfg_.rnic_blame_window;
  }
  // Noise hangover: a host the Fig. 6 filter flagged keeps filtering for
  // cpu_noise_window. The starved prober's observation backlog produces
  // straggler timeout records for several periods after the service lets
  // go of the CPU; without the hangover those stragglers reach Algorithm-1
  // voting and fabricate a switch problem.
  for (std::uint32_t h : cpu_noise_hosts) {
    host_noise_until_[h] = now + cfg_.cpu_noise_window;
  }
  // Attribution-only starvation evidence: a host whose completed probes
  // show bottleneck-scale responder delay is the prime suspect for its own
  // timeouts even when no single RNIC crossed the timeout-ratio threshold
  // (e.g. the fault landed mid-period and the ratio sits at the bar). Its
  // timeouts stay out of fabric attribution, but verdict emission is
  // untouched: a merely-overloaded host still gets its end-host-bottleneck
  // problem, not a noise verdict. P99, not P90: after an Analyzer restart
  // the period folds in a healthy backlog that buries the starvation tail
  // below the 90th percentile (a healthy host's P99 sits at the µs scale,
  // three orders of magnitude under the threshold, so P99 stays specific).
  std::unordered_set<std::uint32_t> starved_hosts;
  if (cfg_.enable_cpu_noise_filters) {
    for (auto& [h, st] : host_ok_delay) {
      if (st.count() >= 3 &&
          st.percentile(0.99) >
              static_cast<double>(cfg_.high_proc_delay_threshold)) {
        starved_hosts.insert(h);
      }
    }
  }
  const auto noisy_host = [&](HostId h) {
    if (cpu_noise_hosts.contains(h.value)) return true;
    if (starved_hosts.contains(h.value)) return true;
    const auto it = host_noise_until_.find(h.value);
    return it != host_noise_until_.end() && it->second >= rep.period_start;
  };
  const auto blamed = [&](RnicId r) {
    if (anomalous_rnics.contains(r.value)) return true;
    const auto it = rnic_blamed_until_.find(r.value);
    return it != rnic_blamed_until_.end() && it->second >= rep.period_start;
  };
  if (fed != nullptr) {
    for (const auto& [r, until] : rnic_blamed_until_) {
      if (until >= rep.period_start) fed->blamed_rnics.emplace_back(r, until);
    }
    std::sort(fed->blamed_rnics.begin(), fed->blamed_rnics.end());
    fed->cpu_noise_hosts.assign(cpu_noise_hosts.begin(),
                                cpu_noise_hosts.end());
    // The hangover and the attribution-only starvation evidence travel
    // too: the global tier triages foreign timeouts against the union of
    // every pod's noise state, stragglers included.
    for (const auto& [h, until] : host_noise_until_) {
      if (until >= rep.period_start && !cpu_noise_hosts.contains(h)) {
        fed->cpu_noise_hosts.push_back(h);
      }
    }
    for (std::uint32_t h : starved_hosts) {
      if (!cpu_noise_hosts.contains(h) &&
          (!host_noise_until_.contains(h) ||
           host_noise_until_[h] < rep.period_start)) {
        fed->cpu_noise_hosts.push_back(h);
      }
    }
    std::sort(fed->cpu_noise_hosts.begin(), fed->cpu_noise_hosts.end());
  }

  // ---- step 3: attribute the remaining timeouts ----
  enter_stage(2);

  for (std::size_t i = 0; i < records.size(); ++i) {
    const ProbeRecord& r = records[i];
    if (r.status != ProbeStatus::kTimeout || cause[i].has_value()) continue;
    const HostId target_host = topo_.rnic(r.target).host;
    // A starved Agent corrupts probes in BOTH directions: its responder
    // never ACKs (timeouts to it) and its prober thread observes â¥ too
    // late (timeouts from it). Exclude both from network localization.
    if (noisy_host(target_host) || noisy_host(r.prober_host)) {
      cause[i] = AnomalyCause::kAgentCpuNoise;
    } else if (blamed(r.target) || blamed(r.prober)) {
      cause[i] = AnomalyCause::kRnicProblem;
    } else if (fed != nullptr &&
               !fed->local_hosts.contains(target_host.value)) {
      // Federation: the target lives in another pod, so "host down" and
      // "target RNIC blamed" are unknowable here. Voting this path locally
      // would turn every foreign host failure into a fake switch suspect —
      // defer the record to the global tier, which holds the union of every
      // pod's down-host and blamed-RNIC sets. The timeout still counts in
      // this pod's SLA (status-based), just not in cause attribution.
      ForeignTimeout f;
      f.probe_id = r.id;
      f.kind = r.kind;
      f.prober = r.prober;
      f.target = r.target;
      f.prober_host = r.prober_host;
      f.target_host = target_host;
      f.service = r.service;
      f.path_known = r.path_known;
      if (r.path_known) {
        for (const routing::Path* p : {&r.fwd_path, &r.rev_path}) {
          for (LinkId l : p->links) f.path_links.push_back(l.value);
          for (SwitchId s : p->switches) f.path_switches.push_back(s.value);
        }
      }
      fed->foreign.push_back(std::move(f));
    } else {
      cause[i] = AnomalyCause::kSwitchProblem;
    }
  }

  // Tallies + per-cause evidence sets.
  std::unordered_set<std::uint64_t> rnic_timeout_ids;
  std::unordered_set<std::uint64_t> switch_timeout_ids;
  std::vector<const ProbeRecord*> switch_cluster_evidence;
  std::unordered_map<std::uint32_t, std::vector<const ProbeRecord*>>
      switch_service_evidence;  // by service id
  std::unordered_map<std::uint32_t, std::vector<const ProbeRecord*>>
      rnic_evidence;  // by rnic id
  std::unordered_map<std::uint32_t, std::vector<std::uint64_t>> host_down_ids;
  std::vector<std::uint64_t> qpn_reset_ids;
  std::unordered_map<std::uint32_t, std::vector<std::uint64_t>> cpu_noise_ids;
  const bool flight_on = obs::recorder().enabled();
  // Recorder-driven auto-triage: aggregate WHERE the evidence probes died
  // from their sampled flight timelines, so an evidence chain cites the
  // fabric's own drop sites next to the vote tally. A kFabricDrop event
  // names the reason and link; a closed timeline without one means the probe
  // timed out with no drop observed (lost to path-incompleteness, or the
  // response leg). std::map keeps the aggregation order deterministic.
  const auto fill_drop_sites = [&](obs::EvidenceChain& c,
                                   const std::vector<const ProbeRecord*>&
                                       ev) {
    if (!flight_on) return;
    std::map<std::string, std::uint64_t> sites;
    for (const ProbeRecord* r : ev) {
      if (!r->flight_sampled) continue;
      const obs::ProbeTimeline* tl = obs::recorder().timeline(r->id);
      if (tl == nullptr) continue;
      if (const obs::TimelineEvent* e =
              tl->find(obs::ProbeEventKind::kFabricDrop)) {
        sites["fabric-drop:" +
              std::string(fabric::drop_reason_name(
                  static_cast<fabric::DropReason>(e->a))) +
              "@link" + std::to_string(e->b)] += 1;
      } else if (tl->closed()) {
        sites["timed-out:no-fabric-drop-observed"] += 1;
      }
    }
    for (auto& [site, cnt] : sites) c.drop_sites.emplace_back(site, cnt);
  };
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!cause[i].has_value()) continue;
    const ProbeRecord& r = records[i];
    if (flight_on && r.flight_sampled) {
      // Close the loop on the probe's timeline: which cause the Analyzer
      // attributed its timeout to.
      obs::recorder().record(r.id, obs::ProbeEventKind::kVerdict,
                             static_cast<std::uint64_t>(*cause[i]));
    }
    switch (*cause[i]) {
      case AnomalyCause::kHostDown:
        ++rep.timeouts_host_down;
        host_down_ids[topo_.rnic(r.target).host.value].push_back(r.id);
        break;
      case AnomalyCause::kQpnReset:
        ++rep.timeouts_qpn_reset;
        qpn_reset_ids.push_back(r.id);
        break;
      case AnomalyCause::kAgentCpuNoise: {
        ++rep.timeouts_agent_cpu;
        const std::uint32_t th = topo_.rnic(r.target).host.value;
        cpu_noise_ids[noisy_host(HostId{th}) ? th : r.prober_host.value]
            .push_back(r.id);
        break;
      }
      case AnomalyCause::kRnicProblem:
        ++rep.timeouts_rnic;
        rnic_timeout_ids.insert(r.id);
        rnic_evidence[blamed(r.target) ? r.target.value : r.prober.value]
            .push_back(&r);
        break;
      case AnomalyCause::kSwitchProblem:
        ++rep.timeouts_switch;
        switch_timeout_ids.insert(r.id);
        if (r.kind == ProbeKind::kServiceTracing) {
          switch_service_evidence[r.service.value].push_back(&r);
        } else {
          switch_cluster_evidence.push_back(&r);
        }
        break;
    }
  }

  // ---- emit problems ----
  enter_stage(3);

  for (std::uint32_t h : down_hosts) {
    Problem p;
    p.category = ProblemCategory::kHostDown;
    p.host = HostId{h};
    p.summary = "host " + topo_.host(HostId{h}).name +
                " stopped uploading (host down)";
    obs::EvidenceChain c;
    c.verdict = "host-down";
    c.triage_branch = "timeout-triage: target host silent past threshold";
    const auto lit = last_upload_.find(h);
    add_threshold(c, "host_silence_threshold_ns",
                  static_cast<double>(cfg_.host_silence_threshold),
                  static_cast<double>(lit == last_upload_.end()
                                          ? now
                                          : now - lit->second));
    if (const auto idit = host_down_ids.find(h);
        idit != host_down_ids.end()) {
      for (std::uint64_t id : idit->second) add_probe(c, id);
    }
    attach_evidence(p, c);
    dlog.chains.push_back(std::move(c));
    rep.problems.push_back(std::move(p));
  }

  for (std::uint32_t r : anomalous_rnics) {
    Problem p;
    p.category = ProblemCategory::kRnicProblem;
    p.rnic = RnicId{r};
    p.host = topo_.rnic(RnicId{r}).host;
    p.anomalous_probes = rnic_evidence[r].size();
    p.summary = "RNIC " + topo_.rnic(RnicId{r}).name +
                " anomalous (ToR-mesh timeout ratio exceeded)";
    obs::EvidenceChain c;
    c.verdict = "anomalous-rnic";
    c.triage_branch =
        "timeout-triage: ToR-mesh timeout ratio, greedy attribution";
    const auto fit = blamed_frac.find(r);
    add_threshold(c, "rnic_timeout_threshold", cfg_.rnic_timeout_threshold,
                  fit == blamed_frac.end() ? 0.0 : fit->second);
    add_threshold(c, "min_anomalies_for_problem",
                  static_cast<double>(cfg_.min_anomalies_for_problem),
                  static_cast<double>(rnic_evidence[r].size()));
    add_probes(c, rnic_evidence[r]);
    fill_drop_sites(c, rnic_evidence[r]);
    attach_evidence(p, c);
    dlog.chains.push_back(std::move(c));
    rep.problems.push_back(std::move(p));
  }

  for (std::uint32_t h : cpu_noise_hosts) {
    Problem p;
    p.category = ProblemCategory::kAgentCpuNoise;
    p.priority = Priority::kNoise;
    p.host = HostId{h};
    p.summary = "probe noise on " + topo_.host(HostId{h}).name +
                " (service occupies Agent CPU)";
    obs::EvidenceChain c;
    c.verdict = "agent-cpu-noise";
    c.triage_branch =
        "timeout-triage: Fig. 6 filter (multi-RNIC simultaneous timeouts, "
        "starved responder delays, or host-level processing-delay tail)";
    double worst_p90 = 0.0;
    for (auto& [rid, st] : ok_delay_by_rnic) {
      if (topo_.rnic(RnicId{rid}).host.value == h && st.count() > 0) {
        worst_p90 = std::max(worst_p90, st.percentile(0.9));
      }
    }
    add_threshold(c, "starve_delay_threshold_ns",
                  static_cast<double>(cfg_.starve_delay_threshold),
                  worst_p90);
    if (auto hit = host_ok_delay.find(h); hit != host_ok_delay.end() &&
                                          hit->second.count() > 0) {
      add_threshold(c, "high_proc_delay_threshold_ns",
                    static_cast<double>(cfg_.high_proc_delay_threshold),
                    hit->second.percentile(0.9));
    }
    if (const auto idit = cpu_noise_ids.find(h);
        idit != cpu_noise_ids.end()) {
      for (std::uint64_t id : idit->second) add_probe(c, id);
    }
    attach_evidence(p, c);
    dlog.chains.push_back(std::move(c));
    rep.problems.push_back(std::move(p));
  }

  const auto emit_switch_problem = [&](std::vector<const ProbeRecord*>& ev,
                                       bool from_service, ServiceId svc) {
    if (ev.size() < cfg_.min_anomalies_for_problem) return;
    Problem p;
    p.category = ProblemCategory::kSwitchNetworkProblem;
    p.anomalous_probes = ev.size();
    p.detected_by_service_tracing = from_service;
    p.service = svc;
    obs::EvidenceChain c;
    c.verdict = "switch-network-problem";
    c.triage_branch = from_service
                          ? "timeout-triage: network-attributed "
                            "(service tracing evidence)"
                          : "timeout-triage: network-attributed "
                            "(cluster monitoring evidence)";
    c.service = svc.valid() ? svc.value : 0;
    add_threshold(c, "min_anomalies_for_problem",
                  static_cast<double>(cfg_.min_anomalies_for_problem),
                  static_cast<double>(ev.size()));
    add_probes(c, ev);
    fill_drop_sites(c, ev);
    vote_paths(ev, p.suspect_links, p.suspect_switches, &p.top_link_votes,
               &c);
    if (sk_on && !p.suspect_links.empty()) {
      // Corroborate the vote winner with the switch-side sketch: how many
      // datagrams the fabric itself counted dropped on that link this
      // period. Zero with votes present usually means the drops predate the
      // period boundary (sketches flush on the 5 s cadence).
      const auto lsit = link_sketches.find(p.suspect_links.front().value);
      add_threshold(c, "sketch_link_drops", 0.0,
                    lsit == link_sketches.end()
                        ? 0.0
                        : static_cast<double>(lsit->second.total_drops()));
    }
    std::ostringstream os;
    os << "switch network problem (" << ev.size() << " anomalous probes"
       << (from_service ? ", service tracing" : ", cluster monitoring")
       << ")";
    if (!p.suspect_links.empty()) {
      os << ", top suspect link: " << topo_.link(p.suspect_links.front()).name;
    }
    p.summary = os.str();
    attach_evidence(p, c);
    dlog.chains.push_back(std::move(c));
    rep.problems.push_back(std::move(p));
  };
  emit_switch_problem(switch_cluster_evidence, false, ServiceId{});
  for (auto& [svc, ev] : switch_service_evidence) {
    emit_switch_problem(ev, true, ServiceId{svc});
  }

  // ---- step 4: bottlenecks (high RTT / high processing delay) ----
  enter_stage(4);

  std::vector<const ProbeRecord*> hot_cluster;
  std::unordered_map<std::uint32_t, std::vector<const ProbeRecord*>>
      hot_service;
  std::unordered_map<std::uint32_t, DelayStat> host_proc_delay;
  std::unordered_map<std::uint32_t, std::vector<std::uint64_t>>
      proc_probe_ids;  // every probe whose delay entered the host's window
  if (sk_on) {
    // Folded healthy delays roll up to the target's host so the CPU-overload
    // tail scan sees the same population it would with raw records (the ids
    // list stays raw-only — it is a capped evidence sample, not a tally).
    for (const auto& [rid, sk] : summary.ok_delay_by_target) {
      DelayStat& st = host_proc_delay[topo_.rnic(RnicId{rid}).host.value];
      st.use_sketch = true;
      st.sk.merge(sk);
    }
  }
  for (const ProbeRecord& r : records) {
    if (r.status != ProbeStatus::kOk) continue;
    if (r.network_rtt > cfg_.high_rtt_threshold) {
      if (r.kind == ProbeKind::kServiceTracing) {
        hot_service[r.service.value].push_back(&r);
      } else {
        hot_cluster.push_back(&r);
      }
    }
    const std::uint32_t th = topo_.rnic(r.target).host.value;
    auto [pit, inserted] = host_proc_delay.try_emplace(th);
    if (inserted) pit->second.use_sketch = sk_on;
    pit->second.add(static_cast<double>(r.responder_delay));
    proc_probe_ids[th].push_back(r.id);
  }
  const auto emit_hot = [&](std::vector<const ProbeRecord*>& ev,
                            bool from_service, ServiceId svc) {
    if (ev.size() < cfg_.min_anomalies_for_problem) return;
    Problem p;
    p.category = ProblemCategory::kHighNetworkRtt;
    p.anomalous_probes = ev.size();
    p.detected_by_service_tracing = from_service;
    p.service = svc;
    obs::EvidenceChain c;
    c.verdict = "high-network-rtt";
    c.triage_branch = "bottleneck scan: completed probes above RTT threshold";
    c.service = svc.valid() ? svc.value : 0;
    double worst_rtt = 0.0;
    for (const ProbeRecord* r : ev) {
      worst_rtt = std::max(worst_rtt, static_cast<double>(r->network_rtt));
    }
    add_threshold(c, "high_rtt_threshold_ns",
                  static_cast<double>(cfg_.high_rtt_threshold), worst_rtt);
    add_threshold(c, "min_anomalies_for_problem",
                  static_cast<double>(cfg_.min_anomalies_for_problem),
                  static_cast<double>(ev.size()));
    add_probes(c, ev);
    vote_paths(ev, p.suspect_links, p.suspect_switches, &p.top_link_votes,
               &c);
    std::ostringstream os;
    os << "network congestion: " << ev.size() << " probes above RTT threshold"
       << (from_service ? " (service tracing)" : " (cluster monitoring)");
    if (!p.suspect_links.empty()) {
      os << ", hottest link: " << topo_.link(p.suspect_links.front()).name;
    }
    p.summary = os.str();
    attach_evidence(p, c);
    dlog.chains.push_back(std::move(c));
    rep.problems.push_back(std::move(p));
  };
  emit_hot(hot_cluster, false, ServiceId{});
  for (auto& [svc, ev] : hot_service) emit_hot(ev, true, ServiceId{svc});

  for (auto& [h, st] : host_proc_delay) {
    if (cpu_noise_hosts.contains(h)) continue;  // already reported as noise
    // Tail-based: an overloaded host shows in its P90 even when healthy
    // probes to its other RNICs dilute the median.
    if (st.count() >= cfg_.min_anomalies_for_problem &&
        st.percentile(0.9) >
            static_cast<double>(cfg_.high_proc_delay_threshold)) {
      Problem p;
      p.category = ProblemCategory::kHighProcessingDelay;
      p.host = HostId{h};
      p.anomalous_probes = st.count();
      std::ostringstream os;
      os << "end-host bottleneck on " << topo_.host(HostId{h}).name
         << ": p90 processing delay "
         << st.percentile(0.9) / 1e6 << " ms";
      p.summary = os.str();
      obs::EvidenceChain c;
      c.verdict = "high-processing-delay";
      c.triage_branch = "bottleneck scan: responder processing delay P90";
      add_threshold(c, "high_proc_delay_threshold_ns",
                    static_cast<double>(cfg_.high_proc_delay_threshold),
                    st.percentile(0.9));
      if (const auto idit = proc_probe_ids.find(h);
          idit != proc_probe_ids.end()) {
        for (std::uint64_t id : idit->second) add_probe(c, id);
      }
      attach_evidence(p, c);
      dlog.chains.push_back(std::move(c));
      rep.problems.push_back(std::move(p));
    }
  }

  // QPN-reset noise visibility (not a problem, but operators see it).
  if (rep.timeouts_qpn_reset > 0) {
    Problem p;
    p.category = ProblemCategory::kQpnResetNoise;
    p.priority = Priority::kNoise;
    p.anomalous_probes = rep.timeouts_qpn_reset;
    p.summary = "QPN-reset probe noise (stale pinglists after Agent restart)";
    obs::EvidenceChain c;
    c.verdict = "qpn-reset-noise";
    c.triage_branch =
        "timeout-triage: probe addressed a QPN older than the Controller's "
        "freshest registration (or one the Controller lost across a "
        "restart)";
    for (std::uint64_t id : qpn_reset_ids) add_probe(c, id);
    attach_evidence(p, c);
    dlog.chains.push_back(std::move(c));
    rep.problems.push_back(std::move(p));
  }

  // ---- step 5: SLA tracking ----
  enter_stage(5);

  std::vector<const ProbeRecord*> cluster_records;
  std::unordered_map<std::uint32_t, std::vector<const ProbeRecord*>>
      service_records;
  for (const ProbeRecord& r : records) {
    if (r.kind == ProbeKind::kServiceTracing) {
      service_records[r.service.value].push_back(&r);
    } else {
      cluster_records.push_back(&r);
    }
  }
  // Folded records never carry a service id, so service SLAs stay exact;
  // the cluster SLA is sketch-driven when sketch mode is on.
  rep.cluster_sla =
      sk_on ? make_sla_sketch(cluster_records, summary, rnic_timeout_ids,
                              switch_timeout_ids)
            : make_sla(cluster_records, rnic_timeout_ids, switch_timeout_ids);
  for (auto& [svc, recs] : service_records) {
    rep.service_slas.emplace_back(
        ServiceId{svc}, make_sla(recs, rnic_timeout_ids, switch_timeout_ids));
  }
  if (fed != nullptr) {
    // Mergeable SLA state for the digest: exact counts + DDSketch tails, so
    // the global cluster table is identical no matter how pods are grouped.
    // Foreign timeouts count as probes/timeouts (status-based) but carry no
    // drop attribution — the global tier adds that after its own triage.
    const auto build_digest =
        [&](const std::vector<const ProbeRecord*>& recs, bool with_summary) {
          SlaDigest d;
          if (with_summary && sk_on) {
            d.rtt.merge(summary.rtt);
            for (const auto& [rid, sk] : summary.ok_delay_by_target) {
              d.proc.merge(sk);
            }
            d.probes += summary.folded_records;
          }
          for (const ProbeRecord* r : recs) {
            ++d.probes;
            if (r->status == ProbeStatus::kTimeout) {
              ++d.timeouts;
              if (rnic_timeout_ids.contains(r->id)) ++d.rnic_drops;
              if (switch_timeout_ids.contains(r->id)) ++d.switch_drops;
            } else {
              d.rtt.add(static_cast<double>(r->network_rtt));
              d.proc.add(static_cast<double>(r->responder_delay));
            }
          }
          return d;
        };
    fed->cluster_sla = build_digest(cluster_records, /*with_summary=*/true);
    std::vector<std::uint32_t> svc_ids;
    svc_ids.reserve(service_records.size());
    for (const auto& [svc, recs] : service_records) svc_ids.push_back(svc);
    std::sort(svc_ids.begin(), svc_ids.end());
    for (std::uint32_t svc : svc_ids) {
      fed->service_slas.emplace_back(
          svc, build_digest(service_records[svc], /*with_summary=*/false));
    }
  }
  if (rep.cluster_sla.rnic_drop_rate > 0.0 ||
      rep.cluster_sla.switch_drop_rate > 0.0) {
    // SLA violation: network-attributed drops are never in budget. The chain
    // samples the offending probe ids so explain() leads straight to flight
    // timelines.
    obs::EvidenceChain c;
    c.id = next_evidence_id_++;
    c.verdict = "sla-violation";
    c.triage_branch = "sla: network-attributed drop rate above target";
    add_threshold(c, "network_drop_rate_target", 0.0,
                  rep.cluster_sla.rnic_drop_rate +
                      rep.cluster_sla.switch_drop_rate);
    add_threshold(c, "high_rtt_threshold_ns",
                  static_cast<double>(cfg_.high_rtt_threshold),
                  rep.cluster_sla.rtt_p99);
    c.total_probes = rep.cluster_sla.probes;
    for (const ProbeRecord* r : cluster_records) {
      if (c.probe_ids.size() >= obs::kEvidenceProbeIdCap) break;
      if (rnic_timeout_ids.contains(r->id) ||
          switch_timeout_ids.contains(r->id)) {
        c.probe_ids.push_back(r->id);
      }
    }
    std::ostringstream os;
    os << "cluster SLA violated: network-attributed drop rate "
       << (rep.cluster_sla.rnic_drop_rate +
           rep.cluster_sla.switch_drop_rate)
       << " over " << rep.cluster_sla.probes << " probes";
    c.summary = os.str();
    rep.cluster_sla.evidence.id = c.id;
    dlog.chains.push_back(std::move(c));
  }

  // ---- step 6: impact (needs the service networks from this period) ----
  enter_stage(6);

  // Service network = every link/rnic/host the service's tracing probes
  // touched this period.
  struct ServiceNet {
    std::unordered_set<std::uint32_t> links;
    std::unordered_set<std::uint32_t> rnics;
    std::unordered_set<std::uint32_t> hosts;
  };
  std::unordered_map<std::uint32_t, ServiceNet> nets;
  for (const ProbeRecord& r : records) {
    if (r.kind != ProbeKind::kServiceTracing) continue;
    ServiceNet& n = nets[r.service.value];
    n.rnics.insert(r.prober.value);
    n.rnics.insert(r.target.value);
    n.hosts.insert(topo_.rnic(r.prober).host.value);
    n.hosts.insert(topo_.rnic(r.target).host.value);
    if (r.path_known) {
      for (const routing::Path* p : {&r.fwd_path, &r.rev_path}) {
        for (LinkId l : p->links) n.links.insert(l.value);
      }
    }
  }
  if (fed != nullptr) {
    std::vector<std::uint32_t> svc_ids;
    svc_ids.reserve(nets.size());
    for (const auto& [svc, net] : nets) svc_ids.push_back(svc);
    std::sort(svc_ids.begin(), svc_ids.end());
    for (std::uint32_t svc : svc_ids) {
      const ServiceNet& net = nets[svc];
      ServiceNetDigest d;
      d.service = svc;
      d.links.assign(net.links.begin(), net.links.end());
      d.rnics.assign(net.rnics.begin(), net.rnics.end());
      d.hosts.assign(net.hosts.begin(), net.hosts.end());
      std::sort(d.links.begin(), d.links.end());
      std::sort(d.rnics.begin(), d.rnics.end());
      std::sort(d.hosts.begin(), d.hosts.end());
      fed->service_nets.push_back(std::move(d));
    }
  }

  for (Problem& p : rep.problems) {
    if (p.priority == Priority::kNoise) continue;
    // Find a service whose network this problem touches.
    ServiceId affected;
    if (p.detected_by_service_tracing) {
      affected = p.service;
    } else {
      for (const auto& [svc, net] : nets) {
        const bool rnic_hit =
            p.rnic.valid() && net.rnics.contains(p.rnic.value);
        // Host overlap only applies to host-scoped problems (host down, CPU
        // bottleneck). An RNIC problem on a worker host whose OTHER RNIC
        // serves the job is still outside the service network (=> P2).
        const bool host_hit = !p.rnic.valid() && p.host.valid() &&
                              net.hosts.contains(p.host.value);
        bool link_hit = false;
        for (LinkId l : p.suspect_links) {
          if (net.links.contains(l.value)) {
            link_hit = true;
            break;
          }
        }
        if (rnic_hit || host_hit || link_hit) {
          affected = ServiceId{svc};
          break;
        }
      }
    }
    if (!affected.valid()) {
      p.priority = Priority::kP2;  // outside every service network
      continue;
    }
    p.in_service_network = true;
    p.service = affected;
    // Severe metric degradation => P0; otherwise P1 (fix on benefit).
    double metric = 1.0;
    for (const ServiceBinding& b : services_) {
      if (b.id == affected) metric = b.metric();
    }
    p.priority = metric < cfg_.degradation_threshold ? Priority::kP0
                                                     : Priority::kP1;
  }

  // Per-service "network innocent" verdicts (§4.3.4): no P0/P1 problem in
  // the service's network this period — exoneration gets receipts too.
  for (const ServiceBinding& b : services_) {
    bool guilty = false;
    for (const Problem& p : rep.problems) {
      if ((p.priority == Priority::kP0 || p.priority == Priority::kP1) &&
          p.service == b.id) {
        guilty = true;
        break;
      }
    }
    if (guilty) continue;
    obs::EvidenceChain c;
    c.id = next_evidence_id_++;
    c.verdict = "network-innocent";
    c.triage_branch = "impact: no P0/P1 problem inside the service network";
    c.service = b.id.value;
    add_threshold(c, "degradation_threshold", cfg_.degradation_threshold,
                  b.metric());
    if (const auto sit = service_records.find(b.id.value);
        sit != service_records.end()) {
      add_probes(c, sit->second);
    }
    c.summary = "network innocent for service " + std::to_string(b.id.value) +
                " this period";
    dlog.chains.push_back(std::move(c));
  }

  enter_stage(-1);
  telemetry::tracer().end_span(period_span);

  // Period-end bookkeeping (metric tallies, history/diagnosis retention,
  // journal spill) is its own profiled stage: it runs outside the
  // enter_stage window but still inside the period close.
  prof::StageScope diaglog_scope(prof::Stage::kDrainDiaglog);
  metrics_.timeouts_by_cause[static_cast<int>(AnomalyCause::kHostDown)].inc(
      rep.timeouts_host_down);
  metrics_.timeouts_by_cause[static_cast<int>(AnomalyCause::kQpnReset)].inc(
      rep.timeouts_qpn_reset);
  metrics_.timeouts_by_cause[static_cast<int>(AnomalyCause::kAgentCpuNoise)]
      .inc(rep.timeouts_agent_cpu);
  metrics_.timeouts_by_cause[static_cast<int>(AnomalyCause::kRnicProblem)]
      .inc(rep.timeouts_rnic);
  metrics_.timeouts_by_cause[static_cast<int>(AnomalyCause::kSwitchProblem)]
      .inc(rep.timeouts_switch);
  for (const Problem& p : rep.problems) {
    metrics_.problems_by_category[static_cast<int>(p.category)].inc();
    metrics_.problems_by_priority[static_cast<int>(p.priority)].inc();
  }
  if (sk_on) {
    // Links whose sketches show drops this period are the ones whose raw
    // records the pipeline still wants verbatim (upload thinning keeps every
    // timeout raw, so the fallback set is already satisfied — this counts
    // how often it was needed).
    std::uint64_t flagged = 0;
    for (const auto& [lid, ls] : link_sketches) {
      if (ls.total_drops() > 0) ++flagged;
    }
    metrics_.raw_fallback_links.inc(flagged);
  }

  history_.push_back(std::move(rep));
  while (history_.size() > cfg_.history_limit) history_.pop_front();
  diagnosis_.push_back(std::move(dlog));
  while (diagnosis_.size() > cfg_.history_limit) {
    // Evidence retention (ROADMAP): aged-out DiagnosisLogs spill into the
    // journal archive instead of vanishing; explain() falls back to it.
    if (journal_ != nullptr) {
      journal_->archive(role_, std::move(diagnosis_.front()));
    }
    diagnosis_.pop_front();
  }
  return history_.back();
}

std::string AnalysisCore::explain(std::uint64_t problem_id) const {
  for (auto it = diagnosis_.rbegin(); it != diagnosis_.rend(); ++it) {
    if (const obs::EvidenceChain* c = it->find_problem(problem_id)) {
      return obs::to_json(*c);
    }
  }
  // Post-mortem fallback: the period may have aged past history_limit into
  // the journal archive.
  if (journal_ != nullptr) {
    if (const obs::EvidenceChain* c = journal_->find_problem(role_,
                                                             problem_id)) {
      return obs::to_json(*c);
    }
  }
  return {};
}

const obs::EvidenceChain* AnalysisCore::evidence(EvidenceRef ref) const {
  if (!ref.valid()) return nullptr;
  for (auto it = diagnosis_.rbegin(); it != diagnosis_.rend(); ++it) {
    if (const obs::EvidenceChain* c = it->find(ref.id)) return c;
  }
  if (journal_ != nullptr) return journal_->find_evidence(role_, ref.id);
  return nullptr;
}

bool AnalysisCore::network_innocent(ServiceId service) const {
  const PeriodReport* rep = last_report();
  if (rep == nullptr) return true;
  for (const Problem& p : rep->problems) {
    if ((p.priority == Priority::kP0 || p.priority == Priority::kP1) &&
        p.service == service) {
      return false;
    }
  }
  return true;
}

}  // namespace rpm::core
