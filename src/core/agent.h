// R-Pingmesh Agent (§4.2).
//
// One Agent runs per host and manages every RNIC on it. Per RNIC it keeps a
// single UD QP (connectionless: no QPC-cache pressure, Table 1) used for all
// four roles the paper implements as threads: ToR-mesh probing, inter-ToR
// probing, service-tracing probing, and responding.
//
// The measurement protocol is Figure 4's, faithfully:
//   ① prober application timestamp before posting    (host clock)
//   ② prober RNIC send CQE                            (prober RNIC clock)
//   ③ responder RNIC recv CQE                         (responder RNIC clock)
//   ④ responder RNIC send CQE of ACK1                 (responder RNIC clock)
//   ⑤ prober RNIC recv CQE of ACK1                    (prober RNIC clock)
//   ⑥ prober application timestamp when it sees ACK1  (host clock)
// ACK2 carries ④-③ (the responder cannot know ④ before ACK1 is on the
// wire, hence the second ACK). Then:
//   network RTT      = (⑤-②) - (④-③)
//   responder delay  = ④-③
//   prober delay     = (⑥-①) - (⑤-②)
// Every subtraction pairs readings of ONE clock, so the RNICs' and hosts'
// offsets/drift cancel. A probe missing either ACK at `probe_timeout` is
// reported as a timeout.
//
// Service tracing (§4.2.2): the Agent attaches to the host's
// modify_qp/destroy_qp tracepoints; each RC connect contributes a pinglist
// entry reusing the service flow's exact 5-tuple (so ECMP routes probes onto
// the service's path); destroy removes it. The service pinglist is shuffled
// every round (§7.3: probe randomly to avoid phase-locking with the
// compute/communicate cycle).
//
// Path tracing (§4.2.3): paths are traced continuously (not on failure),
// subject to the switches' Traceroute response rate limits.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/controller.h"
#include "core/types.h"
#include "host/cluster.h"
#include "sim/scheduler.h"
#include "telemetry/metrics.h"
#include "transport/transport.h"

namespace rpm::core {

struct AgentConfig {
  TimeNs probe_timeout = msec(500);   // §5
  Bytes probe_payload_bytes = 50;     // §5
  TimeNs upload_interval = sec(5);    // §5
  TimeNs pinglist_refresh = sec(300); // §5: every 5 minutes
  TimeNs service_probe_interval = msec(10);  // §5
  TimeNs trace_refresh = sec(2);      // per-tuple Traceroute cadence
  // §7.4: on fabrics that support INT, path tracing uses the data plane —
  // no switch-CPU rate limits, so traced paths are always fresh.
  bool use_int_telemetry = false;
  // Batched uploads (ROADMAP): hold the outbox for this many upload periods
  // before flushing one coalesced batch — unless it already holds
  // `upload_flush_records`, which flushes immediately. Must stay small
  // enough that coalesce_periods * upload_interval < the Analyzer's host
  // silence threshold, or healthy hosts read as down.
  std::uint32_t upload_coalesce_periods = 2;
  std::size_t upload_flush_records = 8192;
  // Application-level retry (ROADMAP): when the transport gives up on an
  // upload after max_attempts, the Agent re-queues the batch this many times
  // before letting the records go. Keeps its ORIGINAL batch seq so Analyzer
  // (host,seq) dedup absorbs any copy that did sneak through.
  std::uint32_t upload_requeue_cap = 2;
  // Control-plane survivability. The lease the Controller granted at
  // registration is renewed by heartbeats at this cadence; if renewal fails
  // past the lease, the Agent re-registers with capped exponential backoff
  // (base * 2^attempt up to max, plus uniform [0, jitter] from the Agent's
  // own seeded Rng so a restarted Controller is not hit by every Agent at
  // the same instant).
  TimeNs heartbeat_interval = sec(5);
  TimeNs backoff_base = msec(500);
  TimeNs backoff_max = sec(8);
  TimeNs backoff_jitter = msec(250);
  // Analyzer-outage catch-up: batches that exhausted upload_requeue_cap are
  // parked in a bounded drop-oldest spill ring (ordered by seq) instead of
  // being dropped, and drain in order once an upload is ACKed again.
  std::size_t spill_ring_cap = 64;
  // Sketch-mode upload thinning (set by RPingmesh when
  // AnalyzerConfig::sketch_mode == kOn): healthy OK records are folded into
  // a mergeable HostSummary instead of riding the batch raw. Records that
  // carry diagnostic signal always stay raw: every timeout, every
  // service-tracing probe, OK probes whose RTT / responder delay exceeds the
  // keep thresholds below (they feed the Analyzer's outlier triage), and
  // flight-sampled probes (their recorder timeline must stay resolvable).
  bool sketch_thin_uploads = false;
  TimeNs sketch_keep_rtt_above = usec(500);
  TimeNs sketch_keep_proc_above = msec(5);
};

class Agent {
 public:
  /// `directory` is a read-only comm-info lookup used synchronously on the
  /// service-connect tracepoint (production: a host-local read replica of
  /// the Controller's registry). Everything else — registration, pinglist
  /// pulls, uploads — rides the transport: `upload_ch` carries UploadBatch
  /// messages to the Analyzer, `ctrl_rpc` carries AgentRegistration and
  /// PinglistPullRequest calls to the Controller.
  Agent(host::Cluster& cluster, HostId host, const Controller& directory,
        transport::Channel& upload_ch, transport::RpcChannel& ctrl_rpc,
        AgentConfig cfg = {});
  ~Agent();
  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Create UD QPs, register comm info with the Controller, pull pinglists,
  /// attach service tracepoints, start all periodic tasks.
  void start();
  void stop();

  /// Simulate the Agent process restarting (e.g. host reboot): every UD QP
  /// is recreated with a fresh QPN and the Controller is re-registered.
  /// Other Agents' pinglists stay stale until their next refresh — the
  /// "QPN reset" noise source (§4.3.1).
  void restart();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] HostId host_id() const { return host_; }

  /// Trigger a pinglist pull RPC (normally every 5 minutes). The response
  /// applies asynchronously after a control-plane round trip.
  void refresh_pinglists();

  /// Epoch-fenced application of a pinglist pull response. A response
  /// stamped with an epoch OLDER than the newest this Agent has heard (via
  /// registration/heartbeat acks or a fresher pull) is a stale list from a
  /// deposed primary still draining its wire — counted and discarded, never
  /// applied. Public so tests can inject doctored responses.
  void deliver_pinglist_response(PinglistPullResponse rsp);

  /// Pinglist responses rejected by the epoch fence (lifetime count).
  [[nodiscard]] std::uint64_t stale_pinglists() const {
    return stale_pinglists_;
  }
  /// Newest Controller epoch heard on any ack or pull response.
  [[nodiscard]] std::uint64_t controller_epoch_seen() const {
    return ctrl_epoch_seen_;
  }

  /// Retarget the comm-info directory after a standby Controller takeover
  /// (production: the read replica re-syncs against the new primary).
  void set_directory(const Controller* directory) { directory_ = directory; }

  /// Number of service-tracing entries currently tracked (all RNICs).
  [[nodiscard]] std::size_t service_entries() const;

  /// Does this Agent believe its Controller lease is live? False between a
  /// lease expiry (Controller crash) and the accepted re-registration.
  [[nodiscard]] bool registered() const { return registered_; }
  /// Batches currently parked in the Analyzer-outage spill ring.
  [[nodiscard]] std::size_t spill_depth() const { return spill_.size(); }
  /// Accepted re-registrations after a lease loss (lifetime count).
  [[nodiscard]] std::uint64_t reregistrations() const {
    return reregistrations_;
  }
  /// Lease expiries observed (lifetime count).
  [[nodiscard]] std::uint64_t lease_expiries() const {
    return lease_expiries_;
  }

  /// Probes sent / responses issued, for overhead accounting (Figure 7).
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] std::uint64_t responses_sent() const {
    return responses_sent_;
  }
  /// Approximate resident bytes of Agent state (Figure 7's memory metric).
  [[nodiscard]] std::size_t approx_memory_bytes() const;

 private:
  /// On-the-wire probe/ACK payload (50 B in production; fields below are
  /// what matters).
  struct Wire {
    std::uint64_t probe_id = 0;
    std::uint8_t msg = 0;  // 0 = probe, 1 = ACK1, 2 = ACK2
    TimeNs responder_delay = 0;  // ACK2 only: ④-③
    Qpn reply_qpn;               // probe only: where ACKs go
    std::uint32_t prober_rnic = 0;
    // Probe only: flight-recorder sampled. Lets the responder record its
    // side (③ recv, wakeup, ACK posts) onto the probe's timeline without a
    // recorder lookup for the unsampled common case.
    bool sampled = false;
  };

  struct PathCacheEntry {
    routing::Path fwd;
    routing::Path rev;
    bool known = false;
    TimeNs traced_at = kNoTime;
  };

  struct Pending {
    ProbeRecord record;
    TimeNs t1_host = 0;
    TimeNs t2_rnic = kNoTime;
    TimeNs t5_rnic = kNoTime;
    TimeNs t6_host = kNoTime;
    bool have_ack2 = false;
    bool done = false;
    std::uint32_t rnic_slot = 0;
  };

  struct RnicState {
    RnicId rnic;
    Qpn ud_qpn;
    Pinglist tormesh;
    Pinglist intertor;
    std::vector<PinglistEntry> service;
    std::size_t tormesh_next = 0;
    std::size_t intertor_next = 0;
    std::size_t service_next = 0;
    std::unordered_map<std::uint32_t, PinglistEntry> service_by_qpn;
    std::unordered_map<std::uint64_t, PathCacheEntry> paths;  // by tuple hash
    std::unique_ptr<sim::PeriodicTask> tormesh_task;
    std::unique_ptr<sim::PeriodicTask> intertor_task;
    std::unique_ptr<sim::PeriodicTask> service_task;
  };

  void create_qps();
  void register_with_controller();
  /// Capped exponential backoff with per-agent jitter: base * 2^attempt up
  /// to max, plus uniform [0, jitter] from rng_.
  [[nodiscard]] TimeNs backoff_delay(std::uint32_t attempt);
  /// Periodic lease check: renews via AgentHeartbeat, detects expiry, and
  /// kicks the re-registration loop when the Controller forgot us.
  void heartbeat_tick();
  void begin_reregistration();
  void apply_pinglist_response(PinglistPullResponse rsp);
  void flush_outbox();
  /// Ship one batch on the upload channel and bind its sampled probe ids to
  /// the carrying channel message. Used by flush_outbox and requeues.
  void send_batch(UploadBatch&& batch);
  /// Channel on_expire: transport exhausted max_attempts (or abandoned the
  /// message). Re-queues the batch up to upload_requeue_cap times, then
  /// parks it in the spill ring (Analyzer outage catch-up).
  void on_upload_expired(std::uint64_t chan_seq, std::any& payload);
  /// Park a fully-retried batch in the seq-ordered spill ring, evicting the
  /// oldest batches beyond spill_ring_cap.
  void spill_batch(UploadBatch&& batch);
  /// Schedule a single backoff-delayed probe send of the oldest spilled
  /// batch, to discover when the Analyzer is reachable again.
  void schedule_catchup();
  /// An upload was ACKed: the Analyzer is back — drain the spill ring in
  /// seq order.
  void drain_spill();
  void attach_tracepoints();
  void detach_tracepoints();
  void probe_next(std::uint32_t slot, ProbeKind kind);
  void send_probe(std::uint32_t slot, const PinglistEntry& entry);
  void on_cqe(std::uint32_t slot, const rnic::Cqe& cqe);
  void handle_probe(std::uint32_t slot, const rnic::Cqe& cqe, const Wire& w);
  void handle_ack(std::uint32_t slot, const rnic::Cqe& cqe, const Wire& w);
  void finalize_if_complete(std::uint64_t probe_id);
  [[nodiscard]] bool foldable(const ProbeRecord& r) const;
  void fold_record(const ProbeRecord& r);
  void finalize_timeout(std::uint64_t probe_id);
  PathCacheEntry& traced_paths(std::uint32_t slot, const PinglistEntry& e);
  void upload_now();
  void on_service_connect(const verbs::ModifyQpEvent& e);
  void on_service_disconnect(const verbs::DestroyQpEvent& e);
  [[nodiscard]] bool host_down() const;

  host::Cluster& cluster_;
  HostId host_;
  const Controller* directory_;  // retargeted on standby failover
  transport::Channel& upload_ch_;
  transport::RpcChannel& ctrl_rpc_;
  AgentConfig cfg_;
  Rng rng_;

  bool running_ = false;
  // Bumped on stop(): RPC responses in flight across a restart carry the
  // old epoch and are discarded instead of resurrecting stale pinglists.
  std::uint64_t epoch_ = 0;
  std::uint64_t next_batch_seq_ = 1;  // monotone across restarts
  std::uint32_t periods_since_flush_ = 0;
  // Lease-based liveness (control-plane survivability).
  bool registered_ = false;
  TimeNs lease_expiry_ = kNoTime;   // simulated deadline of the held lease
  TimeNs lease_duration_ = 0;       // as granted in the RegistrationAck
  std::uint32_t reg_attempt_ = 0;   // consecutive unanswered registrations
  bool rereg_pending_ = false;      // current registration follows a lost lease
  // Epoch fencing (ControllerGroup failover): newest Controller epoch heard
  // and how many pinglist responses the fence rejected. The metric series
  // registers lazily on the first rejection so flat deployments (where the
  // fence never trips) add no telemetry output.
  std::uint64_t ctrl_epoch_seen_ = 0;
  std::uint64_t stale_pinglists_ = 0;
  telemetry::Counter stale_pinglists_total_;
  bool stale_metric_registered_ = false;
  std::uint64_t lease_expiries_ = 0;
  std::uint64_t reregistrations_ = 0;
  // Analyzer-outage spill ring: fully-retried batches, ascending seq.
  std::deque<UploadBatch> spill_;
  std::uint32_t catchup_attempt_ = 0;
  bool catchup_scheduled_ = false;
  std::vector<RnicState> rnics_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::vector<ProbeRecord> outbox_;
  // Sketch-mode thinning accumulator: healthy OK records folded since the
  // last flush (empty, and never touched, when sketch_thin_uploads is off).
  sketch::HostSummary summary_;
  std::uint64_t next_probe_id_;
  std::uint64_t next_wr_id_ = 1;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t responses_sent_ = 0;
  int modify_handle_ = 0;
  int destroy_handle_ = 0;
  // responder-side context for ACK1 send CQEs, keyed by wr_id
  struct ResponderCtx {
    std::uint32_t slot = 0;
    TimeNs t3_rnic = 0;
    Gid prober_gid;
    Qpn prober_qpn;
    std::uint16_t src_port = 0;
    std::uint64_t probe_id = 0;
    bool sampled = false;  // probe is flight-recorded
  };
  std::unordered_map<std::uint64_t, ResponderCtx> responder_ctx_;
  std::unique_ptr<sim::PeriodicTask> upload_task_;
  std::unique_ptr<sim::PeriodicTask> refresh_task_;
  std::unique_ptr<sim::PeriodicTask> heartbeat_task_;

  // Self-observability handles, labeled {host, kind} and created once at
  // construction — hot paths only touch cached handles.
  struct Metrics {
    telemetry::Counter probes_sent[3];      // indexed by ProbeKind
    telemetry::Counter probes_completed[3];
    telemetry::Counter probe_timeouts[3];
    telemetry::Histogram rtt_ns[3];
    telemetry::Counter responses_sent;
    telemetry::Counter uploads;
    telemetry::Counter upload_records;
    telemetry::Counter upload_folded;   // records folded into HostSummary
    telemetry::Counter upload_requeues;
    // Control-plane survivability.
    telemetry::Counter lease_expired;       // leases lost to missed renewals
    telemetry::Counter reregistrations;     // accepted re-registrations
    telemetry::Gauge spill_ring_depth;      // batches parked during outage
    telemetry::Counter spill_dropped;       // batches evicted (drop-oldest)
    telemetry::Histogram backoff_delay_ns;  // reconnect backoff delays
  };
  Metrics metrics_;
};

}  // namespace rpm::core
